package tdd_test

import (
	"fmt"
	"log"

	"tdd"
)

// The paper's Section 3.3 worked example: one rule, one fact, an infinite
// least model with period 2.
func Example() {
	db, err := tdd.OpenUnit(`
		even(T+2) :- even(T).
		even(0).
	`)
	if err != nil {
		log.Fatal(err)
	}
	yes, _ := db.Ask("even(1000000)")
	no, _ := db.Ask("even(999999)")
	p, _ := db.Period()
	fmt.Println(yes, no, p)
	// Output: true false (b=1, p=2)
}

// Open queries over infinite models return finitely many representative
// answers; together with the specification's rewrite rule they stand for
// the infinite answer set.
func ExampleDB_Answers() {
	db, err := tdd.OpenUnit(`
		even(T+2) :- even(T).
		even(0).
	`)
	if err != nil {
		log.Fatal(err)
	}
	ans, _ := db.Answers("even(T)")
	fmt.Print(tdd.FormatAnswers(ans))
	// Output:
	// T=0
	// T=2
}

// Temporal first-order queries mix both quantifier sorts and CWA negation.
func ExampleDB_Ask() {
	db, err := tdd.OpenUnit(`
		plane(T+2, X) :- plane(T, X), resort(X), winter(T).
		winter(T+4) :- winter(T).
		winter(0..1).
		resort(hunter).
		plane(0, hunter).
	`)
	if err != nil {
		log.Fatal(err)
	}
	yes, _ := db.Ask("exists T (plane(T, hunter) & winter(T))")
	fmt.Println(yes)
	// Output: true
}

// Classify places a rule set in the paper's tractable classes.
func ExampleClassify() {
	rep, err := tdd.Classify(`
		path(K, X, X) :- node(X), null(K).
		path(K+1, X, Z) :- edge(X, Y), path(K, Y, Z).
		path(K+1, X, Y) :- path(K, X, Y).
	`, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep.Inflationary, rep.MultiSeparable, rep.Tractable())
	// Output: true false true
}

// The relational specification is the finite face of the infinite model.
func ExampleDB_Specification() {
	db, err := tdd.OpenUnit(`
		even(T+2) :- even(T).
		even(0).
	`)
	if err != nil {
		log.Fatal(err)
	}
	s, _ := db.Specification()
	fmt.Print(s)
	// Output:
	// T = {0..2}  (3 representative terms)
	// W = {3 -> 1}
	// B = (2 facts)
	//   even(0).
	//   even(2).
}
