package tdd_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"tdd"
	"tdd/internal/workload"
)

// TestAssertMatchesReopen is the facade-level oracle: incrementally
// asserted facts must leave the DB answering every query exactly as a
// fresh Open on the final fact set would — same period, same
// specification, same deep answers — regardless of batch boundaries.
func TestAssertMatchesReopen(t *testing.T) {
	rules, facts, stream := workload.Chain(12)
	db, err := tdd.Open(rules, facts, tdd.WithMaxWindow(1<<14))
	if err != nil {
		t.Fatal(err)
	}
	// Certify once so every Assert below exercises the warm path.
	if _, err := db.Period(); err != nil {
		t.Fatal(err)
	}
	all := facts
	for i, batch := range stream {
		res, err := db.Assert(batch)
		if err != nil {
			t.Fatalf("assert %d: %v", i, err)
		}
		if res.NewFacts != 1 || !res.Recertified {
			t.Fatalf("assert %d: %+v", i, res)
		}
		all += batch

		fresh, err := tdd.Open(rules, all, tdd.WithMaxWindow(1<<14))
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range []string{
			"path(1000000, n0, n1)",
			fmt.Sprintf("path(1000000, n0, n%d)", i+2),
			fmt.Sprintf("path(%d, n0, n%d)", i+1, i+2),
			fmt.Sprintf("path(%d, n0, n%d)", i, i+2),
		} {
			got, err := db.Ask(q)
			if err != nil {
				t.Fatal(err)
			}
			want, err := fresh.Ask(q)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("after assert %d, %s: incremental %v, reopen %v", i, q, got, want)
			}
		}
		gp, err := db.Period()
		if err != nil {
			t.Fatal(err)
		}
		wp, err := fresh.Period()
		if err != nil {
			t.Fatal(err)
		}
		if gp != wp {
			t.Fatalf("after assert %d: period %v, reopen %v", i, gp, wp)
		}
		gs, err := db.Specification()
		if err != nil {
			t.Fatal(err)
		}
		ws, err := fresh.Specification()
		if err != nil {
			t.Fatal(err)
		}
		if gs != ws {
			t.Fatalf("after assert %d: specification diverged\nincremental:\n%s\nreopen:\n%s", i, gs, ws)
		}
	}
}

// TestAssertCoercion covers the sort coercion of stand-alone fact sources:
// integers in non-temporal columns stay constants, temporal predicates
// demand time points, intervals expand.
func TestAssertCoercion(t *testing.T) {
	db, err := tdd.OpenUnit(`
		alert(T+1, S) :- alert(T, S), fragile(S).
		@nontemporal score.
		alert(0, api). fragile(api). score(10, alice).
	`)
	if err != nil {
		t.Fatal(err)
	}
	// score's first column is numeric but score is non-temporal.
	if _, err := db.Assert("score(20, bob)."); err != nil {
		t.Fatal(err)
	}
	if ok, _ := db.Holds("score", "20", "bob"); !ok {
		t.Fatal("score(20, bob) not asserted as non-temporal")
	}
	if ok, _ := db.Holds("score", "10", "alice"); !ok {
		t.Fatal("original score(10, alice) lost")
	}
	// A temporal predicate without a time point is an error.
	if _, err := db.Assert("alert(api)."); err == nil {
		t.Fatal("time-less fact for temporal predicate accepted")
	}
	// Intervals expand as in Open.
	res, err := db.Assert("alert(3..5, db). fragile(db).")
	if err != nil {
		t.Fatal(err)
	}
	if res.NewFacts != 4 {
		t.Fatalf("interval batch recorded %d new facts, want 4", res.NewFacts)
	}
	if ok, _ := db.Ask("alert(1000, db)"); !ok {
		t.Fatal("alert(1000, db) should hold after ingesting the latch seed")
	}
	// AssertAt / AssertFact build facts directly.
	if _, err := db.AssertAt("alert", 7, "cache"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.AssertFact("fragile", "cache"); err != nil {
		t.Fatal(err)
	}
	if ok, _ := db.Ask("alert(1000000, cache)"); !ok {
		t.Fatal("alert(1000000, cache) should hold")
	}
	// Duplicates are no-ops.
	res, err = db.Assert("fragile(api).")
	if err != nil {
		t.Fatal(err)
	}
	if res.NewFacts != 0 || res.Duplicates != 1 {
		t.Fatalf("duplicate assert: %+v", res)
	}
}

// TestForkIsolation: asserts on a fork never show through to the original
// DB, and vice versa.
func TestForkIsolation(t *testing.T) {
	db, err := tdd.OpenUnit(concurrentSkiUnit)
	if err != nil {
		t.Fatal(err)
	}
	fork := db.Fork()
	if _, err := fork.Assert("plane(1, whistler). resort(whistler)."); err != nil {
		t.Fatal(err)
	}
	if ok, _ := db.Ask("exists T plane(T, whistler)"); ok {
		t.Fatal("fork's assert visible in the original")
	}
	if ok, _ := fork.Ask("plane(1000001, whistler)"); !ok {
		t.Fatal("fork lost its own assert")
	}
	if _, err := db.Assert("plane(2, vail). resort(vail)."); err != nil {
		t.Fatal(err)
	}
	if ok, _ := fork.Ask("exists T plane(T, vail)"); ok {
		t.Fatal("original's assert visible in the fork")
	}
}

// TestConcurrentAssertAndQuery is the writer/reader regression test: one
// shared DB under concurrent Assert writers and Ask/Answers readers. Run
// under -race (scripts/ci.sh does) it checks the snapshot discipline —
// readers must always observe a fully consistent model in which
// monotonically asserted facts never disappear.
func TestConcurrentAssertAndQuery(t *testing.T) {
	db, err := tdd.OpenUnit(concurrentSkiUnit)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Period(); err != nil {
		t.Fatal(err)
	}
	// Ground truth for a query no writer's facts can affect (writers only
	// add fresh resorts; monotonicity keeps hunter's answers fixed).
	wantDeep, err := db.Ask("plane(1000000, hunter)")
	if err != nil {
		t.Fatal(err)
	}

	const writers, readers, perWriter = 4, 8, 6
	var wg sync.WaitGroup
	errs := make(chan error, writers*perWriter+readers*perWriter*2)
	var done sync.WaitGroup

	for w := 0; w < writers; w++ {
		wg.Add(1)
		done.Add(1)
		go func(w int) {
			defer wg.Done()
			defer done.Done()
			for i := 0; i < perWriter; i++ {
				r := fmt.Sprintf("w%dr%d", w, i)
				_, err := db.Assert(fmt.Sprintf("resort(%s).\nplane(%d, %s).\n", r, (w+i)%10, r))
				if err != nil {
					errs <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
				// A writer's own fact is immediately visible to it.
				if ok, err := db.Ask(fmt.Sprintf("exists T plane(T, %s)", r)); err != nil || !ok {
					errs <- fmt.Errorf("writer %d lost its own fact %s (ok=%v err=%v)", w, r, ok, err)
					return
				}
			}
		}(w)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perWriter; i++ {
				// The hunter stream predates every write and must never change.
				if ok, err := db.Ask("plane(1000000, hunter)"); err != nil || ok != wantDeep {
					errs <- fmt.Errorf("reader %d: plane(1000000, hunter) ok=%v err=%v, want %v", g, ok, err, wantDeep)
					return
				}
				if _, err := db.Answers("plane(T, hunter)"); err != nil {
					errs <- fmt.Errorf("reader %d: %w", g, err)
					return
				}
				if rng.Intn(2) == 0 {
					if _, err := db.Period(); err != nil {
						errs <- fmt.Errorf("reader %d: %w", g, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		return
	}
	// After the dust settles every written fact is present.
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			r := fmt.Sprintf("w%dr%d", w, i)
			if ok, err := db.Ask(fmt.Sprintf("exists T plane(T, %s)", r)); err != nil || !ok {
				t.Fatalf("final state missing plane stream for %s (ok=%v err=%v)", r, ok, err)
			}
		}
	}
}

// BenchmarkAssertVsReopen measures the tentpole claim: on the chain-graph
// workload, ingesting one edge into a warm DB (Assert + Ask) must beat
// re-opening the database from scratch on the extended fact set
// (Open + Ask). The two arms answer the same deep query after ingesting
// the same edge stream.
func BenchmarkAssertVsReopen(b *testing.B) {
	const nodes = 24
	rules, facts, stream := workload.Chain(nodes)
	deep := fmt.Sprintf("path(1000000, n0, n%d)", nodes-1)

	b.Run("assert-warm", func(b *testing.B) {
		b.StopTimer()
		for i := 0; i < b.N; i++ {
			db, err := tdd.Open(rules, facts)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := db.Period(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			for _, batch := range stream {
				if _, err := db.Assert(batch); err != nil {
					b.Fatal(err)
				}
			}
			ok, err := db.Ask(deep)
			b.StopTimer()
			if err != nil || !ok {
				b.Fatalf("ok=%v err=%v", ok, err)
			}
		}
	})
	b.Run("reopen-cold", func(b *testing.B) {
		b.StopTimer()
		for i := 0; i < b.N; i++ {
			all := facts
			b.StartTimer()
			var last *tdd.DB
			for _, batch := range stream {
				all += batch
				db, err := tdd.Open(rules, all)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := db.Period(); err != nil {
					b.Fatal(err)
				}
				last = db
			}
			ok, err := last.Ask(deep)
			b.StopTimer()
			if err != nil || !ok {
				b.Fatalf("ok=%v err=%v", ok, err)
			}
		}
	})
}
