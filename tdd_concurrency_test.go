package tdd_test

import (
	"fmt"
	"sync"
	"testing"

	"tdd"
)

const concurrentSkiUnit = `
plane(T+7, X) :- plane(T, X), resort(X), offseason(T).
plane(T+2, X) :- plane(T, X), resort(X), winter(T).
offseason(T+10) :- offseason(T).
winter(T+10) :- winter(T).
winter(0..3).
offseason(4..9).
resort(hunter).
plane(0, hunter).
`

// TestDBConcurrentReaders hammers one shared *tdd.DB from many
// goroutines — including the very first query, which certifies the
// period and grows the evaluation window under the facade's lock. Run
// under -race this is the regression test for that locking.
func TestDBConcurrentReaders(t *testing.T) {
	db, err := tdd.OpenUnit(concurrentSkiUnit)
	if err != nil {
		t.Fatal(err)
	}

	// Ground truth from a private, sequentially-used copy.
	seq, err := tdd.OpenUnit(concurrentSkiUnit)
	if err != nil {
		t.Fatal(err)
	}
	wantDeep, err := seq.Ask("plane(1000000, hunter)")
	if err != nil {
		t.Fatal(err)
	}
	wantAns, err := seq.Answers("plane(T, hunter)")
	if err != nil {
		t.Fatal(err)
	}
	wantPeriod, err := seq.Period()
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 16
	const iters = 10
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*iters)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (g + i) % 4 {
				case 0:
					got, err := db.Ask("plane(1000000, hunter)")
					if err != nil {
						errs <- err
					} else if got != wantDeep {
						errs <- fmt.Errorf("Ask deep = %v, want %v", got, wantDeep)
					}
				case 1:
					got, err := db.Answers("plane(T, hunter)")
					if err != nil {
						errs <- err
					} else if len(got) != len(wantAns) {
						errs <- fmt.Errorf("Answers len = %d, want %d", len(got), len(wantAns))
					}
				case 2:
					got, err := db.Period()
					if err != nil {
						errs <- err
					} else if got != wantPeriod {
						errs <- fmt.Errorf("Period = %v, want %v", got, wantPeriod)
					}
				case 3:
					got, err := db.HoldsAt("plane", 0, "hunter")
					if err != nil {
						errs <- err
					} else if !got {
						errs <- fmt.Errorf("HoldsAt(plane, 0, hunter) = false")
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSpecDBConcurrentReaders does the same against one shared
// *tdd.SpecDB: immutable after ImportSpec, so every mix of readers must
// agree with sequential evaluation.
func TestSpecDBConcurrentReaders(t *testing.T) {
	db, err := tdd.OpenUnit(concurrentSkiUnit)
	if err != nil {
		t.Fatal(err)
	}
	data, err := db.ExportSpec()
	if err != nil {
		t.Fatal(err)
	}
	sdb, err := tdd.ImportSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	wantDeep, err := db.Ask("plane(1000000, hunter)")
	if err != nil {
		t.Fatal(err)
	}
	wantAns, err := db.Answers("plane(T, hunter)")
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 16
	const iters = 10
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*iters)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (g + i) % 3 {
				case 0:
					got, err := sdb.Ask("plane(1000000, hunter)")
					if err != nil {
						errs <- err
					} else if got != wantDeep {
						errs <- fmt.Errorf("SpecDB.Ask = %v, want %v", got, wantDeep)
					}
				case 1:
					got, err := sdb.Answers("plane(T, hunter)")
					if err != nil {
						errs <- err
					} else if len(got) != len(wantAns) {
						errs <- fmt.Errorf("SpecDB.Answers len = %d, want %d", len(got), len(wantAns))
					}
				case 2:
					got, err := sdb.HoldsAt("plane", 0, "hunter")
					if err != nil {
						errs <- err
					} else if !got {
						errs <- fmt.Errorf("SpecDB.HoldsAt(plane, 0, hunter) = false")
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
