package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tdd"
)

const evenUnit = "even(T+2) :- even(T).\neven(0).\n"

const skiUnit = `
plane(T+7, X) :- plane(T, X), resort(X), offseason(T).
plane(T+2, X) :- plane(T, X), resort(X), winter(T).
offseason(T+10) :- offseason(T).
winter(T+10) :- winter(T).
winter(0..3).
offseason(4..9).
resort(hunter).
plane(0, hunter).
`

// newTestServer builds a Server (logging discarded) and an httptest
// front end; both are torn down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getJSON(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func register(t *testing.T, base, unit string) string {
	t.Helper()
	resp, body := postJSON(t, base+"/programs", registerRequest{Unit: unit})
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		t.Fatalf("register: status %d: %s", resp.StatusCode, body)
	}
	var reg registerResponse
	if err := json.Unmarshal(body, &reg); err != nil {
		t.Fatal(err)
	}
	return reg.ID
}

func askServed(t *testing.T, base, id, query string) bool {
	t.Helper()
	resp, body := postJSON(t, base+"/programs/"+id+"/ask", askRequest{Query: query})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ask %q: status %d: %s", query, resp.StatusCode, body)
	}
	var ar askResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	return ar.Result
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("body: %s", body)
	}
}

func TestRegisterAskAnswersPeriod(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := register(t, ts.URL, evenUnit)

	if !askServed(t, ts.URL, id, "even(1000000)") {
		t.Error("even(1000000) should hold")
	}
	if askServed(t, ts.URL, id, "even(999999)") {
		t.Error("even(999999) should not hold")
	}

	resp, body := postJSON(t, ts.URL+"/programs/"+id+"/answers", answersRequest{Query: "even(T)"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("answers: status %d: %s", resp.StatusCode, body)
	}
	var ans answersResponse
	if err := json.Unmarshal(body, &ans); err != nil {
		t.Fatal(err)
	}
	if ans.Count != 2 {
		t.Errorf("answers count = %d, want 2 (T=0, T=2)", ans.Count)
	}
	if ans.Rewrite != "3 -> 1" {
		t.Errorf("rewrite = %q, want %q", ans.Rewrite, "3 -> 1")
	}
	if ans.Engine != "spec" {
		t.Errorf("engine = %q, want spec (cache fast path)", ans.Engine)
	}

	resp, body = getJSON(t, ts.URL+"/programs/"+id+"/period")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("period: status %d", resp.StatusCode)
	}
	var p periodJSON
	if err := json.Unmarshal(body, &p); err != nil {
		t.Fatal(err)
	}
	if p.Base != 1 || p.P != 2 {
		t.Errorf("period = (b=%d, p=%d), want (b=1, p=2)", p.Base, p.P)
	}
}

func TestAnswersLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := register(t, ts.URL, skiUnit)
	resp, body := postJSON(t, ts.URL+"/programs/"+id+"/answers", answersRequest{Query: "plane(T, hunter)", Limit: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var ans answersResponse
	if err := json.Unmarshal(body, &ans); err != nil {
		t.Fatal(err)
	}
	if ans.Count != 2 {
		t.Errorf("count = %d, want limit 2", ans.Count)
	}
}

func TestRegisterIdempotent(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/programs", registerRequest{Unit: evenUnit})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first register: status %d: %s", resp.StatusCode, body)
	}
	var first registerResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	resp, body = postJSON(t, ts.URL+"/programs", registerRequest{Unit: evenUnit})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second register: status %d: %s", resp.StatusCode, body)
	}
	var second registerResponse
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Existing || second.ID != first.ID {
		t.Errorf("re-registration: existing=%v id=%s, want existing=true id=%s",
			second.Existing, second.ID, first.ID)
	}
	if got := len(s.Registry().IDs()); got != 1 {
		t.Errorf("registry holds %d programs, want 1", got)
	}
}

func TestRegisterErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		body string
	}{
		{"empty", `{}`},
		{"both forms", `{"unit": "even(0).", "rules": "even(0)."}`},
		{"invalid program", `{"unit": "p(T) :- p(T+1)."}`}, // non-forward rule
		{"malformed json", `{`},
		{"unknown field", `{"prog": "even(0)."}`},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/programs", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, resp.StatusCode)
		}
	}
}

func TestUnknownProgram(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, _ := postJSON(t, ts.URL+"/programs/deadbeef/ask", askRequest{Query: "even(0)"})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("ask unknown id: status %d, want 404", resp.StatusCode)
	}
	resp, _ = getJSON(t, ts.URL+"/programs/deadbeef/period")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("period unknown id: status %d, want 404", resp.StatusCode)
	}
}

func TestBadQuery(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := register(t, ts.URL, evenUnit)
	resp, body := postJSON(t, ts.URL+"/programs/"+id+"/ask", askRequest{Query: "even(T)"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("open query via ask: status %d, want 400 (%s)", resp.StatusCode, body)
	}
	resp, _ = postJSON(t, ts.URL+"/programs/"+id+"/ask", askRequest{Query: "even(("})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("syntax error: status %d, want 400", resp.StatusCode)
	}
}

// TestServedSpecRoundTrip downloads the exported specification and
// answers queries from it locally — the offline-client workflow.
func TestServedSpecRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := register(t, ts.URL, evenUnit)
	resp, body := getJSON(t, ts.URL+"/programs/"+id+"/spec")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("spec: status %d", resp.StatusCode)
	}
	sdb, err := tdd.ImportSpec(body)
	if err != nil {
		t.Fatalf("importing served spec: %v", err)
	}
	yes, err := sdb.Ask("even(123456)")
	if err != nil || !yes {
		t.Errorf("local ask over served spec = (%v, %v), want (true, nil)", yes, err)
	}
}

// TestConcurrentQueries is the acceptance criterion: many parallel
// requests against registered programs, each answer compared against a
// direct tdd.DB evaluated in-process.
func TestConcurrentQueries(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, Queue: 64})
	evenID := register(t, ts.URL, evenUnit)
	skiID := register(t, ts.URL, skiUnit)

	evenDB, err := tdd.OpenUnit(evenUnit)
	if err != nil {
		t.Fatal(err)
	}
	skiDB, err := tdd.OpenUnit(skiUnit)
	if err != nil {
		t.Fatal(err)
	}

	type probe struct {
		id    string
		query string
		want  bool
	}
	var probes []probe
	for i := 0; i < 30; i++ {
		q := fmt.Sprintf("even(%d)", 999990+i)
		want, err := evenDB.Ask(q)
		if err != nil {
			t.Fatal(err)
		}
		probes = append(probes, probe{evenID, q, want})
	}
	skiQueries := []string{
		"plane(1000, hunter)",
		"plane(1001, hunter)",
		"exists T (plane(T, hunter) & winter(T))",
		"forall X (!resort(X) | exists T plane(T, X))",
	}
	for i := 0; i < 30; i++ {
		q := skiQueries[i%len(skiQueries)]
		want, err := skiDB.Ask(q)
		if err != nil {
			t.Fatal(err)
		}
		probes = append(probes, probe{skiID, q, want})
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(probes))
	for _, p := range probes {
		wg.Add(1)
		go func(p probe) {
			defer wg.Done()
			got := askServed(t, ts.URL, p.id, p.query)
			if got != p.want {
				errs <- fmt.Errorf("served %s on %s = %v, direct = %v", p.query, p.id, got, p.want)
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestCacheEviction runs a capacity-1 cache over two programs: every
// alternation evicts and recompiles, queries stay correct throughout.
func TestCacheEviction(t *testing.T) {
	// Shards: 1 so the single-entry LRU is one global cache; with the
	// default shard count each shard gets its own slot and nothing evicts.
	s, ts := newTestServer(t, Config{CacheSize: 1, Shards: 1})
	evenID := register(t, ts.URL, evenUnit)
	skiID := register(t, ts.URL, skiUnit)

	for i := 0; i < 3; i++ {
		if !askServed(t, ts.URL, evenID, "even(1000000)") {
			t.Fatal("even query wrong after eviction")
		}
		if !askServed(t, ts.URL, skiID, "plane(0, hunter)") {
			t.Fatal("ski query wrong after eviction")
		}
	}
	m := s.Metrics().Snapshot()
	if m.CacheEvict < 2 {
		t.Errorf("cache evictions = %d, want >= 2 with capacity 1 and two programs", m.CacheEvict)
	}
	if m.CacheMisses < 3 {
		t.Errorf("cache misses = %d, want >= 3", m.CacheMisses)
	}
	if got := s.Registry().CachedLen(); got > 1 {
		t.Errorf("cache holds %d entries, capacity 1", got)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := register(t, ts.URL, evenUnit)
	askServed(t, ts.URL, id, "even(4)")
	askServed(t, ts.URL, id, "even(6)")

	resp, body := getJSON(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	var m MetricsSnapshot
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.Requests < 3 {
		t.Errorf("requests = %d, want >= 3", m.Requests)
	}
	if m.CacheHits < 2 {
		t.Errorf("cache hits = %d, want >= 2 (warm asks)", m.CacheHits)
	}
	ask, ok := m.Routes["ask"]
	if !ok {
		t.Fatal("no ask route metrics")
	}
	if ask.Requests != 2 || ask.Latency.Count != 2 {
		t.Errorf("ask route: requests=%d latency.count=%d, want 2/2", ask.Requests, ask.Latency.Count)
	}
}

// TestRequestTimeout forces an immediate deadline: requests must come
// back promptly as 503 with the timeout counter bumped, not hang.
func TestRequestTimeout(t *testing.T) {
	s, ts := newTestServer(t, Config{RequestTimeout: time.Nanosecond})
	resp, body := postJSON(t, ts.URL+"/programs", registerRequest{Unit: evenUnit})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	if got := s.Metrics().Timeouts.Load(); got < 1 {
		t.Errorf("timeouts counter = %d, want >= 1", got)
	}
}

// TestShutdownRejects checks that a closed pool turns requests into 503
// rather than panics or hangs.
func TestShutdownRejects(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Close()
	resp, _ := postJSON(t, ts.URL+"/programs", registerRequest{Unit: evenUnit})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status %d, want 503 after close", resp.StatusCode)
	}
}

func TestPool(t *testing.T) {
	p := NewPool(2, 2)
	defer p.Close()
	var mu sync.Mutex
	n := 0
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := p.Do(t.Context(), func() {
				mu.Lock()
				n++
				mu.Unlock()
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if n != 20 {
		t.Errorf("ran %d tasks, want 20", n)
	}
}

func TestLRU(t *testing.T) {
	var evicted []string
	c := newLRU[int](2, func(k string, _ int) { evicted = append(evicted, k) })
	c.put("a", 1)
	c.put("b", 2)
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	c.put("c", 3) // evicts b (a was just used)
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a should survive (recently used)")
	}
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Errorf("evicted %v, want [b]", evicted)
	}
	c.remove("a")
	if c.len() != 1 {
		t.Errorf("len = %d, want 1", c.len())
	}
}
