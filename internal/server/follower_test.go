package server

// In-process leader/follower convergence: a follower started against a
// live leader must bootstrap every program from the WAL feed, converge
// to the leader's revision, keep converging as the leader ingests, and
// refuse local writes.

import (
	"net/http/httptest"
	"testing"
	"time"
)

// waitConverged polls until the follower's cursor for id reaches the
// leader's (seq, rev) or the deadline expires.
func waitConverged(t *testing.T, leader, fol *Registry, id string) {
	t.Helper()
	wantSeq, wantRev, ok := leader.SeqRev(id)
	if !ok {
		t.Fatalf("leader does not know %s", id)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		seq, rev, ok := fol.SeqRev(id)
		if ok && seq == wantSeq && rev == wantRev {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	seq, rev, _ := fol.SeqRev(id)
	t.Fatalf("follower stuck at (%d, %s), leader at (%d, %s)", seq, rev, wantSeq, wantRev)
}

func TestFollowerConvergesAndStaysReadOnly(t *testing.T) {
	leader, lts := newTestServer(t, Config{})
	ent, _, err := leader.Registry().Register(evenUnit, "", "")
	if err != nil {
		t.Fatal(err)
	}
	id := ent.ID()
	if _, _, err := leader.Registry().Ingest(id, "even(7).\n"); err != nil {
		t.Fatal(err)
	}

	// Follower from an empty state: must bootstrap the program (verifying
	// the content hash) and replay the pre-existing batch.
	fol, err := New(Config{Follow: lts.URL, FollowInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fol.Close)
	fts := httptest.NewServer(fol.Handler())
	t.Cleanup(fts.Close)
	waitConverged(t, leader.Registry(), fol.Registry(), id)

	// The replicated model is the leader's model, not merely its rev:
	// fingerprints hash every state of the periodic model.
	lent, err := leader.Registry().Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	fent, err := fol.Registry().Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	lfp, err := lent.db.ModelFingerprint()
	if err != nil {
		t.Fatal(err)
	}
	ffp, err := fent.db.ModelFingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if lfp != ffp {
		t.Fatalf("follower model %s != leader model %s", ffp, lfp)
	}

	// Live catch-up: new leader batches reach the follower.
	for _, b := range []string{"even(9).\n", "even(11).\n"} {
		if _, _, err := leader.Registry().Ingest(id, b); err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, leader.Registry(), fol.Registry(), id)

	// The follower answers reads...
	resp, _ := postJSON(t, fts.URL+"/programs/"+id+"/ask", askRequest{Query: "even(11)"})
	if resp.StatusCode != 200 {
		t.Fatalf("follower ask status %d", resp.StatusCode)
	}
	// ...and rejects writes with 403.
	if resp, _ := postJSON(t, fts.URL+"/programs", registerRequest{Unit: skiUnit}); resp.StatusCode != 403 {
		t.Fatalf("follower register status %d, want 403", resp.StatusCode)
	}
	if resp, _ := postJSON(t, fts.URL+"/programs/"+id+"/facts", factsRequest{Facts: "even(13).\n"}); resp.StatusCode != 403 {
		t.Fatalf("follower facts status %d, want 403", resp.StatusCode)
	}

	// Replication state is exported: polls counted, lag settled to 0.
	if fol.metrics.FollowerPolls.Load() == 0 || fol.metrics.FollowerRecords.Load() < 3 {
		t.Fatalf("follower counters polls=%d records=%d, want >0 / >=3",
			fol.metrics.FollowerPolls.Load(), fol.metrics.FollowerRecords.Load())
	}
	if lag := fol.metrics.FollowerLag.Load(); lag != 0 {
		t.Fatalf("converged follower reports lag %d", lag)
	}
}

// TestDurableFollower runs a follower with its own data directory: the
// replicated state must survive the follower's restart without
// re-pulling history from the leader.
func TestDurableFollower(t *testing.T) {
	leader, lts := newTestServer(t, Config{})
	ent, _, err := leader.Registry().Register(evenUnit, "", "")
	if err != nil {
		t.Fatal(err)
	}
	id := ent.ID()
	if _, _, err := leader.Registry().Ingest(id, "even(21).\n"); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	fol, err := New(Config{Follow: lts.URL, FollowInterval: 20 * time.Millisecond, DataDir: dir, Fsync: "always"})
	if err != nil {
		t.Fatal(err)
	}
	waitConverged(t, leader.Registry(), fol.Registry(), id)
	fol.Close()

	// Restart from disk with no leader configured: the replica's state
	// was durable, so it can serve standalone.
	fol2, err := New(Config{DataDir: dir, Fsync: "off"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fol2.Close)
	progs, batches := fol2.Recovered()
	if progs != 1 || batches != 1 {
		t.Fatalf("recovered %d programs / %d batches, want 1 / 1", progs, batches)
	}
	seq, rev, ok := fol2.Registry().SeqRev(id)
	wantSeq, wantRev, _ := leader.Registry().SeqRev(id)
	if !ok || seq != wantSeq || rev != wantRev {
		t.Fatalf("restarted replica at (%d, %s), leader at (%d, %s)", seq, rev, wantSeq, wantRev)
	}
}
