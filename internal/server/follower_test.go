package server

// In-process leader/follower convergence: a follower started against a
// live leader must bootstrap every program from the WAL feed, converge
// to the leader's revision, keep converging as the leader ingests, and
// refuse local writes.

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tdd/internal/obs"
)

// waitConverged polls until the follower's cursor for id reaches the
// leader's (seq, rev) or the deadline expires.
func waitConverged(t *testing.T, leader, fol *Registry, id string) {
	t.Helper()
	wantSeq, wantRev, ok := leader.SeqRev(id)
	if !ok {
		t.Fatalf("leader does not know %s", id)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		seq, rev, ok := fol.SeqRev(id)
		if ok && seq == wantSeq && rev == wantRev {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	seq, rev, _ := fol.SeqRev(id)
	t.Fatalf("follower stuck at (%d, %s), leader at (%d, %s)", seq, rev, wantSeq, wantRev)
}

func TestFollowerConvergesAndStaysReadOnly(t *testing.T) {
	leader, lts := newTestServer(t, Config{})
	ent, _, err := leader.Registry().Register(evenUnit, "", "")
	if err != nil {
		t.Fatal(err)
	}
	id := ent.ID()
	if _, _, err := leader.Registry().Ingest(id, "even(7).\n"); err != nil {
		t.Fatal(err)
	}

	// Follower from an empty state: must bootstrap the program (verifying
	// the content hash) and replay the pre-existing batch.
	fol, err := New(Config{Follow: lts.URL, FollowInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fol.Close)
	fts := httptest.NewServer(fol.Handler())
	t.Cleanup(fts.Close)
	waitConverged(t, leader.Registry(), fol.Registry(), id)

	// The replicated model is the leader's model, not merely its rev:
	// fingerprints hash every state of the periodic model.
	lent, err := leader.Registry().Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	fent, err := fol.Registry().Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	lfp, err := lent.db.ModelFingerprint()
	if err != nil {
		t.Fatal(err)
	}
	ffp, err := fent.db.ModelFingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if lfp != ffp {
		t.Fatalf("follower model %s != leader model %s", ffp, lfp)
	}

	// Live catch-up: new leader batches reach the follower.
	for _, b := range []string{"even(9).\n", "even(11).\n"} {
		if _, _, err := leader.Registry().Ingest(id, b); err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, leader.Registry(), fol.Registry(), id)

	// The follower answers reads...
	resp, _ := postJSON(t, fts.URL+"/programs/"+id+"/ask", askRequest{Query: "even(11)"})
	if resp.StatusCode != 200 {
		t.Fatalf("follower ask status %d", resp.StatusCode)
	}
	// ...and rejects writes with 403.
	if resp, _ := postJSON(t, fts.URL+"/programs", registerRequest{Unit: skiUnit}); resp.StatusCode != 403 {
		t.Fatalf("follower register status %d, want 403", resp.StatusCode)
	}
	if resp, _ := postJSON(t, fts.URL+"/programs/"+id+"/facts", factsRequest{Facts: "even(13).\n"}); resp.StatusCode != 403 {
		t.Fatalf("follower facts status %d, want 403", resp.StatusCode)
	}

	// Replication state is exported: polls counted, lag settled to 0.
	if fol.metrics.FollowerPolls.Load() == 0 || fol.metrics.FollowerRecords.Load() < 3 {
		t.Fatalf("follower counters polls=%d records=%d, want >0 / >=3",
			fol.metrics.FollowerPolls.Load(), fol.metrics.FollowerRecords.Load())
	}
	if lag := fol.metrics.FollowerLag.Load(); lag != 0 {
		t.Fatalf("converged follower reports lag %d", lag)
	}
}

// TestDurableFollower runs a follower with its own data directory: the
// replicated state must survive the follower's restart without
// re-pulling history from the leader.
func TestDurableFollower(t *testing.T) {
	leader, lts := newTestServer(t, Config{})
	ent, _, err := leader.Registry().Register(evenUnit, "", "")
	if err != nil {
		t.Fatal(err)
	}
	id := ent.ID()
	if _, _, err := leader.Registry().Ingest(id, "even(21).\n"); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	fol, err := New(Config{Follow: lts.URL, FollowInterval: 20 * time.Millisecond, DataDir: dir, Fsync: "always"})
	if err != nil {
		t.Fatal(err)
	}
	waitConverged(t, leader.Registry(), fol.Registry(), id)
	fol.Close()

	// Restart from disk with no leader configured: the replica's state
	// was durable, so it can serve standalone.
	fol2, err := New(Config{DataDir: dir, Fsync: "off"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fol2.Close)
	progs, batches := fol2.Recovered()
	if progs != 1 || batches != 1 {
		t.Fatalf("recovered %d programs / %d batches, want 1 / 1", progs, batches)
	}
	seq, rev, ok := fol2.Registry().SeqRev(id)
	wantSeq, wantRev, _ := leader.Registry().SeqRev(id)
	if !ok || seq != wantSeq || rev != wantRev {
		t.Fatalf("restarted replica at (%d, %s), leader at (%d, %s)", seq, rev, wantSeq, wantRev)
	}
}

// TestFollowerDetectsLeaderLostHistory: a leader that comes back with
// less history than the follower holds (lost data dir) — or with the
// same count but a different chain — must surface as a divergence error,
// not as behind=0 / lag 0 "fully caught up".
func TestFollowerDetectsLeaderLostHistory(t *testing.T) {
	leaderA, ltsA := newTestServer(t, Config{})
	ent, _, err := leaderA.Registry().Register(evenUnit, "", "")
	if err != nil {
		t.Fatal(err)
	}
	id := ent.ID()
	for _, b := range []string{"even(31).\n", "even(33).\n"} {
		if _, _, err := leaderA.Registry().Ingest(id, b); err != nil {
			t.Fatal(err)
		}
	}

	// Drive replication by hand (no poll loop): the follower converges to
	// leader A at seq 2.
	fol, _ := newTestServer(t, Config{})
	client := &http.Client{Timeout: 5 * time.Second}
	fA := &follower{srv: fol, leader: ltsA.URL, client: client}
	if behind, err := fA.replicate(obs.NewID(), id); err != nil || behind != 0 {
		t.Fatalf("initial replication: behind=%d err=%v", behind, err)
	}
	seq, rev, _ := fol.Registry().SeqRev(id)
	if seq != 2 {
		t.Fatalf("follower at seq %d, want 2", seq)
	}

	// Leader "restarts" non-durably with only one of the batches: its
	// feed ends before the follower's cursor.
	leaderB, ltsB := newTestServer(t, Config{})
	if _, _, err := leaderB.Registry().Register(evenUnit, "", ""); err != nil {
		t.Fatal(err)
	}
	if _, _, err := leaderB.Registry().Ingest(id, "even(31).\n"); err != nil {
		t.Fatal(err)
	}
	fB := &follower{srv: fol, leader: ltsB.URL, client: client}
	if behind, err := fB.replicate(obs.NewID(), id); err == nil || !strings.Contains(err.Error(), "lost history") {
		t.Fatalf("short leader: behind=%d err=%v, want lost-history error", behind, err)
	}

	// Same batch count, different chain: equal seq must compare revs.
	leaderC, ltsC := newTestServer(t, Config{})
	if _, _, err := leaderC.Registry().Register(evenUnit, "", ""); err != nil {
		t.Fatal(err)
	}
	for _, b := range []string{"even(41).\n", "even(43).\n"} {
		if _, _, err := leaderC.Registry().Ingest(id, b); err != nil {
			t.Fatal(err)
		}
	}
	fC := &follower{srv: fol, leader: ltsC.URL, client: client}
	if behind, err := fC.replicate(obs.NewID(), id); err == nil || !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("rewritten leader: behind=%d err=%v, want diverged error", behind, err)
	}

	// The follower's own state never moved through any of it.
	if s2, r2, _ := fol.Registry().SeqRev(id); s2 != seq || r2 != rev {
		t.Fatalf("follower state moved to (%d, %s) during divergence, was (%d, %s)", s2, r2, seq, rev)
	}
}
