package server

// Hand-rolled singleflight for query evaluation: identical concurrent
// asks — same program, same content revision, same query text (and for
// the answers endpoint, the same limit) — coalesce into one evaluation.
// The first request becomes the flight leader and goes through the
// ordinary admission path (shard gate, worker pool); every later
// arrival joins the in-flight evaluation and just waits for the
// leader's result, consuming no worker, no queue slot, and no shard
// capacity. The revision is part of the key, so an ingest that moves
// the program immediately stops coalescing against the stale model:
// the next ask for the new revision starts a fresh flight.
//
// Results are shared by pointer: entries and answer slices are
// immutable once published, and error values are never mutated, so a
// joiner may read the flight's fields freely after done is closed (the
// close is the happens-before edge).

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tdd"
)

// flightKey identifies one coalescable evaluation.
type flightKey struct {
	id      string
	rev     string
	query   string
	answers bool // false = ask (boolean), true = answers (enumeration)
	limit   int  // answers only
}

// flight is one in-progress evaluation. The leader fills the result
// fields, then closes done; joiners block on done.
type flight struct {
	done chan struct{}

	// Introspection state for /debug/flights: the key and start time are
	// fixed at creation; joiners counts requests that coalesced onto this
	// evaluation (atomic — joins race the debug snapshot).
	key     flightKey
	started time.Time
	joiners atomic.Int64

	// Written by the leader before close(done), read-only afterwards.
	ent    *entry
	result bool
	ans    []tdd.Answer
	engine string
	err    error
}

// flightGroup tracks in-flight evaluations by key. The zero value is
// ready to use.
type flightGroup struct {
	mu sync.Mutex
	m  map[flightKey]*flight
}

// join returns the flight for key, creating it when none is in
// progress. leader reports whether the caller owns the evaluation and
// must eventually call finish; a joiner only waits on f.done.
func (g *flightGroup) join(key flightKey) (f *flight, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.m == nil {
		g.m = make(map[flightKey]*flight)
	}
	if f, ok := g.m[key]; ok {
		f.joiners.Add(1)
		return f, false
	}
	f = &flight{done: make(chan struct{}), key: key, started: time.Now()}
	g.m[key] = f
	return f, true
}

// finish publishes the leader's result: the key is retired first, so a
// request arriving after the close starts a fresh flight rather than
// reading an ever-staler cached answer, then done is closed to release
// the joiners.
func (g *flightGroup) finish(key flightKey, f *flight) {
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
}

// size reports how many evaluations are in flight (test hook).
func (g *flightGroup) size() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.m)
}

// FlightSnapshot is one in-flight coalescable evaluation as reported by
// GET /debug/flights.
type FlightSnapshot struct {
	Program string `json:"program"`
	Rev     string `json:"rev"`
	Query   string `json:"query"`
	Kind    string `json:"kind"` // "ask" or "answers"
	Limit   int    `json:"limit,omitempty"`
	Joiners int64  `json:"joiners"`
	AgeUs   int64  `json:"age_us"`
	// Shard is the program's lock domain, filled in by the debug handler.
	Shard int `json:"shard"`
}

// snapshot reports every in-flight evaluation, oldest first.
func (g *flightGroup) snapshot() []FlightSnapshot {
	g.mu.Lock()
	out := make([]FlightSnapshot, 0, len(g.m))
	now := time.Now()
	for _, f := range g.m {
		kind := "ask"
		if f.key.answers {
			kind = "answers"
		}
		out = append(out, FlightSnapshot{
			Program: f.key.id,
			Rev:     f.key.rev,
			Query:   f.key.query,
			Kind:    kind,
			Limit:   f.key.limit,
			Joiners: f.joiners.Load(),
			AgeUs:   now.Sub(f.started).Microseconds(),
		})
	}
	g.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].AgeUs > out[j].AgeUs })
	return out
}
