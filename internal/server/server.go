package server

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"

	"tdd/internal/obs"
	"tdd/internal/wal"
)

// Config tunes a Server. The zero value is usable: DefaultConfig fills in
// each unset field.
type Config struct {
	// Workers bounds concurrent query evaluations (default: NumCPU).
	Workers int
	// Queue is how many requests may wait for a worker beyond the ones
	// running (default: 4×Workers, at least 64 — backpressure should bite
	// under real overload, not at a burst a few cores can absorb). Under
	// "shed" further requests fast-fail with 503; under "block" they wait
	// until their deadline.
	Queue int
	// CacheSize bounds the number of warm specifications resident at
	// once (default 64). The budget is split evenly across shards.
	CacheSize int
	// Shards splits the program registry, spec cache, and writer locks
	// into this many independent lock domains keyed by program content
	// hash (default 8). Sharding never changes answers — only which
	// mutex a program's table entries live under; 1 restores the single
	// global lock domain.
	Shards int
	// Shed picks the admission policy. "shed" (the default) fast-fails
	// requests when the program's shard is at capacity (429 Retry-After)
	// or the worker queue is full (503 Retry-After) instead of letting
	// them block until the request deadline. "block" restores the old
	// block-until-deadline admission.
	Shed string
	// ShardQueue bounds in-flight requests per shard under "shed". The
	// default is Workers+Queue — the full admission capacity, so the
	// gate never rejects a burst the server could absorb globally.
	// Setting it lower partitions capacity between program families: one
	// hot family then exhausts only its own shard's slots (429) while
	// the other shards keep admitting.
	ShardQueue int
	// RequestTimeout is the per-request deadline covering queueing and
	// evaluation (default 30s; <0 disables).
	RequestTimeout time.Duration
	// MaxWindow bounds period certification per program (0 = engine
	// default).
	MaxWindow int
	// Parallelism, when positive, evaluates each program's fixpoint and
	// incremental delta propagation on up to this many worker goroutines
	// (tdd.WithParallelism). 0 — the default — keeps the sequential
	// engine schedule. Independent of Workers, which bounds concurrent
	// requests: Workers×Parallelism goroutines can be evaluating at once.
	Parallelism int
	// Slicing opens every program with query-directed relevance slicing
	// (tdd.WithSlicing): a closed ask whose predicates depend only on
	// part of the program is answered from that part's (much smaller)
	// certified slice. Answers are identical either way; the ask
	// response's engine field reports "sliced" when the path is active.
	Slicing bool
	// Logger receives structured request logs (default: discard).
	Logger *slog.Logger
	// SlowQueryLog, when positive, logs the full phase trace of any ask,
	// answers, or facts request that takes at least this long (default:
	// disabled).
	SlowQueryLog time.Duration
	// SlowQueryKeep bounds the GET /debug/slow ring buffer of fully
	// traced slow queries (default 64; <0 disables retention — slow
	// queries still log, they just are not kept for later inspection).
	SlowQueryKeep int
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (default:
	// off — profiling endpoints expose internals and should be opted
	// into).
	EnablePprof bool

	// DataDir, when set, makes the server durable: every program lives
	// under DataDir/programs/<id>/ as base sources, a periodic spec
	// snapshot, and a write-ahead log of fact batches. On startup the
	// directory is recovered and every program recompiled, so a restarted
	// server answers warm.
	DataDir string
	// Fsync picks the WAL durability policy: "always" (fsync inside every
	// append, full durability), "interval" (background fsync every
	// FsyncInterval; default), or "off" (fsync only on close).
	Fsync string
	// FsyncInterval is the background fsync cadence under Fsync
	// "interval" (default 100ms).
	FsyncInterval time.Duration
	// SnapshotEvery folds a program's history into a snapshot and
	// truncates its log every this many batches (default 64; <0
	// disables snapshotting).
	SnapshotEvery int
	// Follow, when set to a leader's base URL, runs the server as a
	// read-only follower: it tails the leader's WAL feed, applies every
	// batch through the ordinary ingest path, and rejects writes with
	// 403. Composable with DataDir (a durable follower).
	Follow string
	// FollowInterval is the leader poll cadence (default 500ms).
	FollowInterval time.Duration
}

// DefaultConfig resolves unset fields.
func DefaultConfig(c Config) Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.Queue <= 0 {
		c.Queue = 4 * c.Workers
		if c.Queue < 64 {
			c.Queue = 64
		}
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 64
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.Shed == "" {
		c.Shed = "shed"
	}
	if c.ShardQueue <= 0 {
		c.ShardQueue = c.Workers + c.Queue
	}
	if c.SlowQueryKeep == 0 {
		c.SlowQueryKeep = 64
	}
	if c.SlowQueryKeep < 0 {
		c.SlowQueryKeep = 0
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.RequestTimeout < 0 {
		c.RequestTimeout = 0
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.Fsync == "" {
		c.Fsync = "interval"
	}
	if c.FsyncInterval <= 0 {
		c.FsyncInterval = 100 * time.Millisecond
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 64
	}
	if c.FollowInterval <= 0 {
		c.FollowInterval = 500 * time.Millisecond
	}
	return c
}

// routeNames label metrics slots; they match the mux patterns below.
var routeNames = []string{
	"register", "list", "facts", "ask", "answers", "period", "spec", "wal", "healthz", "metrics", "metrics_prom",
	"debug_flights", "debug_slow", "debug_shards", "debug_graph",
}

// Server is the tddserve HTTP service: registry + spec cache + worker
// pool + metrics behind a JSON API. Create with New, expose with
// Handler or Serve, stop with Shutdown.
type Server struct {
	cfg      Config
	reg      *Registry
	pool     *Pool
	metrics  *Metrics
	mux      *http.ServeMux
	httpSrv  *http.Server
	inflight *inflightTable
	slow     *slowRing

	// readOnly is set in follower mode: register and facts return 403.
	readOnly bool
	follower *follower
	// recoveredPrograms/recoveredBatches report what RecoverFromWAL
	// replayed at startup (boot banner, tests).
	recoveredPrograms int
	recoveredBatches  int
}

// New builds a Server (resolving cfg through DefaultConfig), recovers
// the data directory when one is configured, starts the follower loop
// when a leader is configured, and starts the worker pool.
func New(cfg Config) (*Server, error) {
	cfg = DefaultConfig(cfg)
	if cfg.Shed != "shed" && cfg.Shed != "block" {
		return nil, fmt.Errorf("server: unknown admission policy %q (want \"shed\" or \"block\")", cfg.Shed)
	}
	m := newMetrics(routeNames)
	m.EvalParallelism.Store(int64(cfg.Parallelism))
	s := &Server{
		cfg:      cfg,
		metrics:  m,
		reg:      NewRegistry(cfg.Shards, cfg.CacheSize, cfg.MaxWindow, cfg.Parallelism, m),
		pool:     NewPool(cfg.Workers, cfg.Queue),
		mux:      http.NewServeMux(),
		inflight: newInflightTable(),
		slow:     newSlowRing(cfg.SlowQueryKeep),
	}
	s.reg.setShardCapacity(cfg.ShardQueue)
	if cfg.Slicing {
		s.reg.EnableSlicing()
	}
	if cfg.DataDir != "" {
		pol, err := wal.ParsePolicy(cfg.Fsync)
		if err != nil {
			return nil, err
		}
		store, err := wal.Open(cfg.DataDir, wal.Options{
			Policy:   pol,
			Interval: cfg.FsyncInterval,
			FsyncObserver: func(d time.Duration) {
				m.WalFsyncs.Add(1)
				m.fsyncLatency.observe(d)
			},
		})
		if err != nil {
			return nil, fmt.Errorf("opening data directory: %w", err)
		}
		snapEvery := cfg.SnapshotEvery
		if snapEvery < 0 {
			snapEvery = 0
		}
		s.reg.EnableDurability(store, snapEvery)
		// Recover warm: every program recompiled now, so the first query
		// after a restart hits the same fast path as before the crash.
		progs, batches, err := s.reg.RecoverFromWAL(true)
		if err != nil {
			store.Close() //nolint:errcheck // the recovery error wins
			return nil, fmt.Errorf("recovering %s: %w", cfg.DataDir, err)
		}
		s.recoveredPrograms, s.recoveredBatches = progs, batches
	}
	s.route("POST /programs", "register", s.handleRegister)
	s.route("GET /programs", "list", s.handleList)
	s.route("POST /programs/{id}/facts", "facts", s.handleFacts)
	s.route("POST /programs/{id}/ask", "ask", s.handleAsk)
	s.route("POST /programs/{id}/answers", "answers", s.handleAnswers)
	s.route("GET /programs/{id}/period", "period", s.handlePeriod)
	s.route("GET /programs/{id}/spec", "spec", s.handleSpec)
	s.route("GET /programs/{id}/wal", "wal", s.handleWAL)
	s.route("GET /healthz", "healthz", s.handleHealthz)
	s.route("GET /metrics", "metrics", s.handleMetrics)
	s.route("GET /metrics.prom", "metrics_prom", s.handleMetricsProm)
	s.route("GET /debug/flights", "debug_flights", s.handleDebugFlights)
	s.route("GET /debug/slow", "debug_slow", s.handleDebugSlow)
	s.route("GET /debug/shards", "debug_shards", s.handleDebugShards)
	s.route("GET /debug/graph", "debug_graph", s.handleDebugGraph)
	if cfg.EnablePprof {
		// Raw stdlib handlers, outside the instrumentation middleware:
		// profile endpoints stream for configurable durations and would
		// only distort the latency histograms.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	if cfg.Follow != "" {
		s.readOnly = true
		s.follower = startFollower(s, cfg.Follow, cfg.FollowInterval)
	}
	return s, nil
}

// Recovered reports what startup recovery replayed from the data
// directory (0, 0 without one).
func (s *Server) Recovered() (programs, batches int) {
	return s.recoveredPrograms, s.recoveredBatches
}

// Registry exposes the program registry (preloading, tests).
func (s *Server) Registry() *Registry { return s.reg }

// Metrics exposes the metrics (tests).
func (s *Server) Metrics() *Metrics { return s.metrics }

// statusRecorder captures the response status for metrics and logs.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// route registers pattern with the instrumentation middleware: in-flight
// gauge, request/error counters, latency histogram, structured log line.
func (s *Server) route(pattern, name string, h http.HandlerFunc) {
	rm := s.metrics.route(name)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.metrics.Requests.Add(1)
		s.metrics.InFlight.Add(1)
		rm.Requests.Add(1)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}

		// Every request gets a trace ID: echoed in the X-Trace-Id header,
		// attached to the log line, and reused as the ?trace=1 trace ID so
		// logs and phase trees join on it. An inbound X-Trace-Id (a proxy,
		// or a follower correlating its replication fetches with the
		// leader's logs) is honored so both sides log the same ID.
		tid := r.Header.Get("X-Trace-Id")
		if tid == "" || len(tid) > 64 {
			tid = obs.NewID()
		}
		rec.Header().Set("X-Trace-Id", tid)
		program := r.PathValue("id")
		shardIdx := -1
		if program != "" {
			shardIdx = s.reg.shardIndex(program)
		}
		token := s.inflight.add(&inflightReq{
			route:   name,
			method:  r.Method,
			path:    r.URL.Path,
			program: program,
			shard:   shardIdx,
			traceID: tid,
			started: start,
		})
		h(rec, r.WithContext(obs.WithID(r.Context(), tid)))
		s.inflight.remove(token)

		d := time.Since(start)
		s.metrics.InFlight.Add(-1)
		rm.latency.observe(d)
		if rec.status >= 400 {
			s.metrics.Errors.Add(1)
			rm.Errors.Add(1)
		}
		s.cfg.Logger.Info("request",
			"route", name,
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"duration_us", d.Microseconds(),
			"remote", r.RemoteAddr,
			"trace", tid,
		)
	})
}

// Handler returns the root handler (also useful under httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on l until Shutdown. It always returns a
// non-nil error; after Shutdown the error is http.ErrServerClosed.
func (s *Server) Serve(l net.Listener) error {
	s.httpSrv = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s.httpSrv.Serve(l)
}

// Shutdown gracefully stops the server. The ordering is the durability
// guarantee: the listener closes and in-flight requests get until ctx's
// deadline to finish; the follower loop stops; the worker pool is torn
// down, which WAITS for every dispatched closure — so when the WAL store
// finally flushes, fsyncs, and closes, no ingest can still be appending.
// Every 2xx-acknowledged batch is fully on disk; an ingest racing the
// shutdown either completed its append first or gets rejected with
// ErrClosed (503) — never a torn record.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	if s.httpSrv != nil {
		err = s.httpSrv.Shutdown(ctx)
	}
	if s.follower != nil {
		s.follower.stop()
	}
	s.pool.Close()
	if werr := s.reg.CloseWAL(); werr != nil && err == nil {
		err = werr
	}
	return err
}

// Close releases resources without the graceful drain (tests using only
// Handler). The follower → pool → WAL ordering matches Shutdown.
func (s *Server) Close() {
	if s.follower != nil {
		s.follower.stop()
	}
	s.pool.Close()
	s.reg.CloseWAL() //nolint:errcheck // no caller to report to
}
