package server

import (
	"context"
	"errors"
	"sync"
)

// Pool errors.
var (
	// ErrPoolClosed is returned by Do once Close has been called.
	ErrPoolClosed = errors.New("server: worker pool closed")
	// ErrQueueFull is returned by TryDo when every worker is busy and the
	// queue is at capacity — the fast-fail admission verdict.
	ErrQueueFull = errors.New("server: request queue full")
	// ErrShardSaturated is returned by the per-shard admission gate when
	// the program's shard has no in-flight capacity left (see shard.go).
	// It is declared here with its sibling admission errors.
	ErrShardSaturated = errors.New("server: shard at capacity")
)

// task is one unit of submitted work. done is closed by the worker after
// fn returns, establishing the happens-before edge that lets the
// submitter read anything fn wrote.
type task struct {
	ctx  context.Context
	fn   func()
	done chan struct{}
}

// Pool is a bounded worker pool: a fixed set of goroutines draining a
// bounded queue. It is the server's admission controller — at most
// `workers` query evaluations run at once, at most `queue` more wait, and
// beyond that submitters block until their per-request deadline expires.
// That turns overload into prompt 503s instead of a goroutine pile-up,
// and caps the memory the evaluation engine can pin concurrently.
type Pool struct {
	tasks  chan task
	closed chan struct{}
	once   sync.Once
	wg     sync.WaitGroup
}

// NewPool starts `workers` worker goroutines with a queue of `queue`
// waiting tasks (both forced to at least 1 / 0).
func NewPool(workers, queue int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queue < 0 {
		queue = 0
	}
	p := &Pool{
		tasks:  make(chan task, queue),
		closed: make(chan struct{}),
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		select {
		case <-p.closed:
			return
		case t := <-p.tasks:
			// Skip tasks whose submitter already gave up; their response
			// has been written.
			if t.ctx.Err() == nil {
				t.fn()
			}
			close(t.done)
		}
	}
}

// Do runs fn on a pool worker and returns once it has completed. It
// returns ctx.Err() if the task could not be queued or did not finish
// before the context was done (the worker may still run fn to completion
// in the background; the caller must not read fn's results after a
// non-nil return), and ErrPoolClosed during shutdown.
func (p *Pool) Do(ctx context.Context, fn func()) error {
	t := task{ctx: ctx, fn: fn, done: make(chan struct{})}
	select {
	case p.tasks <- t:
	case <-ctx.Done():
		return ctx.Err()
	case <-p.closed:
		return ErrPoolClosed
	}
	select {
	case <-t.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-p.closed:
		return ErrPoolClosed
	}
}

// TryDo is Do with fast-fail admission: if the task cannot be queued
// RIGHT NOW — every worker busy, queue full — it returns ErrQueueFull
// immediately instead of blocking until the deadline. Once admitted the
// semantics match Do exactly. This is the load-shedding entry point:
// under overload the caller turns the error into a prompt 429/503 with
// Retry-After rather than holding the connection open to time out.
func (p *Pool) TryDo(ctx context.Context, fn func()) error {
	t := task{ctx: ctx, fn: fn, done: make(chan struct{})}
	select {
	case p.tasks <- t:
	case <-p.closed:
		return ErrPoolClosed
	default:
		return ErrQueueFull
	}
	select {
	case <-t.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-p.closed:
		return ErrPoolClosed
	}
}

// Depth reports how many admitted tasks are waiting for a worker, and
// Capacity the queue bound — the tddserve_queue_depth/_capacity gauges.
func (p *Pool) Depth() int    { return len(p.tasks) }
func (p *Pool) Capacity() int { return cap(p.tasks) }

// Close stops the workers and waits for them to exit. In-flight tasks
// finish; queued tasks are abandoned (their submitters get ErrPoolClosed).
// The server shuts its HTTP listener down first, so by the time Close
// runs no request handlers remain.
func (p *Pool) Close() {
	p.once.Do(func() { close(p.closed) })
	p.wg.Wait()
}
