package server

// Follower mode: tail a leader's WAL feed and apply it locally.
//
// The follower polls GET /programs on the leader, then for each program
// GET /programs/{id}/wal?from=<local seq>. An unknown program is
// bootstrapped by registering the base sources carried by the from=0
// feed (the registry's content hash must reproduce the leader's id —
// leaders and followers share the hash in internal/wal); subsequent
// records are folded in through the ordinary ingest path, and each
// application verifies the resulting revision against the leader's
// record (ApplyReplicated), so divergence is detected at the first bad
// batch rather than silently served. The follower's own HTTP surface is
// read-only (403 on register/facts) — its state is a function of the
// leader's feed alone.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"tdd/internal/obs"
)

type follower struct {
	srv      *Server
	leader   string // base URL, no trailing slash
	interval time.Duration
	client   *http.Client

	stopOnce sync.Once
	stopCh   chan struct{}
	done     chan struct{}
}

// startFollower launches the poll loop. stop() shuts it down and waits
// for the in-flight poll to finish.
func startFollower(s *Server, leaderURL string, interval time.Duration) *follower {
	f := &follower{
		srv:      s,
		leader:   strings.TrimRight(leaderURL, "/"),
		interval: interval,
		client:   &http.Client{Timeout: 30 * time.Second},
		stopCh:   make(chan struct{}),
		done:     make(chan struct{}),
	}
	go f.run()
	return f
}

func (f *follower) stop() {
	f.stopOnce.Do(func() { close(f.stopCh) })
	<-f.done
}

func (f *follower) run() {
	defer close(f.done)
	t := time.NewTicker(f.interval)
	defer t.Stop()
	// First poll immediately: a follower started against a live leader
	// should converge without waiting out the first tick.
	f.poll()
	for {
		select {
		case <-f.stopCh:
			return
		case <-t.C:
			f.poll()
		}
	}
}

// poll runs one replication cycle: list the leader's programs, tail each
// one's feed past the local cursor, and refresh the lag gauge. The whole
// cycle shares one trace ID, sent as X-Trace-Id on every leader fetch
// and attached to the follower's own log lines, so a replication problem
// can be joined across both servers' logs.
func (f *follower) poll() {
	m := f.srv.metrics
	tid := obs.NewID()
	var list listResponse
	if err := f.getJSON(tid, f.leader+"/programs", &list); err != nil {
		m.FollowerErrors.Add(1)
		f.srv.cfg.Logger.Warn("follower: listing leader programs", "leader", f.leader, "trace", tid, "err", err)
		return
	}
	var lag int64
	for _, id := range list.Programs {
		behind, err := f.replicate(tid, id)
		if err != nil {
			m.FollowerErrors.Add(1)
			f.srv.cfg.Logger.Warn("follower: replicating program", "program", id, "trace", tid, "err", err)
		}
		lag += behind
	}
	m.FollowerLag.Store(lag)
	m.FollowerPolls.Add(1)
}

// replicate catches one program up to the leader and returns how many
// leader batches remain unapplied (normally 0; nonzero only when an
// apply failed part-way).
func (f *follower) replicate(tid, id string) (behind int64, err error) {
	from, rev, known := f.srv.reg.SeqRev(id)
	if !known {
		from = 0
	}
	var feed WalFeed
	if err := f.getJSON(tid, fmt.Sprintf("%s/programs/%s/wal?from=%d", f.leader, id, from), &feed); err != nil {
		return 0, err
	}
	if known {
		// A leader that restarted with less history than we hold (or
		// rewrote history at our cursor) has forked from us: the feed
		// cannot repair that, so report divergence instead of letting the
		// empty tail read as "fully caught up" with lag 0.
		if feed.Seq < from {
			return 0, fmt.Errorf("leader has only %d batches for %s, local has %d — leader lost history, follower state is forked", feed.Seq, id, from)
		}
		if feed.Seq == from && feed.Rev != rev {
			return 0, fmt.Errorf("diverged on %s at seq %d: local rev %s, leader %s", id, from, rev, feed.Rev)
		}
	}
	if !known {
		if feed.Base == nil {
			return int64(feed.Seq), fmt.Errorf("leader feed for %s carries no base sources", id)
		}
		ent, _, err := f.srv.reg.Register(feed.Base.Unit, feed.Base.Rules, feed.Base.Facts)
		if err != nil {
			return int64(feed.Seq), fmt.Errorf("registering leader program: %w", err)
		}
		if ent.ID() != id {
			return int64(feed.Seq), fmt.Errorf("leader base for %s hashes to %s locally", id, ent.ID())
		}
	}
	for i, rec := range feed.Records {
		if err := f.srv.reg.ApplyReplicated(id, rec); err != nil {
			return int64(len(feed.Records) - i), err
		}
		f.srv.metrics.FollowerRecords.Add(1)
	}
	return 0, nil
}

// getJSON fetches url carrying tid as X-Trace-Id, so the leader's
// request log and the follower's poll logs share one correlation ID.
func (f *follower) getJSON(tid, url string, v any) error {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	req.Header.Set("X-Trace-Id", tid)
	resp, err := f.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("GET %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
