package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"tdd"
	"tdd/internal/obs"
	"tdd/internal/wal"
)

// Wire types. Every response body is JSON; errors are {"error": "..."}
// with a matching status code.

type registerRequest struct {
	// Unit is a mixed rules+facts source (facts are the ground unit
	// clauses); alternatively Rules and Facts are separate sources.
	Unit  string `json:"unit,omitempty"`
	Rules string `json:"rules,omitempty"`
	Facts string `json:"facts,omitempty"`
}

type periodJSON struct {
	Base int `json:"base"`
	P    int `json:"p"`
}

type registerResponse struct {
	ID              string     `json:"id"`
	Rev             string     `json:"rev"`
	Existing        bool       `json:"existing"`
	Period          periodJSON `json:"period"`
	Representatives int        `json:"representatives"`
	Facts           int        `json:"facts"`
	// LintWarnings counts lint findings at warning severity or above,
	// always present so clients notice defects without opting in.
	LintWarnings int `json:"lint_warnings"`
	// Lint is the full Tier-A diagnostic list, present when the request
	// carried ?lint=1.
	Lint *tdd.LintResult `json:"lint,omitempty"`
}

type factsRequest struct {
	// Facts is a fact source in the same syntax as registration fact
	// sources, including interval facts.
	Facts string `json:"facts"`
}

type factsResponse struct {
	ID string `json:"id"`
	// Rev is the program's new content revision; it advances with every
	// ingested batch while the id stays the stable handle.
	Rev             string     `json:"rev"`
	NewFacts        int        `json:"new_facts"`
	Duplicates      int        `json:"duplicates"`
	Derived         int        `json:"derived"`
	Recertified     bool       `json:"recertified"`
	PeriodChanged   bool       `json:"period_changed"`
	Period          periodJSON `json:"period"`
	Representatives int        `json:"representatives"`
	Facts           int        `json:"facts"`
	// LintWarnings and Lint mirror registerResponse: the batch may have
	// filled a predicate that was flagged undefined, or emptied nothing —
	// the program is re-linted against the extended database.
	LintWarnings int             `json:"lint_warnings"`
	Lint         *tdd.LintResult `json:"lint,omitempty"`
	ElapsedUs    int64           `json:"elapsed_us"`
}

type askRequest struct {
	Query string `json:"query"`
}

type askResponse struct {
	Result    bool   `json:"result"`
	Engine    string `json:"engine"` // "spec" (cache fast path) or "bt" (fallback)
	ElapsedUs int64  `json:"elapsed_us"`
	// Coalesced marks a response served by joining an identical in-flight
	// evaluation rather than running its own.
	Coalesced bool   `json:"coalesced,omitempty"`
	TraceID   string `json:"trace_id,omitempty"`
	// Trace is the merged phase tree (compile pipeline + this request),
	// present when the request carried ?trace=1.
	Trace *traceJSON `json:"trace,omitempty"`
	// Profile is the program's EXPLAIN ANALYZE join-cost profile —
	// per-rule, per-body-literal scan/match counters with attributed wall
	// time, bucketed by timestamp stratum — present when the request
	// carried ?profile=1. It covers the program's lifetime evaluation
	// (compile-time certification plus every ingest), not just this
	// request: a warm ask answers from the spec cache and does no join
	// work of its own.
	Profile *tdd.ProfileReport `json:"profile,omitempty"`
}

// traceJSON is the ?trace=1 response block: the merged phase tree plus
// the warm program's per-rule firing table.
type traceJSON struct {
	obs.TraceJSON
	Rules []tdd.RuleStat `json:"rules,omitempty"`
}

// mergedTrace folds the program's lifetime trace (compile + ingests) into
// the request's own trace as a synthetic leading "compile" phase, so a
// warm query's tree still shows where the preprocessing time went. The
// compile phase's duration is the sum of its children (the lifetime
// trace's wall clock includes arbitrary idle time between requests, so it
// would dwarf the work it contains); the merged total is that sum plus
// the request's wall time, keeping phase durations and the total
// consistent.
func mergedTrace(compile *obs.TraceJSON, req *obs.TraceJSON, rules []tdd.RuleStat) *traceJSON {
	if req == nil {
		return nil
	}
	out := &traceJSON{TraceJSON: *req, Rules: rules}
	if compile != nil {
		var us int64
		for _, p := range compile.Phases {
			us += p.Us
		}
		cp := obs.SpanJSON{Name: "compile", Us: us, Children: compile.Phases}
		out.Phases = append([]obs.SpanJSON{cp}, req.Phases...)
		out.TotalUs = us + req.TotalUs
		out.Dropped += compile.Dropped
	}
	return out
}

type answersRequest struct {
	Query string `json:"query"`
	Limit int    `json:"limit,omitempty"` // 0 = unlimited
}

type answerJSON struct {
	Temporal    map[string]int    `json:"temporal,omitempty"`
	NonTemporal map[string]string `json:"non_temporal,omitempty"`
}

type answersResponse struct {
	Answers []answerJSON `json:"answers"`
	Count   int          `json:"count"`
	// Rewrite is the specification's rewrite rule; each temporal binding
	// t stands for the infinite family reachable by running the rule
	// backwards (t, t+p, t+2p, ... once t >= base).
	Rewrite   string     `json:"rewrite"`
	Engine    string     `json:"engine"`
	ElapsedUs int64      `json:"elapsed_us"`
	Coalesced bool       `json:"coalesced,omitempty"`
	TraceID   string     `json:"trace_id,omitempty"`
	Trace     *traceJSON `json:"trace,omitempty"`
	// Profile mirrors askResponse.Profile (?profile=1).
	Profile *tdd.ProfileReport `json:"profile,omitempty"`
}

type listResponse struct {
	Programs []string `json:"programs"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// maxBodyBytes bounds request bodies; programs and queries are text, a
// megabyte is already generous.
const maxBodyBytes = 1 << 20

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v) //nolint:errcheck // best effort; client may be gone
}

// fail maps an error to a JSON error response and books it against the
// route's counters. Shed verdicts are the explicit-backpressure surface:
// a saturated shard is 429 (this program family is hot — back off), a
// full worker queue 503 (the whole server is hot — retry elsewhere),
// both with Retry-After so well-behaved clients and load balancers pace
// themselves. Timeouts become 503; unknown programs 404; everything
// else is a client error 400.
func (s *Server) fail(w http.ResponseWriter, route string, err error) {
	rm := s.metrics.route(route)
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrShardSaturated):
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", "1")
		s.metrics.Shed.Add(1)
		rm.Sheds.Add(1)
		err = fmt.Errorf("overloaded, retry later: %w", err)
	case errors.Is(err, ErrQueueFull):
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
		s.metrics.Shed.Add(1)
		rm.Sheds.Add(1)
		err = fmt.Errorf("overloaded, retry later: %w", err)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		status = http.StatusServiceUnavailable
		s.metrics.Timeouts.Add(1)
		rm.Timeouts.Add(1)
		err = fmt.Errorf("request timed out or was canceled: %w", err)
	case errors.Is(err, ErrPoolClosed), errors.Is(err, wal.ErrClosed):
		// A WAL closed mid-request means shutdown won the race: the batch
		// was rejected, not torn — retry against a live server.
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	return nil
}

// dispatchTo runs fn on the worker pool under the per-request deadline,
// admitting it through id's shard gate first when shedding is enabled.
// Under "shed" both admission steps fast-fail — a saturated shard or a
// full queue rejects in microseconds instead of blocking the connection
// until its deadline; under "block" the legacy wait-for-a-slot
// semantics apply.
func (s *Server) dispatchTo(r *http.Request, id string, fn func()) error {
	ctx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	if s.cfg.Shed != "shed" {
		return s.pool.Do(ctx, fn)
	}
	sh := s.reg.shardFor(id)
	if !sh.tryAcquire() {
		return ErrShardSaturated
	}
	defer sh.release()
	return s.pool.TryDo(ctx, fn)
}

// awaitFlight blocks a coalesced request until its flight leader's
// evaluation resolves, honoring the joiner's own deadline. Joiners hold
// no worker, no queue slot, and no shard capacity — that is the point.
func (s *Server) awaitFlight(r *http.Request, f *flight) error {
	ctx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	select {
	case <-f.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// rejectReadOnly rejects a mutating request on a follower: the replica's
// state is defined entirely by the leader's WAL feed, so local writes
// would fork it. Enforced at the handler level — the registry itself
// stays writable for the replication loop.
func (s *Server) rejectReadOnly(w http.ResponseWriter) bool {
	if !s.readOnly {
		return false
	}
	writeJSON(w, http.StatusForbidden,
		errorResponse{Error: "read-only follower of " + s.cfg.Follow + ": send writes to the leader"})
	return true
}

// POST /programs
func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	if s.rejectReadOnly(w) {
		return
	}
	var req registerRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.fail(w, "register", err)
		return
	}
	if req.Unit == "" && req.Rules == "" {
		s.fail(w, "register", errors.New(`need "unit" or "rules" (+ optional "facts")`))
		return
	}
	if req.Unit != "" && (req.Rules != "" || req.Facts != "") {
		s.fail(w, "register", errors.New(`"unit" excludes "rules"/"facts"`))
		return
	}
	var (
		ent      *entry
		existing bool
		err      error
	)
	// The content hash is the registry handle AND the shard key, so the
	// admission gate can be consulted before any compile work happens.
	id := hashSource(req.Unit, req.Rules, req.Facts)
	if derr := s.dispatchTo(r, id, func() {
		ent, existing, err = s.reg.Register(req.Unit, req.Rules, req.Facts)
	}); derr != nil {
		s.fail(w, "register", derr)
		return
	}
	if err != nil {
		s.fail(w, "register", err)
		return
	}
	status := http.StatusCreated
	if existing {
		status = http.StatusOK
	}
	resp := registerResponse{
		ID:              ent.src.id,
		Rev:             ent.src.rev,
		Existing:        existing,
		Period:          periodJSON{Base: ent.period.Base, P: ent.period.P},
		Representatives: ent.reps,
		Facts:           ent.facts,
		LintWarnings:    ent.lint.Warnings(),
	}
	if lintWanted(r) {
		res := ent.Lint()
		resp.Lint = &res
	}
	writeJSON(w, status, resp)
}

// GET /programs
func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, listResponse{Programs: s.reg.IDs()})
}

// POST /programs/{id}/facts — incremental fact ingestion. The batch is
// asserted into a fork of the program's database, propagated semi-naively
// through the evaluated model, re-certified, and published atomically;
// concurrent queries see the program either entirely before or entirely
// after the batch. Writers on one program are serialized.
func (s *Server) handleFacts(w http.ResponseWriter, r *http.Request) {
	if s.rejectReadOnly(w) {
		return
	}
	var req factsRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.fail(w, "facts", err)
		return
	}
	if req.Facts == "" {
		s.fail(w, "facts", errors.New(`need "facts"`))
		return
	}
	var (
		ent *entry
		res tdd.AssertResult
		err error
	)
	id := r.PathValue("id")
	start := time.Now()
	if derr := s.dispatchTo(r, id, func() {
		ent, res, err = s.reg.Ingest(id, req.Facts)
	}); derr != nil {
		s.fail(w, "facts", derr)
		return
	}
	if err != nil {
		s.fail(w, "facts", err)
		return
	}
	resp := factsResponse{
		ID:              ent.src.id,
		Rev:             ent.src.rev,
		NewFacts:        res.NewFacts,
		Duplicates:      res.Duplicates,
		Derived:         res.Derived,
		Recertified:     res.Recertified,
		PeriodChanged:   res.PeriodChanged,
		Period:          periodJSON{Base: ent.period.Base, P: ent.period.P},
		Representatives: ent.reps,
		Facts:           ent.facts,
		LintWarnings:    ent.lint.Warnings(),
		ElapsedUs:       time.Since(start).Microseconds(),
	}
	if lintWanted(r) {
		lres := ent.Lint()
		resp.Lint = &lres
	}
	writeJSON(w, http.StatusOK, resp)
}

// traceWanted reports whether the request opted into an inline phase
// tree via ?trace=1.
func traceWanted(r *http.Request) bool {
	v := r.URL.Query().Get("trace")
	return v == "1" || v == "true"
}

// lintWanted reports whether the request opted into the full diagnostic
// list via ?lint=1 (the warning count is always present).
func lintWanted(r *http.Request) bool {
	v := r.URL.Query().Get("lint")
	return v == "1" || v == "true"
}

// profileWanted reports whether the request opted into the inline
// EXPLAIN ANALYZE join-cost profile via ?profile=1.
func profileWanted(r *http.Request) bool {
	v := r.URL.Query().Get("profile")
	return v == "1" || v == "true"
}

// maybeLogSlow dumps the full phase tree of a request that crossed the
// configured slow-query threshold, and retains it in the /debug/slow
// ring so the tree is inspectable after the log line has scrolled away.
func (s *Server) maybeLogSlow(route, id, q string, elapsed time.Duration, tr *obs.Trace) {
	if s.cfg.SlowQueryLog <= 0 || elapsed < s.cfg.SlowQueryLog {
		return
	}
	s.slow.add(SlowQuery{
		Route:     route,
		Program:   id,
		Query:     q,
		TraceID:   tr.ID(),
		ElapsedUs: elapsed.Microseconds(),
		At:        time.Now(),
		Trace:     tr.Snapshot(),
	})
	s.cfg.Logger.Warn("slow query",
		"route", route,
		"program", id,
		"query", q,
		"elapsed_us", elapsed.Microseconds(),
		"threshold_us", s.cfg.SlowQueryLog.Microseconds(),
		"trace", tr.ID(),
		"phases", "\n"+tr.Tree(),
	)
}

// POST /programs/{id}/ask
func (s *Server) handleAsk(w http.ResponseWriter, r *http.Request) {
	var req askRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.fail(w, "ask", err)
		return
	}
	var (
		resp askResponse
		ent  *entry
		tr   *obs.Trace
		err  error
	)
	// Capture request-derived values before dispatch: on timeout the
	// worker may still run the closure after this handler has returned,
	// when r is no longer safe to touch.
	id := r.PathValue("id")
	wantTrace := traceWanted(r)
	// The profile is program-lifetime state read at response-assembly
	// time, so unlike a trace it does not force the request out of the
	// coalescing path.
	wantProfile := profileWanted(r)
	traceOn := wantTrace || s.cfg.SlowQueryLog > 0
	tid := obs.IDFrom(r.Context())
	start := time.Now()
	// The revision read is one shard map lookup; it doubles as the 404
	// fast path and pins the coalescing key — identical asks coalesce
	// only within one content revision, so an ingest that moves the
	// program immediately stops answers from riding the stale flight.
	_, rev, known := s.reg.SeqRev(id)
	if !known {
		s.fail(w, "ask", ErrNotFound)
		return
	}
	eval := func() {
		ent, err = s.reg.Lookup(id)
		if err != nil {
			return
		}
		// The trace starts inside the dispatched closure so queue wait
		// does not smear into the first phase's duration.
		if traceOn {
			tr = obs.NewWithID(tid)
		}
		resp.Result, resp.Engine, err = ent.ask(req.Query, s.metrics, tr)
	}
	switch {
	case traceOn:
		// A trace documents one evaluation, so a traced request owns one:
		// it never joins, and nothing joins it (its result is never
		// published to the flight group).
		if derr := s.dispatchTo(r, id, eval); derr != nil {
			s.fail(w, "ask", derr)
			return
		}
	default:
		key := flightKey{id: id, rev: rev, query: req.Query}
		f, leader := s.reg.flights.join(key)
		if leader {
			s.metrics.FlightLeaders.Add(1)
			derr := s.dispatchTo(r, id, eval)
			if derr != nil {
				// The closure may still be running on an abandoned worker
				// slot; publish only the dispatch error, never its fields.
				f.err = derr
			} else {
				f.ent, f.result, f.engine, f.err = ent, resp.Result, resp.Engine, err
			}
			s.reg.flights.finish(key, f)
			if derr != nil {
				s.fail(w, "ask", derr)
				return
			}
		} else {
			s.metrics.Coalesced.Add(1)
			if jerr := s.awaitFlight(r, f); jerr != nil {
				s.fail(w, "ask", jerr)
				return
			}
			ent, resp.Result, resp.Engine, err = f.ent, f.result, f.engine, f.err
			resp.Coalesced = true
		}
	}
	if err != nil {
		s.fail(w, "ask", err)
		return
	}
	elapsed := time.Since(start)
	resp.ElapsedUs = elapsed.Microseconds()
	resp.TraceID = tid
	if wantTrace {
		resp.Trace = mergedTrace(ent.CompileTrace(), tr.Snapshot(), ent.db.EngineDetail().Rules)
	}
	if wantProfile {
		resp.Profile = ent.db.ProfileReport()
	}
	s.maybeLogSlow("ask", id, req.Query, elapsed, tr)
	writeJSON(w, http.StatusOK, resp)
}

// POST /programs/{id}/answers
func (s *Server) handleAnswers(w http.ResponseWriter, r *http.Request) {
	var req answersRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.fail(w, "answers", err)
		return
	}
	if req.Limit < 0 {
		s.fail(w, "answers", errors.New("limit must be >= 0"))
		return
	}
	var (
		ans       []tdd.Answer
		engine    string
		ent       *entry
		tr        *obs.Trace
		err       error
		coalesced bool
	)
	id := r.PathValue("id")
	wantTrace := traceWanted(r)
	wantProfile := profileWanted(r)
	traceOn := wantTrace || s.cfg.SlowQueryLog > 0
	tid := obs.IDFrom(r.Context())
	start := time.Now()
	_, rev, known := s.reg.SeqRev(id)
	if !known {
		s.fail(w, "answers", ErrNotFound)
		return
	}
	eval := func() {
		ent, err = s.reg.Lookup(id)
		if err != nil {
			return
		}
		if traceOn {
			tr = obs.NewWithID(tid)
		}
		ans, engine, err = ent.answers(req.Query, req.Limit, s.metrics, tr)
	}
	switch {
	case traceOn:
		if derr := s.dispatchTo(r, id, eval); derr != nil {
			s.fail(w, "answers", derr)
			return
		}
	default:
		// The limit participates in the key: answers with different limits
		// are different result sets and must not share a flight.
		key := flightKey{id: id, rev: rev, query: req.Query, answers: true, limit: req.Limit}
		f, leader := s.reg.flights.join(key)
		if leader {
			s.metrics.FlightLeaders.Add(1)
			derr := s.dispatchTo(r, id, eval)
			if derr != nil {
				f.err = derr
			} else {
				f.ent, f.ans, f.engine, f.err = ent, ans, engine, err
			}
			s.reg.flights.finish(key, f)
			if derr != nil {
				s.fail(w, "answers", derr)
				return
			}
		} else {
			s.metrics.Coalesced.Add(1)
			if jerr := s.awaitFlight(r, f); jerr != nil {
				s.fail(w, "answers", jerr)
				return
			}
			ent, ans, engine, err = f.ent, f.ans, f.engine, f.err
			coalesced = true
		}
	}
	if err != nil {
		s.fail(w, "answers", err)
		return
	}
	elapsed := time.Since(start)
	resp := answersResponse{
		Answers:   make([]answerJSON, 0, len(ans)),
		Count:     len(ans),
		Rewrite:   fmt.Sprintf("%d -> %d", ent.period.Base+ent.period.P, ent.period.Base),
		Engine:    engine,
		ElapsedUs: elapsed.Microseconds(),
		Coalesced: coalesced,
		TraceID:   tid,
	}
	if wantTrace {
		resp.Trace = mergedTrace(ent.CompileTrace(), tr.Snapshot(), ent.db.EngineDetail().Rules)
	}
	if wantProfile {
		resp.Profile = ent.db.ProfileReport()
	}
	for _, a := range ans {
		resp.Answers = append(resp.Answers, answerJSON{Temporal: a.Temporal, NonTemporal: a.NonTemporal})
	}
	s.maybeLogSlow("answers", id, req.Query, elapsed, tr)
	writeJSON(w, http.StatusOK, resp)
}

// GET /programs/{id}/period
func (s *Server) handlePeriod(w http.ResponseWriter, r *http.Request) {
	var (
		ent *entry
		err error
	)
	id := r.PathValue("id")
	if derr := s.dispatchTo(r, id, func() {
		ent, err = s.reg.Lookup(id)
	}); derr != nil {
		s.fail(w, "period", derr)
		return
	}
	if err != nil {
		s.fail(w, "period", err)
		return
	}
	writeJSON(w, http.StatusOK, periodJSON{Base: ent.period.Base, P: ent.period.P})
}

// GET /programs/{id}/spec — the exported relational specification, the
// exact JSON tdd.ImportSpec accepts, so clients can serve queries
// locally without the rules or the server.
func (s *Server) handleSpec(w http.ResponseWriter, r *http.Request) {
	var (
		ent *entry
		err error
	)
	id := r.PathValue("id")
	if derr := s.dispatchTo(r, id, func() {
		ent, err = s.reg.Lookup(id)
	}); derr != nil {
		s.fail(w, "spec", derr)
		return
	}
	if err != nil {
		s.fail(w, "spec", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(ent.specJSON) //nolint:errcheck
}

// GET /programs/{id}/wal — the replication feed: the batch history past
// the caller's cursor (?from=N batches already held), with the base
// sources when the cursor is 0 so an empty follower can bootstrap. The
// feed is built from the registry's in-memory rev chain, so any server —
// durable or not — can lead.
func (s *Server) handleWAL(w http.ResponseWriter, r *http.Request) {
	var from uint64
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			s.fail(w, "wal", fmt.Errorf("bad from cursor %q: %w", v, err))
			return
		}
		from = n
	}
	var (
		feed WalFeed
		err  error
	)
	id := r.PathValue("id")
	if derr := s.dispatchTo(r, id, func() {
		feed, err = s.reg.Feed(id, from)
	}); derr != nil {
		s.fail(w, "wal", derr)
		return
	}
	if err != nil {
		s.fail(w, "wal", err)
		return
	}
	writeJSON(w, http.StatusOK, feed)
}

// GET /healthz
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// durabilityStats converts the store's per-program state to the metrics
// wire form (nil without a data directory).
func (s *Server) durabilityStats() map[string]DurabilityStats {
	stats := s.reg.DurabilityStats()
	if stats == nil {
		return nil
	}
	out := make(map[string]DurabilityStats, len(stats))
	for id, st := range stats {
		out[id] = DurabilityStats{
			Seq:            st.Seq,
			Rev:            st.Rev,
			DurableSeq:     st.DurableSeq,
			DurableRev:     st.DurableRev,
			SnapshotSeq:    st.SnapshotSeq,
			SnapshotAgeSec: st.SnapshotAge.Seconds(),
			WalBytes:       st.Bytes,
		}
	}
	return out
}

// followerSnapshot reports the replication section (nil unless
// following).
func (s *Server) followerSnapshot() *FollowerSnapshot {
	if s.follower == nil {
		return nil
	}
	return &FollowerSnapshot{
		Leader:  s.cfg.Follow,
		Polls:   s.metrics.FollowerPolls.Load(),
		Records: s.metrics.FollowerRecords.Load(),
		Errors:  s.metrics.FollowerErrors.Load(),
		Lag:     s.metrics.FollowerLag.Load(),
	}
}

// GET /metrics
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := s.metrics.Snapshot()
	snap.Programs = s.reg.WarmStats()
	for _, p := range snap.Programs {
		snap.LintWarnings += int64(p.LintWarnings)
	}
	snap.QueueDepth = int64(s.pool.Depth())
	snap.QueueCapacity = int64(s.pool.Capacity())
	snap.Shards = s.reg.ShardStats()
	snap.Durability = s.durabilityStats()
	snap.Follower = s.followerSnapshot()
	writeJSON(w, http.StatusOK, snap)
}

// GET /metrics.prom — the same counters in Prometheus text exposition,
// for scrape-based monitoring.
func (s *Server) handleMetricsProm(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.writePrometheus(w, s.reg.WarmStats(), s.durabilityStats(),
		s.pool.Depth(), s.pool.Capacity(), s.reg.ShardStats())
}
