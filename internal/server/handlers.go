package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"tdd"
)

// Wire types. Every response body is JSON; errors are {"error": "..."}
// with a matching status code.

type registerRequest struct {
	// Unit is a mixed rules+facts source (facts are the ground unit
	// clauses); alternatively Rules and Facts are separate sources.
	Unit  string `json:"unit,omitempty"`
	Rules string `json:"rules,omitempty"`
	Facts string `json:"facts,omitempty"`
}

type periodJSON struct {
	Base int `json:"base"`
	P    int `json:"p"`
}

type registerResponse struct {
	ID              string     `json:"id"`
	Rev             string     `json:"rev"`
	Existing        bool       `json:"existing"`
	Period          periodJSON `json:"period"`
	Representatives int        `json:"representatives"`
	Facts           int        `json:"facts"`
}

type factsRequest struct {
	// Facts is a fact source in the same syntax as registration fact
	// sources, including interval facts.
	Facts string `json:"facts"`
}

type factsResponse struct {
	ID string `json:"id"`
	// Rev is the program's new content revision; it advances with every
	// ingested batch while the id stays the stable handle.
	Rev             string     `json:"rev"`
	NewFacts        int        `json:"new_facts"`
	Duplicates      int        `json:"duplicates"`
	Derived         int        `json:"derived"`
	Recertified     bool       `json:"recertified"`
	PeriodChanged   bool       `json:"period_changed"`
	Period          periodJSON `json:"period"`
	Representatives int        `json:"representatives"`
	Facts           int        `json:"facts"`
	ElapsedUs       int64      `json:"elapsed_us"`
}

type askRequest struct {
	Query string `json:"query"`
}

type askResponse struct {
	Result    bool   `json:"result"`
	Engine    string `json:"engine"` // "spec" (cache fast path) or "bt" (fallback)
	ElapsedUs int64  `json:"elapsed_us"`
}

type answersRequest struct {
	Query string `json:"query"`
	Limit int    `json:"limit,omitempty"` // 0 = unlimited
}

type answerJSON struct {
	Temporal    map[string]int    `json:"temporal,omitempty"`
	NonTemporal map[string]string `json:"non_temporal,omitempty"`
}

type answersResponse struct {
	Answers []answerJSON `json:"answers"`
	Count   int          `json:"count"`
	// Rewrite is the specification's rewrite rule; each temporal binding
	// t stands for the infinite family reachable by running the rule
	// backwards (t, t+p, t+2p, ... once t >= base).
	Rewrite   string `json:"rewrite"`
	Engine    string `json:"engine"`
	ElapsedUs int64  `json:"elapsed_us"`
}

type listResponse struct {
	Programs []string `json:"programs"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// maxBodyBytes bounds request bodies; programs and queries are text, a
// megabyte is already generous.
const maxBodyBytes = 1 << 20

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v) //nolint:errcheck // best effort; client may be gone
}

// writeError maps an error to a JSON error response. Timeout and
// overload conditions become 503 so load balancers retry elsewhere;
// unknown programs 404; everything else is a client error 400.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		status = http.StatusServiceUnavailable
		s.metrics.Timeouts.Add(1)
		err = fmt.Errorf("request timed out or was canceled: %w", err)
	case errors.Is(err, ErrPoolClosed):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	return nil
}

// dispatch runs fn on the worker pool under the per-request deadline.
func (s *Server) dispatch(r *http.Request, fn func()) error {
	ctx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	return s.pool.Do(ctx, fn)
}

// POST /programs
func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if req.Unit == "" && req.Rules == "" {
		s.writeError(w, errors.New(`need "unit" or "rules" (+ optional "facts")`))
		return
	}
	if req.Unit != "" && (req.Rules != "" || req.Facts != "") {
		s.writeError(w, errors.New(`"unit" excludes "rules"/"facts"`))
		return
	}
	var (
		ent      *entry
		existing bool
		err      error
	)
	if derr := s.dispatch(r, func() {
		ent, existing, err = s.reg.Register(req.Unit, req.Rules, req.Facts)
	}); derr != nil {
		s.writeError(w, derr)
		return
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	status := http.StatusCreated
	if existing {
		status = http.StatusOK
	}
	writeJSON(w, status, registerResponse{
		ID:              ent.src.id,
		Rev:             ent.src.rev,
		Existing:        existing,
		Period:          periodJSON{Base: ent.period.Base, P: ent.period.P},
		Representatives: ent.reps,
		Facts:           ent.facts,
	})
}

// GET /programs
func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, listResponse{Programs: s.reg.IDs()})
}

// POST /programs/{id}/facts — incremental fact ingestion. The batch is
// asserted into a fork of the program's database, propagated semi-naively
// through the evaluated model, re-certified, and published atomically;
// concurrent queries see the program either entirely before or entirely
// after the batch. Writers on one program are serialized.
func (s *Server) handleFacts(w http.ResponseWriter, r *http.Request) {
	var req factsRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if req.Facts == "" {
		s.writeError(w, errors.New(`need "facts"`))
		return
	}
	var (
		ent *entry
		res tdd.AssertResult
		err error
	)
	id := r.PathValue("id")
	start := time.Now()
	if derr := s.dispatch(r, func() {
		ent, res, err = s.reg.Ingest(id, req.Facts)
	}); derr != nil {
		s.writeError(w, derr)
		return
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, factsResponse{
		ID:              ent.src.id,
		Rev:             ent.src.rev,
		NewFacts:        res.NewFacts,
		Duplicates:      res.Duplicates,
		Derived:         res.Derived,
		Recertified:     res.Recertified,
		PeriodChanged:   res.PeriodChanged,
		Period:          periodJSON{Base: ent.period.Base, P: ent.period.P},
		Representatives: ent.reps,
		Facts:           ent.facts,
		ElapsedUs:       time.Since(start).Microseconds(),
	})
}

// POST /programs/{id}/ask
func (s *Server) handleAsk(w http.ResponseWriter, r *http.Request) {
	var req askRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	var (
		resp askResponse
		err  error
	)
	// Capture request-derived values before dispatch: on timeout the
	// worker may still run the closure after this handler has returned,
	// when r is no longer safe to touch.
	id := r.PathValue("id")
	start := time.Now()
	if derr := s.dispatch(r, func() {
		var ent *entry
		ent, err = s.reg.Lookup(id)
		if err != nil {
			return
		}
		resp.Result, resp.Engine, err = ent.ask(req.Query, s.metrics)
	}); derr != nil {
		s.writeError(w, derr)
		return
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp.ElapsedUs = time.Since(start).Microseconds()
	writeJSON(w, http.StatusOK, resp)
}

// POST /programs/{id}/answers
func (s *Server) handleAnswers(w http.ResponseWriter, r *http.Request) {
	var req answersRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if req.Limit < 0 {
		s.writeError(w, errors.New("limit must be >= 0"))
		return
	}
	var (
		ans    []tdd.Answer
		engine string
		ent    *entry
		err    error
	)
	id := r.PathValue("id")
	start := time.Now()
	if derr := s.dispatch(r, func() {
		ent, err = s.reg.Lookup(id)
		if err != nil {
			return
		}
		ans, engine, err = ent.answers(req.Query, req.Limit, s.metrics)
	}); derr != nil {
		s.writeError(w, derr)
		return
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp := answersResponse{
		Answers:   make([]answerJSON, 0, len(ans)),
		Count:     len(ans),
		Rewrite:   fmt.Sprintf("%d -> %d", ent.period.Base+ent.period.P, ent.period.Base),
		Engine:    engine,
		ElapsedUs: time.Since(start).Microseconds(),
	}
	for _, a := range ans {
		resp.Answers = append(resp.Answers, answerJSON{Temporal: a.Temporal, NonTemporal: a.NonTemporal})
	}
	writeJSON(w, http.StatusOK, resp)
}

// GET /programs/{id}/period
func (s *Server) handlePeriod(w http.ResponseWriter, r *http.Request) {
	var (
		ent *entry
		err error
	)
	id := r.PathValue("id")
	if derr := s.dispatch(r, func() {
		ent, err = s.reg.Lookup(id)
	}); derr != nil {
		s.writeError(w, derr)
		return
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, periodJSON{Base: ent.period.Base, P: ent.period.P})
}

// GET /programs/{id}/spec — the exported relational specification, the
// exact JSON tdd.ImportSpec accepts, so clients can serve queries
// locally without the rules or the server.
func (s *Server) handleSpec(w http.ResponseWriter, r *http.Request) {
	var (
		ent *entry
		err error
	)
	id := r.PathValue("id")
	if derr := s.dispatch(r, func() {
		ent, err = s.reg.Lookup(id)
	}); derr != nil {
		s.writeError(w, derr)
		return
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(ent.specJSON) //nolint:errcheck
}

// GET /healthz
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// GET /metrics
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := s.metrics.Snapshot()
	snap.Programs = s.reg.WarmStats()
	writeJSON(w, http.StatusOK, snap)
}
