package server

import (
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// bucketBoundsMicros are the upper bounds (inclusive, in microseconds) of
// the latency histogram buckets; a final implicit +Inf bucket catches the
// rest. Spec-cache hits land in the leftmost buckets, cold compiles and
// period certifications in the right tail — the histogram exists to make
// that separation visible.
var bucketBoundsMicros = [...]int64{
	50, 100, 250, 500,
	1000, 2500, 5000, 10000,
	25000, 50000, 100000, 250000,
	500000, 1000000, 5000000,
}

// histogram is a fixed-bucket latency histogram with lock-free updates.
type histogram struct {
	buckets   [len(bucketBoundsMicros) + 1]atomic.Int64
	count     atomic.Int64
	sumMicros atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	us := d.Microseconds()
	i := 0
	for i < len(bucketBoundsMicros) && us > bucketBoundsMicros[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumMicros.Add(us)
}

// HistogramSnapshot is the JSON form of a histogram.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	MeanUs  float64          `json:"mean_us"`
	Buckets map[string]int64 `json:"buckets,omitempty"`
}

func (h *histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Buckets: make(map[string]int64)}
	if s.Count > 0 {
		s.MeanUs = float64(h.sumMicros.Load()) / float64(s.Count)
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if i < len(bucketBoundsMicros) {
			s.Buckets[formatMicros(bucketBoundsMicros[i])] = n
		} else {
			s.Buckets["+Inf"] = n
		}
	}
	return s
}

func formatMicros(us int64) string {
	return "le_" + time.Duration(us*int64(time.Microsecond)).String()
}

// cumulative returns the Prometheus view of the histogram: per-bucket
// cumulative counts (one per bound plus the +Inf catch-all), the total
// observation count, and the sum in microseconds.
func (h *histogram) cumulative() (buckets [len(bucketBoundsMicros) + 1]int64, count, sumUs int64) {
	var running int64
	for i := range h.buckets {
		running += h.buckets[i].Load()
		buckets[i] = running
	}
	return buckets, h.count.Load(), h.sumMicros.Load()
}

// routeMetrics instruments one route.
type routeMetrics struct {
	Requests atomic.Int64
	Errors   atomic.Int64
	Sheds    atomic.Int64 // requests rejected by admission (shard gate or full queue)
	Timeouts atomic.Int64 // requests that hit the per-request deadline
	latency  histogram
}

// RouteSnapshot is the JSON form of a route's metrics.
type RouteSnapshot struct {
	Requests int64             `json:"requests"`
	Errors   int64             `json:"errors"`
	Sheds    int64             `json:"sheds"`
	Timeouts int64             `json:"timeouts"`
	Latency  HistogramSnapshot `json:"latency"`
}

// Metrics is the server's observability state: request counters and
// latency histograms per route, cache and engine counters, and an
// in-flight gauge. All fields are updated with atomics; a snapshot is
// served at GET /metrics.
type Metrics struct {
	Requests    atomic.Int64 // all requests, any route
	Errors      atomic.Int64 // responses with status >= 400
	InFlight    atomic.Int64 // currently executing requests
	Timeouts    atomic.Int64 // requests that hit the per-request deadline
	CacheHits   atomic.Int64 // spec-cache lookups answered warm
	CacheMisses atomic.Int64 // spec-cache lookups that had to (re)compile
	CacheEvict  atomic.Int64 // entries displaced by the LRU policy
	Fallbacks   atomic.Int64 // queries the spec path failed and BT answered

	// Admission and coalescing counters (see shard.go, flight.go).
	Shed          atomic.Int64 // requests rejected by admission instead of queued
	Coalesced     atomic.Int64 // asks that joined an in-flight identical evaluation
	FlightLeaders atomic.Int64 // coalescable evaluations actually run

	Asserts       atomic.Int64 // successful fact-ingestion batches
	FactsIngested atomic.Int64 // facts new to a database across all ingestions

	// Durability counters (all zero without -data).
	WalAppends     atomic.Int64 // batches appended to a program WAL
	WalFsyncs      atomic.Int64 // fsync calls across all program logs
	Snapshots      atomic.Int64 // snapshot+truncate cycles completed
	SnapshotErrors atomic.Int64 // snapshot attempts that failed (batch stayed logged)

	// Replication counters and gauges (all zero unless following).
	FollowerPolls   atomic.Int64 // leader poll cycles completed
	FollowerRecords atomic.Int64 // WAL records applied from the leader
	FollowerErrors  atomic.Int64 // poll or apply failures (incl. divergence)
	FollowerLag     atomic.Int64 // gauge: leader batches not yet applied, summed over programs

	// fsyncLatency observes every WAL fsync across all program logs.
	fsyncLatency histogram

	// EvalParallelism gauges the configured engine worker bound
	// (Config.Parallelism; 0 = sequential schedule). Set once at startup.
	EvalParallelism atomic.Int64

	// start anchors the uptime gauge: set once when the server's metrics
	// are created, read by every snapshot.
	start time.Time

	routes map[string]*routeMetrics
	// orphan absorbs updates for route names missing from routes, so a
	// route registered without a metrics slot degrades to uncounted
	// rather than a nil dereference on the request path.
	orphan routeMetrics
}

// newMetrics pre-creates the per-route slots so handler-path updates are
// lock-free map reads.
func newMetrics(routes []string) *Metrics {
	m := &Metrics{start: time.Now(), routes: make(map[string]*routeMetrics, len(routes))}
	for _, r := range routes {
		m.routes[r] = &routeMetrics{}
	}
	return m
}

// BuildInfo identifies the running binary in /metrics and as the
// tddserve_build_info info-gauge in /metrics.prom.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Version   string `json:"version"`
	Revision  string `json:"revision"`
}

var (
	buildInfoOnce sync.Once
	buildInfoVal  BuildInfo
)

// binaryBuildInfo reads the module and VCS identity stamped into the
// binary, once; "unknown" fields mean the binary was built without VCS
// metadata (go test, go run).
func binaryBuildInfo() BuildInfo {
	buildInfoOnce.Do(func() {
		buildInfoVal = BuildInfo{GoVersion: runtime.Version(), Version: "unknown", Revision: "unknown"}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			buildInfoVal.Version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				buildInfoVal.Revision = s.Value
			}
		}
	})
	return buildInfoVal
}

// RuntimeSnapshot is the Go-runtime section of /metrics: scheduler and
// heap health at snapshot time.
type RuntimeSnapshot struct {
	Goroutines    int    `json:"goroutines"`
	HeapAlloc     uint64 `json:"heap_alloc_bytes"`
	HeapSys       uint64 `json:"heap_sys_bytes"`
	GCCycles      uint32 `json:"gc_cycles"`
	GCPauseUs     int64  `json:"gc_pause_total_us"`
	LastGCPauseUs int64  `json:"gc_pause_last_us"`
}

// runtimeSnapshot reads the runtime gauges. ReadMemStats stops the world
// briefly; that is fine on a monitoring endpoint.
func runtimeSnapshot() RuntimeSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rs := RuntimeSnapshot{
		Goroutines: runtime.NumGoroutine(),
		HeapAlloc:  ms.HeapAlloc,
		HeapSys:    ms.HeapSys,
		GCCycles:   ms.NumGC,
		GCPauseUs:  int64(ms.PauseTotalNs / 1000),
	}
	if ms.NumGC > 0 {
		rs.LastGCPauseUs = int64(ms.PauseNs[(ms.NumGC+255)%256] / 1000)
	}
	return rs
}

func (m *Metrics) route(name string) *routeMetrics {
	if rm, ok := m.routes[name]; ok {
		return rm
	}
	return &m.orphan
}

// MetricsSnapshot is the GET /metrics response body.
type MetricsSnapshot struct {
	// Build and process identity: what binary this is and how long it has
	// been serving.
	Build     BuildInfo       `json:"build"`
	UptimeSec float64         `json:"uptime_sec"`
	Runtime   RuntimeSnapshot `json:"runtime"`

	Requests    int64 `json:"requests"`
	Errors      int64 `json:"errors"`
	InFlight    int64 `json:"in_flight"`
	Timeouts    int64 `json:"timeouts"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	CacheEvict  int64 `json:"cache_evictions"`
	Fallbacks   int64 `json:"bt_fallbacks"`
	Asserts     int64 `json:"asserts"`
	Ingested    int64 `json:"facts_ingested"`
	Parallelism int64 `json:"eval_parallelism"`
	// Admission and coalescing: shed requests were rejected fast instead
	// of queued; coalesced asks rode an identical in-flight evaluation
	// (flight_leaders counts the evaluations that actually ran).
	Shed          int64 `json:"shed_requests"`
	Coalesced     int64 `json:"coalesced_requests"`
	FlightLeaders int64 `json:"flight_leaders"`
	// QueueDepth/QueueCapacity gauge the shared worker-pool queue;
	// Shards carries each lock domain's tables and admission gate. All
	// filled in by the metrics handler.
	QueueDepth    int64           `json:"queue_depth"`
	QueueCapacity int64           `json:"queue_capacity"`
	Shards        []ShardSnapshot `json:"shards,omitempty"`
	// LintWarnings gauges lint findings at warning severity or above,
	// summed over the warm programs; filled in by the metrics handler
	// alongside Programs.
	LintWarnings int64                    `json:"lint_warnings"`
	WalAppends   int64                    `json:"wal_appends"`
	WalFsyncs    int64                    `json:"wal_fsyncs"`
	Snapshots    int64                    `json:"wal_snapshots"`
	SnapErrors   int64                    `json:"wal_snapshot_errors"`
	FsyncLatency HistogramSnapshot        `json:"wal_fsync_latency"`
	Follower     *FollowerSnapshot        `json:"follower,omitempty"`
	Routes       map[string]RouteSnapshot `json:"routes"`
	// Programs holds per-program engine counters for every warm program;
	// filled in by the metrics handler from the registry.
	Programs map[string]ProgramStats `json:"programs,omitempty"`
	// Durability holds per-program WAL state (last durable rev, snapshot
	// age, log size); filled in by the metrics handler when the server
	// runs with a data directory.
	Durability map[string]DurabilityStats `json:"durability,omitempty"`
}

// FollowerSnapshot is the replication section of /metrics, present only
// on a follower.
type FollowerSnapshot struct {
	Leader  string `json:"leader"`
	Polls   int64  `json:"polls"`
	Records int64  `json:"records_applied"`
	Errors  int64  `json:"errors"`
	// Lag is the number of leader batches not yet applied, summed over
	// programs, as of the last poll.
	Lag int64 `json:"lag_records"`
}

// DurabilityStats is the JSON form of one program's WAL state.
type DurabilityStats struct {
	Seq            uint64  `json:"seq"`
	Rev            string  `json:"rev"`
	DurableSeq     uint64  `json:"durable_seq"`
	DurableRev     string  `json:"durable_rev"`
	SnapshotSeq    uint64  `json:"snapshot_seq"`
	SnapshotAgeSec float64 `json:"snapshot_age_sec,omitempty"`
	WalBytes       int64   `json:"wal_bytes"`
}

// Snapshot captures a consistent-enough view for serving: counters are
// read individually (no global lock), which is the standard monitoring
// trade-off.
func (m *Metrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		Build:         binaryBuildInfo(),
		UptimeSec:     time.Since(m.start).Seconds(),
		Runtime:       runtimeSnapshot(),
		Requests:      m.Requests.Load(),
		Errors:        m.Errors.Load(),
		InFlight:      m.InFlight.Load(),
		Timeouts:      m.Timeouts.Load(),
		CacheHits:     m.CacheHits.Load(),
		CacheMisses:   m.CacheMisses.Load(),
		CacheEvict:    m.CacheEvict.Load(),
		Fallbacks:     m.Fallbacks.Load(),
		Asserts:       m.Asserts.Load(),
		Ingested:      m.FactsIngested.Load(),
		Parallelism:   m.EvalParallelism.Load(),
		Shed:          m.Shed.Load(),
		Coalesced:     m.Coalesced.Load(),
		FlightLeaders: m.FlightLeaders.Load(),
		WalAppends:    m.WalAppends.Load(),
		WalFsyncs:     m.WalFsyncs.Load(),
		Snapshots:     m.Snapshots.Load(),
		SnapErrors:    m.SnapshotErrors.Load(),
		FsyncLatency:  m.fsyncLatency.snapshot(),
		Routes:        make(map[string]RouteSnapshot, len(m.routes)),
	}
	for name, r := range m.routes {
		s.Routes[name] = RouteSnapshot{
			Requests: r.Requests.Load(),
			Errors:   r.Errors.Load(),
			Sheds:    r.Sheds.Load(),
			Timeouts: r.Timeouts.Load(),
			Latency:  r.latency.snapshot(),
		}
	}
	return s
}
