package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"tdd/internal/obs"
)

// TestHistogramBoundaries pins the bucket edges: bounds are inclusive
// upper bounds, and observations past the last bound land in the +Inf
// catch-all.
func TestHistogramBoundaries(t *testing.T) {
	var h histogram
	h.observe(50 * time.Microsecond)  // exactly on the first bound -> bucket 0
	h.observe(51 * time.Microsecond)  // just past it -> bucket 1
	h.observe(100 * time.Microsecond) // exactly on the second bound -> bucket 1
	h.observe(time.Hour)              // past every bound -> +Inf

	if got := h.buckets[0].Load(); got != 1 {
		t.Errorf("bucket le=50us = %d, want 1 (bound must be inclusive)", got)
	}
	if got := h.buckets[1].Load(); got != 2 {
		t.Errorf("bucket le=100us = %d, want 2", got)
	}
	if got := h.buckets[len(h.buckets)-1].Load(); got != 1 {
		t.Errorf("+Inf bucket = %d, want 1", got)
	}

	snap := h.snapshot()
	if snap.Count != 4 {
		t.Errorf("count = %d, want 4", snap.Count)
	}
	if snap.Buckets["+Inf"] != 1 {
		t.Errorf("snapshot +Inf = %d, want 1", snap.Buckets["+Inf"])
	}

	cum, count, _ := h.cumulative()
	if count != 4 {
		t.Errorf("cumulative count = %d, want 4", count)
	}
	if cum[len(cum)-1] != 4 {
		t.Errorf("final cumulative bucket = %d, want total 4", cum[len(cum)-1])
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("cumulative buckets not monotone at %d: %v", i, cum)
		}
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines;
// run under -race this doubles as the data-race check for the lock-free
// update path.
func TestHistogramConcurrent(t *testing.T) {
	var h histogram
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.observe(time.Duration(w*i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if got := h.count.Load(); got != workers*per {
		t.Errorf("count = %d, want %d", got, workers*per)
	}
	var sum int64
	for i := range h.buckets {
		sum += h.buckets[i].Load()
	}
	if sum != workers*per {
		t.Errorf("bucket sum = %d, want %d", sum, workers*per)
	}
}

// TestRouteMetricsOrphan checks that asking for an unregistered route
// name yields a usable sink instead of nil.
func TestRouteMetricsOrphan(t *testing.T) {
	m := newMetrics([]string{"known"})
	rm := m.route("never-registered")
	if rm == nil {
		t.Fatal("route() returned nil for an unknown name")
	}
	rm.Requests.Add(1) // must not panic
	if rm == m.route("known") {
		t.Error("orphan sink aliases a registered route")
	}
}

// promFamily strips histogram-sample suffixes back to the family name.
func promFamily(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// validatePromText parses a Prometheus text exposition: every sample
// line must be "name{labels} value" for a family with exactly one HELP
// and one TYPE line, declared before its first sample.
func validatePromText(t *testing.T, body string) {
	t.Helper()
	help := map[string]int{}
	typ := map[string]string{}
	samples := 0
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, found := strings.Cut(rest, " ")
			if !found {
				t.Errorf("HELP line without text: %q", line)
			}
			help[name]++
			if help[name] > 1 {
				t.Errorf("duplicate HELP for %s", name)
			}
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, kind, _ := strings.Cut(rest, " ")
			if kind != "counter" && kind != "gauge" && kind != "histogram" {
				t.Errorf("unknown TYPE %q for %s", kind, name)
			}
			if _, dup := typ[name]; dup {
				t.Errorf("duplicate TYPE for %s", name)
			}
			typ[name] = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Errorf("unexpected comment line %q", line)
			continue
		}
		samples++
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		fam := promFamily(name)
		if help[fam] == 0 {
			t.Errorf("sample %q before/without HELP for %s", line, fam)
		}
		if _, ok := typ[fam]; !ok {
			t.Errorf("sample %q before/without TYPE for %s", line, fam)
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("sample line %q is not name value", line)
		}
	}
	if samples == 0 {
		t.Error("exposition contained no samples")
	}
}

// TestMetricsProm serves traffic and checks GET /metrics.prom is valid
// Prometheus text exposition carrying the route and program families.
func TestMetricsProm(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	id := register(t, ts.URL, evenUnit)
	askServed(t, ts.URL, id, "even(4)")

	resp, err := http.Get(ts.URL + "/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	validatePromText(t, body)
	for _, want := range []string{
		"tddserve_requests_total ",
		`tddserve_route_requests_total{route="ask"} 1`,
		`tddserve_request_duration_seconds_bucket{route="ask",le="+Inf"} 1`,
		`tddserve_program_derived_facts{program="` + id + `"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// findSpan looks up a span by name anywhere in a phase tree.
func findSpan(phases []obs.SpanJSON, name string) *obs.SpanJSON {
	for i := range phases {
		if phases[i].Name == name {
			return &phases[i]
		}
		if sp := findSpan(phases[i].Children, name); sp != nil {
			return sp
		}
	}
	return nil
}

// TestAskTrace is the acceptance check for ?trace=1: a warm served query
// returns a phase tree containing (at least) classify, certify-period, a
// fixpoint with per-sweep firing counts, and an answer phase; the
// top-level phase durations sum to within 10% of the reported total; and
// the per-rule firing table rides along.
func TestAskTrace(t *testing.T) {
	// The non-temporal rule forces the engine's outer fixpoint to
	// re-sweep the window, so the trace carries per-sweep spans.
	unit := skiUnit + "visited(X) :- plane(T, X).\n"
	_, ts := newTestServer(t, Config{Workers: 2})
	id := register(t, ts.URL, unit)
	askServed(t, ts.URL, id, "plane(2, hunter)") // warm the entry

	resp, body := postJSON(t, ts.URL+"/programs/"+id+"/ask?trace=1",
		askRequest{Query: "plane(2, hunter)"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var ar askResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if !ar.Result {
		t.Error("expected plane(2, hunter) to hold")
	}
	if ar.Trace == nil {
		t.Fatal("?trace=1 returned no trace")
	}
	if ar.TraceID == "" || ar.Trace.TraceID != ar.TraceID {
		t.Errorf("trace ids disagree: response %q, trace %q", ar.TraceID, ar.Trace.TraceID)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != ar.TraceID {
		t.Errorf("X-Trace-Id header %q != trace id %q", got, ar.TraceID)
	}

	for _, phase := range []string{"classify", "certify-period", "fixpoint", "answer"} {
		if findSpan(ar.Trace.Phases, phase) == nil {
			t.Errorf("phase tree missing %q:\n%s", phase, body)
		}
	}
	fx := findSpan(ar.Trace.Phases, "fixpoint")
	if fx != nil {
		sweeps := 0
		for _, c := range fx.Children {
			if c.Name == "sweep" {
				sweeps++
				if _, ok := c.Counters["firings"]; !ok {
					t.Error("sweep span lacks a firings counter")
				}
			}
		}
		if sweeps == 0 {
			t.Error("fixpoint has no per-sweep spans")
		}
	}

	var sum int64
	for _, p := range ar.Trace.Phases {
		sum += p.Us
	}
	total := ar.Trace.TotalUs
	if total <= 0 {
		t.Fatalf("total_us = %d", total)
	}
	if diff := total - sum; diff < 0 || float64(diff) > 0.1*float64(total) {
		t.Errorf("phase durations sum to %dus, total %dus — off by more than 10%%", sum, total)
	}

	if len(ar.Trace.Rules) == 0 {
		t.Fatal("trace carries no per-rule firing table")
	}
	firings := 0
	for _, r := range ar.Trace.Rules {
		if r.Rule == "" {
			t.Error("rule row without source text")
		}
		firings += r.Firings
	}
	if firings == 0 {
		t.Error("per-rule firing table is all zeros")
	}

	// Without ?trace=1 the response must stay lean.
	_, body = postJSON(t, ts.URL+"/programs/"+id+"/ask", askRequest{Query: "plane(7, hunter)"})
	var plain askResponse
	if err := json.Unmarshal(body, &plain); err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Error("trace block present without ?trace=1")
	}
}

// TestAnswersTrace checks the answers endpoint carries the same trace
// block.
func TestAnswersTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	id := register(t, ts.URL, evenUnit)
	resp, body := postJSON(t, ts.URL+"/programs/"+id+"/answers?trace=1",
		answersRequest{Query: "even(T)"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var ar answersResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Trace == nil {
		t.Fatal("?trace=1 returned no trace")
	}
	if findSpan(ar.Trace.Phases, "certify-period") == nil {
		t.Errorf("phase tree missing certify-period: %s", body)
	}
	if findSpan(ar.Trace.Phases, "answer") == nil {
		t.Errorf("phase tree missing answer: %s", body)
	}
}

// TestSlowQueryLog checks that a request over the threshold dumps its
// phase tree to the structured log.
func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewTextHandler(&lockedWriter{w: &buf, mu: &mu}, nil))
	_, ts := newTestServer(t, Config{Workers: 2, SlowQueryLog: time.Nanosecond, Logger: logger})
	id := register(t, ts.URL, evenUnit)
	askServed(t, ts.URL, id, "even(4)")

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "slow query") {
		t.Fatalf("no slow-query line in log:\n%s", out)
	}
	if !strings.Contains(out, "answer") {
		t.Errorf("slow-query line lacks the phase tree:\n%s", out)
	}
}

// lockedWriter serializes writes from the server's handler goroutines.
type lockedWriter struct {
	w  io.Writer
	mu *sync.Mutex
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// TestPprofGate checks pprof is mounted only when opted into.
func TestPprofGate(t *testing.T) {
	_, off := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof reachable without EnablePprof: status %d", resp.StatusCode)
	}

	_, on := newTestServer(t, Config{Workers: 1, EnablePprof: true})
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("goroutine")) {
		t.Errorf("pprof index: status %d body %.80s", resp.StatusCode, body)
	}
}
