package server

// Sharded registry core: the program table, spec cache, and per-program
// writer locks are split into N independent lock domains keyed by the
// program's content hash. Lookup/Register/Ingest on programs that land
// in different shards never touch the same mutex, so the registry's
// critical sections (map reads and LRU recency updates — held on every
// warm lookup) stop being a global serialization point under
// multi-program load. The shard index is derived from the same
// content-addressed identity the registry already hands out as the
// program id, so a program's shard is stable across restarts, replicas,
// and re-registrations — leaders and followers agree on placement for
// free, exactly as they already agree on ids.
//
// Each shard also carries an admission gate: a bounded in-flight
// counter sized by the server at startup. When shedding is enabled a
// request is admitted only if its program's shard has capacity;
// otherwise it is rejected immediately (429 with Retry-After) instead
// of queueing until the request deadline. One overloaded program family
// can then exhaust only its own shard's slots — traffic on the other
// shards keeps flowing.

import (
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// shard is one lock domain of the registry. All three tables are
// guarded by the shard's own mutex; nothing in a shard is ever touched
// under another shard's lock.
type shard struct {
	mu    sync.Mutex
	progs map[string]*programSource // guarded-by: mu
	cache *lru[*future]             // guarded-by: mu
	// writing holds the per-program writer locks for programs currently
	// being ingested. Entries are refcounted: created on demand by the
	// first waiting writer and deleted when the last one releases, so
	// the map holds only in-flight writers — a churn workload that
	// touches millions of programs leaves it empty, not leaking one
	// mutex per program forever.
	writing map[string]*writerLock // guarded-by: mu

	// Admission gate (active only when the server enables shedding).
	inflight atomic.Int64 // requests admitted to this shard, not yet finished
	capacity atomic.Int64 // gate size; requests beyond it are shed
	sheds    atomic.Int64 // requests rejected by the gate
}

// writerLock serializes writers on one program. refs counts holders and
// waiters so the owning shard can drop the map entry when it hits zero.
type writerLock struct {
	mu   sync.Mutex
	refs int // guarded-by: shard.mu
}

func newShard(cacheCap int, onEvict func(string, *future)) *shard {
	sh := &shard{
		progs:   make(map[string]*programSource),
		cache:   newLRU[*future](cacheCap, onEvict),
		writing: make(map[string]*writerLock),
	}
	sh.capacity.Store(1 << 30) // effectively unbounded until the server sizes it
	return sh
}

// shardIndex maps a program id to its lock-domain index. The id is
// already a content hash, but it is hex text with structure; one FNV-1a
// pass spreads it uniformly over the shard count.
func (r *Registry) shardIndex(id string) int {
	if len(r.shards) == 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(id)) //nolint:errcheck // fnv never fails
	return int(h.Sum32() % uint32(len(r.shards)))
}

// shardFor maps a program id to its lock domain.
func (r *Registry) shardFor(id string) *shard {
	return r.shards[r.shardIndex(id)]
}

// ShardCount reports the number of lock domains.
func (r *Registry) ShardCount() int { return len(r.shards) }

// setShardCapacity sizes every shard's admission gate (server startup).
func (r *Registry) setShardCapacity(n int) {
	for _, sh := range r.shards {
		sh.capacity.Store(int64(n))
	}
}

// tryAcquire admits a request into the shard's in-flight window,
// reporting false (and counting a shed) when the window is full. The
// check is a CAS loop, so a saturated shard rejects in nanoseconds —
// shedding must stay cheap precisely when the server is busiest.
func (sh *shard) tryAcquire() bool {
	cap := sh.capacity.Load()
	for {
		cur := sh.inflight.Load()
		if cur >= cap {
			sh.sheds.Add(1)
			return false
		}
		if sh.inflight.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

func (sh *shard) release() { sh.inflight.Add(-1) }

// lockWriter takes the program's writer lock, creating the refcounted
// entry on first use. Every lockWriter must be paired with unlockWriter.
func (sh *shard) lockWriter(id string) *writerLock {
	sh.mu.Lock()
	wl := sh.writing[id]
	if wl == nil {
		wl = &writerLock{}
		sh.writing[id] = wl
	}
	wl.refs++
	sh.mu.Unlock()
	wl.mu.Lock()
	return wl
}

// unlockWriter releases the writer lock and drops the map entry when no
// other writer holds or awaits it — the regression guard for the
// one-mutex-per-program-forever leak.
func (sh *shard) unlockWriter(id string, wl *writerLock) {
	wl.mu.Unlock()
	sh.mu.Lock()
	wl.refs--
	if wl.refs <= 0 {
		delete(sh.writing, id)
	}
	sh.mu.Unlock()
}

// WritingLen reports how many per-program writer locks are live across
// all shards (test hook: must return to 0 when no ingest is in flight).
func (r *Registry) WritingLen() int {
	n := 0
	for _, sh := range r.shards {
		sh.mu.Lock()
		n += len(sh.writing)
		sh.mu.Unlock()
	}
	return n
}

// ShardSnapshot is the per-shard section of /metrics.
type ShardSnapshot struct {
	Programs int   `json:"programs"` // registered sources in this shard
	Warm     int   `json:"warm"`     // resident spec-cache entries
	InFlight int64 `json:"in_flight"`
	Capacity int64 `json:"capacity"`
	Sheds    int64 `json:"sheds"`
}

// ShardStats snapshots every shard's table sizes and admission gate.
func (r *Registry) ShardStats() []ShardSnapshot {
	out := make([]ShardSnapshot, len(r.shards))
	for i, sh := range r.shards {
		sh.mu.Lock()
		progs, warm := len(sh.progs), sh.cache.len()
		sh.mu.Unlock()
		out[i] = ShardSnapshot{
			Programs: progs,
			Warm:     warm,
			InFlight: sh.inflight.Load(),
			Capacity: sh.capacity.Load(),
			Sheds:    sh.sheds.Load(),
		}
	}
	return out
}
