package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
)

// TestParallelIngestWhileQuerying runs the TestIngestConcurrent workload
// against a server whose evaluators use the parallel engine schedule:
// HTTP worker concurrency on the outside, the engine worker pool on the
// inside. Run under -race via scripts/ci.sh. Batches must all land and
// queries must never error, exactly as in sequential mode.
func TestParallelIngestWhileQuerying(t *testing.T) {
	_, ts := newTestServer(t, Config{Parallelism: 4})
	id := register(t, ts.URL, skiUnit)

	const writers, perWriter, readers = 4, 5, 4
	var wg sync.WaitGroup
	errs := make(chan error, (writers+readers)*perWriter)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r := fmt.Sprintf("w%dr%d", w, i)
				resp, body := postJSON(t, ts.URL+"/programs/"+id+"/facts",
					factsRequest{Facts: fmt.Sprintf("resort(%s).\nplane(%d, %s).\n", r, (w+i)%10, r)})
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("writer %d: status %d: %s", w, resp.StatusCode, body)
					return
				}
			}
		}(w)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				resp, body := postJSON(t, ts.URL+"/programs/"+id+"/ask",
					askRequest{Query: "plane(0, hunter)"})
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("reader %d: status %d: %s", g, resp.StatusCode, body)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		return
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			r := fmt.Sprintf("w%dr%d", w, i)
			if !askServed(t, ts.URL, id, fmt.Sprintf("exists T plane(T, %s)", r)) {
				t.Fatalf("batch %s lost", r)
			}
		}
	}
	// The configured worker bound is visible in the metrics snapshot.
	resp, body := getJSON(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Parallelism != 4 {
		t.Fatalf("eval_parallelism = %d, want 4", snap.Parallelism)
	}
}

// TestParallelServerMatchesSequential registers the same program on a
// sequential and a parallel server and compares served answers.
func TestParallelServerMatchesSequential(t *testing.T) {
	_, seqTS := newTestServer(t, Config{})
	_, parTS := newTestServer(t, Config{Parallelism: 8})
	seqID := register(t, seqTS.URL, skiUnit)
	parID := register(t, parTS.URL, skiUnit)
	if seqID != parID {
		t.Fatalf("content hash differs: %s vs %s", seqID, parID)
	}
	for _, q := range []string{
		"plane(0, hunter)",
		"plane(1000000, hunter)",
		"exists T plane(T, hunter)",
		"plane(12345, nosuch)",
	} {
		if got, want := askServed(t, parTS.URL, parID, q), askServed(t, seqTS.URL, seqID, q); got != want {
			t.Fatalf("ask(%q) = %v parallel, %v sequential", q, got, want)
		}
	}
}
