package server

import "container/list"

// lru is a fixed-capacity least-recently-used cache. It is not safe for
// concurrent use; the registry serializes access under its own mutex.
type lru[V any] struct {
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	onEvict  func(key string, value V)
}

type lruEntry[V any] struct {
	key   string
	value V
}

// newLRU builds a cache holding at most capacity entries (capacity >= 1).
// onEvict, if non-nil, is called for every entry displaced by put or
// removed by remove — not for entries still resident when the cache is
// dropped.
func newLRU[V any](capacity int, onEvict func(string, V)) *lru[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &lru[V]{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		onEvict:  onEvict,
	}
}

// get returns the cached value and marks it most recently used.
func (c *lru[V]) get(key string) (V, bool) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*lruEntry[V]).value, true
	}
	var zero V
	return zero, false
}

// put inserts or refreshes the value, evicting the least recently used
// entry when over capacity.
func (c *lru[V]) put(key string, value V) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry[V]).value = value
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry[V]{key: key, value: value})
	for c.ll.Len() > c.capacity {
		c.evictOldest()
	}
}

// remove drops the entry if present.
func (c *lru[V]) remove(key string) {
	if el, ok := c.items[key]; ok {
		c.removeElement(el)
	}
}

func (c *lru[V]) len() int { return c.ll.Len() }

// each calls f for every resident entry, most recently used first. It
// does not touch recency.
func (c *lru[V]) each(f func(key string, value V)) {
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*lruEntry[V])
		f(e.key, e.value)
	}
}

func (c *lru[V]) evictOldest() {
	if el := c.ll.Back(); el != nil {
		c.removeElement(el)
	}
}

func (c *lru[V]) removeElement(el *list.Element) {
	c.ll.Remove(el)
	e := el.Value.(*lruEntry[V])
	delete(c.items, e.key)
	if c.onEvict != nil {
		c.onEvict(e.key, e.value)
	}
}
