package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"tdd/internal/workload"
)

// TestShardForStable verifies that shard placement is a pure function of
// the program id: the same id always lands in the same shard, and with
// one shard everything lands there.
func TestShardForStable(t *testing.T) {
	reg := NewRegistry(8, 8, 0, 0, newMetrics(routeNames))
	for _, id := range []string{"a", "b", "c", "0123abcd"} {
		first := reg.shardFor(id)
		for i := 0; i < 3; i++ {
			if reg.shardFor(id) != first {
				t.Fatalf("shardFor(%q) not stable", id)
			}
		}
	}
	single := NewRegistry(1, 8, 0, 0, newMetrics(routeNames))
	if single.ShardCount() != 1 {
		t.Fatalf("ShardCount = %d, want 1", single.ShardCount())
	}
}

// TestShardedDifferential runs the same register → ingest → query battery
// against a 1-shard and an 8-shard server and requires bit-identical
// results: ids, revs, periods, ask answers, and exported specs. Sharding
// must only ever change which mutex a program lives under.
func TestShardedDifferential(t *testing.T) {
	_, ts1 := newTestServer(t, Config{Shards: 1})
	_, ts8 := newTestServer(t, Config{Shards: 8})

	type progState struct{ id string }
	const programs = 6
	var ids1, ids8 [programs]progState

	for i := 0; i < programs; i++ {
		rules, facts := workload.Ski(workload.SkiParams{
			YearLen: 20, Resorts: 3, Planes: 4, Holidays: 2, Seed: int64(100 + i),
		})
		unit := rules + facts
		ids1[i].id = register(t, ts1.URL, unit)
		ids8[i].id = register(t, ts8.URL, unit)
		if ids1[i].id != ids8[i].id {
			t.Fatalf("program %d: id %s (1 shard) != %s (8 shards)", i, ids1[i].id, ids8[i].id)
		}
	}

	// Interleaved ingests: same batches, same order, to both servers.
	for round := 0; round < 3; round++ {
		for i := 0; i < programs; i++ {
			facts := fmt.Sprintf("resort(extra%dr%d).\nplane(%d, extra%dr%d).\n", i, round, round*3+i, i, round)
			var rev [2]string
			for s, ts := range []*httptest.Server{ts1, ts8} {
				resp, body := postJSON(t, ts.URL+"/programs/"+ids1[i].id+"/facts", factsRequest{Facts: facts})
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("ingest: status %d: %s", resp.StatusCode, body)
				}
				var fr factsResponse
				if err := json.Unmarshal(body, &fr); err != nil {
					t.Fatal(err)
				}
				rev[s] = fr.Rev
			}
			if rev[0] != rev[1] {
				t.Fatalf("program %d round %d: rev %s (1 shard) != %s (8 shards)", i, round, rev[0], rev[1])
			}
		}
	}

	// Every observable must agree: period, ask results over a query
	// battery, and the exported spec JSON byte-for-byte.
	for i := 0; i < programs; i++ {
		id := ids1[i].id
		_, p1 := getJSON(t, ts1.URL+"/programs/"+id+"/period")
		_, p8 := getJSON(t, ts8.URL+"/programs/"+id+"/period")
		if string(p1) != string(p8) {
			t.Fatalf("program %d: period %s != %s", i, p1, p8)
		}
		_, s1 := getJSON(t, ts1.URL+"/programs/"+id+"/spec")
		_, s8 := getJSON(t, ts8.URL+"/programs/"+id+"/spec")
		if string(s1) != string(s8) {
			t.Fatalf("program %d: exported specs differ", i)
		}
		for q := 0; q < 8; q++ {
			query := fmt.Sprintf("plane(%d, r%d)", 50+q*17, q%3)
			if a, b := askServed(t, ts1.URL, id, query), askServed(t, ts8.URL, id, query); a != b {
				t.Fatalf("program %d %q: %v (1 shard) != %v (8 shards)", i, query, a, b)
			}
		}
	}
}

// TestShardedIngestWhileQuerying runs concurrent writers and readers
// against an 8-shard server over several programs, then checks every
// batch landed and the final state matches a 1-shard server given the
// same batches. Run under -race via scripts/ci.sh.
func TestShardedIngestWhileQuerying(t *testing.T) {
	_, ts8 := newTestServer(t, Config{Shards: 8})
	_, ts1 := newTestServer(t, Config{Shards: 1})

	const programs, writers, perWriter = 3, 3, 4
	ids := make([]string, programs)
	for i := range ids {
		rules, facts := workload.Ski(workload.SkiParams{
			YearLen: 20, Resorts: 3, Planes: 4, Holidays: 2, Seed: int64(200 + i),
		})
		unit := rules + facts
		ids[i] = register(t, ts8.URL, unit)
		if got := register(t, ts1.URL, unit); got != ids[i] {
			t.Fatalf("id mismatch: %s != %s", got, ids[i])
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, programs*(writers+2)*perWriter)
	for p := 0; p < programs; p++ {
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(p, w int) {
				defer wg.Done()
				for i := 0; i < perWriter; i++ {
					facts := fmt.Sprintf("resort(p%dw%dr%d).\nplane(%d, p%dw%dr%d).\n", p, w, i, (w+i)%10, p, w, i)
					resp, body := postJSON(t, ts8.URL+"/programs/"+ids[p]+"/facts", factsRequest{Facts: facts})
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("writer p%dw%d: status %d: %s", p, w, resp.StatusCode, body)
						return
					}
				}
			}(p, w)
		}
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < writers*perWriter; i++ {
				resp, body := postJSON(t, ts8.URL+"/programs/"+ids[p]+"/ask", askRequest{Query: "plane(0, r0)"})
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("reader p%d: status %d: %s", p, resp.StatusCode, body)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		return
	}

	// Replay the same batches sequentially into the 1-shard server (order
	// within a program does not matter for the model: batches commute as
	// sets of facts, and revs are order-dependent so only the model-level
	// observables are compared).
	for p := 0; p < programs; p++ {
		for w := 0; w < writers; w++ {
			for i := 0; i < perWriter; i++ {
				facts := fmt.Sprintf("resort(p%dw%dr%d).\nplane(%d, p%dw%dr%d).\n", p, w, i, (w+i)%10, p, w, i)
				resp, body := postJSON(t, ts1.URL+"/programs/"+ids[p]+"/facts", factsRequest{Facts: facts})
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("replay: status %d: %s", resp.StatusCode, body)
				}
			}
		}
	}
	for p := 0; p < programs; p++ {
		_, p8 := getJSON(t, ts8.URL+"/programs/"+ids[p]+"/period")
		_, p1 := getJSON(t, ts1.URL+"/programs/"+ids[p]+"/period")
		if string(p8) != string(p1) {
			t.Fatalf("program %d: period diverged under concurrency: %s != %s", p, p8, p1)
		}
		for w := 0; w < writers; w++ {
			for i := 0; i < perWriter; i++ {
				q := fmt.Sprintf("exists T plane(T, p%dw%dr%d)", p, w, i)
				if !askServed(t, ts8.URL, ids[p], q) {
					t.Fatalf("batch p%dw%dr%d lost on sharded server", p, w, i)
				}
			}
		}
	}
}

// TestAskCoalesce pins the singleflight contract: with the lone pool
// worker held hostage, N identical concurrent asks form one flight —
// exactly one evaluation runs when the worker frees up, every other
// request reports Coalesced, and all N answers agree.
func TestAskCoalesce(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	id := register(t, ts.URL, skiUnit)

	// Occupy the single worker so the flight leader's evaluation cannot
	// start until released — the join window stays open deterministically.
	gate := make(chan struct{})
	occupied := make(chan struct{})
	go s.pool.Do(t.Context(), func() { close(occupied); <-gate }) //nolint:errcheck
	<-occupied

	const n = 8
	var wg sync.WaitGroup
	results := make([]askResponse, n)
	errCh := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL+"/programs/"+id+"/ask", askRequest{Query: "plane(0, hunter)"})
			if resp.StatusCode != http.StatusOK {
				errCh <- fmt.Errorf("ask %d: status %d: %s", i, resp.StatusCode, body)
				return
			}
			if err := json.Unmarshal(body, &results[i]); err != nil {
				errCh <- err
			}
		}(i)
	}

	// Wait until all N are inside the flight: 1 leader + n-1 joiners.
	deadline := time.Now().Add(5 * time.Second)
	for s.metrics.Coalesced.Load() < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d joiners after 5s, want %d", s.metrics.Coalesced.Load(), n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	if got := s.metrics.FlightLeaders.Load(); got != 1 {
		t.Fatalf("flight leaders = %d, want exactly 1 evaluation", got)
	}
	if got := s.metrics.Coalesced.Load(); got != n-1 {
		t.Fatalf("coalesced = %d, want %d", got, n-1)
	}
	coalesced := 0
	for i, r := range results {
		if !r.Result {
			t.Fatalf("ask %d: result false, want true", i)
		}
		if r.Coalesced {
			coalesced++
		}
	}
	if coalesced != n-1 {
		t.Fatalf("%d responses marked coalesced, want %d", coalesced, n-1)
	}
	if got := s.reg.flights.size(); got != 0 {
		t.Fatalf("%d flights still open after completion", got)
	}
}

// TestIngestInvalidatesFlightKey checks the revision in the flight key:
// after an ingest moves the program, a new ask must evaluate fresh (new
// flight, not a stale joined answer).
func TestIngestInvalidatesFlightKey(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	id := register(t, ts.URL, skiUnit)

	if askServed(t, ts.URL, id, "exists T plane(T, stowe)") {
		t.Fatal("stowe served before ingest")
	}
	leaders := s.metrics.FlightLeaders.Load()
	resp, body := postJSON(t, ts.URL+"/programs/"+id+"/facts",
		factsRequest{Facts: "resort(stowe).\nplane(1, stowe).\n"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d: %s", resp.StatusCode, body)
	}
	if !askServed(t, ts.URL, id, "exists T plane(T, stowe)") {
		t.Fatal("stowe not served after ingest — stale flight answer?")
	}
	if got := s.metrics.FlightLeaders.Load(); got != leaders+1 {
		t.Fatalf("flight leaders advanced by %d, want 1 (fresh evaluation on new rev)", got-leaders)
	}
}

// TestShardShedsFast saturates one shard's admission gate and requires
// the next request to be rejected promptly — a 429 with Retry-After in
// well under the request deadline — with the shed counters bumped.
func TestShardShedsFast(t *testing.T) {
	s, ts := newTestServer(t, Config{ShardQueue: 1, RequestTimeout: 30 * time.Second})
	id := register(t, ts.URL, skiUnit)

	// Fill the program's shard gate directly: capacity 1, one slot taken.
	sh := s.reg.shardFor(id)
	if !sh.tryAcquire() {
		t.Fatal("could not take the only admission slot")
	}
	defer sh.release()

	start := time.Now()
	resp, body := postJSON(t, ts.URL+"/programs/"+id+"/ask", askRequest{Query: "plane(0, hunter)"})
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	// The gate check is a CAS before any queueing, so a shed is
	// microseconds of work; 500ms is pure scheduling headroom and still
	// 60x under the 30s block-mode deadline.
	if elapsed > 500*time.Millisecond {
		t.Fatalf("shed took %v, want prompt rejection", elapsed)
	}
	if got := s.metrics.Shed.Load(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}
	if got := s.metrics.route("ask").Sheds.Load(); got != 1 {
		t.Fatalf("ask route sheds = %d, want 1", got)
	}
	if got := sh.sheds.Load(); got != 1 {
		t.Fatalf("shard sheds = %d, want 1", got)
	}

	// Other shards keep admitting: a different program is unaffected
	// unless it hashes into the saturated shard.
	id2 := register(t, ts.URL, skiUnit+"resort(okemo).\n")
	if s.reg.shardFor(id2) != sh {
		if !askServed(t, ts.URL, id2, "plane(0, hunter)") {
			t.Fatal("unrelated shard refused a query")
		}
	}

	// Block mode never sheds: the same saturated gate is simply ignored.
	_, tsBlock := newTestServer(t, Config{ShardQueue: 1, Shed: "block"})
	idb := register(t, tsBlock.URL, skiUnit)
	if resp, body := postJSON(t, tsBlock.URL+"/programs/"+idb+"/ask", askRequest{Query: "plane(0, hunter)"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("block mode: status %d: %s", resp.StatusCode, body)
	}
}

// TestWriterLockLifetime is the regression test for the unbounded
// writer-lock map: after any mix of sequential and concurrent ingests
// across programs, no per-program mutex may remain in the shard tables.
func TestWriterLockLifetime(t *testing.T) {
	s, ts := newTestServer(t, Config{Shards: 4})
	const programs = 5
	ids := make([]string, programs)
	for i := range ids {
		rules, facts := workload.Ski(workload.SkiParams{
			YearLen: 15, Resorts: 2, Planes: 3, Holidays: 1, Seed: int64(300 + i),
		})
		ids[i] = register(t, ts.URL, rules+facts)
	}

	var wg sync.WaitGroup
	for p := 0; p < programs; p++ {
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func(p, w int) {
				defer wg.Done()
				for i := 0; i < 3; i++ {
					facts := fmt.Sprintf("resort(l%dw%di%d).\n", p, w, i)
					resp, body := postJSON(t, ts.URL+"/programs/"+ids[p]+"/facts", factsRequest{Facts: facts})
					if resp.StatusCode != http.StatusOK {
						t.Errorf("ingest: status %d: %s", resp.StatusCode, body)
					}
				}
			}(p, w)
		}
	}
	wg.Wait()

	if got := s.reg.WritingLen(); got != 0 {
		t.Fatalf("%d writer locks still live after all ingests finished (leak)", got)
	}
}

// TestMetricsAdmissionFields checks the /metrics JSON carries the new
// queue, shard, and coalescing observability.
func TestMetricsAdmissionFields(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 4})
	id := register(t, ts.URL, skiUnit)
	askServed(t, ts.URL, id, "plane(0, hunter)")

	resp, body := getJSON(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.QueueCapacity <= 0 {
		t.Fatalf("queue_capacity = %d, want positive", snap.QueueCapacity)
	}
	if len(snap.Shards) != 4 {
		t.Fatalf("%d shard snapshots, want 4", len(snap.Shards))
	}
	var progs int
	for _, sh := range snap.Shards {
		progs += sh.Programs
		if sh.Capacity <= 0 {
			t.Fatalf("shard capacity %d, want positive", sh.Capacity)
		}
	}
	if progs != 1 {
		t.Fatalf("shards hold %d programs total, want 1", progs)
	}
}
