package server

// Prometheus text exposition (version 0.0.4) of the server's metrics.
// Hand-rolled rather than depending on a client library: the metric set
// is small, fixed, and entirely atomics-backed, so the exposition is a
// deterministic walk. Served at GET /metrics.prom next to the richer
// JSON snapshot at GET /metrics.

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// promMetric describes one scalar family: name, type, help, and a loader.
type promMetric struct {
	name string
	typ  string // "counter" or "gauge"
	help string
	load func(m *Metrics) int64
}

var promScalars = []promMetric{
	{"tddserve_requests_total", "counter", "HTTP requests received, any route.",
		func(m *Metrics) int64 { return m.Requests.Load() }},
	{"tddserve_errors_total", "counter", "Responses with status >= 400.",
		func(m *Metrics) int64 { return m.Errors.Load() }},
	{"tddserve_in_flight_requests", "gauge", "Requests currently executing.",
		func(m *Metrics) int64 { return m.InFlight.Load() }},
	{"tddserve_timeouts_total", "counter", "Requests that hit the per-request deadline.",
		func(m *Metrics) int64 { return m.Timeouts.Load() }},
	{"tddserve_spec_cache_hits_total", "counter", "Spec-cache lookups answered warm.",
		func(m *Metrics) int64 { return m.CacheHits.Load() }},
	{"tddserve_spec_cache_misses_total", "counter", "Spec-cache lookups that had to (re)compile.",
		func(m *Metrics) int64 { return m.CacheMisses.Load() }},
	{"tddserve_spec_cache_evictions_total", "counter", "Warm entries displaced by the LRU policy.",
		func(m *Metrics) int64 { return m.CacheEvict.Load() }},
	{"tddserve_bt_fallbacks_total", "counter", "Queries the spec path failed and the BT engine answered.",
		func(m *Metrics) int64 { return m.Fallbacks.Load() }},
	{"tddserve_asserts_total", "counter", "Successful fact-ingestion batches.",
		func(m *Metrics) int64 { return m.Asserts.Load() }},
	{"tddserve_facts_ingested_total", "counter", "Facts new to a database across all ingestions.",
		func(m *Metrics) int64 { return m.FactsIngested.Load() }},
	{"tddserve_eval_parallelism", "gauge", "Engine worker bound per evaluation (0 = sequential schedule).",
		func(m *Metrics) int64 { return m.EvalParallelism.Load() }},
	{"tddserve_wal_appends_total", "counter", "Fact batches appended to program write-ahead logs.",
		func(m *Metrics) int64 { return m.WalAppends.Load() }},
	{"tddserve_wal_fsyncs_total", "counter", "Fsync calls across all program logs.",
		func(m *Metrics) int64 { return m.WalFsyncs.Load() }},
	{"tddserve_wal_snapshots_total", "counter", "Snapshot + log-truncation cycles completed.",
		func(m *Metrics) int64 { return m.Snapshots.Load() }},
	{"tddserve_wal_snapshot_errors_total", "counter", "Snapshot attempts that failed (the batch stayed logged).",
		func(m *Metrics) int64 { return m.SnapshotErrors.Load() }},
	{"tddserve_follower_polls_total", "counter", "Leader poll cycles completed by a follower.",
		func(m *Metrics) int64 { return m.FollowerPolls.Load() }},
	{"tddserve_follower_records_applied_total", "counter", "Leader WAL records applied by a follower.",
		func(m *Metrics) int64 { return m.FollowerRecords.Load() }},
	{"tddserve_follower_errors_total", "counter", "Follower poll or apply failures, including divergence.",
		func(m *Metrics) int64 { return m.FollowerErrors.Load() }},
	{"tddserve_follower_lag_records", "gauge", "Leader batches not yet applied, summed over programs.",
		func(m *Metrics) int64 { return m.FollowerLag.Load() }},
	{"tddserve_shed_total", "counter", "Requests rejected by admission control instead of queued.",
		func(m *Metrics) int64 { return m.Shed.Load() }},
	{"tddserve_coalesced_requests_total", "counter", "Asks that joined an identical in-flight evaluation.",
		func(m *Metrics) int64 { return m.Coalesced.Load() }},
	{"tddserve_flight_leaders_total", "counter", "Coalescable evaluations actually run (flight leaders).",
		func(m *Metrics) int64 { return m.FlightLeaders.Load() }},
}

// promLe renders a bucket bound in seconds the way Prometheus clients do
// (shortest float form, e.g. 5e-05, 0.001, 1).
func promLe(us int64) string {
	return strconv.FormatFloat(float64(us)/1e6, 'g', -1, 64)
}

// writePrometheus renders the whole exposition: the scalar families, the
// worker-queue and per-shard admission gauges, the per-route
// request/error/shed/timeout counters and latency histograms, and
// per-warm-program engine gauges. Route and program names are emitted
// sorted so the output is deterministic (and testable line-for-line).
func (m *Metrics) writePrometheus(w io.Writer, programs map[string]ProgramStats, durability map[string]DurabilityStats,
	queueDepth, queueCapacity int, shards []ShardSnapshot) {
	bi := binaryBuildInfo()
	fmt.Fprintf(w, "# HELP tddserve_build_info Build identity (info-style: value is always 1).\n# TYPE tddserve_build_info gauge\ntddserve_build_info{go_version=%q,version=%q,revision=%q} 1\n",
		bi.GoVersion, bi.Version, bi.Revision)
	fmt.Fprintf(w, "# HELP tddserve_uptime_seconds Seconds since the server's metrics were created.\n# TYPE tddserve_uptime_seconds gauge\ntddserve_uptime_seconds %s\n",
		strconv.FormatFloat(time.Since(m.start).Seconds(), 'g', -1, 64))
	rs := runtimeSnapshot()
	fmt.Fprintf(w, "# HELP tddserve_goroutines Live goroutines in the serving process.\n# TYPE tddserve_goroutines gauge\ntddserve_goroutines %d\n", rs.Goroutines)
	fmt.Fprintf(w, "# HELP tddserve_heap_alloc_bytes Heap bytes allocated and in use.\n# TYPE tddserve_heap_alloc_bytes gauge\ntddserve_heap_alloc_bytes %d\n", rs.HeapAlloc)
	fmt.Fprintf(w, "# HELP tddserve_heap_sys_bytes Heap bytes obtained from the OS.\n# TYPE tddserve_heap_sys_bytes gauge\ntddserve_heap_sys_bytes %d\n", rs.HeapSys)
	fmt.Fprintf(w, "# HELP tddserve_gc_cycles_total Completed garbage-collection cycles.\n# TYPE tddserve_gc_cycles_total counter\ntddserve_gc_cycles_total %d\n", rs.GCCycles)
	fmt.Fprintf(w, "# HELP tddserve_gc_pause_seconds_total Cumulative stop-the-world GC pause time.\n# TYPE tddserve_gc_pause_seconds_total counter\ntddserve_gc_pause_seconds_total %s\n",
		strconv.FormatFloat(float64(rs.GCPauseUs)/1e6, 'g', -1, 64))

	for _, s := range promScalars {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", s.name, s.help, s.name, s.typ, s.name, s.load(m))
	}

	fmt.Fprintf(w, "# HELP tddserve_queue_depth Admitted tasks waiting for a worker in the shared pool queue.\n# TYPE tddserve_queue_depth gauge\ntddserve_queue_depth %d\n", queueDepth)
	fmt.Fprintf(w, "# HELP tddserve_queue_capacity Bound of the shared worker-pool queue.\n# TYPE tddserve_queue_capacity gauge\ntddserve_queue_capacity %d\n", queueCapacity)

	shardGauges := []struct {
		name, typ, help string
		load            func(ShardSnapshot) int64
	}{
		{"tddserve_shard_inflight", "gauge", "Requests currently admitted through a shard's gate.",
			func(s ShardSnapshot) int64 { return s.InFlight }},
		{"tddserve_shard_capacity", "gauge", "In-flight bound of a shard's admission gate.",
			func(s ShardSnapshot) int64 { return s.Capacity }},
		{"tddserve_shard_sheds_total", "counter", "Requests rejected at a shard's admission gate.",
			func(s ShardSnapshot) int64 { return s.Sheds }},
		{"tddserve_shard_programs", "gauge", "Programs registered in a shard.",
			func(s ShardSnapshot) int64 { return int64(s.Programs) }},
		{"tddserve_shard_warm", "gauge", "Warm (cached) specifications in a shard.",
			func(s ShardSnapshot) int64 { return int64(s.Warm) }},
	}
	for _, g := range shardGauges {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", g.name, g.help, g.name, g.typ)
		for i, sn := range shards {
			fmt.Fprintf(w, "%s{shard=\"%d\"} %d\n", g.name, i, g.load(sn))
		}
	}

	fmt.Fprintf(w, "# HELP tddserve_fsync_duration_seconds WAL fsync latency across all program logs.\n# TYPE tddserve_fsync_duration_seconds histogram\n")
	{
		buckets, count, sumUs := m.fsyncLatency.cumulative()
		for i, bound := range bucketBoundsMicros {
			fmt.Fprintf(w, "tddserve_fsync_duration_seconds_bucket{le=%q} %d\n", promLe(bound), buckets[i])
		}
		fmt.Fprintf(w, "tddserve_fsync_duration_seconds_bucket{le=\"+Inf\"} %d\n", buckets[len(buckets)-1])
		fmt.Fprintf(w, "tddserve_fsync_duration_seconds_sum %s\n", strconv.FormatFloat(float64(sumUs)/1e6, 'g', -1, 64))
		fmt.Fprintf(w, "tddserve_fsync_duration_seconds_count %d\n", count)
	}

	routes := make([]string, 0, len(m.routes))
	for name := range m.routes {
		routes = append(routes, name)
	}
	sort.Strings(routes)

	fmt.Fprintf(w, "# HELP tddserve_route_requests_total Requests per route.\n# TYPE tddserve_route_requests_total counter\n")
	for _, name := range routes {
		fmt.Fprintf(w, "tddserve_route_requests_total{route=%q} %d\n", name, m.routes[name].Requests.Load())
	}
	fmt.Fprintf(w, "# HELP tddserve_route_errors_total Error responses per route.\n# TYPE tddserve_route_errors_total counter\n")
	for _, name := range routes {
		fmt.Fprintf(w, "tddserve_route_errors_total{route=%q} %d\n", name, m.routes[name].Errors.Load())
	}
	fmt.Fprintf(w, "# HELP tddserve_route_sheds_total Requests rejected by admission control per route.\n# TYPE tddserve_route_sheds_total counter\n")
	for _, name := range routes {
		fmt.Fprintf(w, "tddserve_route_sheds_total{route=%q} %d\n", name, m.routes[name].Sheds.Load())
	}
	fmt.Fprintf(w, "# HELP tddserve_route_timeouts_total Requests that hit the per-request deadline per route.\n# TYPE tddserve_route_timeouts_total counter\n")
	for _, name := range routes {
		fmt.Fprintf(w, "tddserve_route_timeouts_total{route=%q} %d\n", name, m.routes[name].Timeouts.Load())
	}

	fmt.Fprintf(w, "# HELP tddserve_request_duration_seconds Request latency per route.\n# TYPE tddserve_request_duration_seconds histogram\n")
	for _, name := range routes {
		buckets, count, sumUs := m.routes[name].latency.cumulative()
		for i, bound := range bucketBoundsMicros {
			fmt.Fprintf(w, "tddserve_request_duration_seconds_bucket{route=%q,le=%q} %d\n", name, promLe(bound), buckets[i])
		}
		fmt.Fprintf(w, "tddserve_request_duration_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", name, buckets[len(buckets)-1])
		fmt.Fprintf(w, "tddserve_request_duration_seconds_sum{route=%q} %s\n", name, strconv.FormatFloat(float64(sumUs)/1e6, 'g', -1, 64))
		fmt.Fprintf(w, "tddserve_request_duration_seconds_count{route=%q} %d\n", name, count)
	}

	var lintWarnings int64
	for _, p := range programs {
		lintWarnings += int64(p.LintWarnings)
	}
	fmt.Fprintf(w, "# HELP tddserve_lint_warnings Lint findings at warning severity or above across warm programs.\n# TYPE tddserve_lint_warnings gauge\ntddserve_lint_warnings %d\n", lintWarnings)

	ids := make([]string, 0, len(programs))
	for id := range programs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	progGauges := []struct {
		name, help string
		load       func(ProgramStats) int64
	}{
		{"tddserve_program_derived_facts", "Facts derived beyond the database for a warm program.",
			func(p ProgramStats) int64 { return int64(p.Derived) }},
		{"tddserve_program_rule_firings", "Rule firings for a warm program.",
			func(p ProgramStats) int64 { return int64(p.Firings) }},
		{"tddserve_program_sweeps", "Full window sweeps for a warm program.",
			func(p ProgramStats) int64 { return int64(p.Sweeps) }},
		{"tddserve_program_representatives", "Representative terms |T| of a warm program's specification.",
			func(p ProgramStats) int64 { return int64(p.Representatives) }},
		{"tddserve_program_spec_facts", "Primary-database facts |B| of a warm program's specification.",
			func(p ProgramStats) int64 { return int64(p.Facts) }},
		{"tddserve_program_lint_warnings", "Lint findings at warning severity or above for a warm program.",
			func(p ProgramStats) int64 { return int64(p.LintWarnings) }},
	}
	for _, g := range progGauges {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", g.name, g.help, g.name)
		for _, id := range ids {
			fmt.Fprintf(w, "%s{program=%q} %d\n", g.name, id, g.load(programs[id]))
		}
	}

	if len(durability) == 0 {
		return
	}
	dids := make([]string, 0, len(durability))
	for id := range durability {
		dids = append(dids, id)
	}
	sort.Strings(dids)
	durGauges := []struct {
		name, help string
		load       func(DurabilityStats) int64
	}{
		{"tddserve_program_wal_seq", "Batches ingested into a program since registration.",
			func(d DurabilityStats) int64 { return int64(d.Seq) }},
		{"tddserve_program_durable_seq", "Highest batch sequence known fsynced for a program.",
			func(d DurabilityStats) int64 { return int64(d.DurableSeq) }},
		{"tddserve_program_snapshot_seq", "Batch sequence covered by the program's latest snapshot.",
			func(d DurabilityStats) int64 { return int64(d.SnapshotSeq) }},
		{"tddserve_program_wal_bytes", "Live WAL segment size in bytes for a program.",
			func(d DurabilityStats) int64 { return d.WalBytes }},
	}
	for _, g := range durGauges {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", g.name, g.help, g.name)
		for _, id := range dids {
			fmt.Fprintf(w, "%s{program=%q} %d\n", g.name, id, g.load(durability[id]))
		}
	}
	fmt.Fprintf(w, "# HELP tddserve_program_snapshot_age_seconds Seconds since the program's latest snapshot (0 before any snapshot).\n# TYPE tddserve_program_snapshot_age_seconds gauge\n")
	for _, id := range dids {
		fmt.Fprintf(w, "tddserve_program_snapshot_age_seconds{program=%q} %s\n", id,
			strconv.FormatFloat(durability[id].SnapshotAgeSec, 'g', -1, 64))
	}
	// The durable rev is a string, so expose it info-style: a constant-1
	// gauge with the rev as a label, the idiom Prometheus uses for build
	// and version identifiers.
	fmt.Fprintf(w, "# HELP tddserve_program_durable_rev Last durable revision per program (info-style: value is always 1).\n# TYPE tddserve_program_durable_rev gauge\n")
	for _, id := range dids {
		fmt.Fprintf(w, "tddserve_program_durable_rev{program=%q,rev=%q} 1\n", id, durability[id].DurableRev)
	}
}
