package server

// Live introspection: the /debug endpoint group. Unlike /metrics (counter
// aggregates) these report the server's *current* working set —
//
//   GET /debug/flights  every in-flight HTTP request (age, shard, trace
//                       id) and every in-flight coalescable evaluation
//                       with its joiner count
//   GET /debug/slow     a ring buffer of the last SlowQueryKeep slow
//                       queries with their full phase trees, so a slow
//                       spike can be diagnosed after the fact without
//                       grepping logs
//   GET /debug/shards   the per-shard heatmap: registered programs, warm
//                       specs, admission in-flight/capacity, shed counts
//   GET /debug/graph    a program's predicate dependency condensation
//                       (SCCs, recursion classes, temporal depths,
//                       base-reachability) and, with ?q=, the relevance
//                       slice a query would evaluate
//
// All are read-only snapshots assembled under short locks; they are
// safe to poll from a dashboard while the server is under load.

import (
	"net/http"
	"sort"
	"sync"
	"time"

	"tdd"
	"tdd/internal/obs"
)

// inflightReq is one HTTP request currently executing, tracked by the
// route middleware from dispatch to response.
type inflightReq struct {
	route   string
	method  string
	path    string
	program string // "" on routes without a program id
	shard   int    // -1 without a program id
	traceID string
	started time.Time
}

// inflightTable tracks in-flight requests for /debug/flights. Entries
// are keyed by a monotonically increasing token so removal is O(1) and
// never confuses two requests on the same path.
type inflightTable struct {
	mu   sync.Mutex
	next uint64
	m    map[uint64]*inflightReq
}

func newInflightTable() *inflightTable {
	return &inflightTable{m: make(map[uint64]*inflightReq)}
}

func (t *inflightTable) add(req *inflightReq) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next++
	t.m[t.next] = req
	return t.next
}

func (t *inflightTable) remove(token uint64) {
	t.mu.Lock()
	delete(t.m, token)
	t.mu.Unlock()
}

// InflightSnapshot is one in-flight request as reported by
// GET /debug/flights.
type InflightSnapshot struct {
	Route   string `json:"route"`
	Method  string `json:"method"`
	Path    string `json:"path"`
	Program string `json:"program,omitempty"`
	Shard   int    `json:"shard"` // -1 on routes without a program id
	TraceID string `json:"trace_id"`
	AgeUs   int64  `json:"age_us"`
}

// snapshot reports every in-flight request, oldest first — the head of
// the list is the request most worth worrying about.
func (t *inflightTable) snapshot() []InflightSnapshot {
	t.mu.Lock()
	out := make([]InflightSnapshot, 0, len(t.m))
	now := time.Now()
	for _, r := range t.m {
		out = append(out, InflightSnapshot{
			Route:   r.route,
			Method:  r.method,
			Path:    r.path,
			Program: r.program,
			Shard:   r.shard,
			TraceID: r.traceID,
			AgeUs:   now.Sub(r.started).Microseconds(),
		})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].AgeUs > out[j].AgeUs })
	return out
}

// SlowQuery is one slow-query record in the /debug/slow ring: what ran,
// how long it took, and the full phase tree it produced.
type SlowQuery struct {
	Route     string         `json:"route"`
	Program   string         `json:"program"`
	Query     string         `json:"query"`
	TraceID   string         `json:"trace_id"`
	ElapsedUs int64          `json:"elapsed_us"`
	At        time.Time      `json:"at"`
	Trace     *obs.TraceJSON `json:"trace,omitempty"`
}

// slowRing keeps the last keep slow queries. Older entries are
// overwritten; total counts every slow query ever recorded so a reader
// can tell "quiet since boot" from "ring wrapped many times".
type slowRing struct {
	mu    sync.Mutex
	keep  int
	buf   []SlowQuery
	next  int // write cursor into buf once it is full
	total int64
}

func newSlowRing(keep int) *slowRing {
	return &slowRing{keep: keep}
}

func (r *slowRing) add(q SlowQuery) {
	if r == nil || r.keep <= 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if len(r.buf) < r.keep {
		r.buf = append(r.buf, q)
		return
	}
	r.buf[r.next] = q
	r.next = (r.next + 1) % r.keep
}

// snapshot returns the retained entries newest-first and the lifetime
// slow-query count.
func (r *slowRing) snapshot() (entries []SlowQuery, total int64) {
	if r == nil {
		return nil, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	entries = make([]SlowQuery, 0, len(r.buf))
	// buf is ordered oldest→newest starting at the write cursor once the
	// ring has wrapped; walk it backwards to emit newest first.
	for i := 0; i < len(r.buf); i++ {
		idx := (r.next - 1 - i + len(r.buf)) % len(r.buf)
		entries = append(entries, r.buf[idx])
	}
	return entries, r.total
}

type debugFlightsResponse struct {
	// Requests is every HTTP request currently executing, oldest first.
	Requests []InflightSnapshot `json:"requests"`
	// Flights is every in-flight coalescable evaluation; a request shows
	// up here only while its leader is evaluating.
	Flights []FlightSnapshot `json:"flights"`
}

// GET /debug/flights
func (s *Server) handleDebugFlights(w http.ResponseWriter, _ *http.Request) {
	flights := s.reg.flights.snapshot()
	for i := range flights {
		flights[i].Shard = s.reg.shardIndex(flights[i].Program)
	}
	writeJSON(w, http.StatusOK, debugFlightsResponse{
		Requests: s.inflight.snapshot(),
		Flights:  flights,
	})
}

type debugSlowResponse struct {
	// ThresholdUs is the configured slow-query threshold (0 = logging
	// disabled, in which case the ring never fills).
	ThresholdUs int64 `json:"threshold_us"`
	Keep        int   `json:"keep"`
	// Total counts every slow query since boot; Slow holds the last Keep
	// of them, newest first, each with its full phase tree.
	Total int64       `json:"total"`
	Slow  []SlowQuery `json:"slow"`
}

// GET /debug/slow
func (s *Server) handleDebugSlow(w http.ResponseWriter, _ *http.Request) {
	entries, total := s.slow.snapshot()
	if entries == nil {
		entries = []SlowQuery{}
	}
	writeJSON(w, http.StatusOK, debugSlowResponse{
		ThresholdUs: s.cfg.SlowQueryLog.Microseconds(),
		Keep:        s.cfg.SlowQueryKeep,
		Total:       total,
		Slow:        entries,
	})
}

type debugShardsResponse struct {
	Shards []ShardSnapshot `json:"shards"`
}

// GET /debug/shards
func (s *Server) handleDebugShards(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, debugShardsResponse{Shards: s.reg.ShardStats()})
}

type debugGraphResponse struct {
	ID string `json:"id"`
	// Slicing reports whether the registry answers asks on this program
	// through the sliced path.
	Slicing bool `json:"slicing"`
	// Graph is the whole-program dependency report: predicates with SCC
	// assignments, the SCC condensation with per-component recursion
	// class / temporal depth / base-reachability, and the rule table.
	Graph tdd.GraphReport `json:"graph"`
	// Rendered is the same condensation as tddcheck graph prints it.
	Rendered string `json:"rendered"`
	// Slice, present when ?q= names a query, is the relevance slice that
	// query's predicates select.
	Slice *tdd.SliceInfo `json:"slice,omitempty"`
}

// GET /debug/graph?id=PROGRAM[&q=QUERY] — the program's predicate
// dependency condensation (internal/progan), and optionally the slice a
// query would evaluate.
func (s *Server) handleDebugGraph(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing id parameter"})
		return
	}
	ent, err := s.reg.Lookup(id)
	if err != nil {
		s.fail(w, "debug_graph", err)
		return
	}
	resp := debugGraphResponse{
		ID:       id,
		Slicing:  ent.slicing,
		Graph:    ent.db.GraphJSON(),
		Rendered: ent.db.Graph(),
	}
	if q := r.URL.Query().Get("q"); q != "" {
		info, err := ent.db.SliceFor(q)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		resp.Slice = &info
	}
	writeJSON(w, http.StatusOK, resp)
}
