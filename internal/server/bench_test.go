package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"tdd"
	"tdd/internal/wal"
	"tdd/internal/workload"
)

// BenchmarkServedWarmAsk measures one served closed query on a warm spec
// cache — the E7 fast path the server exists for: HTTP round-trip + one
// rewrite + one lookup.
func BenchmarkServedWarmAsk(b *testing.B) {
	s, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	buf, _ := json.Marshal(registerRequest{Unit: skiUnit})
	resp, err := http.Post(ts.URL+"/programs", "application/json", bytes.NewReader(buf))
	if err != nil {
		b.Fatal(err)
	}
	var reg registerResponse
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	url := ts.URL + "/programs/" + reg.ID + "/ask"
	body, _ := json.Marshal(askRequest{Query: "plane(1000000, hunter)"})

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var ar askResponse
		if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
}

// BenchmarkColdOpenAsk is the comparison point: what every query would
// cost without the server's cache — parse, validate, evaluate, certify
// the period, then answer.
func BenchmarkColdOpenAsk(b *testing.B) {
	for i := 0; i < b.N; i++ {
		db, err := tdd.OpenUnit(skiUnit)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := db.Ask("plane(1000000, hunter)"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLintOffHotPath pins the E14 claim: linting runs once at
// compile time (the registry computes it before an entry is published),
// so the query path never touches it. The sub-benchmarks measure a warm
// closed ask before any lint runs, the one-time cost of the lint itself
// on the same DB (the cached specification is reused, so only the
// analysis runs), and the same warm ask afterwards — the two ask runs
// must be statistically identical.
func BenchmarkLintOffHotPath(b *testing.B) {
	db, err := tdd.OpenUnit(skiUnit)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := db.Ask("plane(1000000, hunter)"); err != nil {
		b.Fatal(err)
	}
	ask := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.Ask("plane(1000000, hunter)"); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("ask-pre-lint", ask)
	b.Run("lint-once", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if res := db.Lint(skiUnit); res.Warnings() != 0 {
				b.Fatalf("ski unit should lint clean, got %+v", res.Diagnostics)
			}
		}
	})
	b.Run("ask-post-lint", ask)
}

// BenchmarkDurableIngest measures one ingested batch through the
// registry under each durability mode — the E15 numbers: what the WAL
// (and each fsync policy) adds on top of the incremental ingest itself.
func BenchmarkDurableIngest(b *testing.B) {
	run := func(b *testing.B, attach func(b *testing.B, reg *Registry)) {
		reg := NewRegistry(4, 8, 0, 0, newMetrics(routeNames))
		if attach != nil {
			attach(b, reg)
		}
		ent, _, err := reg.Register(evenUnit, "", "")
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Distinct odd timestamps: every batch is one genuinely new fact.
			if _, _, err := reg.Ingest(ent.ID(), fmt.Sprintf("even(%d).\n", 3+2*i)); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if err := reg.CloseWAL(); err != nil {
			b.Fatal(err)
		}
	}
	durable := func(policy wal.Policy) func(*testing.B, *Registry) {
		return func(b *testing.B, reg *Registry) {
			store, err := wal.Open(b.TempDir(), wal.Options{Policy: policy})
			if err != nil {
				b.Fatal(err)
			}
			reg.EnableDurability(store, 0)
		}
	}
	b.Run("memory", func(b *testing.B) { run(b, nil) })
	b.Run("fsync-off", func(b *testing.B) { run(b, durable(wal.FsyncOff)) })
	b.Run("fsync-interval", func(b *testing.B) { run(b, durable(wal.FsyncInterval)) })
	b.Run("fsync-always", func(b *testing.B) { run(b, durable(wal.FsyncAlways)) })
}

// BenchmarkSlicedAsk is the E19 pair: the same warm existential ask on
// the Distractor workload with and without query-directed slicing. The
// relevant chain has period 2; the distractor cycles blow the full
// model's period up to 210 and fill every state with irrelevant facts.
// The ask probes the witness-free constant c1, so the existential cannot
// short-circuit: the full path scans its whole 210-state temporal domain
// while the sliced path scans a handful of states. The ci.sh perf gate
// holds the sliced/full ratio at <= 0.6 (min of 3).
func BenchmarkSlicedAsk(b *testing.B) {
	rules, facts := workload.Distractor([]int{3, 5, 7}, 40)
	unit := rules + facts
	const query = "exists T q(T, c1)"
	run := func(b *testing.B, opts ...tdd.Option) {
		db, err := tdd.OpenUnit(unit, opts...)
		if err != nil {
			b.Fatal(err)
		}
		ok, err := db.Ask(query)
		if err != nil || ok {
			b.Fatalf("warm-up ask: ok=%v err=%v (want a witness-free no)", ok, err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if ok, err := db.Ask(query); err != nil || ok {
				b.Fatalf("ask: ok=%v err=%v", ok, err)
			}
		}
	}
	b.Run("full", func(b *testing.B) { run(b) })
	b.Run("sliced", func(b *testing.B) { run(b, tdd.WithSlicing()) })
}

// BenchmarkServedWarmAskParallel drives the warm path from many client
// goroutines at once — the heavy-traffic shape.
func BenchmarkServedWarmAskParallel(b *testing.B) {
	s, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	buf, _ := json.Marshal(registerRequest{Unit: evenUnit})
	resp, err := http.Post(ts.URL+"/programs", "application/json", bytes.NewReader(buf))
	if err != nil {
		b.Fatal(err)
	}
	var reg registerResponse
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	url := ts.URL + "/programs/" + reg.ID + "/ask"

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			body, _ := json.Marshal(askRequest{Query: fmt.Sprintf("even(%d)", 1000000+2*i)})
			resp, err := http.Post(url, "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			var ar askResponse
			if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if !ar.Result {
				b.Fatalf("even(%d) served false", 1000000+2*i)
			}
			i++
		}
	})
}
