// Package server implements tddserve: a long-running HTTP/JSON query
// service over temporal deductive databases.
//
// The serving model is the paper's Section 3.3 workload (validated by
// experiment E7): preprocess one program into its relational
// specification once, then answer arbitrarily many queries from the
// finite specification in O(rewrite) time each. The subsystem is
//
//   - a program registry: clients POST a rules+facts pair and get back a
//     stable handle (the content hash), so registration is idempotent and
//     cacheable across clients;
//   - an LRU specification cache: each registered program is compiled and
//     preprocessed (period certified, specification exported and
//     re-imported as an immutable tdd.SpecDB) at most once while resident;
//     queries hit the warm SpecDB — the E7 fast path — and fall back to
//     the BT engine when the spec path cannot answer;
//   - a bounded worker pool with per-request deadlines, so overload
//     degrades into prompt errors rather than unbounded concurrency;
//   - an observability layer: request/error counters, latency histograms,
//     cache hit/miss/eviction counts, and an in-flight gauge at
//     GET /metrics, plus structured request logging.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"tdd"
	"tdd/internal/obs"
)

// ErrNotFound is returned by Lookup for an unregistered program id.
var ErrNotFound = errors.New("server: unknown program id")

// programSource is the registered, never-evicted form of a program: its
// base sources, the stream of fact batches ingested since registration,
// and the content hashes. Recompiling from it after an eviction is
// deterministic — the base is opened and the batches are re-asserted in
// order — so the cache can always be refilled.
type programSource struct {
	id    string
	unit  string // mixed rules+facts source ("" when rules/facts are split)
	rules string
	facts string
	// rev is the content hash of the program *including* every ingested
	// batch: it starts equal to id and advances with each ingestion, so
	// clients can detect that the database behind a stable id has moved.
	rev string
	// extra is the ordered fact batches ingested via Ingest. Replaying
	// them batch-by-batch reproduces the incremental sort coercion
	// exactly (coercion depends on the predicates known at assert time).
	extra []string
}

// lintSource is the raw text inline "tddlint:ignore" suppressions are
// read from: the unit source when the program was registered mixed, the
// rules source otherwise (rule positions refer to it).
func (s *programSource) lintSource() string {
	if s.unit != "" {
		return s.unit
	}
	return s.rules
}

// entry is a warm program: the compiled BT engine plus the preprocessed
// specification. specDB answers every query the spec path supports from
// immutable structure with no locking; db is the fallback engine and the
// source of the exported specification.
type entry struct {
	src      *programSource
	db       *tdd.DB
	specDB   *tdd.SpecDB
	specJSON []byte
	period   tdd.Period
	reps     int // |T|, representative terms
	facts    int // |B|, primary-database facts
	// lint is the Tier-A analysis of the compiled program, computed once
	// per compile/ingest while the entry is built — never on the query
	// path. Served in registration/ingestion responses (?lint=1 for the
	// full diagnostics) and aggregated into the lint_warnings gauge.
	lint tdd.LintResult
	// tr is the program's lifetime trace: the compile pipeline (parse,
	// validate, classify, certify-period with fixpoint sweeps,
	// spec-construct, preprocess, import) plus every ingest since.
	// ?trace=1 responses merge a snapshot of it with the request's own
	// trace so warm queries still show where the preprocessing time went.
	tr *obs.Trace
}

// CompileTrace snapshots the program's lifetime trace.
func (e *entry) CompileTrace() *obs.TraceJSON { return e.tr.Snapshot() }

// ID returns the registry handle (content hash) of the program.
func (e *entry) ID() string { return e.src.id }

// Rev returns the content revision: equal to ID until facts are ingested,
// then advanced by every batch.
func (e *entry) Rev() string { return e.src.rev }

// Period returns the certified minimal period.
func (e *entry) Period() tdd.Period { return e.period }

// Lint returns the Tier-A analysis computed when the entry was built.
func (e *entry) Lint() tdd.LintResult { return e.lint }

// future caches one compile-in-progress so concurrent misses on the same
// id do the work once (no thundering herd on expensive period
// certifications).
type future struct {
	once  sync.Once
	done  atomic.Bool
	entry *entry
	err   error
}

func (f *future) resolve(build func() (*entry, error)) (*entry, error) {
	f.once.Do(func() {
		f.entry, f.err = build()
		f.done.Store(true)
	})
	return f.entry, f.err
}

// peek returns the entry if the future has already resolved successfully,
// nil otherwise. Never blocks — used by the metrics path to walk warm
// entries without waiting on in-flight compiles.
func (f *future) peek() *entry {
	if !f.done.Load() {
		return nil
	}
	return f.entry
}

// resolvedFuture wraps an already-built entry.
func resolvedFuture(e *entry) *future {
	f := &future{}
	f.once.Do(func() { f.entry = e; f.done.Store(true) })
	return f
}

// Registry stores registered program sources (unbounded — sources are
// tiny) and a bounded LRU cache of their preprocessed specifications
// (bounded — a warm entry pins the whole evaluated window). It is safe
// for concurrent use.
type Registry struct {
	maxWindow   int
	parallelism int
	metrics     *Metrics

	mu    sync.Mutex
	progs map[string]*programSource // guarded-by: mu
	cache *lru[*future]             // guarded-by: mu
	// writing holds one mutex per program id: Ingest serializes writers
	// per program while readers keep querying the published entry.
	writing map[string]*sync.Mutex // guarded-by: mu
}

// NewRegistry builds a registry whose spec cache holds at most cacheSize
// warm programs; maxWindow (0 = default) bounds period certification;
// parallelism (0 = sequential) sets the engine worker bound every
// compiled program is opened with.
func NewRegistry(cacheSize, maxWindow, parallelism int, m *Metrics) *Registry {
	r := &Registry{
		maxWindow:   maxWindow,
		parallelism: parallelism,
		metrics:     m,
		progs:       make(map[string]*programSource),
		writing:     make(map[string]*sync.Mutex),
	}
	r.cache = newLRU[*future](cacheSize, func(string, *future) {
		m.CacheEvict.Add(1)
	})
	return r
}

// hashSource derives the registry handle: a content hash, so registering
// the same program twice — from any client — yields the same id.
func hashSource(unit, rules, facts string) string {
	h := sha256.New()
	h.Write([]byte(unit))
	h.Write([]byte{0})
	h.Write([]byte(rules))
	h.Write([]byte{0})
	h.Write([]byte(facts))
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// nextRev advances the content revision by one ingested batch: a hash
// chain, so the revision commits to the base program and the entire
// ingestion history in order.
func nextRev(rev, batch string) string {
	h := sha256.New()
	h.Write([]byte(rev))
	h.Write([]byte{0})
	h.Write([]byte(batch))
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// compile builds a warm entry: parse and validate, certify the period,
// export the relational specification, and re-import it as the immutable
// serving structure.
func (r *Registry) compile(src *programSource) (*entry, error) {
	tr := obs.New()
	opts := []tdd.Option{tdd.WithTrace(tr)}
	if r.maxWindow > 0 {
		opts = append(opts, tdd.WithMaxWindow(r.maxWindow))
	}
	if r.parallelism > 0 {
		opts = append(opts, tdd.WithParallelism(r.parallelism))
	}
	var (
		db  *tdd.DB
		err error
	)
	if src.unit != "" {
		db, err = tdd.OpenUnit(src.unit, opts...)
	} else {
		db, err = tdd.Open(src.rules, src.facts, opts...)
	}
	if err != nil {
		return nil, err
	}
	// Replay the ingestion history batch by batch: each Assert coerces
	// against the predicates known at that point, exactly as the original
	// ingestions did, so an evicted-and-recompiled entry is identical.
	for _, batch := range src.extra {
		if _, err := db.Assert(batch); err != nil {
			return nil, fmt.Errorf("replaying ingested facts: %w", err)
		}
	}
	// The export triggers the whole certification pipeline, so its phases
	// (classify, certify-period with fixpoint sweeps, spec-construct) nest
	// under preprocess in the trace.
	sp := tr.Begin("preprocess")
	specJSON, err := db.ExportSpec()
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("preprocessing: %w", err)
	}
	sp = tr.Begin("import")
	specDB, err := tdd.ImportSpec(specJSON)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("reloading specification: %w", err)
	}
	reps, facts, err := db.SpecificationSize()
	if err != nil {
		return nil, err
	}
	// Lint after the export: the specification is already certified, so
	// the linter's semantic probe reuses it and re-evaluates nothing. The
	// cost lands on compile, keeping the query path untouched.
	sp = tr.Begin("lint")
	lintRes := db.Lint(src.lintSource())
	sp.Add("warnings", int64(lintRes.Warnings()))
	sp.End()
	return &entry{
		src:      src,
		db:       db,
		specDB:   specDB,
		specJSON: specJSON,
		period:   specDB.Period(),
		reps:     reps,
		facts:    facts,
		lint:     lintRes,
		tr:       tr,
	}, nil
}

// Register registers (or re-registers) a program and returns its warm
// entry. existing reports whether the id was already registered.
// Registration compiles eagerly so clients learn about invalid programs
// and uncertifiable periods at registration time, not on first query.
func (r *Registry) Register(unit, rules, facts string) (e *entry, existing bool, err error) {
	id := hashSource(unit, rules, facts)
	r.mu.Lock()
	if _, ok := r.progs[id]; ok {
		r.mu.Unlock()
		e, err = r.Lookup(id)
		return e, true, err
	}
	r.mu.Unlock()

	// Compile outside the lock; registration of distinct programs
	// proceeds in parallel. Two racing registrations of the same program
	// both compile — idempotent, and the second simply refreshes the
	// cache slot.
	src := &programSource{id: id, unit: unit, rules: rules, facts: facts, rev: id}
	ent, err := r.compile(src)
	if err != nil {
		return nil, false, err
	}
	f := resolvedFuture(ent)

	r.mu.Lock()
	if _, ok := r.progs[id]; !ok {
		r.progs[id] = src
	}
	r.cache.put(id, f)
	r.mu.Unlock()
	r.metrics.CacheMisses.Add(1)
	return ent, false, nil
}

// Lookup returns the warm entry for a registered id, recompiling on a
// cache miss (counted in the metrics). Concurrent misses on one id share
// a single compilation.
func (r *Registry) Lookup(id string) (*entry, error) {
	r.mu.Lock()
	src, ok := r.progs[id]
	if !ok {
		r.mu.Unlock()
		return nil, ErrNotFound
	}
	f, hit := r.cache.get(id)
	if !hit {
		f = &future{}
		r.cache.put(id, f)
	}
	r.mu.Unlock()

	if hit {
		r.metrics.CacheHits.Add(1)
	} else {
		r.metrics.CacheMisses.Add(1)
	}
	e, err := f.resolve(func() (*entry, error) { return r.compile(src) })
	if err != nil {
		// Do not cache failures; drop the slot so a later lookup retries.
		r.mu.Lock()
		if cur, ok := r.cache.get(id); ok && cur == f {
			r.cache.remove(id)
		}
		r.mu.Unlock()
		return nil, err
	}
	return e, nil
}

// Ingest appends a batch of facts (same syntax as registration fact
// sources) to a registered program. Writers are serialized per program;
// readers are never blocked — they keep querying the published entry
// until the successor, built off to the side on a fork of the program's
// DB, is swapped into the registry and the spec cache in one step. The
// program keeps its stable id; the content revision advances. On error
// (parse failure, signature conflict, uncertifiable period) nothing is
// published and the program is unchanged.
func (r *Registry) Ingest(id, facts string) (*entry, tdd.AssertResult, error) {
	r.mu.Lock()
	if _, ok := r.progs[id]; !ok {
		r.mu.Unlock()
		return nil, tdd.AssertResult{}, ErrNotFound
	}
	wl, ok := r.writing[id]
	if !ok {
		wl = &sync.Mutex{}
		r.writing[id] = wl
	}
	r.mu.Unlock()

	wl.Lock()
	defer wl.Unlock()

	// Re-read the source under mu: an ingest that held the writer lock
	// before us may have advanced it.
	r.mu.Lock()
	src := r.progs[id]
	r.mu.Unlock()

	ent, err := r.Lookup(id)
	if err != nil {
		return nil, tdd.AssertResult{}, err
	}
	fork := ent.db.Fork()
	res, err := fork.Assert(facts)
	if err != nil {
		return nil, res, err
	}
	specJSON, err := fork.ExportSpec()
	if err != nil {
		return nil, res, fmt.Errorf("re-preprocessing: %w", err)
	}
	specDB, err := tdd.ImportSpec(specJSON)
	if err != nil {
		return nil, res, fmt.Errorf("reloading specification: %w", err)
	}
	reps, nfacts, err := fork.SpecificationSize()
	if err != nil {
		return nil, res, err
	}
	nsrc := &programSource{
		id:    id,
		unit:  src.unit,
		rules: src.rules,
		facts: src.facts,
		rev:   nextRev(src.rev, facts),
		extra: append(append([]string(nil), src.extra...), facts),
	}
	// The fork's BT carries ent's lifetime trace, so the Assert above
	// recorded its ingest/delta spans into it; the successor entry keeps
	// the same trace.
	ne := &entry{
		src:      nsrc,
		db:       fork,
		specDB:   specDB,
		specJSON: specJSON,
		period:   specDB.Period(),
		reps:     reps,
		facts:    nfacts,
		lint:     fork.Lint(nsrc.lintSource()),
		tr:       ent.tr,
	}
	r.mu.Lock()
	r.progs[id] = nsrc
	r.cache.put(id, resolvedFuture(ne))
	r.mu.Unlock()
	r.metrics.Asserts.Add(1)
	r.metrics.FactsIngested.Add(int64(res.NewFacts))
	return ne, res, nil
}

// ProgramStats is the per-program engine section of the metrics snapshot:
// the revision and the work counters of one warm program.
type ProgramStats struct {
	Rev             string     `json:"rev"`
	Period          PeriodInfo `json:"period"`
	Derived         int        `json:"derived"`
	Firings         int        `json:"firings"`
	Sweeps          int        `json:"sweeps"`
	Representatives int        `json:"representatives"`
	Facts           int        `json:"facts"`
	// LintWarnings counts this program's lint findings at warning
	// severity or above (errors cannot occur on a program that compiled).
	LintWarnings int `json:"lint_warnings"`
}

// PeriodInfo is the JSON form of a period in metrics.
type PeriodInfo struct {
	Base int `json:"base"`
	P    int `json:"p"`
}

// WarmStats reports engine work counters for every warm (resident and
// resolved) program. In-flight compiles are skipped rather than awaited.
func (r *Registry) WarmStats() map[string]ProgramStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]ProgramStats)
	r.cache.each(func(id string, f *future) {
		e := f.peek()
		if e == nil {
			return
		}
		derived, firings, sweeps := e.db.EngineStats()
		out[id] = ProgramStats{
			Rev:             e.src.rev,
			Period:          PeriodInfo{Base: e.period.Base, P: e.period.P},
			Derived:         derived,
			Firings:         firings,
			Sweeps:          sweeps,
			Representatives: e.reps,
			Facts:           e.facts,
			LintWarnings:    e.lint.Warnings(),
		}
	})
	return out
}

// IDs returns the registered program ids, sorted.
func (r *Registry) IDs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.progs))
	for id := range r.progs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// CachedLen reports how many programs are currently warm (test hook).
func (r *Registry) CachedLen() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cache.len()
}

// ask answers a closed query for this entry: the cached specification
// first (the E7 fast path), the BT engine as fallback. engine reports
// which path answered. tr (may be nil) receives the request's phase
// spans; a fallback records a second parse-query/answer pair.
func (e *entry) ask(q string, m *Metrics, tr *obs.Trace) (result bool, engine string, err error) {
	result, err = e.specDB.AskTrace(q, tr)
	if err == nil {
		return result, "spec", nil
	}
	specErr := err
	result, err = e.db.AskTrace(q, tr)
	if err != nil {
		// Both failed — report the spec error; the paths share a parser,
		// so this is almost always a malformed query.
		return false, "", specErr
	}
	m.Fallbacks.Add(1)
	return result, "bt", nil
}

// answers enumerates (up to limit) answers for this entry, spec path
// first with BT fallback; see ask.
func (e *entry) answers(q string, limit int, m *Metrics, tr *obs.Trace) (ans []tdd.Answer, engine string, err error) {
	ans, err = e.specDB.AnswersLimitTrace(q, limit, tr)
	if err == nil {
		return ans, "spec", nil
	}
	specErr := err
	ans, err = e.db.AnswersLimitTrace(q, limit, tr)
	if err != nil {
		return nil, "", specErr
	}
	m.Fallbacks.Add(1)
	return ans, "bt", nil
}
