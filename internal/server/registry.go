// Package server implements tddserve: a long-running HTTP/JSON query
// service over temporal deductive databases.
//
// The serving model is the paper's Section 3.3 workload (validated by
// experiment E7): preprocess one program into its relational
// specification once, then answer arbitrarily many queries from the
// finite specification in O(rewrite) time each. The subsystem is
//
//   - a program registry: clients POST a rules+facts pair and get back a
//     stable handle (the content hash), so registration is idempotent and
//     cacheable across clients;
//   - an LRU specification cache: each registered program is compiled and
//     preprocessed (period certified, specification exported and
//     re-imported as an immutable tdd.SpecDB) at most once while resident;
//     queries hit the warm SpecDB — the E7 fast path — and fall back to
//     the BT engine when the spec path cannot answer;
//   - a bounded worker pool with per-request deadlines, so overload
//     degrades into prompt errors rather than unbounded concurrency;
//   - an observability layer: request/error counters, latency histograms,
//     cache hit/miss/eviction counts, and an in-flight gauge at
//     GET /metrics, plus structured request logging.
package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"tdd"
	"tdd/internal/obs"
	"tdd/internal/wal"
)

// ErrNotFound is returned by Lookup for an unregistered program id.
var ErrNotFound = errors.New("server: unknown program id")

// programSource is the registered, never-evicted form of a program: its
// base sources, the stream of fact batches ingested since registration,
// and the content hashes. Recompiling from it after an eviction is
// deterministic — the base is opened and the batches are re-asserted in
// order — so the cache can always be refilled.
type programSource struct {
	id    string
	unit  string // mixed rules+facts source ("" when rules/facts are split)
	rules string
	facts string
	// rev is the content hash of the program *including* every ingested
	// batch: it starts equal to id and advances with each ingestion, so
	// clients can detect that the database behind a stable id has moved.
	rev string
	// extra is the ordered fact batches ingested via Ingest. Replaying
	// them batch-by-batch reproduces the incremental sort coercion
	// exactly (coercion depends on the predicates known at assert time).
	extra []string
}

// lintSource is the raw text inline "tddlint:ignore" suppressions are
// read from: the unit source when the program was registered mixed, the
// rules source otherwise (rule positions refer to it).
func (s *programSource) lintSource() string {
	if s.unit != "" {
		return s.unit
	}
	return s.rules
}

// entry is a warm program: the compiled BT engine plus the preprocessed
// specification. specDB answers every query the spec path supports from
// immutable structure with no locking; db is the fallback engine and the
// source of the exported specification.
type entry struct {
	src      *programSource
	db       *tdd.DB
	specDB   *tdd.SpecDB
	specJSON []byte
	period   tdd.Period
	reps     int // |T|, representative terms
	facts    int // |B|, primary-database facts
	// slicing records whether db was opened with query-directed slicing;
	// ask then prefers the slicing-enabled processor over the full
	// specification cache.
	slicing bool
	// lint is the Tier-A analysis of the compiled program, computed once
	// per compile/ingest while the entry is built — never on the query
	// path. Served in registration/ingestion responses (?lint=1 for the
	// full diagnostics) and aggregated into the lint_warnings gauge.
	lint tdd.LintResult
	// tr is the program's lifetime trace: the compile pipeline (parse,
	// validate, classify, certify-period with fixpoint sweeps,
	// spec-construct, preprocess, import) plus every ingest since.
	// ?trace=1 responses merge a snapshot of it with the request's own
	// trace so warm queries still show where the preprocessing time went.
	tr *obs.Trace
}

// CompileTrace snapshots the program's lifetime trace.
func (e *entry) CompileTrace() *obs.TraceJSON { return e.tr.Snapshot() }

// ID returns the registry handle (content hash) of the program.
func (e *entry) ID() string { return e.src.id }

// Rev returns the content revision: equal to ID until facts are ingested,
// then advanced by every batch.
func (e *entry) Rev() string { return e.src.rev }

// Period returns the certified minimal period.
func (e *entry) Period() tdd.Period { return e.period }

// Lint returns the Tier-A analysis computed when the entry was built.
func (e *entry) Lint() tdd.LintResult { return e.lint }

// future caches one compile-in-progress so concurrent misses on the same
// id do the work once (no thundering herd on expensive period
// certifications).
type future struct {
	once  sync.Once
	done  atomic.Bool
	entry *entry
	err   error
}

func (f *future) resolve(build func() (*entry, error)) (*entry, error) {
	f.once.Do(func() {
		f.entry, f.err = build()
		f.done.Store(true)
	})
	return f.entry, f.err
}

// peek returns the entry if the future has already resolved successfully,
// nil otherwise. Never blocks — used by the metrics path to walk warm
// entries without waiting on in-flight compiles.
func (f *future) peek() *entry {
	if !f.done.Load() {
		return nil
	}
	return f.entry
}

// resolvedFuture wraps an already-built entry.
func resolvedFuture(e *entry) *future {
	f := &future{}
	f.once.Do(func() { f.entry = e; f.done.Store(true) })
	return f
}

// Registry stores registered program sources (unbounded — sources are
// tiny) and a bounded LRU cache of their preprocessed specifications
// (bounded — a warm entry pins the whole evaluated window). It is safe
// for concurrent use. The tables are split by program-content-hash into
// independent lock domains (see shard.go), so traffic on different
// programs contends only within a shard, never globally; the flight
// group coalesces identical concurrent asks into one evaluation.
type Registry struct {
	maxWindow   int
	parallelism int
	metrics     *Metrics

	// wal, when non-nil, makes the registry durable: registrations write
	// base.json, every ingested batch is appended to the program's log
	// before it is published (log-before-publish: an acknowledged batch
	// is always recoverable, a failed append is never visible), and
	// every snapshotEvery batches the history is folded into a snapshot
	// and the live log truncated. Set once before serving (EnableDurability).
	wal           *wal.Store
	snapshotEvery int

	// slicing opens every compiled program with query-directed relevance
	// slicing (tdd.WithSlicing) and flips ask to prefer the sliced path.
	// Set once before serving (EnableSlicing).
	slicing bool

	shards  []*shard
	flights flightGroup
}

// NewRegistry builds a registry split into shardCount lock domains
// (forced to at least 1) whose spec caches hold at most cacheSize warm
// programs in total; maxWindow (0 = default) bounds period
// certification; parallelism (0 = sequential) sets the engine worker
// bound every compiled program is opened with.
func NewRegistry(shardCount, cacheSize, maxWindow, parallelism int, m *Metrics) *Registry {
	if shardCount < 1 {
		shardCount = 1
	}
	r := &Registry{
		maxWindow:   maxWindow,
		parallelism: parallelism,
		metrics:     m,
		shards:      make([]*shard, shardCount),
	}
	// The cache budget is divided across shards (at least one slot each):
	// eviction pressure is local to a shard, which is what keeps the
	// recency-list update — the hot-path mutation under the lock — out of
	// cross-program contention.
	perShard := cacheSize / shardCount
	if perShard < 1 {
		perShard = 1
	}
	for i := range r.shards {
		r.shards[i] = newShard(perShard, func(string, *future) {
			m.CacheEvict.Add(1)
		})
	}
	return r
}

// hashSource derives the registry handle: a content hash, so registering
// the same program twice — from any client — yields the same id. The
// hash lives in internal/wal because it roots every program's on-disk
// rev chain; leaders and followers must agree on it byte for byte.
func hashSource(unit, rules, facts string) string {
	return wal.HashSource(unit, rules, facts)
}

// nextRev advances the content revision by one ingested batch: a hash
// chain, so the revision commits to the base program and the entire
// ingestion history in order. Shared with internal/wal, which verifies
// the same chain on disk during recovery.
func nextRev(rev, batch string) string {
	return wal.NextRev(rev, batch)
}

// compile builds a warm entry: parse and validate, certify the period,
// export the relational specification, and re-import it as the immutable
// serving structure.
func (r *Registry) compile(src *programSource) (*entry, error) {
	tr := obs.New()
	// The join profiler is always on, like the lifetime trace: certification
	// is the only join work a served program ever does, and its cost profile
	// (?profile=1) is only available if it was recorded then. The enabled
	// overhead is bounded by the E17 gate in scripts/ci.sh.
	opts := []tdd.Option{tdd.WithTrace(tr), tdd.WithProfile()}
	if r.maxWindow > 0 {
		opts = append(opts, tdd.WithMaxWindow(r.maxWindow))
	}
	if r.parallelism > 0 {
		opts = append(opts, tdd.WithParallelism(r.parallelism))
	}
	if r.slicing {
		opts = append(opts, tdd.WithSlicing())
	}
	var (
		db  *tdd.DB
		err error
	)
	if src.unit != "" {
		db, err = tdd.OpenUnit(src.unit, opts...)
	} else {
		db, err = tdd.Open(src.rules, src.facts, opts...)
	}
	if err != nil {
		return nil, err
	}
	// Replay the ingestion history batch by batch: each Assert coerces
	// against the predicates known at that point, exactly as the original
	// ingestions did, so an evicted-and-recompiled entry is identical.
	for _, batch := range src.extra {
		if _, err := db.Assert(batch); err != nil {
			return nil, fmt.Errorf("replaying ingested facts: %w", err)
		}
	}
	// The export triggers the whole certification pipeline, so its phases
	// (classify, certify-period with fixpoint sweeps, spec-construct) nest
	// under preprocess in the trace.
	sp := tr.Begin("preprocess")
	specJSON, err := db.ExportSpec()
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("preprocessing: %w", err)
	}
	sp = tr.Begin("import")
	specDB, err := tdd.ImportSpec(specJSON)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("reloading specification: %w", err)
	}
	reps, facts, err := db.SpecificationSize()
	if err != nil {
		return nil, err
	}
	// Lint after the export: the specification is already certified, so
	// the linter's semantic probe reuses it and re-evaluates nothing. The
	// cost lands on compile, keeping the query path untouched.
	sp = tr.Begin("lint")
	lintRes := db.Lint(src.lintSource())
	sp.Add("warnings", int64(lintRes.Warnings()))
	sp.End()
	return &entry{
		src:      src,
		db:       db,
		specDB:   specDB,
		specJSON: specJSON,
		period:   specDB.Period(),
		reps:     reps,
		facts:    facts,
		lint:     lintRes,
		slicing:  r.slicing,
		tr:       tr,
	}, nil
}

// Register registers (or re-registers) a program and returns its warm
// entry. existing reports whether the id was already registered.
// Registration compiles eagerly so clients learn about invalid programs
// and uncertifiable periods at registration time, not on first query.
func (r *Registry) Register(unit, rules, facts string) (e *entry, existing bool, err error) {
	id := hashSource(unit, rules, facts)
	sh := r.shardFor(id)
	sh.mu.Lock()
	if _, ok := sh.progs[id]; ok {
		sh.mu.Unlock()
		e, err = r.Lookup(id)
		return e, true, err
	}
	sh.mu.Unlock()

	// Compile outside the lock; registration of distinct programs
	// proceeds in parallel. Two racing registrations of the same program
	// both compile — idempotent; the loser's entry is discarded by
	// publish below.
	src := &programSource{id: id, unit: unit, rules: rules, facts: facts, rev: id}
	ent, err := r.compile(src)
	if err != nil {
		return nil, false, err
	}
	// Durable registration: base.json must be on disk before the program
	// is visible, so a crash right after the response still recovers it.
	if r.wal != nil {
		if _, err := r.wal.Create(wal.Base{ID: id, Unit: unit, Rules: rules, Facts: facts}); err != nil {
			return nil, false, fmt.Errorf("persisting program: %w", err)
		}
	}
	if !r.publish(src, ent) {
		// Lost the publish race: a concurrent Register finished first, and
		// ingests may already have advanced the program past this compile's
		// base-only state. Overwriting the cache with our entry would
		// silently serve a model missing those batches, so drop it and read
		// back whatever is current.
		e, err = r.Lookup(id)
		return e, true, err
	}
	r.metrics.CacheMisses.Add(1)
	return ent, false, nil
}

// publish atomically installs a freshly compiled registration: source
// and cache slot move together, so the cached entry never lags the
// registered source. It installs nothing and reports false when another
// registration won the race — by then the program may have ingested
// batches, so the caller's base-only entry is potentially stale and must
// be discarded, never cached.
func (r *Registry) publish(src *programSource, ent *entry) bool {
	sh := r.shardFor(src.id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.progs[src.id]; ok {
		return false
	}
	sh.progs[src.id] = src
	sh.cache.put(src.id, resolvedFuture(ent))
	return true
}

// Lookup returns the warm entry for a registered id, recompiling on a
// cache miss (counted in the metrics). Concurrent misses on one id share
// a single compilation.
func (r *Registry) Lookup(id string) (*entry, error) {
	sh := r.shardFor(id)
	sh.mu.Lock()
	src, ok := sh.progs[id]
	if !ok {
		sh.mu.Unlock()
		return nil, ErrNotFound
	}
	f, hit := sh.cache.get(id)
	if !hit {
		f = &future{}
		sh.cache.put(id, f)
	}
	sh.mu.Unlock()

	if hit {
		r.metrics.CacheHits.Add(1)
	} else {
		r.metrics.CacheMisses.Add(1)
	}
	e, err := f.resolve(func() (*entry, error) { return r.compile(src) })
	if err != nil {
		// Do not cache failures; drop the slot so a later lookup retries.
		sh.mu.Lock()
		if cur, ok := sh.cache.get(id); ok && cur == f {
			sh.cache.remove(id)
		}
		sh.mu.Unlock()
		return nil, err
	}
	return e, nil
}

// Ingest appends a batch of facts (same syntax as registration fact
// sources) to a registered program. Writers are serialized per program;
// readers are never blocked — they keep querying the published entry
// until the successor, built off to the side on a fork of the program's
// DB, is swapped into the registry and the spec cache in one step. The
// program keeps its stable id; the content revision advances. On error
// (parse failure, signature conflict, uncertifiable period) nothing is
// published and the program is unchanged.
func (r *Registry) Ingest(id, facts string) (*entry, tdd.AssertResult, error) {
	sh := r.shardFor(id)
	sh.mu.Lock()
	if _, ok := sh.progs[id]; !ok {
		sh.mu.Unlock()
		return nil, tdd.AssertResult{}, ErrNotFound
	}
	sh.mu.Unlock()

	// The writer lock is refcounted: it exists only while a writer holds
	// or awaits it, so the writing table stays bounded by in-flight
	// ingests rather than growing with every program ever written.
	wl := sh.lockWriter(id)
	defer sh.unlockWriter(id, wl)

	// Re-read the source under the shard lock: an ingest that held the
	// writer lock before us may have advanced it.
	sh.mu.Lock()
	src := sh.progs[id]
	sh.mu.Unlock()
	if src == nil {
		return nil, tdd.AssertResult{}, ErrNotFound
	}

	ent, err := r.Lookup(id)
	if err != nil {
		return nil, tdd.AssertResult{}, err
	}
	fork := ent.db.Fork()
	res, err := fork.Assert(facts)
	if err != nil {
		return nil, res, err
	}
	specJSON, err := fork.ExportSpec()
	if err != nil {
		return nil, res, fmt.Errorf("re-preprocessing: %w", err)
	}
	specDB, err := tdd.ImportSpec(specJSON)
	if err != nil {
		return nil, res, fmt.Errorf("reloading specification: %w", err)
	}
	reps, nfacts, err := fork.SpecificationSize()
	if err != nil {
		return nil, res, err
	}
	nsrc := &programSource{
		id:    id,
		unit:  src.unit,
		rules: src.rules,
		facts: src.facts,
		rev:   nextRev(src.rev, facts),
		extra: append(append([]string(nil), src.extra...), facts),
	}
	// The fork's BT carries ent's lifetime trace, so the Assert above
	// recorded its ingest/delta spans into it; the successor entry keeps
	// the same trace.
	ne := &entry{
		src:      nsrc,
		db:       fork,
		specDB:   specDB,
		specJSON: specJSON,
		period:   specDB.Period(),
		reps:     reps,
		facts:    nfacts,
		lint:     fork.Lint(nsrc.lintSource()),
		tr:       ent.tr,
	}
	// Log-before-publish: the batch reaches the WAL (and, under
	// fsync=always, stable storage) before any reader can observe it. A
	// failed append rejects the whole ingest with nothing published — an
	// acknowledged batch is always recoverable, a crashed one invisible.
	if r.wal != nil {
		lg := r.wal.Log(id)
		if lg == nil {
			return nil, res, fmt.Errorf("wal: program %s has no log (registered before durability was enabled?)", id)
		}
		rec := wal.Record{Seq: uint64(len(nsrc.extra)), Prev: src.rev, Rev: nsrc.rev, Batch: facts}
		if err := lg.Append(rec); err != nil {
			return nil, res, fmt.Errorf("wal append: %w", err)
		}
		r.metrics.WalAppends.Add(1)
		if r.snapshotEvery > 0 && lg.SinceSnapshot() >= uint64(r.snapshotEvery) {
			// The snapshot reuses the spec the ingest just exported — a
			// spec snapshot costs no re-evaluation. Failure is tolerable:
			// the batch itself is already in the log.
			snap := wal.Snapshot{
				Seq:     rec.Seq,
				Rev:     nsrc.rev,
				Base:    wal.Base{ID: id, Unit: nsrc.unit, Rules: nsrc.rules, Facts: nsrc.facts},
				Records: chainRecords(nsrc),
				Spec:    specJSON,
			}
			if err := lg.WriteSnapshot(snap); err != nil {
				r.metrics.SnapshotErrors.Add(1)
			} else {
				r.metrics.Snapshots.Add(1)
			}
		}
	}
	sh.mu.Lock()
	sh.progs[id] = nsrc
	sh.cache.put(id, resolvedFuture(ne))
	sh.mu.Unlock()
	r.metrics.Asserts.Add(1)
	r.metrics.FactsIngested.Add(int64(res.NewFacts))
	return ne, res, nil
}

// chainRecords rebuilds the WAL record history of a source from its
// batch list by re-walking the rev hash chain from the id. programSource
// values are immutable once published, so this needs no lock.
func chainRecords(src *programSource) []wal.Record {
	recs := make([]wal.Record, 0, len(src.extra))
	rev := src.id
	for i, batch := range src.extra {
		next := nextRev(rev, batch)
		recs = append(recs, wal.Record{Seq: uint64(i + 1), Prev: rev, Rev: next, Batch: batch})
		rev = next
	}
	return recs
}

// EnableDurability attaches a WAL store: registrations and ingests
// persist through it, and snapshotEvery batches per program trigger a
// snapshot + log truncation (<= 0 disables snapshotting). Call once,
// before serving, typically followed by RecoverFromWAL.
func (r *Registry) EnableDurability(store *wal.Store, snapshotEvery int) {
	r.wal = store
	r.snapshotEvery = snapshotEvery
}

// EnableSlicing opens every subsequently compiled program with
// query-directed relevance slicing and flips ask to prefer the sliced
// path (see entry.ask). Call once, before serving: already-warm entries
// keep their compile-time setting until recompiled.
func (r *Registry) EnableSlicing() { r.slicing = true }

// RecoverFromWAL reconstructs the registry from the attached store:
// every program's base sources and verified batch history become a
// registered source, and (when warm is set) each program is recompiled
// eagerly — replaying its batches through the eviction-safe replay path —
// so a restarted server answers its first query from a warm cache.
// Returns how many programs and batches were recovered.
func (r *Registry) RecoverFromWAL(warm bool) (programs, batches int, err error) {
	if r.wal == nil {
		return 0, 0, errors.New("server: no WAL store attached")
	}
	recovered, err := r.wal.Recover()
	if err != nil {
		return 0, 0, err
	}
	for _, rec := range recovered {
		extra := make([]string, 0, len(rec.Records))
		for _, wr := range rec.Records {
			extra = append(extra, wr.Batch)
		}
		src := &programSource{
			id:    rec.Base.ID,
			unit:  rec.Base.Unit,
			rules: rec.Base.Rules,
			facts: rec.Base.Facts,
			rev:   rec.Rev,
			extra: extra,
		}
		sh := r.shardFor(src.id)
		sh.mu.Lock()
		sh.progs[src.id] = src
		sh.mu.Unlock()
		programs++
		batches += len(rec.Records)
	}
	if warm {
		for _, id := range r.IDs() {
			if _, err := r.Lookup(id); err != nil {
				return programs, batches, fmt.Errorf("recompiling recovered program %s: %w", id, err)
			}
		}
	}
	return programs, batches, nil
}

// CloseWAL flushes and closes the attached store (no-op without one).
// Called on shutdown after the worker pool has drained, so every
// in-flight ingest has either fully appended or been rejected.
func (r *Registry) CloseWAL() error {
	if r.wal == nil {
		return nil
	}
	return r.wal.Close()
}

// DurabilityStats reports per-program durability state (nil without a
// WAL store).
func (r *Registry) DurabilityStats() map[string]wal.LogStats {
	if r.wal == nil {
		return nil
	}
	return r.wal.Stats()
}

// source returns the registered program's source state, or nil (test
// hook; callers must not mutate the result outside the shard's lock).
func (r *Registry) source(id string) *programSource {
	sh := r.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.progs[id]
}

// SeqRev reports a registered program's batch count and current content
// revision (the follower's replication cursor).
func (r *Registry) SeqRev(id string) (seq uint64, rev string, ok bool) {
	sh := r.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	src, ok := sh.progs[id]
	if !ok {
		return 0, "", false
	}
	return uint64(len(src.extra)), src.rev, true
}

// WalFeed is the GET /programs/{id}/wal response: the record history
// from a replication cursor, plus the base sources when the cursor is 0
// so an empty follower can bootstrap the program.
type WalFeed struct {
	ID      string       `json:"id"`
	Seq     uint64       `json:"seq"`
	Rev     string       `json:"rev"`
	Base    *wal.Base    `json:"base,omitempty"`
	Records []wal.Record `json:"records"`
}

// Feed builds the replication feed for a registered program from its
// in-memory source state — it works with or without a WAL store, so any
// leader can serve followers. from is the number of batches the caller
// already has.
func (r *Registry) Feed(id string, from uint64) (WalFeed, error) {
	sh := r.shardFor(id)
	sh.mu.Lock()
	src, ok := sh.progs[id]
	sh.mu.Unlock()
	if !ok {
		return WalFeed{}, ErrNotFound
	}
	recs := chainRecords(src)
	feed := WalFeed{ID: id, Seq: uint64(len(recs)), Rev: src.rev, Records: []wal.Record{}}
	if from < feed.Seq {
		feed.Records = recs[from:]
	}
	if from == 0 {
		feed.Base = &wal.Base{ID: id, Unit: src.unit, Rules: src.rules, Facts: src.facts}
	}
	return feed, nil
}

// ApplyReplicated folds one leader WAL record into a follower's
// registry through the ordinary ingest path. The record is verified
// against the local chain BEFORE ingesting — a divergent batch is
// rejected pre-publish (and, on a durable follower, pre-WAL-append), so
// a diverged model is never served, not even read-only — and the
// resulting revision is re-checked after the ingest, so the replicated
// model is provably the leader's model, not merely a similar one.
func (r *Registry) ApplyReplicated(id string, rec wal.Record) error {
	seq, rev, ok := r.SeqRev(id)
	if !ok {
		return ErrNotFound
	}
	if rec.Seq != seq+1 || rec.Prev != rev {
		return fmt.Errorf("server: replication divergence on %s: leader record (seq %d, prev %s) does not continue local state (seq %d, rev %s)",
			id, rec.Seq, rec.Prev, seq, rev)
	}
	if got := nextRev(rec.Prev, rec.Batch); got != rec.Rev {
		return fmt.Errorf("server: replication divergence on %s: batch %d hashes to %s, leader says %s",
			id, rec.Seq, got, rec.Rev)
	}
	ent, _, err := r.Ingest(id, rec.Batch)
	if err != nil {
		return err
	}
	// Unreachable unless a local writer raced the replication loop —
	// followers are read-only, so this is belt and braces.
	if ent.src.rev != rec.Rev {
		return fmt.Errorf("server: replication divergence on %s: applied batch %d yields rev %s, leader says %s",
			id, rec.Seq, ent.src.rev, rec.Rev)
	}
	return nil
}

// ProgramStats is the per-program engine section of the metrics snapshot:
// the revision and the work counters of one warm program.
type ProgramStats struct {
	Rev             string     `json:"rev"`
	Period          PeriodInfo `json:"period"`
	Derived         int        `json:"derived"`
	Firings         int        `json:"firings"`
	Sweeps          int        `json:"sweeps"`
	Representatives int        `json:"representatives"`
	Facts           int        `json:"facts"`
	// LintWarnings counts this program's lint findings at warning
	// severity or above (errors cannot occur on a program that compiled).
	LintWarnings int `json:"lint_warnings"`
}

// PeriodInfo is the JSON form of a period in metrics.
type PeriodInfo struct {
	Base int `json:"base"`
	P    int `json:"p"`
}

// WarmStats reports engine work counters for every warm (resident and
// resolved) program. In-flight compiles are skipped rather than awaited.
func (r *Registry) WarmStats() map[string]ProgramStats {
	out := make(map[string]ProgramStats)
	for _, sh := range r.shards {
		sh.mu.Lock()
		sh.cache.each(func(id string, f *future) {
			e := f.peek()
			if e == nil {
				return
			}
			derived, firings, sweeps := e.db.EngineStats()
			out[id] = ProgramStats{
				Rev:             e.src.rev,
				Period:          PeriodInfo{Base: e.period.Base, P: e.period.P},
				Derived:         derived,
				Firings:         firings,
				Sweeps:          sweeps,
				Representatives: e.reps,
				Facts:           e.facts,
				LintWarnings:    e.lint.Warnings(),
			}
		})
		sh.mu.Unlock()
	}
	return out
}

// IDs returns the registered program ids, sorted.
func (r *Registry) IDs() []string {
	var out []string
	for _, sh := range r.shards {
		sh.mu.Lock()
		for id := range sh.progs {
			out = append(out, id)
		}
		sh.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// CachedLen reports how many programs are currently warm (test hook).
func (r *Registry) CachedLen() int {
	n := 0
	for _, sh := range r.shards {
		sh.mu.Lock()
		n += sh.cache.len()
		sh.mu.Unlock()
	}
	return n
}

// ask answers a closed query for this entry: the cached specification
// first (the E7 fast path), the BT engine as fallback. engine reports
// which path answered. tr (may be nil) receives the request's phase
// spans; a fallback records a second parse-query/answer pair.
//
// With slicing enabled the order flips: the slicing-enabled processor
// answers first — it evaluates only the query's relevance slice, whose
// certified period (and hence quantifier domains) can be far smaller
// than the full specification's — and the full specification cache is
// the fallback. "sliced" labels that processor's answers; it itself
// falls back to full evaluation internally when the query's slice is
// the whole program.
func (e *entry) ask(q string, m *Metrics, tr *obs.Trace) (result bool, engine string, err error) {
	if e.slicing {
		result, err = e.db.AskTrace(q, tr)
		if err == nil {
			return result, "sliced", nil
		}
		btErr := err
		result, err = e.specDB.AskTrace(q, tr)
		if err != nil {
			return false, "", btErr
		}
		m.Fallbacks.Add(1)
		return result, "spec", nil
	}
	result, err = e.specDB.AskTrace(q, tr)
	if err == nil {
		return result, "spec", nil
	}
	specErr := err
	result, err = e.db.AskTrace(q, tr)
	if err != nil {
		// Both failed — report the spec error; the paths share a parser,
		// so this is almost always a malformed query.
		return false, "", specErr
	}
	m.Fallbacks.Add(1)
	return result, "bt", nil
}

// answers enumerates (up to limit) answers for this entry, spec path
// first with BT fallback; see ask.
func (e *entry) answers(q string, limit int, m *Metrics, tr *obs.Trace) (ans []tdd.Answer, engine string, err error) {
	ans, err = e.specDB.AnswersLimitTrace(q, limit, tr)
	if err == nil {
		return ans, "spec", nil
	}
	specErr := err
	ans, err = e.db.AnswersLimitTrace(q, limit, tr)
	if err != nil {
		return nil, "", specErr
	}
	m.Fallbacks.Add(1)
	return ans, "bt", nil
}
