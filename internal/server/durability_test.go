package server

// The kill-and-recover differential battery: for random programs, random
// batch schedules, and every crash point — each record boundary and a
// random mid-record offset — a registry recovered from the (truncated)
// data directory must be indistinguishable from an engine that ingested
// the durable prefix and never crashed: same rev chain, same certified
// period, same model at every time point (ModelFingerprint hashes the
// full periodic state sequence). Plus the shutdown-ordering regression
// test: ingests racing a graceful shutdown are either fully logged or
// rejected, never torn.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"tdd"
	"tdd/internal/ast"
	"tdd/internal/randgen"
	"tdd/internal/wal"
)

func renderFacts(fs []ast.Fact) string {
	var b bytes.Buffer
	for _, f := range fs {
		fmt.Fprintf(&b, "%s.\n", f.String())
	}
	return b.String()
}

// copyDir clones a data directory so a crash point can be simulated
// destructively without disturbing the original.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// durableRegistry builds a registry over dir with the given fsync policy
// and snapshot cadence.
func durableRegistry(t *testing.T, dir string, pol wal.Policy, snapshotEvery int) *Registry {
	t.Helper()
	reg := NewRegistry(4, 8, 0, 0, newMetrics(routeNames))
	store, err := wal.Open(dir, wal.Options{Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	reg.EnableDurability(store, snapshotEvery)
	return reg
}

// oracleFingerprint builds a never-crashed engine — base program plus
// the given batches through the ordinary Assert path — and fingerprints
// its model.
func oracleFingerprint(t *testing.T, rules, facts string, batches []string) string {
	t.Helper()
	db, err := tdd.Open(rules, facts)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if _, err := db.Assert(b); err != nil {
			t.Fatal(err)
		}
	}
	fp, err := db.ModelFingerprint()
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

// recoverAndCompare recovers dir into a fresh registry and checks the
// recovered program against the oracle for the expected durable prefix.
func recoverAndCompare(t *testing.T, dir, id, rules, facts string, batches []string) {
	t.Helper()
	reg := durableRegistry(t, dir, wal.FsyncOff, 0)
	progs, gotBatches, err := reg.RecoverFromWAL(true)
	if err != nil {
		t.Fatalf("recovering with %d durable batches: %v", len(batches), err)
	}
	if progs != 1 || gotBatches != len(batches) {
		t.Fatalf("recovered %d programs / %d batches, want 1 / %d", progs, gotBatches, len(batches))
	}
	seq, rev, ok := reg.SeqRev(id)
	if !ok {
		t.Fatalf("program %s not recovered", id)
	}
	wantRev := id
	for _, b := range batches {
		wantRev = nextRev(wantRev, b)
	}
	if seq != uint64(len(batches)) || rev != wantRev {
		t.Fatalf("recovered cursor (%d, %s), want (%d, %s)", seq, rev, len(batches), wantRev)
	}
	ent, err := reg.Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := ent.db.ModelFingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if want := oracleFingerprint(t, rules, facts, batches); fp != want {
		t.Fatalf("recovered model fingerprint %s != never-crashed %s after %d batches", fp, want, len(batches))
	}
}

// TestKillAndRecoverDifferential is the battery. fsync=always with
// snapshots disabled keeps the full history in wal.log, so truncating
// the file at an offset simulates a crash with exactly that durable
// prefix; recovery of every prefix must reproduce the never-crashed
// engine bit for bit (torn mid-record tails are repaired, boundary cuts
// are exact).
func TestKillAndRecoverDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential battery is slow")
	}
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			g := randgen.New(rng, randgen.Default())
			prog, err := g.Program(rng)
			if err != nil {
				t.Fatal(err)
			}
			full, err := g.Database(rng)
			if err != nil {
				t.Fatal(err)
			}
			rules := prog.String()
			facts := append([]ast.Fact(nil), full.Facts...)
			rng.Shuffle(len(facts), func(i, j int) { facts[i], facts[j] = facts[j], facts[i] })
			k := rng.Intn(len(facts) + 1)
			base := renderFacts(facts[:k])

			// Leader: register, then ingest the rest in random batches.
			leaderDir := t.TempDir()
			reg := durableRegistry(t, leaderDir, wal.FsyncAlways, 0)
			ent, _, err := reg.Register("", rules, base)
			if err != nil {
				t.Fatal(err)
			}
			id := ent.ID()
			var batches []string
			rest := facts[k:]
			for len(rest) > 0 {
				n := 1 + rng.Intn(len(rest))
				batch := renderFacts(rest[:n])
				if _, _, err := reg.Ingest(id, batch); err != nil {
					t.Fatal(err)
				}
				batches = append(batches, batch)
				rest = rest[n:]
			}

			// Record boundaries: the log is the concatenation of the
			// canonical encodings, so re-encoding the chain reproduces
			// every record's on-disk extent.
			logPath := filepath.Join(leaderDir, "programs", id, "wal.log")
			boundaries := []int64{0}
			for _, rec := range chainRecords(reg.source(id)) {
				b, err := wal.EncodeRecord(rec)
				if err != nil {
					t.Fatal(err)
				}
				boundaries = append(boundaries, boundaries[len(boundaries)-1]+int64(len(b)))
			}
			if data, err := os.ReadFile(logPath); err != nil || int64(len(data)) != boundaries[len(boundaries)-1] {
				t.Fatalf("log is %d bytes (err %v), boundary math says %d", len(data), err, boundaries[len(boundaries)-1])
			}

			for i := 0; i <= len(batches); i++ {
				// Clean crash at the record boundary: exactly i batches durable.
				dir := copyDir(t, leaderDir)
				if err := os.Truncate(filepath.Join(dir, "programs", id, "wal.log"), boundaries[i]); err != nil {
					t.Fatal(err)
				}
				recoverAndCompare(t, dir, id, rules, base, batches[:i])

				// Torn crash mid-append of batch i+1: the incomplete record
				// must be discarded, leaving the same i durable batches.
				if i < len(batches) {
					recLen := boundaries[i+1] - boundaries[i]
					cut := boundaries[i] + 1 + rng.Int63n(recLen-1)
					dir := copyDir(t, leaderDir)
					if err := os.Truncate(filepath.Join(dir, "programs", id, "wal.log"), cut); err != nil {
						t.Fatal(err)
					}
					recoverAndCompare(t, dir, id, rules, base, batches[:i])
				}
			}
		})
	}
}

// TestSnapshotRestartDifferential restarts a registry whose history has
// been folded into snapshots (log truncated): the recovered model must
// still match the never-crashed oracle over the full batch sequence.
func TestSnapshotRestartDifferential(t *testing.T) {
	dir := t.TempDir()
	reg := durableRegistry(t, dir, wal.FsyncAlways, 2)
	ent, _, err := reg.Register(evenUnit, "", "")
	if err != nil {
		t.Fatal(err)
	}
	id := ent.ID()
	batches := []string{"even(101).\n", "even(203).\n", "even(305).\n", "even(407).\n", "even(509).\n"}
	for _, b := range batches {
		if _, _, err := reg.Ingest(id, b); err != nil {
			t.Fatal(err)
		}
	}
	if reg.metrics.Snapshots.Load() == 0 {
		t.Fatal("no snapshot was taken at snapshotEvery=2")
	}
	if err := reg.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	reg2 := durableRegistry(t, dir, wal.FsyncOff, 0)
	if _, _, err := reg2.RecoverFromWAL(true); err != nil {
		t.Fatal(err)
	}
	seq, _, _ := reg2.SeqRev(id)
	if seq != uint64(len(batches)) {
		t.Fatalf("recovered seq %d, want %d", seq, len(batches))
	}
	ent2, err := reg2.Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := ent2.db.ModelFingerprint()
	if err != nil {
		t.Fatal(err)
	}
	db, err := tdd.OpenUnit(evenUnit)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if _, err := db.Assert(b); err != nil {
			t.Fatal(err)
		}
	}
	want, err := db.ModelFingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp != want {
		t.Fatalf("snapshot-recovered fingerprint %s != oracle %s", fp, want)
	}
}

// TestShutdownFlushesWAL is the shutdown-ordering regression test:
// ingests race a graceful shutdown, and afterwards every acknowledged
// (2xx) batch must be fully on disk — recovery succeeds (no torn
// record survives), the recovered seq covers every ack, and every
// acknowledged rev appears on the recovered chain.
func TestShutdownFlushesWAL(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(Config{DataDir: dir, Fsync: "always", SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l) //nolint:errcheck // returns ErrServerClosed on shutdown
	url := "http://" + l.Addr().String()

	body, _ := json.Marshal(registerRequest{Unit: evenUnit})
	resp, err := http.Post(url+"/programs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var reg registerResponse
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Hammer the facts endpoint from several goroutines while the server
	// shuts down under them; collect every acknowledged rev.
	var (
		mu       sync.Mutex
		ackRevs  []string
		wg       sync.WaitGroup
		shutdown = make(chan struct{})
	)
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-shutdown:
					return
				default:
				}
				// Odd timestamps, distinct per worker/iteration, kept small so
				// re-certification windows stay cheap.
				batch := fmt.Sprintf("even(%d).\n", 3+2*(w*500+i))
				buf, _ := json.Marshal(factsRequest{Facts: batch})
				resp, err := http.Post(url+"/programs/"+reg.ID+"/facts", "application/json", bytes.NewReader(buf))
				if err != nil {
					return // listener closed mid-request
				}
				var fr factsResponse
				ok := resp.StatusCode == http.StatusOK && json.NewDecoder(resp.Body).Decode(&fr) == nil
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				if !ok {
					return // rejected: shutdown won the race
				}
				mu.Lock()
				ackRevs = append(ackRevs, fr.Rev)
				mu.Unlock()
			}
		}()
	}
	time.Sleep(150 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	close(shutdown)
	wg.Wait()

	// Recover: must succeed (a torn record would fail loudly), and the
	// chain must contain every acknowledged rev.
	rec := durableRegistry(t, dir, wal.FsyncOff, 0)
	if _, _, err := rec.RecoverFromWAL(false); err != nil {
		t.Fatalf("recovery after shutdown: %v", err)
	}
	seq, _, ok := rec.SeqRev(reg.ID)
	if !ok {
		t.Fatal("program lost across shutdown")
	}
	if seq < uint64(len(ackRevs)) {
		t.Fatalf("recovered %d batches < %d acknowledged", seq, len(ackRevs))
	}
	feed, err := rec.Feed(reg.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	onChain := map[string]bool{reg.ID: true}
	for _, r := range feed.Records {
		onChain[r.Rev] = true
	}
	for _, rev := range ackRevs {
		if !onChain[rev] {
			t.Fatalf("acknowledged rev %s missing from recovered chain (%d records)", rev, len(feed.Records))
		}
	}
	if len(ackRevs) == 0 {
		t.Log("no ingest was acknowledged before shutdown; invariant vacuous this run")
	}
}
