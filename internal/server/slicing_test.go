package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"tdd/internal/workload"
)

// distractorUnit is the E19 workload: a period-2 relevant chain plus
// three distractor cycles that blow the full period up to 210.
func distractorUnit() string {
	rules, facts := workload.Distractor([]int{3, 5, 7}, 4)
	return rules + facts
}

// TestSlicedServingMatchesFull drives the same query set through a
// slicing server and a plain one: every answer must agree, and the
// slicing server must label its asks with the "sliced" engine.
func TestSlicedServingMatchesFull(t *testing.T) {
	_, sliced := newTestServer(t, Config{Slicing: true})
	_, plain := newTestServer(t, Config{})
	unit := distractorUnit()
	sid := register(t, sliced.URL, unit)
	pid := register(t, plain.URL, unit)

	queries := []string{
		"q(1000000, c0)",     // even depth: yes
		"q(1000001, c0)",     // odd depth: no
		"exists T q(T, c0)",  // witnessed
		"exists T q(T, c1)",  // relevant but witness-free
		"exists T d0(T, j0)", // distractor-only goal
		"!q(3, c0)",          // negation
		"forall X !q(5, X)",  // constant quantifier (eligibility path)
	}
	for _, q := range queries {
		if got, want := askServed(t, sliced.URL, sid, q), askServed(t, plain.URL, pid, q); got != want {
			t.Errorf("ask %q: sliced server %v, plain server %v", q, got, want)
		}
	}

	// The slicing server reports the sliced engine on its ask responses.
	resp, body := postJSON(t, sliced.URL+"/programs/"+sid+"/ask", askRequest{Query: "q(1000000, c0)"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ask: status %d: %s", resp.StatusCode, body)
	}
	var ar askResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Engine != "sliced" {
		t.Errorf("engine = %q, want sliced", ar.Engine)
	}
}

// TestDebugGraph covers the introspection endpoint: the dependency
// graph for a registered program, optionally with a query's slice.
func TestDebugGraph(t *testing.T) {
	_, ts := newTestServer(t, Config{Slicing: true})
	id := register(t, ts.URL, distractorUnit())

	resp, body := getJSON(t, ts.URL+"/debug/graph?id="+id)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("graph: status %d: %s", resp.StatusCode, body)
	}
	var out debugGraphResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Slicing {
		t.Error("slicing flag not reported")
	}
	if len(out.Graph.Preds) == 0 || len(out.Graph.SCCs) == 0 {
		t.Fatalf("empty graph report: %s", body)
	}
	if !strings.Contains(out.Rendered, "dependency graph") {
		t.Errorf("rendered graph missing header:\n%s", out.Rendered)
	}
	if out.Slice != nil {
		t.Error("slice present without &q=")
	}

	resp, body = getJSON(t, fmt.Sprintf("%s/debug/graph?id=%s&q=%s", ts.URL, id, "q(4,+c0)"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("graph+slice: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Slice == nil {
		t.Fatalf("no slice for &q=: %s", body)
	}
	if !out.Slice.Proper || len(out.Slice.Preds) >= len(out.Graph.Preds) {
		t.Errorf("slice for q should be proper and smaller: %+v", out.Slice)
	}

	// Parameter validation: missing id is a 400, unknown id a 404.
	resp, _ = getJSON(t, ts.URL+"/debug/graph")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing id: status %d, want 400", resp.StatusCode)
	}
	resp, _ = getJSON(t, ts.URL+"/debug/graph?id=doesnotexist")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id: status %d, want 404", resp.StatusCode)
	}
}
