package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"tdd/internal/wal"
)

// ingest posts one fact batch and decodes the response.
func ingest(t *testing.T, base, id, facts string) factsResponse {
	t.Helper()
	resp, body := postJSON(t, base+"/programs/"+id+"/facts", factsRequest{Facts: facts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("facts: status %d: %s", resp.StatusCode, body)
	}
	var fr factsResponse
	if err := json.Unmarshal(body, &fr); err != nil {
		t.Fatal(err)
	}
	return fr
}

func TestIngestBasic(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := register(t, ts.URL, skiUnit)

	if askServed(t, ts.URL, id, "exists T plane(T, whistler)") {
		t.Fatal("whistler should not fly yet")
	}
	fr := ingest(t, ts.URL, id, "resort(whistler).\nplane(1, whistler).\n")
	if fr.ID != id {
		t.Fatalf("id changed: %s", fr.ID)
	}
	if fr.Rev == id {
		t.Fatal("rev did not advance")
	}
	if fr.NewFacts != 2 || !fr.Recertified {
		t.Fatalf("unexpected result: %+v", fr)
	}
	if !askServed(t, ts.URL, id, "exists T plane(T, whistler)") {
		t.Fatal("whistler missing after ingestion")
	}
	// The spec endpoint serves the re-preprocessed specification.
	resp, body := getJSON(t, ts.URL+"/programs/"+id+"/spec")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("spec: status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "whistler") {
		t.Fatal("served specification lacks the ingested constant")
	}
	// Duplicates are no-ops but still advance the revision chain.
	fr2 := ingest(t, ts.URL, id, "resort(whistler).\n")
	if fr2.NewFacts != 0 || fr2.Duplicates != 1 {
		t.Fatalf("duplicate batch: %+v", fr2)
	}
	if fr2.Rev == fr.Rev {
		t.Fatal("rev must advance with every batch")
	}
}

func TestIngestErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := register(t, ts.URL, skiUnit)

	// Unknown program.
	resp, _ := postJSON(t, ts.URL+"/programs/nope/facts", factsRequest{Facts: "resort(x)."})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: status %d", resp.StatusCode)
	}
	// Empty batch.
	resp, _ = postJSON(t, ts.URL+"/programs/"+id+"/facts", factsRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d", resp.StatusCode)
	}
	// Malformed fact source.
	resp, _ = postJSON(t, ts.URL+"/programs/"+id+"/facts", factsRequest{Facts: "resort(x"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("parse error: status %d", resp.StatusCode)
	}
	// Signature conflict: plane is temporal with one argument.
	resp, _ = postJSON(t, ts.URL+"/programs/"+id+"/facts", factsRequest{Facts: "plane(zermatt)."})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("signature conflict: status %d", resp.StatusCode)
	}
	// A failed ingestion publishes nothing.
	if askServed(t, ts.URL, id, "exists T plane(T, zermatt)") {
		t.Fatal("failed ingestion leaked facts")
	}
}

// TestIngestSurvivesEviction: after the LRU evicts an ingested program,
// the next lookup recompiles it from base + replayed batches and answers
// identically.
func TestIngestSurvivesEviction(t *testing.T) {
	// Shards: 1 so the single-entry LRU is one global cache (see
	// TestCacheEviction).
	s, ts := newTestServer(t, Config{CacheSize: 1, Shards: 1})
	id := register(t, ts.URL, skiUnit)
	ingest(t, ts.URL, id, "resort(whistler).\nplane(1, whistler).\n")

	// Displace the ski program from the one-slot cache.
	other := register(t, ts.URL, evenUnit)
	if !askServed(t, ts.URL, other, "even(2)") {
		t.Fatal("even(2)")
	}
	if s.Registry().CachedLen() != 1 {
		t.Fatalf("cache len %d, want 1", s.Registry().CachedLen())
	}
	// The recompiled entry must include the ingested stream.
	if !askServed(t, ts.URL, id, "exists T plane(T, whistler)") {
		t.Fatal("recompiled program lost the ingested facts")
	}
}

// TestIngestConcurrent hammers one program with concurrent ingestions and
// queries; run under -race via scripts/ci.sh. Every batch must land
// (writers are serialized per program) and queries must never error.
func TestIngestConcurrent(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := register(t, ts.URL, skiUnit)

	const writers, perWriter, readers = 4, 5, 4
	var wg sync.WaitGroup
	errs := make(chan error, writers*perWriter+readers*perWriter)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r := fmt.Sprintf("w%dr%d", w, i)
				resp, body := postJSON(t, ts.URL+"/programs/"+id+"/facts",
					factsRequest{Facts: fmt.Sprintf("resort(%s).\nplane(%d, %s).\n", r, (w+i)%10, r)})
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("writer %d: status %d: %s", w, resp.StatusCode, body)
					return
				}
			}
		}(w)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				resp, body := postJSON(t, ts.URL+"/programs/"+id+"/ask",
					askRequest{Query: "plane(0, hunter)"})
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("reader %d: status %d: %s", g, resp.StatusCode, body)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		return
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			r := fmt.Sprintf("w%dr%d", w, i)
			if !askServed(t, ts.URL, id, fmt.Sprintf("exists T plane(T, %s)", r)) {
				t.Fatalf("batch %s lost", r)
			}
		}
	}
}

// TestIngestMetrics: ingestion shows up in the global counters and the
// per-program engine section of /metrics.
func TestIngestMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := register(t, ts.URL, skiUnit)
	fr := ingest(t, ts.URL, id, "resort(whistler).\nplane(1, whistler).\n")

	resp, body := getJSON(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Asserts != 1 || snap.Ingested != 2 {
		t.Fatalf("asserts=%d ingested=%d, want 1 and 2", snap.Asserts, snap.Ingested)
	}
	ps, ok := snap.Programs[id]
	if !ok {
		t.Fatalf("program %s missing from metrics: %s", id, body)
	}
	if ps.Rev != fr.Rev {
		t.Fatalf("metrics rev %s, response rev %s", ps.Rev, fr.Rev)
	}
	if ps.Derived <= 0 || ps.Firings <= 0 {
		t.Fatalf("engine counters not wired: %+v", ps)
	}
	if ps.Period.P == 0 {
		t.Fatalf("period not reported: %+v", ps)
	}
}

// TestRegisterRaceDoesNotClobberIngestedState pins the publish-or-drop
// rule: a duplicate registration that finishes compiling after the first
// copy has published — and after clients have ingested batches — must
// not overwrite the cache with its stale base-only entry. publish is the
// exact critical section both racing Registers funnel through.
func TestRegisterRaceDoesNotClobberIngestedState(t *testing.T) {
	reg := NewRegistry(4, 8, 0, 0, newMetrics(routeNames))
	ent, _, err := reg.Register(evenUnit, "", "")
	if err != nil {
		t.Fatal(err)
	}
	id := ent.ID()
	if _, _, err := reg.Ingest(id, "even(100).\n"); err != nil {
		t.Fatal(err)
	}

	// The slow duplicate: it passed Register's early exists-check before
	// the first copy published, compiled from base sources only, and now
	// tries to publish while the program has moved on.
	stale := &programSource{id: id, unit: evenUnit, rev: id}
	sent, err := reg.compile(stale)
	if err != nil {
		t.Fatal(err)
	}
	if reg.publish(stale, sent) {
		t.Fatal("stale duplicate registration won the publish race")
	}

	// The served entry still carries the ingested batch.
	cur, err := reg.Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	if want := nextRev(id, "even(100).\n"); cur.Rev() != want {
		t.Fatalf("served rev %s, want %s — cache clobbered by stale registration", cur.Rev(), want)
	}
	got, _, err := cur.ask("even(100)", reg.metrics, nil)
	if err != nil || !got {
		t.Fatalf("ingested fact lost after duplicate registration: %v %v", got, err)
	}
	// And the registered source agrees, so the next Ingest chains off the
	// full history.
	if seq, rev, _ := reg.SeqRev(id); seq != 1 || rev != cur.Rev() {
		t.Fatalf("source at (%d, %s), want (1, %s)", seq, rev, cur.Rev())
	}
}

// TestApplyReplicatedRejectsDivergentRecordPrePublish: a leader record
// that does not continue the follower's local chain must be rejected
// before anything is ingested or published — a diverged model is never
// served, not even transiently.
func TestApplyReplicatedRejectsDivergentRecordPrePublish(t *testing.T) {
	reg := NewRegistry(4, 8, 0, 0, newMetrics(routeNames))
	ent, _, err := reg.Register(evenUnit, "", "")
	if err != nil {
		t.Fatal(err)
	}
	id := ent.ID()

	// Wrong prev (the chain does not continue local state).
	bad := wal.Record{Seq: 1, Prev: "bogus", Rev: wal.NextRev("bogus", "even(50).\n"), Batch: "even(50).\n"}
	if err := reg.ApplyReplicated(id, bad); err == nil || !strings.Contains(err.Error(), "divergence") {
		t.Fatalf("wrong-prev record: err = %v, want divergence", err)
	}
	// Wrong claimed rev with a correct prev.
	bad = wal.Record{Seq: 1, Prev: id, Rev: "wrong", Batch: "even(50).\n"}
	if err := reg.ApplyReplicated(id, bad); err == nil || !strings.Contains(err.Error(), "divergence") {
		t.Fatalf("wrong-rev record: err = %v, want divergence", err)
	}
	// Nothing was published by either rejection.
	if seq, rev, _ := reg.SeqRev(id); seq != 0 || rev != id {
		t.Fatalf("divergent record mutated local state: (%d, %s), want (0, %s)", seq, rev, id)
	}
	if cur, err := reg.Lookup(id); err != nil || cur.Rev() != id {
		t.Fatalf("served entry moved: rev %s, want %s (err %v)", cur.Rev(), id, err)
	}

	// A record that does continue the chain applies normally.
	good := wal.Record{Seq: 1, Prev: id, Rev: nextRev(id, "even(50).\n"), Batch: "even(50).\n"}
	if err := reg.ApplyReplicated(id, good); err != nil {
		t.Fatal(err)
	}
	if seq, rev, _ := reg.SeqRev(id); seq != 1 || rev != good.Rev {
		t.Fatalf("good record left state at (%d, %s), want (1, %s)", seq, rev, good.Rev)
	}
}
