package core

import (
	"strings"
	"testing"

	"tdd/internal/ast"
	"tdd/internal/parser"
	"tdd/internal/period"
)

func mustBT(t *testing.T, src string, opts ...Option) *BT {
	t.Helper()
	prog, db, err := parser.ParseUnit(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	b, err := New(prog, db, opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return b
}

func (b *BT) mustQuery(t *testing.T, src string) ast.Query {
	t.Helper()
	q, err := parser.ParseQuery(src, b.Preds())
	if err != nil {
		t.Fatalf("ParseQuery(%q): %v", src, err)
	}
	return q
}

const skiSrc = `
plane(T+7, X) :- plane(T, X), resort(X), offseason(T).
plane(T+2, X) :- plane(T, X), resort(X), winter(T).
plane(T+1, X) :- plane(T, X), resort(X), holiday(T).
offseason(T+10) :- offseason(T).
winter(T+10) :- winter(T).
holiday(T+10) :- holiday(T).
winter(0). winter(1). winter(2). winter(3).
offseason(4). offseason(5). offseason(6). offseason(7). offseason(8). offseason(9).
holiday(1).
resort(hunter).
plane(0, hunter).
`

func tfact(pred string, time int, args ...string) ast.Fact {
	return ast.Fact{Pred: pred, Temporal: true, Time: time, Args: args}
}

func TestAskFactShallowAndDeep(t *testing.T) {
	b := mustBT(t, skiSrc)
	// Deep query forces the specification path.
	got, err := b.AskFact(tfact("plane", 1000002, "hunter"))
	if err != nil {
		t.Fatal(err)
	}
	// 1000002 mod 10 = 2, a winter day reachable from the cycle.
	want, err := b.AskFact(tfact("plane", 22, "hunter"))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("deep/shallow disagreement: plane(1000002)=%v plane(22)=%v", got, want)
	}
	// Non-temporal query.
	got, err = b.AskFact(ast.Fact{Pred: "resort", Args: []string{"hunter"}})
	if err != nil || !got {
		t.Errorf("resort(hunter) = %v, %v", got, err)
	}
}

func TestAskClosedQueries(t *testing.T) {
	b := mustBT(t, skiSrc)
	cases := map[string]bool{
		"plane(0, hunter)":                             true,
		"plane(3, hunter)":                             false,
		"exists T (plane(T, hunter) & holiday(T))":     true,
		"forall X (!resort(X) | exists T plane(T, X))": true,
	}
	for src, want := range cases {
		got, err := b.Ask(b.mustQuery(t, src))
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if got != want {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestAnswers(t *testing.T) {
	b := mustBT(t, skiSrc)
	ans, err := b.Answers(b.mustQuery(t, "plane(T, hunter) & winter(T)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) == 0 {
		t.Fatal("no answers")
	}
	for _, a := range ans {
		if a.Temporal["T"]%10 > 3 {
			t.Errorf("answer %v is not a winter day", a)
		}
	}
}

func TestPeriodAndWork(t *testing.T) {
	b := mustBT(t, skiSrc)
	p, err := b.Period()
	if err != nil {
		t.Fatal(err)
	}
	if p.P != 10 {
		t.Errorf("period = %v, want p=10", p)
	}
	w, err := b.Work()
	if err != nil {
		t.Fatal(err)
	}
	if w.Window < p.Base+p.P || w.Derived == 0 || w.Facts == 0 {
		t.Errorf("work = %+v", w)
	}
	if w.String() == "" {
		t.Error("empty work summary")
	}
}

func TestMaxWindowBudget(t *testing.T) {
	// lcm(2,3,5,7) = 210 > 64: the budgeted processor reports failure
	// instead of running away.
	src := `
a(T+2) :- a(T).
b(T+3) :- b(T).
c(T+5) :- c(T).
d(T+7) :- d(T).
a(0). b(0). c(0). d(0).
`
	b := mustBT(t, src, WithMaxWindow(64))
	if _, err := b.Period(); err == nil {
		t.Error("expected window-budget error")
	}
	b2 := mustBT(t, src)
	p, err := b2.Period()
	if err != nil {
		t.Fatal(err)
	}
	if p.P != 210 {
		t.Errorf("period = %v, want p=210", p)
	}
}

func TestSpecificationCached(t *testing.T) {
	b := mustBT(t, "even(T+2) :- even(T).\neven(0).")
	s1, err := b.Specification()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := b.Specification()
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("specification not cached")
	}
	if s1.Period != (period.Period{Base: 1, P: 2}) {
		t.Errorf("period = %v", s1.Period)
	}
}

func TestEvenPaperQueries(t *testing.T) {
	// The worked example of Section 3.3.
	b := mustBT(t, "even(T+2) :- even(T).\neven(0).")
	for _, c := range []struct {
		time int
		want bool
	}{{4, true}, {3, false}, {0, true}, {1, false}, {1 << 19, true}} {
		got, err := b.AskFact(tfact("even", c.time))
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("even(%d) = %v, want %v", c.time, got, c.want)
		}
	}
}

func TestExplainThroughBT(t *testing.T) {
	b := mustBT(t, skiSrc, WithProvenance())
	out, err := b.Explain(tfact("plane", 2, "hunter"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "[database fact]") || !strings.Contains(out, "[by plane(T+2, X)") {
		t.Errorf("tree:\n%s", out)
	}
	// Deep fact goes through the rewrite note.
	deep, err := b.Explain(tfact("plane", 1000002, "hunter"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(deep, "rewrites to time") {
		t.Errorf("deep tree:\n%s", deep)
	}
	if b.Evaluator() == nil {
		t.Error("Evaluator accessor nil")
	}
}
