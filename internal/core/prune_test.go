package core

import (
	"testing"

	"tdd/internal/parser"
)

// Two independent subsystems plus a shared EDB relation.
const twoSystems = `
a(T+2, X) :- a(T, X), tag(X).
b(T+3, X) :- b(T, X), tag(X).
a(0, k). b(0, k). tag(k).
`

func TestPruneForQuery(t *testing.T) {
	prog, db, err := parser.ParseUnit(twoSystems)
	if err != nil {
		t.Fatal(err)
	}
	q, err := parser.ParseQuery("a(100, k)", prog.Preds)
	if err != nil {
		t.Fatal(err)
	}
	pruned := PruneForQuery(prog, q)
	if len(pruned.Rules) != 1 || pruned.Rules[0].Head.Pred != "a" {
		t.Fatalf("pruned rules = %v", pruned.Rules)
	}
	if _, ok := pruned.Preds["b"]; ok {
		t.Error("b not pruned")
	}
	if _, ok := pruned.Preds["tag"]; !ok {
		t.Error("tag (a dependency of a) pruned")
	}
	prunedDB := PruneDatabase(pruned, q, db)
	for _, f := range prunedDB.Facts {
		if f.Pred == "b" {
			t.Errorf("b fact survived pruning: %v", f)
		}
	}
	if len(prunedDB.Facts) != 2 {
		t.Errorf("pruned db = %v", prunedDB.Facts)
	}
}

func TestPruneShrinksPeriod(t *testing.T) {
	prog, db, err := parser.ParseUnit(twoSystems)
	if err != nil {
		t.Fatal(err)
	}
	full, err := New(prog.Clone(), db)
	if err != nil {
		t.Fatal(err)
	}
	pFull, err := full.Period()
	if err != nil {
		t.Fatal(err)
	}
	if pFull.P != 6 {
		t.Fatalf("full period = %v, want lcm 6", pFull)
	}

	q, err := parser.ParseQuery("a(100, k)", prog.Preds)
	if err != nil {
		t.Fatal(err)
	}
	pp := PruneForQuery(prog, q)
	pdb := PruneDatabase(pp, q, db)
	slim, err := New(pp, pdb)
	if err != nil {
		t.Fatal(err)
	}
	pSlim, err := slim.Period()
	if err != nil {
		t.Fatal(err)
	}
	if pSlim.P != 2 {
		t.Fatalf("pruned period = %v, want 2", pSlim)
	}
	// Same answers on the query's predicates.
	ansFull, err := full.Ask(q)
	if err != nil {
		t.Fatal(err)
	}
	ansSlim, err := slim.Ask(q)
	if err != nil {
		t.Fatal(err)
	}
	if ansFull != ansSlim {
		t.Errorf("pruning changed the answer: full=%v pruned=%v", ansFull, ansSlim)
	}
}

func TestPruneAgreementAcrossDepths(t *testing.T) {
	prog, db, err := parser.ParseUnit(twoSystems)
	if err != nil {
		t.Fatal(err)
	}
	q, err := parser.ParseQuery("a(0, k)", prog.Preds)
	if err != nil {
		t.Fatal(err)
	}
	pp := PruneForQuery(prog, q)
	pdb := PruneDatabase(pp, q, db)
	full, err := New(prog.Clone(), db)
	if err != nil {
		t.Fatal(err)
	}
	slim, err := New(pp, pdb)
	if err != nil {
		t.Fatal(err)
	}
	for _, depth := range []int{0, 1, 2, 3, 50, 51, 1000, 1001} {
		qd, err := parser.ParseQuery("a("+itoa(depth)+", k)", prog.Preds)
		if err != nil {
			t.Fatal(err)
		}
		a1, err := full.Ask(qd)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := slim.Ask(qd)
		if err != nil {
			t.Fatal(err)
		}
		if a1 != a2 {
			t.Errorf("depth %d: full=%v pruned=%v", depth, a1, a2)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
