// Package core implements the paper's primary contribution: algorithm BT
// (Figure 1) — bottom-up, polynomial-time query processing for temporal
// deductive databases with polynomially bounded periods.
//
// BT as printed iterates L' := T_{Z∧D}(L) over a window 0..m, where
// m = max(c, h) + range(Z ∧ D), until the window and the non-temporal part
// stabilize, then answers L ⊨ Q. The oracle bound range(Z ∧ D) (the number
// of distinct states of the least model) is not known in advance, so this
// implementation grows the window adaptively until the period of the least
// model is certified (period.Detect); the certified period plays exactly
// the role of range(Z ∧ D): beyond base+period every state is a repetition.
// For a polynomially periodic rule set the certified window — and hence the
// total work — is polynomial in the database size, which is Theorem 4.1;
// the relational specification then answers queries of arbitrary temporal
// depth h in O(1) rewrites, removing BT's dependence on h altogether.
package core

import (
	"fmt"
	"sync"

	"tdd/internal/ast"
	"tdd/internal/classify"
	"tdd/internal/engine"
	"tdd/internal/inc"
	"tdd/internal/lint"
	"tdd/internal/obs"
	"tdd/internal/period"
	"tdd/internal/query"
	"tdd/internal/spec"
)

// DefaultMaxWindow bounds the adaptive window growth. Theorem 3.1 only
// guarantees a period at most exponential in the database; the budget turns
// pathological (non-polynomially-periodic) inputs into errors instead of
// runaway computation.
const DefaultMaxWindow = 1 << 20

// BT is a query processor for one temporal deductive database Z ∧ D.
//
// A BT is safe for concurrent use by multiple goroutines. The only
// mutation after construction is the lazy, adaptive-window computation of
// the relational specification (period certification grows the evaluator's
// window and fact store); mu serializes it. Once the specification is
// certified the evaluator is never mutated again, so every query path is a
// read-only traversal of immutable structure — queries on a warm BT
// contend only on one uncontended mutex acquisition.
type BT struct {
	eval      *engine.Evaluator
	maxWindow int
	preds     map[string]ast.PredInfo
	// tr, when non-nil, receives the pipeline's phase spans (classify,
	// certify-period with nested fixpoint sweeps, spec-construct). All
	// spans are recorded under mu, so one trace per BT is safe.
	tr *obs.Trace

	// mu guards spec and every mutation of eval (window growth, store
	// inserts, stats, provenance) performed while computing it.
	mu   sync.Mutex
	spec *spec.Spec // guarded-by: mu (computed lazily)
}

// Option configures a BT processor.
type Option func(*BT)

// WithMaxWindow overrides the window budget used when certifying the
// period of the least model.
func WithMaxWindow(m int) Option {
	return func(b *BT) { b.maxWindow = m }
}

// WithParallelism evaluates fixpoint sweeps and delta propagation on up
// to n worker goroutines (engine.Evaluator.SetParallelism). n <= 0 — the
// default — keeps the sequential schedule. The parallel schedule is
// deterministic: model, period, specification, and work counters are
// independent of worker count and goroutine scheduling. Clones made by
// Assert inherit the setting.
func WithParallelism(n int) Option {
	return func(b *BT) { b.eval.SetParallelism(n) }
}

// WithNestedLoopJoin evaluates rule bodies with the historical
// source-order nested-loop strategy instead of the planned, hash-indexed
// joins (engine.JoinNestedLoop). Answers, period, and specification are
// identical in both modes; the nested-loop engine exists as the
// differential baseline for the indexed one and for benchmarking the
// index + planner ablation. Clones made by Assert inherit the setting.
func WithNestedLoopJoin() Option {
	return func(b *BT) { b.eval.SetJoinMode(engine.JoinNestedLoop) }
}

// WithTrace attaches a trace: the specification pipeline records its
// phases (classify, certify-period, fixpoint, spec-construct) and
// incremental ingestion its delta spans into it. The classification
// phase only runs when a trace is attached, so disabled tracing adds no
// work at all.
func WithTrace(tr *obs.Trace) Option {
	return func(b *BT) {
		b.tr = tr
		b.eval.SetTrace(tr)
	}
}

// WithProfile enables the operator-level join profiler
// (engine.Profile): per (rule, body-literal) scan/match counters
// bucketed by timestamp stratum and per-rule join wall time, rendered
// by ProfileSnapshot as an EXPLAIN ANALYZE tree. Clones made by Assert
// share the profile, so it accumulates over the database's lifetime.
func WithProfile() Option {
	return func(b *BT) { b.eval.EnableProfile() }
}

// New validates and compiles the TDD. The program must be
// range-restricted, semi-normal, and forward.
func New(prog *ast.Program, db *ast.Database, opts ...Option) (*BT, error) {
	e, err := engine.New(prog, db)
	if err != nil {
		return nil, err
	}
	b := &BT{eval: e, maxWindow: DefaultMaxWindow, preds: make(map[string]ast.PredInfo)}
	for k, v := range prog.Preds {
		b.preds[k] = v
	}
	for k, v := range db.Preds {
		b.preds[k] = v
	}
	for _, o := range opts {
		o(b)
	}
	return b, nil
}

// Preds returns the predicate signatures of the TDD (program and database
// combined); parsers use them to type queries.
func (b *BT) Preds() map[string]ast.PredInfo { return b.preds }

// Evaluator exposes the underlying bottom-up engine.
func (b *BT) Evaluator() *engine.Evaluator { return b.eval }

// Specification computes (and caches) the relational specification
// S = (T, B, W) of the least model. Concurrent callers are serialized;
// exactly one performs the computation. Failures (period not certifiable
// within the window budget) are not cached, so a later call with more
// luck — there is none; the computation is deterministic — simply fails
// again without corrupting state.
func (b *BT) Specification() (*spec.Spec, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.specification()
}

// specification is Specification with mu held.
//
//tddlint:holds mu
func (b *BT) specification() (*spec.Spec, error) {
	if b.spec != nil {
		return b.spec, nil
	}
	// The classification phase exists for the trace (it annotates the
	// phase tree with the tractable-class verdict driving the expected
	// cost of what follows); without a trace it would be pure overhead,
	// so it is skipped entirely.
	if b.tr != nil {
		sp := b.tr.Begin("classify")
		rep := classify.Analyze(b.eval.Program().Clone(), classify.AnalyzeOptions{})
		sp.Add("valid", b2i(rep.Valid))
		sp.Add("inflationary", b2i(rep.Inflationary))
		sp.Add("multi_separable", b2i(rep.MultiSeparable))
		sp.Add("tractable", b2i(rep.Tractable()))
		sp.End()
	}
	s, err := spec.Compute(b.eval, b.maxWindow)
	if err != nil {
		return nil, err
	}
	b.spec = s
	return s, nil
}

func b2i(v bool) int64 {
	if v {
		return 1
	}
	return 0
}

// Lint runs the Tier-A static analyzer over the processor's program and
// database. It runs under mu: the never-fires probe joins rule bodies
// against the certified model and may grow the evaluated window, which
// must not race concurrent queries. The certified specification is reused
// when available (or certifiable), so on a warm BT linting adds no
// re-evaluation; when certification fails the semantic probe is skipped
// and the structural passes still run. source, when non-empty, is the raw
// unit text inline "tddlint:ignore" suppressions are read from.
func (b *BT) Lint(source string) lint.Result {
	b.mu.Lock()
	defer b.mu.Unlock()
	opts := lint.Options{Source: source, MaxWindow: b.maxWindow}
	if s, err := b.specification(); err == nil {
		opts.Spec = s
	}
	return lint.Run(b.eval.Program(), b.eval.Database(), opts)
}

// Period returns the certified minimal period of the least model.
func (b *BT) Period() (period.Period, error) {
	s, err := b.Specification()
	if err != nil {
		return period.Period{}, err
	}
	return s.Period, nil
}

// AskFact answers a yes-no ground atomic query. Queries whose temporal
// depth lies within the already-evaluated window are answered directly;
// deeper queries are answered through the relational specification (one
// rewrite plus a lookup), so the temporal depth h contributes O(1) work —
// the heart of the tractability argument.
func (b *BT) AskFact(f ast.Fact) (bool, error) {
	// The window only grows while the specification is being computed, so
	// certifying it first (under mu) freezes the evaluator; the reads below
	// then race with nothing. Before the first certification the window is
	// -1, so no query was ever answerable from the direct path anyway.
	b.mu.Lock()
	s, err := b.specification()
	w := b.eval.Window()
	b.mu.Unlock()
	if err != nil {
		return false, err
	}
	if f.Temporal && f.Time <= w {
		return b.eval.Holds(f), nil
	}
	// Deeper temporal queries are answered through the specification (one
	// rewrite plus a lookup); non-temporal consequences accumulate over the
	// whole model, and only the specification window is guaranteed complete.
	return s.HoldsFact(f), nil
}

// Ask answers a closed temporal first-order query over the relational
// specification (sound for every temporal query by Proposition 3.1;
// negation is evaluated under the Closed World Assumption).
func (b *BT) Ask(q ast.Query) (bool, error) {
	s, err := b.Specification()
	if err != nil {
		return false, err
	}
	return query.Eval(s, q)
}

// Answers enumerates the answer substitutions of an open query. Temporal
// bindings are representative terms; together with the specification's
// rewrite rule each represents an infinite family of concrete answers
// (Section 3.3).
func (b *BT) Answers(q ast.Query) ([]query.Answer, error) {
	s, err := b.Specification()
	if err != nil {
		return nil, err
	}
	return query.Answers(s, q)
}

// Assert returns a new BT extended with the fact batch; the receiver is
// unchanged and remains fully usable — the copy-on-write discipline that
// lets any number of readers keep querying the old processor while a
// writer prepares its successor. The new processor's evaluator is a
// copy-on-write clone (shared immutable tuples, copied indexes).
//
// If the receiver has already certified its specification, the batch is
// propagated semi-naively through the evaluated window and the period is
// re-certified incrementally (inc.Apply); the new BT starts out warm.
// Otherwise the facts are merely recorded and the first query pays the
// usual cold certification.
func (b *BT) Assert(facts []ast.Fact) (*BT, inc.Result, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e2 := b.eval.Clone()
	nb := &BT{eval: e2, maxWindow: b.maxWindow, preds: make(map[string]ast.PredInfo, len(b.preds)), tr: b.tr}
	for k, v := range b.preds {
		nb.preds[k] = v
	}
	var res inc.Result
	if b.spec == nil {
		for _, f := range facts {
			ok, err := e2.InsertBase(f)
			if err != nil {
				return nil, res, err
			}
			if ok {
				res.NewBase++
			} else {
				res.Duplicates++
			}
		}
	} else {
		s, r, err := inc.Apply(e2, b.spec, b.maxWindow, facts)
		res = r
		if err != nil {
			return nil, res, err
		}
		nb.spec = s
	}
	// InsertBase admits new predicates; refresh the signature map queries
	// are typed against.
	for k, v := range e2.Database().Preds {
		nb.preds[k] = v
	}
	return nb, res, nil
}

// EngineStats returns the engine's work counters (derived facts, rule
// firings, window sweeps) accumulated so far.
func (b *BT) EngineStats() engine.Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.eval.Stats()
}

// ProfileSnapshot renders the accumulated join profile as an EXPLAIN
// ANALYZE report; nil unless the BT was built WithProfile.
func (b *BT) ProfileSnapshot() *engine.ProfileJSON {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.eval.ProfileSnapshot()
}

// WorkSummary describes the polynomial-cost certificate of a processed
// database: the window BT needed, the period it certified, and the fact
// counts. Used by the experiment harness.
type WorkSummary struct {
	Window  int
	Period  period.Period
	Derived int
	Firings int
	Facts   int
}

func (w WorkSummary) String() string {
	return fmt.Sprintf("window=%d period=%v derived=%d firings=%d facts=%d",
		w.Window, w.Period, w.Derived, w.Firings, w.Facts)
}

// Work computes the specification (if needed) and reports the work done.
func (b *BT) Work() (WorkSummary, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	s, err := b.specification()
	if err != nil {
		return WorkSummary{}, err
	}
	st := b.eval.Stats()
	return WorkSummary{
		Window:  b.eval.Window(),
		Period:  s.Period,
		Derived: st.Derived,
		Firings: st.Firings,
		Facts:   b.eval.Store().Len(),
	}, nil
}

// Explain renders the derivation tree of a ground atomic fact. Provenance
// must have been enabled at construction (core.WithProvenance). Queries
// beyond the evaluated window are first rewritten to their representative
// time through the specification; the rendered tree then explains the
// representative instance, which by periodicity is the same up to a time
// shift.
func (b *BT) Explain(f ast.Fact, maxDepth int) (string, error) {
	// Certify the specification first so the evaluator (including the
	// provenance map) is frozen before it is read; see AskFact.
	b.mu.Lock()
	s, serr := b.specification()
	w := b.eval.Window()
	b.mu.Unlock()
	if serr != nil {
		return "", serr
	}
	prefix := ""
	if f.Temporal && f.Time > w {
		rewritten := s.Rewrite(f.Time)
		if rewritten != f.Time {
			prefix = fmt.Sprintf("%s rewrites to time %d (period %v):\n", f, rewritten, s.Period)
			f.Time = rewritten
		}
	}
	out, err := b.eval.Explain(f, maxDepth)
	if err != nil {
		return "", err
	}
	return prefix + out, nil
}

// WithProvenance enables derivation recording so Explain works. It costs
// one bookkeeping entry per derived fact.
func WithProvenance() Option {
	return func(b *BT) {
		// New has already constructed the evaluator; recording must start
		// before the first evaluation, which holds because options run in
		// New before any query.
		if err := b.eval.EnableProvenance(); err != nil {
			panic("core: " + err.Error())
		}
	}
}
