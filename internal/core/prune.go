package core

import (
	"tdd/internal/ast"
	"tdd/internal/classify"
)

// PruneForQuery returns the sub-program of prog that can contribute to the
// query: the rules whose head predicate the query's predicates transitively
// depend on. Section 8 of the paper points at Datalog rule-rewriting
// optimizations (magic sets, [15]) as future work; dependency slicing is
// the zeroth such optimization, and on TDDs it can do more than save
// constant factors — dropping an irrelevant subsystem can shrink the least
// model's certified period from the lcm of all subsystem periods to the
// one the query actually touches (experiment E9).
//
// Soundness: a bottom-up derivation of a fact over a relevant predicate
// mentions only predicates reachable from it in the dependency graph, so
// the least models of prog ∧ D and PruneForQuery(prog, q) ∧ D agree on
// every predicate the query can see.
func PruneForQuery(prog *ast.Program, q ast.Query) *ast.Program {
	relevant := make(map[string]bool)
	var frontier []string
	for _, a := range ast.QueryAtoms(q) {
		if !relevant[a.Pred] {
			relevant[a.Pred] = true
			frontier = append(frontier, a.Pred)
		}
	}
	g := classify.BuildDepGraph(prog)
	for len(frontier) > 0 {
		p := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, dep := range g.Succ[p] {
			if !relevant[dep] {
				relevant[dep] = true
				frontier = append(frontier, dep)
			}
		}
	}
	var rules []ast.Rule
	for _, r := range prog.Rules {
		if relevant[r.Head.Pred] {
			rules = append(rules, r.Clone())
		}
	}
	// The rules are a subset of a consistent program, so this cannot fail.
	pruned, err := ast.NewProgram(rules)
	if err != nil {
		panic("core: pruned program inconsistent: " + err.Error())
	}
	return pruned
}

// PruneDatabase drops database facts over predicates that no rule of the
// (already pruned) program and no query atom can see. It complements
// PruneForQuery when databases carry unrelated relations.
func PruneDatabase(prog *ast.Program, q ast.Query, db *ast.Database) *ast.Database {
	relevant := make(map[string]bool, len(prog.Preds))
	for name := range prog.Preds {
		relevant[name] = true
	}
	for _, a := range ast.QueryAtoms(q) {
		relevant[a.Pred] = true
	}
	var facts []ast.Fact
	for _, f := range db.Facts {
		if relevant[f.Pred] {
			facts = append(facts, f)
		}
	}
	pruned, err := ast.NewDatabase(facts)
	if err != nil {
		panic("core: pruned database inconsistent: " + err.Error())
	}
	return pruned
}
