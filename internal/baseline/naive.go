// Package baseline implements the unoptimized comparison points of the
// experiment harness:
//
//   - NaiveTP — algorithm BT exactly as printed in Figure 1 of the paper:
//     repeat L' := T_{Z∧D}(L), re-deriving every fact from scratch each
//     iteration, until the window segment and the non-temporal part
//     stabilize. The production engine (internal/engine) replaces this
//     with a time-stratified sweep; experiment E8 measures the gap.
//
//   - Direct window evaluation of deep ground queries (answering P(h, x̄)
//     by materializing the model out to h) lives in query.Window and is
//     exercised against specification-based answering in experiment E7.
package baseline

import (
	"tdd/internal/ast"
	"tdd/internal/engine"
)

// Stats reports the work done by NaiveTP.
type Stats struct {
	Iterations int // applications of T_P until fixpoint
	Firings    int // rule-body instantiations across all iterations
	Derived    int // facts beyond the database
}

// NaiveTP computes the least model of prog ∧ db restricted to times 0..m
// by naive T_P iteration and returns the resulting store. The program must
// satisfy the same validity conditions as engine.New.
func NaiveTP(prog *ast.Program, db *ast.Database, m int) (*engine.Store, Stats, error) {
	if err := ast.ValidateProgram(prog); err != nil {
		return nil, Stats{}, err
	}
	if err := db.CheckAgainst(prog); err != nil {
		return nil, Stats{}, err
	}
	type crule struct {
		head         ast.Atom
		body         []ast.Atom
		headDepth    int
		maxBodyDepth int
		hasTimeVar   bool
	}
	var rules []crule
	for _, r := range prog.Rules {
		// Original depths — see the corresponding note in engine.New: the
		// head depth is also the rule's enabling time.
		s := r.Clone()
		c := crule{head: s.Head, body: s.Body, headDepth: -1, maxBodyDepth: 0}
		if s.Head.Time != nil {
			c.headDepth = s.Head.Time.Depth
		}
		for _, a := range s.Body {
			if a.Time != nil && !a.Time.Ground() {
				c.hasTimeVar = true
				if a.Time.Depth > c.maxBodyDepth {
					c.maxBodyDepth = a.Time.Depth
				}
			}
		}
		if s.Head.Time != nil && !s.Head.Time.Ground() {
			c.hasTimeVar = true
		}
		rules = append(rules, c)
	}

	cur := engine.NewStore()
	for _, f := range db.Facts {
		cur.Insert(f)
	}
	var stats Stats
	for {
		stats.Iterations++
		// L' := T_{Z∧D}(L): read from the previous iterate, derive into a
		// fresh store seeded with D. Derivations within one iteration do
		// not see each other — that is what makes this the naive baseline.
		next := engine.NewStore()
		for _, f := range db.Facts {
			next.Insert(f)
		}
		for _, r := range rules {
			tmax := 0
			if r.hasTimeVar {
				tmax = m - r.maxBodyDepth
				if r.headDepth > r.maxBodyDepth {
					tmax = m - r.headDepth
				}
			}
			for T := 0; T <= tmax; T++ {
				fire(cur, next, r.head, r.body, T, &stats)
			}
		}
		// T_P is monotone and the iterates increase from D, so equal
		// cardinality means the fixpoint is reached.
		if next.Len() == cur.Len() {
			stats.Derived = cur.Len() - len(db.Facts)
			return cur, stats, nil
		}
		cur = next
	}
}

// fire joins the body left to right against src under the binding of the
// temporal variable to T and inserts derivable heads into dst.
// Deliberately unindexed beyond what the store provides: this is the naive
// baseline.
func fire(src, dst *engine.Store, head ast.Atom, body []ast.Atom, T int, stats *Stats) {
	bindings := make(map[string]string, 8)
	var rec func(i int)
	rec = func(i int) {
		if i == len(body) {
			stats.Firings++
			dst.Insert(instantiate(head, T, bindings))
			return
		}
		a := body[i]
		var candidates []ast.Fact
		if a.Time != nil {
			candidates = src.Snapshot(T + a.Time.Depth)
		} else {
			candidates = src.NonTemporalFacts()
		}
		for _, f := range candidates {
			if f.Pred != a.Pred || len(f.Args) != len(a.Args) {
				continue
			}
			var bound []string
			ok := true
			for j, s := range a.Args {
				if !s.IsVar {
					if s.Name != f.Args[j] {
						ok = false
						break
					}
					continue
				}
				if v, have := bindings[s.Name]; have {
					if v != f.Args[j] {
						ok = false
						break
					}
					continue
				}
				bindings[s.Name] = f.Args[j]
				bound = append(bound, s.Name)
			}
			if ok {
				rec(i + 1)
			}
			for _, name := range bound {
				delete(bindings, name)
			}
		}
	}
	rec(0)
}

func instantiate(head ast.Atom, T int, bindings map[string]string) ast.Fact {
	f := ast.Fact{Pred: head.Pred}
	if head.Time != nil {
		f.Temporal = true
		f.Time = T + head.Time.Depth
	}
	f.Args = make([]string, len(head.Args))
	for i, s := range head.Args {
		if s.IsVar {
			f.Args[i] = bindings[s.Name]
			continue
		}
		f.Args[i] = s.Name
	}
	return f
}
