package baseline

import (
	"testing"

	"tdd/internal/ast"
	"tdd/internal/engine"
	"tdd/internal/parser"
)

// sources used for differential testing against the production engine.
var diffSources = []string{
	"even(T+2) :- even(T).\neven(0).",
	`
plane(T+7, X) :- plane(T, X), resort(X), offseason(T).
plane(T+2, X) :- plane(T, X), resort(X), winter(T).
offseason(T+9) :- offseason(T).
winter(T+9) :- winter(T).
winter(0). winter(1). winter(2).
offseason(3). offseason(4). offseason(5). offseason(6). offseason(7). offseason(8).
resort(hunter).
plane(0, hunter).
`,
	`
path(K, X, X) :- node(X), null(K).
path(K+1, X, Z) :- edge(X, Y), path(K, Y, Z).
path(K+1, X, Y) :- path(K, X, Y).
null(0).
node(a). node(b). node(c).
edge(a, b). edge(b, c). edge(c, a).
`,
	`
p(T+1, X) :- p(T, X).
seen(X) :- p(T, X).
q(T+1, X) :- q(T, X), seen(X).
p(3, a).
q(0, a).
`,
}

func TestNaiveTPMatchesEngine(t *testing.T) {
	const m = 25
	for _, src := range diffSources {
		prog, db, err := parser.ParseUnit(src)
		if err != nil {
			t.Fatal(err)
		}
		naive, _, err := NaiveTP(prog, db, m)
		if err != nil {
			t.Fatal(err)
		}
		e, err := engine.New(prog, db)
		if err != nil {
			t.Fatal(err)
		}
		e.EnsureWindow(m)
		fast := e.Store()
		for tm := 0; tm <= m; tm++ {
			if naive.StateKey(tm) != fast.StateKey(tm) {
				t.Errorf("source %.30q...: states differ at t=%d:\nnaive: %v\nfast:  %v",
					src, tm, naive.State(tm), fast.State(tm))
				break
			}
		}
		nNT, fNT := naive.NonTemporalFacts(), fast.NonTemporalFacts()
		if len(nNT) != len(fNT) {
			t.Errorf("source %.30q...: non-temporal parts differ: %v vs %v", src, nNT, fNT)
		}
	}
}

func TestNaiveTPStats(t *testing.T) {
	prog, db, err := parser.ParseUnit("even(T+2) :- even(T).\neven(0).")
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := NaiveTP(prog, db, 10)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Derived != 5 {
		t.Errorf("Derived = %d, want 5", stats.Derived)
	}
	// Naive iteration re-derives: far more firings than derivations.
	if stats.Firings <= stats.Derived {
		t.Errorf("Firings = %d, expected rederivation overhead above %d", stats.Firings, stats.Derived)
	}
	if stats.Iterations < 6 {
		t.Errorf("Iterations = %d, expected at least 6 (5 derivation rounds + fixpoint check)", stats.Iterations)
	}
}

func TestNaiveTPValidation(t *testing.T) {
	prog, db, err := parser.ParseUnit("p(T, X) :- q(T+1, X).\nq(0, a).")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := NaiveTP(prog, db, 5); err == nil {
		t.Error("non-forward program accepted")
	}
}

func TestNaiveTPGroundFactsBeyondWindow(t *testing.T) {
	prog, db, err := parser.ParseUnit("p(T+1) :- p(T).\np(0).\nq(40).")
	if err != nil {
		t.Fatal(err)
	}
	store, _, err := NaiveTP(prog, db, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !store.Has(ast.Fact{Pred: "q", Temporal: true, Time: 40}) {
		t.Error("database fact beyond the window lost")
	}
	if !store.Has(ast.Fact{Pred: "p", Temporal: true, Time: 10}) {
		t.Error("p(10) missing")
	}
	if store.Has(ast.Fact{Pred: "p", Temporal: true, Time: 11}) {
		t.Error("p(11) derived beyond the window")
	}
}
