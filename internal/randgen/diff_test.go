package randgen

// Property-based differential tests: many random TDDs, three independent
// pipelines that must agree.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"tdd"
	"tdd/internal/ast"
	"tdd/internal/baseline"
	"tdd/internal/engine"
	"tdd/internal/parser"
	"tdd/internal/period"
	"tdd/internal/spec"
)

const trials = 60

// statsFingerprint renders an engine.Stats snapshot canonically: every
// counter, map keys sorted, Index cells dereferenced (a plain %+v would
// print the cell pointers). Two runs with bit-identical counters — the
// determinism contract of the parallel schedule — produce equal strings.
func statsFingerprint(s engine.Stats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "derived=%d firings=%d sweeps=%d rules=%+v sweepSizes=%v storeGrowth=%v deltaByTime=%v",
		s.Derived, s.Firings, s.Sweeps, s.Rules, s.SweepSizes, s.StoreGrowth, s.DeltaByTime)
	keys := make([]string, 0, len(s.Index))
	for k := range s.Index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, " idx[%s]=%+v", k, *s.Index[k])
	}
	return b.String()
}

func generate(t *testing.T, seed int64) (*ast.Program, *ast.Database) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := New(rng, Default())
	prog, err := g.Program(rng)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	db, err := g.Database(rng)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return prog, db
}

// Property: the time-stratified engine and the naive T_P iteration compute
// the same least model on every window.
func TestEngineMatchesNaiveTPOnRandomPrograms(t *testing.T) {
	const m = 12
	for seed := int64(0); seed < trials; seed++ {
		prog, db := generate(t, seed)
		e, err := engine.New(prog, db)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		e.EnsureWindow(m)
		naive, _, err := baseline.NaiveTP(prog, db, m)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for tm := 0; tm <= m; tm++ {
			if e.Store().StateKey(tm) != naive.StateKey(tm) {
				t.Fatalf("seed %d: states differ at t=%d\nprogram:\n%sdb:\n%sengine: %v\nnaive:  %v",
					seed, tm, prog, db, e.Store().State(tm), naive.State(tm))
			}
		}
	}
}

// Property: a certified period really is a period — states keep repeating
// when the window is extended well beyond the certificate.
func TestPeriodCertificateSurvivesExtension(t *testing.T) {
	for seed := int64(0); seed < trials; seed++ {
		prog, db := generate(t, seed)
		e, err := engine.New(prog, db)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		p, st, err := period.Detect(e, 1<<14)
		if err != nil {
			t.Logf("seed %d: no period within budget (%v) — skipping", seed, err)
			continue
		}
		m2 := 2*st.Window + 3*p.P
		e.EnsureWindow(m2)
		for tm := p.Base; tm+p.P <= m2; tm++ {
			if e.Store().StateKey(tm) != e.Store().StateKey(tm+p.P) {
				t.Fatalf("seed %d: certified %v but M[%d] != M[%d]\nprogram:\n%sdb:\n%s",
					seed, p, tm, tm+p.P, prog, db)
			}
		}
	}
}

// Property: specification-based ground-atom answers agree with the
// directly evaluated model at every time point and for every predicate.
func TestSpecAnswersMatchDirectOnRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < trials; seed++ {
		prog, db := generate(t, seed)
		e, err := engine.New(prog, db)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		s, err := spec.Compute(e, 1<<14)
		if err != nil {
			continue // exponential-ish period; covered by other tests
		}
		// Fresh evaluator as the oracle.
		direct, err := engine.New(prog.Clone(), db)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		m := s.Period.Base + 3*s.Period.P + 5
		direct.EnsureWindow(m)
		for tm := 0; tm <= m; tm++ {
			for _, f := range direct.Store().Snapshot(tm) {
				if !s.HoldsFact(f) {
					t.Fatalf("seed %d: spec misses %v\nprogram:\n%sdb:\n%s", seed, f, prog, db)
				}
			}
			// Negative spot checks: facts the direct model lacks.
			for _, f := range direct.Store().Snapshot(tm) {
				g := f
				g.Args = append([]string(nil), f.Args...)
				if len(g.Args) > 0 {
					g.Args[0] = "nonexistent$"
					if s.HoldsFact(g) {
						t.Fatalf("seed %d: spec invents %v", seed, g)
					}
				}
			}
		}
	}
}

// Property: the parallel schedule computes the same least model as the
// sequential engine and the naive T_P baseline at every parallelism
// level, and its Stats do not depend on the worker count (the schedule
// is deterministic: counters differ from the sequential Gauss-Seidel
// sweep by design, but must be bit-identical across n >= 1).
func TestParallelMatchesSequentialOnRandomPrograms(t *testing.T) {
	const m = 12
	for seed := int64(0); seed < trials; seed++ {
		prog, db := generate(t, seed)
		seq, err := engine.New(prog, db)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		seq.EnsureWindow(m)
		naive, _, err := baseline.NaiveTP(prog, db, m)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		statsFP := ""
		for _, par := range []int{1, 2, 8} {
			e, err := engine.New(prog.Clone(), db)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			e.SetParallelism(par)
			e.EnsureWindow(m)
			for tm := 0; tm <= m; tm++ {
				if e.Store().StateKey(tm) != seq.Store().StateKey(tm) {
					t.Fatalf("seed %d par %d: state differs from sequential at t=%d\nprogram:\n%sdb:\n%sparallel: %v\nsequential: %v",
						seed, par, tm, prog, db, e.Store().State(tm), seq.Store().State(tm))
				}
				if e.Store().StateKey(tm) != naive.StateKey(tm) {
					t.Fatalf("seed %d par %d: state differs from naive T_P at t=%d\nprogram:\n%sdb:\n%s",
						seed, par, tm, prog, db)
				}
			}
			if got, want := e.Store().NonTemporalCount(), seq.Store().NonTemporalCount(); got != want {
				t.Fatalf("seed %d par %d: %d non-temporal facts, sequential has %d", seed, par, got, want)
			}
			for _, f := range seq.Store().NonTemporalFacts() {
				if !e.Holds(f) {
					t.Fatalf("seed %d par %d: missing non-temporal fact %v", seed, par, f)
				}
			}
			fp := statsFingerprint(e.Stats())
			if statsFP == "" {
				statsFP = fp
			} else if fp != statsFP {
				t.Fatalf("seed %d: Stats depend on worker count\npar=1: %s\npar=%d: %s", seed, statsFP, par, fp)
			}
		}
	}
}

// Property (four-way differential battery): on every random program, four
// independently built evaluation pipelines agree — the naive T_P oracle,
// the sequential nested-loop engine (the historical join strategy), the
// sequential indexed engine (planned join orders + hash-index probes),
// and the indexed parallel schedule at worker counts 1, 2, and 8. All
// compare equal on answers (every state of the window), on the certified
// period, and on the model fingerprint; the schedule-invariant Stats
// (Derived, Sweeps, SweepSizes, StoreGrowth) are bit-identical between
// the two sequential engines, and the full Stats — Index counters
// included — are bit-identical across the parallel worker counts.
func TestFourWayDifferentialBattery(t *testing.T) {
	const m = 12
	type run struct {
		name string
		e    *engine.Evaluator
	}
	for seed := int64(0); seed < trials; seed++ {
		prog, db := generate(t, seed)
		naive, _, err := baseline.NaiveTP(prog, db, m)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		mk := func(mode engine.JoinMode, par int) *engine.Evaluator {
			e, err := engine.New(prog.Clone(), db)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			e.SetJoinMode(mode)
			e.SetParallelism(par)
			e.EnsureWindow(m)
			return e
		}
		runs := []run{
			{"nested-loop", mk(engine.JoinNestedLoop, 0)},
			{"indexed", mk(engine.JoinIndexed, 0)},
			{"indexed-par1", mk(engine.JoinIndexed, 1)},
			{"indexed-par2", mk(engine.JoinIndexed, 2)},
			{"indexed-par8", mk(engine.JoinIndexed, 8)},
		}
		// Answers: every engine's every state equals the oracle's.
		for _, r := range runs {
			for tm := 0; tm <= m; tm++ {
				if r.e.Store().StateKey(tm) != naive.StateKey(tm) {
					t.Fatalf("seed %d: %s differs from naive T_P at t=%d\nprogram:\n%sdb:\n%s%s: %v\nnaive: %v",
						seed, r.name, tm, prog, db, r.name, r.e.Store().State(tm), naive.State(tm))
				}
			}
			if got, want := r.e.Store().NonTemporalCount(), runs[0].e.Store().NonTemporalCount(); got != want {
				t.Fatalf("seed %d: %s has %d non-temporal facts, nested-loop has %d", seed, r.name, got, want)
			}
		}
		// Schedule-invariant Stats: identical across ALL engines (total
		// derived facts), and between the two sequential engines also the
		// sweep structure — join order changes which binding fires first
		// within a state, never what a closed state contains.
		nested, indexed := runs[0].e.Stats(), runs[1].e.Stats()
		for _, r := range runs[1:] {
			if d := r.e.Stats().Derived; d != nested.Derived {
				t.Fatalf("seed %d: %s derived %d facts, nested-loop %d", seed, r.name, d, nested.Derived)
			}
		}
		if nested.Sweeps != indexed.Sweeps ||
			fmt.Sprintf("%v%v%v", nested.SweepSizes, nested.StoreGrowth, nested.DeltaByTime) !=
				fmt.Sprintf("%v%v%v", indexed.SweepSizes, indexed.StoreGrowth, indexed.DeltaByTime) {
			t.Fatalf("seed %d: sweep structure differs between join modes\nnested:  %s\nindexed: %s",
				seed, statsFingerprint(nested), statsFingerprint(indexed))
		}
		// Full Stats across worker counts, Index counters included.
		parFP := statsFingerprint(runs[2].e.Stats())
		for _, r := range runs[3:] {
			if fp := statsFingerprint(r.e.Stats()); fp != parFP {
				t.Fatalf("seed %d: Stats depend on worker count\npar=1: %s\n%s: %s", seed, parFP, r.name, fp)
			}
		}
		// Period and model fingerprint through the public facade. The
		// fingerprint commits to the certified period and every state of
		// base+period, so equality here is equality of the whole infinite
		// model. Skipped when the period is not certifiable in budget.
		ref, err := tdd.Open(prog.String(), db.String(), tdd.WithMaxWindow(1<<14))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		refFP, err := ref.ModelFingerprint()
		if err != nil {
			continue
		}
		for _, opts := range [][]tdd.Option{
			{tdd.WithMaxWindow(1 << 14), tdd.WithNestedLoopJoin()},
			{tdd.WithMaxWindow(1 << 14), tdd.WithParallelism(2)},
			{tdd.WithMaxWindow(1 << 14), tdd.WithParallelism(8)},
		} {
			d, err := tdd.Open(prog.String(), db.String(), opts...)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			fp, err := d.ModelFingerprint()
			if err != nil {
				t.Fatalf("seed %d: fingerprint failed where reference succeeded: %v", seed, err)
			}
			if fp != refFP {
				t.Fatalf("seed %d: model fingerprint %s != reference %s\nprogram:\n%sdb:\n%s", seed, fp, refFP, prog, db)
			}
		}
	}
}

// Property: specifications computed under the parallel schedule certify
// the same period and answer ground queries identically to one computed
// sequentially — on every program the sequential pipeline can certify.
func TestParallelSpecAnswersMatchSequentialOnRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < trials; seed++ {
		prog, db := generate(t, seed)
		seq, err := engine.New(prog, db)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		s1, err := spec.Compute(seq, 1<<14)
		if err != nil {
			continue // exponential-ish period; covered by other tests
		}
		m := s1.Period.Base + 2*s1.Period.P + 3
		seq.EnsureWindow(m)
		for _, par := range []int{1, 2, 8} {
			e, err := engine.New(prog.Clone(), db)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			e.SetParallelism(par)
			s2, err := spec.Compute(e, 1<<14)
			if err != nil {
				t.Fatalf("seed %d par %d: sequential certified %v but parallel failed: %v", seed, par, s1.Period, err)
			}
			if s1.Period.Base != s2.Period.Base || s1.Period.P != s2.Period.P {
				t.Fatalf("seed %d par %d: period %v vs sequential %v\nprogram:\n%sdb:\n%s",
					seed, par, s2.Period, s1.Period, prog, db)
			}
			for tm := 0; tm <= m; tm++ {
				for _, f := range seq.Store().Snapshot(tm) {
					if !s2.HoldsFact(f) {
						t.Fatalf("seed %d par %d: spec misses %v\nprogram:\n%sdb:\n%s", seed, par, f, prog, db)
					}
				}
			}
		}
	}
}

// Property: the generator only produces valid programs (meta-test).
func TestGeneratorAlwaysValid(t *testing.T) {
	for seed := int64(100); seed < 100+trials; seed++ {
		prog, db := generate(t, seed)
		if err := ast.ValidateProgram(prog); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := db.CheckAgainst(prog); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// Property: Normalize preserves the least model on the original
// predicates.
func TestNormalizePreservesModelOnRandomPrograms(t *testing.T) {
	const m = 10
	normalized := 0
	opts := Default()
	opts.Anchored = true
	for seed := int64(0); seed < trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := New(rng, opts)
		prog, err := g.Program(rng)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		db, err := g.Database(rng)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		normal, err := ast.Normalize(prog)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		normalized++
		e1, err := engine.New(prog, db)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		e2, err := engine.New(normal, db)
		if err != nil {
			t.Fatalf("seed %d: normalized program rejected: %v\n%s", seed, err, normal)
		}
		e1.EnsureWindow(m)
		e2.EnsureWindow(m)
		for tm := 0; tm <= m; tm++ {
			for _, f := range e1.Store().Snapshot(tm) {
				if !e2.Holds(f) {
					t.Fatalf("seed %d: normalization lost %v\noriginal:\n%snormal:\n%s", seed, f, prog, normal)
				}
			}
			// The reverse direction, restricted to original predicates.
			for _, f := range e2.Store().Snapshot(tm) {
				if _, ok := prog.Preds[f.Pred]; !ok {
					continue // delay predicate
				}
				if !e1.Holds(f) {
					t.Fatalf("seed %d: normalization invented %v\noriginal:\n%snormal:\n%s", seed, f, prog, normal)
				}
			}
		}
	}
	if normalized != trials {
		t.Errorf("only %d/%d anchored programs were normalizable", normalized, trials)
	}
}

// Property: pretty-printing a generated program and re-parsing it is the
// identity (parser/printer agreement on the whole generated space).
func TestPrintParseRoundTripOnRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < trials; seed++ {
		prog, db := generate(t, seed)
		prog2, err := parser.ParseProgram(prog.String())
		if err != nil {
			t.Fatalf("seed %d: reparse rules: %v\n%s", seed, err, prog)
		}
		if prog.String() != prog2.String() {
			t.Fatalf("seed %d: rule round trip drifted:\n%s\nvs\n%s", seed, prog, prog2)
		}
		db2, err := parser.ParseDatabase(db.String())
		if err != nil {
			t.Fatalf("seed %d: reparse facts: %v\n%s", seed, err, db)
		}
		if db.String() != db2.String() {
			t.Fatalf("seed %d: fact round trip drifted:\n%s\nvs\n%s", seed, db, db2)
		}
	}
}
