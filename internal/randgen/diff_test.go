package randgen

// Property-based differential tests: many random TDDs, three independent
// pipelines that must agree.

import (
	"fmt"
	"math/rand"
	"testing"

	"tdd/internal/ast"
	"tdd/internal/baseline"
	"tdd/internal/engine"
	"tdd/internal/parser"
	"tdd/internal/period"
	"tdd/internal/spec"
)

const trials = 60

func generate(t *testing.T, seed int64) (*ast.Program, *ast.Database) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := New(rng, Default())
	prog, err := g.Program(rng)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	db, err := g.Database(rng)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return prog, db
}

// Property: the time-stratified engine and the naive T_P iteration compute
// the same least model on every window.
func TestEngineMatchesNaiveTPOnRandomPrograms(t *testing.T) {
	const m = 12
	for seed := int64(0); seed < trials; seed++ {
		prog, db := generate(t, seed)
		e, err := engine.New(prog, db)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		e.EnsureWindow(m)
		naive, _, err := baseline.NaiveTP(prog, db, m)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for tm := 0; tm <= m; tm++ {
			if e.Store().StateKey(tm) != naive.StateKey(tm) {
				t.Fatalf("seed %d: states differ at t=%d\nprogram:\n%sdb:\n%sengine: %v\nnaive:  %v",
					seed, tm, prog, db, e.Store().State(tm), naive.State(tm))
			}
		}
	}
}

// Property: a certified period really is a period — states keep repeating
// when the window is extended well beyond the certificate.
func TestPeriodCertificateSurvivesExtension(t *testing.T) {
	for seed := int64(0); seed < trials; seed++ {
		prog, db := generate(t, seed)
		e, err := engine.New(prog, db)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		p, st, err := period.Detect(e, 1<<14)
		if err != nil {
			t.Logf("seed %d: no period within budget (%v) — skipping", seed, err)
			continue
		}
		m2 := 2*st.Window + 3*p.P
		e.EnsureWindow(m2)
		for tm := p.Base; tm+p.P <= m2; tm++ {
			if e.Store().StateKey(tm) != e.Store().StateKey(tm+p.P) {
				t.Fatalf("seed %d: certified %v but M[%d] != M[%d]\nprogram:\n%sdb:\n%s",
					seed, p, tm, tm+p.P, prog, db)
			}
		}
	}
}

// Property: specification-based ground-atom answers agree with the
// directly evaluated model at every time point and for every predicate.
func TestSpecAnswersMatchDirectOnRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < trials; seed++ {
		prog, db := generate(t, seed)
		e, err := engine.New(prog, db)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		s, err := spec.Compute(e, 1<<14)
		if err != nil {
			continue // exponential-ish period; covered by other tests
		}
		// Fresh evaluator as the oracle.
		direct, err := engine.New(prog.Clone(), db)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		m := s.Period.Base + 3*s.Period.P + 5
		direct.EnsureWindow(m)
		for tm := 0; tm <= m; tm++ {
			for _, f := range direct.Store().Snapshot(tm) {
				if !s.HoldsFact(f) {
					t.Fatalf("seed %d: spec misses %v\nprogram:\n%sdb:\n%s", seed, f, prog, db)
				}
			}
			// Negative spot checks: facts the direct model lacks.
			for _, f := range direct.Store().Snapshot(tm) {
				g := f
				g.Args = append([]string(nil), f.Args...)
				if len(g.Args) > 0 {
					g.Args[0] = "nonexistent$"
					if s.HoldsFact(g) {
						t.Fatalf("seed %d: spec invents %v", seed, g)
					}
				}
			}
		}
	}
}

// Property: the parallel schedule computes the same least model as the
// sequential engine and the naive T_P baseline at every parallelism
// level, and its Stats do not depend on the worker count (the schedule
// is deterministic: counters differ from the sequential Gauss-Seidel
// sweep by design, but must be bit-identical across n >= 1).
func TestParallelMatchesSequentialOnRandomPrograms(t *testing.T) {
	const m = 12
	for seed := int64(0); seed < trials; seed++ {
		prog, db := generate(t, seed)
		seq, err := engine.New(prog, db)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		seq.EnsureWindow(m)
		naive, _, err := baseline.NaiveTP(prog, db, m)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		statsFP := ""
		for _, par := range []int{1, 2, 8} {
			e, err := engine.New(prog.Clone(), db)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			e.SetParallelism(par)
			e.EnsureWindow(m)
			for tm := 0; tm <= m; tm++ {
				if e.Store().StateKey(tm) != seq.Store().StateKey(tm) {
					t.Fatalf("seed %d par %d: state differs from sequential at t=%d\nprogram:\n%sdb:\n%sparallel: %v\nsequential: %v",
						seed, par, tm, prog, db, e.Store().State(tm), seq.Store().State(tm))
				}
				if e.Store().StateKey(tm) != naive.StateKey(tm) {
					t.Fatalf("seed %d par %d: state differs from naive T_P at t=%d\nprogram:\n%sdb:\n%s",
						seed, par, tm, prog, db)
				}
			}
			if got, want := e.Store().NonTemporalCount(), seq.Store().NonTemporalCount(); got != want {
				t.Fatalf("seed %d par %d: %d non-temporal facts, sequential has %d", seed, par, got, want)
			}
			for _, f := range seq.Store().NonTemporalFacts() {
				if !e.Holds(f) {
					t.Fatalf("seed %d par %d: missing non-temporal fact %v", seed, par, f)
				}
			}
			fp := fmt.Sprintf("%+v", e.Stats())
			if statsFP == "" {
				statsFP = fp
			} else if fp != statsFP {
				t.Fatalf("seed %d: Stats depend on worker count\npar=1: %s\npar=%d: %s", seed, statsFP, par, fp)
			}
		}
	}
}

// Property: specifications computed under the parallel schedule certify
// the same period and answer ground queries identically to one computed
// sequentially — on every program the sequential pipeline can certify.
func TestParallelSpecAnswersMatchSequentialOnRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < trials; seed++ {
		prog, db := generate(t, seed)
		seq, err := engine.New(prog, db)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		s1, err := spec.Compute(seq, 1<<14)
		if err != nil {
			continue // exponential-ish period; covered by other tests
		}
		m := s1.Period.Base + 2*s1.Period.P + 3
		seq.EnsureWindow(m)
		for _, par := range []int{1, 2, 8} {
			e, err := engine.New(prog.Clone(), db)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			e.SetParallelism(par)
			s2, err := spec.Compute(e, 1<<14)
			if err != nil {
				t.Fatalf("seed %d par %d: sequential certified %v but parallel failed: %v", seed, par, s1.Period, err)
			}
			if s1.Period.Base != s2.Period.Base || s1.Period.P != s2.Period.P {
				t.Fatalf("seed %d par %d: period %v vs sequential %v\nprogram:\n%sdb:\n%s",
					seed, par, s2.Period, s1.Period, prog, db)
			}
			for tm := 0; tm <= m; tm++ {
				for _, f := range seq.Store().Snapshot(tm) {
					if !s2.HoldsFact(f) {
						t.Fatalf("seed %d par %d: spec misses %v\nprogram:\n%sdb:\n%s", seed, par, f, prog, db)
					}
				}
			}
		}
	}
}

// Property: the generator only produces valid programs (meta-test).
func TestGeneratorAlwaysValid(t *testing.T) {
	for seed := int64(100); seed < 100+trials; seed++ {
		prog, db := generate(t, seed)
		if err := ast.ValidateProgram(prog); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := db.CheckAgainst(prog); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// Property: Normalize preserves the least model on the original
// predicates.
func TestNormalizePreservesModelOnRandomPrograms(t *testing.T) {
	const m = 10
	normalized := 0
	opts := Default()
	opts.Anchored = true
	for seed := int64(0); seed < trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := New(rng, opts)
		prog, err := g.Program(rng)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		db, err := g.Database(rng)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		normal, err := ast.Normalize(prog)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		normalized++
		e1, err := engine.New(prog, db)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		e2, err := engine.New(normal, db)
		if err != nil {
			t.Fatalf("seed %d: normalized program rejected: %v\n%s", seed, err, normal)
		}
		e1.EnsureWindow(m)
		e2.EnsureWindow(m)
		for tm := 0; tm <= m; tm++ {
			for _, f := range e1.Store().Snapshot(tm) {
				if !e2.Holds(f) {
					t.Fatalf("seed %d: normalization lost %v\noriginal:\n%snormal:\n%s", seed, f, prog, normal)
				}
			}
			// The reverse direction, restricted to original predicates.
			for _, f := range e2.Store().Snapshot(tm) {
				if _, ok := prog.Preds[f.Pred]; !ok {
					continue // delay predicate
				}
				if !e1.Holds(f) {
					t.Fatalf("seed %d: normalization invented %v\noriginal:\n%snormal:\n%s", seed, f, prog, normal)
				}
			}
		}
	}
	if normalized != trials {
		t.Errorf("only %d/%d anchored programs were normalizable", normalized, trials)
	}
}

// Property: pretty-printing a generated program and re-parsing it is the
// identity (parser/printer agreement on the whole generated space).
func TestPrintParseRoundTripOnRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < trials; seed++ {
		prog, db := generate(t, seed)
		prog2, err := parser.ParseProgram(prog.String())
		if err != nil {
			t.Fatalf("seed %d: reparse rules: %v\n%s", seed, err, prog)
		}
		if prog.String() != prog2.String() {
			t.Fatalf("seed %d: rule round trip drifted:\n%s\nvs\n%s", seed, prog, prog2)
		}
		db2, err := parser.ParseDatabase(db.String())
		if err != nil {
			t.Fatalf("seed %d: reparse facts: %v\n%s", seed, err, db)
		}
		if db.String() != db2.String() {
			t.Fatalf("seed %d: fact round trip drifted:\n%s\nvs\n%s", seed, db, db2)
		}
	}
}
