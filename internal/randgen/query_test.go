package randgen

// Property: Proposition 3.1 (invariance of temporal queries w.r.t.
// relational specifications), tested on random programs with random
// existential-positive queries. For that fragment a bounded window that
// covers one full period is an exact oracle: any satisfiable temporal
// quantifier has a witness among the representatives, and window
// evaluation is otherwise literal.

import (
	"fmt"
	"math/rand"
	"testing"

	"tdd/internal/ast"
	"tdd/internal/engine"
	"tdd/internal/query"
	"tdd/internal/spec"
)

// randomQuery builds a closed existential-positive query over the
// program's predicates: a tree of & and | over atoms, with every variable
// bound by an exists.
func randomQuery(rng *rand.Rand, preds map[string]ast.PredInfo, consts []string, maxTime int) ast.Query {
	var names []string
	for name := range preds {
		names = append(names, name)
	}
	// Deterministic iteration order for reproducibility.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	var tVars, cVars []string
	atom := func() ast.Query {
		info := preds[names[rng.Intn(len(names))]]
		a := ast.Atom{Pred: info.Name}
		if info.Temporal {
			if rng.Intn(2) == 0 {
				a.Time = &ast.TemporalTerm{Depth: rng.Intn(maxTime + 1)}
			} else {
				v := fmt.Sprintf("QT%d", rng.Intn(2))
				a.Time = &ast.TemporalTerm{Var: v, Depth: rng.Intn(2)}
				tVars = append(tVars, v)
			}
		}
		for i := 0; i < info.Arity; i++ {
			if rng.Intn(2) == 0 {
				a.Args = append(a.Args, ast.Const(consts[rng.Intn(len(consts))]))
			} else {
				v := fmt.Sprintf("QX%d", rng.Intn(2))
				a.Args = append(a.Args, ast.Var(v))
				cVars = append(cVars, v)
			}
		}
		return ast.QAtom{Atom: a}
	}
	var tree func(depth int) ast.Query
	tree = func(depth int) ast.Query {
		if depth == 0 || rng.Intn(3) == 0 {
			return atom()
		}
		l, r := tree(depth-1), tree(depth-1)
		if rng.Intn(2) == 0 {
			return ast.QAnd{Left: l, Right: r}
		}
		return ast.QOr{Left: l, Right: r}
	}
	q := tree(2)
	// Close the query.
	seen := map[string]bool{}
	for _, v := range tVars {
		if !seen[v] {
			seen[v] = true
			q = ast.QExists{Var: v, Sort: ast.SortTemporal, Sub: q}
		}
	}
	for _, v := range cVars {
		if !seen[v] {
			seen[v] = true
			q = ast.QExists{Var: v, Sort: ast.SortNonTemporal, Sub: q}
		}
	}
	return q
}

func TestProposition31OnRandomQueries(t *testing.T) {
	queriesChecked := 0
	for seed := int64(0); seed < trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := New(rng, Default())
		prog, err := g.Program(rng)
		if err != nil {
			t.Fatal(err)
		}
		db, err := g.Database(rng)
		if err != nil {
			t.Fatal(err)
		}
		e, err := engine.New(prog, db)
		if err != nil {
			t.Fatal(err)
		}
		s, err := spec.Compute(e, 1<<14)
		if err != nil {
			continue
		}
		oracle := query.Window{Eval: e, M: s.Period.Base + 2*s.Period.P + 4}
		preds := prog.Preds
		consts := append(db.Constants(), "nonexistent$")
		for k := 0; k < 10; k++ {
			q := randomQuery(rng, preds, consts, oracle.M)
			if !ast.Closed(q) {
				t.Fatalf("seed %d: query not closed: %s", seed, q)
			}
			specGot, err := query.Eval(s, q)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			winGot, err := query.Eval(oracle, q)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if specGot != winGot {
				t.Fatalf("seed %d: invariance violated on %s\nspec=%v window=%v\nprogram:\n%sdb:\n%s",
					seed, q, specGot, winGot, prog, db)
			}
			queriesChecked++
		}
	}
	if queriesChecked < 100 {
		t.Errorf("only %d random queries checked", queriesChecked)
	}
}
