// Package randgen generates random — but always valid (range-restricted,
// semi-normal, forward) — temporal deductive databases for property-based
// and differential testing: the engine against the naive T_P baseline,
// specification answers against direct evaluation, and period certificates
// against extended windows.
package randgen

import (
	"fmt"
	"math/rand"

	"tdd/internal/ast"
)

// Options bounds the generated programs.
type Options struct {
	TemporalPreds    int // number of temporal predicates (>=1)
	NonTemporalPreds int // number of non-temporal (EDB) predicates
	MaxArity         int // max non-temporal arity of any predicate
	Rules            int // number of rules
	MaxDepth         int // max temporal depth of a rule head
	MaxBody          int // max body literals per rule
	Consts           int // constants in generated databases
	MaxTime          int // max temporal depth of database facts
	Facts            int // database facts
	// Anchored forces every rule with head depth >= 2 to carry a temporal
	// body literal at depth 0 — the condition under which ast.Normalize
	// is exact.
	Anchored bool
}

// Default returns options that generate small, densely interacting TDDs.
func Default() Options {
	return Options{
		TemporalPreds:    3,
		NonTemporalPreds: 2,
		MaxArity:         2,
		Rules:            5,
		MaxDepth:         3,
		MaxBody:          3,
		Consts:           3,
		MaxTime:          3,
		Facts:            8,
	}
}

type sig struct {
	name     string
	temporal bool
	arity    int
}

// Gen holds the predicate signatures of one generated universe.
type Gen struct {
	opts  Options
	preds []sig
}

// New fixes a random predicate universe.
func New(rng *rand.Rand, opts Options) *Gen {
	g := &Gen{opts: opts}
	for i := 0; i < opts.TemporalPreds; i++ {
		g.preds = append(g.preds, sig{name: fmt.Sprintf("p%d", i), temporal: true, arity: rng.Intn(opts.MaxArity + 1)})
	}
	for i := 0; i < opts.NonTemporalPreds; i++ {
		g.preds = append(g.preds, sig{name: fmt.Sprintf("e%d", i), temporal: false, arity: 1 + rng.Intn(opts.MaxArity)})
	}
	return g
}

var varNames = []string{"X", "Y", "Z", "W", "V", "U"}

// Program generates a valid program: every rule has a temporal head at a
// random depth with body literals at depths up to the head's (forward),
// one shared temporal variable, and head variables drawn from body
// variables (range restriction).
func (g *Gen) Program(rng *rand.Rand) (*ast.Program, error) {
	var rules []ast.Rule
	temporalPreds := g.temporal()
	for len(rules) < g.opts.Rules {
		head := temporalPreds[rng.Intn(len(temporalPreds))]
		h := rng.Intn(g.opts.MaxDepth + 1)
		nbody := 1 + rng.Intn(g.opts.MaxBody)
		var body []ast.Atom
		varPool := varNames[:2+rng.Intn(len(varNames)-2)]
		bodyVars := map[string]bool{}
		hasTemporalBody := false
		for i := 0; i < nbody; i++ {
			p := g.preds[rng.Intn(len(g.preds))]
			args := make([]ast.Symbol, p.arity)
			for j := range args {
				v := varPool[rng.Intn(len(varPool))]
				args[j] = ast.Var(v)
				bodyVars[v] = true
			}
			if p.temporal {
				d := rng.Intn(h + 1)
				body = append(body, ast.TemporalAtom(p.name, ast.TemporalTerm{Var: "T", Depth: d}, args...))
				hasTemporalBody = true
			} else {
				body = append(body, ast.NonTemporalAtom(p.name, args...))
			}
		}
		if !hasTemporalBody {
			// The head's temporal variable must occur in the body.
			p := temporalPreds[rng.Intn(len(temporalPreds))]
			args := make([]ast.Symbol, p.arity)
			for j := range args {
				v := varPool[rng.Intn(len(varPool))]
				args[j] = ast.Var(v)
				bodyVars[v] = true
			}
			body = append(body, ast.TemporalAtom(p.name, ast.TemporalTerm{Var: "T", Depth: rng.Intn(h + 1)}, args...))
		}
		if g.opts.Anchored && h >= 2 {
			anchored := false
			for i := range body {
				if body[i].Time != nil && body[i].Time.Depth == 0 {
					anchored = true
					break
				}
			}
			if !anchored {
				// Pull one temporal literal down to depth 0.
				for i := range body {
					if body[i].Time != nil {
						body[i].Time.Depth = 0
						break
					}
				}
			}
		}
		if head.arity > 0 && len(bodyVars) == 0 {
			continue // cannot range-restrict; retry
		}
		headArgs := make([]ast.Symbol, head.arity)
		pool := keys(bodyVars)
		for j := range headArgs {
			headArgs[j] = ast.Var(pool[rng.Intn(len(pool))])
		}
		rules = append(rules, ast.Rule{
			Head: ast.TemporalAtom(head.name, ast.TemporalTerm{Var: "T", Depth: h}, headArgs...),
			Body: body,
		})
	}
	prog, err := ast.NewProgram(rules)
	if err != nil {
		return nil, err
	}
	if err := ast.ValidateProgram(prog); err != nil {
		return nil, fmt.Errorf("randgen produced an invalid program (bug): %w\n%s", err, prog)
	}
	return prog, nil
}

// Database generates random ground facts over the universe.
func (g *Gen) Database(rng *rand.Rand) (*ast.Database, error) {
	var facts []ast.Fact
	seen := map[string]bool{}
	for len(facts) < g.opts.Facts {
		p := g.preds[rng.Intn(len(g.preds))]
		f := ast.Fact{Pred: p.name, Temporal: p.temporal}
		if p.temporal {
			f.Time = rng.Intn(g.opts.MaxTime + 1)
		}
		f.Args = make([]string, p.arity)
		for j := range f.Args {
			f.Args[j] = fmt.Sprintf("c%d", rng.Intn(g.opts.Consts))
		}
		key := f.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		facts = append(facts, f)
	}
	return ast.NewDatabase(facts)
}

func (g *Gen) temporal() []sig {
	var out []sig
	for _, p := range g.preds {
		if p.temporal {
			out = append(out, p)
		}
	}
	return out
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for _, v := range varNames {
		if m[v] {
			out = append(out, v)
		}
	}
	return out
}
