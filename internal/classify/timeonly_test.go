package classify

import (
	"testing"

	"tdd/internal/engine"
	"tdd/internal/parser"
	"tdd/internal/period"
)

// Theorem 6.4, observed: the time-only approximation's least model agrees
// with the original's on a long window, and Z1 is reduced time-only and
// mutual-recursion free.
func TestTimeOnlyApproximationAgrees(t *testing.T) {
	src := `
plane(T+3, X) :- plane(T, X), resort(X), offseason(T).
plane(T+2, X) :- plane(T, X), resort(X), winter(T).
offseason(T+3) :- offseason(T).
winter(T+3) :- winter(T).
`
	prog := mustProg(t, src)
	ip, err := IPeriod(prog, &IPeriodOptions{MaxAtoms: 10})
	if err != nil {
		t.Fatal(err)
	}
	db, err := parser.ParseDatabase(`
plane(1, hunter). resort(hunter). winter(0). winter(2). offseason(1).
`)
	if err != nil {
		t.Fatal(err)
	}
	z1, d1, err := TimeOnlyApproximation(prog, db, ip)
	if err != nil {
		t.Fatal(err)
	}
	// Z1's shape: reduced time-only copy rules, no mutual recursion.
	for _, r := range z1.Rules {
		if KindOf(r) != KindTimeOnly || !r.Reduced() {
			t.Errorf("Z1 rule not reduced time-only: %s", r)
		}
	}
	if !MutualRecursionFree(z1) {
		t.Error("Z1 has mutual recursion")
	}
	// D1's biggest temporal term exceeds D's by the database-independent
	// constant b + p - 1.
	if got, want := d1.MaxDepth(), db.MaxDepth()+ip.Base+ip.P-1; got != want {
		t.Errorf("D1 depth = %d, want %d", got, want)
	}
	// The least models coincide over a long window.
	e, err := engine.New(prog.Clone(), db)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := engine.New(z1, d1)
	if err != nil {
		t.Fatal(err)
	}
	const m = 100
	e.EnsureWindow(m)
	e1.EnsureWindow(m)
	for tm := 0; tm <= m; tm++ {
		if e.Store().StateKey(tm) != e1.Store().StateKey(tm) {
			t.Fatalf("models differ at t=%d:\noriginal: %v\nZ1:       %v",
				tm, e.Store().State(tm), e1.Store().State(tm))
		}
	}
}

// The transformation also closes the loop with Theorem 6.3: Z1's own
// I-period (computable because Z1 is trivially multi-separable) is
// compatible with the original's.
func TestTimeOnlyApproximationIPeriod(t *testing.T) {
	prog := mustProg(t, "even(T+2) :- even(T).")
	ip, err := IPeriod(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	db, err := parser.ParseDatabase("even(0).")
	if err != nil {
		t.Fatal(err)
	}
	z1, d1, err := TimeOnlyApproximation(prog, db, ip)
	if err != nil {
		t.Fatal(err)
	}
	if ok, reason := MultiSeparable(z1); !ok {
		t.Fatalf("Z1 not multi-separable: %s", reason)
	}
	if err := VerifyIPeriod(z1, d1, period.Period{Base: ip.Base + ip.P, P: ip.P}, 1<<12); err != nil {
		t.Errorf("Z1 period incompatible: %v", err)
	}
}
