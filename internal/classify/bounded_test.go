package classify

import (
	"fmt"
	"strings"
	"testing"

	"tdd/internal/engine"
	"tdd/internal/parser"
	"tdd/internal/period"
)

// chainDB builds p(x0,x1). p(x1,x2). ... of the given length.
func chainDB(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "p(x%d, x%d).\n", i, i+1)
	}
	return b.String()
}

const tcRules = `
a(X, Y) :- p(X, Y).
a(X, Z) :- p(X, Y), a(Y, Z).
`

// boundedRules is a classic bounded program: one round of s from p, one
// more through the q gate, and nothing new afterwards on any database.
const boundedRules = `
s(X) :- p0(X).
s(X) :- s(Y), q(X, Y).
`

func TestBoundednessRoundsUnboundedGrows(t *testing.T) {
	prog, err := parser.ParseProgram(tcRules)
	if err != nil {
		t.Fatal(err)
	}
	var prev int
	for _, n := range []int{2, 4, 8, 16} {
		db, err := parser.ParseDatabase(chainDB(n))
		if err != nil {
			t.Fatal(err)
		}
		rounds, err := BoundednessRounds(prog, db)
		if err != nil {
			t.Fatal(err)
		}
		if rounds <= prev {
			t.Errorf("chain %d: rounds = %d, want > %d (transitive closure is unbounded)", n, rounds, prev)
		}
		prev = rounds
	}
}

func TestBoundednessRoundsBoundedStable(t *testing.T) {
	prog, err := parser.ParseProgram(boundedRules)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 8, 32} {
		var b strings.Builder
		for i := 0; i < n; i++ {
			fmt.Fprintf(&b, "p0(v%d).\nq(w%d, v%d).\n", i, i, i)
		}
		db, err := parser.ParseDatabase(b.String())
		if err != nil {
			t.Fatal(err)
		}
		rounds, err := BoundednessRounds(prog, db)
		if err != nil {
			t.Fatal(err)
		}
		if rounds > 2 {
			t.Errorf("n=%d: rounds = %d, want <= 2 (bounded program)", n, rounds)
		}
	}
}

func TestBoundednessRejectsTemporal(t *testing.T) {
	prog := mustProg(t, "p(T+1) :- p(T).")
	db, _ := parser.ParseDatabase("")
	if _, err := BoundednessRounds(prog, db); err == nil {
		t.Error("temporal program accepted")
	}
}

// The Theorem 6.2 correspondence, observed: the temporalized program's
// least model stabilizes (period 1) at a base tracking the original
// program's fixpoint rounds — growing for transitive closure, constant for
// the bounded program.
func TestTemporalizeTracksBoundedness(t *testing.T) {
	tcProg, err := parser.ParseProgram(tcRules)
	if err != nil {
		t.Fatal(err)
	}
	tProg, err := Temporalize(tcProg)
	if err != nil {
		t.Fatal(err)
	}
	var prevBase int
	for _, n := range []int{2, 6, 12} {
		db, err := parser.ParseDatabase(chainDB(n))
		if err != nil {
			t.Fatal(err)
		}
		rounds, err := BoundednessRounds(tcProg, db)
		if err != nil {
			t.Fatal(err)
		}
		tdb, err := TemporalizeDB(db)
		if err != nil {
			t.Fatal(err)
		}
		e, err := engine.New(tProg.Clone(), tdb)
		if err != nil {
			t.Fatal(err)
		}
		p, _, err := period.Detect(e, 1<<12)
		if err != nil {
			t.Fatal(err)
		}
		if p.P != 1 {
			t.Fatalf("temporalized program period %v, want 1", p)
		}
		if p.Base <= prevBase {
			t.Errorf("chain %d: base = %d did not grow with rounds = %d", n, p.Base, rounds)
		}
		// The temporalized model stabilizes within a couple of steps of
		// the round count (the copy rules add one warm-up step).
		if p.Base > rounds+2 {
			t.Errorf("chain %d: base %d far from rounds %d", n, p.Base, rounds)
		}
		prevBase = p.Base
	}
}
