package classify

import (
	"fmt"

	"tdd/internal/ast"
	"tdd/internal/baseline"
)

// BoundednessRounds returns the number of T_P rounds a function-free
// Datalog program needs to reach its least fixpoint on the given database.
// A program is strongly k-bounded (Gaifman et al. 1987; the notion behind
// Theorem 6.2) iff this number is at most k for every database — a
// property that is undecidable in general, which is exactly why testing
// I-periodicity is undecidable. This empirical per-database probe is what
// the library can offer: tests combine it with Temporalize to observe the
// Theorem 6.2 correspondence
//
//	rounds(S, D)  <->  stabilization point of the temporalized S' on D'.
func BoundednessRounds(p *ast.Program, db *ast.Database) (int, error) {
	for name, info := range p.Preds {
		if info.Temporal {
			return 0, fmt.Errorf("classify: BoundednessRounds needs function-free Datalog; %s is temporal", name)
		}
	}
	_, stats, err := baseline.NaiveTP(p, db, 0)
	if err != nil {
		return 0, err
	}
	// The final iteration derives nothing; it only detects the fixpoint.
	return stats.Iterations - 1, nil
}
