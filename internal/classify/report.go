package classify

import (
	"fmt"
	"strings"

	"tdd/internal/ast"
	"tdd/internal/period"
)

// Report summarizes every classification the library can make about a rule
// set. Produced by Analyze; rendered by cmd/tddcheck.
type Report struct {
	Valid      bool   // range-restricted, semi-normal, forward
	ValidError string // why not, when !Valid

	Normal              bool // every non-ground temporal term has depth <= 1
	MutualRecursionFree bool
	Levels              map[string]int // predicate levels (when mutual-recursion free)

	Inflationary    bool
	InflationaryErr string // the test's precondition failure, if any
	Witness         string // violating predicate when not inflationary

	MultiSeparable bool
	SeparableNote  string // why not multi-separable
	Separable      bool   // the stricter class of [7]

	IPeriod    *period.Period // database-relative; nil if not computed
	IPeriodErr string
}

// AnalyzeOptions tunes the expensive parts of Analyze.
type AnalyzeOptions struct {
	// ComputeIPeriod runs the Theorem 6.3 construction when the rule set
	// is multi-separable.
	ComputeIPeriod bool
	IPeriodOpts    *IPeriodOptions
}

// Analyze classifies a rule set along every axis of the paper.
func Analyze(p *ast.Program, opts AnalyzeOptions) Report {
	var rep Report
	if err := ast.ValidateProgram(p); err != nil {
		rep.ValidError = err.Error()
		return rep
	}
	rep.Valid = true
	rep.Normal = true
	for _, r := range p.Rules {
		if !r.Normal() {
			rep.Normal = false
			break
		}
	}
	rep.MutualRecursionFree = MutualRecursionFree(p)
	if levels, ok := Levels(p); ok {
		rep.Levels = levels
	}
	infl, witness, err := InflationaryWitness(p)
	if err != nil {
		rep.InflationaryErr = err.Error()
	} else {
		rep.Inflationary = infl
		rep.Witness = witness
	}
	rep.MultiSeparable, rep.SeparableNote = MultiSeparable(p)
	rep.Separable, _ = Separable(p)
	if opts.ComputeIPeriod && rep.MultiSeparable {
		ip, err := IPeriod(p, opts.IPeriodOpts)
		if err != nil {
			rep.IPeriodErr = err.Error()
		} else {
			rep.IPeriod = &ip
		}
	}
	return rep
}

// Tractable reports whether the analysis places the rule set in a class
// with guaranteed polynomial periodicity (Theorems 5.1 and 6.1): it is
// inflationary or multi-separable (hence I-periodic).
func (r Report) Tractable() bool {
	return r.Valid && (r.Inflationary || r.MultiSeparable)
}

// String renders the report for humans.
func (r Report) String() string {
	var b strings.Builder
	if !r.Valid {
		fmt.Fprintf(&b, "invalid: %s\n", r.ValidError)
		return b.String()
	}
	yn := func(v bool) string {
		if v {
			return "yes"
		}
		return "no"
	}
	fmt.Fprintf(&b, "valid (range-restricted, semi-normal, forward): yes\n")
	fmt.Fprintf(&b, "normal (temporal depth <= 1):                   %s\n", yn(r.Normal))
	fmt.Fprintf(&b, "mutual-recursion free:                          %s\n", yn(r.MutualRecursionFree))
	if r.InflationaryErr != "" {
		fmt.Fprintf(&b, "inflationary:                                   untestable (%s)\n", r.InflationaryErr)
	} else if r.Inflationary {
		fmt.Fprintf(&b, "inflationary:                                   yes\n")
	} else {
		fmt.Fprintf(&b, "inflationary:                                   no (witness: %s)\n", r.Witness)
	}
	if r.MultiSeparable {
		fmt.Fprintf(&b, "multi-separable:                                yes\n")
	} else {
		fmt.Fprintf(&b, "multi-separable:                                no (%s)\n", r.SeparableNote)
	}
	fmt.Fprintf(&b, "separable (in the stricter sense of [7]):       %s\n", yn(r.Separable))
	switch {
	case r.IPeriod != nil:
		fmt.Fprintf(&b, "I-period (database-relative):                   %v\n", *r.IPeriod)
	case r.IPeriodErr != "":
		fmt.Fprintf(&b, "I-period:                                       not computed (%s)\n", r.IPeriodErr)
	}
	fmt.Fprintf(&b, "tractable (polynomially periodic class):        %s\n", yn(r.Tractable()))
	return b.String()
}
