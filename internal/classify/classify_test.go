package classify

import (
	"reflect"
	"strings"
	"testing"

	"tdd/internal/ast"
	"tdd/internal/parser"
	"tdd/internal/period"
)

func mustProg(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

const skiRules = `
plane(T+7, X) :- plane(T, X), resort(X), offseason(T).
plane(T+2, X) :- plane(T, X), resort(X), winter(T).
plane(T+1, X) :- plane(T, X), resort(X), holiday(T).
offseason(T+365) :- offseason(T).
winter(T+365) :- winter(T).
holiday(T+365) :- holiday(T).
`

const pathRules = `
path(K, X, X) :- node(X), null(K).
path(K+1, X, Z) :- edge(X, Y), path(K, Y, Z).
path(K+1, X, Y) :- path(K, X, Y).
`

func TestDepGraphAndSCC(t *testing.T) {
	p := mustProg(t, `
a(X) :- b(X), c(X).
b(X) :- a(X).
c(X) :- d(X).
c(X) :- c(X).
`)
	g := BuildDepGraph(p)
	if !reflect.DeepEqual(g.Succ["a"], []string{"b", "c"}) {
		t.Errorf("succ(a) = %v", g.Succ["a"])
	}
	sccs := g.SCCs()
	var big [][]string
	for _, comp := range sccs {
		if len(comp) > 1 {
			big = append(big, comp)
		}
	}
	if len(big) != 1 || !reflect.DeepEqual(big[0], []string{"a", "b"}) {
		t.Errorf("big SCCs = %v", big)
	}
	if MutualRecursionFree(p) {
		t.Error("a<->b mutual recursion not detected")
	}
	if got := RecursivePreds(p); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("RecursivePreds = %v", got)
	}
}

func TestSCCOrderCalleesFirst(t *testing.T) {
	p := mustProg(t, `
a(X) :- b(X).
b(X) :- c(X).
c(X) :- d(X).
`)
	pos := map[string]int{}
	for i, comp := range BuildDepGraph(p).SCCs() {
		pos[comp[0]] = i
	}
	if !(pos["d"] < pos["c"] && pos["c"] < pos["b"] && pos["b"] < pos["a"]) {
		t.Errorf("SCC order not callees-first: %v", pos)
	}
}

func TestLevels(t *testing.T) {
	p := mustProg(t, skiRules)
	levels, ok := Levels(p)
	if !ok {
		t.Fatal("ski rules reported mutually recursive")
	}
	if levels["resort"] != 0 || levels["winter"] != 1 || levels["plane"] != 2 {
		t.Errorf("levels = %v", levels)
	}
	if _, ok := Levels(mustProg(t, "a(X) :- b(X).\nb(X) :- a(X).")); ok {
		t.Error("Levels accepted mutual recursion")
	}
}

func TestInflationaryPath(t *testing.T) {
	// The graph example is inflationary thanks to its copy rule.
	ok, err := Inflationary(mustProg(t, pathRules))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("path program should be inflationary")
	}
}

func TestInflationarySkiIsNot(t *testing.T) {
	// The paper: the ski rules are not inflationary — take a database with
	// planes but empty seasons.
	ok, witness, err := InflationaryWitness(mustProg(t, skiRules))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("ski rules should not be inflationary")
	}
	if witness != "offseason" && witness != "plane" && witness != "winter" && witness != "holiday" {
		t.Errorf("witness = %q", witness)
	}
}

func TestInflationaryDropCopyRule(t *testing.T) {
	// Without the copy rule, path is not inflationary.
	src := `
path(K, X, X) :- node(X), null(K).
path(K+1, X, Z) :- edge(X, Y), path(K, Y, Z).
`
	ok, witness, err := InflationaryWitness(mustProg(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("copy-free path program should not be inflationary")
	}
	if witness != "path" {
		t.Errorf("witness = %q, want path", witness)
	}
}

func TestInflationaryMultiPredicate(t *testing.T) {
	// Both derived temporal predicates must satisfy the condition.
	src := `
p(T+1, X) :- p(T, X).
q(T+1, X) :- q(T, X), gate(X).
`
	ok, witness, err := InflationaryWitness(mustProg(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if ok || witness != "q" {
		t.Errorf("ok=%v witness=%q, want false/q", ok, witness)
	}
}

func TestInflationaryRejectsConstants(t *testing.T) {
	src := "p(T+1, X) :- p(T, X), flag(X, on).\n"
	if _, err := Inflationary(mustProg(t, src)); err == nil {
		t.Error("rule constants accepted by the inflationary test")
	}
}

func TestInflationaryNonTemporalDerivedIgnored(t *testing.T) {
	src := `
p(T+1, X) :- p(T, X).
ever(X) :- p(T, X).
`
	ok, err := Inflationary(mustProg(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("non-temporal derived predicate should not block the test")
	}
}

func TestKindOf(t *testing.T) {
	p := mustProg(t, skiRules+pathRules+`
happy(T, X) :- happy(T, Y), friend(X, Y).
base(X) :- node(X).
`)
	kinds := map[string]RuleKind{}
	for _, r := range p.Rules {
		kinds[r.String()] = KindOf(r)
	}
	checks := map[string]RuleKind{
		"plane(T+7, X) :- plane(T, X), resort(X), offseason(T).": KindTimeOnly,
		"offseason(T+365) :- offseason(T).":                      KindTimeOnly,
		"path(K, X, X) :- node(X), null(K).":                     KindNonRecursive,
		"path(K+1, X, Z) :- edge(X, Y), path(K, Y, Z).":          KindOther,
		"path(K+1, X, Y) :- path(K, X, Y).":                      KindTimeOnly,
		"happy(T, X) :- happy(T, Y), friend(X, Y).":              KindDataOnly,
		"base(X) :- node(X).":                                    KindNonRecursive,
	}
	for rule, want := range checks {
		got, ok := kinds[rule]
		if !ok {
			t.Fatalf("rule %q not found in %v", rule, kinds)
		}
		if got != want {
			t.Errorf("KindOf(%s) = %v, want %v", rule, got, want)
		}
	}
}

func TestMultiSeparable(t *testing.T) {
	ok, reason := MultiSeparable(mustProg(t, skiRules))
	if !ok {
		t.Errorf("ski rules should be multi-separable: %s", reason)
	}
	ok, reason = MultiSeparable(mustProg(t, pathRules))
	if ok {
		t.Error("path rules should not be multi-separable")
	}
	if !strings.Contains(reason, "neither time-only nor data-only") {
		t.Errorf("reason = %q", reason)
	}
	ok, reason = MultiSeparable(mustProg(t, "a(T+1, X) :- b(T, X).\nb(T+1, X) :- a(T, X)."))
	if ok {
		t.Error("mutually recursive rules should not be multi-separable")
	}
	if !strings.Contains(reason, "mutual recursion") {
		t.Errorf("reason = %q", reason)
	}
}

func TestSeparableStricter(t *testing.T) {
	// Paper: the ski example is multi-separable but NOT separable.
	ok, reason := Separable(mustProg(t, skiRules))
	if ok {
		t.Error("ski rules should not be separable in the sense of [7]")
	}
	if !strings.Contains(reason, "temporal body literals") {
		t.Errorf("reason = %q", reason)
	}
	// A single-temporal-literal program is separable.
	ok, _ = Separable(mustProg(t, "even(T+2) :- even(T)."))
	if !ok {
		t.Error("even program should be separable")
	}
}

func TestIPeriodEven(t *testing.T) {
	ip, err := IPeriod(mustProg(t, "even(T+2) :- even(T)."), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ip.P != 2 {
		t.Errorf("I-period = %v, want p=2", ip)
	}
}

func TestIPeriodLcm(t *testing.T) {
	src := `
a(T+2) :- a(T).
b(T+3) :- b(T).
`
	ip, err := IPeriod(mustProg(t, src), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ip.P != 6 {
		t.Errorf("I-period = %v, want p=6 (lcm of 2 and 3)", ip)
	}
}

func TestIPeriodDatabaseIndependence(t *testing.T) {
	// A scaled-down ski program (year length 3, jumps +2/+3) keeps the
	// Theorem 6.3 atom space tractable: g = 3, so the space is
	// plane x3 + winter x3 + offseason x3 + resort = 10 atoms.
	prog := mustProg(t, `
plane(T+3, X) :- plane(T, X), resort(X), offseason(T).
plane(T+2, X) :- plane(T, X), resort(X), winter(T).
offseason(T+3) :- offseason(T).
winter(T+3) :- winter(T).
`)
	ip, err := IPeriod(prog, &IPeriodOptions{MaxAtoms: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Verify the claimed I-period against several concrete databases,
	// including phase-rich ones (winter at every residue) that defeat
	// time-0-only skeleton seeding.
	for _, dbSrc := range []string{
		"plane(0, hunter). resort(hunter). winter(0).",
		"plane(3, hunter). plane(9, aspen). resort(hunter). resort(aspen). winter(0). offseason(2). offseason(4).",
		"resort(hunter).", // no planes at all
		"plane(0, hunter). plane(1, aspen). resort(aspen). winter(0). winter(1). winter(2).",
		"plane(0, a). plane(1, a). resort(a). winter(0). offseason(1). offseason(2).",
	} {
		db, err := parser.ParseDatabase(dbSrc)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyIPeriod(prog, db, ip, 1<<16); err != nil {
			t.Errorf("database %q: %v", dbSrc, err)
		}
	}
}

func TestIPeriodRejects(t *testing.T) {
	if _, err := IPeriod(mustProg(t, pathRules), nil); err == nil {
		t.Error("IPeriod accepted a non-multi-separable program")
	}
	if _, err := IPeriod(mustProg(t, "p(T+1, X) :- p(T, X), flag(X, on)."), nil); err == nil {
		t.Error("IPeriod accepted rule constants")
	}
	big := `
p(T+1, X, Y, Z) :- p(T, X, Y, Z), e(X, Y), e(Y, Z).
`
	if _, err := IPeriod(mustProg(t, big), &IPeriodOptions{MaxAtoms: 8}); err == nil {
		t.Error("IPeriod accepted an atom space above the cap")
	}
}

func TestCombineAndLcm(t *testing.T) {
	got, err := Combine(pp(3, 4), pp(5, 6))
	if err != nil {
		t.Fatal(err)
	}
	if got.Base != 5 || got.P != 12 {
		t.Errorf("Combine = %v", got)
	}
	if _, err := lcm(1<<30, (1<<30)+1); err == nil {
		t.Error("lcm overflow not detected")
	}
}

func TestTemporalize(t *testing.T) {
	src := `
a(X, Z) :- p(X, Y), a(Y, Z).
a(X, Y) :- p(X, Y).
`
	tp, err := Temporalize(mustProg(t, src))
	if err != nil {
		t.Fatal(err)
	}
	// 2 counting rules + 2 copy rules (a, p).
	if len(tp.Rules) != 4 {
		t.Fatalf("rules = %v", tp.Rules)
	}
	want := "a(T+1, X, Z) :- p(T, X, Y), a(T, Y, Z)."
	if got := tp.Rules[0].String(); got != want {
		t.Errorf("rule 0 = %q, want %q", got, want)
	}
	if err := ast.ValidateProgram(tp); err != nil {
		t.Errorf("temporalized program invalid: %v", err)
	}
	// Database transform.
	db, err := parser.ParseDatabase("p(x, y). p(y, z).")
	if err != nil {
		t.Fatal(err)
	}
	tdb, err := TemporalizeDB(db)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range tdb.Facts {
		if !f.Temporal || f.Time != 0 {
			t.Errorf("fact %v not at time 0", f)
		}
	}
	// Rejects temporal inputs.
	if _, err := Temporalize(mustProg(t, "q(T+1) :- q(T).")); err == nil {
		t.Error("Temporalize accepted a temporal program")
	}
	if _, err := TemporalizeDB(tdb); err == nil {
		t.Error("TemporalizeDB accepted a temporal database")
	}
}

func TestTemporalizeBoundedIsIPeriodic(t *testing.T) {
	// Transitive closure over a fixed chain: the temporalized program's
	// least model stabilizes after the closure completes (period 1).
	src := `
a(X, Z) :- p(X, Y), a(Y, Z).
a(X, Y) :- p(X, Y).
`
	tp, err := Temporalize(mustProg(t, src))
	if err != nil {
		t.Fatal(err)
	}
	db, err := parser.ParseDatabase("p(x, y). p(y, z). p(z, w).")
	if err != nil {
		t.Fatal(err)
	}
	tdb, err := TemporalizeDB(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyIPeriod(tp, tdb, pp(6, 1), 1<<12); err != nil {
		t.Errorf("temporalized closure not periodic with p=1: %v", err)
	}
}

func TestAnalyzeReports(t *testing.T) {
	rep := Analyze(mustProg(t, skiRules), AnalyzeOptions{})
	if !rep.Valid || !rep.MultiSeparable || rep.Inflationary || rep.Separable {
		t.Errorf("ski report = %+v", rep)
	}
	if !rep.Tractable() {
		t.Error("ski rules should be tractable")
	}
	out := rep.String()
	for _, want := range []string{"multi-separable:", "yes", "inflationary:", "no (witness:"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	rep2 := Analyze(mustProg(t, pathRules), AnalyzeOptions{})
	if !rep2.Inflationary || rep2.MultiSeparable {
		t.Errorf("path report = %+v", rep2)
	}
	if !rep2.Tractable() {
		t.Error("path rules should be tractable (inflationary)")
	}

	rep3 := Analyze(mustProg(t, "even(T+2) :- even(T)."), AnalyzeOptions{ComputeIPeriod: true})
	if rep3.IPeriod == nil || rep3.IPeriod.P != 2 {
		t.Errorf("even I-period = %v (%s)", rep3.IPeriod, rep3.IPeriodErr)
	}

	rep4 := Analyze(mustProg(t, "p(T, X) :- q(T+1, X)."), AnalyzeOptions{})
	if rep4.Valid {
		t.Error("non-forward program reported valid")
	}
	if !strings.Contains(rep4.String(), "invalid") {
		t.Error("invalid report misrendered")
	}
}

// pp is a shorthand period constructor for tests.
func pp(base, p int) period.Period { return period.Period{Base: base, P: p} }
