package classify

import (
	"fmt"
	"runtime"
	"sync"

	"tdd/internal/ast"
	"tdd/internal/engine"
	"tdd/internal/period"
)

// IPeriodOptions bounds the Theorem 6.3 construction.
type IPeriodOptions struct {
	// MaxAtoms caps the enumerated atom space; the construction runs
	// 2^|atoms| skeleton simulations. Default 16.
	MaxAtoms int
	// MaxWindow bounds each skeleton simulation's evaluation window.
	// Default 1 << 16.
	MaxWindow int
}

func (o *IPeriodOptions) withDefaults() IPeriodOptions {
	out := IPeriodOptions{MaxAtoms: 16, MaxWindow: 1 << 16}
	if o != nil {
		if o.MaxAtoms > 0 {
			out.MaxAtoms = o.MaxAtoms
		}
		if o.MaxWindow > 0 {
			out.MaxWindow = o.MaxWindow
		}
	}
	return out
}

// IPeriod computes a database-independent period (an I-period, Section 6)
// of a multi-separable rule set, following the proof of Theorem 6.3
// generalized to unrestricted arities as the paper sketches (the
// equivalence between constants becomes an equivalence between constant
// vectors): time-only rules are first brought to reduced form; then every
// truth assignment over the ground atoms built from a small fresh universe
// (one constant per distinct rule variable) is simulated as a skeleton
// database, and the per-skeleton periods are combined as
// (max base, lcm of periods).
//
// The returned Period has a database-relative base: for a database with
// maximum temporal depth c, (c + Base, P) is a period of the least model,
// matching the paper's (k - c, p) convention.
//
// The rules must be constant-free (as the paper assumes throughout
// Section 6); the construction errors out otherwise, as it does for
// non-multi-separable inputs or atom spaces larger than MaxAtoms.
func IPeriod(p *ast.Program, opts *IPeriodOptions) (period.Period, error) {
	o := opts.withDefaults()
	if ok, reason := MultiSeparable(p); !ok {
		return period.Period{}, fmt.Errorf("classify: not multi-separable: %s", reason)
	}
	if pred, c, found := ruleConstant(p); found {
		return period.Period{}, fmt.Errorf("classify: the I-period construction requires constant-free rules; %s uses constant %q", pred, c)
	}
	reduced, err := ast.ReduceTimeOnly(p)
	if err != nil {
		return period.Period{}, err
	}
	if err := ast.ValidateProgram(reduced); err != nil {
		return period.Period{}, err
	}

	// Universe size: one constant per distinct non-temporal variable of
	// any rule, at least the maximum predicate arity.
	r := 1
	for _, rule := range p.Rules {
		seen := make(map[string]bool)
		for _, a := range rule.Atoms() {
			for _, s := range a.Args {
				if s.IsVar {
					seen[s.Name] = true
				}
			}
		}
		if len(seen) > r {
			r = len(seen)
		}
	}
	for _, info := range p.Preds {
		if info.Arity > r {
			r = info.Arity
		}
	}
	universe := make([]string, r)
	for i := range universe {
		universe[i] = fmt.Sprintf("u$%d", i)
	}

	// Atom space over the original program's predicates (user databases
	// mention those, not the reduction's auxiliaries). As the proof of
	// Theorem 6.3 notes for semi-normal rules, skeleton databases must
	// contain tuples with temporal arguments 0..g-1 where g is the maximum
	// depth of a non-ground temporal term: a database can populate every
	// phase of a depth-g rule, which single time-0 seeds cannot reach.
	g := period.Lookback(p)
	var atoms []ast.Fact
	for _, name := range sortedPreds(p) {
		info := p.Preds[name]
		for _, tup := range tuples(universe, info.Arity) {
			if !info.Temporal {
				atoms = append(atoms, ast.Fact{Pred: name, Args: tup})
				continue
			}
			for t := 0; t < g; t++ {
				atoms = append(atoms, ast.Fact{Pred: name, Temporal: true, Time: t, Args: tup})
			}
		}
	}
	if len(atoms) > o.MaxAtoms {
		return period.Period{}, fmt.Errorf("classify: I-period atom space has %d atoms, above the cap %d (raise IPeriodOptions.MaxAtoms)", len(atoms), o.MaxAtoms)
	}

	// The 2^|atoms| skeleton simulations are independent; run them on a
	// worker pool. Combination (max base, lcm period) is associative and
	// commutative, so each worker folds locally and the results fold at
	// the end.
	nMasks := 1 << len(atoms)
	workers := runtime.GOMAXPROCS(0)
	if workers > nMasks {
		workers = nMasks
	}
	results := make(chan period.Period, workers)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := period.Period{Base: 1, P: 1}
			for mask := w; mask < nMasks; mask += workers {
				var facts []ast.Fact
				for i, f := range atoms {
					if mask&(1<<i) != 0 {
						facts = append(facts, f)
					}
				}
				db, err := ast.NewDatabase(facts)
				if err != nil {
					errs <- err
					return
				}
				e, err := engine.New(reduced.Clone(), db)
				if err != nil {
					errs <- err
					return
				}
				pp, _, err := period.Detect(e, o.MaxWindow)
				if err != nil {
					errs <- fmt.Errorf("classify: skeleton %d: %w", mask, err)
					return
				}
				local, err = Combine(local, pp)
				if err != nil {
					errs <- err
					return
				}
			}
			results <- local
		}()
	}
	wg.Wait()
	close(results)
	close(errs)
	if err := <-errs; err != nil {
		return period.Period{}, err
	}
	combined := period.Period{Base: 1, P: 1}
	for local := range results {
		var err error
		combined, err = Combine(combined, local)
		if err != nil {
			return period.Period{}, err
		}
	}
	return combined, nil
}

// Combine merges two periods into one valid for the union of the model
// families: the base is the maximum, the period the least common multiple.
func Combine(a, b period.Period) (period.Period, error) {
	base := a.Base
	if b.Base > base {
		base = b.Base
	}
	l, err := lcm(a.P, b.P)
	if err != nil {
		return period.Period{}, err
	}
	return period.Period{Base: base, P: l}, nil
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) (int, error) {
	g := gcd(a, b)
	l := a / g
	if l > 0 && b > (1<<40)/l {
		return 0, fmt.Errorf("classify: period lcm overflow (%d, %d)", a, b)
	}
	return l * b, nil
}

// sortedPreds returns the program's predicate names in sorted order.
func sortedPreds(p *ast.Program) []string {
	out := make([]string, 0, len(p.Preds))
	for name := range p.Preds {
		out = append(out, name)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// tuples enumerates universe^arity (a single empty tuple for arity 0).
func tuples(universe []string, arity int) [][]string {
	if arity == 0 {
		return [][]string{nil}
	}
	sub := tuples(universe, arity-1)
	var out [][]string
	for _, s := range sub {
		for _, u := range universe {
			tup := make([]string, 0, arity)
			tup = append(tup, s...)
			tup = append(tup, u)
			out = append(out, tup)
		}
	}
	return out
}

// VerifyIPeriod checks empirically that ip (database-relative) is a period
// of the least model of p over the given database: it detects the minimal
// period of that model and checks compatibility (the detected period must
// divide ip.P and start no later than c + ip.Base).
func VerifyIPeriod(p *ast.Program, db *ast.Database, ip period.Period, maxWindow int) error {
	e, err := engine.New(p.Clone(), db)
	if err != nil {
		return err
	}
	min, _, err := period.Detect(e, maxWindow)
	if err != nil {
		return err
	}
	c := db.MaxDepth()
	if ip.P%min.P != 0 {
		return fmt.Errorf("classify: detected period %v does not divide claimed I-period %v", min, ip)
	}
	if min.Base > c+ip.Base {
		return fmt.Errorf("classify: detected base %d exceeds claimed %d (c=%d + base=%d)", min.Base, c+ip.Base, c, ip.Base)
	}
	return nil
}
