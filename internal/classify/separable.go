package classify

import (
	"fmt"

	"tdd/internal/ast"
)

// RuleKind classifies a single rule per Section 6.
type RuleKind int

const (
	// KindNonRecursive rules do not mention their head predicate in the
	// body.
	KindNonRecursive RuleKind = iota
	// KindTimeOnly rules are recursive with identical non-temporal
	// arguments in all occurrences of the recursive predicate.
	KindTimeOnly
	// KindDataOnly rules are recursive with an identical temporal argument
	// in all temporal literals.
	KindDataOnly
	// KindOther rules are recursive but neither time-only nor data-only
	// (e.g. the path rule, which shifts both time and data).
	KindOther
)

func (k RuleKind) String() string {
	switch k {
	case KindNonRecursive:
		return "non-recursive"
	case KindTimeOnly:
		return "time-only"
	case KindDataOnly:
		return "data-only"
	}
	return "recursive (neither time-only nor data-only)"
}

// KindOf classifies a rule. A rule that is both time-only and data-only
// (e.g. p(T, x̄) :- p(T, x̄), q(T)) reports time-only.
func KindOf(r ast.Rule) RuleKind {
	if !r.Recursive() {
		return KindNonRecursive
	}
	if r.TimeOnly() {
		return KindTimeOnly
	}
	if r.DataOnly() {
		return KindDataOnly
	}
	return KindOther
}

// MultiSeparable reports whether the rule set is multi-separable
// (Section 6): mutual-recursion free, and every recursive rule is either
// time-only or data-only. When the answer is no, reason explains why.
//
// The paper states the definition for semi-normal rules, which the AST
// guarantees; note that the normalization to depth <= 1 of [6] may destroy
// multi-separability (it introduces mutual recursion through delay
// predicates), so the check is applied to the semi-normal form.
func MultiSeparable(p *ast.Program) (ok bool, reason string) {
	if !MutualRecursionFree(p) {
		for _, comp := range BuildDepGraph(p).SCCs() {
			if len(comp) > 1 {
				return false, fmt.Sprintf("mutual recursion among %v", comp)
			}
		}
	}
	for _, r := range p.Rules {
		if k := KindOf(r); k == KindOther {
			return false, fmt.Sprintf("rule %s%s is recursive but neither time-only nor data-only", r, atPos(r.Pos))
		}
	}
	return true, ""
}

// atPos renders " (line L:C)" for rules carrying a parser position, so
// classification notes point at the offending clause.
func atPos(p ast.Pos) string {
	if !p.Known() {
		return ""
	}
	return " (line " + p.String() + ")"
}

// Separable reports whether the rule set is separable in the stricter
// sense of [7] (Chomicki & Imielinski 1988), which the paper compares
// against: multi-separable, and every recursive time-only rule has at most
// one temporal literal in its body. The ski-resort example is
// multi-separable but not separable (its rules carry two temporal body
// literals: the recursive one and the season gate).
func Separable(p *ast.Program) (ok bool, reason string) {
	if ok, reason := MultiSeparable(p); !ok {
		return false, reason
	}
	for _, r := range p.Rules {
		if KindOf(r) != KindTimeOnly {
			continue
		}
		temporal := 0
		for _, a := range r.Body {
			if a.Time != nil {
				temporal++
			}
		}
		if temporal > 1 {
			return false, fmt.Sprintf("time-only rule %s%s has %d temporal body literals", r, atPos(r.Pos), temporal)
		}
	}
	return true, ""
}
