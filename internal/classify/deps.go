// Package classify implements the paper's recognizable tractable classes
// of temporal rules:
//
//   - the inflationary test of Theorem 5.2 (decidable, exact);
//   - the dependency-graph machinery (mutual recursion, levels) and the
//     syntactic classes of time-only, data-only, and multi-separable rule
//     sets of Section 6;
//   - the I-period construction of Theorems 6.3/6.5 for multi-separable
//     rule sets;
//   - the reduction of Theorem 6.2 (temporalizing a function-free Datalog
//     program into a counting TDD), used to connect boundedness with
//     I-periodicity.
package classify

import (
	"sort"

	"tdd/internal/ast"
)

// DepGraph is the predicate dependency graph of a program: an edge
// P -> Q for every rule with head predicate P and body predicate Q.
type DepGraph struct {
	Succ map[string][]string
}

// BuildDepGraph constructs the dependency graph.
func BuildDepGraph(p *ast.Program) *DepGraph {
	succ := make(map[string]map[string]bool)
	ensure := func(n string) {
		if succ[n] == nil {
			succ[n] = make(map[string]bool)
		}
	}
	for _, r := range p.Rules {
		ensure(r.Head.Pred)
		for _, a := range r.Body {
			ensure(a.Pred)
			succ[r.Head.Pred][a.Pred] = true
		}
	}
	g := &DepGraph{Succ: make(map[string][]string, len(succ))}
	for n, set := range succ {
		out := make([]string, 0, len(set))
		for m := range set {
			out = append(out, m)
		}
		sort.Strings(out)
		g.Succ[n] = out
	}
	return g
}

// SCCs returns the strongly connected components of the graph in reverse
// topological order (callees before callers), each sorted internally.
// Tarjan's algorithm, iterative to stay safe on deep programs.
func (g *DepGraph) SCCs() [][]string {
	nodes := make([]string, 0, len(g.Succ))
	for n := range g.Succ {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	index := make(map[string]int, len(nodes))
	low := make(map[string]int, len(nodes))
	onStack := make(map[string]bool, len(nodes))
	var stack []string
	var out [][]string
	next := 0

	type frame struct {
		node string
		succ []string
		i    int
	}
	for _, root := range nodes {
		if _, seen := index[root]; seen {
			continue
		}
		frames := []frame{{node: root, succ: g.Succ[root]}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.i < len(f.succ) {
				w := f.succ[f.i]
				f.i++
				if _, seen := index[w]; !seen {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{node: w, succ: g.Succ[w]})
				} else if onStack[w] && index[w] < low[f.node] {
					low[f.node] = index[w]
				}
				continue
			}
			// Pop the frame.
			v := f.node
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[v] < low[parent.node] {
					low[parent.node] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []string
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sort.Strings(comp)
				out = append(out, comp)
			}
		}
	}
	return out
}

// MutualRecursionFree reports whether the program has no mutual recursion:
// every strongly connected component of the dependency graph is a single
// predicate (self-loops — plain recursion — are allowed).
func MutualRecursionFree(p *ast.Program) bool {
	for _, comp := range BuildDepGraph(p).SCCs() {
		if len(comp) > 1 {
			return false
		}
	}
	return true
}

// RecursivePreds returns the predicates that depend on themselves (directly
// or through a cycle), sorted.
func RecursivePreds(p *ast.Program) []string {
	g := BuildDepGraph(p)
	set := make(map[string]bool)
	for _, comp := range g.SCCs() {
		if len(comp) > 1 {
			for _, n := range comp {
				set[n] = true
			}
			continue
		}
		n := comp[0]
		for _, m := range g.Succ[n] {
			if m == n {
				set[n] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Levels assigns a level number to every predicate of a mutual-recursion-
// free program: EDB predicates get level 0; a derived predicate's level is
// 1 + the maximum level of the non-self predicates it depends on. Used by
// the Theorem 6.5 induction. Returns ok=false if the program has mutual
// recursion.
func Levels(p *ast.Program) (map[string]int, bool) {
	if !MutualRecursionFree(p) {
		return nil, false
	}
	g := BuildDepGraph(p)
	derived := p.DerivedSet()
	levels := make(map[string]int, len(g.Succ))
	// SCCs come callees-first, so one pass suffices.
	for _, comp := range g.SCCs() {
		n := comp[0]
		if !derived[n] {
			levels[n] = 0
			continue
		}
		lvl := 1
		for _, m := range g.Succ[n] {
			if m == n {
				continue
			}
			if l := levels[m] + 1; l > lvl {
				lvl = l
			}
		}
		levels[n] = lvl
	}
	return levels, true
}
