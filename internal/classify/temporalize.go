package classify

import (
	"fmt"

	"tdd/internal/ast"
)

// Temporalize performs the reduction of Theorem 6.2: it turns a
// function-free Datalog program S into a set of temporal rules S' that
// counts the iterations of S. Every rule
//
//	a(X, Z) :- p(X, Y), a(Y, Z).
//
// becomes
//
//	a(T+1, X, Z) :- p(T, X, Y), a(T, Y, Z).
//
// and every predicate receives a copying rule
//
//	a(T+1, X, Y) :- a(T, X, Y).
//
// S is strongly k-bounded iff S' is I-periodic with I-period (k, 1) — the
// reduction by which the paper shows testing I-periodicity undecidable
// (boundedness detection is undecidable, Gaifman et al. 1987).
func Temporalize(p *ast.Program) (*ast.Program, error) {
	for name, info := range p.Preds {
		if info.Temporal {
			return nil, fmt.Errorf("classify: Temporalize input must be function-free Datalog; %s is temporal", name)
		}
	}
	tv := ast.TemporalTerm{Var: "T"}
	tvNext := ast.TemporalTerm{Var: "T", Depth: 1}
	var out []ast.Rule
	for _, r := range p.Rules {
		nr := ast.Rule{Head: ast.TemporalAtom(r.Head.Pred, tvNext, append([]ast.Symbol(nil), r.Head.Args...)...)}
		for _, a := range r.Body {
			nr.Body = append(nr.Body, ast.TemporalAtom(a.Pred, tv, append([]ast.Symbol(nil), a.Args...)...))
		}
		out = append(out, nr)
	}
	for _, name := range sortedPreds(p) {
		info := p.Preds[name]
		args := make([]ast.Symbol, info.Arity)
		for i := range args {
			args[i] = ast.Var(fmt.Sprintf("X%d", i))
		}
		out = append(out, ast.Rule{
			Head: ast.TemporalAtom(name, tvNext, args...),
			Body: []ast.Atom{ast.TemporalAtom(name, tv, args...)},
		})
	}
	return ast.NewProgram(out)
}

// TemporalizeDB extends every tuple of a function-free database with a
// temporal argument equal to 0, completing the Theorem 6.2 reduction.
func TemporalizeDB(d *ast.Database) (*ast.Database, error) {
	facts := make([]ast.Fact, len(d.Facts))
	for i, f := range d.Facts {
		if f.Temporal {
			return nil, fmt.Errorf("classify: TemporalizeDB input must be function-free; %s is temporal", f)
		}
		facts[i] = ast.Fact{Pred: f.Pred, Temporal: true, Time: 0, Args: append([]string(nil), f.Args...)}
	}
	return ast.NewDatabase(facts)
}
