package classify

import (
	"fmt"

	"tdd/internal/ast"
	"tdd/internal/engine"
)

// Inflationary decides whether the rule set is inflationary (Section 5):
// for every database D, every derived temporal predicate P, every instant
// t and tuple x̄, if P(t, x̄) holds in the least model then so does
// P(t+1, x̄).
//
// The decision procedure is Theorem 5.2's: Z is inflationary iff for every
// derived temporal predicate P of non-temporal arity l,
//
//	P(1, a1, ..., al)  ∈  least model of Z ∧ {P(0, a1, ..., al)}
//
// where a1..al are pairwise-distinct fresh constants. The proof's
// homomorphism argument requires the rules to be constant-free (the paper
// assumes rules contain no ground terms); Inflationary returns an error
// for rule sets with non-temporal constants.
func Inflationary(p *ast.Program) (bool, error) {
	ok, _, err := InflationaryWitness(p)
	return ok, err
}

// InflationaryWitness is Inflationary plus, when the answer is false, the
// name of a derived temporal predicate violating the condition.
func InflationaryWitness(p *ast.Program) (bool, string, error) {
	if pred, c, found := ruleConstant(p); found {
		return false, "", fmt.Errorf("classify: the inflationary test requires constant-free rules; %s uses constant %q", pred, c)
	}
	if err := ast.ValidateProgram(p); err != nil {
		return false, "", err
	}
	for _, name := range p.Derived() {
		info := p.Preds[name]
		if !info.Temporal {
			continue
		}
		args := make([]string, info.Arity)
		for i := range args {
			args[i] = fmt.Sprintf("a$%d", i)
		}
		db, err := ast.NewDatabase([]ast.Fact{{Pred: name, Temporal: true, Time: 0, Args: args}})
		if err != nil {
			return false, "", err
		}
		e, err := engine.New(p.Clone(), db)
		if err != nil {
			return false, "", err
		}
		e.EnsureWindow(1)
		if !e.Holds(ast.Fact{Pred: name, Temporal: true, Time: 1, Args: args}) {
			return false, name, nil
		}
	}
	return true, "", nil
}

// ruleConstant finds a non-temporal constant inside a rule, if any.
func ruleConstant(p *ast.Program) (pred, c string, found bool) {
	for _, r := range p.Rules {
		for _, a := range r.Atoms() {
			for _, s := range a.Args {
				if !s.IsVar {
					return a.Pred, s.Name, true
				}
			}
		}
	}
	return "", "", false
}
