package classify

// Grid verification of the Theorem 6.3 construction: enumerate a family
// of small multi-separable programs (a base cycle gating an upper cycle,
// optionally with a data-only layer), compute each program's I-period from
// skeletons alone, and verify it against a battery of concrete databases —
// including phase-rich ones. This is the adversarial test for the
// generalization of the proof to semi-normal rules and unrestricted
// arities.

import (
	"fmt"
	"math/rand"
	"testing"

	"tdd/internal/parser"
)

func TestIPeriodGridVerification(t *testing.T) {
	for d1 := 1; d1 <= 3; d1++ {
		for d2 := 1; d2 <= 3; d2++ {
			for _, gated := range []bool{false, true} {
				name := fmt.Sprintf("d1=%d/d2=%d/gated=%v", d1, d2, gated)
				t.Run(name, func(t *testing.T) {
					src := fmt.Sprintf("base(T+%d) :- base(T).\n", d1)
					if gated {
						src += fmt.Sprintf("upper(T+%d, X) :- upper(T, X), base(T).\n", d2)
					} else {
						src += fmt.Sprintf("upper(T+%d, X) :- upper(T, X).\n", d2)
					}
					prog := mustProg(t, src)
					if ok, reason := MultiSeparable(prog); !ok {
						t.Fatalf("grid program not multi-separable: %s", reason)
					}
					ip, err := IPeriod(prog, &IPeriodOptions{MaxAtoms: 14})
					if err != nil {
						t.Fatalf("IPeriod: %v", err)
					}
					// Batteries of databases: empty, single seeds, and
					// phase-rich random fills across several seeds.
					dbs := []string{
						"",
						"base(0).",
						"upper(0, a).",
						"base(0). upper(0, a).",
						"base(1). upper(2, a). upper(0, b).",
					}
					rng := rand.New(rand.NewSource(int64(d1*100 + d2*10)))
					for k := 0; k < 4; k++ {
						var b []byte
						for i := 0; i <= d1+d2; i++ {
							if rng.Intn(2) == 0 {
								b = append(b, fmt.Sprintf("base(%d).\n", i)...)
							}
							if rng.Intn(2) == 0 {
								b = append(b, fmt.Sprintf("upper(%d, c%d).\n", i, rng.Intn(2))...)
							}
						}
						dbs = append(dbs, string(b))
					}
					for _, dbSrc := range dbs {
						db, err := parser.ParseDatabase(dbSrc)
						if err != nil {
							t.Fatal(err)
						}
						// The @temporal directives are unnecessary because
						// every fact carries an integer first argument;
						// empty databases are fine too.
						if err := VerifyIPeriod(prog, db, ip, 1<<14); err != nil {
							t.Errorf("db %q: %v (claimed I-period %v)", dbSrc, err, ip)
						}
					}
				})
			}
		}
	}
}

func TestIPeriodGridWithDataOnlyLayer(t *testing.T) {
	// A data-only closure layered on the temporal cycles: spread
	// propagates within a state along link edges.
	src := `
base(T+2) :- base(T).
spread(T, X) :- spread(T, Y), link(X, Y).
spread(T, X) :- base(T), seed(X).
`
	prog := mustProg(t, src)
	if ok, reason := MultiSeparable(prog); !ok {
		t.Fatalf("not multi-separable: %s", reason)
	}
	ip, err := IPeriod(prog, &IPeriodOptions{MaxAtoms: 18, MaxWindow: 1 << 12})
	if err != nil {
		t.Fatalf("IPeriod: %v", err)
	}
	for _, dbSrc := range []string{
		"base(0). seed(a). link(b, a).",
		"base(1). seed(a). link(b, a). link(c, b). link(d, c).",
		"base(0). base(1). seed(a). seed(b). link(c, a). link(c, b).",
	} {
		db, err := parser.ParseDatabase(dbSrc)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyIPeriod(prog, db, ip, 1<<14); err != nil {
			t.Errorf("db %q: %v (claimed I-period %v)", dbSrc, err, ip)
		}
	}
}
