package classify

import (
	"fmt"

	"tdd/internal/ast"
	"tdd/internal/engine"
	"tdd/internal/period"
)

// TimeOnlyApproximation is the constructive direction of Theorem 6.4: for
// an I-periodic rule set Z with I-period (b, p) — b database-relative, as
// returned by IPeriod — and a concrete database D, it builds the
// mutual-recursion-free, reduced time-only rule set
//
//	Z1 = { P(T+p, x̄) :- P(T, x̄)  :  P a temporal predicate of Z }
//
// and a database D1 (the least model's facts out to the end of the first
// full period) such that the least models of Z ∧ D and Z1 ∧ D1 coincide.
// The paper uses this to show that I-periodic and time-only rules are
// "very closely related": D1 differs from D only by polynomially many
// materialized tuples, and its biggest temporal term exceeds D's by a
// database-independent constant.
func TimeOnlyApproximation(z *ast.Program, db *ast.Database, ip period.Period) (*ast.Program, *ast.Database, error) {
	e, err := engine.New(z.Clone(), db)
	if err != nil {
		return nil, nil, err
	}
	c := db.MaxDepth()
	horizon := c + ip.Base + ip.P - 1
	e.EnsureWindow(horizon)

	var rules []ast.Rule
	for _, name := range sortedPreds(z) {
		info := z.Preds[name]
		if !info.Temporal {
			continue
		}
		args := make([]ast.Symbol, info.Arity)
		for i := range args {
			args[i] = ast.Var(fmt.Sprintf("X%d", i))
		}
		rules = append(rules, ast.Rule{
			Head: ast.TemporalAtom(name, ast.TemporalTerm{Var: "T", Depth: ip.P}, args...),
			Body: []ast.Atom{ast.TemporalAtom(name, ast.TemporalTerm{Var: "T"}, args...)},
		})
	}
	z1, err := ast.NewProgram(rules)
	if err != nil {
		return nil, nil, err
	}

	var facts []ast.Fact
	facts = append(facts, e.Store().NonTemporalFacts()...)
	for t := 0; t <= horizon; t++ {
		facts = append(facts, e.Store().Snapshot(t)...)
	}
	// Database facts beyond the horizon (if any) are kept verbatim.
	for _, f := range db.Facts {
		if f.Temporal && f.Time > horizon {
			facts = append(facts, f)
		}
	}
	d1, err := ast.NewDatabase(facts)
	if err != nil {
		return nil, nil, err
	}
	return z1, d1, nil
}
