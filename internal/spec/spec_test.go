package spec

import (
	"strings"
	"testing"

	"tdd/internal/ast"
	"tdd/internal/engine"
	"tdd/internal/parser"
)

func mustSpec(t *testing.T, src string) *Spec {
	t.Helper()
	prog, db, err := parser.ParseUnit(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	e, err := engine.New(prog, db)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	s, err := Compute(e, 1<<20)
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	return s
}

func tfact(pred string, time int, args ...string) ast.Fact {
	return ast.Fact{Pred: pred, Temporal: true, Time: time, Args: args}
}

func TestEvenSpec(t *testing.T) {
	// The paper's worked example: even(T+2) :- even(T). even(0).
	// Our minimal base is 1 (we require the base beyond the database
	// depth), so T = {0, 1, 2} and W = {3 -> 1}; the paper's hand-built
	// T = {0, 1}, W = {2 -> 0} is the same model rendered with base 0.
	s := mustSpec(t, "even(T+2) :- even(T).\neven(0).")
	if s.Period.P != 2 {
		t.Fatalf("period = %v", s.Period)
	}
	// Query even(4): rewrite to representative, find it in B.
	if !s.HoldsFact(tfact("even", 4)) {
		t.Error("even(4) should hold")
	}
	// Query even(3): rewrites to even(1), not in B.
	if s.HoldsFact(tfact("even", 3)) {
		t.Error("even(3) should not hold")
	}
	if !s.HoldsFact(tfact("even", 1000000)) {
		t.Error("even(1000000) should hold")
	}
	if s.HoldsFact(tfact("even", 999999)) {
		t.Error("even(999999) should not hold")
	}
}

func TestRewriteNormalForms(t *testing.T) {
	s := mustSpec(t, "even(T+2) :- even(T).\neven(0).")
	reps := s.Representatives()
	if len(reps) != s.NumRepresentatives() {
		t.Fatal("representative count mismatch")
	}
	for _, r := range reps {
		if s.Rewrite(r) != r {
			t.Errorf("representative %d not a normal form", r)
		}
	}
	for _, tt := range []int{0, 1, 5, 17, 100, 12345} {
		r := s.Rewrite(tt)
		if r >= s.NumRepresentatives() {
			t.Errorf("Rewrite(%d) = %d not a representative", tt, r)
		}
		if s.Rewrite(r) != r {
			t.Errorf("Rewrite not idempotent at %d", tt)
		}
	}
}

func TestPrimaryDatabase(t *testing.T) {
	s := mustSpec(t, "even(T+2) :- even(T).\neven(0).\nlabel(x).")
	b := s.PrimaryDatabase()
	// B: label(x), even(0), even(2) (representatives are 0,1,2).
	want := []string{"label(x)", "even(0, )", "even(2, )"}
	_ = want
	if len(b) != 3 {
		t.Fatalf("B = %v", b)
	}
	if b[0].Pred != "label" {
		t.Errorf("non-temporal part first, got %v", b[0])
	}
	reps, facts := s.Size()
	if reps != 3 || facts != 3 {
		t.Errorf("Size = (%d, %d), want (3, 3)", reps, facts)
	}
}

func TestSpecString(t *testing.T) {
	s := mustSpec(t, "even(T+2) :- even(T).\neven(0).")
	out := s.String()
	for _, want := range []string{"T = {0..2}", "W = {3 -> 1}", "even(0)", "even(2)"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}

func TestSpecMatchesDirectEvaluation(t *testing.T) {
	// Invariance on ground atomic queries: the specification and the
	// directly evaluated window agree everywhere we can afford to check.
	src := `
plane(T+7, X) :- plane(T, X), resort(X), offseason(T).
plane(T+2, X) :- plane(T, X), resort(X), winter(T).
offseason(T+9) :- offseason(T).
winter(T+9) :- winter(T).
winter(0). winter(1). winter(2).
offseason(3). offseason(4). offseason(5). offseason(6). offseason(7). offseason(8).
resort(hunter). resort(aspen).
plane(0, hunter).
plane(5, aspen).
`
	s := mustSpec(t, src)
	prog, db, err := parser.ParseUnit(src)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := engine.New(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	const m = 400
	direct.EnsureWindow(m)
	for _, x := range []string{"hunter", "aspen"} {
		for tm := 0; tm <= m; tm++ {
			f := tfact("plane", tm, x)
			if got, want := s.HoldsFact(f), direct.Holds(f); got != want {
				t.Fatalf("plane(%d, %s): spec=%v direct=%v (period %v)", tm, x, got, want, s.Period)
			}
		}
	}
}

func TestRewriteSystemMatchesPeriodCanonical(t *testing.T) {
	s := mustSpec(t, "even(T+2) :- even(T).\neven(0).\nodd(T+2) :- odd(T).\nodd(1).")
	w := s.RewriteSystem()
	if len(w.Rules()) != 1 {
		t.Fatalf("W = %v, want a single rule", w)
	}
	for tm := 0; tm < 500; tm++ {
		if w.Normalize(tm) != s.Period.Canonical(tm) {
			t.Fatalf("W and period canonicalization disagree at %d", tm)
		}
	}
	if !w.ConfluentUpTo(200) {
		t.Error("single-rule W must be confluent")
	}
}
