// Package spec implements relational specifications (Section 3.3): finite
// representations S = (T, B, W) of the possibly infinite least model of a
// temporal deductive database.
//
//   - T is the finite set of representative ground temporal terms
//     {0, 1, ..., b+p-1} where (b, p) is a (minimal) verified period of the
//     least model;
//   - B, the primary database, is the union of the model's snapshots at the
//     representative terms together with its non-temporal part;
//   - W is the single ground rewrite rule  b+p -> b, applied as
//     t -> t-p while t >= b+p, whose normal forms are exactly T.
//
// Every temporal query is invariant with respect to relational
// specifications (Proposition 3.1), so a query over the infinite model can
// be answered over B after rewriting ground temporal terms to their
// representatives.
//
// Compute works off whatever evaluation schedule the passed evaluator is
// configured with: under engine.SetParallelism the window grows via the
// parallel worker-pool sweeps, and because that schedule computes the
// same least model, the certified period and the specification are
// identical to the sequential ones (see internal/randgen's differential
// battery).
package spec

import (
	"fmt"
	"strings"

	"tdd/internal/ast"
	"tdd/internal/engine"
	"tdd/internal/period"
	"tdd/internal/rewrite"
)

// Spec is a computed relational specification.
type Spec struct {
	// Period is the verified period (b, p); the rewrite system W contains
	// the single rule Base+P -> Base.
	Period period.Period
	w      *rewrite.System
	eval   *engine.Evaluator
}

// Compute evaluates the TDD far enough to certify a minimal period and
// returns the relational specification. maxWindow bounds the evaluation
// window; see period.Detect. When the evaluator carries a trace, the two
// phases are recorded as certify-period (with the engine's fixpoint
// spans nested inside) and spec-construct.
func Compute(e *engine.Evaluator, maxWindow int) (*Spec, error) {
	tr := e.Trace()
	sp := tr.Begin("certify-period")
	p, st, err := period.Detect(e, maxWindow)
	if err != nil {
		sp.End()
		return nil, err
	}
	sp.Add("window", int64(st.Window))
	sp.Add("grown", int64(st.Grown))
	sp.Add("base", int64(p.Base))
	sp.Add("p", int64(p.P))
	sp.End()
	sp = tr.Begin("spec-construct")
	defer sp.End()
	w, err := rewrite.New(rewrite.Rule{LHS: p.Base + p.P, RHS: p.Base})
	if err != nil {
		return nil, err
	}
	sp.Add("representatives", int64(p.Base+p.P))
	return &Spec{Period: p, w: w, eval: e}, nil
}

// Rewrite returns the canonical representative of the ground temporal term
// t: W is applied until no rewriting is applicable.
func (s *Spec) Rewrite(t int) int { return s.w.Normalize(t) }

// RewriteSystem returns W, the specification's ground rewrite system.
func (s *Spec) RewriteSystem() *rewrite.System { return s.w }

// Representatives returns T, the representative terms 0..b+p-1.
func (s *Spec) Representatives() []int {
	out := make([]int, s.Period.Base+s.Period.P)
	for i := range out {
		out[i] = i
	}
	return out
}

// NumRepresentatives returns |T| = b + p.
func (s *Spec) NumRepresentatives() int { return s.Period.Base + s.Period.P }

// HoldsFact answers a ground atomic query: the temporal argument is
// rewritten to its representative and looked up in the primary database.
// Non-temporal atoms are looked up in the non-temporal part.
func (s *Spec) HoldsFact(f ast.Fact) bool {
	if f.Temporal {
		f.Time = s.Rewrite(f.Time)
	}
	return s.eval.Holds(f)
}

// TemporalDomain returns the representatives; temporal quantifiers in
// queries range over it (Section 3.3 interprets temporal quantifiers over
// representative terms).
func (s *Spec) TemporalDomain() []int { return s.Representatives() }

// ConstantDomain returns the active domain of non-temporal constants.
func (s *Spec) ConstantDomain() []string { return s.eval.Store().Constants() }

// PrimaryDatabase returns B as sorted facts: snapshots at every
// representative plus the non-temporal part.
func (s *Spec) PrimaryDatabase() []ast.Fact {
	var out []ast.Fact
	out = append(out, s.eval.Store().NonTemporalFacts()...)
	for _, t := range s.Representatives() {
		out = append(out, s.eval.Store().Snapshot(t)...)
	}
	ast.SortFacts(out)
	return out
}

// Size returns (|T|, |B|): the paper's measure of specification size.
func (s *Spec) Size() (reps, facts int) {
	reps = s.NumRepresentatives()
	facts = s.eval.Store().NonTemporalCount()
	for _, t := range s.Representatives() {
		facts += s.eval.Store().StateSize(t)
	}
	return reps, facts
}

// String renders the specification in the paper's (T, B, W) notation.
func (s *Spec) String() string {
	var b strings.Builder
	reps, facts := s.Size()
	fmt.Fprintf(&b, "T = {0..%d}  (%d representative terms)\n", reps-1, reps)
	fmt.Fprintf(&b, "W = %s\n", s.w)
	fmt.Fprintf(&b, "B = (%d facts)\n", facts)
	for _, f := range s.PrimaryDatabase() {
		fmt.Fprintf(&b, "  %s.\n", f)
	}
	return b.String()
}

// Evaluator exposes the underlying evaluator (window already covers the
// representatives).
func (s *Spec) Evaluator() *engine.Evaluator { return s.eval }
