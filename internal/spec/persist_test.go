package spec

import (
	"strings"
	"testing"

	"tdd/internal/ast"
	"tdd/internal/parser"
	"tdd/internal/query"
)

const persistSki = `
plane(T+7, X) :- plane(T, X), resort(X), offseason(T).
plane(T+2, X) :- plane(T, X), resort(X), winter(T).
offseason(T+9) :- offseason(T).
winter(T+9) :- winter(T).
winter(0..2).
offseason(3..8).
resort(hunter).
plane(0, hunter).
`

func exportImport(t *testing.T, src string) (*Spec, *Loaded) {
	t.Helper()
	s := mustSpec(t, src)
	prog, db, err := parser.ParseUnit(src)
	if err != nil {
		t.Fatal(err)
	}
	preds := make(map[string]ast.PredInfo)
	for k, v := range prog.Preds {
		preds[k] = v
	}
	for k, v := range db.Preds {
		preds[k] = v
	}
	data, err := s.Export(preds)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Import(data)
	if err != nil {
		t.Fatal(err)
	}
	return s, l
}

func TestExportImportRoundTrip(t *testing.T) {
	s, l := exportImport(t, persistSki)
	if l.Period != s.Period {
		t.Fatalf("period %v vs %v", l.Period, s.Period)
	}
	// Every ground atomic query agrees between the live spec and the
	// loaded one, far beyond the representative window.
	for tm := 0; tm <= 3*(s.Period.Base+s.Period.P); tm++ {
		f := tfact("plane", tm, "hunter")
		if s.HoldsFact(f) != l.HoldsFact(f) {
			t.Fatalf("disagreement at plane(%d, hunter)", tm)
		}
		g := ast.Fact{Pred: "winter", Temporal: true, Time: tm}
		if s.HoldsFact(g) != l.HoldsFact(g) {
			t.Fatalf("disagreement at winter(%d)", tm)
		}
	}
	// Non-temporal part survives too.
	if !l.HoldsFact(ast.Fact{Pred: "resort", Args: []string{"hunter"}}) {
		t.Error("resort(hunter) lost")
	}
}

func TestLoadedAnswersQueries(t *testing.T) {
	_, l := exportImport(t, persistSki)
	q, err := parser.ParseQuery("exists T (plane(T, hunter) & winter(T))", l.Preds())
	if err != nil {
		t.Fatal(err)
	}
	got, err := query.Eval(l, q)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("expected a winter plane day")
	}
	open, err := parser.ParseQuery("plane(T, X)", l.Preds())
	if err != nil {
		t.Fatal(err)
	}
	ans, err := query.Answers(l, open)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) == 0 {
		t.Error("no answers from loaded specification")
	}
	for _, a := range ans {
		if a.NonTemporal["X"] != "hunter" {
			t.Errorf("unexpected answer %v", a)
		}
	}
}

func TestImportRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":        "{",
		"bad version":     `{"version": 99, "base": 1, "period": 2}`,
		"zero period":     `{"version": 1, "base": 1, "period": 0}`,
		"negative base":   `{"version": 1, "base": -1, "period": 2}`,
		"fact beyond |T|": `{"version": 1, "base": 1, "period": 2, "facts": [{"Pred": "p", "Temporal": true, "Time": 9}]}`,
	}
	for name, data := range cases {
		if _, err := Import([]byte(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestExportIsReadableJSON(t *testing.T) {
	s := mustSpec(t, "even(T+2) :- even(T).\neven(0).")
	data, err := s.Export(map[string]ast.PredInfo{"even": {Name: "even", Temporal: true}})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"version"`, `"base"`, `"period"`, `"even"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("missing %s in export:\n%s", want, data)
		}
	}
}
