package spec

import (
	"encoding/json"
	"fmt"
	"sort"

	"tdd/internal/ast"
	"tdd/internal/engine"
	"tdd/internal/period"
	"tdd/internal/rewrite"
)

// Portable is the serialized form of a relational specification: the
// period (hence W), the primary database B, and the predicate signatures
// needed to type queries. It is a complete, stand-alone representation of
// the infinite least model — the point of Section 3.3 — so a consumer can
// answer every temporal query without the rules, the database, or any
// re-evaluation.
type Portable struct {
	Version int                     `json:"version"`
	Base    int                     `json:"base"`
	Period  int                     `json:"period"`
	Preds   map[string]ast.PredInfo `json:"preds"`
	Facts   []ast.Fact              `json:"facts"`
}

// portableVersion guards the wire format.
const portableVersion = 1

// Export serializes the specification. The preds map (usually the
// program's plus the database's) rides along so query parsers can
// type-check against the loaded form.
func (s *Spec) Export(preds map[string]ast.PredInfo) ([]byte, error) {
	p := Portable{
		Version: portableVersion,
		Base:    s.Period.Base,
		Period:  s.Period.P,
		Preds:   preds,
		Facts:   s.PrimaryDatabase(),
	}
	return json.MarshalIndent(p, "", " ")
}

// Loaded is a deserialized relational specification: a finite structure
// that answers temporal queries exactly like the Spec it was exported
// from (it implements query.Structure).
type Loaded struct {
	Period period.Period
	preds  map[string]ast.PredInfo
	w      *rewrite.System
	store  *engine.Store
	consts []string
}

// Import deserializes a specification exported by Export.
func Import(data []byte) (*Loaded, error) {
	var p Portable
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	if p.Version != portableVersion {
		return nil, fmt.Errorf("spec: unsupported specification version %d (want %d)", p.Version, portableVersion)
	}
	if p.Period < 1 || p.Base < 0 {
		return nil, fmt.Errorf("spec: malformed period (b=%d, p=%d)", p.Base, p.Period)
	}
	w, err := rewrite.New(rewrite.Rule{LHS: p.Base + p.Period, RHS: p.Base})
	if err != nil {
		return nil, err
	}
	l := &Loaded{
		Period: period.Period{Base: p.Base, P: p.Period},
		preds:  p.Preds,
		w:      w,
		store:  engine.NewStore(),
	}
	constSet := make(map[string]bool)
	for _, f := range p.Facts {
		if f.Temporal && f.Time >= p.Base+p.Period {
			return nil, fmt.Errorf("spec: fact %s beyond the representatives", f)
		}
		l.store.Insert(f)
		for _, c := range f.Args {
			constSet[c] = true
		}
	}
	for c := range constSet {
		l.consts = append(l.consts, c)
	}
	sort.Strings(l.consts)
	return l, nil
}

// Preds returns the predicate signatures for query typing.
func (l *Loaded) Preds() map[string]ast.PredInfo { return l.preds }

// HoldsFact implements query.Structure: rewrite, then look up in B.
func (l *Loaded) HoldsFact(f ast.Fact) bool {
	if f.Temporal {
		f.Time = l.w.Normalize(f.Time)
	}
	return l.store.Has(f)
}

// TemporalDomain implements query.Structure: the representative terms.
func (l *Loaded) TemporalDomain() []int {
	out := make([]int, l.Period.Base+l.Period.P)
	for i := range out {
		out[i] = i
	}
	return out
}

// ConstantDomain implements query.Structure.
func (l *Loaded) ConstantDomain() []string { return l.consts }
