package wal

import (
	"bytes"
	"testing"
)

// FuzzWALDecode drives the record decoder with arbitrary bytes. The
// decoder is the trust boundary of recovery — it reads whatever a crash
// (or a corrupted disk) left behind — so it must never panic, never
// over-allocate on a forged length header, and must classify every
// failure as a positioned torn-tail or corruption error while still
// returning the good prefix.
//
// The seed corpus covers valid logs, truncations, and bit flips; the
// fuzzer mutates from there.
func FuzzWALDecode(f *testing.F) {
	base := testBase()
	recs := chain(0, base.ID, "odd(1).", "odd(3).\nodd(5).", "p(0, a).\nq(b).")
	var valid bytes.Buffer
	for _, r := range recs {
		b, err := encodeRecord(r)
		if err != nil {
			f.Fatal(err)
		}
		valid.Write(b)
	}
	f.Add([]byte(nil))
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:valid.Len()-5]) // torn tail
	f.Add(valid.Bytes()[3:])             // desynced start
	flipped := append([]byte(nil), valid.Bytes()...)
	flipped[headerBytes+1] ^= 0x10
	f.Add(flipped)                                                  // checksum failure
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4, 5})            // forged huge length
	f.Add([]byte{0, 0, 0, 2, 0, 0, 0, 0, '{', '}'})                 // bad checksum on tiny payload
	f.Add(append([]byte{0, 0, 0, 0, 0, 0, 0, 0}, valid.Bytes()...)) // zero-length record prefix

	f.Fuzz(func(t *testing.T, data []byte) {
		records, good, err := DecodeRecords(bytes.NewReader(data))
		if good < 0 || good > int64(len(data)) {
			t.Fatalf("good offset %d outside [0, %d]", good, len(data))
		}
		if err != nil {
			ce, ok := err.(*CorruptError)
			if !ok {
				t.Fatalf("decode error is not a *CorruptError: %v", err)
			}
			if ce.Offset != good {
				t.Fatalf("error offset %d != good prefix end %d", ce.Offset, good)
			}
			if ce.Error() == "" {
				t.Fatal("empty error message")
			}
		}
		// The good prefix must re-decode to exactly the same records with
		// no error: decode is deterministic and prefix-closed.
		again, good2, err2 := DecodeRecords(bytes.NewReader(data[:good]))
		if err2 != nil || good2 != good || len(again) != len(records) {
			t.Fatalf("good prefix does not round-trip: %d/%d records, good %d/%d, err %v",
				len(again), len(records), good2, good, err2)
		}
		// Re-encoding every decoded record must reproduce the prefix
		// byte-for-byte (the format has one canonical encoding per record
		// modulo JSON field order, so compare via a decode of the
		// re-encoding instead of raw bytes).
		var re bytes.Buffer
		for _, r := range records {
			b, err := encodeRecord(r)
			if err != nil {
				t.Fatalf("re-encoding decoded record: %v", err)
			}
			re.Write(b)
		}
		third, _, err3 := DecodeRecords(bytes.NewReader(re.Bytes()))
		if err3 != nil || len(third) != len(records) {
			t.Fatalf("re-encoded records do not decode: %v", err3)
		}
		for i := range records {
			if third[i] != records[i] {
				t.Fatalf("record %d mutated through encode/decode: %+v != %+v", i, third[i], records[i])
			}
		}
	})
}
