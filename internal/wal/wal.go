package wal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Policy selects when appended records are fsynced to stable storage.
type Policy int

const (
	// FsyncAlways syncs inside every Append: a batch is acknowledged only
	// once durable. The safest and slowest policy.
	FsyncAlways Policy = iota
	// FsyncInterval syncs dirty logs on a background ticker (and on
	// Close): a crash can lose up to one interval of acknowledged batches,
	// never tear one.
	FsyncInterval
	// FsyncOff leaves syncing to the OS (and Close). Crash loss is
	// unbounded; tearing is still repaired by recovery truncation.
	FsyncOff
)

// ParsePolicy maps the tddserve -fsync flag values.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or off)", s)
}

// Options configures a Store.
type Options struct {
	// Policy selects the fsync discipline (default FsyncAlways).
	Policy Policy
	// Interval is the background sync period for FsyncInterval
	// (default 100ms).
	Interval time.Duration
	// FsyncObserver, if non-nil, receives the latency of every fsync —
	// the server feeds its fsync histogram with it.
	FsyncObserver func(time.Duration)
}

// Store is the root of a data directory: one Log per program, a shared
// fsync policy, and the background interval-sync loop. Safe for
// concurrent use.
type Store struct {
	dir  string
	opts Options

	mu     sync.Mutex
	logs   map[string]*Log // guarded-by: mu
	closed bool            // guarded-by: mu
	stop   chan struct{}
	done   chan struct{}
}

// Open prepares dir (creating programs/ if needed) and starts the
// interval-sync loop when the policy asks for one. Call Recover before
// creating new logs so existing programs are loaded first.
func Open(dir string, opts Options) (*Store, error) {
	if opts.Interval <= 0 {
		opts.Interval = 100 * time.Millisecond
	}
	if err := os.MkdirAll(filepath.Join(dir, "programs"), 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:  dir,
		opts: opts,
		logs: make(map[string]*Log),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if opts.Policy == FsyncInterval {
		go s.syncLoop()
	} else {
		close(s.done)
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) syncLoop() {
	defer close(s.done)
	t := time.NewTicker(s.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			for _, l := range s.snapshotLogs() {
				l.Sync() //nolint:errcheck // surfaced on the next append
			}
		}
	}
}

// snapshotLogs copies the live log set so syncing happens outside mu.
func (s *Store) snapshotLogs() []*Log {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Log, 0, len(s.logs))
	for _, l := range s.logs {
		out = append(out, l)
	}
	return out
}

// Recovered is one program reconstructed from disk: its base sources and
// the full verified record history (snapshot records plus the live log
// tail). TornTail reports that an incomplete final record — a crash
// mid-append — was dropped and the log truncated back to the last good
// boundary.
type Recovered struct {
	Base     Base
	Records  []Record
	Seq      uint64
	Rev      string
	TornTail bool
}

// Recover scans programs/, verifies every program's chain, repairs torn
// tails, and reopens each log for appending. It must run before Create
// so prior history is never shadowed. Mid-log corruption (a checksum
// failure before the tail) fails recovery for the whole store: durable
// data that cannot be trusted should stop the boot loudly, not silently
// shrink.
func (s *Store) Recover() ([]Recovered, error) {
	root := filepath.Join(s.dir, "programs")
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	var out []Recovered
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		rec, err := s.recoverProgram(ent.Name())
		if err != nil {
			return nil, fmt.Errorf("recovering program %s: %w", ent.Name(), err)
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Base.ID < out[j].Base.ID })
	return out, nil
}

func (s *Store) recoverProgram(id string) (Recovered, error) {
	dir := filepath.Join(s.dir, "programs", id)
	var base Base
	if err := readJSON(filepath.Join(dir, "base.json"), &base); err != nil {
		return Recovered{}, fmt.Errorf("reading base: %w", err)
	}
	if base.ID != id {
		return Recovered{}, fmt.Errorf("base.json claims id %s inside directory %s", base.ID, id)
	}
	if got := HashSource(base.Unit, base.Rules, base.Facts); got != id {
		return Recovered{}, fmt.Errorf("base sources hash to %s, not %s — sources were altered", got, id)
	}

	rec := Recovered{Base: base, Rev: id}
	var snap Snapshot
	snapPath := filepath.Join(dir, "snapshot.json")
	haveSnap := false
	if err := readJSON(snapPath, &snap); err == nil {
		haveSnap = true
		seq, rev, err := VerifyChain(0, id, snap.Records)
		if err != nil {
			return Recovered{}, fmt.Errorf("snapshot: %w", err)
		}
		if seq != snap.Seq || rev != snap.Rev {
			return Recovered{}, fmt.Errorf("snapshot claims (seq %d, rev %s) but its records end at (%d, %s)",
				snap.Seq, snap.Rev, seq, rev)
		}
		rec.Records = snap.Records
		rec.Seq, rec.Rev = seq, rev
	} else if !os.IsNotExist(err) {
		return Recovered{}, fmt.Errorf("reading snapshot: %w", err)
	}

	logPath := filepath.Join(dir, "wal.log")
	data, err := os.ReadFile(logPath)
	if err != nil && !os.IsNotExist(err) {
		return Recovered{}, err
	}
	tail, good, derr := DecodeRecords(bytes.NewReader(data))
	if derr != nil {
		ce, ok := derr.(*CorruptError)
		if !ok || !ce.Torn {
			return Recovered{}, derr
		}
		// A torn final record is the expected wound of a crash
		// mid-append: the batch was never acknowledged, so dropping it
		// restores exactly the acknowledged history.
		if err := os.Truncate(logPath, good); err != nil {
			return Recovered{}, fmt.Errorf("truncating torn tail: %w", err)
		}
		rec.TornTail = true
	}
	// A crash between snapshot rename and log truncation leaves records
	// the snapshot already folded in; skip them rather than double-apply.
	for len(tail) > 0 && tail[0].Seq <= rec.Seq {
		tail = tail[1:]
	}
	seq, rev, err := VerifyChain(rec.Seq, rec.Rev, tail)
	if err != nil {
		return Recovered{}, err
	}
	rec.Records = append(rec.Records, tail...)
	rec.Seq, rec.Rev = seq, rev

	f, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return Recovered{}, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return Recovered{}, err
	}
	l := &Log{
		store: s, id: id, dir: dir, f: f,
		seq: rec.Seq, rev: rec.Rev,
		syncedSeq: rec.Seq, syncedRev: rec.Rev,
		bytes: st.Size(),
	}
	if haveSnap {
		l.snapSeq = snap.Seq
		if t, err := os.Stat(snapPath); err == nil {
			l.snapTime = t.ModTime()
		}
	}
	s.mu.Lock()
	s.logs[id] = l
	s.mu.Unlock()
	return rec, nil
}

// Create opens (or reopens) the log for a newly registered program,
// writing base.json durably first. Creating an id that already exists
// with the same base is idempotent — the content hash guarantees two
// racing registrations carry identical sources.
func (s *Store) Create(base Base) (*Log, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if l, ok := s.logs[base.ID]; ok {
		s.mu.Unlock()
		return l, nil
	}
	s.mu.Unlock()

	dir := filepath.Join(s.dir, "programs", base.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if err := writeFileDurable(filepath.Join(dir, "base.json"), mustJSON(base)); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	l := &Log{store: s, id: base.ID, dir: dir, f: f, rev: base.ID, syncedRev: base.ID}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		f.Close()
		return nil, ErrClosed
	}
	if cur, ok := s.logs[base.ID]; ok { // lost a create race; both wrote identical bytes
		f.Close()
		return cur, nil
	}
	s.logs[base.ID] = l
	return l, nil
}

// Log returns the open log for id, or nil if the program is unknown to
// the store.
func (s *Store) Log(id string) *Log {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.logs[id]
}

// Close stops the sync loop and flushes and closes every log: any
// acknowledged-but-unsynced bytes reach stable storage before the
// process exits. Appends racing with Close either complete (and are
// synced here) or observe ErrClosed and are rejected upstream — a batch
// is never half-written.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	logs := make([]*Log, 0, len(s.logs))
	for _, l := range s.logs {
		logs = append(logs, l)
	}
	s.mu.Unlock()

	close(s.stop)
	<-s.done

	var first error
	for _, l := range logs {
		if err := l.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// LogStats is one program's durability state, served under /metrics.
type LogStats struct {
	// Seq and Rev are the last appended (acknowledged) batch.
	Seq uint64 `json:"seq"`
	Rev string `json:"rev"`
	// DurableSeq and DurableRev are the last batch known fsynced; equal
	// to Seq/Rev under FsyncAlways, trailing by up to one interval
	// otherwise.
	DurableSeq uint64 `json:"durable_seq"`
	DurableRev string `json:"durable_rev"`
	// SnapshotSeq is the last batch folded into snapshot.json (0 =
	// never snapshotted); SnapshotAge is how long ago that was.
	SnapshotSeq uint64        `json:"snapshot_seq"`
	SnapshotAge time.Duration `json:"-"`
	// Bytes is the live wal.log size.
	Bytes int64 `json:"wal_bytes"`
}

// Stats reports per-program durability state.
func (s *Store) Stats() map[string]LogStats {
	s.mu.Lock()
	logs := make(map[string]*Log, len(s.logs))
	for id, l := range s.logs {
		logs[id] = l
	}
	s.mu.Unlock()
	out := make(map[string]LogStats, len(logs))
	for id, l := range logs {
		out[id] = l.stats()
	}
	return out
}

// Log is one program's append-only record log plus its snapshot state.
// Appends are serialized by the registry's per-program writer lock and
// additionally by mu (the interval sync loop shares the file).
type Log struct {
	store *Store
	id    string
	dir   string

	mu        sync.Mutex
	f         *os.File // guarded-by: mu
	seq       uint64   // guarded-by: mu — last appended
	rev       string   // guarded-by: mu
	syncedSeq uint64   // guarded-by: mu — last fsynced
	syncedRev string   // guarded-by: mu
	dirty     bool     // guarded-by: mu
	snapSeq   uint64   // guarded-by: mu
	snapTime  time.Time
	bytes     int64 // guarded-by: mu
	closed    bool  // guarded-by: mu
	// failed is set when a partial append could not be truncated away:
	// the file ends in torn bytes, and writing anything after them would
	// turn a repairable torn tail into fatal mid-log corruption. All
	// further writes are rejected with this error. guarded-by: mu
	failed error
	// writeHook, when non-nil, replaces f.Write — fault injection for the
	// partial-write tests. guarded-by: mu
	writeHook func([]byte) (int, error)
}

// Append writes one record and, under FsyncAlways, syncs it before
// returning: a nil return means the batch is fully in the log (and
// durable under FsyncAlways). The record must continue the chain.
func (l *Log) Append(rec Record) error {
	buf, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.failed != nil {
		return l.failed
	}
	if rec.Seq != l.seq+1 || rec.Prev != l.rev {
		return fmt.Errorf("wal: append (seq %d, prev %s) does not continue (%d, %s)",
			rec.Seq, rec.Prev, l.seq, l.rev)
	}
	if got := NextRev(rec.Prev, rec.Batch); got != rec.Rev {
		return fmt.Errorf("wal: append claims rev %s but its batch hashes to %s", rec.Rev, got)
	}
	write := l.f.Write
	if l.writeHook != nil {
		write = l.writeHook
	}
	if _, err := write(buf); err != nil {
		// A short write (ENOSPC, I/O error) leaves partial record bytes
		// after the last good boundary. Recovery treats mid-log corruption
		// as fatal, so a later successful append must never bury them:
		// truncate back to the acknowledged prefix — the file is opened
		// O_APPEND, so the next write lands at the new end. If even the
		// truncate fails, poison the log so appends are rejected rather
		// than written after the torn bytes (recovery's torn-tail repair
		// then restores the acknowledged history).
		if terr := l.f.Truncate(l.bytes); terr != nil {
			l.failed = fmt.Errorf("wal: log left torn at byte %d: append failed (%v), truncate failed (%v)", l.bytes, err, terr)
		}
		return err
	}
	l.seq, l.rev = rec.Seq, rec.Rev
	l.bytes += int64(len(buf))
	l.dirty = true
	if l.store.opts.Policy == FsyncAlways {
		return l.syncLocked()
	}
	return nil
}

// Sync fsyncs any appended-but-unsynced bytes.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

//tddlint:holds mu
func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return err
	}
	if obs := l.store.opts.FsyncObserver; obs != nil {
		obs(time.Since(start))
	}
	l.dirty = false
	l.syncedSeq, l.syncedRev = l.seq, l.rev
	return nil
}

// Snapshot is the compaction unit: the base sources, every record up to
// Seq, and the relational specification at that revision. It makes
// recovery a single JSON read plus the live tail, and lets the live log
// be truncated.
type Snapshot struct {
	Seq     uint64          `json:"seq"`
	Rev     string          `json:"rev"`
	Base    Base            `json:"base"`
	Records []Record        `json:"records"`
	Spec    json.RawMessage `json:"spec,omitempty"`
}

// SinceSnapshot reports how many appended batches the last snapshot does
// not cover — the trigger for the next one.
func (l *Log) SinceSnapshot() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq - l.snapSeq
}

// WriteSnapshot durably writes snap (tmp + fsync + rename) and then
// truncates the live log. The ordering is the recovery invariant: the
// snapshot is on disk before any record it covers disappears, and a
// crash between rename and truncation merely leaves duplicate records
// that recovery skips by sequence number.
func (l *Log) WriteSnapshot(snap Snapshot) error {
	if snap.Seq == 0 || len(snap.Records) == 0 {
		return fmt.Errorf("wal: refusing an empty snapshot")
	}
	if _, _, err := VerifyChain(0, snap.Base.ID, snap.Records); err != nil {
		return fmt.Errorf("wal: snapshot does not verify: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.failed != nil {
		return l.failed
	}
	if snap.Seq > l.seq {
		return fmt.Errorf("wal: snapshot at seq %d beyond the log's %d", snap.Seq, l.seq)
	}
	// The covered records must be synced before they may be dropped from
	// the live log.
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := writeFileDurable(filepath.Join(l.dir, "snapshot.json"), mustJSON(snap)); err != nil {
		return err
	}
	if snap.Seq == l.seq {
		// Common case: snapshotting right after an append — the whole
		// live log is covered, truncate it to empty.
		if err := l.f.Truncate(0); err != nil {
			return err
		}
		if _, err := l.f.Seek(0, io.SeekStart); err != nil {
			return err
		}
		l.bytes = 0
	}
	l.snapSeq = snap.Seq
	l.snapTime = time.Now()
	return nil
}

func (l *Log) stats() LogStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := LogStats{
		Seq: l.seq, Rev: l.rev,
		DurableSeq: l.syncedSeq, DurableRev: l.syncedRev,
		SnapshotSeq: l.snapSeq,
		Bytes:       l.bytes,
	}
	if !l.snapTime.IsZero() {
		st.SnapshotAge = time.Since(l.snapTime)
	}
	return st
}

func (l *Log) close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	err := l.syncLocked()
	l.closed = true
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeFileDurable writes data via a temp file, fsyncs it, and renames
// it into place, so the named file is always either the old or the new
// complete content.
func writeFileDurable(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

func mustJSON(v any) []byte {
	data, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		panic(err) // all persisted types marshal
	}
	return append(data, '\n')
}
