// Package wal is the durability subsystem behind tddserve -data: a
// per-program append-only write-ahead log of ingested fact batches,
// periodic source/spec snapshots with log truncation, and a recovery
// path that reconstructs the server's program registry after a restart.
//
// The persistence unit is the paper's own artifact. A program's infinite
// temporal model is finitely represented by its relational specification,
// and that specification is a deterministic function of the base sources
// plus the ordered ingestion history — so durability never stores the
// model, only the tiny inputs that regenerate it: the registered sources
// (base.json), one WAL record per ingested batch (wal.log), and a
// snapshot (snapshot.json) that folds the history into a single file so
// the live log stays short. Recovery is replay-plus-recertify: the
// already-tested eviction-safe batch replay rebuilds the engine, and the
// rev hash chain carried by every record proves on disk that the
// recovered history is exactly the one the clients were acknowledged.
//
// On-disk layout under the data directory:
//
//	programs/<id>/base.json      registered sources (written once)
//	programs/<id>/snapshot.json  latest snapshot: sources + records + spec
//	programs/<id>/wal.log        records appended since the snapshot
//
// This package deliberately uses wall-clock time (fsync interval timers,
// snapshot ages); the Tier-B detfix checker carries an explicit allowlist
// entry for it — determinism of the recovered model is enforced by the
// rev hash chain, not by time-independence.
package wal

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Record is one ingested fact batch in the log. Seq numbers batches from
// 1 in ingestion order; Prev and Rev are the program's content revision
// before and after the batch, forming a hash chain rooted at the program
// id, so a log's integrity is verifiable without the engine.
type Record struct {
	Seq   uint64 `json:"seq"`
	Prev  string `json:"prev"`
	Rev   string `json:"rev"`
	Batch string `json:"batch"`
}

// Base is the registered, never-changing part of a program: the content
// the id hashes.
type Base struct {
	ID    string `json:"id"`
	Unit  string `json:"unit,omitempty"`
	Rules string `json:"rules,omitempty"`
	Facts string `json:"facts,omitempty"`
}

// HashSource derives the registry handle: a content hash, so registering
// the same program twice — from any client, on any node — yields the
// same id. It is the root of every program's rev chain.
func HashSource(unit, rules, facts string) string {
	h := sha256.New()
	h.Write([]byte(unit))
	h.Write([]byte{0})
	h.Write([]byte(rules))
	h.Write([]byte{0})
	h.Write([]byte(facts))
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// NextRev advances a content revision by one ingested batch: a hash
// chain committing to the base program and the entire ingestion history
// in order.
func NextRev(rev, batch string) string {
	h := sha256.New()
	h.Write([]byte(rev))
	h.Write([]byte{0})
	h.Write([]byte(batch))
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// VerifyChain checks that records continue the chain rooted at rev (the
// id for a fresh program, the snapshot rev for a tail) with contiguous
// sequence numbers starting at seq+1, and returns the final (seq, rev).
func VerifyChain(seq uint64, rev string, records []Record) (uint64, string, error) {
	for _, rec := range records {
		if rec.Seq != seq+1 {
			return seq, rev, fmt.Errorf("wal: record seq %d does not continue %d", rec.Seq, seq)
		}
		if rec.Prev != rev {
			return seq, rev, fmt.Errorf("wal: record %d chains from rev %s, log is at %s", rec.Seq, rec.Prev, rev)
		}
		if got := NextRev(rec.Prev, rec.Batch); got != rec.Rev {
			return seq, rev, fmt.Errorf("wal: record %d claims rev %s but its batch hashes to %s", rec.Seq, rec.Rev, got)
		}
		seq, rev = rec.Seq, rec.Rev
	}
	return seq, rev, nil
}

// Record wire format, designed so a decoder over arbitrary bytes can
// always answer "valid record / torn tail / corrupt" with a position:
//
//	[4] big-endian payload length
//	[4] IEEE CRC32 of the payload
//	[n] payload: the Record as JSON
//
// maxRecordBytes bounds a single record; a length header above it is
// corruption (and caps what a decoder will ever allocate on adversarial
// input).
const maxRecordBytes = 16 << 20

const headerBytes = 8

// CorruptError is a positioned decode failure. Offset is the byte offset
// of the record the decoder choked on; Torn reports that the record was
// cut off by end-of-input — the signature of a crash mid-append, which
// recovery repairs by truncating, as opposed to mid-log corruption,
// which it refuses to skip.
type CorruptError struct {
	Offset int64
	Reason string
	Torn   bool
}

func (e *CorruptError) Error() string {
	kind := "corrupt record"
	if e.Torn {
		kind = "torn record"
	}
	return fmt.Sprintf("wal: %s at offset %d: %s", kind, e.Offset, e.Reason)
}

// EncodeRecord renders one record in the wire format — the exact bytes
// Append writes, so callers can compute on-disk extents (crash-point
// tests) or build logs offline.
func EncodeRecord(rec Record) ([]byte, error) { return encodeRecord(rec) }

// encodeRecord renders one record in the wire format.
func encodeRecord(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	if len(payload) > maxRecordBytes {
		return nil, fmt.Errorf("wal: record of %d bytes exceeds the %d byte cap", len(payload), maxRecordBytes)
	}
	buf := make([]byte, headerBytes+len(payload))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[headerBytes:], payload)
	return buf, nil
}

// DecodeRecords decodes a log byte stream. It returns every complete,
// checksum-valid record and the offset just past the last good one. A
// non-nil error is always a *CorruptError positioned at the first bad
// record; the good prefix is still returned alongside it, so recovery
// can truncate a torn tail to good and keep going.
func DecodeRecords(r io.Reader) (records []Record, good int64, err error) {
	br := &countingReader{r: r}
	for {
		start := br.n
		var hdr [headerBytes]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return records, start, nil // clean end of log
			}
			return records, start, &CorruptError{Offset: start, Torn: true,
				Reason: "length header cut short"}
		}
		n := binary.BigEndian.Uint32(hdr[0:4])
		sum := binary.BigEndian.Uint32(hdr[4:8])
		if n > maxRecordBytes {
			return records, start, &CorruptError{Offset: start,
				Reason: fmt.Sprintf("implausible payload length %d (cap %d)", n, maxRecordBytes)}
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			return records, start, &CorruptError{Offset: start, Torn: true,
				Reason: fmt.Sprintf("payload cut short (%d of %d bytes)", br.n-start-headerBytes, n)}
		}
		if got := crc32.ChecksumIEEE(payload); got != sum {
			return records, start, &CorruptError{Offset: start,
				Reason: fmt.Sprintf("checksum mismatch: header %08x, payload %08x", sum, got)}
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return records, start, &CorruptError{Offset: start,
				Reason: "checksummed payload is not a record: " + err.Error()}
		}
		records = append(records, rec)
	}
}

// countingReader tracks how many bytes have been consumed, so decode
// errors carry exact offsets.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// ErrClosed is returned by appends and syncs after the store shut down;
// an ingest that sees it was never written and must be rejected upstream.
var ErrClosed = errors.New("wal: store closed")
