package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// chain builds n records continuing from (seq, rev).
func chain(seq uint64, rev string, batches ...string) []Record {
	var out []Record
	for _, b := range batches {
		next := NextRev(rev, b)
		seq++
		out = append(out, Record{Seq: seq, Prev: rev, Rev: next, Batch: b})
		rev = next
	}
	return out
}

func openStore(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() }) //nolint:errcheck
	return s
}

func testBase() Base {
	unit := "even(T+2) :- even(T).\neven(0).\n"
	return Base{ID: HashSource(unit, "", ""), Unit: unit}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	base := testBase()
	recs := chain(0, base.ID, "odd(1).", "odd(3).\nodd(5).", "p(0, a).")
	var buf bytes.Buffer
	for _, r := range recs {
		b, err := encodeRecord(r)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
	}
	got, good, err := DecodeRecords(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if good != int64(buf.Len()) {
		t.Errorf("good offset %d, want %d", good, buf.Len())
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
	if _, _, err := VerifyChain(0, base.ID, got); err != nil {
		t.Errorf("chain does not verify: %v", err)
	}
}

func TestDecodeTornAndCorrupt(t *testing.T) {
	base := testBase()
	recs := chain(0, base.ID, "odd(1).", "odd(3).")
	var buf bytes.Buffer
	var bounds []int
	for _, r := range recs {
		b, _ := encodeRecord(r)
		buf.Write(b)
		bounds = append(bounds, buf.Len())
	}
	raw := buf.Bytes()

	// Every strict prefix cut inside the second record is a torn tail:
	// one good record comes back, and the error is positioned at its end.
	for cut := bounds[0] + 1; cut < bounds[1]; cut++ {
		got, good, err := DecodeRecords(bytes.NewReader(raw[:cut]))
		ce, ok := err.(*CorruptError)
		if !ok || !ce.Torn {
			t.Fatalf("cut %d: err = %v, want torn CorruptError", cut, err)
		}
		if ce.Offset != int64(bounds[0]) || good != int64(bounds[0]) {
			t.Fatalf("cut %d: offset %d good %d, want %d", cut, ce.Offset, good, bounds[0])
		}
		if len(got) != 1 {
			t.Fatalf("cut %d: %d records, want 1", cut, len(got))
		}
	}

	// A bit flip inside the first record's payload is corruption, not a
	// torn tail, and is positioned at the record start.
	flipped := append([]byte(nil), raw...)
	flipped[headerBytes+3] ^= 0x40
	_, good, err := DecodeRecords(bytes.NewReader(flipped))
	ce, ok := err.(*CorruptError)
	if !ok || ce.Torn {
		t.Fatalf("bit flip: err = %v, want non-torn CorruptError", err)
	}
	if ce.Offset != 0 || good != 0 {
		t.Errorf("bit flip: offset %d good %d, want 0", ce.Offset, good)
	}
	if !strings.Contains(ce.Error(), "checksum") {
		t.Errorf("bit flip error is not checksum-aware: %v", ce)
	}

	// An implausible length header is corruption and must not allocate.
	huge := []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}
	_, _, err = DecodeRecords(bytes.NewReader(huge))
	if ce, ok := err.(*CorruptError); !ok || ce.Torn {
		t.Fatalf("huge length: err = %v, want non-torn CorruptError", err)
	}
}

func TestStoreAppendRecoverTornTail(t *testing.T) {
	dir := t.TempDir()
	base := testBase()
	recs := chain(0, base.ID, "odd(1).", "odd(3).", "odd(5).")

	s := openStore(t, dir, Options{Policy: FsyncAlways})
	l, err := s.Create(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	st := l.stats()
	if st.Seq != 3 || st.DurableSeq != 3 || st.Rev != recs[2].Rev {
		t.Fatalf("stats after appends: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: drop the last 3 bytes of the final record.
	logPath := filepath.Join(dir, "programs", base.ID, "wal.log")
	info, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(logPath, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir, Options{Policy: FsyncAlways})
	rec, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != 1 {
		t.Fatalf("recovered %d programs, want 1", len(rec))
	}
	r := rec[0]
	if !r.TornTail {
		t.Error("torn tail not reported")
	}
	if r.Seq != 2 || r.Rev != recs[1].Rev || len(r.Records) != 2 {
		t.Fatalf("recovered (seq %d, rev %s, %d records), want the 2-record prefix",
			r.Seq, r.Rev, len(r.Records))
	}
	// The log was repaired: appending the third batch again continues
	// the chain cleanly.
	if err := s2.Log(base.ID).Append(recs[2]); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
}

func TestStoreRejectsMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	base := testBase()
	recs := chain(0, base.ID, "odd(1).", "odd(3).")

	s := openStore(t, dir, Options{Policy: FsyncAlways})
	l, err := s.Create(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	s.Close() //nolint:errcheck

	// Flip a payload bit in the FIRST record: corruption before the
	// tail must fail recovery, not silently truncate history.
	logPath := filepath.Join(dir, "programs", base.ID, "wal.log")
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	data[headerBytes+2] ^= 1
	if err := os.WriteFile(logPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir, Options{})
	if _, err := s2.Recover(); err == nil {
		t.Fatal("recovery accepted a mid-log corruption")
	}
}

func TestSnapshotTruncatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	base := testBase()
	recs := chain(0, base.ID, "odd(1).", "odd(3).", "odd(5).", "odd(7).")

	s := openStore(t, dir, Options{Policy: FsyncAlways})
	l, err := s.Create(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs[:3] {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.SinceSnapshot(); got != 3 {
		t.Fatalf("SinceSnapshot = %d, want 3", got)
	}
	snap := Snapshot{Seq: 3, Rev: recs[2].Rev, Base: base, Records: recs[:3], Spec: []byte(`{"x":1}`)}
	if err := l.WriteSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if got := l.SinceSnapshot(); got != 0 {
		t.Fatalf("SinceSnapshot after snapshot = %d, want 0", got)
	}
	st := l.stats()
	if st.Bytes != 0 || st.SnapshotSeq != 3 || st.SnapshotAge < 0 || st.SnapshotAge > time.Minute {
		t.Fatalf("stats after snapshot: %+v", st)
	}
	// One more record into the fresh live log.
	if err := l.Append(recs[3]); err != nil {
		t.Fatal(err)
	}
	s.Close() //nolint:errcheck

	s2 := openStore(t, dir, Options{})
	rec, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	r := rec[0]
	if r.Seq != 4 || r.Rev != recs[3].Rev || len(r.Records) != 4 {
		t.Fatalf("recovered (seq %d, %d records), want the full 4-record history", r.Seq, len(r.Records))
	}
}

// TestSnapshotCrashBeforeTruncate simulates a crash between the
// snapshot rename and the log truncation: the live log still holds
// records the snapshot covers, and recovery must skip them by sequence
// number instead of double-applying.
func TestSnapshotCrashBeforeTruncate(t *testing.T) {
	dir := t.TempDir()
	base := testBase()
	recs := chain(0, base.ID, "odd(1).", "odd(3).")

	s := openStore(t, dir, Options{Policy: FsyncAlways})
	l, err := s.Create(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	s.Close() //nolint:errcheck

	// Hand-write the snapshot without truncating the log — exactly the
	// on-disk state of a crash at the vulnerable point.
	snap := Snapshot{Seq: 2, Rev: recs[1].Rev, Base: base, Records: recs}
	if err := writeFileDurable(filepath.Join(dir, "programs", base.ID, "snapshot.json"), mustJSON(snap)); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir, Options{})
	rec, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	r := rec[0]
	if r.Seq != 2 || len(r.Records) != 2 {
		t.Fatalf("recovered (seq %d, %d records), want exactly 2 — no double apply", r.Seq, len(r.Records))
	}
}

func TestAppendChainDiscipline(t *testing.T) {
	dir := t.TempDir()
	base := testBase()
	s := openStore(t, dir, Options{Policy: FsyncOff})
	l, err := s.Create(base)
	if err != nil {
		t.Fatal(err)
	}
	good := chain(0, base.ID, "odd(1).")[0]
	if err := l.Append(good); err != nil {
		t.Fatal(err)
	}
	// Wrong seq, wrong prev, and a rev that does not hash are all
	// rejected before any byte is written.
	bad := []Record{
		{Seq: 3, Prev: good.Rev, Rev: NextRev(good.Rev, "x."), Batch: "x."},
		{Seq: 2, Prev: "deadbeef", Rev: NextRev("deadbeef", "x."), Batch: "x."},
		{Seq: 2, Prev: good.Rev, Rev: "deadbeef", Batch: "x."},
	}
	before := l.stats().Bytes
	for i, r := range bad {
		if err := l.Append(r); err == nil {
			t.Errorf("bad record %d accepted", i)
		}
	}
	if l.stats().Bytes != before {
		t.Error("rejected append wrote bytes")
	}
}

func TestIntervalPolicySyncs(t *testing.T) {
	dir := t.TempDir()
	base := testBase()
	var syncs int
	s := openStore(t, dir, Options{
		Policy:        FsyncInterval,
		Interval:      5 * time.Millisecond,
		FsyncObserver: func(time.Duration) { syncs++ },
	})
	l, err := s.Create(base)
	if err != nil {
		t.Fatal(err)
	}
	rec := chain(0, base.ID, "odd(1).")[0]
	if err := l.Append(rec); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for l.stats().DurableSeq != 1 {
		if time.Now().After(deadline) {
			t.Fatal("interval sync never caught up")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if syncs == 0 {
		t.Error("fsync observer never called")
	}
	if err := l.Append(rec); err != ErrClosed {
		t.Errorf("append after close: %v, want ErrClosed", err)
	}
}

func TestCreateIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	base := testBase()
	s := openStore(t, dir, Options{Policy: FsyncOff})
	l1, err := s.Create(base)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := s.Create(base)
	if err != nil {
		t.Fatal(err)
	}
	if l1 != l2 {
		t.Error("second Create returned a different log")
	}
}

// TestAppendPartialWriteTruncatesBack: a failed append (ENOSPC, I/O
// error) that leaves partial record bytes must not let the next
// successful append bury them mid-log — which recovery treats as fatal.
// The log truncates back to the last record boundary and keeps working.
func TestAppendPartialWriteTruncatesBack(t *testing.T) {
	dir := t.TempDir()
	base := testBase()
	recs := chain(0, base.ID, "odd(1).", "odd(3).", "odd(5).")

	s := openStore(t, dir, Options{Policy: FsyncAlways})
	l, err := s.Create(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(recs[0]); err != nil {
		t.Fatal(err)
	}

	// Inject one short write: half the record's bytes land, then the
	// disk "fills up".
	failNext := true
	l.mu.Lock()
	l.writeHook = func(b []byte) (int, error) {
		if !failNext {
			return l.f.Write(b)
		}
		failNext = false
		n, _ := l.f.Write(b[:len(b)/2])
		return n, errors.New("injected: no space left on device")
	}
	l.mu.Unlock()
	if err := l.Append(recs[1]); err == nil || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("append = %v, want the injected write error", err)
	}

	// The torn bytes are gone: retrying the same record appends cleanly
	// after the first one, and the chain keeps extending.
	if err := l.Append(recs[1]); err != nil {
		t.Fatalf("append after repaired short write: %v", err)
	}
	if err := l.Append(recs[2]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := openStore(t, dir, Options{}).Recover()
	if err != nil {
		t.Fatalf("recovery after repaired short write: %v", err)
	}
	if len(got) != 1 || got[0].Seq != 3 || got[0].TornTail {
		t.Fatalf("recovered %+v, want a clean log at seq 3", got)
	}
}

// TestAppendPoisonsLogWhenTruncateFails: if the truncate-back repair
// itself fails, the log must reject all further appends — writing after
// the torn bytes would turn a repairable torn tail into fatal mid-log
// corruption.
func TestAppendPoisonsLogWhenTruncateFails(t *testing.T) {
	dir := t.TempDir()
	base := testBase()
	recs := chain(0, base.ID, "odd(1).", "odd(3).")

	s := openStore(t, dir, Options{Policy: FsyncOff})
	l, err := s.Create(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(recs[0]); err != nil {
		t.Fatal(err)
	}

	// Swap the fd for a read-only one: the write fails and so does the
	// truncate repair.
	ro, err := os.Open(filepath.Join(dir, "programs", base.ID, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	l.mu.Lock()
	orig := l.f
	l.f = ro
	l.mu.Unlock()

	if err := l.Append(recs[1]); err == nil {
		t.Fatal("append through a read-only fd succeeded")
	}
	// The log is poisoned: every further append is rejected up front.
	if err := l.Append(recs[1]); err == nil || !strings.Contains(err.Error(), "torn") {
		t.Fatalf("append on poisoned log = %v, want torn-log rejection", err)
	}

	l.mu.Lock()
	l.f = orig
	l.mu.Unlock()
	ro.Close()
}
