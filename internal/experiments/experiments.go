// Package experiments implements the reproduction harness: one experiment
// per measurable claim of the paper (the paper is pure theory, so its
// "tables" are theorems; EXPERIMENTS.md records the mapping and results).
//
// Each experiment builds a workload family, runs the relevant pipeline
// (engine, period detection, specification, classification, baselines),
// and renders a table. The quick flag shrinks the sweeps for use in tests;
// cmd/tddbench runs the full sweeps.
package experiments

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Table is one experiment's output.
type Table struct {
	ID     string
	Title  string
	Claim  string // the paper claim being validated
	Expect string // the expected shape of the numbers
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	fmt.Fprintf(&b, "claim:  %s\n", t.Claim)
	fmt.Fprintf(&b, "expect: %s\n\n", t.Expect)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner is an experiment entry point; quick shrinks the sweep.
type Runner func(quick bool) (*Table, error)

// All maps experiment ids to runners.
var All = map[string]Runner{
	"E1":  E1,
	"E2":  E2,
	"E3":  E3,
	"E4":  E4,
	"E5":  E5,
	"E6":  E6,
	"E7":  E7,
	"E8":  E8,
	"E9":  E9,
	"E10": E10,
	"E13": E13,
	"E18": E18,
}

// IDs returns the experiment ids in numeric order (E1, E2, ..., E13).
func IDs() []string {
	out := make([]string, 0, len(All))
	for id := range All {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		a, _ := strconv.Atoi(strings.TrimPrefix(out[i], "E"))
		b, _ := strconv.Atoi(strings.TrimPrefix(out[j], "E"))
		return a < b
	})
	return out
}

// ms renders a duration in milliseconds with three decimals.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Nanoseconds())/1e6)
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }
