package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// Every experiment must run clean in quick mode; the runners themselves
// assert the paper's claims (period values, agreement between pipelines),
// so a green run is a verified reproduction at small scale.
func TestAllExperimentsQuick(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tab, err := All[id](true)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s: empty table", id)
			}
			out := tab.String()
			if !strings.Contains(out, tab.ID) || !strings.Contains(out, "claim:") {
				t.Errorf("%s: misrendered table:\n%s", id, out)
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Header) {
					t.Errorf("%s: ragged row %v", id, row)
				}
			}
		})
	}
}

func TestE3PeriodsDouble(t *testing.T) {
	tab, err := E3(true)
	if err != nil {
		t.Fatal(err)
	}
	var prev int
	for i, row := range tab.Rows {
		p, err := strconv.Atoi(row[2])
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && p != prev*4 { // bits advance by 2 in quick mode
			t.Errorf("row %d: period %d, want %d", i, p, prev*4)
		}
		prev = p
	}
}

func TestE2AllPeriodOne(t *testing.T) {
	tab, err := E2(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[3] != "1" {
			t.Errorf("inflationary row with period %s", row[3])
		}
	}
}

func TestE5PeriodConstant(t *testing.T) {
	tab, err := E5(true)
	if err != nil {
		t.Fatal(err)
	}
	first := tab.Rows[0][2]
	for _, row := range tab.Rows {
		if row[2] != first {
			t.Errorf("period changed across databases: %s vs %s", first, row[2])
		}
	}
}

func TestE8RatiosAboveOne(t *testing.T) {
	tab, err := E8(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		ratio := strings.TrimSuffix(row[4], "x")
		v, err := strconv.ParseFloat(ratio, 64)
		if err != nil {
			t.Fatal(err)
		}
		if v <= 1 {
			t.Errorf("naive not slower than engine: ratio %v", v)
		}
	}
}

func TestBTWorkFor(t *testing.T) {
	w, err := BTWorkFor(4)
	if err != nil {
		t.Fatal(err)
	}
	if w.Period.P != 50 {
		t.Errorf("work = %+v, want period 50", w)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID: "EX", Title: "demo", Claim: "c", Expect: "e",
		Header: []string{"a", "long_column"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"n1"},
	}
	out := tab.String()
	for _, want := range []string{"== EX: demo ==", "long_column", "note: n1", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// E18's quick instances are small, but the planner's advantage must
// already show: the indexed engine should never lose to the nested-loop
// baseline on the order-scrambled workloads (the full >=10x large-database
// bound is recorded by scripts/bench_eval.sh, not asserted at test scale).
func TestE18IndexedBeatsNestedLoop(t *testing.T) {
	tab, err := E18(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		sp := strings.TrimSuffix(row[len(row)-1], "x")
		v, err := strconv.ParseFloat(sp, 64)
		if err != nil {
			t.Fatalf("unparseable speedup %q in row %v", sp, row)
		}
		if v <= 1 {
			t.Errorf("%s: indexed engine slower than nested loop (%sx)", row[0], sp)
		}
	}
}
