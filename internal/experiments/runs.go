package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"tdd/internal/ast"
	"tdd/internal/baseline"
	"tdd/internal/classify"
	"tdd/internal/core"
	"tdd/internal/engine"
	"tdd/internal/fddb"
	"tdd/internal/parser"
	"tdd/internal/period"
	"tdd/internal/spec"
	"tdd/internal/workload"
)

// build parses and compiles a workload into an evaluator.
func build(rules, facts string) (*engine.Evaluator, *ast.Program, *ast.Database, error) {
	prog, db, err := parser.ParseUnit(rules + facts)
	if err != nil {
		return nil, nil, nil, err
	}
	e, err := engine.New(prog, db)
	if err != nil {
		return nil, nil, nil, err
	}
	return e, prog, db, nil
}

// E1 — Theorem 4.1 / algorithm BT: for a polynomially periodic rule set,
// computing the relational specification (and hence answering queries)
// takes time polynomial in the database size. Workload: the ski family
// with a fixed year, growing databases.
func E1(quick bool) (*Table, error) {
	sizes := []int{4, 16, 64, 256}
	if quick {
		sizes = []int{4, 16}
	}
	t := &Table{
		ID:     "E1",
		Title:  "BT scaling on a polynomially periodic family (ski, year=50)",
		Claim:  "Thm 4.1: polynomial periods => specification computable in time polynomial in |D|",
		Expect: "time and derived facts grow ~linearly with |D|; window and |T| stay flat",
		Header: []string{"resorts", "db_facts", "window", "period", "reps|T|", "derived", "time_ms"},
	}
	for _, r := range sizes {
		rules, facts := workload.Ski(workload.SkiParams{YearLen: 50, Resorts: r, Planes: 2 * r, Holidays: 5, Seed: 42})
		e, _, db, err := build(rules, facts)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		s, err := spec.Compute(e, 1<<20)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		reps, _ := s.Size()
		t.Rows = append(t.Rows, []string{
			itoa(r), itoa(len(db.Facts)), itoa(e.Window()),
			s.Period.String(), itoa(reps), itoa(e.Stats().Derived), ms(elapsed),
		})
	}
	return t, nil
}

// E2 — Theorem 5.1: inflationary rule sets have period (P(n)+1, 1).
// Workload: bounded reachability on random graphs.
func E2(quick bool) (*Table, error) {
	sizes := []int{8, 16, 32, 64}
	if quick {
		sizes = []int{8, 16}
	}
	t := &Table{
		ID:     "E2",
		Title:  "Inflationary periods (bounded reachability on random digraphs)",
		Claim:  "Thm 5.1: inflationary => period p=1 with base bounded by the state-size polynomial",
		Expect: "p=1 in every row; base grows at most ~linearly (graph diameter), far below n^2+1",
		Header: []string{"nodes", "edges", "db_facts", "period_p", "base", "state_bound", "time_ms"},
	}
	for _, n := range sizes {
		rules, facts := workload.Reachability(workload.ReachParams{Nodes: n, Edges: 3 * n, Seed: 7})
		e, _, db, err := build(rules, facts)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		p, _, err := period.Detect(e, 1<<20)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		if p.P != 1 {
			return nil, fmt.Errorf("E2: inflationary family produced period %v", p)
		}
		// The Theorem 5.1 bound: states can grow for at most
		// P1(n) = (#path tuples possible) steps.
		bound := n*n + 1
		t.Rows = append(t.Rows, []string{
			itoa(n), itoa(3 * n), itoa(len(db.Facts)), itoa(p.P), itoa(p.Base), itoa(bound), ms(elapsed),
		})
	}
	return t, nil
}

// E3 — Theorems 3.2/3.3 lower-bound shape: a fixed rule set whose least
// model's period is exponential in the database size (the n-bit counter).
func E3(quick bool) (*Table, error) {
	bits := []int{2, 4, 6, 8, 10, 12}
	if quick {
		bits = []int{2, 4, 6}
	}
	t := &Table{
		ID:     "E3",
		Title:  "Exponential periods (n-bit binary counter)",
		Claim:  "Thms 3.2/3.3: without class restrictions, periods (and query time) can be exponential in |D|",
		Expect: "period doubles per added bit (2^n); detection time roughly doubles too",
		Header: []string{"bits", "db_facts", "period_p", "2^bits", "window", "time_ms"},
	}
	for _, n := range bits {
		rules, facts := workload.Counter(n)
		e, _, db, err := build(rules, facts)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		p, st, err := period.Detect(e, 1<<22)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		if p.P != 1<<n {
			return nil, fmt.Errorf("E3: counter(%d) period %v, want 2^%d", n, p, n)
		}
		t.Rows = append(t.Rows, []string{
			itoa(n), itoa(len(db.Facts)), itoa(p.P), itoa(1 << n), itoa(st.Window), ms(elapsed),
		})
	}
	return t, nil
}

// E4 — Theorem 5.2: the inflationary property is decidable. Run the
// decision procedure over a suite of programs and time it.
func E4(quick bool) (*Table, error) {
	copies := []int{1, 8, 64}
	if !quick {
		copies = append(copies, 256)
	}
	t := &Table{
		ID:     "E4",
		Title:  "Deciding the inflationary property (Theorem 5.2 procedure)",
		Claim:  "Thm 5.2: inflationary-ness is decidable; the test is cheap (one tiny least model per derived predicate)",
		Expect: "verdicts match ground truth; time grows ~linearly in the number of predicates",
		Header: []string{"program", "rules", "inflationary", "expected", "time_ms"},
	}
	reach, _ := workload.Reachability(workload.ReachParams{Nodes: 2, Edges: 1, Seed: 1})
	ski, _ := workload.Ski(workload.SkiParams{YearLen: 10, Resorts: 1, Planes: 1, Holidays: 1, Seed: 1})
	cases := []struct {
		name   string
		src    string
		expect bool
	}{
		{"reachability", reach, true},
		{"ski", ski, false},
		{"counter", workload.CounterRules, false},
	}
	for _, k := range copies {
		var b []byte
		for i := 0; i < k; i++ {
			b = append(b, fmt.Sprintf("p%d(T+1, X) :- p%d(T, X).\n", i, i)...)
		}
		cases = append(cases, struct {
			name   string
			src    string
			expect bool
		}{fmt.Sprintf("copy-chain(%d)", k), string(b), true})
	}
	for _, c := range cases {
		prog, err := parser.ParseProgram(c.src)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		got, err := classify.Inflationary(prog)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		if got != c.expect {
			return nil, fmt.Errorf("E4: %s classified %v, want %v", c.name, got, c.expect)
		}
		t.Rows = append(t.Rows, []string{c.name, itoa(len(prog.Rules)), fmt.Sprint(got), fmt.Sprint(c.expect), ms(elapsed)})
	}
	return t, nil
}

// E5 — Theorems 6.3/6.5: multi-separable rule sets are I-periodic — the
// period does not depend on the database. Grow the ski database 100x and
// watch the detected period stay put.
func E5(quick bool) (*Table, error) {
	sizes := []int{2, 8, 32, 128}
	if quick {
		sizes = []int{2, 8}
	}
	const year = 12
	t := &Table{
		ID:     "E5",
		Title:  "I-periodicity: period vs database size (ski, year=12)",
		Claim:  "Thms 6.3/6.5: multi-separable => one database-independent period",
		Expect: "period column constant (=12) down the sweep while db_facts grows ~100x",
		Header: []string{"resorts", "db_facts", "period_p", "base", "time_ms"},
	}
	for _, r := range sizes {
		rules, facts := workload.Ski(workload.SkiParams{YearLen: year, Resorts: r, Planes: 3 * r, Holidays: 3, Seed: 11})
		e, prog, db, err := build(rules, facts)
		if err != nil {
			return nil, err
		}
		if ok, reason := classify.MultiSeparable(prog); !ok {
			return nil, fmt.Errorf("E5: workload not multi-separable: %s", reason)
		}
		start := time.Now()
		p, _, err := period.Detect(e, 1<<20)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		if year%p.P != 0 {
			return nil, fmt.Errorf("E5: detected period %v incompatible with year %d", p, year)
		}
		t.Rows = append(t.Rows, []string{itoa(r), itoa(len(db.Facts)), itoa(p.P), itoa(p.Base), ms(elapsed)})
	}
	return t, nil
}

// E6 — Theorem 3.3 vs Theorem 4.1: specification size is polynomial for
// the tractable families and exponential for the counter.
func E6(quick bool) (*Table, error) {
	t := &Table{
		ID:     "E6",
		Title:  "Relational specification size: tractable vs adversarial families",
		Claim:  "Thm 4.1: poly spec size <=> poly time; Thm 3.3: spec size can be exponential in |D|",
		Expect: "ski rows: |T| flat, |B| ~linear in db_facts; counter rows: |T| and |B| double per bit",
		Header: []string{"family", "param", "db_facts", "reps|T|", "facts|B|", "time_ms"},
	}
	skiSizes := []int{4, 16, 64}
	counterBits := []int{2, 4, 6, 8}
	if quick {
		skiSizes = []int{4, 16}
		counterBits = []int{2, 4}
	}
	for _, r := range skiSizes {
		rules, facts := workload.Ski(workload.SkiParams{YearLen: 30, Resorts: r, Planes: 2 * r, Holidays: 4, Seed: 5})
		e, _, db, err := build(rules, facts)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		s, err := spec.Compute(e, 1<<20)
		if err != nil {
			return nil, err
		}
		reps, nfacts := s.Size()
		t.Rows = append(t.Rows, []string{"ski", itoa(r), itoa(len(db.Facts)), itoa(reps), itoa(nfacts), ms(time.Since(start))})
	}
	for _, n := range counterBits {
		rules, facts := workload.Counter(n)
		e, _, db, err := build(rules, facts)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		s, err := spec.Compute(e, 1<<22)
		if err != nil {
			return nil, err
		}
		reps, nfacts := s.Size()
		t.Rows = append(t.Rows, []string{"counter", itoa(n), itoa(len(db.Facts)), itoa(reps), itoa(nfacts), ms(time.Since(start))})
	}
	return t, nil
}

// E7 — Section 3.3: after the one-time specification, a ground query of
// any temporal depth h costs one rewrite plus a lookup, while the direct
// baseline must materialize the model out to h.
func E7(quick bool) (*Table, error) {
	depths := []int{100, 1000, 10000, 100000}
	if quick {
		depths = []int{100, 1000}
	}
	t := &Table{
		ID:     "E7",
		Title:  "Query answering: relational specification vs direct materialization",
		Claim:  "Sec 3.3: spec-based answers are O(1) in the query depth h; direct evaluation is Θ(h)",
		Expect: "spec_us flat as h grows; direct_ms grows ~linearly in h; crossover almost immediately",
		Header: []string{"depth_h", "spec_us_per_query", "direct_ms", "answers_agree"},
	}
	rules, facts := workload.Ski(workload.SkiParams{YearLen: 40, Resorts: 4, Planes: 8, Holidays: 4, Seed: 9})

	// One-time specification.
	e, _, _, err := build(rules, facts)
	if err != nil {
		return nil, err
	}
	s, err := spec.Compute(e, 1<<20)
	if err != nil {
		return nil, err
	}
	for _, h := range depths {
		f := ast.Fact{Pred: "plane", Temporal: true, Time: h, Args: []string{"r0"}}
		const reps = 1000
		start := time.Now()
		var specAns bool
		for i := 0; i < reps; i++ {
			specAns = s.HoldsFact(f)
		}
		perQuery := time.Since(start) / reps

		// Direct: a fresh evaluator materializing out to h.
		direct, _, _, err := build(rules, facts)
		if err != nil {
			return nil, err
		}
		start = time.Now()
		direct.EnsureWindow(h)
		directAns := direct.Holds(f)
		directTime := time.Since(start)
		if specAns != directAns {
			return nil, fmt.Errorf("E7: disagreement at h=%d: spec=%v direct=%v", h, specAns, directAns)
		}
		t.Rows = append(t.Rows, []string{
			itoa(h), fmt.Sprintf("%.2f", float64(perQuery.Nanoseconds())/1e3), ms(directTime), "yes",
		})
	}
	return t, nil
}

// E8 — ablation: the production time-stratified engine vs the naive
// Figure-1 T_P iteration.
func E8(quick bool) (*Table, error) {
	sizes := []int{6, 10, 14}
	if quick {
		sizes = []int{6}
	}
	t := &Table{
		ID:     "E8",
		Title:  "Ablation: time-stratified engine vs naive T_P iteration (Figure 1 as printed)",
		Claim:  "BT's bound holds for naive iteration; the engine's time-stratified sweep removes the rederivation factor",
		Expect: "naive firings exceed engine firings by a growing factor; times follow",
		Header: []string{"nodes", "window", "engine_firings", "naive_firings", "firing_ratio", "engine_ms", "naive_ms"},
	}
	for _, n := range sizes {
		rules, facts := workload.Reachability(workload.ReachParams{Nodes: n, Edges: 2 * n, Seed: 13})
		m := 2 * n

		e, prog, db, err := build(rules, facts)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		e.EnsureWindow(m)
		engineTime := time.Since(start)
		engineFirings := e.Stats().Firings

		start = time.Now()
		naiveStore, naiveStats, err := baseline.NaiveTP(prog, db, m)
		if err != nil {
			return nil, err
		}
		naiveTime := time.Since(start)
		// Differential check while we are here.
		for tm := 0; tm <= m; tm++ {
			if naiveStore.StateKey(tm) != e.Store().StateKey(tm) {
				return nil, fmt.Errorf("E8: naive and engine disagree at t=%d (n=%d)", tm, n)
			}
		}
		ratio := float64(naiveStats.Firings) / float64(engineFirings)
		t.Rows = append(t.Rows, []string{
			itoa(n), itoa(m), itoa(engineFirings), itoa(naiveStats.Firings),
			fmt.Sprintf("%.1fx", ratio), ms(engineTime), ms(naiveTime),
		})
	}
	return t, nil
}

// BTWorkFor is a helper used by benchmarks: process one ski database of
// the given scale end to end and return the work summary.
func BTWorkFor(resorts int) (core.WorkSummary, error) {
	rules, facts := workload.Ski(workload.SkiParams{YearLen: 50, Resorts: resorts, Planes: 2 * resorts, Holidays: 5, Seed: 42})
	prog, db, err := parser.ParseUnit(rules + facts)
	if err != nil {
		return core.WorkSummary{}, err
	}
	bt, err := core.New(prog, db)
	if err != nil {
		return core.WorkSummary{}, err
	}
	return bt.Work()
}

// E9 — extension (Section 8 future work): query-relevance pruning. A
// database describing k independent periodic subsystems has a global
// period equal to the lcm of the subsystem periods, but a query touches
// only one subsystem; slicing the rules to the query's dependency closure
// shrinks the certified period — and the work — from the lcm to the single
// subsystem's period.
func E9(quick bool) (*Table, error) {
	ks := []int{2, 3, 4, 5, 6}
	if quick {
		ks = []int{2, 3}
	}
	t := &Table{
		ID:     "E9",
		Title:  "Extension: dependency slicing before BT (Section 8's optimization direction)",
		Claim:  "answers on the query's predicates are invariant under slicing; the certified period shrinks from lcm(all) to the touched subsystem's",
		Expect: "full period = product of the first k primes (grows exponentially); pruned period = 2 throughout; identical answers",
		Header: []string{"subsystems", "full_period", "full_window", "full_ms", "pruned_period", "pruned_ms", "answers_agree"},
	}
	for _, k := range ks {
		rules, facts := workload.Cycles(workload.Primes(k))
		prog, db, err := parser.ParseUnit(rules + facts)
		if err != nil {
			return nil, err
		}
		q, err := parser.ParseQuery("cyc0(1000000)", prog.Preds)
		if err != nil {
			return nil, err
		}

		start := time.Now()
		full, err := core.New(prog.Clone(), db)
		if err != nil {
			return nil, err
		}
		fullAns, err := full.Ask(q)
		if err != nil {
			return nil, err
		}
		fullPeriod, err := full.Period()
		if err != nil {
			return nil, err
		}
		fullTime := time.Since(start)

		start = time.Now()
		pp := core.PruneForQuery(prog, q)
		pdb := core.PruneDatabase(pp, q, db)
		slim, err := core.New(pp, pdb)
		if err != nil {
			return nil, err
		}
		slimAns, err := slim.Ask(q)
		if err != nil {
			return nil, err
		}
		slimPeriod, err := slim.Period()
		if err != nil {
			return nil, err
		}
		slimTime := time.Since(start)

		if fullAns != slimAns {
			return nil, fmt.Errorf("E9: pruning changed the answer at k=%d", k)
		}
		if slimPeriod.P != 2 {
			return nil, fmt.Errorf("E9: pruned period %v, want 2", slimPeriod)
		}
		t.Rows = append(t.Rows, []string{
			itoa(k), itoa(fullPeriod.P), itoa(full.Evaluator().Window()), ms(fullTime),
			itoa(slimPeriod.P), ms(slimTime), "yes",
		})
	}
	return t, nil
}

// E10 — the Section 7 generalization: with more than one function symbol
// (functional deductive databases, [6]) the term universe branches and the
// depth-m model of even a two-rule program is Θ(|Σ|^m); Theorem 4.1's
// equivalence breaks down and no tractable subclasses are known. We
// measure the per-depth model growth of the "reach everything" program as
// the alphabet grows from 1 (a plain TDD) to 3.
func E10(quick bool) (*Table, error) {
	depth := 12
	if quick {
		depth = 8
	}
	t := &Table{
		ID:     "E10",
		Title:  "Functional generalization ([6], Section 7): model growth vs alphabet size",
		Claim:  "Sec 7: with >= 2 unary function symbols, depth-m models (and specifications) blow up as |Sigma|^m",
		Expect: "|Sigma|=1: facts grow linearly in depth (this is a TDD); |Sigma|=2: doubling per level; |Sigma|=3: tripling",
		Header: []string{"alphabet", "depth", "facts_total", "facts_at_depth", "time_ms"},
	}
	for _, alphabet := range []string{"f", "fg", "fgh"} {
		prog := &fddb.Program{Alphabet: alphabet}
		for _, sym := range alphabet {
			prog.Rules = append(prog.Rules, fddb.Rule{
				Head: fddb.Atom{Pred: "reach", Fun: &fddb.Term{Prefix: string(sym), HasVar: true}},
				Body: []fddb.Atom{{Pred: "reach", Fun: &fddb.Term{HasVar: true}}},
			})
		}
		db := &fddb.Database{Facts: []fddb.Fact{{Pred: "reach", Functional: true}}}
		m := depth
		if len(alphabet) == 3 {
			m = depth * 2 / 3 // keep 3^m within reason
		}
		e, err := fddb.NewEvaluator(prog, db)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		e.EnsureDepth(m)
		elapsed := time.Since(start)
		atDepth := e.Store().FactsAtDepth(m)
		want := 1
		for i := 0; i < m; i++ {
			want *= len(alphabet)
		}
		if atDepth != want {
			return nil, fmt.Errorf("E10: |Sigma|=%d depth %d: %d facts, want %d", len(alphabet), m, atDepth, want)
		}
		t.Rows = append(t.Rows, []string{
			alphabet, itoa(m), itoa(e.Store().Len()), itoa(atDepth), ms(elapsed),
		})
	}
	return t, nil
}

// Parallelism is the engine worker bound E13 compares against the
// sequential schedule. Defaults to the machine's CPU count; cmd/tddbench
// -parallel overrides it.
var Parallelism = runtime.NumCPU()

// E13 — parallel windowed fixpoint: time-stratification makes the sweep
// partition safe, so on workloads whose states are mutually independent
// (FanOut) a parallel evaluator should approach a NumCPU-fold speedup,
// while a chain of dependent states (Chain) degenerates to sequential
// rounds and gains nothing. Both schedules must certify the identical
// period and derive the identical fact count — parallelism changes
// throughput, never results.
func E13(quick bool) (*Table, error) {
	type wl struct {
		name         string
		rules, facts string
	}
	fanStates, fanWidth, chainNodes := 48, 32, 48
	if quick {
		fanStates, fanWidth, chainNodes = 16, 12, 16
	}
	fr, ff := workload.FanOut(fanStates, fanWidth)
	cr, cf, stream := workload.Chain(chainNodes)
	workloads := []wl{
		{"fanout", fr, ff},
		{"chain", cr, cf + strings.Join(stream, "")},
	}
	t := &Table{
		ID:     "E13",
		Title:  fmt.Sprintf("Parallel windowed fixpoint (sequential vs %d workers, GOMAXPROCS=%d)", Parallelism, runtime.GOMAXPROCS(0)),
		Claim:  "Time-stratified sweeps partition by timestamp: independent states evaluate concurrently with bit-identical results",
		Expect: "fanout: speedup approaching the worker count on multi-core hosts; chain: ~1x (states form one dependency line); identical period+derived in both schedules",
		Header: []string{"workload", "window", "period", "derived_seq", "derived_par", "seq_ms", "par_ms", "speedup"},
	}
	for _, w := range workloads {
		seq, _, _, err := build(w.rules, w.facts)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		sseq, err := spec.Compute(seq, 1<<20)
		if err != nil {
			return nil, err
		}
		seqTime := time.Since(start)

		par, _, _, err := build(w.rules, w.facts)
		if err != nil {
			return nil, err
		}
		par.SetParallelism(Parallelism)
		start = time.Now()
		spar, err := spec.Compute(par, 1<<20)
		if err != nil {
			return nil, err
		}
		parTime := time.Since(start)

		if sseq.Period != spar.Period {
			return nil, fmt.Errorf("E13: %s: schedules disagree on the period: %v vs %v", w.name, sseq.Period, spar.Period)
		}
		dseq, dpar := seq.Stats().Derived, par.Stats().Derived
		if dseq != dpar {
			return nil, fmt.Errorf("E13: %s: schedules disagree on derived facts: %d vs %d", w.name, dseq, dpar)
		}
		for tt := 0; tt <= seq.Window() && tt <= par.Window(); tt++ {
			if seq.Store().StateKey(tt) != par.Store().StateKey(tt) {
				return nil, fmt.Errorf("E13: %s: schedules disagree on state %d", w.name, tt)
			}
		}
		t.Rows = append(t.Rows, []string{
			w.name, itoa(seq.Window()), sseq.Period.String(), itoa(dseq), itoa(dpar),
			ms(seqTime), ms(parTime),
			fmt.Sprintf("%.2fx", float64(seqTime)/float64(parTime)),
		})
	}
	return t, nil
}

// EvalBenchCase is one instance of the indexed-join evaluation benchmark:
// an order-scrambled E1/E8 family workload evaluated to a fixed window.
// Shared by E18, cmd/tddevalbench (BENCH_eval.json), and — for the small
// instances — mirrored by BenchmarkIndexedJoin behind the ci.sh gate.
type EvalBenchCase struct {
	Name   string // e.g. "E1_ski" / "E8_reach_large"
	Params string // human-readable instance parameters
	Rules  string
	Facts  string
	Window int
	Large  bool // skipped in quick runs (the nested baseline takes ~40s+)
}

// EvalBenchCases returns the benchmark instances. Both families are
// emitted in "generate-then-filter" body order (workload.SkiParams.
// ResortFirst / workload.ReachParams.PathFirst): the model is unchanged,
// but a source-order evaluator enumerates every resort per rule per sweep
// (E1) or scans every edge per path tuple (E8), while the join-order
// planner recovers the selective order from the store's cardinality
// counters.
func EvalBenchCases() []EvalBenchCase {
	var out []EvalBenchCase
	add := func(name, params, rules, facts string, window int, large bool) {
		out = append(out, EvalBenchCase{Name: name, Params: params, Rules: rules, Facts: facts, Window: window, Large: large})
	}
	r, f := workload.Ski(workload.SkiParams{YearLen: 40, Resorts: 1024, Planes: 32, Holidays: 4, ResortFirst: true, Seed: 42})
	add("E1_ski", "year=40 resorts=1024 planes=32", r, f, 120, false)
	r, f = workload.Ski(workload.SkiParams{YearLen: 50, Resorts: 4096, Planes: 64, Holidays: 5, ResortFirst: true, Seed: 42})
	add("E1_ski_large", "year=50 resorts=4096 planes=64", r, f, 200, true)
	r, f = workload.Reachability(workload.ReachParams{Nodes: 192, Edges: 288, PathFirst: true, Seed: 13})
	add("E8_reach", "nodes=192 edges=288", r, f, 24, false)
	r, f = workload.Reachability(workload.ReachParams{Nodes: 1024, Edges: 1536, PathFirst: true, Seed: 13})
	add("E8_reach_large", "nodes=1024 edges=1536", r, f, 16, true)
	return out
}

// E18 — Extension: the indexed join engine. On order-scrambled E1/E8
// instances, the planner + multi-column hash indexes must (a) derive a
// bit-identical model to the nested-loop baseline and (b) beat it by a
// widening factor as the database grows.
func E18(quick bool) (*Table, error) {
	t := &Table{
		ID:     "E18",
		Title:  "Indexed joins vs nested-loop evaluation (order-scrambled E1/E8)",
		Claim:  "extension: hash-indexed joins with cardinality-ordered plans remove the source-order sensitivity of bottom-up evaluation",
		Expect: "identical derived facts and states; speedup grows with database size (>=10x on the large instances)",
		Header: []string{"instance", "params", "window", "derived", "nested_ms", "indexed_ms", "speedup"},
	}
	for _, c := range EvalBenchCases() {
		if quick && c.Large {
			continue
		}
		runMode := func(mode engine.JoinMode) (*engine.Evaluator, time.Duration, error) {
			e, _, _, err := build(c.Rules, c.Facts)
			if err != nil {
				return nil, 0, err
			}
			e.SetJoinMode(mode)
			start := time.Now()
			e.EnsureWindow(c.Window)
			return e, time.Since(start), nil
		}
		idx, idxTime, err := runMode(engine.JoinIndexed)
		if err != nil {
			return nil, err
		}
		nst, nstTime, err := runMode(engine.JoinNestedLoop)
		if err != nil {
			return nil, err
		}
		if di, dn := idx.Stats().Derived, nst.Stats().Derived; di != dn {
			return nil, fmt.Errorf("E18: %s: join modes disagree on derived facts: indexed %d, nested %d", c.Name, di, dn)
		}
		for tt := 0; tt <= c.Window; tt++ {
			if idx.Store().StateKey(tt) != nst.Store().StateKey(tt) {
				return nil, fmt.Errorf("E18: %s: join modes disagree on state %d", c.Name, tt)
			}
		}
		t.Rows = append(t.Rows, []string{
			c.Name, c.Params, itoa(c.Window), itoa(idx.Stats().Derived),
			ms(nstTime), ms(idxTime),
			fmt.Sprintf("%.1fx", float64(nstTime)/float64(idxTime)),
		})
	}
	t.Notes = append(t.Notes,
		"bodies are written generate-then-filter; the nested-loop baseline (source order, first-column index) is the pre-planner engine",
		"quick runs skip the *_large instances; scripts/bench_eval.sh records them in BENCH_eval.json")
	return t, nil
}
