package workload

import (
	"reflect"
	"strings"
	"testing"

	"tdd/internal/classify"
	"tdd/internal/engine"
	"tdd/internal/parser"
	"tdd/internal/period"
)

func detect(t *testing.T, rules, facts string, maxWindow int) period.Period {
	t.Helper()
	prog, db, err := parser.ParseUnit(rules + facts)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	e, err := engine.New(prog, db)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	p, _, err := period.Detect(e, maxWindow)
	if err != nil {
		t.Fatalf("detect: %v", err)
	}
	return p
}

func TestSkiGeneratorPeriodIsYear(t *testing.T) {
	rules, facts := Ski(SkiParams{YearLen: 20, Resorts: 3, Planes: 4, Holidays: 2, Seed: 1})
	p := detect(t, rules, facts, 1<<16)
	if p.P != 20 {
		t.Errorf("period = %v, want p=20", p)
	}
	prog, err := parser.ParseProgram(rules)
	if err != nil {
		t.Fatal(err)
	}
	if ok, reason := classify.MultiSeparable(prog); !ok {
		t.Errorf("ski rules not multi-separable: %s", reason)
	}
}

func TestSkiDeterministic(t *testing.T) {
	_, f1 := Ski(SkiParams{YearLen: 20, Resorts: 3, Planes: 4, Holidays: 2, Seed: 7})
	_, f2 := Ski(SkiParams{YearLen: 20, Resorts: 3, Planes: 4, Holidays: 2, Seed: 7})
	if f1 != f2 {
		t.Error("same seed produced different databases")
	}
	_, f3 := Ski(SkiParams{YearLen: 20, Resorts: 3, Planes: 4, Holidays: 2, Seed: 8})
	if f1 == f3 {
		t.Error("different seeds produced identical databases")
	}
}

func TestReachabilityInflationaryPeriodOne(t *testing.T) {
	rules, facts := Reachability(ReachParams{Nodes: 12, Edges: 30, Seed: 3})
	p := detect(t, rules, facts, 1<<12)
	if p.P != 1 {
		t.Errorf("period = %v, want p=1", p)
	}
	prog, err := parser.ParseProgram(rules)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := classify.Inflationary(prog)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("reachability rules should be inflationary")
	}
}

func TestReachabilityEdgeCount(t *testing.T) {
	_, facts := Reachability(ReachParams{Nodes: 10, Edges: 25, Seed: 5})
	if got := strings.Count(facts, "edge("); got != 25 {
		t.Errorf("edges = %d, want 25", got)
	}
	if got := strings.Count(facts, "node("); got != 10 {
		t.Errorf("nodes = %d, want 10", got)
	}
}

func TestCounterPeriodIsExponential(t *testing.T) {
	for _, bits := range []int{2, 3, 4, 5} {
		rules, facts := Counter(bits)
		p := detect(t, rules, facts, 1<<12)
		if want := 1 << bits; p.P != want {
			t.Errorf("bits=%d: period = %v, want p=%d", bits, p, want)
		}
	}
}

func TestCounterNotMultiSeparableNotInflationary(t *testing.T) {
	prog, err := parser.ParseProgram(CounterRules)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := classify.MultiSeparable(prog); ok {
		t.Error("counter rules misclassified multi-separable")
	}
	ok, err := classify.Inflationary(prog)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("counter rules misclassified inflationary")
	}
}

func TestCyclesLcm(t *testing.T) {
	rules, facts := Cycles([]int{2, 3, 5})
	p := detect(t, rules, facts, 1<<12)
	if p.P != 30 {
		t.Errorf("period = %v, want p=30", p)
	}
}

func TestPrimes(t *testing.T) {
	if got := Primes(6); !reflect.DeepEqual(got, []int{2, 3, 5, 7, 11, 13}) {
		t.Errorf("Primes(6) = %v", got)
	}
	if got := Primes(0); len(got) != 0 {
		t.Errorf("Primes(0) = %v", got)
	}
}
