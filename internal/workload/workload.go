// Package workload generates the parametric program/database families the
// experiment harness (EXPERIMENTS.md) and benchmarks are run on:
//
//   - Ski — the paper's Section 2 travel-agent example, scaled: year
//     length, number of resorts, and number of seed flights are
//     parameters. Multi-separable, I-periodic with period = year length.
//   - Reachability — the paper's Section 2 graph example on seeded random
//     graphs. Inflationary: period 1, base bounded by the state size.
//   - Counter — a fixed rule set simulating an n-bit binary counter whose
//     least model has period 2^n in the database size: the empirical
//     witness for the PSPACE-hardness results (Theorems 3.2/3.3).
//   - Cycles — k independent cycles with chosen step sizes; the model's
//     period is their lcm, giving programs whose period is exponential in
//     the *program* size.
package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// SkiParams scales the travel-agent example.
type SkiParams struct {
	YearLen  int // days per year (the paper's 365)
	Resorts  int // number of resort constants
	Planes   int // number of seed flights, spread over resorts and days
	Holidays int // number of holiday days per year
	// ResortFirst emits the plane-rule bodies in generate-then-filter
	// order — resort(X), offseason(T), plane(T, X) — instead of the
	// hand-optimized plane-first order. The model is identical; a
	// source-order evaluator now enumerates every resort per rule per
	// sweep, while a join-order planner recovers the plane-first plan
	// from cardinalities. The benchmark knob for order sensitivity.
	ResortFirst bool
	Seed        int64
}

// Ski generates the scaled travel-agent TDD. Winter occupies the first 40%
// of the year, off-season the rest; flights jump +7 in the off-season, +2
// in winter, +1 on holidays.
func Ski(p SkiParams) (rules, facts string) {
	if p.YearLen < 10 {
		p.YearLen = 10
	}
	if p.Resorts < 1 {
		p.Resorts = 1
	}
	if p.Planes < 1 {
		p.Planes = 1
	}
	if p.ResortFirst {
		rules = `plane(T+7, X) :- resort(X), offseason(T), plane(T, X).
plane(T+2, X) :- resort(X), winter(T), plane(T, X).
plane(T+1, X) :- resort(X), holiday(T), plane(T, X).
`
	} else {
		rules = `plane(T+7, X) :- plane(T, X), resort(X), offseason(T).
plane(T+2, X) :- plane(T, X), resort(X), winter(T).
plane(T+1, X) :- plane(T, X), resort(X), holiday(T).
`
	}
	rules += fmt.Sprintf(`offseason(T+%d) :- offseason(T).
winter(T+%d) :- winter(T).
holiday(T+%d) :- holiday(T).
`, p.YearLen, p.YearLen, p.YearLen)

	rng := rand.New(rand.NewSource(p.Seed))
	var b strings.Builder
	winterEnd := p.YearLen * 4 / 10
	for d := 0; d < p.YearLen; d++ {
		if d < winterEnd {
			fmt.Fprintf(&b, "winter(%d).\n", d)
		} else {
			fmt.Fprintf(&b, "offseason(%d).\n", d)
		}
	}
	for h := 0; h < p.Holidays; h++ {
		fmt.Fprintf(&b, "holiday(%d).\n", rng.Intn(p.YearLen))
	}
	for r := 0; r < p.Resorts; r++ {
		fmt.Fprintf(&b, "resort(r%d).\n", r)
	}
	for i := 0; i < p.Planes; i++ {
		fmt.Fprintf(&b, "plane(%d, r%d).\n", rng.Intn(p.YearLen), rng.Intn(p.Resorts))
	}
	return rules, b.String()
}

// ReachParams scales the graph example.
type ReachParams struct {
	Nodes int
	Edges int
	// PathFirst emits the recursive body as path(K, Y, Z), edge(X, Y):
	// same model, but a source-order evaluator scans every path tuple and
	// then — with edge's first column X still unbound — every edge per
	// tuple, an O(|path| · |edge|) cross-product per state. A planner
	// restores edge-first from cardinalities; a second-column index makes
	// even the path-first order stream. The benchmark knob for order
	// sensitivity.
	PathFirst bool
	Seed      int64
}

// Reachability generates the bounded-path TDD of Section 2 over a seeded
// random directed graph.
func Reachability(p ReachParams) (rules, facts string) {
	if p.PathFirst {
		rules = `path(K, X, X) :- node(X), null(K).
path(K+1, X, Z) :- path(K, Y, Z), edge(X, Y).
path(K+1, X, Y) :- path(K, X, Y).
`
	} else {
		rules = `path(K, X, X) :- node(X), null(K).
path(K+1, X, Z) :- edge(X, Y), path(K, Y, Z).
path(K+1, X, Y) :- path(K, X, Y).
`
	}
	rng := rand.New(rand.NewSource(p.Seed))
	var b strings.Builder
	b.WriteString("null(0).\n")
	for i := 0; i < p.Nodes; i++ {
		fmt.Fprintf(&b, "node(n%d).\n", i)
	}
	seen := make(map[[2]int]bool)
	for len(seen) < p.Edges {
		u, v := rng.Intn(p.Nodes), rng.Intn(p.Nodes)
		if u == v || seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		fmt.Fprintf(&b, "edge(n%d, n%d).\n", u, v)
	}
	return rules, b.String()
}

// Chain generates the bounded-path TDD over a directed chain
// n0 -> n1 -> ... -> n(nodes-1), split for incremental ingestion: facts
// holds the nodes and the first edge, stream holds the remaining edges one
// fact source per edge, in chain order. Asserting the stream step by step
// keeps lengthening the longest path — each step genuinely perturbs the
// model's tail, so the workload exercises re-certification, not just delta
// joins. It is the benchmark workload of BenchmarkAssertVsReopen.
func Chain(nodes int) (rules, facts string, stream []string) {
	rules = `path(K, X, X) :- node(X), null(K).
path(K+1, X, Z) :- edge(X, Y), path(K, Y, Z).
path(K+1, X, Y) :- path(K, X, Y).
`
	var b strings.Builder
	b.WriteString("null(0).\n")
	for i := 0; i < nodes; i++ {
		fmt.Fprintf(&b, "node(n%d).\n", i)
	}
	if nodes > 1 {
		b.WriteString("edge(n0, n1).\n")
	}
	for i := 1; i+1 < nodes; i++ {
		stream = append(stream, fmt.Sprintf("edge(n%d, n%d).\n", i, i+1))
	}
	return rules, b.String(), stream
}

// FanOut generates a wide, embarrassingly-parallel workload: every state
// t < states is seeded with width independent constants and two rules do
// quadratic within-state work (all seed pairs) plus one step of forward
// propagation. States share no data, so a parallel evaluator can close
// the whole window in one round — the best case for timestamp
// partitioning, and the counterpart of Chain, whose states form one long
// dependency line (the worst case). Used by BenchmarkParallelFixpoint
// and experiment E13.
func FanOut(states, width int) (rules, facts string) {
	if states < 1 {
		states = 1
	}
	if width < 1 {
		width = 1
	}
	rules = `pair(T, X, Y) :- seed(T, X), seed(T, Y).
mark(T+1, X) :- pair(T, X, X).
`
	var b strings.Builder
	for t := 0; t < states; t++ {
		for i := 0; i < width; i++ {
			fmt.Fprintf(&b, "seed(%d, c%d).\n", t, i)
		}
	}
	return rules, b.String()
}

// Distractor generates the relevance-slicing showcase: a small relevant
// chain —
//
//	q(T+2, X) :- q(T, X), rel(X).
//
// whose backward slice has period 2 and a handful of facts, drowned in k
// independent distractor cycles dK(T+step, X) :- dK(T, X), junk(X), each
// carrying every junk constant forward. The cycles never feed q, but the
// FULL model's period is lcm(2, steps) — with the default steps 3, 5, 7
// that is 210 — and every one of its states holds k·junk distractor
// facts. A query about q pays all of that on the full path and none of it
// on the sliced path, which is the point: the gap between the two is
// pure, provably irrelevant work. Used by BenchmarkSlicedAsk and
// experiment E19.
func Distractor(steps []int, junk int) (rules, facts string) {
	if len(steps) == 0 {
		steps = []int{3, 5, 7}
	}
	if junk < 1 {
		junk = 1
	}
	var rb, fb strings.Builder
	// c0 is seeded (q holds at every even time); c1 is relevant but never
	// seeded, so `exists T q(T, c1)` has no witness and an existential ask
	// about it must scan the full temporal domain — the worst case the
	// slice shrinks.
	rb.WriteString("q(T+2, X) :- q(T, X), rel(X).\n")
	fb.WriteString("rel(c0).\nrel(c1).\nq(0, c0).\n")
	for i, s := range steps {
		fmt.Fprintf(&rb, "d%d(T+%d, X) :- d%d(T, X), junk(X).\n", i, s, i)
	}
	for j := 0; j < junk; j++ {
		fmt.Fprintf(&fb, "junk(j%d).\n", j)
		for i := range steps {
			fmt.Fprintf(&fb, "d%d(0, j%d).\n", i, j)
		}
	}
	return rb.String(), fb.String()
}

// CounterRules is the fixed rule set of the exponential-period family: an
// n-bit binary counter clocked by tick. Bit values are carried as the
// complementary predicates one/zero; the carry chain is computed within
// each state by the data-only rules. The rules are mutually recursive
// (one -> carry -> one), so the program is correctly classified outside
// the multi-separable class — Theorem 3.1's exponential bound is tight on
// this family.
const CounterRules = `tick(T+1) :- tick(T).
carry(T, X) :- tick(T), first(X).
carry(T, Y) :- succ(X, Y), carry(T, X), one(T, X).
nocarry(T, Y) :- succ(X, Y), zero(T, X).
nocarry(T, Y) :- succ(X, Y), nocarry(T, X).
one(T+1, X) :- zero(T, X), carry(T, X).
one(T+1, X) :- one(T, X), nocarry(T, X).
zero(T+1, X) :- one(T, X), carry(T, X).
zero(T+1, X) :- zero(T, X), nocarry(T, X).
`

// Counter generates the n-bit counter database: bits b0 (least
// significant) through b(n-1), all initially zero. The least model's
// states encode t mod 2^n, so its minimal period is exactly 2^n — linear
// database growth, exponential period.
func Counter(bits int) (rules, facts string) {
	var b strings.Builder
	b.WriteString("tick(0).\nfirst(b0).\n")
	for i := 0; i < bits; i++ {
		fmt.Fprintf(&b, "zero(0, b%d).\n", i)
	}
	for i := 0; i+1 < bits; i++ {
		fmt.Fprintf(&b, "succ(b%d, b%d).\n", i, i+1)
	}
	return CounterRules, b.String()
}

// Cycles generates k independent cycle predicates with the given step
// sizes; the model's period is lcm(steps). With the first k primes as
// steps the period is exponential in the program size.
func Cycles(steps []int) (rules, facts string) {
	var rb, fb strings.Builder
	for i, s := range steps {
		fmt.Fprintf(&rb, "cyc%d(T+%d) :- cyc%d(T).\n", i, s, i)
		fmt.Fprintf(&fb, "cyc%d(0).\n", i)
	}
	return rb.String(), fb.String()
}

// Primes returns the first n primes, for use with Cycles.
func Primes(n int) []int {
	var out []int
	for c := 2; len(out) < n; c++ {
		prime := true
		for _, p := range out {
			if p*p > c {
				break
			}
			if c%p == 0 {
				prime = false
				break
			}
		}
		if prime {
			out = append(out, c)
		}
	}
	return out
}
