// Package fddb implements functional deductive databases — the
// generalization of TDDs that the paper's relational specifications come
// from ([6]) and that Section 7 discusses: instead of the single unary
// function +1, the functional argument ranges over terms built from a
// finite alphabet of unary function symbols applied to the constant 0.
// A ground functional term f(g(0)) is represented as the word "fg"; a rule
// literal P(f(g(V)), x̄) carries the prefix word "fg" ahead of the
// functional variable.
//
// With one symbol this is exactly a TDD (words = unary numbers). With two
// or more symbols the term universe branches: the number of ground terms
// of depth <= m is Θ(|Σ|^m), and — as the paper notes — the proof of
// Theorem 4.1 does not go through and no tractable subclasses are known.
// This package provides the part that remains decidable for forward rule
// sets: bottom-up evaluation of the least model restricted to a depth
// window, which suffices to answer any ground atomic query (the query's
// own depth bounds the window). Experiment E10 measures the |Σ|^m blow-up
// against the linear TDD case.
package fddb

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"tdd/internal/ast"
)

// Term is a functional term: Prefix applied to either the functional
// variable (HasVar) or to the constant 0. The prefix is a word over the
// program's alphabet, outermost symbol first: f(g(V)) is {Prefix: "fg",
// HasVar: true}; the ground term g(0) is {Prefix: "g"}. Var optionally
// names the variable (each rule has at most one functional variable, so
// the name is informational; Validate rejects rules whose named terms
// disagree).
type Term struct {
	Prefix string
	HasVar bool
	Var    string
}

func (t Term) String() string {
	inner := "0"
	if t.HasVar {
		inner = "V"
		if t.Var != "" {
			inner = t.Var
		}
	}
	out := inner
	for i := len(t.Prefix) - 1; i >= 0; i-- {
		out = string(t.Prefix[i]) + "(" + out + ")"
	}
	return out
}

// Atom is a functional or plain atom; Fun is nil for non-functional
// predicates.
type Atom struct {
	Pred string
	Fun  *Term
	Args []ast.Symbol
}

func (a Atom) String() string {
	var parts []string
	if a.Fun != nil {
		parts = append(parts, a.Fun.String())
	}
	for _, s := range a.Args {
		parts = append(parts, s.String())
	}
	if len(parts) == 0 {
		return a.Pred
	}
	return a.Pred + "(" + strings.Join(parts, ", ") + ")"
}

// Rule is a functional Horn rule with at most one functional variable.
type Rule struct {
	Head Atom
	Body []Atom
}

// Atoms yields the head followed by the body atoms.
func (r Rule) Atoms() []Atom {
	out := make([]Atom, 0, 1+len(r.Body))
	out = append(out, r.Head)
	out = append(out, r.Body...)
	return out
}

func (r Rule) String() string {
	var b strings.Builder
	b.WriteString(r.Head.String())
	if len(r.Body) > 0 {
		b.WriteString(" :- ")
		for i, a := range r.Body {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.String())
		}
	}
	b.WriteByte('.')
	return b.String()
}

// Fact is a ground fact: the functional argument is a ground word (may be
// empty, meaning the constant 0). Functional reports whether the predicate
// carries a functional argument at all.
type Fact struct {
	Pred       string
	Functional bool
	Word       string
	Args       []string
}

func (f Fact) String() string {
	var parts []string
	if f.Functional {
		parts = append(parts, Term{Prefix: f.Word}.String())
	}
	for _, c := range f.Args {
		parts = append(parts, c)
	}
	if len(parts) == 0 {
		return f.Pred
	}
	return f.Pred + "(" + strings.Join(parts, ", ") + ")"
}

// Program is a finite set of functional rules over a fixed alphabet.
type Program struct {
	Alphabet string // distinct function symbols, e.g. "fg"
	Rules    []Rule
}

// Validation errors.
var (
	ErrBadAlphabet    = errors.New("fddb: alphabet symbols must be distinct letters")
	ErrUnknownSymbol  = errors.New("fddb: function symbol not in the alphabet")
	ErrNotForward     = errors.New("fddb: rule is not forward (a body prefix is longer than the head prefix)")
	ErrRangeRestrict  = errors.New("fddb: rule is not range-restricted")
	ErrGroundFunRule  = errors.New("fddb: ground functional terms are not allowed in rules")
	ErrMixedPredicate = errors.New("fddb: predicate used inconsistently")
)

// Validate checks the program: a well-formed alphabet; prefixes drawn from
// it; at most one functional variable per rule (implicit in the Term
// representation); range restriction (head variables, including the
// functional one, occur in the body); forwardness (no body prefix longer
// than the head's — the condition under which depth-stratified bottom-up
// evaluation is sound); and consistent predicate signatures.
func (p *Program) Validate() error {
	seen := make(map[rune]bool)
	for _, r := range p.Alphabet {
		if seen[r] || r < 'a' || r > 'z' {
			return fmt.Errorf("%w: %q", ErrBadAlphabet, p.Alphabet)
		}
		seen[r] = true
	}
	sigs := make(map[string][2]int) // pred -> {functional(0/1), arity}
	note := func(a Atom) error {
		fun := 0
		if a.Fun != nil {
			fun = 1
		}
		sig := [2]int{fun, len(a.Args)}
		if prev, ok := sigs[a.Pred]; ok && prev != sig {
			return fmt.Errorf("%w: %s", ErrMixedPredicate, a.Pred)
		}
		sigs[a.Pred] = sig
		for _, r := range a.Fun.prefixOrEmpty() {
			if !seen[r] {
				return fmt.Errorf("%w: %q in %s", ErrUnknownSymbol, string(r), a)
			}
		}
		return nil
	}
	for _, rule := range p.Rules {
		if err := note(rule.Head); err != nil {
			return err
		}
		// At most one functional variable per rule: all named functional
		// terms must agree.
		funName := ""
		for _, a := range rule.Atoms() {
			if a.Fun == nil || !a.Fun.HasVar || a.Fun.Var == "" {
				continue
			}
			if funName == "" {
				funName = a.Fun.Var
				continue
			}
			if a.Fun.Var != funName {
				return fmt.Errorf("fddb: rule %s uses two functional variables %s and %s", rule, funName, a.Fun.Var)
			}
		}
		bodyVars := make(map[string]bool)
		bodyHasFunVar := false
		maxBody := 0
		for _, a := range rule.Body {
			if err := note(a); err != nil {
				return err
			}
			if a.Fun != nil {
				if !a.Fun.HasVar {
					return fmt.Errorf("%w: %s", ErrGroundFunRule, rule)
				}
				bodyHasFunVar = true
				if len(a.Fun.Prefix) > maxBody {
					maxBody = len(a.Fun.Prefix)
				}
			}
			for _, s := range a.Args {
				if s.IsVar {
					bodyVars[s.Name] = true
				}
			}
		}
		if rule.Head.Fun != nil {
			if !rule.Head.Fun.HasVar {
				return fmt.Errorf("%w: %s", ErrGroundFunRule, rule)
			}
			if !bodyHasFunVar {
				return fmt.Errorf("%w: functional variable of head not in body: %s", ErrRangeRestrict, rule)
			}
			if maxBody > len(rule.Head.Fun.Prefix) {
				return fmt.Errorf("%w: %s", ErrNotForward, rule)
			}
		} else if bodyHasFunVar {
			// Plain head, functional body: fine (like non-temporal heads).
			_ = bodyHasFunVar
		}
		for _, s := range rule.Head.Args {
			if s.IsVar && !bodyVars[s.Name] {
				return fmt.Errorf("%w: variable %s of head not in body: %s", ErrRangeRestrict, s.Name, rule)
			}
		}
	}
	return nil
}

func (t *Term) prefixOrEmpty() string {
	if t == nil {
		return ""
	}
	return t.Prefix
}

// Database is a finite set of ground functional facts.
type Database struct {
	Facts []Fact
}

// MaxDepth returns the maximum word length among functional facts.
func (d *Database) MaxDepth() int {
	c := 0
	for _, f := range d.Facts {
		if f.Functional && len(f.Word) > c {
			c = len(f.Word)
		}
	}
	return c
}

// SortFacts orders facts deterministically for display and tests.
func SortFacts(fs []Fact) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pred != b.Pred {
			return a.Pred < b.Pred
		}
		if a.Word != b.Word {
			return a.Word < b.Word
		}
		return strings.Join(a.Args, "\x00") < strings.Join(b.Args, "\x00")
	})
}
