package fddb

import (
	"fmt"

	"tdd/internal/ast"
)

// Store holds the facts of a functional least model restricted to a depth
// window: functional relations indexed by predicate and ground word, and
// plain relations by predicate.
type Store struct {
	fun   map[string]map[string]map[string][]string // pred -> word -> key -> tuple
	plain map[string]map[string][]string            // pred -> key -> tuple
	count int
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		fun:   make(map[string]map[string]map[string][]string),
		plain: make(map[string]map[string][]string),
	}
}

func tupleKey(args []string) string {
	out := ""
	for i, a := range args {
		if i > 0 {
			out += "\x00"
		}
		out += a
	}
	return out
}

// Insert adds a fact, reporting whether it was new.
func (s *Store) Insert(f Fact) bool {
	if f.Functional {
		byWord, ok := s.fun[f.Pred]
		if !ok {
			byWord = make(map[string]map[string][]string)
			s.fun[f.Pred] = byWord
		}
		rel, ok := byWord[f.Word]
		if !ok {
			rel = make(map[string][]string)
			byWord[f.Word] = rel
		}
		k := tupleKey(f.Args)
		if _, dup := rel[k]; dup {
			return false
		}
		rel[k] = append([]string(nil), f.Args...)
		s.count++
		return true
	}
	rel, ok := s.plain[f.Pred]
	if !ok {
		rel = make(map[string][]string)
		s.plain[f.Pred] = rel
	}
	k := tupleKey(f.Args)
	if _, dup := rel[k]; dup {
		return false
	}
	rel[k] = append([]string(nil), f.Args...)
	s.count++
	return true
}

// Has reports membership.
func (s *Store) Has(f Fact) bool {
	if f.Functional {
		_, ok := s.fun[f.Pred][f.Word][tupleKey(f.Args)]
		return ok
	}
	_, ok := s.plain[f.Pred][tupleKey(f.Args)]
	return ok
}

// Len returns the number of stored facts.
func (s *Store) Len() int { return s.count }

// FactsAtDepth returns the number of functional facts whose word has the
// given length — the per-level model size E10 charts.
func (s *Store) FactsAtDepth(depth int) int {
	n := 0
	for _, byWord := range s.fun {
		for w, rel := range byWord {
			if len(w) == depth {
				n += len(rel)
			}
		}
	}
	return n
}

// Evaluator computes the least model of a functional deductive database
// restricted to words of length <= depth. Sound and complete on that
// window for forward rule sets (facts at a word depend only on facts at
// words no longer than it).
type Evaluator struct {
	prog  *Program
	db    *Database
	store *Store
	depth int // evaluated depth; -1 initially
}

// NewEvaluator validates and prepares the FDDB.
func NewEvaluator(prog *Program, db *Database) (*Evaluator, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	e := &Evaluator{prog: prog, db: db, store: NewStore(), depth: -1}
	for _, f := range db.Facts {
		e.store.Insert(f)
	}
	return e, nil
}

// Store exposes the fact store.
func (e *Evaluator) Store() *Store { return e.store }

// EnsureDepth evaluates the least model out to words of length m. The
// work — like the model itself — can be Θ(|Σ|^m); that is the paper's
// Section 7 point, not an implementation defect.
func (e *Evaluator) EnsureDepth(m int) {
	if m <= e.depth {
		return
	}
	for {
		changed := 0
		for L := 0; L <= m; L++ {
			changed += e.closeLength(L, m)
		}
		changed += e.evalPlainRules(m)
		if changed == 0 {
			break
		}
	}
	e.depth = m
}

// closeLength fixpoints all functional-head rules whose head word has
// length L.
func (e *Evaluator) closeLength(L, m int) int {
	added := 0
	for {
		n := 0
		for _, r := range e.prog.Rules {
			if r.Head.Fun == nil {
				continue
			}
			rest := L - len(r.Head.Fun.Prefix)
			if rest < 0 {
				continue
			}
			e.eachWord(rest, func(v string) {
				n += e.fire(r, v, true)
			})
		}
		added += n
		if n == 0 {
			return added
		}
	}
}

// evalPlainRules fixpoints rules with plain heads; their functional
// variable (if any) ranges over words keeping every body literal within
// the window.
func (e *Evaluator) evalPlainRules(m int) int {
	added := 0
	for {
		n := 0
		for _, r := range e.prog.Rules {
			if r.Head.Fun != nil {
				continue
			}
			maxBody := 0
			hasFun := false
			for _, a := range r.Body {
				if a.Fun != nil {
					hasFun = true
					if len(a.Fun.Prefix) > maxBody {
						maxBody = len(a.Fun.Prefix)
					}
				}
			}
			if !hasFun {
				n += e.fire(r, "", false)
				continue
			}
			for rest := 0; rest+maxBody <= m; rest++ {
				e.eachWord(rest, func(v string) {
					n += e.fire(r, v, true)
				})
			}
		}
		added += n
		if n == 0 {
			return added
		}
	}
}

// eachWord enumerates all words of the given length over the alphabet.
func (e *Evaluator) eachWord(length int, f func(string)) {
	var rec func(prefix string, k int)
	rec = func(prefix string, k int) {
		if k == 0 {
			f(prefix)
			return
		}
		for _, r := range e.prog.Alphabet {
			rec(prefix+string(r), k-1)
		}
	}
	rec("", length)
}

// fire joins the rule's body with the functional variable bound to v and
// inserts derivable heads. Returns the number of new facts.
func (e *Evaluator) fire(r Rule, v string, bound bool) int {
	bindings := make(map[string]string, 8)
	added := 0
	var rec func(i int)
	rec = func(i int) {
		if i == len(r.Body) {
			if e.store.Insert(e.instantiate(r.Head, v, bindings)) {
				added++
			}
			return
		}
		a := r.Body[i]
		var rel map[string][]string
		if a.Fun != nil {
			rel = e.store.fun[a.Pred][a.Fun.Prefix+v]
		} else {
			rel = e.store.plain[a.Pred]
		}
		for _, tup := range rel {
			if len(tup) != len(a.Args) {
				continue
			}
			var boundVars []string
			ok := true
			for j, s := range a.Args {
				if !s.IsVar {
					if s.Name != tup[j] {
						ok = false
						break
					}
					continue
				}
				if prev, have := bindings[s.Name]; have {
					if prev != tup[j] {
						ok = false
						break
					}
					continue
				}
				bindings[s.Name] = tup[j]
				boundVars = append(boundVars, s.Name)
			}
			if ok {
				rec(i + 1)
			}
			for _, name := range boundVars {
				delete(bindings, name)
			}
		}
	}
	rec(0)
	return added
}

func (e *Evaluator) instantiate(head Atom, v string, bindings map[string]string) Fact {
	f := Fact{Pred: head.Pred}
	if head.Fun != nil {
		f.Functional = true
		f.Word = head.Fun.Prefix + v
	}
	f.Args = make([]string, len(head.Args))
	for i, s := range head.Args {
		if s.IsVar {
			val, ok := bindings[s.Name]
			if !ok {
				panic(fmt.Sprintf("fddb: unbound head variable %s", s.Name))
			}
			f.Args[i] = val
			continue
		}
		f.Args[i] = s.Name
	}
	return f
}

// Holds answers a ground atomic query: the window needed is exactly the
// query's own depth, so yes-no query processing is decidable (if
// potentially exponential — PSPACE-hard already for TDDs, worse here).
func (e *Evaluator) Holds(f Fact) bool {
	if f.Functional {
		e.EnsureDepth(len(f.Word))
	} else if e.depth < 0 {
		e.EnsureDepth(0)
	}
	return e.store.Has(f)
}

// Var is a convenience for building rule atoms.
func Var(name string) ast.Symbol { return ast.Var(name) }

// Const is a convenience for building rule atoms.
func Const(name string) ast.Symbol { return ast.Const(name) }
