package fddb

import (
	"errors"
	"strings"
	"testing"
)

func funAtom(pred, prefix string, args ...string) Atom {
	a := Atom{Pred: pred, Fun: &Term{Prefix: prefix, HasVar: true}}
	for _, v := range args {
		a.Args = append(a.Args, Var(v))
	}
	return a
}

func plainAtom(pred string, args ...string) Atom {
	a := Atom{Pred: pred}
	for _, v := range args {
		a.Args = append(a.Args, Var(v))
	}
	return a
}

func funFact(pred, word string, args ...string) Fact {
	return Fact{Pred: pred, Functional: true, Word: word, Args: args}
}

// evenProgram is the TDD even example written as a one-symbol FDDB:
// even(s(s(V))) :- even(V).  even(0).
func evenProgram() (*Program, *Database) {
	prog := &Program{
		Alphabet: "s",
		Rules: []Rule{{
			Head: funAtom("even", "ss"),
			Body: []Atom{funAtom("even", "")},
		}},
	}
	db := &Database{Facts: []Fact{funFact("even", "")}}
	return prog, db
}

func TestSingleSymbolMatchesTDD(t *testing.T) {
	prog, db := evenProgram()
	e, err := NewEvaluator(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n <= 12; n++ {
		word := strings.Repeat("s", n)
		want := n%2 == 0
		if got := e.Holds(funFact("even", word)); got != want {
			t.Errorf("even(s^%d(0)) = %v, want %v", n, got, want)
		}
	}
}

func TestTwoSymbolBranching(t *testing.T) {
	// reach(f(V)) :- reach(V). reach(g(V)) :- reach(V). reach(0).
	prog := &Program{
		Alphabet: "fg",
		Rules: []Rule{
			{Head: funAtom("reach", "f"), Body: []Atom{funAtom("reach", "")}},
			{Head: funAtom("reach", "g"), Body: []Atom{funAtom("reach", "")}},
		},
	}
	db := &Database{Facts: []Fact{funFact("reach", "")}}
	e, err := NewEvaluator(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	const m = 8
	e.EnsureDepth(m)
	// Every word is reachable: 2^d facts at depth d — the exponential
	// model growth of Section 7.
	for d := 0; d <= m; d++ {
		if got, want := e.Store().FactsAtDepth(d), 1<<d; got != want {
			t.Errorf("facts at depth %d = %d, want %d", d, got, want)
		}
	}
	if !e.Holds(funFact("reach", "fgfgfg")) {
		t.Error("reach(fgfgfg) missing")
	}
}

func TestAsymmetricBranching(t *testing.T) {
	// Only words in (fg)* are reachable:
	// p(f(g(V))) :- p(V).  p(0).
	prog := &Program{
		Alphabet: "fg",
		Rules:    []Rule{{Head: funAtom("p", "fg"), Body: []Atom{funAtom("p", "")}}},
	}
	db := &Database{Facts: []Fact{funFact("p", "")}}
	e, err := NewEvaluator(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Holds(funFact("p", "fgfg")) {
		t.Error("p(fgfg) missing")
	}
	for _, w := range []string{"f", "g", "gf", "ff", "fgf", "gfgf"} {
		if e.Holds(funFact("p", w)) {
			t.Errorf("p(%s) wrongly derived", w)
		}
	}
}

func TestDataJoinAndPlainHead(t *testing.T) {
	// trail(f(V), X) :- trail(V, Y), edge(Y, X).
	// visited(X) :- trail(V, X).
	prog := &Program{
		Alphabet: "fg",
		Rules: []Rule{
			{
				Head: funAtom("trail", "f", "X"),
				Body: []Atom{funAtom("trail", "", "Y"), plainAtom("edge", "Y", "X")},
			},
			{
				Head: plainAtom("visited", "X"),
				Body: []Atom{funAtom("trail", "", "X")},
			},
		},
	}
	db := &Database{Facts: []Fact{
		funFact("trail", "", "a"),
		{Pred: "edge", Args: []string{"a", "b"}},
		{Pred: "edge", Args: []string{"b", "c"}},
	}}
	e, err := NewEvaluator(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	e.EnsureDepth(3)
	if !e.Store().Has(funFact("trail", "f", "b")) || !e.Store().Has(funFact("trail", "ff", "c")) {
		t.Error("trail propagation broken")
	}
	if e.Store().Has(funFact("trail", "g", "b")) {
		t.Error("trail(g(0), b) wrongly derived")
	}
	for _, c := range []string{"a", "b", "c"} {
		if !e.Store().Has(Fact{Pred: "visited", Args: []string{c}}) {
			t.Errorf("visited(%s) missing", c)
		}
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		prog *Program
		want error
	}{
		{
			"bad alphabet",
			&Program{Alphabet: "ff"},
			ErrBadAlphabet,
		},
		{
			"unknown symbol",
			&Program{Alphabet: "f", Rules: []Rule{{Head: funAtom("p", "g"), Body: []Atom{funAtom("p", "")}}}},
			ErrUnknownSymbol,
		},
		{
			"not forward",
			&Program{Alphabet: "f", Rules: []Rule{{Head: funAtom("p", ""), Body: []Atom{funAtom("p", "f")}}}},
			ErrNotForward,
		},
		{
			"range restriction (data)",
			&Program{Alphabet: "f", Rules: []Rule{{Head: funAtom("p", "f", "X"), Body: []Atom{funAtom("q", "")}}}},
			ErrRangeRestrict,
		},
		{
			"range restriction (functional var)",
			&Program{Alphabet: "f", Rules: []Rule{{Head: funAtom("p", "f"), Body: []Atom{plainAtom("q")}}}},
			ErrRangeRestrict,
		},
		{
			"ground functional term in rule",
			&Program{Alphabet: "f", Rules: []Rule{{Head: Atom{Pred: "p", Fun: &Term{Prefix: "f"}}, Body: []Atom{funAtom("p", "")}}}},
			ErrGroundFunRule,
		},
		{
			"mixed predicate",
			&Program{Alphabet: "f", Rules: []Rule{{Head: plainAtom("p"), Body: []Atom{funAtom("p", "")}}}},
			ErrMixedPredicate,
		},
	}
	for _, c := range cases {
		if err := c.prog.Validate(); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestStrings(t *testing.T) {
	term := Term{Prefix: "fg", HasVar: true}
	if got := term.String(); got != "f(g(V))" {
		t.Errorf("term = %q", got)
	}
	r := Rule{Head: funAtom("p", "f", "X"), Body: []Atom{funAtom("p", "", "X"), plainAtom("e", "X")}}
	if got := r.String(); got != "p(f(V), X) :- p(V, X), e(X)." {
		t.Errorf("rule = %q", got)
	}
	f := funFact("p", "fg", "a")
	if got := f.String(); got != "p(f(g(0)), a)" {
		t.Errorf("fact = %q", got)
	}
	if got := (Fact{Pred: "halt"}).String(); got != "halt" {
		t.Errorf("fact = %q", got)
	}
}

func TestSortFactsAndDepth(t *testing.T) {
	fs := []Fact{funFact("b", "f"), funFact("a", "g"), funFact("a", "f", "z"), funFact("a", "f", "a")}
	SortFacts(fs)
	if fs[0].Pred != "a" || fs[0].Word != "f" || fs[0].Args[0] != "a" {
		t.Errorf("sorted = %v", fs)
	}
	db := &Database{Facts: fs}
	if db.MaxDepth() != 1 {
		t.Errorf("MaxDepth = %d", db.MaxDepth())
	}
}

func TestEnsureDepthIdempotent(t *testing.T) {
	prog, db := evenProgram()
	e, err := NewEvaluator(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	e.EnsureDepth(6)
	n := e.Store().Len()
	e.EnsureDepth(6)
	if e.Store().Len() != n {
		t.Error("EnsureDepth not idempotent")
	}
	e.EnsureDepth(10)
	if e.Store().Len() <= n {
		t.Error("deeper window added nothing")
	}
}
