package fddb

import (
	"fmt"
	"strings"
	"unicode"

	"tdd/internal/ast"
)

// Parse reads a functional deductive database from a Prolog-style text:
//
//	reach(f(V)) :- reach(V).
//	reach(g(V)) :- reach(V).
//	trail(f(V), X) :- trail(V, Y), edge(Y, X).
//	trail(0, a).
//	edge(a, b).
//
// The functional argument is written as nested unary applications ending
// in the constant 0 (ground) or a variable; every function symbol must be
// a single lower-case letter. The alphabet is inferred from the symbols
// used. Ground unit clauses become database facts. Comments run from '%'
// to end of line.
func Parse(src string) (*Program, *Database, error) {
	p := &fparser{src: src, line: 1}
	prog := &Program{}
	db := &Database{}
	alphabet := map[rune]bool{}
	for {
		p.skipSpace()
		if p.eof() {
			break
		}
		head, err := p.atom(alphabet)
		if err != nil {
			return nil, nil, err
		}
		p.skipSpace()
		var body []Atom
		if p.consume(":-") {
			for {
				a, err := p.atom(alphabet)
				if err != nil {
					return nil, nil, err
				}
				body = append(body, a)
				p.skipSpace()
				if !p.consume(",") {
					break
				}
			}
		}
		if !p.consume(".") {
			return nil, nil, p.errf("expected '.'")
		}
		if len(body) == 0 {
			f, err := factOf(head)
			if err != nil {
				return nil, nil, err
			}
			db.Facts = append(db.Facts, f)
			continue
		}
		prog.Rules = append(prog.Rules, Rule{Head: head, Body: body})
	}
	var sb strings.Builder
	for r := 'a'; r <= 'z'; r++ {
		if alphabet[r] {
			sb.WriteRune(r)
		}
	}
	prog.Alphabet = sb.String()

	// Sort inference: a predicate is functional when some occurrence
	// carries an explicit functional term. Other occurrences wrote the
	// bare variable (reach(V) in the body of reach(f(V)) :- reach(V)),
	// which the term parser read as an ordinary argument; reinterpret it.
	functional := map[string]bool{}
	for _, r := range prog.Rules {
		for _, a := range r.Atoms() {
			if a.Fun != nil {
				functional[a.Pred] = true
			}
		}
	}
	for _, f := range db.Facts {
		if f.Functional {
			functional[f.Pred] = true
		}
	}
	fix := func(a *Atom) error {
		if a.Fun != nil || !functional[a.Pred] {
			return nil
		}
		if len(a.Args) == 0 || !a.Args[0].IsVar {
			return fmt.Errorf("fddb: %s needs a functional first argument (predicate %s is functional)", a, a.Pred)
		}
		a.Fun = &Term{HasVar: true, Var: a.Args[0].Name}
		a.Args = a.Args[1:]
		return nil
	}
	for i := range prog.Rules {
		if err := fix(&prog.Rules[i].Head); err != nil {
			return nil, nil, err
		}
		for j := range prog.Rules[i].Body {
			if err := fix(&prog.Rules[i].Body[j]); err != nil {
				return nil, nil, err
			}
		}
	}
	for _, f := range db.Facts {
		if functional[f.Pred] && !f.Functional {
			return nil, nil, fmt.Errorf("fddb: fact %s lacks the functional argument of predicate %s", f, f.Pred)
		}
	}
	if err := prog.Validate(); err != nil {
		return nil, nil, err
	}
	return prog, db, nil
}

// factOf converts a ground head atom to a fact.
func factOf(a Atom) (Fact, error) {
	f := Fact{Pred: a.Pred}
	if a.Fun != nil {
		if a.Fun.HasVar {
			return Fact{}, fmt.Errorf("fddb: fact %s is not ground", a)
		}
		f.Functional = true
		f.Word = a.Fun.Prefix
	}
	for _, s := range a.Args {
		if s.IsVar {
			return Fact{}, fmt.Errorf("fddb: fact %s is not ground", a)
		}
		f.Args = append(f.Args, s.Name)
	}
	return f, nil
}

type fparser struct {
	src  string
	pos  int
	line int
}

func (p *fparser) eof() bool { return p.pos >= len(p.src) }

func (p *fparser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func (p *fparser) skipSpace() {
	for !p.eof() {
		c := p.src[p.pos]
		switch {
		case c == '\n':
			p.line++
			p.pos++
		case c == ' ' || c == '\t' || c == '\r':
			p.pos++
		case c == '%':
			for !p.eof() && p.src[p.pos] != '\n' {
				p.pos++
			}
		default:
			return
		}
	}
}

func (p *fparser) consume(tok string) bool {
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], tok) {
		p.pos += len(tok)
		return true
	}
	return false
}

func (p *fparser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("fddb: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *fparser) ident() (string, error) {
	p.skipSpace()
	start := p.pos
	for !p.eof() {
		c := rune(p.src[p.pos])
		if !unicode.IsLetter(c) && !unicode.IsDigit(c) && c != '_' {
			break
		}
		p.pos++
	}
	if p.pos == start {
		return "", p.errf("expected an identifier")
	}
	return p.src[start:p.pos], nil
}

// atom parses pred(term, ...) where the first argument may be a
// functional term.
func (p *fparser) atom(alphabet map[rune]bool) (Atom, error) {
	name, err := p.ident()
	if err != nil {
		return Atom{}, err
	}
	a := Atom{Pred: name}
	p.skipSpace()
	if p.peek() != '(' {
		return a, nil
	}
	p.pos++
	first := true
	for {
		p.skipSpace()
		if fun, ok, err := p.tryFunTerm(alphabet); err != nil {
			return Atom{}, err
		} else if ok {
			if !first {
				return Atom{}, p.errf("functional term must be the first argument of %s", name)
			}
			a.Fun = &fun
		} else {
			id, err := p.ident()
			if err != nil {
				return Atom{}, err
			}
			a.Args = append(a.Args, symbolOf(id))
		}
		first = false
		p.skipSpace()
		if p.consume(",") {
			continue
		}
		if p.consume(")") {
			return a, nil
		}
		return Atom{}, p.errf("expected ',' or ')' in %s", name)
	}
}

// tryFunTerm parses a functional term if one starts here: nested unary
// applications f(g(...)) ending in 0 or a variable, or the bare constant 0
// or a bare variable in the functional position. A bare identifier that is
// not followed by '(' and is not 0/variable is NOT a functional term (it
// is an ordinary constant), so we look ahead.
func (p *fparser) tryFunTerm(alphabet map[rune]bool) (Term, bool, error) {
	save := p.pos
	// Bare 0: the ground empty word.
	if p.peek() == '0' {
		p.pos++
		return Term{}, true, nil
	}
	id, err := p.ident()
	if err != nil {
		p.pos = save
		return Term{}, false, nil
	}
	p.skipSpace()
	if p.peek() != '(' {
		p.pos = save
		return Term{}, false, nil
	}
	// id( ... : a unary application chain.
	var prefix []rune
	for {
		if len(id) != 1 || id[0] < 'a' || id[0] > 'z' {
			return Term{}, false, p.errf("function symbol %q must be a single lower-case letter", id)
		}
		alphabet[rune(id[0])] = true
		prefix = append(prefix, rune(id[0]))
		p.pos++ // consume '('
		p.skipSpace()
		if p.peek() == '0' {
			p.pos++
			if err := p.closeParens(len(prefix)); err != nil {
				return Term{}, false, err
			}
			return Term{Prefix: string(prefix)}, true, nil
		}
		inner, err := p.ident()
		if err != nil {
			return Term{}, false, err
		}
		p.skipSpace()
		if p.peek() == '(' {
			id = inner
			continue
		}
		// Variable terminator.
		if !isVarName(inner) {
			return Term{}, false, p.errf("functional term must end in 0 or a variable, found %q", inner)
		}
		if err := p.closeParens(len(prefix)); err != nil {
			return Term{}, false, err
		}
		return Term{Prefix: string(prefix), HasVar: true, Var: inner}, true, nil
	}
}

func (p *fparser) closeParens(n int) error {
	for i := 0; i < n; i++ {
		p.skipSpace()
		if p.peek() != ')' {
			return p.errf("expected ')'")
		}
		p.pos++
	}
	return nil
}

func isVarName(s string) bool {
	if s == "" {
		return false
	}
	r := rune(s[0])
	return unicode.IsUpper(r) || r == '_'
}

func symbolOf(id string) ast.Symbol {
	if isVarName(id) {
		return ast.Var(id)
	}
	return ast.Const(id)
}
