package fddb

import (
	"strings"
	"testing"
)

func TestParseReach(t *testing.T) {
	prog, db, err := Parse(`
% two-symbol branching
reach(f(V)) :- reach(V).
reach(g(V)) :- reach(V).
reach(0).
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Alphabet != "fg" {
		t.Errorf("alphabet = %q", prog.Alphabet)
	}
	if len(prog.Rules) != 2 || len(db.Facts) != 1 {
		t.Fatalf("rules=%d facts=%d", len(prog.Rules), len(db.Facts))
	}
	e, err := NewEvaluator(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Holds(Fact{Pred: "reach", Functional: true, Word: "fg"}) {
		t.Error("reach(f(g(0))) missing")
	}
}

func TestParseBareVariableBody(t *testing.T) {
	// The body literal reach(V) has no explicit application; inference
	// reinterprets the bare variable as the functional argument.
	prog, _, err := Parse("reach(f(V)) :- reach(V).\n")
	if err != nil {
		t.Fatal(err)
	}
	body := prog.Rules[0].Body[0]
	if body.Fun == nil || !body.Fun.HasVar || body.Fun.Prefix != "" {
		t.Errorf("body = %+v", body)
	}
}

func TestParseDataArgs(t *testing.T) {
	prog, db, err := Parse(`
trail(f(V), X) :- trail(V, Y), edge(Y, X).
trail(0, a).
edge(a, b).
`)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEvaluator(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Holds(Fact{Pred: "trail", Functional: true, Word: "f", Args: []string{"b"}}) {
		t.Error("trail(f(0), b) missing")
	}
	if e.Holds(Fact{Pred: "trail", Functional: true, Word: "g", Args: []string{"b"}}) {
		t.Error("unknown symbol derived")
	}
}

func TestParseGroundWords(t *testing.T) {
	_, db, err := Parse("p(f(g(0)), x).\nq(0).\n")
	if err != nil {
		t.Fatal(err)
	}
	if db.Facts[0].Word != "fg" || db.Facts[0].Args[0] != "x" {
		t.Errorf("fact = %+v", db.Facts[0])
	}
	if db.Facts[1].Word != "" || !db.Facts[1].Functional {
		t.Errorf("fact = %+v", db.Facts[1])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"p(f(V)) :- p(V)", "expected '.'"},
		{"p(ff(V)) :- p(V).", "single lower-case letter"},
		{"p(f(bad)) :- p(V).", "end in 0 or a variable"},
		{"p(f(V), g(W)) :- p(V).", "first argument"},
		{"p(X) :- q(X).\nq(f(V)) :- q(V).\nq(x).", "lacks the functional argument"},
		{"p(f(V)) :- p(W).", "two functional variables"},      // W reinterpreted, then mismatch
		{"p(f(V)) :- p(V), q(g(W)).", "functional variables"}, // two names
		{"p(f(V)) :- q(V).\nq(X) :- r(X).", "not in body"},    // q stays plain, so head V is unbound
	}
	for _, c := range cases {
		_, _, err := Parse(c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) err = %v, want contains %q", c.src, err, c.want)
		}
	}
}

func TestParseRoundTripThroughString(t *testing.T) {
	src := `
trail(f(V), X) :- trail(V, Y), edge(Y, X).
trail(0, a).
edge(a, b).
`
	prog, db, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, r := range prog.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	for _, f := range db.Facts {
		b.WriteString(f.String())
		b.WriteString(".\n")
	}
	prog2, db2, err := Parse(b.String())
	if err != nil {
		t.Fatalf("reparse of %q: %v", b.String(), err)
	}
	if len(prog2.Rules) != len(prog.Rules) || len(db2.Facts) != len(db.Facts) {
		t.Errorf("round trip drifted: %s", b.String())
	}
}
