package rewrite

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(); !errors.Is(err, ErrEmpty) {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
	if _, err := New(Rule{LHS: 2, RHS: 2}); !errors.Is(err, ErrNonTerminating) {
		t.Errorf("err = %v, want ErrNonTerminating", err)
	}
	if _, err := New(Rule{LHS: 2, RHS: 5}); !errors.Is(err, ErrNonTerminating) {
		t.Errorf("err = %v, want ErrNonTerminating", err)
	}
	if _, err := New(Rule{LHS: -1, RHS: 0}); !errors.Is(err, ErrNegative) {
		t.Errorf("err = %v, want ErrNegative", err)
	}
	if _, err := New(Rule{LHS: 3, RHS: 1}); err != nil {
		t.Errorf("valid rule rejected: %v", err)
	}
}

func TestSingleRuleNormalize(t *testing.T) {
	// The paper's even example: W = {2 -> 0}.
	s, err := New(Rule{LHS: 2, RHS: 0})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[int]int{0: 0, 1: 1, 2: 0, 3: 1, 4: 0, 17: 1, 1000000: 0}
	for in, want := range cases {
		if got := s.Normalize(in); got != want {
			t.Errorf("Normalize(%d) = %d, want %d", in, got, want)
		}
	}
	if nfs := s.NormalForms(); len(nfs) != 2 || nfs[0] != 0 || nfs[1] != 1 {
		t.Errorf("NormalForms = %v", nfs)
	}
}

func TestSpecShapedRule(t *testing.T) {
	// W = {b+p -> b} with b=3, p=4: representatives 0..6.
	s, err := New(Rule{LHS: 7, RHS: 3})
	if err != nil {
		t.Fatal(err)
	}
	for tm := 0; tm < 7; tm++ {
		if !s.NormalForm(tm) {
			t.Errorf("%d should be a normal form", tm)
		}
	}
	for tm := 7; tm < 100; tm++ {
		want := 3 + (tm-3)%4
		if got := s.Normalize(tm); got != want {
			t.Errorf("Normalize(%d) = %d, want %d", tm, got, want)
		}
	}
}

func TestNormalizeIdempotentProperty(t *testing.T) {
	s, err := New(Rule{LHS: 11, RHS: 4})
	if err != nil {
		t.Fatal(err)
	}
	f := func(n uint16) bool {
		nf := s.Normalize(int(n))
		return s.NormalForm(nf) && s.Normalize(nf) == nf && nf <= int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMultiRuleConfluence(t *testing.T) {
	// {4 -> 0, 6 -> 2}: both subtract 4; joinable everywhere.
	s, err := New(Rule{LHS: 4, RHS: 0}, Rule{LHS: 6, RHS: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !s.ConfluentUpTo(200) {
		t.Error("compatible rules reported non-confluent")
	}
	// {3 -> 0, 5 -> 1}: 5 -> 1 but also 5 -> 2 -> 2; normal forms differ.
	s2, err := New(Rule{LHS: 3, RHS: 0}, Rule{LHS: 5, RHS: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s2.ConfluentUpTo(200) {
		t.Error("conflicting rules reported confluent")
	}
}

func TestSingleRuleAlwaysConfluent(t *testing.T) {
	f := func(l, d, bound uint8) bool {
		lhs := int(l)%50 + 1
		rhs := lhs - (int(d)%lhs + 1)
		s, err := New(Rule{LHS: lhs, RHS: rhs})
		if err != nil {
			return false
		}
		return s.ConfluentUpTo(int(bound))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestApplyPanicsWhenInapplicable(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Rule{LHS: 5, RHS: 0}.Apply(3)
}

func TestStringers(t *testing.T) {
	s, err := New(Rule{LHS: 6, RHS: 2}, Rule{LHS: 4, RHS: 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.String(); got != "{4 -> 0, 6 -> 2}" {
		t.Errorf("String = %q (rules should sort by LHS)", got)
	}
	if got := s.Rules()[0].String(); got != "4 -> 0" {
		t.Errorf("rule String = %q", got)
	}
}

func TestNormalizeClosedFormMatchesSteps(t *testing.T) {
	systems := []*System{}
	for _, rules := range [][]Rule{
		{{LHS: 2, RHS: 0}},
		{{LHS: 7, RHS: 3}},
		{{LHS: 4, RHS: 0}, {LHS: 6, RHS: 2}},
		{{LHS: 5, RHS: 2}, {LHS: 9, RHS: 1}},
	} {
		s, err := New(rules...)
		if err != nil {
			t.Fatal(err)
		}
		systems = append(systems, s)
	}
	// stepNormalize is the literal one-rewrite-at-a-time reference.
	stepNormalize := func(s *System, t int) int {
		for {
			applied := false
			for _, r := range s.Rules() {
				if r.Applicable(t) {
					t = r.Apply(t)
					applied = true
					break
				}
			}
			if !applied {
				return t
			}
		}
	}
	for _, s := range systems {
		for tm := 0; tm < 300; tm++ {
			if got, want := s.Normalize(tm), stepNormalize(s, tm); got != want {
				t.Fatalf("%v: Normalize(%d) = %d, step reference %d", s, tm, got, want)
			}
		}
	}
}

func TestNormalizeLargeIsConstantTime(t *testing.T) {
	s, err := New(Rule{LHS: 41, RHS: 1}) // period 40
	if err != nil {
		t.Fatal(err)
	}
	// A billion-deep term must normalize instantly; the value checks the
	// modular arithmetic.
	if got := s.Normalize(1_000_000_000); got != 1+(1_000_000_000-1)%40 {
		t.Errorf("Normalize(10^9) = %d", got)
	}
}
