// Package rewrite implements ground rewrite systems over temporal terms.
//
// A relational specification S = (T, B, W) carries a finite set W of
// ground rewrite rules whose both sides are temporal terms (Section 3.3).
// A ground temporal term is an integer k (0 followed by k applications of
// +1); a rule l -> r applies to any term t >= l by rewriting the prefix:
// t -> t - l + r. For temporal deductive databases the computed W contains
// exactly one rule (b+p -> b), but the definition — and this package —
// admits any finite set, as needed by the functional deductive database
// generalization the paper builds on [6].
package rewrite

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Rule is a ground rewrite rule LHS -> RHS between ground temporal terms.
type Rule struct {
	LHS, RHS int
}

func (r Rule) String() string { return fmt.Sprintf("%d -> %d", r.LHS, r.RHS) }

// Applicable reports whether the rule rewrites term t.
func (r Rule) Applicable(t int) bool { return t >= r.LHS }

// Apply rewrites t once; it panics if the rule is not applicable.
func (r Rule) Apply(t int) int {
	if !r.Applicable(t) {
		panic(fmt.Sprintf("rewrite: %v not applicable to %d", r, t))
	}
	return t - r.LHS + r.RHS
}

// System is a finite set of ground rewrite rules.
type System struct {
	rules []Rule
}

// Errors reported by New.
var (
	ErrNonTerminating = errors.New("rewrite: rule does not decrease its term (RHS >= LHS)")
	ErrNegative       = errors.New("rewrite: terms must be non-negative")
	ErrEmpty          = errors.New("rewrite: a system needs at least one rule")
)

// New builds a rewrite system, requiring every rule to strictly decrease
// the term it rewrites (RHS < LHS) — the specification-construction
// procedure of [6] produces terminating systems, and strict decrease is
// exactly termination for this term language.
func New(rules ...Rule) (*System, error) {
	if len(rules) == 0 {
		return nil, ErrEmpty
	}
	for _, r := range rules {
		if r.LHS < 0 || r.RHS < 0 {
			return nil, fmt.Errorf("%w: %v", ErrNegative, r)
		}
		if r.RHS >= r.LHS {
			return nil, fmt.Errorf("%w: %v", ErrNonTerminating, r)
		}
	}
	out := &System{rules: append([]Rule(nil), rules...)}
	sort.Slice(out.rules, func(i, j int) bool { return out.rules[i].LHS < out.rules[j].LHS })
	return out, nil
}

// Rules returns the rules, ordered by LHS.
func (s *System) Rules() []Rule { return append([]Rule(nil), s.rules...) }

// Normalize rewrites t until no rule applies (using the lowest-LHS
// applicable rule at each step; for confluent systems the strategy does
// not matter). Termination is guaranteed by construction. Repeated
// applications of one rule are collapsed into modular arithmetic, so the
// cost is independent of t's magnitude — rewriting is O(1) per rule, the
// property Section 3.3's tractability argument rests on.
func (s *System) Normalize(t int) int {
	for {
		applied := false
		for _, r := range s.rules {
			if r.Applicable(t) {
				// Applying t -> t-(LHS-RHS) while t >= LHS lands at
				// RHS + (t-RHS) mod (LHS-RHS), the unique value in
				// [RHS, LHS) reachable by that rule alone.
				d := r.LHS - r.RHS
				t = r.RHS + (t-r.RHS)%d
				applied = true
				break
			}
		}
		if !applied {
			return t
		}
	}
}

// NormalForm reports whether t is a normal form (no rule applies).
func (s *System) NormalForm(t int) bool {
	for _, r := range s.rules {
		if r.Applicable(t) {
			return false
		}
	}
	return true
}

// NormalForms enumerates all normal forms: exactly the terms below the
// smallest LHS.
func (s *System) NormalForms() []int {
	min := s.rules[0].LHS
	out := make([]int, min)
	for i := range out {
		out[i] = i
	}
	return out
}

// ConfluentUpTo checks (by exhaustive reduction-graph search) that every
// term in [0, bound] has a unique normal form. Single-rule systems are
// always confluent; multi-rule systems need not be, and specification
// builders use this check before relying on Normalize.
func (s *System) ConfluentUpTo(bound int) bool {
	// nf[t] caches the set of reachable normal forms; confluence means
	// every set is a singleton.
	memo := make(map[int]map[int]bool, bound+1)
	var reach func(t int) map[int]bool
	reach = func(t int) map[int]bool {
		if m, ok := memo[t]; ok {
			return m
		}
		m := make(map[int]bool)
		memo[t] = m // terms strictly decrease, so no cycles
		any := false
		for _, r := range s.rules {
			if !r.Applicable(t) {
				continue
			}
			any = true
			for nf := range reach(r.Apply(t)) {
				m[nf] = true
			}
		}
		if !any {
			m[t] = true
		}
		return m
	}
	for t := 0; t <= bound; t++ {
		if len(reach(t)) != 1 {
			return false
		}
	}
	return true
}

func (s *System) String() string {
	parts := make([]string, len(s.rules))
	for i, r := range s.rules {
		parts[i] = r.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
