package parser

import (
	"sort"
	"strings"
	"testing"
)

// fuzzSeeds is a corpus covering every surface feature the unit syntax
// has: temporal recursion, interval facts, sort directives, quoted
// constants, zero-arity predicates, comments, and the example programs
// shipped under examples/.
var fuzzSeeds = []string{
	// examples/quickstart
	"even(T+2) :- even(T).\neven(0).\n",
	// examples/skiresort (the paper's Example 2.1, interval form)
	`
	plane(T+7, X) :- plane(T, X), resort(X), offseason(T).
	plane(T+2, X) :- plane(T, X), resort(X), winter(T).
	plane(T+1, X) :- plane(T, X), resort(X), holiday(T).
	offseason(T+365) :- offseason(T).
	winter(T+365) :- winter(T).
	holiday(T+365) :- holiday(T).
	winter(0..90).
	offseason(91..364).
	resort(hunter). resort(aspen).
	plane(12, hunter).
	holiday(5). holiday(12).
	`,
	// examples/reachability
	`
	path(K, X, X) :- node(X), null(K).
	path(K+1, X, Z) :- edge(X, Y), path(K, Y, Z).
	path(K+1, X, Y) :- path(K, X, Y).
	null(0).
	node(a). node(b). node(c). node(d). node(e).
	edge(a, b). edge(b, c). edge(c, d). edge(d, e).
	edge(e, a). edge(b, e).
	`,
	// examples/itinerary
	`
	sails(T+2, harbor, isle)  :- sails(T, harbor, isle).
	sails(T+3, isle, cove)    :- sails(T, isle, cove).
	sails(T+7, cove, port)    :- sails(T, cove, port).
	at(T+1, X) :- at(T, X).
	at(T+1, Y) :- at(T, X), sails(T, X, Y).
	sails(0, harbor, isle).
	sails(1, isle, cove).
	sails(2, cove, port).
	at(0, harbor).
	`,
	// examples/monitoring
	`
	check(T+7, S) :- check(T, S), service(S).
	alert(T, S) :- check(T, S), fragile(S).
	alert(T+1, S) :- alert(T, S).
	paged(T, E) :- alert(T, S), oncall(E, S).
	everflagged(S) :- alert(T, S).
	service(api). check(0, api).
	fragile(api). oncall(alice, api).
	`,
	// examples/counter (workload.Counter shape, 2 bits)
	`
	tick(T+1) :- tick(T).
	one(T+1, B) :- zero(T, B), carry(T, B).
	zero(T+1, B) :- one(T, B), carry(T, B).
	one(T+1, B) :- one(T, B), nocarry(T, B).
	tick(0). zero(0, b0). zero(0, b1).
	`,
	// Sort directives and numeric non-temporal columns.
	"@nontemporal score.\n@temporal up.\nscore(10, john).\nup(3).\nbest(J) :- score(10, J).\n",
	// Quoted constants (examples/functional works over strings).
	"p('fg fg').\nq('it''s', 'a\\\\b').\nr(X) :- q(X, Y).\n",
	// Zero-arity predicates and facts.
	"go :- ready.\nready.\n",
	// Interval abbreviation, singleton and empty-ish edges.
	"up(3..3).\nup(0..5).\n",
	// Things that must error but not crash.
	"p(",
	"p(0..999999999).",
	"p(-1).",
	"@bogus p.\n",
	"p(T+2) :- q(T), p(T, T).",
}

// FuzzParseUnit asserts two properties on arbitrary unit sources:
//
//  1. ParseUnit never panics and never allocates unboundedly (the
//     interval-expansion cap): it either errors or returns a unit.
//  2. Accepted units round-trip: re-rendering the parsed rules and facts
//     with explicit @temporal/@nontemporal directives — so the second
//     parse cannot depend on sort inference — reparses to the same
//     clause counts and the same predicate signatures.
func FuzzParseUnit(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4<<10 {
			t.Skip("oversized input")
		}
		prog, db, err := ParseUnit(src)
		if err != nil {
			return
		}
		sorts := make(map[string]bool)
		for name, pi := range prog.Preds {
			sorts[name] = pi.Temporal
		}
		for name, pi := range db.Preds {
			sorts[name] = pi.Temporal
		}
		names := make([]string, 0, len(sorts))
		for name := range sorts {
			names = append(names, name)
		}
		sort.Strings(names)
		var b strings.Builder
		for _, name := range names {
			if sorts[name] {
				b.WriteString("@temporal " + name + ".\n")
			} else {
				b.WriteString("@nontemporal " + name + ".\n")
			}
		}
		for _, r := range prog.Rules {
			b.WriteString(r.String() + "\n")
		}
		for _, fa := range db.Facts {
			b.WriteString(fa.String() + ".\n")
		}
		prog2, db2, err := ParseUnit(b.String())
		if err != nil {
			t.Fatalf("round-trip rejected:\n%s\nerror: %v\noriginal:\n%s", b.String(), err, src)
		}
		if len(prog2.Rules) != len(prog.Rules) {
			t.Fatalf("round-trip rules %d -> %d:\n%s", len(prog.Rules), len(prog2.Rules), b.String())
		}
		if len(db2.Facts) != len(db.Facts) {
			t.Fatalf("round-trip facts %d -> %d:\n%s", len(db.Facts), len(db2.Facts), b.String())
		}
		for name, pi := range prog.Preds {
			pi2, ok := prog2.Preds[name]
			if !ok || pi2.Temporal != pi.Temporal || pi2.Arity != pi.Arity {
				t.Fatalf("round-trip signature %s: %+v -> %+v (ok=%v)", name, pi, pi2, ok)
			}
		}
		for name, pi := range db.Preds {
			pi2, ok := db2.Preds[name]
			if !ok || pi2.Temporal != pi.Temporal || pi2.Arity != pi.Arity {
				t.Fatalf("round-trip db signature %s: %+v -> %+v (ok=%v)", name, pi, pi2, ok)
			}
		}
	})
}

// TestIntervalExpansionCap pins the cumulative interval-expansion bound:
// a unit may not expand to more than maxIntervalPoints facts via
// intervals, however the intervals are split.
func TestIntervalExpansionCap(t *testing.T) {
	if _, _, err := ParseUnit("p(0..999999999)."); err == nil {
		t.Fatal("giant interval accepted")
	}
	// Many small intervals summing past the cap are rejected too.
	var b strings.Builder
	for i := 0; i < 3; i++ {
		b.WriteString("p(0..524287).\n") // 3 × 2^19 > 2^20
	}
	if _, _, err := ParseUnit(b.String()); err == nil {
		t.Fatal("cumulative interval expansion accepted")
	}
	// The cap leaves legitimate units untouched.
	if _, _, err := ParseUnit("p(0..1000).\nq(5..5)."); err != nil {
		t.Fatal(err)
	}
}
