package parser

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Robustness: the parser must terminate without panicking on arbitrary
// input, and parse errors must carry positions.

func TestParseUnitNeverPanicsOnRandomBytes(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %q: %v", b, r)
			}
		}()
		_, _, _ = ParseUnit(string(b))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Structured corruption: take a valid program, mangle one byte at every
// position, and require parse to terminate (accepting or rejecting).
func TestParseUnitSurvivesMutations(t *testing.T) {
	src := "plane(T+7, X) :- plane(T, X), resort(X), offseason(T).\nplane(0, hunter).\n"
	mutants := []byte("().,:-+@%'0Z \x00\xff")
	rng := rand.New(rand.NewSource(99))
	for pos := 0; pos < len(src); pos++ {
		b := []byte(src)
		b[pos] = mutants[rng.Intn(len(mutants))]
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on mutation at %d (%q): %v", pos, b, r)
				}
			}()
			_, _, _ = ParseUnit(string(b))
		}()
	}
}

func TestQueryParserNeverPanics(t *testing.T) {
	preds, err := ParseProgram("plane(T+1, X) :- plane(T, X).")
	if err != nil {
		t.Fatal(err)
	}
	f := func(b []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %q: %v", b, r)
			}
		}()
		_, _ = ParseQuery(string(b), preds.Preds)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestErrorsCarryPositions(t *testing.T) {
	_, _, err := ParseUnit("p(a).\nq(b,\n")
	if err == nil {
		t.Fatal("expected error")
	}
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if perr.Line < 2 {
		t.Errorf("error line = %d, want >= 2", perr.Line)
	}
	if !strings.Contains(perr.Error(), "parser:") {
		t.Errorf("error text %q", perr.Error())
	}
}

func TestDeeplyNestedQueryTerminates(t *testing.T) {
	progPreds, err := ParseProgram("p(T+1) :- p(T).")
	if err != nil {
		t.Fatal(err)
	}
	q := strings.Repeat("(", 2000) + "p(0)" + strings.Repeat(")", 2000)
	if _, err := ParseQuery(q, progPreds.Preds); err != nil {
		t.Fatalf("deeply nested but balanced query rejected: %v", err)
	}
	q2 := strings.Repeat("!(", 1000) + "p(0)" + strings.Repeat(")", 1000)
	if _, err := ParseQuery(q2, progPreds.Preds); err != nil {
		t.Fatalf("nested negations rejected: %v", err)
	}
}

func TestHugeIntegerRejected(t *testing.T) {
	if _, _, err := ParseUnit("p(99999999999999999999)."); err == nil {
		t.Error("overflowing integer accepted")
	}
}
