package parser

import (
	"strings"
	"testing"

	"tdd/internal/ast"
)

// skiSrc is the travel-agent example of Section 2, verbatim modulo date
// abbreviations (dates become plain day numbers).
const skiSrc = `
% flights to ski resorts
plane(T+7, X) :- plane(T, X), resort(X), offseason(T).
plane(T+2, X) :- plane(T, X), resort(X), winter(T).
plane(T+1, X) :- plane(T, X), resort(X), holiday(T).
offseason(T+365) :- offseason(T).
winter(T+365) :- winter(T).
holiday(T+365) :- holiday(T).
`

const skiDB = `
plane(13, hunter).
offseason(92).
winter(0).
holiday(7).
holiday(13).
resort(hunter).
`

func TestParseProgramSki(t *testing.T) {
	p, err := ParseProgram(skiSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 6 {
		t.Fatalf("rules = %d, want 6", len(p.Rules))
	}
	want := "plane(T+7, X) :- plane(T, X), resort(X), offseason(T)."
	if got := p.Rules[0].String(); got != want {
		t.Errorf("rule 0 = %q, want %q", got, want)
	}
	if !p.Preds["plane"].Temporal || p.Preds["plane"].Arity != 1 {
		t.Errorf("plane signature = %v", p.Preds["plane"])
	}
	if p.Preds["resort"].Temporal {
		t.Error("resort inferred temporal")
	}
	if !p.Preds["offseason"].Temporal || p.Preds["offseason"].Arity != 0 {
		t.Errorf("offseason signature = %v", p.Preds["offseason"])
	}
	if err := ast.ValidateProgram(p); err != nil {
		t.Errorf("ski program does not validate: %v", err)
	}
}

func TestParseDatabaseSki(t *testing.T) {
	d, err := ParseDatabase(skiDB)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Facts) != 6 {
		t.Fatalf("facts = %d, want 6", len(d.Facts))
	}
	if d.MaxDepth() != 92 {
		t.Errorf("MaxDepth = %d, want 92", d.MaxDepth())
	}
	if !d.Preds["plane"].Temporal {
		t.Error("plane fact not temporal")
	}
	if d.Preds["resort"].Temporal {
		t.Error("resort(hunter) misread as temporal: 'hunter' is a constant")
	}
}

func TestParseUnitMixed(t *testing.T) {
	prog, db, err := ParseUnit(skiSrc + skiDB)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 6 || len(db.Facts) != 6 {
		t.Fatalf("rules=%d facts=%d", len(prog.Rules), len(db.Facts))
	}
}

func TestParseGraphExample(t *testing.T) {
	src := `
path(K, X, X) :- node(X), null(K).
path(K+1, X, Z) :- edge(X, Y), path(K, Y, Z).
path(K+1, X, Y) :- path(K, X, Y).
null(0).
node(a). node(b).
edge(a, b).
`
	prog, db, err := ParseUnit(src)
	if err != nil {
		t.Fatal(err)
	}
	if !prog.Preds["path"].Temporal || prog.Preds["path"].Arity != 2 {
		t.Errorf("path signature = %v", prog.Preds["path"])
	}
	// null(K) is temporal: the fact null(0) plus the sharing of K with
	// path's temporal position make it so.
	if !prog.Preds["null"].Temporal {
		t.Errorf("null not inferred temporal: %v", prog.Preds["null"])
	}
	if prog.Preds["edge"].Temporal || prog.Preds["node"].Temporal {
		t.Error("edge/node inferred temporal")
	}
	if len(db.Facts) != 4 {
		t.Errorf("facts = %d, want 4", len(db.Facts))
	}
}

func TestNonTemporalDatalogStaysNonTemporal(t *testing.T) {
	src := `
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
`
	p, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	for name, info := range p.Preds {
		if info.Temporal {
			t.Errorf("%s inferred temporal in a function-free program", name)
		}
	}
}

func TestNontemporalDirective(t *testing.T) {
	src := `@nontemporal score.
score(10, john).
score(3, mary).
`
	d, err := ParseDatabase(src)
	if err != nil {
		t.Fatal(err)
	}
	info := d.Preds["score"]
	if info.Temporal || info.Arity != 2 {
		t.Errorf("score signature = %v, want non-temporal /2", info)
	}
	if d.Facts[0].Args[0] != "10" {
		t.Errorf("numeric constant = %q", d.Facts[0].Args[0])
	}
}

func TestTemporalDirective(t *testing.T) {
	// Without the directive, p(T) :- q(T) is plain Datalog; the directive
	// forces the temporal reading.
	src := `@temporal p.
p(T) :- q(T).
`
	prog, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if !prog.Preds["p"].Temporal {
		t.Error("p not temporal despite directive")
	}
	if !prog.Preds["q"].Temporal {
		t.Error("q not temporal despite sharing T with p")
	}
}

func TestDirectiveConflicts(t *testing.T) {
	if _, _, err := ParseUnit("@temporal p.\n@nontemporal p.\np(a)."); err == nil {
		t.Error("conflicting directives accepted")
	}
	if _, _, err := ParseUnit("@nontemporal p.\np(T+1) :- p(T)."); err == nil {
		t.Error("@nontemporal with V+k use accepted")
	}
	if _, _, err := ParseUnit("@wibble p.\np(a)."); err == nil {
		t.Error("unknown directive accepted")
	}
}

func TestSortErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"temporal var in data position", "p(T+1, T) :- p(T, X).", "non-temporal position"},
		{"V+k in data position", "p(X, T+1) :- q(X), p(X, T).", "only as the first argument"},
		{"constant in temporal position", "p(T+1) :- p(T).\np2(T) :- p(T), eq(T).\neq(now).\n@temporal eq.", "temporal position"},
		{"non-ground fact", "p(X).", "not ground"},
	}
	for _, c := range cases {
		if _, _, err := ParseUnit(c.src); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want contains %q", c.name, err, c.want)
		}
	}
}

func TestParseSyntaxErrors(t *testing.T) {
	bad := []string{
		"p(",
		"p(a) :- .",
		"p(a)",         // missing dot
		"p(a,).",       // trailing comma
		"p(3+2).",      // + after int
		":- p(a).",     // headless
		"p('abc).",     // unterminated quote
		"p(a). q(b",    // second clause broken
		"p(a]).",       // bad character
		"9p(a).",       // ident starting with digit
		"p(a) : q(a).", // lone colon
	}
	for _, src := range bad {
		if _, _, err := ParseUnit(src); err == nil {
			t.Errorf("accepted bad input %q", src)
		}
	}
}

func TestQuotedConstants(t *testing.T) {
	prog, db, err := ParseUnit(`city('New York'). city('it\'s').
likes(X) :- city(X).`)
	if err != nil {
		t.Fatal(err)
	}
	if db.Facts[0].Args[0] != "New York" || db.Facts[1].Args[0] != "it's" {
		t.Errorf("facts = %v", db.Facts)
	}
	if len(prog.Rules) != 1 {
		t.Errorf("rules = %v", prog.Rules)
	}
}

func TestVarPlusZero(t *testing.T) {
	// T+0 is just T.
	p, err := ParseProgram("p(T+1) :- p(T+0).")
	if err != nil {
		t.Fatal(err)
	}
	if p.Rules[0].Body[0].Time.Depth != 0 || p.Rules[0].Body[0].Time.Var != "T" {
		t.Errorf("body time = %v", p.Rules[0].Body[0].Time)
	}
}

func TestParseProgramRejectsFacts(t *testing.T) {
	if _, err := ParseProgram("p(T+1) :- p(T).\np(0)."); err == nil {
		t.Error("ParseProgram accepted a ground fact")
	}
}

func TestParseDatabaseRejectsRules(t *testing.T) {
	if _, err := ParseDatabase("p(0).\np(T+1) :- p(T)."); err == nil {
		t.Error("ParseDatabase accepted a rule")
	}
}

func TestRoundTripThroughString(t *testing.T) {
	p, err := ParseProgram(skiSrc)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ParseProgram(p.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if p.String() != p2.String() {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", p, p2)
	}
	d, err := ParseDatabase(skiDB)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := ParseDatabase(d.String())
	if err != nil {
		t.Fatalf("reparse db: %v", err)
	}
	if d.String() != d2.String() {
		t.Errorf("db round trip mismatch:\n%s\nvs\n%s", d, d2)
	}
}

func TestComments(t *testing.T) {
	src := "% full line\np(0). // trailing\n% another\nq(a)."
	_, db, err := ParseUnit(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Facts) != 2 {
		t.Errorf("facts = %v", db.Facts)
	}
}

func TestIntervalFacts(t *testing.T) {
	// The paper's footnote 1: winter(<12/20/89, 03/20/90>) as an interval
	// abbreviation, here winter(0..90).
	src := `
winter(T+365) :- winter(T).
winter(0..3).
offseason(4..9).
`
	prog, db, err := ParseUnit(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Facts) != 4+6 {
		t.Fatalf("facts = %d, want 10: %v", len(db.Facts), db.Facts)
	}
	if !prog.Preds["winter"].Temporal {
		t.Error("winter not temporal")
	}
	if !db.Preds["offseason"].Temporal {
		t.Error("offseason not temporal (interval evidence)")
	}
	seen := map[int]bool{}
	for _, f := range db.Facts {
		if f.Pred == "winter" {
			seen[f.Time] = true
		}
	}
	for d := 0; d <= 3; d++ {
		if !seen[d] {
			t.Errorf("winter(%d) missing", d)
		}
	}
}

func TestIntervalFactWithArgs(t *testing.T) {
	_, db, err := ParseUnit("open(0..2, shop).")
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Facts) != 3 || db.Facts[0].Args[0] != "shop" {
		t.Errorf("facts = %v", db.Facts)
	}
}

func TestIntervalErrors(t *testing.T) {
	cases := []string{
		"p(0..3, X) :- q(X).",      // interval in a rule
		"p(T+1) :- p(T), q(0..2).", // interval in a rule body
		"p(3..1).",                 // empty interval
		"p(x, 0..2).",              // interval outside the temporal position
	}
	for _, src := range cases {
		if _, _, err := ParseUnit(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}
