package parser

import (
	"tdd/internal/ast"
)

// Query grammar:
//
//	Query   := Or
//	Or      := And   { ("|" | "or") And }
//	And     := Unary { ("&" | "and") Unary }
//	Unary   := ("!" | "not") Unary
//	        |  ("exists" | "forall") Var {"," Var} Unary
//	        |  "(" Query ")"
//	        |  Atom
//
// Conjunction is written "&" (not ","; commas separate atom arguments).
// Quantifier sorts are inferred: a variable is temporal when it occurs in a
// V+k term or in the temporal position of a temporal predicate, with the
// caveat that all occurrences of a variable name in one query share a sort.

// raw query tree; leaves carry raw atoms until sorts are resolved.
type rawQuery struct {
	kind  rawQKind
	atom  rawAtom
	sub   *rawQuery
	left  *rawQuery
	right *rawQuery
	v     string
	line  int
	col   int
}

type rawQKind int

const (
	rqAtom rawQKind = iota
	rqNot
	rqAnd
	rqOr
	rqExists
	rqForall
)

// ParseQuery parses a temporal first-order query. The preds map supplies
// predicate signatures from the program and database the query will be
// evaluated against; predicates not in the map are inferred from the query
// text alone.
func ParseQuery(src string, preds map[string]ast.PredInfo) (ast.Query, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	rq, err := p.parseQueryOr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, errAt(p.tok.line, p.tok.col, "unexpected %s after query", p.tok)
	}
	return resolveQuery(rq, preds)
}

func (p *parser) parseQueryOr() (*rawQuery, error) {
	left, err := p.parseQueryAnd()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokPipe || (p.tok.kind == tokIdent && p.tok.text == "or") {
		line, col := p.tok.line, p.tok.col
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseQueryAnd()
		if err != nil {
			return nil, err
		}
		left = &rawQuery{kind: rqOr, left: left, right: right, line: line, col: col}
	}
	return left, nil
}

func (p *parser) parseQueryAnd() (*rawQuery, error) {
	left, err := p.parseQueryUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokAmp || (p.tok.kind == tokIdent && p.tok.text == "and") {
		line, col := p.tok.line, p.tok.col
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseQueryUnary()
		if err != nil {
			return nil, err
		}
		left = &rawQuery{kind: rqAnd, left: left, right: right, line: line, col: col}
	}
	return left, nil
}

func (p *parser) parseQueryUnary() (*rawQuery, error) {
	tok := p.tok
	switch {
	case tok.kind == tokBang || (tok.kind == tokIdent && tok.text == "not"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		sub, err := p.parseQueryUnary()
		if err != nil {
			return nil, err
		}
		return &rawQuery{kind: rqNot, sub: sub, line: tok.line, col: tok.col}, nil
	case tok.kind == tokIdent && (tok.text == "exists" || tok.text == "forall"):
		kind := rqExists
		if tok.text == "forall" {
			kind = rqForall
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		var vars []string
		v, err := p.expect(tokVar)
		if err != nil {
			return nil, err
		}
		vars = append(vars, v.text)
		for p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			v, err := p.expect(tokVar)
			if err != nil {
				return nil, err
			}
			vars = append(vars, v.text)
		}
		sub, err := p.parseQueryUnary()
		if err != nil {
			return nil, err
		}
		// Desugar multi-variable quantifiers right to left.
		for i := len(vars) - 1; i >= 0; i-- {
			sub = &rawQuery{kind: kind, v: vars[i], sub: sub, line: tok.line, col: tok.col}
		}
		return sub, nil
	case tok.kind == tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		q, err := p.parseQueryOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return q, nil
	case tok.kind == tokIdent:
		a, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		return &rawQuery{kind: rqAtom, atom: a, line: a.line, col: a.col}, nil
	}
	return nil, errAt(tok.line, tok.col, "expected a query, found %s", tok)
}

func queryAtoms(q *rawQuery, out *[]rawAtom) {
	switch q.kind {
	case rqAtom:
		*out = append(*out, q.atom)
	case rqNot, rqExists, rqForall:
		queryAtoms(q.sub, out)
	case rqAnd, rqOr:
		queryAtoms(q.left, out)
		queryAtoms(q.right, out)
	}
}

// resolveQuery runs sort inference over the query's atoms (treated as a
// single clause, seeded with external signatures) and builds the typed
// query.
func resolveQuery(rq *rawQuery, preds map[string]ast.PredInfo) (ast.Query, error) {
	var atoms []rawAtom
	queryAtoms(rq, &atoms)
	u := &rawUnit{clauses: []rawClause{{head: rawAtom{pred: "$query$"}, body: atoms}}}
	s, err := newSorter(u)
	if err != nil {
		return nil, err
	}
	for name, info := range preds {
		if info.Temporal {
			s.temporal[name] = true
		} else {
			s.forced[name] = false
		}
	}
	if err := s.infer(); err != nil {
		return nil, err
	}
	// Arity / sort agreement with the supplied signatures.
	for _, a := range atoms {
		info, ok := preds[a.pred]
		if !ok {
			continue
		}
		want := len(a.args)
		if s.temporal[a.pred] {
			want--
		}
		if want != info.Arity {
			return nil, errAt(a.line, a.col, "predicate %s used with %d non-temporal arguments, declared with %d", a.pred, want, info.Arity)
		}
	}
	return buildQuery(rq, s)
}

func buildQuery(rq *rawQuery, s *sorter) (ast.Query, error) {
	switch rq.kind {
	case rqAtom:
		atom, err := s.buildAtom(0, rq.atom)
		if err != nil {
			return nil, err
		}
		return ast.QAtom{Atom: atom}, nil
	case rqNot:
		sub, err := buildQuery(rq.sub, s)
		if err != nil {
			return nil, err
		}
		return ast.QNot{Sub: sub}, nil
	case rqAnd, rqOr:
		left, err := buildQuery(rq.left, s)
		if err != nil {
			return nil, err
		}
		right, err := buildQuery(rq.right, s)
		if err != nil {
			return nil, err
		}
		if rq.kind == rqAnd {
			return ast.QAnd{Left: left, Right: right}, nil
		}
		return ast.QOr{Left: left, Right: right}, nil
	case rqExists, rqForall:
		sub, err := buildQuery(rq.sub, s)
		if err != nil {
			return nil, err
		}
		sort := ast.SortNonTemporal
		if s.tempVars[0][rq.v] {
			sort = ast.SortTemporal
		}
		if !varOccurs(sub, rq.v, sort) {
			return nil, errAt(rq.line, rq.col, "quantified variable %s does not occur in its scope", rq.v)
		}
		if rq.kind == rqExists {
			return ast.QExists{Var: rq.v, Sort: sort, Sub: sub}, nil
		}
		return ast.QForall{Var: rq.v, Sort: sort, Sub: sub}, nil
	}
	return nil, errAt(rq.line, rq.col, "internal: unknown query node")
}

// varOccurs reports whether variable v of the given sort occurs (free or
// bound — inner rebinding is uncommon and harmless here) in q.
func varOccurs(q ast.Query, v string, sort ast.Sort) bool {
	for _, a := range ast.QueryAtoms(q) {
		if sort == ast.SortTemporal {
			if a.Time != nil && a.Time.Var == v {
				return true
			}
			continue
		}
		for _, s := range a.Args {
			if s.IsVar && s.Name == v {
				return true
			}
		}
	}
	return false
}
