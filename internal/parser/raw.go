package parser

import "fmt"

// Raw (unsorted) parse trees. Terms are parsed without committing to the
// temporal / non-temporal distinction; sorts.go resolves sorts afterwards.

type rawKind int

const (
	rawInt rawKind = iota // integer literal
	rawConst
	rawVar
	rawVarPlus // V+k, k >= 1
	rawRange   // lo..hi, the paper's footnote-1 interval abbreviation
)

type rawTerm struct {
	kind rawKind
	name string // rawConst, rawVar, rawVarPlus
	num  int    // rawInt value, rawVarPlus offset, or rawRange low end
	hi   int    // rawRange high end
	line int
	col  int
}

func (t rawTerm) String() string {
	switch t.kind {
	case rawInt:
		return fmt.Sprintf("%d", t.num)
	case rawConst:
		return t.name
	case rawVar:
		return t.name
	case rawVarPlus:
		return fmt.Sprintf("%s+%d", t.name, t.num)
	case rawRange:
		return fmt.Sprintf("%d..%d", t.num, t.hi)
	}
	return "?"
}

type rawAtom struct {
	pred string
	args []rawTerm
	line int
	col  int
}

type rawClause struct {
	head rawAtom
	body []rawAtom
	line int
	col  int
}

func (c rawClause) fact() bool { return len(c.body) == 0 }

// directive is a sort directive: @temporal p. or @nontemporal p.
type directive struct {
	temporal bool
	pred     string
	line     int
	col      int
}

type rawUnit struct {
	clauses    []rawClause
	directives []directive
}
