package parser

import (
	"tdd/internal/ast"
)

// Sort inference. The surface syntax does not annotate which predicates are
// temporal; following the paper's convention that the temporal argument is
// the distinguished first argument, a predicate is inferred to be temporal
// when
//
//   - a @temporal directive names it, or
//   - some occurrence has a first argument with explicitly temporal syntax
//     (an integer literal or V+k with k >= 1), or
//   - some occurrence has as first argument a variable known to be temporal
//     in that clause (because it occurs in a V+k term or as the first
//     argument of another temporal predicate).
//
// The last condition makes inference a fixpoint across the unit. Predicates
// never marked temporal are non-temporal — plain Datalog relations — and an
// integer in their columns is an ordinary constant. @nontemporal overrides
// the integer-literal heuristic (for relations like score(10, john) whose
// first column happens to be numeric); it cannot override variable-based
// evidence, which would make the clause ill-sorted.

type sorter struct {
	temporal map[string]bool // pred -> temporal
	forced   map[string]bool // pred -> forced value (from directives)
	clauses  []rawClause
	// tempVars[i] is the set of temporal variables of clause i.
	tempVars []map[string]bool
}

func newSorter(u *rawUnit) (*sorter, error) {
	s := &sorter{
		temporal: make(map[string]bool),
		forced:   make(map[string]bool),
		clauses:  u.clauses,
		tempVars: make([]map[string]bool, len(u.clauses)),
	}
	for _, d := range u.directives {
		if prev, ok := s.forced[d.pred]; ok && prev != d.temporal {
			return nil, errAt(d.line, d.col, "conflicting sort directives for %s", d.pred)
		}
		s.forced[d.pred] = d.temporal
		if d.temporal {
			s.temporal[d.pred] = true
		}
	}
	for i := range s.tempVars {
		s.tempVars[i] = make(map[string]bool)
	}
	return s, nil
}

// markTemporal records pred as temporal, checking directives.
func (s *sorter) markTemporal(pred string, line, col int) error {
	if v, ok := s.forced[pred]; ok && !v {
		return errAt(line, col, "predicate %s is declared @nontemporal but used with a temporal first argument", pred)
	}
	s.temporal[pred] = true
	return nil
}

func (s *sorter) infer() error {
	// Seed: explicit temporal syntax.
	for ci, c := range s.clauses {
		atoms := append([]rawAtom{c.head}, c.body...)
		for _, a := range atoms {
			if len(a.args) == 0 {
				continue
			}
			first := a.args[0]
			if first.kind == rawVarPlus {
				if err := s.markTemporal(a.pred, a.line, a.col); err != nil {
					return err
				}
			}
			if first.kind == rawInt || first.kind == rawRange {
				// Integer or interval first argument is temporal evidence
				// unless the predicate is forced non-temporal.
				if v, ok := s.forced[a.pred]; !ok || v {
					s.temporal[a.pred] = true
				}
			}
			// V+k anywhere marks V temporal in this clause; the term
			// builder later rejects V+k outside the first position.
			for _, t := range a.args {
				if t.kind == rawVarPlus {
					s.tempVars[ci][t.name] = true
				}
			}
		}
	}
	// Fixpoint: propagate between predicates and variables.
	for changed := true; changed; {
		changed = false
		for ci, c := range s.clauses {
			atoms := append([]rawAtom{c.head}, c.body...)
			for _, a := range atoms {
				if len(a.args) == 0 {
					continue
				}
				first := a.args[0]
				if first.kind != rawVar {
					continue
				}
				if s.temporal[a.pred] && !s.tempVars[ci][first.name] {
					s.tempVars[ci][first.name] = true
					changed = true
				}
				if s.tempVars[ci][first.name] && !s.temporal[a.pred] {
					if err := s.markTemporal(a.pred, a.line, a.col); err != nil {
						return err
					}
					changed = true
				}
			}
		}
	}
	return nil
}

// buildAtom converts a raw atom of clause ci to a typed atom.
func (s *sorter) buildAtom(ci int, a rawAtom) (ast.Atom, error) {
	if s.temporal[a.pred] {
		if len(a.args) == 0 {
			return ast.Atom{}, errAt(a.line, a.col, "temporal predicate %s needs a temporal first argument", a.pred)
		}
		first := a.args[0]
		var tt ast.TemporalTerm
		switch first.kind {
		case rawInt:
			tt = ast.TemporalTerm{Depth: first.num}
		case rawVar:
			tt = ast.TemporalTerm{Var: first.name}
		case rawVarPlus:
			tt = ast.TemporalTerm{Var: first.name, Depth: first.num}
		case rawConst:
			return ast.Atom{}, errAt(first.line, first.col, "constant %s in the temporal position of %s (declare @nontemporal %s if intended)", first.name, a.pred, a.pred)
		case rawRange:
			return ast.Atom{}, errAt(first.line, first.col, "interval %s is only allowed in ground facts", first)
		}
		rest, err := s.buildArgs(ci, a.pred, a.args[1:])
		if err != nil {
			return ast.Atom{}, err
		}
		out := ast.TemporalAtom(a.pred, tt, rest...)
		out.Pos = ast.Pos{Line: a.line, Col: a.col}
		return out, nil
	}
	args, err := s.buildArgs(ci, a.pred, a.args)
	if err != nil {
		return ast.Atom{}, err
	}
	out := ast.NonTemporalAtom(a.pred, args...)
	out.Pos = ast.Pos{Line: a.line, Col: a.col}
	return out, nil
}

// buildArgs converts non-temporal argument positions.
func (s *sorter) buildArgs(ci int, pred string, raws []rawTerm) ([]ast.Symbol, error) {
	tv := s.tempVars[ci]
	out := make([]ast.Symbol, len(raws))
	for i, t := range raws {
		switch t.kind {
		case rawInt:
			out[i] = ast.Const(itoa(t.num))
		case rawConst:
			out[i] = ast.Const(t.name)
		case rawVar:
			if tv[t.name] {
				return nil, errAt(t.line, t.col, "temporal variable %s used in a non-temporal position of %s", t.name, pred)
			}
			out[i] = ast.Var(t.name)
		case rawVarPlus:
			return nil, errAt(t.line, t.col, "temporal term %s may appear only as the first argument of a temporal predicate", t)
		case rawRange:
			return nil, errAt(t.line, t.col, "interval %s may appear only as the temporal argument of a ground fact", t)
		}
	}
	return out, nil
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// maxIntervalPoints bounds interval-fact expansion per unit, cumulative
// across all interval facts. Each point becomes a database fact, so
// unbounded intervals would let a few characters of source
// (`p(0..999999999).`) allocate gigabytes; a million points is far
// beyond any legitimate unit file.
const maxIntervalPoints = 1 << 20

// resolveUnit runs sort inference and splits a raw unit into a program and
// a database.
func resolveUnit(u *rawUnit) (*ast.Program, *ast.Database, error) {
	s, err := newSorter(u)
	if err != nil {
		return nil, nil, err
	}
	if err := s.infer(); err != nil {
		return nil, nil, err
	}
	var rules []ast.Rule
	var facts []ast.Fact
	points := 0
	for ci, c := range u.clauses {
		// Interval facts like winter(0..90). expand to one fact per day
		// (the paper's footnote 1: "we could provide an abbreviation for
		// intervals").
		if c.fact() && len(c.head.args) > 0 && c.head.args[0].kind == rawRange && s.temporal[c.head.pred] {
			r := c.head.args[0]
			points += r.hi - r.num + 1
			if points > maxIntervalPoints {
				return nil, nil, errAt(r.line, r.col, "interval %d..%d expands the unit past %d points", r.num, r.hi, maxIntervalPoints)
			}
			for day := r.num; day <= r.hi; day++ {
				expanded := c.head
				expanded.args = append([]rawTerm(nil), c.head.args...)
				expanded.args[0] = rawTerm{kind: rawInt, num: day, line: r.line, col: r.col}
				head, err := s.buildAtom(ci, expanded)
				if err != nil {
					return nil, nil, err
				}
				if !head.Ground() {
					return nil, nil, errAt(c.line, c.col, "unit clause %s is not ground; rules need a body, facts need constants", head)
				}
				facts = append(facts, ast.FactOf(head))
			}
			continue
		}
		head, err := s.buildAtom(ci, c.head)
		if err != nil {
			return nil, nil, err
		}
		if c.fact() {
			if !head.Ground() {
				return nil, nil, errAt(c.line, c.col, "unit clause %s is not ground; rules need a body, facts need constants", head)
			}
			facts = append(facts, ast.FactOf(head))
			continue
		}
		r := ast.Rule{Head: head, Pos: ast.Pos{Line: c.line, Col: c.col}}
		for _, b := range c.body {
			atom, err := s.buildAtom(ci, b)
			if err != nil {
				return nil, nil, err
			}
			r.Body = append(r.Body, atom)
		}
		rules = append(rules, r)
	}
	prog, err := ast.NewProgram(rules)
	if err != nil {
		return nil, nil, err
	}
	db, err := ast.NewDatabase(facts)
	if err != nil {
		return nil, nil, err
	}
	// Cross-check rule and fact signatures.
	if err := db.CheckAgainst(prog); err != nil {
		return nil, nil, err
	}
	return prog, db, nil
}
