package parser

import (
	"strings"
	"testing"

	"tdd/internal/ast"
)

func skiPreds(t *testing.T) map[string]ast.PredInfo {
	t.Helper()
	p, err := ParseProgram(skiSrc)
	if err != nil {
		t.Fatal(err)
	}
	return p.Preds
}

func TestParseQueryGroundAtom(t *testing.T) {
	q, err := ParseQuery("plane(10, hunter)", skiPreds(t))
	if err != nil {
		t.Fatal(err)
	}
	a, ok := q.(ast.QAtom)
	if !ok {
		t.Fatalf("query type %T", q)
	}
	if a.Atom.Time == nil || a.Atom.Time.Depth != 10 || a.Atom.Args[0] != ast.Const("hunter") {
		t.Errorf("atom = %v", a.Atom)
	}
	if !ast.Closed(q) {
		t.Error("ground atom should be closed")
	}
}

func TestParseQueryOpen(t *testing.T) {
	q, err := ParseQuery("plane(T, X)", skiPreds(t))
	if err != nil {
		t.Fatal(err)
	}
	tv, nv := ast.FreeVars(q)
	if len(tv) != 1 || tv[0] != "T" {
		t.Errorf("temporal free vars = %v", tv)
	}
	if len(nv) != 1 || nv[0] != "X" {
		t.Errorf("non-temporal free vars = %v", nv)
	}
}

func TestParseQueryConnectives(t *testing.T) {
	q, err := ParseQuery("exists T (plane(T, hunter) & winter(T))", skiPreds(t))
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := q.(ast.QExists)
	if !ok || ex.Sort != ast.SortTemporal {
		t.Fatalf("query = %v (%T)", q, q)
	}
	if _, ok := ex.Sub.(ast.QAnd); !ok {
		t.Errorf("body = %T, want QAnd", ex.Sub)
	}
	if !ast.Closed(q) {
		t.Error("should be closed")
	}
}

func TestParseQueryForallNot(t *testing.T) {
	q, err := ParseQuery("forall X (!resort(X) | exists T plane(T, X))", skiPreds(t))
	if err != nil {
		t.Fatal(err)
	}
	fa, ok := q.(ast.QForall)
	if !ok || fa.Sort != ast.SortNonTemporal {
		t.Fatalf("query = %v", q)
	}
	or, ok := fa.Sub.(ast.QOr)
	if !ok {
		t.Fatalf("sub = %T", fa.Sub)
	}
	if _, ok := or.Left.(ast.QNot); !ok {
		t.Errorf("left = %T, want QNot", or.Left)
	}
}

func TestParseQueryKeywordConnectives(t *testing.T) {
	q, err := ParseQuery("plane(0, hunter) and not winter(0) or holiday(0)", skiPreds(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := q.(ast.QOr); !ok {
		t.Fatalf("or should bind loosest: %T", q)
	}
}

func TestParseQueryMultiVarQuantifier(t *testing.T) {
	q, err := ParseQuery("exists T, X plane(T, X)", skiPreds(t))
	if err != nil {
		t.Fatal(err)
	}
	outer, ok := q.(ast.QExists)
	if !ok || outer.Var != "T" || outer.Sort != ast.SortTemporal {
		t.Fatalf("outer = %v", q)
	}
	inner, ok := outer.Sub.(ast.QExists)
	if !ok || inner.Var != "X" || inner.Sort != ast.SortNonTemporal {
		t.Fatalf("inner = %v", outer.Sub)
	}
}

func TestParseQuerySortFromSignature(t *testing.T) {
	// Nothing in the query text says T is temporal; the signature does.
	q, err := ParseQuery("exists T plane(T, hunter)", skiPreds(t))
	if err != nil {
		t.Fatal(err)
	}
	if q.(ast.QExists).Sort != ast.SortTemporal {
		t.Error("T not inferred temporal from plane's signature")
	}
}

func TestParseQueryUnknownPredicate(t *testing.T) {
	// Unknown predicates are allowed (they are simply empty) and inferred
	// from the text.
	q, err := ParseQuery("mystery(3, a)", skiPreds(t))
	if err != nil {
		t.Fatal(err)
	}
	a := q.(ast.QAtom).Atom
	if a.Time == nil || a.Time.Depth != 3 {
		t.Errorf("mystery not inferred temporal: %v", a)
	}
}

func TestParseQueryErrors(t *testing.T) {
	preds := skiPreds(t)
	cases := []struct {
		src  string
		want string
	}{
		{"plane(10)", "declared with"},
		{"plane(10, hunter) &", "expected a query"},
		{"exists plane(0, hunter)", "expected variable"},
		{"exists Y plane(0, hunter)", "does not occur"},
		{"(plane(0, hunter)", "expected ')'"},
		{"plane(0, hunter) plane(1, hunter)", "unexpected"},
	}
	for _, c := range cases {
		_, err := ParseQuery(c.src, preds)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseQuery(%q) err = %v, want contains %q", c.src, err, c.want)
		}
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	preds := skiPreds(t)
	for _, src := range []string{
		"plane(10, hunter)",
		"exists T (plane(T, hunter) & winter(T))",
		"forall X (!resort(X) | exists T plane(T, X))",
		"!(winter(3) | holiday(3))",
	} {
		q, err := ParseQuery(src, preds)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		q2, err := ParseQuery(q.String(), preds)
		if err != nil {
			t.Fatalf("reparse %q: %v", q.String(), err)
		}
		if q.String() != q2.String() {
			t.Errorf("round trip: %q vs %q", q.String(), q2.String())
		}
	}
}
