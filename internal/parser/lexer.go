// Package parser implements the concrete syntax of temporal deductive
// databases: a Prolog-style surface language for temporal rules, databases,
// and first-order temporal queries, matching the notation of Chomicki
// (PODS 1990).
//
// Clause syntax:
//
//	plane(T+7, X) :- plane(T, X), resort(X), offseason(T).
//	plane(0, hunter).            % ground facts (databases)
//	@nontemporal score.          % sort directive (rarely needed)
//
// Comments run from '%' or "//" to end of line. Constants are lower-case
// identifiers, integers in non-temporal positions, or single-quoted
// strings; variables start with an upper-case letter or '_'. The temporal
// argument is the first argument of a temporal predicate; a predicate is
// inferred to be temporal when some occurrence has a first argument with
// temporal syntax (an integer or V+k), see sorts.go.
//
// Query syntax:
//
//	plane(10, hunter)
//	exists T (plane(T, X) & winter(T))
//	forall X (!resort(X) | exists T plane(T, X))
package parser

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokVar
	tokInt
	tokQuoted
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokImplies // :-
	tokPlus
	tokBang
	tokAmp
	tokPipe
	tokAt
	tokDotDot // ".." in interval facts like winter(0..90).
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokVar:
		return "variable"
	case tokInt:
		return "integer"
	case tokQuoted:
		return "quoted constant"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokImplies:
		return "':-'"
	case tokPlus:
		return "'+'"
	case tokBang:
		return "'!'"
	case tokAmp:
		return "'&'"
	case tokPipe:
		return "'|'"
	case tokAt:
		return "'@'"
	case tokDotDot:
		return "'..'"
	}
	return "unknown token"
}

type token struct {
	kind tokenKind
	text string
	num  int
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokIdent, tokVar:
		return fmt.Sprintf("%q", t.text)
	case tokInt:
		return fmt.Sprintf("%d", t.num)
	case tokQuoted:
		return fmt.Sprintf("'%s'", t.text)
	default:
		return t.kind.String()
	}
}

// Error is a syntax or sort error with a source position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	if e.Line == 0 {
		return "parser: " + e.Msg
	}
	return fmt.Sprintf("parser: %d:%d: %s", e.Line, e.Col, e.Msg)
}

func errAt(line, col int, format string, args ...interface{}) error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) peekRune() (rune, int) {
	if l.pos >= len(l.src) {
		return 0, 0
	}
	return utf8.DecodeRuneInString(l.src[l.pos:])
}

func (l *lexer) advance(r rune, size int) {
	l.pos += size
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
}

func (l *lexer) skipSpaceAndComments() {
	for {
		r, size := l.peekRune()
		switch {
		case size == 0:
			return
		case unicode.IsSpace(r):
			l.advance(r, size)
		case r == '%':
			l.skipLine()
		case r == '/' && strings.HasPrefix(l.src[l.pos:], "//"):
			l.skipLine()
		default:
			return
		}
	}
}

func (l *lexer) skipLine() {
	for {
		r, size := l.peekRune()
		if size == 0 || r == '\n' {
			return
		}
		l.advance(r, size)
	}
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	line, col := l.line, l.col
	r, size := l.peekRune()
	if size == 0 {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	switch {
	case r == '(':
		l.advance(r, size)
		return token{kind: tokLParen, line: line, col: col}, nil
	case r == ')':
		l.advance(r, size)
		return token{kind: tokRParen, line: line, col: col}, nil
	case r == ',':
		l.advance(r, size)
		return token{kind: tokComma, line: line, col: col}, nil
	case r == '.':
		l.advance(r, size)
		if r2, s2 := l.peekRune(); r2 == '.' {
			l.advance(r2, s2)
			return token{kind: tokDotDot, line: line, col: col}, nil
		}
		return token{kind: tokDot, line: line, col: col}, nil
	case r == '+':
		l.advance(r, size)
		return token{kind: tokPlus, line: line, col: col}, nil
	case r == '!':
		l.advance(r, size)
		return token{kind: tokBang, line: line, col: col}, nil
	case r == '&':
		l.advance(r, size)
		return token{kind: tokAmp, line: line, col: col}, nil
	case r == '|':
		l.advance(r, size)
		return token{kind: tokPipe, line: line, col: col}, nil
	case r == '@':
		l.advance(r, size)
		return token{kind: tokAt, line: line, col: col}, nil
	case r == ':':
		l.advance(r, size)
		if r2, s2 := l.peekRune(); r2 == '-' {
			l.advance(r2, s2)
			return token{kind: tokImplies, line: line, col: col}, nil
		}
		return token{}, errAt(line, col, "expected ':-' after ':'")
	case r == '\'':
		return l.lexQuoted(line, col)
	case r >= '0' && r <= '9':
		return l.lexInt(line, col)
	case unicode.IsLetter(r) || r == '_':
		return l.lexName(line, col)
	}
	return token{}, errAt(line, col, "unexpected character %q", r)
}

func (l *lexer) lexQuoted(line, col int) (token, error) {
	r, size := l.peekRune() // opening quote
	l.advance(r, size)
	var b strings.Builder
	for {
		r, size := l.peekRune()
		if size == 0 {
			return token{}, errAt(line, col, "unterminated quoted constant")
		}
		l.advance(r, size)
		switch r {
		case '\'':
			return token{kind: tokQuoted, text: b.String(), line: line, col: col}, nil
		case '\\':
			r2, s2 := l.peekRune()
			if s2 == 0 {
				return token{}, errAt(line, col, "unterminated quoted constant")
			}
			l.advance(r2, s2)
			b.WriteRune(r2)
		default:
			b.WriteRune(r)
		}
	}
}

func (l *lexer) lexInt(line, col int) (token, error) {
	n := 0
	digits := 0
	for {
		r, size := l.peekRune()
		if r < '0' || r > '9' {
			break
		}
		if n > (1<<31)/10 {
			return token{}, errAt(line, col, "integer literal too large")
		}
		n = n*10 + int(r-'0')
		digits++
		l.advance(r, size)
	}
	if digits == 0 {
		return token{}, errAt(line, col, "expected digits")
	}
	// A digit run immediately followed by a letter is an identifier like
	// 3com? Keep it simple: reject.
	if r, _ := l.peekRune(); unicode.IsLetter(r) || r == '_' {
		return token{}, errAt(line, col, "identifier may not start with a digit")
	}
	return token{kind: tokInt, num: n, line: line, col: col}, nil
}

func (l *lexer) lexName(line, col int) (token, error) {
	start := l.pos
	first, _ := l.peekRune()
	for {
		r, size := l.peekRune()
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' {
			break
		}
		l.advance(r, size)
	}
	text := l.src[start:l.pos]
	if unicode.IsUpper(first) || first == '_' {
		return token{kind: tokVar, text: text, line: line, col: col}, nil
	}
	return token{kind: tokIdent, text: text, line: line, col: col}, nil
}
