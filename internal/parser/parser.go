package parser

import (
	"fmt"

	"tdd/internal/ast"
)

type parser struct {
	lex *lexer
	tok token // lookahead
}

func newParser(src string) (*parser, error) {
	p := &parser{lex: newLexer(src)}
	return p, p.advance()
}

func (p *parser) advance() error {
	tok, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = tok
	return nil
}

func (p *parser) expect(kind tokenKind) (token, error) {
	if p.tok.kind != kind {
		return token{}, errAt(p.tok.line, p.tok.col, "expected %s, found %s", kind, p.tok)
	}
	tok := p.tok
	return tok, p.advance()
}

// parseUnit parses a sequence of clauses and directives.
func (p *parser) parseUnit() (*rawUnit, error) {
	u := &rawUnit{}
	for p.tok.kind != tokEOF {
		if p.tok.kind == tokAt {
			d, err := p.parseDirective()
			if err != nil {
				return nil, err
			}
			u.directives = append(u.directives, d)
			continue
		}
		c, err := p.parseClause()
		if err != nil {
			return nil, err
		}
		u.clauses = append(u.clauses, c)
	}
	return u, nil
}

func (p *parser) parseDirective() (directive, error) {
	at := p.tok
	if err := p.advance(); err != nil {
		return directive{}, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return directive{}, err
	}
	d := directive{line: at.line, col: at.col}
	switch name.text {
	case "temporal":
		d.temporal = true
	case "nontemporal":
		d.temporal = false
	default:
		return directive{}, errAt(name.line, name.col, "unknown directive @%s (want @temporal or @nontemporal)", name.text)
	}
	pred, err := p.expect(tokIdent)
	if err != nil {
		return directive{}, err
	}
	d.pred = pred.text
	if _, err := p.expect(tokDot); err != nil {
		return directive{}, err
	}
	return d, nil
}

func (p *parser) parseClause() (rawClause, error) {
	head, err := p.parseAtom()
	if err != nil {
		return rawClause{}, err
	}
	c := rawClause{head: head, line: head.line, col: head.col}
	if p.tok.kind == tokImplies {
		if err := p.advance(); err != nil {
			return rawClause{}, err
		}
		for {
			a, err := p.parseAtom()
			if err != nil {
				return rawClause{}, err
			}
			c.body = append(c.body, a)
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return rawClause{}, err
			}
		}
	}
	if _, err := p.expect(tokDot); err != nil {
		return rawClause{}, err
	}
	return c, nil
}

func (p *parser) parseAtom() (rawAtom, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return rawAtom{}, err
	}
	a := rawAtom{pred: name.text, line: name.line, col: name.col}
	if p.tok.kind != tokLParen {
		return a, nil
	}
	if err := p.advance(); err != nil {
		return rawAtom{}, err
	}
	for {
		t, err := p.parseTerm()
		if err != nil {
			return rawAtom{}, err
		}
		a.args = append(a.args, t)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return rawAtom{}, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return rawAtom{}, err
	}
	return a, nil
}

func (p *parser) parseTerm() (rawTerm, error) {
	tok := p.tok
	switch tok.kind {
	case tokInt:
		if err := p.advance(); err != nil {
			return rawTerm{}, err
		}
		// "3+2" is not a term; integers never take +.
		if p.tok.kind == tokPlus {
			return rawTerm{}, errAt(p.tok.line, p.tok.col, "'+' may only follow a temporal variable")
		}
		// lo..hi — the paper's interval abbreviation (footnote 1), legal
		// only as the temporal argument of a ground fact.
		if p.tok.kind == tokDotDot {
			if err := p.advance(); err != nil {
				return rawTerm{}, err
			}
			hi, err := p.expect(tokInt)
			if err != nil {
				return rawTerm{}, err
			}
			if hi.num < tok.num {
				return rawTerm{}, errAt(tok.line, tok.col, "empty interval %d..%d", tok.num, hi.num)
			}
			return rawTerm{kind: rawRange, num: tok.num, hi: hi.num, line: tok.line, col: tok.col}, nil
		}
		return rawTerm{kind: rawInt, num: tok.num, line: tok.line, col: tok.col}, nil
	case tokQuoted:
		if err := p.advance(); err != nil {
			return rawTerm{}, err
		}
		return rawTerm{kind: rawConst, name: tok.text, line: tok.line, col: tok.col}, nil
	case tokIdent:
		if err := p.advance(); err != nil {
			return rawTerm{}, err
		}
		return rawTerm{kind: rawConst, name: tok.text, line: tok.line, col: tok.col}, nil
	case tokVar:
		if err := p.advance(); err != nil {
			return rawTerm{}, err
		}
		if p.tok.kind == tokPlus {
			if err := p.advance(); err != nil {
				return rawTerm{}, err
			}
			k, err := p.expect(tokInt)
			if err != nil {
				return rawTerm{}, err
			}
			if k.num == 0 {
				return rawTerm{kind: rawVar, name: tok.text, line: tok.line, col: tok.col}, nil
			}
			return rawTerm{kind: rawVarPlus, name: tok.text, num: k.num, line: tok.line, col: tok.col}, nil
		}
		return rawTerm{kind: rawVar, name: tok.text, line: tok.line, col: tok.col}, nil
	}
	return rawTerm{}, errAt(tok.line, tok.col, "expected a term, found %s", tok)
}

// ParseUnit parses a mixed source text of rules, ground facts, and sort
// directives, resolving sorts across the whole unit. Ground unit clauses
// become database facts; everything else becomes rules.
func ParseUnit(src string) (*ast.Program, *ast.Database, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, nil, err
	}
	u, err := p.parseUnit()
	if err != nil {
		return nil, nil, err
	}
	return resolveUnit(u)
}

// ParseProgram parses rules only. Ground unit clauses are rejected with a
// pointer to the database.
func ParseProgram(src string) (*ast.Program, error) {
	prog, db, err := ParseUnit(src)
	if err != nil {
		return nil, err
	}
	if len(db.Facts) > 0 {
		return nil, fmt.Errorf("parser: program source contains ground fact %s; facts belong in the database", db.Facts[0])
	}
	return prog, nil
}

// ParseDatabase parses ground facts only.
func ParseDatabase(src string) (*ast.Database, error) {
	prog, db, err := ParseUnit(src)
	if err != nil {
		return nil, err
	}
	if len(prog.Rules) > 0 {
		return nil, fmt.Errorf("parser: database source contains rule %s", prog.Rules[0])
	}
	return db, nil
}
