package parser

import (
	"strings"
	"testing"

	"tdd/internal/ast"
)

// TestRuleAndAtomPositions pins the 1-based line:col convention threaded
// from the lexer into ast nodes: a rule's position is its head predicate's
// token, an atom's position is its own predicate token.
func TestRuleAndAtomPositions(t *testing.T) {
	src := "p(T+1) :- p(T), q(T).\n\n  r(T+2) :- q(T+1).\np(0).\nq(0).\n"
	prog, _, err := ParseUnit(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 2 {
		t.Fatalf("rules = %d, want 2", len(prog.Rules))
	}

	r0 := prog.Rules[0]
	if r0.Pos != (ast.Pos{Line: 1, Col: 1}) {
		t.Errorf("rule 0 pos = %v, want 1:1", r0.Pos)
	}
	if r0.Head.Pos != (ast.Pos{Line: 1, Col: 1}) {
		t.Errorf("rule 0 head pos = %v, want 1:1", r0.Head.Pos)
	}
	// "p(T+1) :- p(T), q(T)." — body p at col 11, q at col 17.
	if r0.Body[0].Pos != (ast.Pos{Line: 1, Col: 11}) {
		t.Errorf("rule 0 body[0] pos = %v, want 1:11", r0.Body[0].Pos)
	}
	if r0.Body[1].Pos != (ast.Pos{Line: 1, Col: 17}) {
		t.Errorf("rule 0 body[1] pos = %v, want 1:17", r0.Body[1].Pos)
	}

	// Rule 2 starts on line 3 after two leading spaces: col 3.
	r1 := prog.Rules[1]
	if r1.Pos != (ast.Pos{Line: 3, Col: 3}) {
		t.Errorf("rule 1 pos = %v, want 3:3", r1.Pos)
	}
}

// TestPositionsSurviveClone checks Clone carries positions (diagnostics
// run on clones) and Equal ignores them (two parses of the same atom from
// different positions still compare equal).
func TestPositionsSurviveClone(t *testing.T) {
	prog, _, err := ParseUnit("p(T+1) :- p(T).\np(0).\n")
	if err != nil {
		t.Fatal(err)
	}
	c := prog.Clone()
	if c.Rules[0].Pos != prog.Rules[0].Pos {
		t.Errorf("clone rule pos = %v, want %v", c.Rules[0].Pos, prog.Rules[0].Pos)
	}
	if c.Rules[0].Head.Pos != prog.Rules[0].Head.Pos {
		t.Errorf("clone head pos = %v, want %v", c.Rules[0].Head.Pos, prog.Rules[0].Head.Pos)
	}

	a := prog.Rules[0].Head
	b := a.Clone()
	b.Pos = ast.Pos{Line: 99, Col: 42}
	if !a.Equal(b) {
		t.Error("Equal must ignore Pos")
	}
}

// TestValidationErrorCarriesPosition checks validator errors are anchored
// at the offending rule, not the file start.
func TestValidationErrorCarriesPosition(t *testing.T) {
	src := "p(T+1) :- p(T).\nq(T+1, X) :- q(T, Y).\np(0).\nq(0, a).\n"
	prog, _, err := ParseUnit(src)
	if err != nil {
		t.Fatal(err)
	}
	verr := ast.ValidateRule(prog.Rules[1])
	if verr == nil {
		t.Fatal("want range-restriction error")
	}
	if !strings.Contains(verr.Error(), "at line 2:1") {
		t.Errorf("error %q does not name line 2:1", verr)
	}
}

// TestZeroPosIsUnknown locks the zero-value convention: programmatically
// built nodes have no position and render without one.
func TestZeroPosIsUnknown(t *testing.T) {
	var p ast.Pos
	if p.Known() {
		t.Error("zero Pos must be unknown")
	}
	if got := (ast.Pos{Line: 3, Col: 7}).String(); got != "3:7" {
		t.Errorf("String = %q, want 3:7", got)
	}
}
