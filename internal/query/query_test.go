package query

import (
	"errors"
	"testing"

	"tdd/internal/ast"
	"tdd/internal/engine"
	"tdd/internal/parser"
	"tdd/internal/spec"
)

const skiSrc = `
plane(T+7, X) :- plane(T, X), resort(X), offseason(T).
plane(T+2, X) :- plane(T, X), resort(X), winter(T).
plane(T+1, X) :- plane(T, X), resort(X), holiday(T).
offseason(T+10) :- offseason(T).
winter(T+10) :- winter(T).
holiday(T+10) :- holiday(T).
winter(0). winter(1). winter(2). winter(3).
offseason(4). offseason(5). offseason(6). offseason(7). offseason(8). offseason(9).
holiday(1).
resort(hunter).
plane(0, hunter).
`

type fixture struct {
	s     *spec.Spec
	preds map[string]ast.PredInfo
	eval  *engine.Evaluator
}

func setup(t *testing.T, src string) fixture {
	t.Helper()
	prog, db, err := parser.ParseUnit(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	e, err := engine.New(prog, db)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	s, err := spec.Compute(e, 1<<20)
	if err != nil {
		t.Fatalf("spec: %v", err)
	}
	preds := make(map[string]ast.PredInfo)
	for k, v := range prog.Preds {
		preds[k] = v
	}
	for k, v := range db.Preds {
		preds[k] = v
	}
	return fixture{s: s, preds: preds, eval: e}
}

func (f fixture) query(t *testing.T, src string) ast.Query {
	t.Helper()
	q, err := parser.ParseQuery(src, f.preds)
	if err != nil {
		t.Fatalf("ParseQuery(%q): %v", src, err)
	}
	return q
}

func TestEvalGroundAtoms(t *testing.T) {
	f := setup(t, skiSrc)
	cases := map[string]bool{
		"plane(0, hunter)":    true,
		"plane(2, hunter)":    true,
		"plane(3, hunter)":    false,
		"plane(1000, hunter)": false,
		"resort(hunter)":      true,
		"resort(aspen)":       false,
		"winter(21)":          true,
		"winter(25)":          false,
	}
	for src, want := range cases {
		got, err := Eval(f.s, f.query(t, src))
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if got != want {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestEvalConnectives(t *testing.T) {
	f := setup(t, skiSrc)
	cases := map[string]bool{
		"plane(0, hunter) & winter(0)":                     true,
		"plane(0, hunter) & winter(5)":                     false,
		"plane(3, hunter) | plane(4, hunter)":              true,
		"!plane(3, hunter)":                                true,
		"!(plane(0, hunter) & winter(0))":                  false,
		"exists T (plane(T, hunter) & winter(T))":          true,
		"exists T (plane(T, hunter) & holiday(T))":         true,
		"exists X (resort(X) & plane(0, X))":               true,
		"forall T (winter(T) | holiday(T) | offseason(T))": true,
		"forall T winter(T)":                               false,
		"forall X (!resort(X) | exists T plane(T, X))":     true,
	}
	for src, want := range cases {
		got, err := Eval(f.s, f.query(t, src))
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if got != want {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestEvalOpenQueryRejected(t *testing.T) {
	f := setup(t, skiSrc)
	_, err := Eval(f.s, f.query(t, "plane(T, hunter)"))
	if !errors.Is(err, ErrOpenQuery) {
		t.Errorf("err = %v, want ErrOpenQuery", err)
	}
}

func TestAnswersOpenTemporal(t *testing.T) {
	// The paper's even example: answers to even(X) are X=0 plus the
	// rewrite rule — here, representatives {0, 2} of T = {0, 1, 2}.
	f := setup(t, "even(T+2) :- even(T).\neven(0).")
	ans, err := Answers(f.s, f.query(t, "even(T)"))
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	for _, a := range ans {
		got = append(got, a.Temporal["T"])
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("answers = %v, want [0 2]", got)
	}
}

func TestAnswersMixedSorts(t *testing.T) {
	f := setup(t, skiSrc)
	ans, err := Answers(f.s, f.query(t, "plane(T, X) & holiday(T)"))
	if err != nil {
		t.Fatal(err)
	}
	// Within representatives, planes on holidays: day 11 is holiday
	// (11 mod 10 = 1) and has a plane; day 1 is a holiday without one.
	for _, a := range ans {
		if a.NonTemporal["X"] != "hunter" {
			t.Errorf("unexpected resort %v", a)
		}
		tm := a.Temporal["T"]
		if tm%10 != 1 {
			t.Errorf("answer T=%d is not a holiday", tm)
		}
	}
	if len(ans) == 0 {
		t.Error("expected at least one answer")
	}
}

func TestAnswersClosedQuery(t *testing.T) {
	f := setup(t, skiSrc)
	ans, err := Answers(f.s, f.query(t, "plane(0, hunter)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 1 || len(ans[0].Temporal) != 0 || len(ans[0].NonTemporal) != 0 {
		t.Errorf("answers = %v, want one empty answer", ans)
	}
	ans, err = Answers(f.s, f.query(t, "plane(3, hunter)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 0 {
		t.Errorf("answers = %v, want none", ans)
	}
}

func TestAnswerString(t *testing.T) {
	a := Answer{Temporal: map[string]int{"T": 11}, NonTemporal: map[string]string{"X": "hunter"}}
	if got := a.String(); got != "T=11, X=hunter" {
		t.Errorf("String = %q", got)
	}
}

func TestSpecAgreesWithWindowOnExistentialQueries(t *testing.T) {
	// Proposition 3.1 in action: spec-based evaluation agrees with direct
	// evaluation over a large window for existential-positive queries.
	f := setup(t, skiSrc)
	w := Window{Eval: f.eval, M: 200}
	for _, src := range []string{
		"exists T (plane(T, hunter) & holiday(T))",
		"exists T (plane(T, hunter) & offseason(T))",
		"exists T, X (plane(T, X) & winter(T))",
		"exists X (resort(X) & plane(2, X))",
	} {
		q := f.query(t, src)
		specGot, err := Eval(f.s, q)
		if err != nil {
			t.Fatal(err)
		}
		winGot, err := Eval(w, q)
		if err != nil {
			t.Fatal(err)
		}
		if specGot != winGot {
			t.Errorf("%q: spec=%v window=%v", src, specGot, winGot)
		}
	}
}

func TestWindowGroundAtoms(t *testing.T) {
	f := setup(t, "even(T+2) :- even(T).\neven(0).")
	w := Window{Eval: f.eval, M: 50}
	got, err := Eval(w, f.query(t, "even(40)"))
	if err != nil || !got {
		t.Errorf("even(40) over window = %v, %v", got, err)
	}
	// Beyond the window the baseline (unsoundly, by design) answers no.
	got, err = Eval(w, f.query(t, "even(60)"))
	if err != nil || got {
		t.Errorf("even(60) over window = %v, %v (expected false beyond M)", got, err)
	}
}

func TestWindowDomains(t *testing.T) {
	f := setup(t, skiSrc)
	w := Window{Eval: f.eval, M: 5}
	if len(w.TemporalDomain()) != 6 {
		t.Errorf("TemporalDomain = %v", w.TemporalDomain())
	}
	cd := w.ConstantDomain()
	if len(cd) != 1 || cd[0] != "hunter" {
		t.Errorf("ConstantDomain = %v", cd)
	}
}

func TestAnswersLimit(t *testing.T) {
	f := setup(t, skiSrc)
	all, err := Answers(f.s, f.query(t, "winter(T)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 4 {
		t.Fatalf("expected several winter representatives, got %d", len(all))
	}
	two, err := AnswersLimit(f.s, f.query(t, "winter(T)"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 2 {
		t.Fatalf("limited answers = %d, want 2", len(two))
	}
	// Limit larger than the answer count returns everything.
	many, err := AnswersLimit(f.s, f.query(t, "winter(T)"), len(all)+100)
	if err != nil {
		t.Fatal(err)
	}
	if len(many) != len(all) {
		t.Errorf("over-limit answers = %d, want %d", len(many), len(all))
	}
	// The prefix matches the unlimited enumeration order.
	for i := range two {
		if two[i].Temporal["T"] != all[i].Temporal["T"] {
			t.Errorf("limited answer %d diverges: %v vs %v", i, two[i], all[i])
		}
	}
}
