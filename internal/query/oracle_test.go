package query

// An independent oracle for the query evaluator: instead of top-down
// recursion with an environment, evaluate bottom-up in relational-algebra
// style — each subformula yields the SET of satisfying assignments over
// its free variables (complementation against the active domains gives
// CWA negation, projection gives exists, division gives forall). The two
// strategies share no code; differential tests run them against random
// queries including negation and universal quantifiers.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"tdd/internal/ast"
	"tdd/internal/engine"
	"tdd/internal/parser"
	"tdd/internal/spec"
)

// vars is a sorted list of variable names with sorts.
type ovar struct {
	name     string
	temporal bool
}

type oset struct {
	vars []ovar
	rows map[string]bool // canonical encoding of assignments
}

func encode(vals []string) string { return strings.Join(vals, "\x00") }

func (s oset) project(keep []ovar) oset {
	idx := make([]int, len(keep))
	for i, k := range keep {
		idx[i] = -1
		for j, v := range s.vars {
			if v == k {
				idx[i] = j
			}
		}
		if idx[i] < 0 {
			panic("oracle: projecting onto a missing variable")
		}
	}
	out := oset{vars: keep, rows: map[string]bool{}}
	for row := range s.rows {
		parts := strings.Split(row, "\x00")
		if len(s.vars) == 0 {
			parts = nil
		}
		vals := make([]string, len(keep))
		for i, j := range idx {
			vals[i] = parts[j]
		}
		out.rows[encode(vals)] = true
	}
	return out
}

// oracle evaluates q bottom-up over structure st.
func oracle(st Structure, q ast.Query) oset {
	tdom := st.TemporalDomain()
	cdom := st.ConstantDomain()
	domainOf := func(v ovar) []string {
		if v.temporal {
			out := make([]string, len(tdom))
			for i, t := range tdom {
				out[i] = fmt.Sprintf("%d", t)
			}
			return out
		}
		return cdom
	}
	// all enumerates every assignment over vars, calling f with the values.
	var all func(vars []ovar, f func(vals []string))
	all = func(vars []ovar, f func(vals []string)) {
		if len(vars) == 0 {
			f(nil)
			return
		}
		var rec func(i int, acc []string)
		rec = func(i int, acc []string) {
			if i == len(vars) {
				f(append([]string(nil), acc...))
				return
			}
			for _, d := range domainOf(vars[i]) {
				rec(i+1, append(acc, d))
			}
		}
		rec(0, nil)
	}
	freeOf := func(q ast.Query) []ovar {
		tv, nv := ast.FreeVars(q)
		var out []ovar
		for _, v := range tv {
			out = append(out, ovar{name: v, temporal: true})
		}
		for _, v := range nv {
			out = append(out, ovar{name: v})
		}
		sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
		return out
	}
	// holds evaluates q under a total assignment of its free variables.
	var eval func(q ast.Query) oset
	eval = func(q ast.Query) oset {
		vars := freeOf(q)
		out := oset{vars: vars, rows: map[string]bool{}}
		switch q := q.(type) {
		case ast.QAtom:
			all(vars, func(vals []string) {
				f := ast.Fact{Pred: q.Atom.Pred}
				lookup := func(name string) string {
					for i, v := range vars {
						if v.name == name {
							return vals[i]
						}
					}
					panic("oracle: unbound " + name)
				}
				if q.Atom.Time != nil {
					f.Temporal = true
					if q.Atom.Time.Ground() {
						f.Time = q.Atom.Time.Depth
					} else {
						var t int
						fmt.Sscanf(lookup(q.Atom.Time.Var), "%d", &t)
						f.Time = t + q.Atom.Time.Depth
					}
				}
				for _, s := range q.Atom.Args {
					if s.IsVar {
						f.Args = append(f.Args, lookup(s.Name))
					} else {
						f.Args = append(f.Args, s.Name)
					}
				}
				if st.HoldsFact(f) {
					out.rows[encode(vals)] = true
				}
			})
		case ast.QNot:
			sub := eval(q.Sub)
			all(vars, func(vals []string) {
				if !sub.rows[encode(vals)] {
					out.rows[encode(vals)] = true
				}
			})
		case ast.QAnd, ast.QOr:
			var l, r ast.Query
			and := false
			if a, ok := q.(ast.QAnd); ok {
				l, r, and = a.Left, a.Right, true
			} else {
				o := q.(ast.QOr)
				l, r = o.Left, o.Right
			}
			ls, rs := eval(l), eval(r)
			all(vars, func(vals []string) {
				asg := map[string]string{}
				for i, v := range vars {
					asg[v.name] = vals[i]
				}
				inL := member(ls, asg)
				inR := member(rs, asg)
				if (and && inL && inR) || (!and && (inL || inR)) {
					out.rows[encode(vals)] = true
				}
			})
		case ast.QExists:
			sub := eval(q.Sub)
			all(vars, func(vals []string) {
				asg := map[string]string{}
				for i, v := range vars {
					asg[v.name] = vals[i]
				}
				found := false
				for _, d := range domainOf(ovar{name: q.Var, temporal: q.Sort == ast.SortTemporal}) {
					asg[q.Var] = d
					if member(sub, asg) {
						found = true
						break
					}
				}
				if found {
					out.rows[encode(vals)] = true
				}
			})
		case ast.QForall:
			sub := eval(q.Sub)
			all(vars, func(vals []string) {
				asg := map[string]string{}
				for i, v := range vars {
					asg[v.name] = vals[i]
				}
				ok := true
				for _, d := range domainOf(ovar{name: q.Var, temporal: q.Sort == ast.SortTemporal}) {
					asg[q.Var] = d
					if !member(sub, asg) {
						ok = false
						break
					}
				}
				if ok {
					out.rows[encode(vals)] = true
				}
			})
		}
		return out
	}
	return eval(q)
}

// member tests whether the projection of asg onto s.vars is in s. A
// variable absent from asg cannot occur (freeness bookkeeping guarantees
// it).
func member(s oset, asg map[string]string) bool {
	vals := make([]string, len(s.vars))
	for i, v := range s.vars {
		val, ok := asg[v.name]
		if !ok {
			panic("oracle: assignment missing " + v.name)
		}
		vals[i] = val
	}
	return s.rows[encode(vals)]
}

func TestOracleAgreesOnHandwrittenQueries(t *testing.T) {
	f := setup(t, skiSrc)
	for _, src := range []string{
		"plane(0, hunter)",
		"plane(3, hunter)",
		"exists T (plane(T, hunter) & winter(T))",
		"forall T (winter(T) | holiday(T) | offseason(T))",
		"forall X (!resort(X) | exists T plane(T, X))",
		"!(winter(3) & holiday(3))",
		"exists X (resort(X) & !plane(1, X))",
		"forall T exists X (plane(T, X) | !plane(T, X))", // tautology
	} {
		q := f.query(t, src)
		want, err := Eval(f.s, q)
		if err != nil {
			t.Fatal(err)
		}
		got := len(oracle(f.s, q).rows) == 1
		if got != want {
			t.Errorf("%q: oracle=%v eval=%v", src, got, want)
		}
	}
}

func TestOracleAgreesOnOpenQueries(t *testing.T) {
	f := setup(t, skiSrc)
	for _, src := range []string{
		"plane(T, X)",
		"plane(T, hunter) & winter(T)",
		"resort(X) & !plane(0, X)",
	} {
		q := f.query(t, src)
		want, err := Answers(f.s, q)
		if err != nil {
			t.Fatal(err)
		}
		got := oracle(f.s, q)
		if len(got.rows) != len(want) {
			t.Errorf("%q: oracle %d answers, Answers %d", src, len(got.rows), len(want))
		}
	}
}

// Random closed queries with negation and both quantifiers: the two
// evaluation strategies must agree everywhere.
func TestOracleAgreesOnRandomQueries(t *testing.T) {
	prog, db, err := parser.ParseUnit(skiSrc)
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	s, err := spec.Compute(e, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	names := []string{"plane", "winter", "holiday", "offseason", "resort"}
	var build func(depth int, scope []ovar) ast.Query
	build = func(depth int, scope []ovar) ast.Query {
		if depth == 0 {
			name := names[rng.Intn(len(names))]
			info := prog.Preds[name]
			a := ast.Atom{Pred: name}
			if info.Temporal {
				var tv string
				for _, v := range scope {
					if v.temporal {
						tv = v.name
					}
				}
				if tv != "" && rng.Intn(2) == 0 {
					a.Time = &ast.TemporalTerm{Var: tv, Depth: rng.Intn(2)}
				} else {
					a.Time = &ast.TemporalTerm{Depth: rng.Intn(15)}
				}
			}
			for i := 0; i < info.Arity; i++ {
				var cv string
				for _, v := range scope {
					if !v.temporal {
						cv = v.name
					}
				}
				if cv != "" && rng.Intn(2) == 0 {
					a.Args = append(a.Args, ast.Var(cv))
				} else {
					a.Args = append(a.Args, ast.Const("hunter"))
				}
			}
			return ast.QAtom{Atom: a}
		}
		switch rng.Intn(5) {
		case 0:
			return ast.QAnd{Left: build(depth-1, scope), Right: build(depth-1, scope)}
		case 1:
			return ast.QOr{Left: build(depth-1, scope), Right: build(depth-1, scope)}
		case 2:
			return ast.QNot{Sub: build(depth-1, scope)}
		case 3:
			v := ovar{name: fmt.Sprintf("T%d", len(scope)), temporal: true}
			return ast.QExists{Var: v.name, Sort: ast.SortTemporal, Sub: forceUse(build(depth-1, append(scope, v)), v)}
		default:
			v := ovar{name: fmt.Sprintf("X%d", len(scope))}
			return ast.QForall{Var: v.name, Sort: ast.SortNonTemporal, Sub: forceUse(build(depth-1, append(scope, v)), v)}
		}
	}
	for i := 0; i < 120; i++ {
		q := build(2, nil)
		if !ast.Closed(q) {
			continue
		}
		want, err := Eval(s, q)
		if err != nil {
			t.Fatal(err)
		}
		got := len(oracle(s, q).rows) == 1
		if got != want {
			t.Fatalf("random query %s: oracle=%v eval=%v", q, got, want)
		}
	}
}

// forceUse conjoins a harmless atom mentioning v so quantifiers always
// bind an occurring variable (mirroring the parser's requirement).
func forceUse(q ast.Query, v ovar) ast.Query {
	var atom ast.Atom
	if v.temporal {
		atom = ast.TemporalAtom("winter", ast.TemporalTerm{Var: v.name})
	} else {
		atom = ast.NonTemporalAtom("resort", ast.Var(v.name))
	}
	return ast.QOr{Left: q, Right: ast.QAnd{Left: ast.QAtom{Atom: atom}, Right: ast.QNot{Sub: ast.QAtom{Atom: atom}}}}
}
