// Package query evaluates temporal first-order queries (Section 3.3)
// against finite structures: relational specifications (the tractable
// path, sound for all temporal queries by Proposition 3.1) or bounded
// windows of the least model (the baseline).
//
// Negative subqueries are evaluated under the Closed World Assumption.
// Quantifiers are two-sorted: temporal quantifiers range over the
// structure's temporal domain (representative terms for specifications),
// non-temporal quantifiers over the active constant domain.
package query

import (
	"errors"
	"fmt"

	"tdd/internal/ast"
	"tdd/internal/engine"
)

// Structure is a finite structure a temporal query can be evaluated in.
type Structure interface {
	// HoldsFact answers a ground atomic query (rewriting the temporal
	// argument to a representative where applicable).
	HoldsFact(f ast.Fact) bool
	// TemporalDomain is the range of temporal quantifiers and of free
	// temporal variables in open queries.
	TemporalDomain() []int
	// ConstantDomain is the active domain of non-temporal constants.
	ConstantDomain() []string
}

// ErrOpenQuery is returned by Eval for queries with free variables.
var ErrOpenQuery = errors.New("query: open query; use Answers")

// Eval evaluates a closed query.
func Eval(s Structure, q ast.Query) (bool, error) {
	if !ast.Closed(q) {
		tv, nv := ast.FreeVars(q)
		return false, fmt.Errorf("%w (free: %v %v)", ErrOpenQuery, tv, nv)
	}
	ev := evaluator{s: s, times: make(map[string]int), consts: make(map[string]string)}
	return ev.eval(q), nil
}

// Answer is one answer substitution to an open query. For specification
// structures a temporal binding represents the infinite family obtained by
// unrolling the rewrite rule (Section 3.3: "the rewrite rules themselves
// should be a part of the query answer").
type Answer struct {
	Temporal    map[string]int
	NonTemporal map[string]string
}

func (a Answer) String() string { return ast.FormatAnswer(a.Temporal, a.NonTemporal) }

// Answers enumerates the answer substitutions of an open query: every
// assignment of the free variables (temporal over the temporal domain,
// non-temporal over the constant domain) under which the query holds.
// Closed queries yield one empty answer if true, none if false.
func Answers(s Structure, q ast.Query) ([]Answer, error) {
	return AnswersLimit(s, q, 0)
}

// AnswersLimit is Answers with an upper bound on the number of answers
// returned (0 means unlimited). Enumeration stops as soon as the bound is
// reached, so the cost is proportional to the answers actually produced
// plus the failed assignments tried before them.
func AnswersLimit(s Structure, q ast.Query, max int) ([]Answer, error) {
	tv, nv := ast.FreeVars(q)
	ev := evaluator{s: s, times: make(map[string]int), consts: make(map[string]string)}
	var out []Answer
	tdom := s.TemporalDomain()
	cdom := s.ConstantDomain()
	full := func() bool { return max > 0 && len(out) >= max }

	var assignNT func(i int)
	var assignT func(i int)
	assignNT = func(i int) {
		if full() {
			return
		}
		if i == len(nv) {
			if ev.eval(q) {
				ans := Answer{Temporal: make(map[string]int, len(tv)), NonTemporal: make(map[string]string, len(nv))}
				for _, v := range tv {
					ans.Temporal[v] = ev.times[v]
				}
				for _, v := range nv {
					ans.NonTemporal[v] = ev.consts[v]
				}
				out = append(out, ans)
			}
			return
		}
		for _, c := range cdom {
			if full() {
				break
			}
			ev.consts[nv[i]] = c
			assignNT(i + 1)
		}
		delete(ev.consts, nv[i])
	}
	assignT = func(i int) {
		if i == len(tv) {
			assignNT(0)
			return
		}
		for _, t := range tdom {
			if full() {
				break
			}
			ev.times[tv[i]] = t
			assignT(i + 1)
		}
		delete(ev.times, tv[i])
	}
	assignT(0)
	return out, nil
}

type evaluator struct {
	s      Structure
	times  map[string]int
	consts map[string]string
}

func (ev *evaluator) eval(q ast.Query) bool {
	switch q := q.(type) {
	case ast.QAtom:
		return ev.atom(q.Atom)
	case ast.QNot:
		return !ev.eval(q.Sub)
	case ast.QAnd:
		return ev.eval(q.Left) && ev.eval(q.Right)
	case ast.QOr:
		return ev.eval(q.Left) || ev.eval(q.Right)
	case ast.QExists:
		return ev.quant(q.Var, q.Sort, q.Sub, false)
	case ast.QForall:
		return ev.quant(q.Var, q.Sort, q.Sub, true)
	}
	panic(fmt.Sprintf("query: unknown node %T", q))
}

// quant evaluates a quantifier; forall=true for universal.
func (ev *evaluator) quant(v string, sort ast.Sort, sub ast.Query, forall bool) bool {
	if sort == ast.SortTemporal {
		old, had := ev.times[v]
		defer ev.restoreTime(v, old, had)
		for _, t := range ev.s.TemporalDomain() {
			ev.times[v] = t
			if ev.eval(sub) != forall {
				return !forall
			}
		}
		return forall
	}
	old, had := ev.consts[v]
	defer ev.restoreConst(v, old, had)
	for _, c := range ev.s.ConstantDomain() {
		ev.consts[v] = c
		if ev.eval(sub) != forall {
			return !forall
		}
	}
	return forall
}

func (ev *evaluator) restoreTime(v string, old int, had bool) {
	if had {
		ev.times[v] = old
	} else {
		delete(ev.times, v)
	}
}

func (ev *evaluator) restoreConst(v, old string, had bool) {
	if had {
		ev.consts[v] = old
	} else {
		delete(ev.consts, v)
	}
}

func (ev *evaluator) atom(a ast.Atom) bool {
	f := ast.Fact{Pred: a.Pred}
	if a.Time != nil {
		f.Temporal = true
		if a.Time.Ground() {
			f.Time = a.Time.Depth
		} else {
			t, ok := ev.times[a.Time.Var]
			if !ok {
				panic(fmt.Sprintf("query: unbound temporal variable %s", a.Time.Var))
			}
			f.Time = t + a.Time.Depth
		}
	}
	f.Args = make([]string, len(a.Args))
	for i, s := range a.Args {
		if !s.IsVar {
			f.Args[i] = s.Name
			continue
		}
		c, ok := ev.consts[s.Name]
		if !ok {
			panic(fmt.Sprintf("query: unbound variable %s", s.Name))
		}
		f.Args[i] = c
	}
	return ev.s.HoldsFact(f)
}

// Window is the baseline structure: the least model restricted to 0..M
// with temporal quantifiers ranging over 0..M. It is exact for ground
// atomic queries whose depth is at most M, and for existential-positive
// queries when M is large enough; unlike a specification it gives no
// soundness guarantee for universal or negated temporal subqueries (the
// model is infinite). It exists as the comparison point for experiments
// and for non-invariant queries (Section 8).
type Window struct {
	Eval *engine.Evaluator
	M    int
}

// HoldsFact implements Structure; the window is extended on demand.
func (w Window) HoldsFact(f ast.Fact) bool {
	if f.Temporal && f.Time > w.M {
		return false
	}
	w.Eval.EnsureWindow(w.M)
	return w.Eval.Holds(f)
}

// TemporalDomain implements Structure.
func (w Window) TemporalDomain() []int {
	out := make([]int, w.M+1)
	for i := range out {
		out[i] = i
	}
	return out
}

// ConstantDomain implements Structure.
func (w Window) ConstantDomain() []string {
	w.Eval.EnsureWindow(w.M)
	return w.Eval.Store().Constants()
}
