package lint

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// TestGolden locks both renderings of every diagnostic code: the human
// text (one line per finding, compiler convention) and the JSON wire shape
// served by tddserve's ?lint=1. Each testdata/*.tdd is an intentionally
// dirty program exercising one code (its name says which); the goldens are
// regenerated with `go test ./internal/lint -run Golden -update`.
func TestGolden(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.tdd"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no testdata/*.tdd fixtures")
	}
	for _, file := range files {
		name := strings.TrimSuffix(filepath.Base(file), ".tdd")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			res := RunSource(string(src), Options{})

			text := res.Format(name + ".tdd")
			compareGolden(t, filepath.Join("testdata", name+".golden"), []byte(text))

			js, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			compareGolden(t, filepath.Join("testdata", name+".json"), append(js, '\n'))
		})
	}
}

func compareGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("golden mismatch for %s\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestGoldenCodesCovered checks the fixture set stays honest: every
// diagnostic code the linter can emit from source appears in at least one
// golden, so a new code cannot ship without a rendered example. TDL105 is
// absent by construction — the parser's sort resolution rejects every
// textual sort conflict as TDL100 first — and is covered by
// TestSortConflictCode on a programmatically built rule.
func TestGoldenCodesCovered(t *testing.T) {
	codes := []string{
		"TDL001", "TDL002", "TDL003", "TDL004", "TDL005", "TDL006",
		"TDL010", "TDL011", "TDL012", "TDL100",
		"TDL101", "TDL102", "TDL103", "TDL104",
		"TDL201", "TDL202", "TDL203",
	}
	goldens, err := filepath.Glob(filepath.Join("testdata", "*.golden"))
	if err != nil {
		t.Fatal(err)
	}
	var all strings.Builder
	for _, g := range goldens {
		b, err := os.ReadFile(g)
		if err != nil {
			t.Fatal(err)
		}
		all.Write(b)
	}
	for _, c := range codes {
		if !strings.Contains(all.String(), c) {
			t.Errorf("no golden fixture emits %s", c)
		}
	}
}
