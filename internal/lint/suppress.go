package lint

import (
	"fmt"
	"sort"
	"strings"
)

// marker introduces an inline suppression inside a TDD comment:
//
//	% tddlint:ignore TDL003 TDL001   -- reason (prose is ignored)
//	p(T+1, X) :- q(T, X).            % tddlint:ignore TDL006
//
// A suppression silences the listed codes (or, with no codes, every code)
// for findings on its own line and on the following line, so it can sit
// beside the clause or on the line above it.
const marker = "tddlint:ignore"

// suppress filters res against the inline suppressions of src, counting
// what it removed. Findings without a position are never suppressed.
// With reportUnused set, markers that silenced nothing become TDL203
// info findings (emitted after filtering, so a suppression cannot hide
// its own unusedness) — the pass that keeps stale ignores from
// accumulating once the underlying finding is fixed.
func suppress(res Result, src string, reportUnused bool) Result {
	byLine := suppressions(src)
	if len(byLine) == 0 {
		return res
	}
	used := make(map[int]bool, len(byLine))
	kept := res.Diagnostics[:0]
	for _, d := range res.Diagnostics {
		if d.Line > 0 {
			if byLine[d.Line].covers(d.Code) {
				used[d.Line] = true
				res.Suppressed++
				continue
			}
			if byLine[d.Line-1].covers(d.Code) {
				used[d.Line-1] = true
				res.Suppressed++
				continue
			}
		}
		kept = append(kept, d)
	}
	res.Diagnostics = kept
	if reportUnused {
		for line, s := range byLine {
			if used[line] {
				continue
			}
			what := "any finding"
			if !s.all {
				codes := make([]string, 0, len(s.codes))
				for c := range s.codes {
					codes = append(codes, c)
				}
				sort.Strings(codes)
				what = strings.Join(codes, ", ")
			}
			res.Diagnostics = append(res.Diagnostics, Diagnostic{
				Code:     "TDL203",
				Severity: Info,
				Line:     line,
				Col:      strings.Index(lineAt(src, line), marker) + 1,
				Message:  fmt.Sprintf("unused suppression: no %s finding on this or the next line", what),
				RuleIdx:  -1,
			})
		}
		sortDiagnostics(res.Diagnostics)
	}
	return res
}

// lineAt returns the 1-indexed line of src ("" out of range).
func lineAt(src string, line int) string {
	lines := strings.Split(src, "\n")
	if line < 1 || line > len(lines) {
		return ""
	}
	return lines[line-1]
}

// suppression is the parsed form of one marker comment.
type suppression struct {
	all   bool
	codes map[string]bool
}

func (s suppression) covers(code string) bool { return s.all || s.codes[code] }

// suppressions scans raw source text for marker comments. The lexer
// strips comments before the parser sees them, so this is a plain text
// scan: the marker counts only when a comment token ('%' or "//")
// precedes it on the line.
func suppressions(src string) map[int]suppression {
	var out map[int]suppression
	for lineNo, line := range strings.Split(src, "\n") {
		idx := strings.Index(line, marker)
		if idx < 0 {
			continue
		}
		pct := strings.Index(line, "%")
		slash := strings.Index(line, "//")
		if (pct < 0 || pct > idx) && (slash < 0 || slash > idx) {
			continue
		}
		s := suppression{codes: make(map[string]bool)}
		for _, f := range strings.FieldsFunc(line[idx+len(marker):], func(r rune) bool { return r == ' ' || r == '\t' || r == ',' }) {
			if !strings.HasPrefix(f, "TDL") {
				break
			}
			s.codes[f] = true
		}
		if len(s.codes) == 0 {
			s.all = true
		}
		if out == nil {
			out = make(map[int]suppression)
		}
		out[lineNo+1] = s
	}
	return out
}
