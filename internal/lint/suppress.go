package lint

import "strings"

// marker introduces an inline suppression inside a TDD comment:
//
//	% tddlint:ignore TDL003 TDL001   -- reason (prose is ignored)
//	p(T+1, X) :- q(T, X).            % tddlint:ignore TDL006
//
// A suppression silences the listed codes (or, with no codes, every code)
// for findings on its own line and on the following line, so it can sit
// beside the clause or on the line above it.
const marker = "tddlint:ignore"

// suppress filters res against the inline suppressions of src, counting
// what it removed. Findings without a position are never suppressed.
func suppress(res Result, src string) Result {
	byLine := suppressions(src)
	if len(byLine) == 0 {
		return res
	}
	kept := res.Diagnostics[:0]
	for _, d := range res.Diagnostics {
		if d.Line > 0 && (byLine[d.Line].covers(d.Code) || byLine[d.Line-1].covers(d.Code)) {
			res.Suppressed++
			continue
		}
		kept = append(kept, d)
	}
	res.Diagnostics = kept
	return res
}

// suppression is the parsed form of one marker comment.
type suppression struct {
	all   bool
	codes map[string]bool
}

func (s suppression) covers(code string) bool { return s.all || s.codes[code] }

// suppressions scans raw source text for marker comments. The lexer
// strips comments before the parser sees them, so this is a plain text
// scan: the marker counts only when a comment token ('%' or "//")
// precedes it on the line.
func suppressions(src string) map[int]suppression {
	var out map[int]suppression
	for lineNo, line := range strings.Split(src, "\n") {
		idx := strings.Index(line, marker)
		if idx < 0 {
			continue
		}
		pct := strings.Index(line, "%")
		slash := strings.Index(line, "//")
		if (pct < 0 || pct > idx) && (slash < 0 || slash > idx) {
			continue
		}
		s := suppression{codes: make(map[string]bool)}
		for _, f := range strings.FieldsFunc(line[idx+len(marker):], func(r rune) bool { return r == ' ' || r == '\t' || r == ',' }) {
			if !strings.HasPrefix(f, "TDL") {
				break
			}
			s.codes[f] = true
		}
		if len(s.codes) == 0 {
			s.all = true
		}
		if out == nil {
			out = make(map[int]suppression)
		}
		out[lineNo+1] = s
	}
	return out
}
