package lint

import (
	"fmt"
	"sort"

	"tdd/internal/ast"
)

// checkReach is the derivability dataflow pass over the rule dependency
// graph: TDL001 (undefined predicate), TDL002 (unused database predicate),
// and TDL003 (unreachable rule).
//
// The pass computes an over-approximation of "predicate is non-empty in
// the least model": a predicate is *populated* if the database holds facts
// for it, or some rule with an all-populated body derives it. The
// approximation ignores join and temporal constraints, so populated=false
// is definitive — the predicate is empty in the least model, and any rule
// reading it can never fire. That one-sided guarantee is what makes the
// TDL003 delete-safety claim sound.
func checkReach(prog *ast.Program, db *ast.Database) []Diagnostic {
	derived := prog.DerivedSet()
	populated := make(map[string]bool)
	if db != nil {
		for pred := range db.Preds {
			populated[pred] = true
		}
	} else {
		// Without a database the EDB contents are unknowable; assume every
		// extensional predicate could hold facts.
		for name := range prog.Preds {
			if !derived[name] {
				populated[name] = true
			}
		}
	}

	var ds []Diagnostic

	// TDL001: a body predicate nothing derives and nothing asserts. Only
	// meaningful with a database in hand; one finding per predicate, at
	// its first occurrence.
	if db != nil {
		reported := make(map[string]bool)
		for _, r := range prog.Rules {
			for _, a := range r.Body {
				if derived[a.Pred] || populated[a.Pred] || reported[a.Pred] {
					continue
				}
				reported[a.Pred] = true
				ds = append(ds, Diagnostic{
					Code:     "TDL001",
					Severity: Warning,
					Line:     a.Pos.Line,
					Col:      a.Pos.Col,
					Message:  fmt.Sprintf("undefined predicate %s: no rule derives it and the database holds no %s facts", a.Pred, a.Pred),
					RuleIdx:  -1,
					Pred:     a.Pred,
					Theorem:  "least-model semantics: an empty predicate stays empty",
				})
			}
		}
	}

	// Reachability fixpoint: a rule can fire only if every body predicate
	// is populated; a firing populates the head.
	canFire := make([]bool, len(prog.Rules))
	for changed := true; changed; {
		changed = false
		for i, r := range prog.Rules {
			if canFire[i] {
				continue
			}
			ok := true
			for _, a := range r.Body {
				if !populated[a.Pred] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			canFire[i] = true
			changed = true
			populated[r.Head.Pred] = true
		}
	}

	// TDL003: rules outside the fixpoint have no derivation path from the
	// EDB and never fire in the least model; deleting them changes nothing.
	for i, r := range prog.Rules {
		if canFire[i] {
			continue
		}
		ds = append(ds, Diagnostic{
			Code:       "TDL003",
			Severity:   Warning,
			Line:       r.Pos.Line,
			Col:        r.Pos.Col,
			Message:    fmt.Sprintf("unreachable rule: no derivation path from the database reaches its body (%s)", emptyBodyPreds(r, populated)),
			Rule:       r.String(),
			RuleIdx:    i,
			Theorem:    "least-model semantics: a rule over empty predicates never fires",
			DeleteSafe: true,
		})
	}

	// TDL002: database predicates no rule reads. Skipped for rule-less
	// programs (a bare database consumes nothing by construction).
	if db != nil && len(prog.Rules) > 0 {
		used := make(map[string]bool)
		for _, r := range prog.Rules {
			for _, a := range r.Body {
				used[a.Pred] = true
			}
		}
		names := make([]string, 0, len(db.Preds))
		for pred := range db.Preds {
			names = append(names, pred)
		}
		sort.Strings(names)
		for _, pred := range names {
			if used[pred] {
				continue
			}
			ds = append(ds, Diagnostic{
				Code:     "TDL002",
				Severity: Info,
				Message:  fmt.Sprintf("unused predicate %s: the database holds %s facts but no rule body reads them", pred, pred),
				RuleIdx:  -1,
				Pred:     pred,
			})
		}
	}
	return ds
}

// emptyBodyPreds names the body predicates that block the rule, for the
// TDL003 message.
func emptyBodyPreds(r ast.Rule, populated map[string]bool) string {
	var out []string
	seen := make(map[string]bool)
	for _, a := range r.Body {
		if !populated[a.Pred] && !seen[a.Pred] {
			seen[a.Pred] = true
			out = append(out, a.Pred)
		}
	}
	sort.Strings(out)
	if len(out) == 1 {
		return out[0] + " is provably empty"
	}
	s := ""
	for i, p := range out {
		if i > 0 {
			s += ", "
		}
		s += p
	}
	return s + " are provably empty"
}
