package lint

import (
	"fmt"
	"strings"

	"tdd/internal/ast"
	"tdd/internal/classify"
)

// checkNearMiss explains why a program misses the paper's tractable
// classes (TDL010–TDL012). The diagnostics fire only when the program is
// outside both classes — inflationary (Theorem 5.1/5.2) and
// multi-separable (Theorems 6.3–6.5) — because a program inside either
// has guaranteed polynomial periodicity and there is nothing to warn
// about. They are informational: an intractable-looking program is still
// evaluable, it just loses the polynomial certificate.
func checkNearMiss(prog *ast.Program) []Diagnostic {
	rep := classify.Analyze(prog.Clone(), classify.AnalyzeOptions{})
	if !rep.Valid || rep.Tractable() {
		return nil
	}
	var ds []Diagnostic

	// TDL012: mutual recursion (one finding per offending SCC) — the
	// structural obstacle to multi-separability.
	if !rep.MutualRecursionFree {
		for _, comp := range classify.BuildDepGraph(prog).SCCs() {
			if len(comp) <= 1 {
				continue
			}
			pos := firstRulePos(prog, comp)
			ds = append(ds, Diagnostic{
				Code:     "TDL012",
				Severity: Info,
				Line:     pos.Line,
				Col:      pos.Col,
				Message:  fmt.Sprintf("predicates %s are mutually recursive; multi-separability requires mutual-recursion freedom", strings.Join(comp, ", ")),
				RuleIdx:  -1,
				Pred:     strings.Join(comp, ","),
				Theorem:  "Section 6 (multi-separable rule sets are mutual-recursion free)",
			})
		}
	}

	// TDL010: recursive rules that are neither time-only nor data-only —
	// the per-rule obstacle (one finding per offending rule, unlike
	// classify.MultiSeparable which stops at the first).
	for i, r := range prog.Rules {
		if classify.KindOf(r) != classify.KindOther {
			continue
		}
		ds = append(ds, Diagnostic{
			Code:     "TDL010",
			Severity: Info,
			Line:     r.Pos.Line,
			Col:      r.Pos.Col,
			Message:  "recursive rule is neither time-only nor data-only, so the rule set is not multi-separable",
			Rule:     r.String(),
			RuleIdx:  i,
			Theorem:  "Theorems 6.3–6.5 (multi-separable rule sets are I-periodic)",
		})
	}

	// TDL011: the Theorem 5.2 witness, when the test could run.
	if rep.InflationaryErr == "" && !rep.Inflationary && rep.Witness != "" {
		ds = append(ds, Diagnostic{
			Code:     "TDL011",
			Severity: Info,
			Message:  fmt.Sprintf("program is not inflationary: %s(0, a1..ak) does not propagate to %s(1, a1..ak) under the Theorem 5.2 test", rep.Witness, rep.Witness),
			RuleIdx:  -1,
			Pred:     rep.Witness,
			Theorem:  "Theorem 5.2 (decidability of the inflationary property)",
		})
	}
	return ds
}

// firstRulePos finds the position of the first rule whose head belongs to
// the component, so the SCC diagnostic lands on source.
func firstRulePos(prog *ast.Program, comp []string) ast.Pos {
	in := make(map[string]bool, len(comp))
	for _, p := range comp {
		in[p] = true
	}
	for _, r := range prog.Rules {
		if in[r.Head.Pred] {
			return r.Pos
		}
	}
	return ast.Pos{}
}
