package lint

import (
	"fmt"

	"tdd/internal/ast"
	"tdd/internal/engine"
	"tdd/internal/spec"
)

// checkNeverFires flags rules whose body is unsatisfiable at every time
// point of the least model (TDL004). The check is semantic, not syntactic:
// it joins the rule's body against the certified model's states for every
// ground time T in [0, base+period). By I-periodicity (Theorem 6.1 /
// Section 3.2), states repeat from base with period p, so a body that
// finds no match on those representatives finds no match at any T — the
// probe is a decision procedure, which is what makes the delete-safety
// claim sound.
//
// Preconditions: a database with facts and a certifiable period within
// opts.MaxWindow; the probe is skipped (no findings) otherwise, and also
// when base+period plus the rule depth span exceeds opts.ProbeBudget.
func checkNeverFires(prog *ast.Program, db *ast.Database, opts Options, skip map[int]bool) []Diagnostic {
	if db == nil || len(db.Facts) == 0 {
		return nil
	}
	s := opts.Spec
	if s == nil {
		if db.CheckAgainst(prog) != nil {
			return nil
		}
		e, err := engine.New(prog.Clone(), db.Clone())
		if err != nil {
			return nil
		}
		s, err = spec.Compute(e, opts.MaxWindow)
		if err != nil {
			return nil
		}
	}
	limit := s.Period.Base + s.Period.P
	span := 0
	for _, r := range prog.Rules {
		if d := r.MaxDepth(); d > span {
			span = d
		}
	}
	if limit+span > opts.ProbeBudget {
		return nil
	}
	ev := s.Evaluator()
	ev.EnsureWindow(limit + span)
	p := newProber(ev.Store())

	var ds []Diagnostic
	for i, r := range prog.Rules {
		if skip[i] || len(r.Body) == 0 || p.canFire(r, limit) {
			continue
		}
		ds = append(ds, Diagnostic{
			Code:       "TDL004",
			Severity:   Warning,
			Line:       r.Pos.Line,
			Col:        r.Pos.Col,
			Message:    fmt.Sprintf("rule never fires: its body has no match at any time point of the least model (checked T in [0, %d), decisive by the certified period %s)", limit, s.Period),
			Rule:       r.String(),
			RuleIdx:    i,
			Theorem:    "Theorem 6.1 / Section 3.2 (periodicity makes the probe a decision procedure)",
			DeleteSafe: true,
		})
	}
	return ds
}

// prober joins rule bodies against a model store, with lazy per-state
// tuple indexes.
type prober struct {
	st       *engine.Store
	temporal map[int]map[string][][]string
	nt       map[string][][]string
}

func newProber(st *engine.Store) *prober {
	p := &prober{st: st, temporal: make(map[int]map[string][][]string), nt: make(map[string][][]string)}
	for _, f := range st.NonTemporalFacts() {
		p.nt[f.Pred] = append(p.nt[f.Pred], f.Args)
	}
	return p
}

// tuples returns the model's tuples for pred at time t (t < 0 selects the
// non-temporal relation).
func (p *prober) tuples(pred string, t int) [][]string {
	if t < 0 {
		return p.nt[pred]
	}
	byPred, ok := p.temporal[t]
	if !ok {
		byPred = make(map[string][][]string)
		for _, f := range p.st.Snapshot(t) {
			byPred[f.Pred] = append(byPred[f.Pred], f.Args)
		}
		p.temporal[t] = byPred
	}
	return byPred[pred]
}

// canFire reports whether the rule's body has at least one match with its
// temporal variable bound to some T in [0, limit). Rules without temporal
// literals are joined once against the non-temporal relations.
func (p *prober) canFire(r ast.Rule, limit int) bool {
	hasTemporal := false
	for _, a := range r.Body {
		if a.Time != nil {
			hasTemporal = true
			break
		}
	}
	if !hasTemporal {
		return p.join(r.Body, 0, make(map[string]string), -1)
	}
	for t := 0; t < limit; t++ {
		if p.join(r.Body, 0, make(map[string]string), t) {
			return true
		}
	}
	return false
}

// join is a backtracking nested-loop join over the body atoms: atom i's
// candidate tuples come from the state at T+depth (or the non-temporal
// relation), filtered through the variable bindings accumulated so far.
func (p *prober) join(body []ast.Atom, i int, env map[string]string, t int) bool {
	if i == len(body) {
		return true
	}
	a := body[i]
	at := -1
	if a.Time != nil {
		if a.Time.Ground() {
			at = a.Time.Depth
		} else {
			at = t + a.Time.Depth
		}
	}
	for _, tup := range p.tuples(a.Pred, at) {
		if len(tup) != len(a.Args) {
			continue
		}
		var bound []string
		ok := true
		for k, s := range a.Args {
			if !s.IsVar {
				if tup[k] != s.Name {
					ok = false
					break
				}
				continue
			}
			if v, have := env[s.Name]; have {
				if v != tup[k] {
					ok = false
					break
				}
				continue
			}
			env[s.Name] = tup[k]
			bound = append(bound, s.Name)
		}
		if ok && p.join(body, i+1, env, t) {
			return true
		}
		for _, name := range bound {
			delete(env, name)
		}
	}
	return false
}
