package lint

import (
	"math/rand"
	"sort"
	"testing"

	"tdd/internal/ast"
	"tdd/internal/engine"
	"tdd/internal/parser"
	"tdd/internal/randgen"
	"tdd/internal/spec"
)

// TestDeleteSafeSoundnessRandom is the linter's differential soundness
// battery: over 60 random programs the linter must never panic, and
// deleting every rule it marked delete-safe (TDL003 unreachable, TDL004
// never-fires, TDL005 duplicate — after the certification-parameter
// guard) must leave the certified period, every model state, and the
// non-temporal consequences bit-identical. The oracle is the sequential
// engine evaluated from scratch on the reduced program.
func TestDeleteSafeSoundnessRandom(t *testing.T) {
	const trials = 60
	flagged := 0
	for seed := int64(0); seed < trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randgen.New(rng, randgen.Default())
		prog, err := g.Program(rng)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		db, err := g.Database(rng)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if checkDeleteSafety(t, prog, db) {
			flagged++
		}
	}
	// The battery is only meaningful if some trials actually flag rules;
	// with the default generator a fair share of programs contain dead or
	// never-firing rules. Guard against the generator drifting to a shape
	// the linter never flags, which would make this test vacuous.
	if flagged == 0 {
		t.Fatal("no random trial produced a delete-safe finding; battery is vacuous")
	}
	t.Logf("delete-safe findings in %d/%d random trials", flagged, trials)
}

// TestDeleteSafeSoundnessCrafted pins the battery's floor with programs
// known to trigger each delete-safe code.
func TestDeleteSafeSoundnessCrafted(t *testing.T) {
	units := []string{
		// TDL003: r/s unreachable.
		"p(T+1) :- p(T).\nr(T+1) :- s(T).\ns(T+1) :- r(T).\np(0).\n",
		// TDL004: p holds only at even times, r only at 1.
		"p(T+2) :- p(T).\nq(T+1) :- p(T), r(T).\np(0).\nr(1).\n",
		// TDL005: alpha-equivalent duplicate.
		"p(T+1) :- p(T), e(X).\np(S+1) :- p(S), e(Y).\np(0).\ne(a).\n",
		// Mixed: an unreachable deep rule whose deletion would change the
		// lookback — the guard must withhold delete-safety rather than
		// let the period drift.
		"p(T+1) :- p(T).\nq(T+5) :- z(T).\np(0).\n",
	}
	flagged := 0
	for i, src := range units {
		prog, db, err := parser.ParseUnit(src)
		if err != nil {
			t.Fatalf("unit %d: %v", i, err)
		}
		if checkDeleteSafety(t, prog, db) {
			flagged++
		}
	}
	if flagged < 3 {
		t.Errorf("only %d crafted units produced delete-safe findings, want >= 3", flagged)
	}
}

// checkDeleteSafety lints (prog, db), deletes the delete-safe rules, and
// compares the full and reduced pipelines. Reports whether anything was
// flagged delete-safe.
func checkDeleteSafety(t *testing.T, prog *ast.Program, db *ast.Database) bool {
	t.Helper()
	const maxWindow = 4096
	res := Run(prog, db, Options{MaxWindow: maxWindow})
	dels := res.DeleteSafeRules()
	if len(dels) == 0 {
		return false
	}
	drop := make(map[int]bool, len(dels))
	for _, i := range dels {
		drop[i] = true
	}
	kept := make([]ast.Rule, 0, len(prog.Rules))
	for i, r := range prog.Rules {
		if !drop[i] {
			kept = append(kept, r)
		}
	}
	reduced, err := ast.NewProgram(kept)
	if err != nil {
		t.Fatalf("reduced program invalid: %v\nfull:\n%s", err, prog)
	}

	full := certify(t, prog, db, maxWindow)
	red := certify(t, reduced, db, maxWindow)
	if full == nil || red == nil {
		// Not certifiable within the budget either way; the linter's
		// never-fires probe was skipped for the same reason, so nothing
		// semantic was claimed. Deleting TDL003/TDL005 rules is still
		// model-safe, but there is no period to compare against.
		if (full == nil) != (red == nil) {
			t.Fatalf("certifiability changed after deletion (full=%v reduced=%v)\nfull:\n%sdeleted: %v", full != nil, red != nil, prog, dels)
		}
		return true
	}

	if full.Period != red.Period {
		t.Fatalf("period changed: full %v, reduced %v\nprogram:\n%sdb:\n%sdeleted: %v",
			full.Period, red.Period, prog, db, dels)
	}
	limit := full.Period.Base + full.Period.P + lookbackOf(prog.Rules) + 2
	fe, re := full.Evaluator(), red.Evaluator()
	fe.EnsureWindow(limit)
	re.EnsureWindow(limit)
	for tm := 0; tm <= limit; tm++ {
		if fe.Store().StateKey(tm) != re.Store().StateKey(tm) {
			t.Fatalf("model states differ at t=%d\nprogram:\n%sdb:\n%sdeleted: %v\nfull:    %v\nreduced: %v",
				tm, prog, db, dels, fe.Store().State(tm), re.Store().State(tm))
		}
	}
	if fk, rk := factKeys(fe.Store().NonTemporalFacts()), factKeys(re.Store().NonTemporalFacts()); fk != rk {
		t.Fatalf("non-temporal consequences differ\nfull:    %s\nreduced: %s\nprogram:\n%sdeleted: %v", fk, rk, prog, dels)
	}
	return true
}

// certify evaluates (prog, db) from scratch on the sequential engine and
// certifies its specification; nil when the period is not certifiable
// within the window budget.
func certify(t *testing.T, prog *ast.Program, db *ast.Database, maxWindow int) *spec.Spec {
	t.Helper()
	e, err := engine.New(prog.Clone(), db.Clone())
	if err != nil {
		t.Fatalf("engine: %v\nprogram:\n%s", err, prog)
	}
	s, err := spec.Compute(e, maxWindow)
	if err != nil {
		return nil
	}
	return s
}

func factKeys(fs []ast.Fact) string {
	keys := make([]string, 0, len(fs))
	for _, f := range fs {
		keys = append(keys, f.String())
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += k + ";"
	}
	return out
}
