package lint

// checkRelevance is the progan-backed relevance pass: whole-program
// dependency findings the per-rule reach pass cannot see.
//
//	TDL201 irrelevant-rule    rule cannot influence any exported predicate
//	TDL202 dead-component     a whole SCC is base-unreachable
//
// The export set drives TDL201. An explicit one comes from directive
// comments in the source:
//
//	% tddlint:export plane winter
//
// (findings are then warnings — the author declared the program's
// surface, and rules outside its backward slice are dead weight by that
// declaration). Without directives the pass infers the surface as every
// derived predicate no other predicate's rules consume — the "tops" of
// the dependency graph — and reports at info severity: the only rules
// outside that slice are closed dependency cycles nothing reads.

import (
	"fmt"
	"sort"
	"strings"

	"tdd/internal/ast"
	"tdd/internal/progan"
)

// exportMarker introduces an export directive inside a TDD comment.
const exportMarker = "tddlint:export"

// exportDirectives scans raw source for export markers (same comment
// discipline as tddlint:ignore: the marker counts only after '%' or
// "//"). Names accumulate across directives, deduplicated and sorted.
func exportDirectives(src string) []string {
	set := make(map[string]bool)
	for _, line := range strings.Split(src, "\n") {
		idx := strings.Index(line, exportMarker)
		if idx < 0 {
			continue
		}
		pct := strings.Index(line, "%")
		slash := strings.Index(line, "//")
		if (pct < 0 || pct > idx) && (slash < 0 || slash > idx) {
			continue
		}
		for _, f := range strings.FieldsFunc(line[idx+len(exportMarker):], func(r rune) bool { return r == ' ' || r == '\t' || r == ',' }) {
			set[f] = true
		}
	}
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func checkRelevance(prog *ast.Program, db *ast.Database, source string) []Diagnostic {
	r := progan.Analyze(prog, db)
	var ds []Diagnostic

	// TDL202: one finding per base-unreachable component with rules. The
	// reach pass already warns per rule (TDL003); this is the component
	// view — the whole cycle is dead together, which a rule-at-a-time
	// reading of the TDL003s does not say.
	for _, c := range r.SCCs {
		if c.AnyPopulated || len(c.Rules) == 0 {
			continue
		}
		first := prog.Rules[c.Rules[0]]
		ds = append(ds, Diagnostic{
			Code:     "TDL202",
			Severity: Info,
			Line:     first.Pos.Line,
			Col:      first.Pos.Col,
			Message: fmt.Sprintf("dead component {%s}: base-unreachable as a whole — its %d rule(s) can never fire",
				strings.Join(c.Preds, ", "), len(c.Rules)),
			RuleIdx: -1,
			Theorem: "least-model semantics: an SCC with no base support stays empty",
		})
	}

	// TDL201: rules outside the backward slice of the export set.
	exports := exportDirectives(source)
	explicit := len(exports) > 0
	if !explicit {
		// Inferred surface: derived predicates no other predicate's rules
		// consume (self-recursion does not count as consumption).
		for i := range r.Preds {
			p := &r.Preds[i]
			if !p.Derived {
				continue
			}
			top := true
			for _, u := range p.UsedBy {
				if u != p.Name {
					top = false
					break
				}
			}
			if top {
				exports = append(exports, p.Name)
			}
		}
	}
	if len(exports) == 0 {
		return ds
	}
	sl := r.Slice(exports)
	if !sl.Proper() {
		return ds
	}
	sev, note := Info, "no other predicate consumes the remaining heads"
	if explicit {
		sev, note = Warning, "declared by tddlint:export"
	}
	inSlice := make(map[int]bool, len(sl.Rules))
	for _, i := range sl.Rules {
		inSlice[i] = true
	}
	for i, rule := range prog.Rules {
		if inSlice[i] {
			continue
		}
		ds = append(ds, Diagnostic{
			Code:     "TDL201",
			Severity: sev,
			Line:     rule.Pos.Line,
			Col:      rule.Pos.Col,
			Message: fmt.Sprintf("irrelevant rule: cannot influence any exported predicate (exports: %s; %s)",
				strings.Join(exports, ", "), note),
			Rule:    rule.String(),
			RuleIdx: i,
			Theorem: "slice theorem: the least model restricted to a predicate set depends only on its backward closure",
		})
	}
	return ds
}
