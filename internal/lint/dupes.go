package lint

import (
	"fmt"
	"strconv"
	"strings"

	"tdd/internal/ast"
)

// checkDuplicates flags rules alpha-equivalent to an earlier rule
// (TDL005). Equivalence is canonical renaming by first occurrence —
// temporal variables to T0, T1, ..., non-temporal variables to V0, V1,
// ... in order of appearance — with body order preserved. Permuted-body
// duplicates are intentionally not caught: body order carries no
// semantics, but proving permutation equivalence cheaply and soundly is
// not worth the risk of a wrong delete-safety claim.
func checkDuplicates(prog *ast.Program) []Diagnostic {
	var ds []Diagnostic
	first := make(map[string]int)
	for i, r := range prog.Rules {
		key := canonicalRule(r)
		j, dup := first[key]
		if !dup {
			first[key] = i
			continue
		}
		at := fmt.Sprintf("rule #%d", j+1)
		if prog.Rules[j].Pos.Known() {
			at = "the rule at line " + prog.Rules[j].Pos.String()
		}
		ds = append(ds, Diagnostic{
			Code:       "TDL005",
			Severity:   Warning,
			Line:       r.Pos.Line,
			Col:        r.Pos.Col,
			Message:    fmt.Sprintf("duplicate rule: alpha-equivalent to %s", at),
			Rule:       r.String(),
			RuleIdx:    i,
			Theorem:    "least-model semantics: a duplicate rule derives nothing new",
			DeleteSafe: true,
		})
	}
	return ds
}

// canonicalRule renders the rule with variables renamed by first
// occurrence, so alpha-equivalent rules collide.
func canonicalRule(r ast.Rule) string {
	tnames := make(map[string]string)
	vnames := make(map[string]string)
	var b strings.Builder
	atom := func(a ast.Atom) {
		b.WriteString(a.Pred)
		b.WriteByte('(')
		if a.Time != nil {
			if a.Time.Var != "" {
				t, ok := tnames[a.Time.Var]
				if !ok {
					t = "T" + strconv.Itoa(len(tnames))
					tnames[a.Time.Var] = t
				}
				b.WriteString(t)
			}
			b.WriteByte('+')
			b.WriteString(strconv.Itoa(a.Time.Depth))
		}
		for _, s := range a.Args {
			b.WriteByte('|')
			if !s.IsVar {
				b.WriteString("c:")
				b.WriteString(s.Name)
				continue
			}
			v, ok := vnames[s.Name]
			if !ok {
				v = "V" + strconv.Itoa(len(vnames))
				vnames[s.Name] = v
			}
			b.WriteString(v)
		}
		b.WriteByte(')')
	}
	atom(r.Head)
	b.WriteString(":-")
	for _, a := range r.Body {
		atom(a)
		b.WriteByte(',')
	}
	return b.String()
}

// checkShiftable flags rules whose temporal depths share a positive
// common offset (TDL006): p(T+3) :- q(T+1) only ever reads state T+1 and
// only derives at times >= 3, leaving a leading gap the author may not
// have intended. Informational — the engine evaluates the rule exactly as
// written, and lowering the depths is NOT a semantic no-op (it fills in
// the early time points), which is why the linter explains rather than
// rewrites.
func checkShiftable(prog *ast.Program) []Diagnostic {
	var ds []Diagnostic
	for i, r := range prog.Rules {
		k := r.MinDepth()
		if k <= 0 {
			continue
		}
		ds = append(ds, Diagnostic{
			Code:     "TDL006",
			Severity: Info,
			Line:     r.Pos.Line,
			Col:      r.Pos.Col,
			Message:  fmt.Sprintf("every temporal term has depth >= %d; the rule derives nothing before time %d — shift all depths down by %d if that gap is unintended (not a semantic no-op)", k, headDepthOfOriginal(r), k),
			Rule:     r.String(),
			RuleIdx:  i,
			Theorem:  "Section 3.1 (depth conventions); cf. Rule.ShiftNormalize",
		})
	}
	return ds
}

// headDepthOfOriginal is the un-normalized head depth (where the rule's
// first derivable time point lies).
func headDepthOfOriginal(r ast.Rule) int {
	if r.Head.Time == nil || r.Head.Time.Ground() {
		return 0
	}
	return r.Head.Time.Depth
}
