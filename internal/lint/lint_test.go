package lint

import (
	"encoding/json"
	"strings"
	"testing"

	"tdd/internal/ast"
)

// TestSortConflictCode covers TDL105, which no textual program can reach
// (the parser's sort resolution rejects every surface form as TDL100
// first): a programmatically built rule whose time variable doubles as a
// data argument.
func TestSortConflictCode(t *testing.T) {
	r := ast.Rule{
		Head: ast.TemporalAtom("p", ast.TemporalTerm{Var: "T", Depth: 1}, ast.Var("T")),
		Body: []ast.Atom{ast.TemporalAtom("p", ast.TemporalTerm{Var: "T"}, ast.Var("X"))},
	}
	prog := &ast.Program{Rules: []ast.Rule{r}}
	res := Run(prog, nil, Options{})
	found := false
	for _, d := range res.Diagnostics {
		if d.Code == "TDL105" {
			found = true
			if d.Severity != Error {
				t.Errorf("TDL105 severity = %v, want error", d.Severity)
			}
		}
	}
	if !found {
		t.Fatalf("no TDL105 diagnostic in %+v", res.Diagnostics)
	}
}

const dirtyUnit = "p(T+1) :- p(T), q(T).\np(0).\ne(a).\n"

func codes(res Result) []string {
	var out []string
	for _, d := range res.Diagnostics {
		out = append(out, d.Code)
	}
	return out
}

func TestSuppressListedCodes(t *testing.T) {
	src := "% tddlint:ignore TDL001 TDL003\n" + dirtyUnit
	res := RunSource(src, Options{})
	for _, d := range res.Diagnostics {
		if d.Code == "TDL001" || d.Code == "TDL003" {
			t.Errorf("suppressed code %s still reported", d.Code)
		}
	}
	// The unused-predicate finding was not listed and must survive.
	if got := codes(res); len(got) != 1 || got[0] != "TDL002" {
		t.Errorf("codes = %v, want [TDL002]", got)
	}
	if res.Suppressed != 2 {
		t.Errorf("Suppressed = %d, want 2", res.Suppressed)
	}
}

func TestSuppressBareIgnoresAllCodesOnLine(t *testing.T) {
	// A bare marker (no codes) on the rule's own line silences everything
	// anchored there — but not the findings on other lines.
	src := "p(T+1) :- p(T), q(T). % tddlint:ignore\np(0).\ne(a).\n"
	res := RunSource(src, Options{})
	if got := codes(res); len(got) != 1 || got[0] != "TDL002" {
		t.Errorf("codes = %v, want [TDL002]", got)
	}
}

func TestSuppressParseError(t *testing.T) {
	// The unclosed atom is reported at end of input (line 3), so the
	// marker sits on line 2: a suppression covers its own and the next
	// line.
	src := "p(T+1) :- p(T\n% tddlint:ignore TDL100\n"
	res := RunSource(src, Options{})
	if len(res.Diagnostics) != 0 {
		t.Errorf("diagnostics = %v, want none (TDL100 suppressed)", res.Diagnostics)
	}
	if res.Suppressed != 1 {
		t.Errorf("Suppressed = %d, want 1", res.Suppressed)
	}
}

func TestSuppressRequiresCommentContext(t *testing.T) {
	// The marker only counts inside a comment; a plain mention in a
	// different line's text must not silence anything. (Constants cannot
	// spell the marker in valid programs, so fabricate the context by
	// putting the marker on a line that is not a comment — the scanner
	// requires '%' or "//" before it.)
	res := RunSource(dirtyUnit, Options{})
	if len(res.Diagnostics) != 3 {
		t.Fatalf("baseline should have 3 findings, got %v", res.Diagnostics)
	}
}

func TestSeverityJSONRoundTrip(t *testing.T) {
	for _, s := range []Severity{Info, Warning, Error} {
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var back Severity
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back != s {
			t.Errorf("round trip %v -> %s -> %v", s, b, back)
		}
	}
	var bad Severity
	if err := json.Unmarshal([]byte(`"loud"`), &bad); err == nil {
		t.Error("unknown severity name should not unmarshal")
	}
}

func TestResultHelpers(t *testing.T) {
	res := Result{Diagnostics: []Diagnostic{
		{Code: "TDL101", Severity: Error, RuleIdx: 0},
		{Code: "TDL003", Severity: Warning, RuleIdx: 2, DeleteSafe: true},
		{Code: "TDL005", Severity: Warning, RuleIdx: 1, DeleteSafe: true},
		{Code: "TDL002", Severity: Info, RuleIdx: -1},
	}}
	e, w, i := res.Counts()
	if e != 1 || w != 2 || i != 1 {
		t.Errorf("Counts = %d,%d,%d want 1,2,1", e, w, i)
	}
	if res.Warnings() != 3 {
		t.Errorf("Warnings = %d, want 3 (errors count)", res.Warnings())
	}
	if got := res.DeleteSafeRules(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("DeleteSafeRules = %v, want [1 2]", got)
	}
}

func TestFormatPrefixesName(t *testing.T) {
	res := RunSource("p(T+1) :- p(T\n", Options{})
	out := res.Format("bad.tdd")
	if !strings.HasPrefix(out, "bad.tdd:") || !strings.Contains(out, "TDL100") {
		t.Errorf("Format = %q", out)
	}
}

// TestLintNeverErrorsOnEmpty locks the contract that every input yields a
// Result: empty source, nil program, nil database.
func TestLintNeverErrorsOnEmpty(t *testing.T) {
	if got := RunSource("", Options{}); len(got.Diagnostics) != 0 {
		t.Errorf("empty source: %v", got.Diagnostics)
	}
	if got := Run(nil, nil, Options{}); len(got.Diagnostics) != 0 {
		t.Errorf("nil program: %v", got.Diagnostics)
	}
}
