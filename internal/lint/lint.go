// Package lint is the Tier-A static analyzer for TDD programs: a set of
// dataflow passes over the rule dependency graph that produce coded,
// positioned, severity-ranked diagnostics. Where internal/classify answers
// yes/no ("is this rule set multi-separable?"), lint explains ("rule 3 at
// line 7 is recursive but neither time-only nor data-only") and finds dead
// weight (unreachable rules, duplicate rules, rules whose head can never
// fire in the certified model).
//
// Diagnostic codes and the paper results they lean on:
//
//	TDL001 undefined-predicate  body predicate never derived, no facts
//	TDL002 unused-predicate     database predicate no rule consumes
//	TDL003 unreachable-rule     no derivation path from the EDB (delete-safe)
//	TDL004 never-fires          body unsatisfiable at every T of the
//	                            certified model — sound by I-periodicity,
//	                            Theorem 6.1 (delete-safe)
//	TDL005 duplicate-rule       alpha-equivalent to an earlier rule
//	                            (delete-safe)
//	TDL006 shiftable-rule       all temporal depths share a positive offset
//	TDL010 not-multi-separable  near-miss explanation (Theorems 6.3–6.5)
//	TDL011 not-inflationary     Theorem 5.2 witness predicate
//	TDL012 mutual-recursion     SCC breaking multi-separability
//	TDL201 irrelevant-rule      rule cannot influence any exported
//	                            predicate (tddlint:export directives, or
//	                            the inferred dependency-graph tops)
//	TDL202 dead-component       a whole SCC is base-unreachable — the
//	                            component view of the per-rule TDL003s
//	TDL203 unused-suppression   a tddlint:ignore marker silenced nothing
//	TDL100 parse-error          unit source does not parse
//	TDL101 not-range-restricted (Section 3.3)
//	TDL102 not-semi-normal      more than one temporal variable
//	TDL103 not-forward          body literal deeper than the head
//	TDL104 ground-temporal-term ground facts belong in the database
//	TDL105 sort-conflict        variable both temporal and non-temporal
//	TDL106 invalid-program      any other validity failure
//
// A diagnostic marked DeleteSafe certifies that removing the flagged rule
// leaves the least model, the certified period, and therefore every query
// answer bit-identical; the differential test in soundness_test.go checks
// exactly that over a randgen battery.
package lint

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"tdd/internal/ast"
	"tdd/internal/spec"
)

// Severity ranks a diagnostic. Errors make the program unusable (it will
// not load), warnings flag defects worth fixing, infos explain properties.
type Severity int

const (
	Info Severity = iota
	Warning
	Error
)

func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	}
	return "info"
}

// MarshalJSON renders the severity as its lowercase name so the JSON shape
// is self-describing for clients.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON accepts the names produced by MarshalJSON.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "error":
		*s = Error
	case "warning":
		*s = Warning
	case "info":
		*s = Info
	default:
		return fmt.Errorf("lint: unknown severity %q", name)
	}
	return nil
}

// Diagnostic is one finding: a stable code, a severity, a source position
// (zero when unknown), and a human message. Rule-level findings carry the
// rendered rule and its index into Program.Rules; predicate-level findings
// carry the predicate name. Theorem anchors the finding in the paper (or
// names the engine invariant it protects).
type Diagnostic struct {
	Code     string   `json:"code"`
	Severity Severity `json:"severity"`
	Line     int      `json:"line,omitempty"`
	Col      int      `json:"col,omitempty"`
	Message  string   `json:"message"`
	Rule     string   `json:"rule,omitempty"`
	RuleIdx  int      `json:"rule_index"` // -1 when not about a single rule
	Pred     string   `json:"pred,omitempty"`
	Theorem  string   `json:"theorem,omitempty"`

	// DeleteSafe certifies the flagged rule can be removed without
	// changing the least model, the certified period, or any answer.
	DeleteSafe bool `json:"delete_safe,omitempty"`
}

// String renders the diagnostic in the file:line:col compiler convention
// (without the file, which only the caller knows).
func (d Diagnostic) String() string {
	var b strings.Builder
	if d.Line > 0 {
		fmt.Fprintf(&b, "%d:%d: ", d.Line, d.Col)
	}
	fmt.Fprintf(&b, "%s %s: %s", d.Severity, d.Code, d.Message)
	return b.String()
}

// Result is a lint run's findings plus a count of findings silenced by
// inline "tddlint:ignore" comments.
type Result struct {
	Diagnostics []Diagnostic `json:"diagnostics"`
	Suppressed  int          `json:"suppressed,omitempty"`
}

// Counts tallies the result by severity.
func (r Result) Counts() (errors, warnings, infos int) {
	for _, d := range r.Diagnostics {
		switch d.Severity {
		case Error:
			errors++
		case Warning:
			warnings++
		default:
			infos++
		}
	}
	return errors, warnings, infos
}

// Warnings returns the number of findings at warning severity or above —
// the number tddserve exposes as its lint_warnings gauge.
func (r Result) Warnings() int {
	e, w, _ := r.Counts()
	return e + w
}

// Format renders the result as human text, one diagnostic per line,
// prefixed with name (a file name or program id) when non-empty.
func (r Result) Format(name string) string {
	var b strings.Builder
	for _, d := range r.Diagnostics {
		if name != "" {
			b.WriteString(name)
			b.WriteByte(':')
		}
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// DeleteSafeRules returns the distinct indices of rules carrying at least
// one delete-safe diagnostic, sorted.
func (r Result) DeleteSafeRules() []int {
	seen := make(map[int]bool)
	for _, d := range r.Diagnostics {
		if d.DeleteSafe && d.RuleIdx >= 0 {
			seen[d.RuleIdx] = true
		}
	}
	out := make([]int, 0, len(seen))
	for i := range seen {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// Options tunes a lint run.
type Options struct {
	// Source is the raw unit text the program was parsed from; when set,
	// inline "% tddlint:ignore CODE" comments suppress findings on their
	// own or the following line.
	Source string

	// Spec is an already-certified specification of (program, database) to
	// reuse for the never-fires probe; when nil and a database is present,
	// Run certifies one itself (bounded by MaxWindow).
	Spec *spec.Spec

	// MaxWindow bounds the certification window when Run computes its own
	// specification. 0 means a default of 1024 states.
	MaxWindow int

	// ProbeBudget bounds the time points the never-fires probe examines
	// (base + period of the certified model, plus the rule's depth span).
	// The probe is skipped for models beyond the budget. 0 means 4096.
	ProbeBudget int
}

const (
	defaultMaxWindow   = 1024
	defaultProbeBudget = 4096
)

// Run lints a program against an optional database. It never fails: every
// problem it can detect becomes a diagnostic, and passes whose
// preconditions are missing (no database, no certifiable period) are
// skipped silently. Diagnostics come back sorted by position, then code.
func Run(prog *ast.Program, db *ast.Database, opts Options) Result {
	if opts.MaxWindow <= 0 {
		opts.MaxWindow = defaultMaxWindow
	}
	if opts.ProbeBudget <= 0 {
		opts.ProbeBudget = defaultProbeBudget
	}
	var ds []Diagnostic
	if prog != nil {
		valid := true
		ds = append(ds, checkValidity(prog, &valid)...)
		ds = append(ds, checkReach(prog, db)...)
		ds = append(ds, checkDuplicates(prog)...)
		ds = append(ds, checkShiftable(prog)...)
		if valid {
			// Rules the structural pass already proved unreachable are
			// skipped by the semantic probe: one finding per dead rule.
			skip := make(map[int]bool)
			for _, d := range ds {
				if d.Code == "TDL003" {
					skip[d.RuleIdx] = true
				}
			}
			ds = append(ds, checkNeverFires(prog, db, opts, skip)...)
			ds = append(ds, checkNearMiss(prog)...)
			ds = append(ds, checkRelevance(prog, db, opts.Source)...)
		}
		guardDeleteSafety(prog, ds)
	}
	sortDiagnostics(ds)
	res := Result{Diagnostics: ds}
	if opts.Source != "" {
		res = suppress(res, opts.Source, true)
	}
	if res.Diagnostics == nil {
		res.Diagnostics = []Diagnostic{}
	}
	return res
}

// sortDiagnostics orders findings by source position, then code, then
// rule index, so output is deterministic and reads top-to-bottom.
func sortDiagnostics(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.RuleIdx < b.RuleIdx
	})
}

// guardDeleteSafety clears the DeleteSafe flag on any flagged rule whose
// removal would change the program's certification parameters — its
// lookback g (Section 3.2's block size) or maximum head depth — even
// though the least model itself is unchanged. Period detection scans
// state blocks of size g, so a different g could certify a different
// (base, period) pair for the identical model; keeping such rules out of
// the delete set is what lets the differential soundness test demand the
// period stay bit-identical.
func guardDeleteSafety(prog *ast.Program, ds []Diagnostic) {
	drop := make(map[int]bool)
	for _, d := range ds {
		if d.DeleteSafe && d.RuleIdx >= 0 {
			drop[d.RuleIdx] = true
		}
	}
	if len(drop) == 0 {
		return
	}
	for {
		kept := make([]ast.Rule, 0, len(prog.Rules))
		for i, r := range prog.Rules {
			if !drop[i] {
				kept = append(kept, r)
			}
		}
		if lookbackOf(kept) == lookbackOf(prog.Rules) && maxHeadDepthOf(kept) == maxHeadDepthOf(prog.Rules) {
			break
		}
		// Un-drop the flagged rule with the deepest head until the
		// parameters are restored; its warning stands, only the
		// delete-safety claim is withdrawn.
		worst, worstDepth := -1, -1
		for i := range drop {
			if d := headDepthOf(prog.Rules[i]); d > worstDepth {
				worst, worstDepth = i, d
			}
		}
		delete(drop, worst)
		if len(drop) == 0 {
			break
		}
	}
	for i := range ds {
		if ds[i].DeleteSafe && ds[i].RuleIdx >= 0 && !drop[ds[i].RuleIdx] {
			ds[i].DeleteSafe = false
		}
	}
}

// headDepthOf is the shift-normalized head depth of a rule (0 for rules
// with a non-temporal or ground head).
func headDepthOf(r ast.Rule) int {
	if r.MinDepth() < 0 {
		return 0
	}
	s := r.ShiftNormalize()
	if s.Head.Time == nil || s.Head.Time.Ground() {
		return 0
	}
	return s.Head.Time.Depth
}

// lookbackOf mirrors period.Lookback for a plain rule slice: the maximum
// of temporal-head lookback and the body spread of non-temporal-head
// rules, at least 1.
func lookbackOf(rules []ast.Rule) int {
	g, temporal := 0, false
	for _, r := range rules {
		if r.MinDepth() < 0 {
			continue
		}
		temporal = true
		if d := headDepthOf(r); d > g {
			g = d
		}
	}
	if temporal && g < 1 {
		g = 1
	}
	for _, r := range rules {
		if r.Head.Time != nil {
			continue
		}
		s := r.ShiftNormalize()
		if d := s.MaxDepth(); d > g {
			g = d
		}
	}
	if g < 1 {
		g = 1
	}
	return g
}

// maxHeadDepthOf is the maximum un-normalized head depth, the other input
// to period detection.
func maxHeadDepthOf(rules []ast.Rule) int {
	h := 0
	for _, r := range rules {
		if r.Head.Time != nil && !r.Head.Time.Ground() && r.Head.Time.Depth > h {
			h = r.Head.Time.Depth
		}
	}
	return h
}
