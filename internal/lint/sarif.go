package lint

// SARIF 2.1.0 export: the interchange format code-scanning UIs (GitHub,
// VS Code SARIF viewers) ingest. One run, one driver ("tddlint"), one
// result per diagnostic with a physical location in its unit file; the
// rule table carries only the codes that actually fired, each with its
// short description, so the payload stays proportional to the findings.

import (
	"encoding/json"
	"sort"
)

// ruleDescriptions gives every code a one-line SARIF shortDescription.
var ruleDescriptions = map[string]string{
	"TDL001": "undefined predicate: no rule derives it and the database holds no facts",
	"TDL002": "unused predicate: database facts no rule body reads",
	"TDL003": "unreachable rule: no derivation path from the database (delete-safe)",
	"TDL004": "never fires: body unsatisfiable at every time point of the certified model",
	"TDL005": "duplicate rule: alpha-equivalent to an earlier rule (delete-safe)",
	"TDL006": "shiftable rule: all temporal depths share a positive offset",
	"TDL010": "not multi-separable: near-miss explanation",
	"TDL011": "not inflationary: Theorem 5.2 witness",
	"TDL012": "mutual recursion: SCC breaking multi-separability",
	"TDL100": "parse error",
	"TDL101": "not range-restricted",
	"TDL102": "not semi-normal: more than one temporal variable",
	"TDL103": "not forward: body literal deeper than the head",
	"TDL104": "ground temporal term: ground facts belong in the database",
	"TDL105": "sort conflict: variable used as both temporal and non-temporal",
	"TDL106": "invalid program",
	"TDL201": "irrelevant rule: cannot influence any exported predicate",
	"TDL202": "dead component: a whole SCC is base-unreachable",
	"TDL203": "unused suppression: a tddlint:ignore marker silenced nothing",
}

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           *sarifRegion  `json:"region,omitempty"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

func sarifLevel(s Severity) string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	}
	return "note"
}

// SARIF renders lint results for a set of files as one SARIF 2.1.0 run.
// files fixes the result order (callers pass them in command-line
// order); every diagnostic becomes a result located in its file, and the
// driver's rule table lists exactly the codes that fired.
func SARIF(files []string, results map[string]Result) ([]byte, error) {
	fired := make(map[string]bool)
	out := make([]sarifResult, 0)
	for _, name := range files {
		for _, d := range results[name].Diagnostics {
			fired[d.Code] = true
			r := sarifResult{
				RuleID:  d.Code,
				Level:   sarifLevel(d.Severity),
				Message: sarifText{Text: d.Message},
			}
			phys := sarifPhysical{ArtifactLocation: sarifArtifact{URI: name}}
			if d.Line > 0 {
				phys.Region = &sarifRegion{StartLine: d.Line, StartColumn: d.Col}
			}
			r.Locations = []sarifLocation{{PhysicalLocation: phys}}
			out = append(out, r)
		}
	}
	codes := make([]string, 0, len(fired))
	for c := range fired {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	rules := make([]sarifRule, 0, len(codes))
	for _, c := range codes {
		rules = append(rules, sarifRule{ID: c, ShortDescription: sarifText{Text: ruleDescriptions[c]}})
	}
	log := sarifLog{
		Version: "2.1.0",
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "tddlint", Rules: rules}},
			Results: out,
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}
