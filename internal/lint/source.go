package lint

import (
	"errors"

	"tdd/internal/parser"
)

// RunSource parses a unit source (rules, facts, and directives mixed) and
// lints it with inline suppressions honored. A parse or sort failure
// becomes a single TDL100 diagnostic at the failing position rather than
// an error: the linter's contract is that every input yields a Result.
func RunSource(src string, opts Options) Result {
	prog, db, err := parser.ParseUnit(src)
	if err != nil {
		d := Diagnostic{Code: "TDL100", Severity: Error, Message: err.Error(), RuleIdx: -1}
		var perr *parser.Error
		if errors.As(err, &perr) {
			d.Line, d.Col = perr.Line, perr.Col
		}
		res := Result{Diagnostics: []Diagnostic{d}}
		if src != "" {
			// No unused-suppression findings on a parse failure: the markers
			// may well cover findings that appear once the source parses.
			res = suppress(res, src, false)
		}
		return res
	}
	opts.Source = src
	return Run(prog, db, opts)
}
