package lint

import (
	"errors"
	"fmt"

	"tdd/internal/ast"
)

// codeOf maps a validator sentinel to its diagnostic code and the paper
// anchor explaining why the property is required.
func codeOf(err error) (code, theorem string) {
	switch {
	case errors.Is(err, ast.ErrNotRangeRestricted):
		return "TDL101", "Section 3.3 (range restriction keeps specifications finite)"
	case errors.Is(err, ast.ErrNotSemiNormal):
		return "TDL102", "Section 3.2 (semi-normal rules: one temporal variable)"
	case errors.Is(err, ast.ErrNotForward):
		return "TDL103", "forward rules: bottom-up evaluation in time order is sound"
	case errors.Is(err, ast.ErrGroundTemporal):
		return "TDL104", "Section 3.1 (rules contain no ground terms)"
	case errors.Is(err, ast.ErrSortConflict):
		return "TDL105", "Section 3.1 (two-sorted language)"
	}
	return "TDL106", ""
}

// checkValidity re-runs the per-rule validators so every invalid rule gets
// its own positioned, coded diagnostic (ast.ValidateProgram stops at the
// first). Signature consistency across rules is checked once at the end.
// Sets *valid to false when anything fails, which gates the passes that
// need a well-formed program.
func checkValidity(prog *ast.Program, valid *bool) []Diagnostic {
	var ds []Diagnostic
	fail := func(i int, r ast.Rule, err error) {
		*valid = false
		code, theorem := codeOf(err)
		ds = append(ds, Diagnostic{
			Code:     code,
			Severity: Error,
			Line:     r.Pos.Line,
			Col:      r.Pos.Col,
			Message:  err.Error(),
			Rule:     r.String(),
			RuleIdx:  i,
			Theorem:  theorem,
		})
	}
	for i, r := range prog.Rules {
		if len(r.Body) == 0 {
			fail(i, r, fmt.Errorf("unit clause %s: ground facts belong in the database", r))
			continue
		}
		if err := ast.ValidateRule(r); err != nil {
			fail(i, r, err)
			continue
		}
		if err := ast.ValidateForward(r); err != nil {
			fail(i, r, err)
		}
	}
	if _, err := ast.NewProgram(prog.Rules); err != nil {
		*valid = false
		ds = append(ds, Diagnostic{
			Code:     "TDL106",
			Severity: Error,
			Message:  err.Error(),
			RuleIdx:  -1,
		})
	}
	return ds
}
