package clitest

// End-to-end durability and replication through the real tddserve
// binary: warm restart from -data, follower catch-up under -follow, and
// the durability families on both metrics surfaces.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startServeStoppable boots tddserve like startServe but also returns a
// stop function that SIGTERMs the process and waits for a clean exit —
// restart tests stop the first instance mid-test rather than at cleanup.
func startServeStoppable(t *testing.T, args ...string) (base string, stop func()) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binaries(t), "tddserve"),
		append([]string{"-addr", "127.0.0.1:0", "-quiet"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	stopped := false
	stop = func() {
		if stopped {
			return
		}
		stopped = true
		cmd.Process.Signal(syscall.SIGTERM) //nolint:errcheck
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("tddserve did not exit cleanly: %v", err)
			}
		case <-time.After(10 * time.Second):
			cmd.Process.Kill() //nolint:errcheck
			t.Fatal("tddserve did not shut down within 10s of SIGTERM")
		}
	}
	t.Cleanup(stop)

	scanner := bufio.NewScanner(stdout)
	for scanner.Scan() {
		line := scanner.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			return strings.TrimSpace(line[i+len("listening on "):]), stop
		}
	}
	t.Fatalf("tddserve never printed its listen address (scan err: %v)", scanner.Err())
	return "", nil
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp.StatusCode
}

func postStatus(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(mustJSON(t, body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck
	return resp.StatusCode, buf.Bytes()
}

func TestServeRestartWarm(t *testing.T) {
	dir := t.TempDir()
	base, stop := startServeStoppable(t, "-data", dir, "-fsync", "always")

	status, body := postStatus(t, base+"/programs", map[string]string{"unit": evenUnit})
	if status != http.StatusCreated {
		t.Fatalf("register: status %d: %s", status, body)
	}
	var reg struct {
		ID  string `json:"id"`
		Rev string `json:"rev"`
	}
	if err := json.Unmarshal(body, &reg); err != nil {
		t.Fatal(err)
	}
	status, body = postStatus(t, base+"/programs/"+reg.ID+"/facts", map[string]string{"facts": "even(7).\n"})
	if status != http.StatusOK {
		t.Fatalf("facts: status %d: %s", status, body)
	}
	var ack struct {
		Rev string `json:"rev"`
	}
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}
	stop()

	// Second instance over the same directory: the program and its batch
	// must be back, warm, at the same revision, without re-registration.
	base2, _ := startServeStoppable(t, "-data", dir)
	var list struct {
		Programs []string `json:"programs"`
	}
	getJSON(t, base2+"/programs", &list)
	if len(list.Programs) != 1 || list.Programs[0] != reg.ID {
		t.Fatalf("restarted programs = %v, want [%s]", list.Programs, reg.ID)
	}
	status, body = postStatus(t, base2+"/programs/"+reg.ID+"/ask", map[string]string{"query": "even(7)"})
	var ar struct {
		Result bool   `json:"result"`
		Engine string `json:"engine"`
	}
	if status != http.StatusOK || json.Unmarshal(body, &ar) != nil {
		t.Fatalf("ask after restart: status %d: %s", status, body)
	}
	if !ar.Result {
		t.Error("even(7) lost across restart")
	}
	if ar.Engine != "spec" {
		t.Errorf("restart answered by %q, want the warm spec cache", ar.Engine)
	}
	var snap struct {
		Durability map[string]struct {
			Seq        uint64 `json:"seq"`
			DurableRev string `json:"durable_rev"`
		} `json:"durability"`
	}
	getJSON(t, base2+"/metrics", &snap)
	d, ok := snap.Durability[reg.ID]
	if !ok {
		t.Fatalf("/metrics durability section missing %s: %v", reg.ID, snap.Durability)
	}
	if d.Seq != 1 || d.DurableRev != ack.Rev {
		t.Errorf("durability (%d, %s), want (1, %s)", d.Seq, d.DurableRev, ack.Rev)
	}
}

func TestServeFollowerCatchUp(t *testing.T) {
	leader := startServe(t)
	status, body := postStatus(t, leader+"/programs", map[string]string{"unit": evenUnit})
	if status != http.StatusCreated {
		t.Fatalf("register: status %d: %s", status, body)
	}
	var reg struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &reg); err != nil {
		t.Fatal(err)
	}
	if status, body := postStatus(t, leader+"/programs/"+reg.ID+"/facts", map[string]string{"facts": "even(9).\n"}); status != http.StatusOK {
		t.Fatalf("leader facts: status %d: %s", status, body)
	}

	follower := startServe(t, "-follow", leader, "-follow-interval", "20ms")
	deadline := time.Now().Add(15 * time.Second)
	for {
		status, body := postStatus(t, follower+"/programs/"+reg.ID+"/ask", map[string]string{"query": "even(9)"})
		var ar struct {
			Result bool `json:"result"`
		}
		if status == http.StatusOK && json.Unmarshal(body, &ar) == nil && ar.Result {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never served even(9): status %d: %s", status, body)
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Writes are rejected on the follower.
	if status, body := postStatus(t, follower+"/programs", map[string]string{"unit": skiUnit}); status != http.StatusForbidden {
		t.Fatalf("follower register: status %d, want 403: %s", status, body)
	}
	if status, body := postStatus(t, follower+"/programs/"+reg.ID+"/facts", map[string]string{"facts": "even(11).\n"}); status != http.StatusForbidden {
		t.Fatalf("follower facts: status %d, want 403: %s", status, body)
	}

	// The follower section of /metrics reports the replication state.
	var snap struct {
		Follower *struct {
			Leader  string `json:"leader"`
			Records int64  `json:"records_applied"`
			Lag     int64  `json:"lag_records"`
		} `json:"follower"`
	}
	getJSON(t, follower+"/metrics", &snap)
	if snap.Follower == nil {
		t.Fatal("/metrics on a follower has no follower section")
	}
	if snap.Follower.Leader != leader || snap.Follower.Records < 1 || snap.Follower.Lag != 0 {
		t.Errorf("follower section %+v, want leader %s, >=1 record, lag 0", snap.Follower, leader)
	}
}

// TestServeDurabilityProm asserts the exposition shape of the new
// durability families: scalars, the fsync histogram triplet, and the
// per-program gauges including the info-style durable-rev sample.
func TestServeDurabilityProm(t *testing.T) {
	dir := t.TempDir()
	base, _ := startServeStoppable(t, "-data", dir, "-fsync", "always")
	status, body := postStatus(t, base+"/programs", map[string]string{"unit": evenUnit})
	if status != http.StatusCreated {
		t.Fatalf("register: status %d: %s", status, body)
	}
	var reg struct {
		ID  string `json:"id"`
		Rev string `json:"rev"`
	}
	if err := json.Unmarshal(body, &reg); err != nil {
		t.Fatal(err)
	}
	if status, body := postStatus(t, base+"/programs/"+reg.ID+"/facts", map[string]string{"facts": "even(5).\n"}); status != http.StatusOK {
		t.Fatalf("facts: status %d: %s", status, body)
	}

	resp, err := http.Get(base + "/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	prom := new(bytes.Buffer)
	prom.ReadFrom(resp.Body) //nolint:errcheck
	resp.Body.Close()
	text := prom.String()

	for _, family := range []string{
		"tddserve_wal_appends_total",
		"tddserve_wal_fsyncs_total",
		"tddserve_wal_snapshots_total",
		"tddserve_follower_lag_records",
		"tddserve_fsync_duration_seconds",
		"tddserve_program_durable_seq",
		"tddserve_program_snapshot_age_seconds",
		"tddserve_program_durable_rev",
	} {
		if !strings.Contains(text, "# HELP "+family+" ") || !strings.Contains(text, "# TYPE "+family+" ") {
			t.Errorf("family %s missing HELP/TYPE in exposition", family)
		}
	}
	// One batch was appended and (fsync=always) synced.
	if !strings.Contains(text, "tddserve_wal_appends_total 1") {
		t.Error("tddserve_wal_appends_total != 1 after one batch")
	}
	if strings.Contains(text, "tddserve_fsync_duration_seconds_count 0") {
		t.Error("fsync histogram empty under -fsync always")
	}
	if !strings.Contains(text, fmt.Sprintf("tddserve_program_durable_seq{program=%q} 1", reg.ID)) {
		t.Error("per-program durable seq gauge missing or wrong")
	}
	// Info-style rev sample: constant 1, rev carried as a label.
	if !strings.Contains(text, fmt.Sprintf("tddserve_program_durable_rev{program=%q,rev=", reg.ID)) {
		t.Error("info-style durable rev sample missing")
	}
}
