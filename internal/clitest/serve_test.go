package clitest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startServe boots tddserve on an ephemeral port and returns its base
// URL. The server is sent SIGTERM and waited for at test cleanup.
func startServe(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(binaries(t), "tddserve"),
		append([]string{"-addr", "127.0.0.1:0", "-quiet"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = nil
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Signal(syscall.SIGTERM) //nolint:errcheck
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("tddserve did not exit cleanly: %v", err)
			}
		case <-time.After(10 * time.Second):
			cmd.Process.Kill() //nolint:errcheck
			t.Error("tddserve did not shut down within 10s of SIGTERM")
		}
	})

	// The boot banner carries the resolved ephemeral address:
	// "tddserve: listening on http://127.0.0.1:PORT". Preload lines may
	// precede it.
	scanner := bufio.NewScanner(stdout)
	deadline := time.Now().Add(15 * time.Second)
	for scanner.Scan() {
		line := scanner.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			return strings.TrimSpace(line[i+len("listening on "):])
		}
		if time.Now().After(deadline) {
			break
		}
	}
	t.Fatalf("tddserve never printed its listen address (scan err: %v)", scanner.Err())
	return ""
}

func TestServeAskRoundTrip(t *testing.T) {
	base := startServe(t)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d, want 200", resp.StatusCode)
	}

	// Register the quickstart even program.
	body, _ := json.Marshal(map[string]string{"unit": evenUnit})
	resp, err = http.Post(base+"/programs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var reg struct {
		ID     string `json:"id"`
		Period struct {
			Base int `json:"base"`
			P    int `json:"p"`
		} `json:"period"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status %d, want 201", resp.StatusCode)
	}
	if reg.Period.Base != 1 || reg.Period.P != 2 {
		t.Errorf("period = (b=%d, p=%d), want (b=1, p=2)", reg.Period.Base, reg.Period.P)
	}

	// Ask round-trip: a deep ground query answered from the cached spec.
	ask := func(query string) bool {
		t.Helper()
		body, _ := json.Marshal(map[string]string{"query": query})
		resp, err := http.Post(fmt.Sprintf("%s/programs/%s/ask", base, reg.ID),
			"application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var ar struct {
			Result bool   `json:"result"`
			Engine string `json:"engine"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ask %s: status %d", query, resp.StatusCode)
		}
		if ar.Engine != "spec" {
			t.Errorf("ask %s answered by %q, want the spec cache", query, ar.Engine)
		}
		return ar.Result
	}
	if !ask("even(1000000)") {
		t.Error("even(1000000) should hold")
	}
	if ask("even(999999)") {
		t.Error("even(999999) should not hold")
	}
}

func TestServeLintSurface(t *testing.T) {
	base := startServe(t)

	// A registerable program with deliberate lint findings: q is undefined
	// (TDL001, warning) which also makes the rule unreachable (TDL003,
	// warning), and e is an unused db predicate (TDL002, info).
	dirty := "p(T+1) :- p(T), q(T).\np(0).\ne(a).\n"
	body, _ := json.Marshal(map[string]string{"unit": dirty})
	resp, err := http.Post(base+"/programs?lint=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Get("X-Trace-Id") == "" {
		t.Error("register response lost its X-Trace-Id header")
	}
	var reg struct {
		ID           string `json:"id"`
		LintWarnings int    `json:"lint_warnings"`
		Lint         *struct {
			Diagnostics []struct {
				Code     string `json:"code"`
				Severity string `json:"severity"`
				Line     int    `json:"line"`
				Message  string `json:"message"`
			} `json:"diagnostics"`
		} `json:"lint"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status %d, want 201", resp.StatusCode)
	}
	if reg.LintWarnings < 2 {
		t.Errorf("lint_warnings = %d, want >= 2 (TDL001 + TDL003)", reg.LintWarnings)
	}
	if reg.Lint == nil {
		t.Fatal("?lint=1 register response has no lint payload")
	}
	seen := map[string]bool{}
	for _, d := range reg.Lint.Diagnostics {
		seen[d.Code] = true
		if d.Message == "" || d.Severity == "" {
			t.Errorf("diagnostic %+v missing message or severity", d)
		}
	}
	for _, want := range []string{"TDL001", "TDL002", "TDL003"} {
		if !seen[want] {
			t.Errorf("lint payload missing %s (got %v)", want, seen)
		}
	}

	// Without ?lint=1 the count is still present but the list is elided.
	resp, err = http.Post(base+"/programs", "application/json", bytes.NewReader(mustJSON(t, map[string]string{"unit": dirty})))
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, ok := raw["lint_warnings"]; !ok {
		t.Error("register response without ?lint=1 lost lint_warnings")
	}
	if _, ok := raw["lint"]; ok {
		t.Error("register response without ?lint=1 should omit the lint list")
	}

	// The warning total is a first-class metric on both surfaces.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		LintWarnings int64 `json:"lint_warnings"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.LintWarnings < 2 {
		t.Errorf("/metrics lint_warnings = %d, want >= 2", snap.LintWarnings)
	}

	resp, err = http.Get(base + "/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	prom := new(bytes.Buffer)
	prom.ReadFrom(resp.Body) //nolint:errcheck
	resp.Body.Close()
	if !strings.Contains(prom.String(), "tddserve_lint_warnings") {
		t.Error("/metrics.prom has no tddserve_lint_warnings gauge")
	}
	if !strings.Contains(prom.String(), "tddserve_program_lint_warnings") {
		t.Error("/metrics.prom has no per-program lint gauge")
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestServePreload(t *testing.T) {
	file := writeFile(t, "even.tdd", evenUnit)
	base := startServe(t, file)

	resp, err := http.Get(base + "/programs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Programs []string `json:"programs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Programs) != 1 {
		t.Fatalf("preloaded programs = %v, want exactly one", list.Programs)
	}
}
