package clitest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startServe boots tddserve on an ephemeral port and returns its base
// URL. The server is sent SIGTERM and waited for at test cleanup.
func startServe(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(binaries(t), "tddserve"),
		append([]string{"-addr", "127.0.0.1:0", "-quiet"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = nil
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Signal(syscall.SIGTERM) //nolint:errcheck
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("tddserve did not exit cleanly: %v", err)
			}
		case <-time.After(10 * time.Second):
			cmd.Process.Kill() //nolint:errcheck
			t.Error("tddserve did not shut down within 10s of SIGTERM")
		}
	})

	// The boot banner carries the resolved ephemeral address:
	// "tddserve: listening on http://127.0.0.1:PORT". Preload lines may
	// precede it.
	scanner := bufio.NewScanner(stdout)
	deadline := time.Now().Add(15 * time.Second)
	for scanner.Scan() {
		line := scanner.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			return strings.TrimSpace(line[i+len("listening on "):])
		}
		if time.Now().After(deadline) {
			break
		}
	}
	t.Fatalf("tddserve never printed its listen address (scan err: %v)", scanner.Err())
	return ""
}

func TestServeAskRoundTrip(t *testing.T) {
	base := startServe(t)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d, want 200", resp.StatusCode)
	}

	// Register the quickstart even program.
	body, _ := json.Marshal(map[string]string{"unit": evenUnit})
	resp, err = http.Post(base+"/programs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var reg struct {
		ID     string `json:"id"`
		Period struct {
			Base int `json:"base"`
			P    int `json:"p"`
		} `json:"period"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status %d, want 201", resp.StatusCode)
	}
	if reg.Period.Base != 1 || reg.Period.P != 2 {
		t.Errorf("period = (b=%d, p=%d), want (b=1, p=2)", reg.Period.Base, reg.Period.P)
	}

	// Ask round-trip: a deep ground query answered from the cached spec.
	ask := func(query string) bool {
		t.Helper()
		body, _ := json.Marshal(map[string]string{"query": query})
		resp, err := http.Post(fmt.Sprintf("%s/programs/%s/ask", base, reg.ID),
			"application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var ar struct {
			Result bool   `json:"result"`
			Engine string `json:"engine"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ask %s: status %d", query, resp.StatusCode)
		}
		if ar.Engine != "spec" {
			t.Errorf("ask %s answered by %q, want the spec cache", query, ar.Engine)
		}
		return ar.Result
	}
	if !ask("even(1000000)") {
		t.Error("even(1000000) should hold")
	}
	if ask("even(999999)") {
		t.Error("even(999999) should not hold")
	}
}

func TestServePreload(t *testing.T) {
	file := writeFile(t, "even.tdd", evenUnit)
	base := startServe(t, file)

	resp, err := http.Get(base + "/programs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Programs []string `json:"programs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Programs) != 1 {
		t.Fatalf("preloaded programs = %v, want exactly one", list.Programs)
	}
}
