package clitest

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestQueryProfileFlag drives tddquery -profile and checks the EXPLAIN
// ANALYZE tree: the header, the dominant join, per-literal scan/match
// rows with selectivity and time, and the cardinality tables.
func TestQueryProfileFlag(t *testing.T) {
	file := writeFile(t, "ski.tdd", skiUnit)
	out, err := run(t, "tddquery", "-profile", file, "exists T plane(T, hunter)")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "?- exists T plane(T, hunter)\nyes") {
		t.Errorf("missing answer:\n%s", out)
	}
	for _, want := range []string{
		"profile  window=", "dominant join:", "scanned=", "matched=",
		"sel=", "time=", "cardinalities", "resort(X)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("profile tree missing %q:\n%s", want, out)
		}
	}
}

// TestQueryProfileRejectsFromSpec: a saved specification never re-enters
// the engine, so -profile with -fromspec must fail loudly instead of
// printing an empty tree.
func TestQueryProfileRejectsFromSpec(t *testing.T) {
	file := writeFile(t, "even.tdd", evenUnit)
	spec := writeFile(t, "even.spec.json", "")
	if out, err := run(t, "tddquery", "-savespec", spec, file); err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	out, err := run(t, "tddquery", "-profile", "-fromspec", spec, "even(4)")
	if err == nil {
		t.Fatalf("-profile -fromspec should fail:\n%s", out)
	}
	if !strings.Contains(out, "-fromspec") {
		t.Errorf("error should explain the -fromspec restriction:\n%s", out)
	}
}

// register posts a unit program and returns its id.
func register(t *testing.T, base, unit string) string {
	t.Helper()
	resp, err := http.Post(base+"/programs", "application/json",
		bytes.NewReader(mustJSON(t, map[string]string{"unit": unit})))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var reg struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status %d", resp.StatusCode)
	}
	return reg.ID
}

// TestServeProfileParam checks ?profile=1 end to end over a real server
// process: the ask response embeds the join-cost profile with per-literal
// counters, a dominant join, and cardinality tables.
func TestServeProfileParam(t *testing.T) {
	base := startServe(t)
	id := register(t, base, skiUnit)

	resp, err := http.Post(base+"/programs/"+id+"/ask?profile=1", "application/json",
		bytes.NewReader(mustJSON(t, map[string]string{"query": "plane(3000, hunter)"})))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var ar struct {
		Result  bool `json:"result"`
		Profile *struct {
			Window int64 `json:"window"`
			JoinUs int64 `json:"join_us"`
			Rules  []struct {
				Rule     string `json:"rule"`
				Calls    int64  `json:"calls"`
				Us       int64  `json:"us"`
				Literals []struct {
					Pos         int     `json:"pos"`
					Literal     string  `json:"literal"`
					Scanned     int64   `json:"scanned"`
					Matched     int64   `json:"matched"`
					Selectivity float64 `json:"selectivity"`
				} `json:"literals"`
			} `json:"rules"`
			Dominant *struct {
				Rule    string `json:"rule"`
				Pos     int    `json:"pos"`
				Literal string `json:"literal"`
			} `json:"dominant"`
			Cardinalities []struct {
				Pred  string `json:"pred"`
				Facts int64  `json:"facts"`
			} `json:"cardinalities"`
		} `json:"profile"`
	}
	if err := json.Unmarshal(raw, &ar); err != nil {
		t.Fatalf("%v\n%s", err, raw)
	}
	p := ar.Profile
	if p == nil {
		t.Fatalf("?profile=1 response has no profile:\n%s", raw)
	}
	if p.Window <= 0 || len(p.Rules) == 0 {
		t.Fatalf("profile shape: window=%d rules=%d\n%s", p.Window, len(p.Rules), raw)
	}
	for _, r := range p.Rules {
		if r.Calls <= 0 || len(r.Literals) == 0 {
			t.Errorf("rule %q: calls=%d literals=%d", r.Rule, r.Calls, len(r.Literals))
		}
		for _, l := range r.Literals {
			if l.Matched > l.Scanned {
				t.Errorf("%s[%d]: matched %d > scanned %d", r.Rule, l.Pos, l.Matched, l.Scanned)
			}
		}
	}
	if p.Dominant == nil || p.Dominant.Pos == 0 {
		t.Errorf("dominant join missing or not a join literal: %+v", p.Dominant)
	}
	if len(p.Cardinalities) == 0 {
		t.Errorf("profile has no cardinality tables:\n%s", raw)
	}

	// Without ?profile=1 the block is elided.
	resp, err = http.Post(base+"/programs/"+id+"/ask", "application/json",
		bytes.NewReader(mustJSON(t, map[string]string{"query": "plane(3000, hunter)"})))
	if err != nil {
		t.Fatal(err)
	}
	var bare map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&bare); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, ok := bare["profile"]; ok {
		t.Error("ask without ?profile=1 should omit the profile block")
	}
}

// TestServeDebugFlights drives load through a 1-slot cache so every ask
// recompiles its program, and polls GET /debug/flights until it observes
// the ask both as an in-flight request (age, shard, trace id) and as an
// in-flight coalescable evaluation.
func TestServeDebugFlights(t *testing.T) {
	base := startServe(t, "-shards", "1", "-cache", "1")
	skiID := register(t, base, skiUnit)
	evenID := register(t, base, evenUnit)

	// Alternating asks: each one evicts the other program's spec, so each
	// ask holds its request slot through a full recompile — a wide window
	// for the poller to catch it in flight.
	stop := make(chan struct{})
	done := make(chan struct{})
	var askErr atomic.Value
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, q := range []struct{ id, query string }{
				{skiID, "plane(3000, hunter)"},
				{evenID, "even(1000000)"},
			} {
				resp, err := http.Post(base+"/programs/"+q.id+"/ask", "application/json",
					bytes.NewReader([]byte(`{"query": "`+q.query+`"}`)))
				if err != nil {
					askErr.Store(err)
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
			}
		}
	}()
	defer func() {
		close(stop)
		<-done
		if err := askErr.Load(); err != nil {
			t.Fatalf("background ask failed: %v", err)
		}
	}()

	type flightsResp struct {
		Requests []struct {
			Route   string `json:"route"`
			Program string `json:"program"`
			Shard   int    `json:"shard"`
			TraceID string `json:"trace_id"`
			AgeUs   int64  `json:"age_us"`
		} `json:"requests"`
		Flights []struct {
			Program string `json:"program"`
			Query   string `json:"query"`
			Kind    string `json:"kind"`
			Shard   int    `json:"shard"`
			AgeUs   int64  `json:"age_us"`
		} `json:"flights"`
	}
	var sawRequest, sawFlight bool
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) && !(sawRequest && sawFlight) {
		resp, err := http.Get(base + "/debug/flights")
		if err != nil {
			t.Fatal(err)
		}
		var fr flightsResp
		if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		for _, r := range fr.Requests {
			if r.Route == "ask" && (r.Program == skiID || r.Program == evenID) {
				if r.Shard != 0 {
					t.Errorf("single-shard server reported shard %d", r.Shard)
				}
				if r.TraceID == "" {
					t.Error("in-flight request has no trace id")
				}
				if r.AgeUs < 0 {
					t.Errorf("in-flight request age %dus", r.AgeUs)
				}
				sawRequest = true
			}
		}
		for _, f := range fr.Flights {
			if f.Kind == "ask" && (f.Program == skiID || f.Program == evenID) {
				if f.Query == "" {
					t.Error("in-flight evaluation has no query")
				}
				sawFlight = true
			}
		}
	}
	if !sawRequest {
		t.Error("/debug/flights never showed the ask as an in-flight request")
	}
	if !sawFlight {
		t.Error("/debug/flights never showed an in-flight coalescable evaluation")
	}
}

// TestServeDebugSlowAndShards checks the other two /debug endpoints: a
// nanosecond slow-query threshold makes every ask slow, so /debug/slow
// retains its full phase tree; /debug/shards reports the per-shard
// heatmap sized by -shards.
func TestServeDebugSlowAndShards(t *testing.T) {
	base := startServe(t, "-shards", "4", "-slowquery", "1ns", "-slow-keep", "8")
	id := register(t, base, evenUnit)

	resp, err := http.Post(base+"/programs/"+id+"/ask", "application/json",
		bytes.NewReader(mustJSON(t, map[string]string{"query": "even(1000000)"})))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()

	resp, err = http.Get(base + "/debug/slow")
	if err != nil {
		t.Fatal(err)
	}
	var slow struct {
		ThresholdUs int64 `json:"threshold_us"`
		Keep        int   `json:"keep"`
		Total       int64 `json:"total"`
		Slow        []struct {
			Route     string          `json:"route"`
			Program   string          `json:"program"`
			Query     string          `json:"query"`
			TraceID   string          `json:"trace_id"`
			ElapsedUs int64           `json:"elapsed_us"`
			Trace     json.RawMessage `json:"trace"`
		} `json:"slow"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&slow); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if slow.Keep != 8 {
		t.Errorf("slow keep = %d, want 8", slow.Keep)
	}
	if slow.Total < 1 || len(slow.Slow) < 1 {
		t.Fatalf("slow ring empty after a slow ask: total=%d entries=%d", slow.Total, len(slow.Slow))
	}
	e := slow.Slow[0]
	if e.Route != "ask" || e.Program != id || e.Query != "even(1000000)" {
		t.Errorf("slow entry = %+v", e)
	}
	if e.TraceID == "" || len(e.Trace) == 0 {
		t.Errorf("slow entry lost its trace: id=%q trace=%s", e.TraceID, e.Trace)
	}

	resp, err = http.Get(base + "/debug/shards")
	if err != nil {
		t.Fatal(err)
	}
	var shards struct {
		Shards []struct {
			Programs int   `json:"programs"`
			Warm     int   `json:"warm"`
			Capacity int64 `json:"capacity"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&shards); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(shards.Shards) != 4 {
		t.Fatalf("shard heatmap has %d entries, want 4", len(shards.Shards))
	}
	var progs, warm int
	for _, sh := range shards.Shards {
		progs += sh.Programs
		warm += sh.Warm
		if sh.Capacity <= 0 {
			t.Errorf("shard capacity %d", sh.Capacity)
		}
	}
	if progs != 1 || warm != 1 {
		t.Errorf("heatmap totals: programs=%d warm=%d, want 1/1", progs, warm)
	}
}

// TestServeBuildAndRuntimeMetrics checks the process-identity satellite:
// /metrics carries build info, uptime, and runtime gauges, and
// /metrics.prom exposes them as tddserve_build_info + runtime families.
func TestServeBuildAndRuntimeMetrics(t *testing.T) {
	base := startServe(t)

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Build struct {
			GoVersion string `json:"go_version"`
			Version   string `json:"version"`
			Revision  string `json:"revision"`
		} `json:"build"`
		UptimeSec float64 `json:"uptime_sec"`
		Runtime   struct {
			Goroutines int    `json:"goroutines"`
			HeapAlloc  uint64 `json:"heap_alloc_bytes"`
			HeapSys    uint64 `json:"heap_sys_bytes"`
		} `json:"runtime"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.HasPrefix(snap.Build.GoVersion, "go") {
		t.Errorf("build.go_version = %q", snap.Build.GoVersion)
	}
	if snap.UptimeSec <= 0 {
		t.Errorf("uptime_sec = %v", snap.UptimeSec)
	}
	if snap.Runtime.Goroutines < 1 || snap.Runtime.HeapAlloc == 0 || snap.Runtime.HeapSys == 0 {
		t.Errorf("runtime gauges = %+v", snap.Runtime)
	}

	resp, err = http.Get(base + "/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, fam := range []string{
		"tddserve_build_info{go_version=", "tddserve_uptime_seconds",
		"tddserve_goroutines", "tddserve_heap_alloc_bytes",
		"tddserve_gc_cycles_total", "tddserve_gc_pause_seconds_total",
	} {
		if !bytes.Contains(raw, []byte(fam)) {
			t.Errorf("/metrics.prom missing %s", fam)
		}
	}
}
