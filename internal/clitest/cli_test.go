// Package clitest holds end-to-end tests for the command-line tools: each
// test builds the real binary and drives it the way a user would.
package clitest

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

// binaries builds the tools under test once per test run.
func binaries(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		binDir, buildErr = os.MkdirTemp("", "tddbin")
		if buildErr != nil {
			return
		}
		cmd := exec.Command("go", "build", "-o", binDir, "tdd/cmd/tddquery", "tdd/cmd/tddcheck", "tdd/cmd/tddbench", "tdd/cmd/tddserve", "tdd/cmd/tddload", "tdd/cmd/tddlint")
		out, err := cmd.CombinedOutput()
		if err != nil {
			buildErr = err
			buildErr = &buildFailure{err: err, out: string(out)}
		}
	})
	if buildErr != nil {
		t.Fatalf("building tools: %v", buildErr)
	}
	return binDir
}

type buildFailure struct {
	err error
	out string
}

func (b *buildFailure) Error() string { return b.err.Error() + "\n" + b.out }

func run(t *testing.T, tool string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binaries(t), tool), args...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const evenUnit = "even(T+2) :- even(T).\neven(0).\n"

const skiUnit = `
plane(T+7, X) :- plane(T, X), resort(X), offseason(T).
plane(T+2, X) :- plane(T, X), resort(X), winter(T).
offseason(T+10) :- offseason(T).
winter(T+10) :- winter(T).
winter(0..3).
offseason(4..9).
resort(hunter).
plane(0, hunter).
`

func TestQueryYesNo(t *testing.T) {
	file := writeFile(t, "even.tdd", evenUnit)
	out, err := run(t, "tddquery", file, "even(1000000)", "even(3)")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "?- even(1000000)\nyes") {
		t.Errorf("missing yes answer:\n%s", out)
	}
	if !strings.Contains(out, "?- even(3)\nno") {
		t.Errorf("missing no answer:\n%s", out)
	}
}

func TestQueryOpenAnswers(t *testing.T) {
	file := writeFile(t, "even.tdd", evenUnit)
	out, err := run(t, "tddquery", file, "even(T)")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "T=0") || !strings.Contains(out, "T=2") {
		t.Errorf("missing representative answers:\n%s", out)
	}
}

func TestQuerySpecPeriodStateWork(t *testing.T) {
	file := writeFile(t, "even.tdd", evenUnit)
	out, err := run(t, "tddquery", "-spec", "-period", "-state", "4", "-work", file)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"period (b=1, p=2)", "W = {3 -> 1}", "M[4]:", "even", "window="} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestQuerySeparateRulesAndFacts(t *testing.T) {
	rules := writeFile(t, "rules.tdd", "even(T+2) :- even(T).\n")
	facts := writeFile(t, "facts.tdd", "even(0).\n")
	out, err := run(t, "tddquery", "-rules", rules, "-facts", facts, "even(8)")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "yes") {
		t.Errorf("output:\n%s", out)
	}
}

func TestQueryErrors(t *testing.T) {
	if out, err := run(t, "tddquery", "/nonexistent/file.tdd"); err == nil {
		t.Errorf("missing file accepted:\n%s", out)
	}
	file := writeFile(t, "bad.tdd", "p(")
	if out, err := run(t, "tddquery", file); err == nil {
		t.Errorf("syntax error accepted:\n%s", out)
	}
	good := writeFile(t, "even.tdd", evenUnit)
	if out, err := run(t, "tddquery", good, "even("); err == nil {
		t.Errorf("bad query accepted:\n%s", out)
	}
}

func TestCheckSki(t *testing.T) {
	file := writeFile(t, "ski.tdd", skiUnit)
	out, err := run(t, "tddcheck", file)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"multi-separable:", "inflationary:", "tractable"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "multi-separable:                                yes") {
		t.Errorf("ski not reported multi-separable:\n%s", out)
	}
}

func TestCheckIPeriod(t *testing.T) {
	file := writeFile(t, "even.tdd", "even(T+2) :- even(T).\n")
	out, err := run(t, "tddcheck", "-iperiod", file)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "I-period") || !strings.Contains(out, "p=2") {
		t.Errorf("missing I-period:\n%s", out)
	}
}

func TestCheckLintSection(t *testing.T) {
	// Clean program: the lint section says so explicitly.
	clean := writeFile(t, "even.tdd", evenUnit)
	out, err := run(t, "tddcheck", clean)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "lint:") || !strings.Contains(out, "clean (no findings)") {
		t.Errorf("missing clean lint section:\n%s", out)
	}

	// Dirty program: findings are listed with their codes and positions.
	dirty := writeFile(t, "dirty.tdd", "p(T+1) :- p(T), q(T).\np(0).\ne(a).\n")
	out, err = run(t, "tddcheck", dirty)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"TDL001", "TDL002", "TDL003", "1:1"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in lint section:\n%s", want, out)
		}
	}
}

func TestBenchQuick(t *testing.T) {
	out, err := run(t, "tddbench", "-quick", "E3", "E4")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"== E3:", "== E4:", "claim:", "64"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestBenchUnknownExperiment(t *testing.T) {
	out, err := run(t, "tddbench", "E99")
	if err == nil {
		t.Errorf("unknown experiment accepted:\n%s", out)
	}
}

func TestReplSession(t *testing.T) {
	// Rebuild including tddrepl (not in the shared build set).
	bin := filepath.Join(t.TempDir(), "tddrepl")
	if out, err := exec.Command("go", "build", "-o", bin, "tdd/cmd/tddrepl").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	file := writeFile(t, "even.tdd", evenUnit)
	cmd := exec.Command(bin, file)
	cmd.Stdin = strings.NewReader(`
even(4)
even(3)
even(T)
:period
:state 2
:lint
:help
:nonsense
bad query(
:quit
`)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{"yes", "no", "T=0", "T=2", "period (b=1, p=2)", "M[2]:", "clean (no findings)", "unknown command", "error:", "commands:"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in session:\n%s", want, s)
		}
	}
}

func TestStreamSession(t *testing.T) {
	// Rebuild including tddstream (not in the shared build set).
	bin := filepath.Join(t.TempDir(), "tddstream")
	if out, err := exec.Command("go", "build", "-o", bin, "tdd/cmd/tddstream").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	file := writeFile(t, "ski.tdd", skiUnit)
	cmd := exec.Command(bin, file)
	cmd.Stdin = strings.NewReader(`
% whistler is not in the database yet.
? exists T plane(T, whistler)
?? plane(1000002, W)
resort(whistler).
plane(0, whistler).
:period
:stats
plane(whoops
:quit
`)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		"?- exists T plane(T, whistler)\nno", // before the stream lands
		"+1 new, 0 dup",                      // each asserted fact reported
		"W=whistler",                         // watch query re-fired after a batch
		"W=hunter",
		"period (b=",
		"trace=", // :stats names the session trace
		"derived=",
		"batch 2: new=1", // per-batch delta stats
		"error:",         // malformed fact line is reported, not fatal
	} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in session:\n%s", want, s)
		}
	}
}

func TestExamplesEndToEnd(t *testing.T) {
	cases := []struct {
		dir   string
		wants []string
	}{
		{"quickstart", []string{"even(1000000)? true", "T=0", "certified period: (b=1, p=2)"}},
		{"skiresort", []string{"multi-separable: true", "plane on day  3662 to hunter? true"}},
		{"reachability", []string{"inflationary: true", "path(10^6, a, d)? true", "shortest path a -> e: length 2"}},
		{"counter", []string{"tractable=false", "1024"}},
		{"monitoring", []string{"alert(1000000, ingest)? true", "alice", "bob"}},
		{"functional", []string{"2047", `p("fgfg")? true`, `p("fgf" )? false`}},
		{"itinerary", []string{"p=210", "earliest day at port  : 3", "at(100000, port)? true"}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.dir, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", "tdd/examples/"+c.dir).CombinedOutput()
			if err != nil {
				t.Fatalf("%v\n%s", err, out)
			}
			for _, want := range c.wants {
				if !strings.Contains(string(out), want) {
					t.Errorf("missing %q in output:\n%s", want, out)
				}
			}
		})
	}
}

func TestQueryExplain(t *testing.T) {
	file := writeFile(t, "even.tdd", evenUnit)
	out, err := run(t, "tddquery", "-explain", file, "even(6)")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"[by even(T+2) :- even(T). with T=4]", "[database fact]"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	// Open queries still answer, with a note instead of a tree.
	out, err = run(t, "tddquery", "-explain", file, "even(T)")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "no derivation tree") {
		t.Errorf("missing note for open query:\n%s", out)
	}
}

func TestSpecSaveLoad(t *testing.T) {
	file := writeFile(t, "ski.tdd", skiUnit)
	specFile := filepath.Join(t.TempDir(), "ski.spec")
	out, err := run(t, "tddquery", "-savespec", specFile, file)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "specification written") {
		t.Errorf("missing confirmation:\n%s", out)
	}
	out, err = run(t, "tddquery", "-fromspec", specFile, "-period", "plane(1000002, hunter)", "plane(T, hunter)")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"period (b=", "?- plane(1000002, hunter)\nyes", "T="} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	if out, err := run(t, "tddquery", "-fromspec", "/nonexistent.spec", "p(0)"); err == nil {
		t.Errorf("missing spec file accepted:\n%s", out)
	}
}

func TestFddbTool(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "tddfddb")
	if out, err := exec.Command("go", "build", "-o", bin, "tdd/cmd/tddfddb").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	file := writeFile(t, "reach.fdb", "reach(f(V)) :- reach(V).\nreach(g(V)) :- reach(V).\nreach(0).\n")
	cmd := exec.Command(bin, "-depth", "4", file, "reach(f(g(0)))", "reach(f(f(f(0))))")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{`alphabet: "fg"`, "4              16", "?- reach(f(g(0)))\ntrue", "?- reach(f(f(f(0))))\ntrue"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	// Syntax error path.
	bad := writeFile(t, "bad.fdb", "p(ff(V)) :- p(V).\n")
	if out, err := exec.Command(bin, bad).CombinedOutput(); err == nil {
		t.Errorf("bad file accepted:\n%s", out)
	}
}
