package clitest

import (
	"encoding/json"
	"strings"
	"testing"
)

// dirtyUnit trips several analyzer codes on purpose: ghost is a closed
// self-recursive cycle with no base support (TDL003 unreachable rule,
// TDL202 dead component, TDL201 irrelevant under the inferred surface),
// and the stale ignore marker silences nothing (TDL203).
const dirtyUnit = `flight(T+1, X) :- flight(T, X).
ghost(T+1, X) :- ghost(T, X).
% tddlint:ignore TDL006
flight(0, jfk).
`

// TestLintSARIFShape locks the SARIF 2.1.0 wire shape end to end: a real
// tddlint binary, a dirty unit, and structural assertions on the exact
// paths code-scanning consumers dereference.
func TestLintSARIFShape(t *testing.T) {
	file := writeFile(t, "dirty.tdd", dirtyUnit)
	out, err := run(t, "tddlint", "-format", "sarif", file)
	if err != nil {
		t.Fatalf("tddlint exited nonzero (warnings should not fail without -werror): %v\n%s", err, out)
	}

	var log struct {
		Version string `json:"version"`
		Schema  string `json:"$schema"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("$schema = %q, want a sarif-2.1.0 schema URI", log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "tddlint" {
		t.Errorf("driver name = %q, want tddlint", run.Tool.Driver.Name)
	}
	if len(run.Results) == 0 {
		t.Fatal("no results for a dirty unit")
	}

	levels := map[string]bool{"error": true, "warning": true, "note": true}
	seen := make(map[string]bool)
	ruleIDs := make(map[string]bool)
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
		if r.ShortDescription.Text == "" {
			t.Errorf("rule %s has no shortDescription", r.ID)
		}
	}
	for i, r := range run.Results {
		seen[r.RuleID] = true
		if !levels[r.Level] {
			t.Errorf("result %d: level %q not a SARIF level", i, r.Level)
		}
		if r.Message.Text == "" {
			t.Errorf("result %d (%s): empty message", i, r.RuleID)
		}
		if !ruleIDs[r.RuleID] {
			t.Errorf("result %d: ruleId %s missing from driver rules", i, r.RuleID)
		}
		if len(r.Locations) == 0 {
			t.Errorf("result %d (%s): no location", i, r.RuleID)
			continue
		}
		loc := r.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI != file {
			t.Errorf("result %d: uri = %q, want %q", i, loc.ArtifactLocation.URI, file)
		}
		if loc.Region.StartLine < 1 {
			t.Errorf("result %d (%s): startLine = %d", i, r.RuleID, loc.Region.StartLine)
		}
	}
	for _, want := range []string{"TDL003", "TDL202", "TDL203"} {
		if !seen[want] {
			t.Errorf("no %s result for the dirty unit\n%s", want, out)
		}
	}
}

// TestLintFormatFlag covers the flag surface around SARIF: bad formats
// fail fast, and -json stays a working alias for -format json.
func TestLintFormatFlag(t *testing.T) {
	file := writeFile(t, "even.tdd", evenUnit)
	if out, err := run(t, "tddlint", "-format", "yaml", file); err == nil {
		t.Errorf("unknown format accepted:\n%s", out)
	} else if !strings.Contains(out, "unknown format") {
		t.Errorf("missing unknown-format message:\n%s", out)
	}
	out, err := run(t, "tddlint", "-json", file)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal([]byte(out), &m); err != nil {
		t.Fatalf("-json output not valid JSON: %v\n%s", err, out)
	}
}

// TestCheckGraph drives the dependency-graph subcommand: the rendered
// graph names every predicate, and -q reports the query's slice.
func TestCheckGraph(t *testing.T) {
	file := writeFile(t, "dirty.tdd", dirtyUnit)
	out, err := run(t, "tddcheck", "graph", file)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"dependency graph", "flight", "ghost", "BASE-UNREACHABLE"} {
		if !strings.Contains(out, want) {
			t.Errorf("graph output missing %q:\n%s", want, out)
		}
	}
	out, err = run(t, "tddcheck", "graph", "-q", "flight(4, jfk)", file)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"proper slice", "predicates: [flight]", "rules: 1 of 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("expected %q in the slice for flight(4, jfk):\n%s", want, out)
		}
	}
}
