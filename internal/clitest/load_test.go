package clitest

// End-to-end coverage of the serving-core admission surface through the
// real binaries: the sharded/admission metric families on both metrics
// surfaces of tddserve, and a short closed-loop tddload run against a
// live server producing a well-formed scenario report.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestServeAdmissionProm(t *testing.T) {
	base := startServe(t, "-shards", "4")

	status, body := postStatus(t, base+"/programs", map[string]string{"unit": evenUnit})
	if status != http.StatusCreated {
		t.Fatalf("register: status %d: %s", status, body)
	}
	var reg struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &reg); err != nil {
		t.Fatal(err)
	}
	// One coalescable ask so flight_leaders is nonzero.
	status, body = postStatus(t, base+"/programs/"+reg.ID+"/ask", map[string]string{"query": "even(1000000)"})
	if status != http.StatusOK {
		t.Fatalf("ask: status %d: %s", status, body)
	}

	// JSON surface: queue bound, per-shard breakdown, flight counters.
	var snap struct {
		QueueDepth    int64 `json:"queue_depth"`
		QueueCapacity int64 `json:"queue_capacity"`
		Shed          int64 `json:"shed_requests"`
		Coalesced     int64 `json:"coalesced_requests"`
		FlightLeaders int64 `json:"flight_leaders"`
		Shards        []struct {
			Programs int   `json:"programs"`
			Warm     int   `json:"warm"`
			Capacity int64 `json:"capacity"`
		} `json:"shards"`
	}
	if code := getJSON(t, base+"/metrics", &snap); code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	if snap.QueueCapacity <= 0 {
		t.Errorf("queue_capacity = %d, want > 0", snap.QueueCapacity)
	}
	if len(snap.Shards) != 4 {
		t.Fatalf("shards = %d snapshots, want 4 (-shards 4)", len(snap.Shards))
	}
	progs := 0
	for i, sh := range snap.Shards {
		progs += sh.Programs
		if sh.Capacity <= 0 {
			t.Errorf("shard %d capacity = %d, want > 0", i, sh.Capacity)
		}
	}
	if progs != 1 {
		t.Errorf("programs across shards = %d, want 1", progs)
	}
	if snap.FlightLeaders < 1 {
		t.Errorf("flight_leaders = %d, want >= 1 after a coalescable ask", snap.FlightLeaders)
	}
	if snap.Shed != 0 {
		t.Errorf("shed_requests = %d on an idle server, want 0", snap.Shed)
	}

	// Prometheus surface: every admission family present, with the
	// per-shard gauges labeled for all four shards and the per-route
	// shed/timeout counters labeled per route.
	resp, err := http.Get(base + "/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	buf := new(bytes.Buffer)
	buf.ReadFrom(resp.Body) //nolint:errcheck
	resp.Body.Close()
	text := buf.String()

	for _, family := range []string{
		"tddserve_shed_total",
		"tddserve_coalesced_requests_total",
		"tddserve_flight_leaders_total",
		"tddserve_queue_depth",
		"tddserve_queue_capacity",
		"tddserve_shard_inflight",
		"tddserve_shard_capacity",
		"tddserve_shard_sheds_total",
		"tddserve_shard_programs",
		"tddserve_shard_warm",
		"tddserve_route_sheds_total",
		"tddserve_route_timeouts_total",
	} {
		if !strings.Contains(text, "# HELP "+family+" ") {
			t.Errorf("/metrics.prom missing family %s", family)
		}
	}
	for _, line := range []string{
		"tddserve_shed_total 0",
		"tddserve_flight_leaders_total 1",
		"tddserve_queue_depth 0",
		`tddserve_shard_inflight{shard="0"}`,
		`tddserve_shard_inflight{shard="3"}`,
		`tddserve_route_sheds_total{route="ask"} 0`,
		`tddserve_route_timeouts_total{route="ask"} 0`,
	} {
		if !strings.Contains(text, line) {
			t.Errorf("/metrics.prom missing sample %q", line)
		}
	}
}

func TestLoadSmoke(t *testing.T) {
	base := startServe(t, "-shards", "4")
	out := filepath.Join(t.TempDir(), "bench.json")

	cmd := exec.Command(filepath.Join(binaries(t), "tddload"),
		"-url", base, "-duration", "500ms", "-clients", "4",
		"-programs", "2", "-queries", "4", "-mix", "ask=80,answers=10,wal=10",
		"-scenario", "smoke", "-out", out)
	combined, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("tddload failed: %v\n%s", err, combined)
	}

	var bench struct {
		GeneratedBy string `json:"generated_by"`
		Scenarios   map[string]struct {
			Requests        int     `json:"requests"`
			OK              int     `json:"ok"`
			TransportErrors int     `json:"transport_errors"`
			ThroughputRPS   float64 `json:"throughput_rps"`
			P99Us           int64   `json:"p99_us"`
		} `json:"scenarios"`
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &bench); err != nil {
		t.Fatalf("parsing %s: %v\n%s", out, err, data)
	}
	smoke, ok := bench.Scenarios["smoke"]
	if !ok {
		t.Fatalf("report has no \"smoke\" scenario: %s", data)
	}
	if smoke.Requests == 0 || smoke.OK == 0 {
		t.Errorf("smoke run did no work: requests=%d ok=%d", smoke.Requests, smoke.OK)
	}
	if smoke.TransportErrors != 0 {
		t.Errorf("smoke run had %d transport errors", smoke.TransportErrors)
	}
	if smoke.ThroughputRPS <= 0 || smoke.P99Us <= 0 {
		t.Errorf("smoke run reported degenerate stats: %+v", smoke)
	}
}
