package clitest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestQueryTraceFlag drives tddquery -trace and checks the EXPLAIN-style
// phase tree covers the whole pipeline: parse, validation, classify,
// period certification with the engine's fixpoint inside, spec
// construction, and the per-query answer phase.
func TestQueryTraceFlag(t *testing.T) {
	file := writeFile(t, "even.tdd", evenUnit)
	out, err := run(t, "tddquery", "-trace", file, "even(1000000)")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "?- even(1000000)\nyes") {
		t.Errorf("missing answer:\n%s", out)
	}
	for _, phase := range []string{
		"trace ", "parse", "validate", "classify",
		"certify-period", "fixpoint", "spec-construct", "answer",
	} {
		if !strings.Contains(out, phase) {
			t.Errorf("phase tree missing %q:\n%s", phase, out)
		}
	}
}

// TestServeMetricsProm scrapes GET /metrics.prom off a served workload
// and checks it parses as Prometheus text exposition: every family has
// exactly one HELP and one TYPE line before its samples, no duplicate
// family declarations, every sample line is "name{labels} value".
func TestServeMetricsProm(t *testing.T) {
	base := startServe(t)

	body, _ := json.Marshal(map[string]string{"unit": evenUnit})
	resp, err := http.Post(base+"/programs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var reg struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	body, _ = json.Marshal(map[string]string{"query": "even(4)"})
	resp, err = http.Post(base+"/programs/"+reg.ID+"/ask", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(base + "/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics.prom: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	help := map[string]bool{}
	typ := map[string]bool{}
	samples := 0
	sc := bufio.NewScanner(bytes.NewReader(raw))
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
		case strings.HasPrefix(line, "# HELP "):
			name, _, _ := strings.Cut(strings.TrimPrefix(line, "# HELP "), " ")
			if help[name] {
				t.Errorf("duplicate HELP for %s", name)
			}
			help[name] = true
		case strings.HasPrefix(line, "# TYPE "):
			name, kind, _ := strings.Cut(strings.TrimPrefix(line, "# TYPE "), " ")
			if typ[name] {
				t.Errorf("duplicate TYPE for %s", name)
			}
			if kind != "counter" && kind != "gauge" && kind != "histogram" {
				t.Errorf("TYPE %s has unknown kind %q", name, kind)
			}
			typ[name] = true
		case strings.HasPrefix(line, "#"):
			t.Errorf("unexpected comment %q", line)
		default:
			samples++
			name := line
			if i := strings.IndexAny(line, "{ "); i >= 0 {
				name = line[:i]
			}
			fam := name
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				fam = strings.TrimSuffix(fam, suf)
			}
			if !help[fam] || !typ[fam] {
				t.Errorf("sample %q lacks HELP/TYPE for %s", line, fam)
			}
			if len(strings.Fields(line)) != 2 {
				t.Errorf("malformed sample line %q", line)
			}
		}
	}
	if samples == 0 {
		t.Fatalf("no samples in exposition:\n%s", raw)
	}
	if !bytes.Contains(raw, []byte(`tddserve_route_requests_total{route="ask"} 1`)) {
		t.Errorf("ask request not counted:\n%s", raw)
	}
}

// TestServeTraceParam checks ?trace=1 end to end over a real server
// process: the response embeds the phase tree and the rule table, and
// the X-Trace-Id header matches the trace.
func TestServeTraceParam(t *testing.T) {
	base := startServe(t)

	body, _ := json.Marshal(map[string]string{"unit": evenUnit})
	resp, err := http.Post(base+"/programs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var reg struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	body, _ = json.Marshal(map[string]string{"query": "even(1000000)"})
	resp, err = http.Post(base+"/programs/"+reg.ID+"/ask?trace=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var ar struct {
		Result  bool   `json:"result"`
		TraceID string `json:"trace_id"`
		Trace   *struct {
			TraceID string            `json:"trace_id"`
			TotalUs int64             `json:"total_us"`
			Phases  []json.RawMessage `json:"phases"`
			Rules   []struct {
				Rule    string `json:"rule"`
				Firings int    `json:"firings"`
			} `json:"rules"`
		} `json:"trace"`
	}
	if err := json.Unmarshal(raw, &ar); err != nil {
		t.Fatalf("%v\n%s", err, raw)
	}
	if !ar.Result {
		t.Error("even(1000000) should hold")
	}
	if ar.Trace == nil || len(ar.Trace.Phases) == 0 {
		t.Fatalf("no trace in response:\n%s", raw)
	}
	if hdr := resp.Header.Get("X-Trace-Id"); hdr == "" || hdr != ar.TraceID {
		t.Errorf("X-Trace-Id %q vs trace_id %q", hdr, ar.TraceID)
	}
	for _, phase := range []string{"classify", "certify-period", "fixpoint", "answer"} {
		if !bytes.Contains(raw, []byte(`"`+phase+`"`)) {
			t.Errorf("trace missing phase %q:\n%s", phase, raw)
		}
	}
	if len(ar.Trace.Rules) == 0 {
		t.Errorf("trace missing rule table:\n%s", raw)
	}
}
