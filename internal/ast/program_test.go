package ast

import (
	"reflect"
	"testing"
)

func skiProgram(t *testing.T) *Program {
	t.Helper()
	rules := []Rule{
		planeRule(),
		{
			Head: TemporalAtom("plane", tvar("T", 2), Var("X")),
			Body: []Atom{
				TemporalAtom("plane", tvar("T", 0), Var("X")),
				NonTemporalAtom("resort", Var("X")),
				TemporalAtom("winter", tvar("T", 0)),
			},
		},
		{
			Head: TemporalAtom("offseason", tvar("T", 365)),
			Body: []Atom{TemporalAtom("offseason", tvar("T", 0))},
		},
	}
	p, err := NewProgram(rules)
	if err != nil {
		t.Fatalf("NewProgram: %v", err)
	}
	return p
}

func TestNewProgramSignatures(t *testing.T) {
	p := skiProgram(t)
	want := map[string]PredInfo{
		"plane":     {Name: "plane", Temporal: true, Arity: 1},
		"resort":    {Name: "resort", Temporal: false, Arity: 1},
		"offseason": {Name: "offseason", Temporal: true, Arity: 0},
		"winter":    {Name: "winter", Temporal: true, Arity: 0},
	}
	if !reflect.DeepEqual(p.Preds, want) {
		t.Errorf("Preds = %v, want %v", p.Preds, want)
	}
}

func TestNewProgramInconsistent(t *testing.T) {
	rules := []Rule{
		{Head: NonTemporalAtom("p", Var("X")), Body: []Atom{NonTemporalAtom("q", Var("X"))}},
		{Head: TemporalAtom("p", tvar("T", 0), Var("X")), Body: []Atom{TemporalAtom("q2", tvar("T", 0), Var("X"))}},
	}
	if _, err := NewProgram(rules); err == nil {
		t.Fatal("expected inconsistent-signature error")
	}
	rules2 := []Rule{
		{Head: NonTemporalAtom("p", Var("X")), Body: []Atom{NonTemporalAtom("q", Var("X"))}},
		{Head: NonTemporalAtom("p", Var("X"), Var("Y")), Body: []Atom{NonTemporalAtom("q", Var("X")), NonTemporalAtom("q", Var("Y"))}},
	}
	if _, err := NewProgram(rules2); err == nil {
		t.Fatal("expected arity-mismatch error")
	}
}

func TestDerivedAndEDB(t *testing.T) {
	p := skiProgram(t)
	if got := p.Derived(); !reflect.DeepEqual(got, []string{"offseason", "plane"}) {
		t.Errorf("Derived = %v", got)
	}
	if got := p.EDB(); !reflect.DeepEqual(got, []string{"resort", "winter"}) {
		t.Errorf("EDB = %v", got)
	}
}

func TestLookback(t *testing.T) {
	p := skiProgram(t)
	if g := p.Lookback(); g != 365 {
		t.Errorf("Lookback = %d, want 365", g)
	}
	dataOnly, err := NewProgram([]Rule{{
		Head: TemporalAtom("happy", tvar("T", 0), Var("X")),
		Body: []Atom{TemporalAtom("happy", tvar("T", 0), Var("Y")), NonTemporalAtom("friend", Var("X"), Var("Y"))},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if g := dataOnly.Lookback(); g != 1 {
		t.Errorf("data-only Lookback = %d, want 1", g)
	}
	nonTemporal, err := NewProgram([]Rule{{
		Head: NonTemporalAtom("a", Var("X")), Body: []Atom{NonTemporalAtom("b", Var("X"))},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if g := nonTemporal.Lookback(); g != 0 {
		t.Errorf("non-temporal Lookback = %d, want 0", g)
	}
}

func TestProgramClone(t *testing.T) {
	p := skiProgram(t)
	c := p.Clone()
	c.Rules[0].Head.Time.Depth = 1
	c.Preds["plane"] = PredInfo{Name: "plane", Temporal: false, Arity: 9}
	if p.Rules[0].Head.Time.Depth != 7 {
		t.Error("Clone shares rule structure")
	}
	if p.Preds["plane"].Arity != 1 {
		t.Error("Clone shares Preds map")
	}
}

func TestDatabase(t *testing.T) {
	facts := []Fact{
		{Pred: "plane", Temporal: true, Time: 0, Args: []string{"hunter"}},
		{Pred: "plane", Temporal: true, Time: 17, Args: []string{"aspen"}},
		{Pred: "resort", Args: []string{"hunter"}},
	}
	d, err := NewDatabase(facts)
	if err != nil {
		t.Fatal(err)
	}
	if d.MaxDepth() != 17 {
		t.Errorf("MaxDepth = %d, want 17", d.MaxDepth())
	}
	if d.Size() != 17 {
		t.Errorf("Size = %d, want 17 (c > n)", d.Size())
	}
	if got := d.Constants(); !reflect.DeepEqual(got, []string{"aspen", "hunter"}) {
		t.Errorf("Constants = %v", got)
	}
	want := "resort(hunter).\nplane(0, hunter).\nplane(17, aspen).\n"
	if got := d.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestDatabaseInconsistent(t *testing.T) {
	_, err := NewDatabase([]Fact{
		{Pred: "p", Temporal: true, Time: 0, Args: []string{"a"}},
		{Pred: "p", Args: []string{"a"}},
	})
	if err == nil {
		t.Fatal("expected error for temporal/non-temporal conflict")
	}
}

func TestDatabaseCheckAgainst(t *testing.T) {
	p := skiProgram(t)
	good, _ := NewDatabase([]Fact{{Pred: "plane", Temporal: true, Time: 0, Args: []string{"hunter"}}})
	if err := good.CheckAgainst(p); err != nil {
		t.Errorf("CheckAgainst(good) = %v", err)
	}
	bad, _ := NewDatabase([]Fact{{Pred: "plane", Args: []string{"hunter"}}})
	if err := bad.CheckAgainst(p); err == nil {
		t.Error("expected signature mismatch error")
	}
	// Predicates unknown to the program are allowed (pure EDB relations).
	extra, _ := NewDatabase([]Fact{{Pred: "unrelated", Args: []string{"x"}}})
	if err := extra.CheckAgainst(p); err != nil {
		t.Errorf("CheckAgainst(extra) = %v", err)
	}
}
