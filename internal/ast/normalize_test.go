package ast

import (
	"strings"
	"testing"
)

func TestNormalizeAlreadyNormal(t *testing.T) {
	p, err := NewProgram([]Rule{pathRule()})
	if err != nil {
		t.Fatal(err)
	}
	n, err := Normalize(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Rules) != 1 || !n.Rules[0].Normal() {
		t.Errorf("normalization of a normal program changed it: %v", n)
	}
}

func TestNormalizeDeepRule(t *testing.T) {
	p := skiProgram(t)
	n, err := Normalize(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range n.Rules {
		if !r.Normal() {
			t.Errorf("rule not normal after Normalize: %s", r)
		}
	}
	// The plane(T+7) rule needs delay chains for plane (and offseason) of
	// length 6; the offseason(T+365) rule needs length 364.
	var sawDelay bool
	for name := range n.Preds {
		if strings.HasPrefix(name, "del$plane$") {
			sawDelay = true
		}
	}
	if !sawDelay {
		t.Error("expected delay predicates for plane")
	}
	// 3 rewritten rules + delay chains shared per predicate: plane needs
	// delays up to 6 (from the T+7 rule), offseason up to 364 (the T+365
	// rule dominates the T+7 rule's 6), winter up to 1 (from the T+2
	// rule).
	if got, want := len(n.Rules), 3+6+364+1; got != want {
		t.Errorf("rule count after Normalize = %d, want %d", got, want)
	}
}

func TestNormalizeRejectsUnanchored(t *testing.T) {
	// Head T+2, body T+1 and nothing at depth 0: the rule only fires from
	// time 2 on, which delay predicates cannot express — shifting it to
	// p(T+1) :- q(T) would wrongly derive p(1) from q(0).
	p, err := NewProgram([]Rule{{
		Head: TemporalAtom("p", tvar("T", 2), Var("X")),
		Body: []Atom{TemporalAtom("q", tvar("T", 1), Var("X"))},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Normalize(p); err == nil {
		t.Fatal("unanchored rule normalized")
	}
}

func TestNormalizeDepthOneHighMinIsNormal(t *testing.T) {
	// All depths <= 1: already normal even though the minimum depth is 1;
	// Normalize must leave it untouched (it is exact as-is).
	p, err := NewProgram([]Rule{{
		Head: TemporalAtom("p", tvar("T", 1), Var("X")),
		Body: []Atom{TemporalAtom("q", tvar("T", 1), Var("X"))},
	}})
	if err != nil {
		t.Fatal(err)
	}
	n, err := Normalize(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Rules) != 1 || n.Rules[0].String() != "p(T+1, X) :- q(T+1, X)." {
		t.Fatalf("rules = %v", n.Rules)
	}
}

func TestNormalizeKeepsDepthHAndHMinus1Literals(t *testing.T) {
	// p(T+2,X) :- q(T,X), r(T+1,X), s(T+2,X).
	p, err := NewProgram([]Rule{{
		Head: TemporalAtom("p", tvar("T", 2), Var("X")),
		Body: []Atom{
			TemporalAtom("q", tvar("T", 0), Var("X")),
			TemporalAtom("r", tvar("T", 1), Var("X")),
			TemporalAtom("s", tvar("T", 2), Var("X")),
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	n, err := Normalize(p)
	if err != nil {
		t.Fatal(err)
	}
	var main Rule
	for _, r := range n.Rules {
		if r.Head.Pred == "p" {
			main = r
		}
	}
	want := "p(T+1, X) :- del$q$1(T, X), r(T, X), s(T+1, X)."
	if got := main.String(); got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestReduceTimeOnly(t *testing.T) {
	// p(T+1,X) :- p(T,X), r(X,W), q(T,W).   (W not in head)
	p, err := NewProgram([]Rule{{
		Head: TemporalAtom("p", tvar("T", 1), Var("X")),
		Body: []Atom{
			TemporalAtom("p", tvar("T", 0), Var("X")),
			NonTemporalAtom("r", Var("X"), Var("W")),
			TemporalAtom("q", tvar("T", 0), Var("W")),
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	red, err := ReduceTimeOnly(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(red.Rules) != 2 {
		t.Fatalf("rules after reduction: %v", red.Rules)
	}
	for _, r := range red.Rules {
		if r.TimeOnly() && !r.Reduced() {
			t.Errorf("time-only rule not reduced: %s", r)
		}
		if err := ValidateRule(r); err != nil {
			t.Errorf("reduced rule invalid: %v", err)
		}
		if err := ValidateForward(r); err != nil {
			t.Errorf("reduced rule not forward: %v", err)
		}
	}
}

func TestReduceTimeOnlyLeavesReducedAlone(t *testing.T) {
	p := skiProgram(t)
	red, err := ReduceTimeOnly(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(red.Rules) != len(p.Rules) {
		t.Errorf("reduction changed an already-reduced program: %d vs %d rules", len(red.Rules), len(p.Rules))
	}
}

func TestReduceTimeOnlyNonTemporalAux(t *testing.T) {
	// All moved literals non-temporal: the auxiliary predicate is
	// non-temporal.
	p, err := NewProgram([]Rule{{
		Head: TemporalAtom("p", tvar("T", 1), Var("X")),
		Body: []Atom{
			TemporalAtom("p", tvar("T", 0), Var("X")),
			NonTemporalAtom("r", Var("X"), Var("W")),
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	red, err := ReduceTimeOnly(p)
	if err != nil {
		t.Fatal(err)
	}
	var aux *PredInfo
	for name, info := range red.Preds {
		if strings.HasPrefix(name, "aux$") {
			i := info
			aux = &i
		}
	}
	if aux == nil {
		t.Fatal("no auxiliary predicate created")
	}
	if aux.Temporal {
		t.Errorf("auxiliary predicate should be non-temporal: %v", aux)
	}
	if aux.Arity != 1 {
		t.Errorf("auxiliary arity = %d, want 1 (just X)", aux.Arity)
	}
}
