package ast

// Subst is a two-sorted substitution: a binding for the (single) temporal
// variable of a semi-normal rule, and bindings for non-temporal variables.
// Temporal variables are bound to ground temporal terms (integers);
// non-temporal variables to constants.
type Subst struct {
	TimeVar   string
	Time      int
	HasTime   bool
	NonTempro map[string]string
}

// NewSubst returns an empty substitution.
func NewSubst() *Subst { return &Subst{NonTempro: make(map[string]string)} }

// BindTime binds the temporal variable name to instant t. It reports false
// if the variable is already bound to a different instant.
func (s *Subst) BindTime(name string, t int) bool {
	if s.HasTime {
		return s.TimeVar == name && s.Time == t
	}
	s.TimeVar, s.Time, s.HasTime = name, t, true
	return true
}

// Bind binds the non-temporal variable name to constant c. It reports
// false if the variable is already bound to a different constant.
func (s *Subst) Bind(name, c string) bool {
	if prev, ok := s.NonTempro[name]; ok {
		return prev == c
	}
	s.NonTempro[name] = c
	return true
}

// ApplyAtom instantiates atom a under the substitution. It reports ok=false
// if a variable in a is unbound (the result would not be ground).
func (s *Subst) ApplyAtom(a Atom) (Fact, bool) {
	f := Fact{Pred: a.Pred}
	if a.Time != nil {
		f.Temporal = true
		if a.Time.Ground() {
			f.Time = a.Time.Depth
		} else {
			if !s.HasTime || s.TimeVar != a.Time.Var {
				return Fact{}, false
			}
			f.Time = s.Time + a.Time.Depth
		}
	}
	f.Args = make([]string, len(a.Args))
	for i, sym := range a.Args {
		if !sym.IsVar {
			f.Args[i] = sym.Name
			continue
		}
		c, ok := s.NonTempro[sym.Name]
		if !ok {
			return Fact{}, false
		}
		f.Args[i] = c
	}
	return f, true
}

// MatchArgs unifies the non-temporal argument pattern args against the
// ground tuple, extending the substitution. It reports false (leaving the
// substitution possibly partially extended; callers use a fresh copy or
// checkpoint) on mismatch.
func (s *Subst) MatchArgs(args []Symbol, tuple []string) bool {
	if len(args) != len(tuple) {
		return false
	}
	for i, sym := range args {
		if sym.IsVar {
			if !s.Bind(sym.Name, tuple[i]) {
				return false
			}
			continue
		}
		if sym.Name != tuple[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the substitution.
func (s *Subst) Clone() *Subst {
	c := &Subst{TimeVar: s.TimeVar, Time: s.Time, HasTime: s.HasTime,
		NonTempro: make(map[string]string, len(s.NonTempro))}
	for k, v := range s.NonTempro {
		c.NonTempro[k] = v
	}
	return c
}

// RenameApart returns a copy of rule r with every variable prefixed so that
// it shares no variables with any other rule. Used by transformations that
// splice rule bodies together.
func RenameApart(r Rule, prefix string) Rule {
	c := r.Clone()
	rename := func(a *Atom) {
		if a.Time != nil && !a.Time.Ground() {
			a.Time.Var = prefix + a.Time.Var
		}
		for i := range a.Args {
			if a.Args[i].IsVar {
				a.Args[i].Name = prefix + a.Args[i].Name
			}
		}
	}
	rename(&c.Head)
	for i := range c.Body {
		rename(&c.Body[i])
	}
	return c
}
