package ast

import (
	"errors"
	"fmt"
)

// Validation errors. Callers can match with errors.Is.
var (
	ErrNotRangeRestricted = errors.New("rule is not range-restricted")
	ErrNotSemiNormal      = errors.New("rule is not semi-normal (more than one temporal variable)")
	ErrNotForward         = errors.New("rule is not forward (a body literal is temporally deeper than the head)")
	ErrGroundTemporal     = errors.New("rule contains a ground temporal term (ground facts belong in the database)")
	ErrSortConflict       = errors.New("variable used in both temporal and non-temporal positions")
)

// posSuffix renders " at line L:C" for rules that carry a parser
// position, so validation errors are clickable; programmatically built
// rules (zero Pos) keep the old message shape.
func posSuffix(p Pos) string {
	if !p.Known() {
		return ""
	}
	return " at line " + p.String()
}

// ValidateRule checks the standing assumptions of the paper for a single
// rule:
//
//   - range restriction (Section 3.3): every variable in the head appears
//     in the body — required for relational specifications to be well
//     defined (for unit clauses this means the rule must be ground, which
//     ValidateProgram separately rejects: ground facts belong in the
//     database);
//   - semi-normality: at most one temporal variable;
//   - no ground temporal terms inside rules (Section 3.1 assumes rules
//     contain no ground terms);
//   - sort discipline: no name is used both as a temporal and as a
//     non-temporal variable.
func ValidateRule(r Rule) error {
	if !r.SemiNormal() {
		return fmt.Errorf("%w: %s%s", ErrNotSemiNormal, r, posSuffix(r.Pos))
	}
	for _, a := range r.Atoms() {
		if a.Time != nil && a.Time.Ground() {
			return fmt.Errorf("%w: %s%s", ErrGroundTemporal, r, posSuffix(r.Pos))
		}
	}
	// Sort discipline.
	tvars := make(map[string]bool)
	for _, a := range r.Atoms() {
		if a.Time != nil && a.Time.Var != "" {
			tvars[a.Time.Var] = true
		}
	}
	for _, a := range r.Atoms() {
		for _, s := range a.Args {
			if s.IsVar && tvars[s.Name] {
				return fmt.Errorf("%w: %s in %s%s", ErrSortConflict, s.Name, r, posSuffix(r.Pos))
			}
		}
	}
	// Range restriction.
	bodyVars := make(map[string]bool)
	var bodyHasTimeVar bool
	for _, a := range r.Body {
		if a.Time != nil && a.Time.Var != "" {
			bodyHasTimeVar = true
		}
		for _, s := range a.Args {
			if s.IsVar {
				bodyVars[s.Name] = true
			}
		}
	}
	if r.Head.Time != nil && r.Head.Time.Var != "" && !bodyHasTimeVar {
		return fmt.Errorf("%w: temporal variable %s of head not in body: %s%s", ErrNotRangeRestricted, r.Head.Time.Var, r, posSuffix(r.Pos))
	}
	for _, s := range r.Head.Args {
		if s.IsVar && !bodyVars[s.Name] {
			return fmt.Errorf("%w: variable %s of head not in body: %s%s", ErrNotRangeRestricted, s.Name, r, posSuffix(r.Pos))
		}
	}
	return nil
}

// ValidateForward checks that the rule is forward: after shifting the
// minimum temporal depth to zero, the head's temporal depth is at least
// every body literal's. The bottom-up engine evaluates states in ascending
// time order, which is sound exactly for forward rule sets (facts at time t
// depend only on facts at times <= t); see DESIGN.md.
//
// A rule whose head is non-temporal is forward regardless of body depths
// (the derived fact is timeless and the engine closes non-temporal
// consequences in an outer fixpoint).
func ValidateForward(r Rule) error {
	if r.Head.Time == nil || r.Head.Time.Ground() {
		return nil
	}
	s := r.ShiftNormalize()
	h := s.Head.Time.Depth
	for _, a := range s.Body {
		if a.Time != nil && !a.Time.Ground() && a.Time.Depth > h {
			return fmt.Errorf("%w: %s%s", ErrNotForward, r, posSuffix(r.Pos))
		}
	}
	return nil
}

// ValidateProgram validates all rules of a program and the consistency of
// its predicate signatures (the latter is established at construction; this
// re-checks after transformations).
func ValidateProgram(p *Program) error {
	for _, r := range p.Rules {
		if len(r.Body) == 0 {
			return fmt.Errorf("ast: unit clause %s: ground facts belong in the database", r)
		}
		if err := ValidateRule(r); err != nil {
			return err
		}
		if err := ValidateForward(r); err != nil {
			return err
		}
	}
	// Re-infer signatures to catch inconsistencies introduced by manual
	// rule edits.
	fresh, err := NewProgram(p.Rules)
	if err != nil {
		return err
	}
	p.Preds = fresh.Preds
	return nil
}
