package ast

import (
	"strings"
)

// Rule is a temporal Horn rule Head :- Body[0], ..., Body[n-1].
// A rule with an empty body is a (possibly non-ground) unit clause; the
// paper confines ground unit clauses to the database, which the validator
// enforces.
type Rule struct {
	Head Atom
	Body []Atom

	// Pos is the source position of the clause (its head predicate), when
	// the rule came from the parser. Diagnostics only; structural helpers
	// ignore it.
	Pos Pos
}

// Clone returns a deep copy of the rule.
func (r Rule) Clone() Rule {
	c := Rule{Head: r.Head.Clone(), Pos: r.Pos}
	c.Body = make([]Atom, len(r.Body))
	for i, a := range r.Body {
		c.Body[i] = a.Clone()
	}
	return c
}

func (r Rule) String() string {
	var b strings.Builder
	b.WriteString(r.Head.String())
	if len(r.Body) > 0 {
		b.WriteString(" :- ")
		for i, a := range r.Body {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.String())
		}
	}
	b.WriteByte('.')
	return b.String()
}

// Atoms yields the head followed by the body atoms.
func (r Rule) Atoms() []Atom {
	out := make([]Atom, 0, 1+len(r.Body))
	out = append(out, r.Head)
	out = append(out, r.Body...)
	return out
}

// TemporalVars returns the distinct temporal variable names in the rule in
// order of first occurrence.
func (r Rule) TemporalVars() []string {
	var out []string
	seen := make(map[string]bool)
	for _, a := range r.Atoms() {
		if a.Time != nil && a.Time.Var != "" && !seen[a.Time.Var] {
			seen[a.Time.Var] = true
			out = append(out, a.Time.Var)
		}
	}
	return out
}

// SemiNormal reports whether the rule is semi-normal: it contains at most
// one temporal variable, and that variable occurs only as (part of) the
// temporal argument of literals. The second half holds by construction in
// this AST — the parser sorts variables — so the check reduces to counting
// temporal variables.
func (r Rule) SemiNormal() bool { return len(r.TemporalVars()) <= 1 }

// Normal reports whether the rule is normal: semi-normal and every
// non-ground temporal term has depth at most 1.
func (r Rule) Normal() bool {
	if !r.SemiNormal() {
		return false
	}
	for _, a := range r.Atoms() {
		if a.Time != nil && !a.Time.Ground() && a.Time.Depth > 1 {
			return false
		}
	}
	return true
}

// MinDepth returns the minimum temporal depth over the rule's non-ground
// temporal terms, or -1 if the rule has none.
func (r Rule) MinDepth() int {
	min := -1
	for _, a := range r.Atoms() {
		if a.Time != nil && !a.Time.Ground() {
			if min == -1 || a.Time.Depth < min {
				min = a.Time.Depth
			}
		}
	}
	return min
}

// MaxDepth returns the maximum temporal depth over the rule's non-ground
// temporal terms, or -1 if the rule has none.
func (r Rule) MaxDepth() int {
	max := -1
	for _, a := range r.Atoms() {
		if a.Time != nil && !a.Time.Ground() && a.Time.Depth > max {
			max = a.Time.Depth
		}
	}
	return max
}

// ShiftNormalize returns a copy of the rule with all temporal depths
// shifted so the minimum depth is zero.
//
// CAUTION: this is a structural helper for relative-depth analyses
// (forwardness, lookback/lag computation), NOT a semantic equivalence.
// The temporal variable ranges over 0,1,2,..., so p(T+3) :- q(T+1) has no
// instance with head p(2), while the shifted p(T+2) :- q(T) does; the
// evaluation engines therefore compile rules with their original depths.
func (r Rule) ShiftNormalize() Rule {
	min := r.MinDepth()
	if min <= 0 {
		return r.Clone()
	}
	c := r.Clone()
	for i := range c.Body {
		if c.Body[i].Time != nil && !c.Body[i].Time.Ground() {
			*c.Body[i].Time = c.Body[i].Time.Shift(-min)
		}
	}
	if c.Head.Time != nil && !c.Head.Time.Ground() {
		*c.Head.Time = c.Head.Time.Shift(-min)
	}
	return c
}

// Recursive reports whether the head predicate also occurs in the body.
func (r Rule) Recursive() bool {
	for _, a := range r.Body {
		if a.Pred == r.Head.Pred {
			return true
		}
	}
	return false
}

// TimeOnly reports whether the rule is time-only in the sense of Section 6:
// it is recursive and the non-temporal arguments in all occurrences of the
// recursive (head) predicate are identical.
func (r Rule) TimeOnly() bool {
	if !r.Recursive() {
		return false
	}
	for _, a := range r.Body {
		if a.Pred != r.Head.Pred {
			continue
		}
		if len(a.Args) != len(r.Head.Args) {
			return false
		}
		for i := range a.Args {
			if a.Args[i] != r.Head.Args[i] {
				return false
			}
		}
	}
	return true
}

// DataOnly reports whether the rule is data-only in the sense of Section 6:
// it is recursive and the temporal argument in all temporal literals is
// identical (same variable, same depth).
func (r Rule) DataOnly() bool {
	if !r.Recursive() {
		return false
	}
	var seen *TemporalTerm
	for _, a := range r.Atoms() {
		if a.Time == nil {
			continue
		}
		if seen == nil {
			t := *a.Time
			seen = &t
			continue
		}
		if *a.Time != *seen {
			return false
		}
	}
	return true
}

// Reduced reports whether a time-only rule is reduced: every non-temporal
// variable that appears in its body also appears in its head. (Constants
// in the body do not affect reducedness.)
func (r Rule) Reduced() bool {
	head := make(map[string]bool)
	for _, s := range r.Head.Args {
		if s.IsVar {
			head[s.Name] = true
		}
	}
	for _, a := range r.Body {
		for _, s := range a.Args {
			if s.IsVar && !head[s.Name] {
				return false
			}
		}
	}
	return true
}
