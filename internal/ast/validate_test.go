package ast

import (
	"errors"
	"testing"
)

func TestValidateRuleAccepts(t *testing.T) {
	for _, r := range []Rule{planeRule(), pathRule()} {
		if err := ValidateRule(r); err != nil {
			t.Errorf("ValidateRule(%s) = %v", r, err)
		}
	}
}

func TestValidateRuleRangeRestriction(t *testing.T) {
	r := Rule{
		Head: NonTemporalAtom("p", Var("X"), Var("Y")),
		Body: []Atom{NonTemporalAtom("q", Var("X"))},
	}
	if err := ValidateRule(r); !errors.Is(err, ErrNotRangeRestricted) {
		t.Errorf("err = %v, want ErrNotRangeRestricted", err)
	}
	// Temporal head variable must also appear in the body.
	r2 := Rule{
		Head: TemporalAtom("p", tvar("T", 1), Var("X")),
		Body: []Atom{NonTemporalAtom("q", Var("X"))},
	}
	if err := ValidateRule(r2); !errors.Is(err, ErrNotRangeRestricted) {
		t.Errorf("err = %v, want ErrNotRangeRestricted", err)
	}
}

func TestValidateRuleSemiNormal(t *testing.T) {
	r := Rule{
		Head: TemporalAtom("p", tvar("T", 0), Var("X")),
		Body: []Atom{TemporalAtom("q", tvar("S", 0), Var("X")), TemporalAtom("r", tvar("T", 0), Var("X"))},
	}
	if err := ValidateRule(r); !errors.Is(err, ErrNotSemiNormal) {
		t.Errorf("err = %v, want ErrNotSemiNormal", err)
	}
}

func TestValidateRuleGroundTemporal(t *testing.T) {
	r := Rule{
		Head: TemporalAtom("p", TemporalTerm{Depth: 3}, Var("X")),
		Body: []Atom{NonTemporalAtom("q", Var("X"))},
	}
	if err := ValidateRule(r); !errors.Is(err, ErrGroundTemporal) {
		t.Errorf("err = %v, want ErrGroundTemporal", err)
	}
}

func TestValidateRuleSortConflict(t *testing.T) {
	r := Rule{
		Head: TemporalAtom("p", tvar("T", 1)),
		Body: []Atom{TemporalAtom("q", tvar("T", 0)), NonTemporalAtom("r", Var("T"))},
	}
	if err := ValidateRule(r); !errors.Is(err, ErrSortConflict) {
		t.Errorf("err = %v, want ErrSortConflict", err)
	}
}

func TestValidateForward(t *testing.T) {
	if err := ValidateForward(planeRule()); err != nil {
		t.Errorf("plane rule should be forward: %v", err)
	}
	backward := Rule{
		Head: TemporalAtom("p", tvar("T", 0), Var("X")),
		Body: []Atom{TemporalAtom("q", tvar("T", 5), Var("X"))},
	}
	if err := ValidateForward(backward); !errors.Is(err, ErrNotForward) {
		t.Errorf("err = %v, want ErrNotForward", err)
	}
	// Shift-normalization applies before the check: head at T+3, body at
	// T+1 and T+3 is forward.
	ok := Rule{
		Head: TemporalAtom("p", tvar("T", 3), Var("X")),
		Body: []Atom{TemporalAtom("q", tvar("T", 1), Var("X")), TemporalAtom("r", tvar("T", 3), Var("X"))},
	}
	if err := ValidateForward(ok); err != nil {
		t.Errorf("shifted rule should be forward: %v", err)
	}
	// Non-temporal heads are always forward.
	nt := Rule{
		Head: NonTemporalAtom("ever", Var("X")),
		Body: []Atom{TemporalAtom("p", tvar("T", 0), Var("X"))},
	}
	if err := ValidateForward(nt); err != nil {
		t.Errorf("non-temporal-head rule should be forward: %v", err)
	}
}

func TestValidateProgram(t *testing.T) {
	p := skiProgram(t)
	if err := ValidateProgram(p); err != nil {
		t.Fatalf("ValidateProgram(ski) = %v", err)
	}
	unit, err := NewProgram([]Rule{{Head: NonTemporalAtom("p", Const("a"))}})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateProgram(unit); err == nil {
		t.Error("expected unit-clause rejection")
	}
}
