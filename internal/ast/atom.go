package ast

import (
	"sort"
	"strings"
)

// Atom is a temporal or non-temporal atom. For a temporal atom, Time is
// non-nil and holds the temporal argument (which the language confines to
// one distinguished position, rendered first); Args holds the non-temporal
// arguments. For a non-temporal atom, Time is nil.
type Atom struct {
	Pred string
	Time *TemporalTerm
	Args []Symbol

	// Pos is the source position of the atom's predicate symbol, when the
	// atom came from the parser. It is carried for diagnostics only and is
	// ignored by Equal.
	Pos Pos
}

// TemporalAtom constructs a temporal atom P(time, args...).
func TemporalAtom(pred string, time TemporalTerm, args ...Symbol) Atom {
	t := time
	return Atom{Pred: pred, Time: &t, Args: args}
}

// NonTemporalAtom constructs a non-temporal atom R(args...).
func NonTemporalAtom(pred string, args ...Symbol) Atom {
	return Atom{Pred: pred, Args: args}
}

// Temporal reports whether the atom has a temporal argument.
func (a Atom) Temporal() bool { return a.Time != nil }

// Ground reports whether the atom contains no variables.
func (a Atom) Ground() bool {
	if a.Time != nil && !a.Time.Ground() {
		return false
	}
	for _, s := range a.Args {
		if s.IsVar {
			return false
		}
	}
	return true
}

// Depth returns the depth of the atom's temporal term, or -1 for a
// non-temporal atom.
func (a Atom) Depth() int {
	if a.Time == nil {
		return -1
	}
	return a.Time.Depth
}

// Clone returns a deep copy of the atom.
func (a Atom) Clone() Atom {
	c := Atom{Pred: a.Pred, Pos: a.Pos}
	if a.Time != nil {
		t := *a.Time
		c.Time = &t
	}
	c.Args = append([]Symbol(nil), a.Args...)
	return c
}

// Equal reports structural equality of two atoms.
func (a Atom) Equal(b Atom) bool {
	if a.Pred != b.Pred || (a.Time == nil) != (b.Time == nil) || len(a.Args) != len(b.Args) {
		return false
	}
	if a.Time != nil && *a.Time != *b.Time {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}

func (a Atom) String() string {
	var b strings.Builder
	b.WriteString(a.Pred)
	if a.Time == nil && len(a.Args) == 0 {
		return b.String()
	}
	b.WriteByte('(')
	first := true
	if a.Time != nil {
		b.WriteString(a.Time.String())
		first = false
	}
	for _, s := range a.Args {
		if !first {
			b.WriteString(", ")
		}
		b.WriteString(s.String())
		first = false
	}
	b.WriteByte(')')
	return b.String()
}

// Vars returns the set of variable names occurring in the atom, split into
// the temporal variable (empty string if none) and the non-temporal
// variable names in order of first occurrence.
func (a Atom) Vars() (temporal string, nonTemporal []string) {
	if a.Time != nil {
		temporal = a.Time.Var
	}
	seen := make(map[string]bool)
	for _, s := range a.Args {
		if s.IsVar && !seen[s.Name] {
			seen[s.Name] = true
			nonTemporal = append(nonTemporal, s.Name)
		}
	}
	return temporal, nonTemporal
}

// Fact is a ground atom as stored in a temporal database: either a temporal
// tuple P(k, c1..cn) or a non-temporal tuple R(c1..cn).
type Fact struct {
	Pred     string
	Temporal bool
	Time     int // meaningful only when Temporal
	Args     []string
}

// FactOf converts a ground atom to a Fact. It panics if the atom is not
// ground; use Atom.Ground to check first.
func FactOf(a Atom) Fact {
	if !a.Ground() {
		panic("ast: FactOf on non-ground atom " + a.String())
	}
	f := Fact{Pred: a.Pred}
	if a.Time != nil {
		f.Temporal = true
		f.Time = a.Time.Depth
	}
	f.Args = make([]string, len(a.Args))
	for i, s := range a.Args {
		f.Args[i] = s.Name
	}
	return f
}

// Atom converts the fact back to a ground atom.
func (f Fact) Atom() Atom {
	a := Atom{Pred: f.Pred}
	if f.Temporal {
		a.Time = &TemporalTerm{Depth: f.Time}
	}
	a.Args = make([]Symbol, len(f.Args))
	for i, c := range f.Args {
		a.Args[i] = Const(c)
	}
	return a
}

func (f Fact) String() string { return f.Atom().String() }

// SortFacts orders facts deterministically: non-temporal before temporal,
// then by predicate, time, and arguments. It is used by pretty-printers and
// tests that need stable output.
func SortFacts(fs []Fact) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Temporal != b.Temporal {
			return !a.Temporal
		}
		if a.Pred != b.Pred {
			return a.Pred < b.Pred
		}
		if a.Temporal && a.Time != b.Time {
			return a.Time < b.Time
		}
		if len(a.Args) != len(b.Args) {
			return len(a.Args) < len(b.Args)
		}
		for k := range a.Args {
			if a.Args[k] != b.Args[k] {
				return a.Args[k] < b.Args[k]
			}
		}
		return false
	})
}
