// Package ast defines the abstract syntax of temporal deductive databases
// (TDDs) as introduced by Chomicki (PODS 1990): Datalog extended with a
// single unary function symbol +1 that may appear only in one distinguished
// (temporal) argument of each temporal predicate.
//
// The syntax has two disjoint sorts of terms:
//
//   - temporal terms, built from the unique temporal constant 0, temporal
//     variables, and the postfix successor +1 (so every temporal term is
//     either the integer k, i.e. 0+1+...+1, or V+k for a temporal variable V);
//   - non-temporal terms, which are database constants or non-temporal
//     variables (no function symbols).
//
// A temporal atom is P(v, x1, ..., xn) where v is a temporal term; a
// non-temporal atom is R(x1, ..., xn). Rules are Horn clauses over these
// atoms; a database is a finite set of ground atoms.
package ast

import (
	"fmt"
	"strconv"
	"strings"
)

// TemporalTerm is a temporal term: either the ground term k (Var == "")
// or the term V+k for a temporal variable V (Var != ""). Depth is k and is
// always non-negative; the ground term 0 is {Var: "", Depth: 0}.
type TemporalTerm struct {
	Var   string
	Depth int
}

// Ground reports whether the term contains no variable.
func (t TemporalTerm) Ground() bool { return t.Var == "" }

// Shift returns the term with its depth increased by d. Shifting below
// zero panics; callers must keep depths non-negative (the Herbrand universe
// of the temporal sort has no negative elements).
func (t TemporalTerm) Shift(d int) TemporalTerm {
	if t.Depth+d < 0 {
		panic(fmt.Sprintf("ast: temporal term %v shifted to negative depth", t))
	}
	return TemporalTerm{Var: t.Var, Depth: t.Depth + d}
}

func (t TemporalTerm) String() string {
	if t.Var == "" {
		return strconv.Itoa(t.Depth)
	}
	if t.Depth == 0 {
		return t.Var
	}
	return t.Var + "+" + strconv.Itoa(t.Depth)
}

// Symbol is a non-temporal term: a database constant or a non-temporal
// variable. Following Prolog convention, variables begin with an upper-case
// letter or underscore; constants begin with a lower-case letter, a digit,
// or are quoted.
type Symbol struct {
	Name  string
	IsVar bool
}

// Const returns a constant symbol.
func Const(name string) Symbol { return Symbol{Name: name} }

// Var returns a variable symbol.
func Var(name string) Symbol { return Symbol{Name: name, IsVar: true} }

func (s Symbol) String() string {
	if s.IsVar {
		return s.Name
	}
	return quoteConst(s.Name)
}

// quoteConst renders a constant, quoting it when it would not scan as a
// plain constant token.
func quoteConst(name string) string {
	if name == "" {
		return `''`
	}
	plain := true
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z':
		case r >= '0' && r <= '9':
		case r == '_':
		case i > 0 && r >= 'A' && r <= 'Z':
		default:
			plain = false
		}
		if !plain {
			break
		}
	}
	if c := name[0]; c >= 'A' && c <= 'Z' || c == '_' {
		plain = false
	}
	if plain {
		return name
	}
	var b strings.Builder
	b.WriteByte('\'')
	for _, r := range name {
		if r == '\'' || r == '\\' {
			b.WriteByte('\\')
		}
		b.WriteRune(r)
	}
	b.WriteByte('\'')
	return b.String()
}
