package ast

import (
	"testing"
	"testing/quick"
)

func TestTemporalTermString(t *testing.T) {
	cases := []struct {
		term TemporalTerm
		want string
	}{
		{TemporalTerm{}, "0"},
		{TemporalTerm{Depth: 7}, "7"},
		{TemporalTerm{Var: "T"}, "T"},
		{TemporalTerm{Var: "T", Depth: 3}, "T+3"},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.term, got, c.want)
		}
	}
}

func TestTemporalTermGroundAndShift(t *testing.T) {
	g := TemporalTerm{Depth: 2}
	if !g.Ground() {
		t.Errorf("ground term reported non-ground")
	}
	v := TemporalTerm{Var: "T", Depth: 2}
	if v.Ground() {
		t.Errorf("variable term reported ground")
	}
	if got := v.Shift(3); got.Depth != 5 || got.Var != "T" {
		t.Errorf("Shift(3) = %v", got)
	}
	if got := v.Shift(-2); got.Depth != 0 {
		t.Errorf("Shift(-2) = %v", got)
	}
}

func TestTemporalTermShiftPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative depth")
		}
	}()
	TemporalTerm{Var: "T", Depth: 1}.Shift(-2)
}

func TestSymbolString(t *testing.T) {
	cases := []struct {
		sym  Symbol
		want string
	}{
		{Var("X"), "X"},
		{Const("hunter"), "hunter"},
		{Const("a_b1"), "a_b1"},
		{Const("Hunter"), "'Hunter'"},
		{Const("new york"), "'new york'"},
		{Const("it's"), `'it\'s'`},
		{Const(""), "''"},
		{Const("12/25/89"), "'12/25/89'"},
	}
	for _, c := range cases {
		if got := c.sym.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.sym, got, c.want)
		}
	}
}

// Property: shifting by +d then -d is the identity on non-negative depths.
func TestShiftRoundTrip(t *testing.T) {
	f := func(depth uint8, d uint8) bool {
		term := TemporalTerm{Var: "T", Depth: int(depth)}
		return term.Shift(int(d)).Shift(-int(d)) == term
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
