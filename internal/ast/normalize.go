package ast

import (
	"fmt"
)

// Normalize transforms a validated forward program into an equivalent
// normal program: every rule is semi-normal and every non-ground temporal
// term has depth at most 1. Deeper references are compiled into chains of
// "delay" predicates del$q$j with
//
//	del$q$1(T+1, x) :- q(T, x).
//	del$q$j(T+1, x) :- del$q$(j-1)(T, x).
//
// so that del$q$j(t, x) holds iff q(t-j, x) holds (and t >= j). A rule with
// head depth h >= 2 (after shift-normalization) is rewritten with its head
// at S+1 and each body literal q(T+d, x) replaced by del$q$(h-1-d)(S, x)
// (or q(S, x) / q(S+1, x) for d = h-1 / h). This is the normalization of
// [5]; note that it introduces mutual recursion through the delay chain, so
// multi-separability must be checked on the semi-normal form (Section 6).
//
// The least models agree on all original predicates: the delay predicates
// are fresh and the delayed rule fires at exactly the instants the original
// did (the depth-0 body literal forces S >= h-1).
func Normalize(p *Program) (*Program, error) {
	var out []Rule
	// delays[pred] is the largest delay chain built for pred so far.
	delays := make(map[string]int)

	needDelay := func(pred string, j int) string {
		if j <= 0 {
			return pred
		}
		if delays[pred] < j {
			delays[pred] = j
		}
		return delayName(pred, j)
	}

	for _, r := range p.Rules {
		if r.Normal() {
			out = append(out, r.Clone())
			continue
		}
		s := r.Clone()
		h := -1
		if s.Head.Time != nil && !s.Head.Time.Ground() {
			h = s.Head.Time.Depth
		}
		if h <= 1 {
			// Non-temporal or depth<=1 head with a deep body literal would
			// be non-forward; validation rejects it before we get here.
			return nil, fmt.Errorf("ast: cannot normalize non-forward rule %s", r)
		}
		// The transformation is exact only for anchored rules (some body
		// literal at depth 0): the deepest delay then reproduces the
		// original enabling time T >= 0. An unanchored rule like
		// p(T+5) :- q(T+3) fires only from time 5 on, which no
		// combination of delay predicates can express without guard
		// facts; see DESIGN.md.
		if s.MinDepth() != 0 {
			return nil, fmt.Errorf("ast: cannot normalize unanchored rule %s (no body literal at depth 0)", r)
		}
		nr := Rule{Head: s.Head.Clone()}
		nr.Head.Time.Depth = 1
		for _, a := range s.Body {
			if a.Time == nil || a.Time.Ground() {
				nr.Body = append(nr.Body, a.Clone())
				continue
			}
			d := a.Time.Depth
			switch {
			case d == h:
				b := a.Clone()
				b.Time.Depth = 1
				nr.Body = append(nr.Body, b)
			case d == h-1:
				b := a.Clone()
				b.Time.Depth = 0
				nr.Body = append(nr.Body, b)
			default:
				j := h - 1 - d
				b := a.Clone()
				b.Pred = needDelay(a.Pred, j)
				b.Time.Depth = 0
				nr.Body = append(nr.Body, b)
			}
		}
		out = append(out, nr)
	}

	// Emit the delay chains.
	for pred, maxJ := range delays {
		info, ok := p.Preds[pred]
		if !ok {
			return nil, fmt.Errorf("ast: delay chain for unknown predicate %s", pred)
		}
		args := make([]Symbol, info.Arity)
		for i := range args {
			args[i] = Var(fmt.Sprintf("X%d", i))
		}
		for j := 1; j <= maxJ; j++ {
			src := pred
			if j > 1 {
				src = delayName(pred, j-1)
			}
			r := Rule{
				Head: TemporalAtom(delayName(pred, j), TemporalTerm{Var: "T", Depth: 1}, args...),
				Body: []Atom{TemporalAtom(src, TemporalTerm{Var: "T"}, args...)},
			}
			out = append(out, r)
		}
	}
	np, err := NewProgram(out)
	if err != nil {
		return nil, err
	}
	return np, ValidateProgram(np)
}

func delayName(pred string, j int) string { return fmt.Sprintf("del$%s$%d", pred, j) }

// freshNamer returns a generator of predicate names not used by p.
func freshNamer(p *Program) func(base string) string {
	used := make(map[string]bool, len(p.Preds))
	for name := range p.Preds {
		used[name] = true
	}
	n := 0
	return func(base string) string {
		for {
			name := fmt.Sprintf("%s$%d", base, n)
			n++
			if !used[name] {
				used[name] = true
				return name
			}
		}
	}
}

// ReduceTimeOnly rewrites every time-only rule of p into reduced form
// (every non-temporal body variable occurs in the head) by moving the
// non-recursive body literals that mention extra variables into a fresh
// auxiliary predicate, as sketched in Section 6 ("the reduced form may be
// obtained through the introduction of additional predicates and additional
// non-recursive rules"). The transformation preserves multi-separability
// and the least model restricted to the original predicates.
func ReduceTimeOnly(p *Program) (*Program, error) {
	fresh := freshNamer(p)
	var out []Rule
	for _, r := range p.Rules {
		if !r.TimeOnly() || r.Reduced() {
			out = append(out, r.Clone())
			continue
		}
		headVars := make(map[string]bool)
		for _, s := range r.Head.Args {
			if s.IsVar {
				headVars[s.Name] = true
			}
		}
		// Split the body: recursive literals stay; non-recursive literals
		// that mention a non-head variable move into the auxiliary
		// predicate, together with any literals sharing variables with
		// them (to keep the join semantics intact we move all
		// non-recursive literals — simpler and still equivalent).
		var kept, moved []Atom
		for _, a := range r.Body {
			if a.Pred == r.Head.Pred {
				kept = append(kept, a.Clone())
				continue
			}
			moved = append(moved, a.Clone())
		}
		if len(moved) == 0 {
			// Reduced() was false only because of a recursive literal?
			// Cannot happen: recursive literals share the head's args.
			out = append(out, r.Clone())
			continue
		}
		// Auxiliary predicate arguments: moved-literal variables that the
		// head mentions.
		var auxArgs []Symbol
		seen := make(map[string]bool)
		movedTemporal := false
		// The auxiliary head sits at the maximum depth among the moved
		// literals so the auxiliary rule itself remains forward.
		maxMovedDepth := 0
		for _, a := range moved {
			if a.Time != nil && !a.Time.Ground() {
				movedTemporal = true
				if a.Time.Depth > maxMovedDepth {
					maxMovedDepth = a.Time.Depth
				}
			}
			for _, s := range a.Args {
				if s.IsVar && headVars[s.Name] && !seen[s.Name] {
					seen[s.Name] = true
					auxArgs = append(auxArgs, s)
				}
			}
		}
		auxName := fresh("aux$" + r.Head.Pred)
		var auxHead Atom
		var callAtom Atom
		if movedTemporal {
			tv := r.TemporalVars()[0]
			auxHead = TemporalAtom(auxName, TemporalTerm{Var: tv, Depth: maxMovedDepth}, auxArgs...)
			callAtom = TemporalAtom(auxName, TemporalTerm{Var: tv, Depth: maxMovedDepth}, auxArgs...)
		} else {
			auxHead = NonTemporalAtom(auxName, auxArgs...)
			callAtom = NonTemporalAtom(auxName, auxArgs...)
		}
		auxRule := Rule{Head: auxHead, Body: moved}
		newRule := Rule{Head: r.Head.Clone(), Body: append(kept, callAtom)}
		out = append(out, newRule, auxRule)
	}
	np, err := NewProgram(out)
	if err != nil {
		return nil, err
	}
	return np, nil
}
