package ast

import "strconv"

// Pos is a source position (1-based line and column) carried from the
// parser so validators, classifiers, and the linter can point at the
// clause or atom a diagnostic concerns. The zero value means "unknown"
// (e.g. for programmatically constructed rules) and renders empty.
//
// Pos is deliberately excluded from structural equality: two atoms or
// rules that differ only in where they were written are the same object-
// language term.
type Pos struct {
	Line int
	Col  int
}

// Known reports whether the position was actually set by a parser.
func (p Pos) Known() bool { return p.Line > 0 }

// String renders "line:col" ("line" alone if the column is unknown), or
// "" for the zero value, matching the file:line:col convention used by
// compilers once a file name is prefixed.
func (p Pos) String() string {
	if p.Line <= 0 {
		return ""
	}
	if p.Col <= 0 {
		return strconv.Itoa(p.Line)
	}
	return strconv.Itoa(p.Line) + ":" + strconv.Itoa(p.Col)
}
