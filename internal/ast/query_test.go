package ast

import (
	"reflect"
	"testing"
)

// buildQ: exists T (plane(T,X) & !winter(T)) | resort(X)
func buildQ() Query {
	planeAtom := TemporalAtom("plane", TemporalTerm{Var: "T"}, Var("X"))
	winterAtom := TemporalAtom("winter", TemporalTerm{Var: "T"})
	resortAtom := NonTemporalAtom("resort", Var("X"))
	return QOr{
		Left: QExists{Var: "T", Sort: SortTemporal, Sub: QAnd{
			Left:  QAtom{Atom: planeAtom},
			Right: QNot{Sub: QAtom{Atom: winterAtom}},
		}},
		Right: QAtom{Atom: resortAtom},
	}
}

func TestFreeVars(t *testing.T) {
	q := buildQ()
	tv, nv := FreeVars(q)
	if len(tv) != 0 {
		t.Errorf("temporal free vars = %v, want none (T is bound)", tv)
	}
	if !reflect.DeepEqual(nv, []string{"X"}) {
		t.Errorf("non-temporal free vars = %v, want [X]", nv)
	}
	if Closed(q) {
		t.Error("query with free X reported closed")
	}
	closed := QForall{Var: "X", Sort: SortNonTemporal, Sub: q}
	if !Closed(closed) {
		t.Error("fully quantified query reported open")
	}
}

func TestFreeVarsShadowing(t *testing.T) {
	// exists X p(0, X) & q(X): the conjunct's X is free.
	q := QAnd{
		Left:  QExists{Var: "X", Sort: SortNonTemporal, Sub: QAtom{Atom: TemporalAtom("p", TemporalTerm{}, Var("X"))}},
		Right: QAtom{Atom: NonTemporalAtom("q", Var("X"))},
	}
	_, nv := FreeVars(q)
	if !reflect.DeepEqual(nv, []string{"X"}) {
		t.Errorf("free vars = %v, want [X]", nv)
	}
}

func TestQueryAtoms(t *testing.T) {
	atoms := QueryAtoms(buildQ())
	if len(atoms) != 3 {
		t.Fatalf("atoms = %v", atoms)
	}
	if atoms[0].Pred != "plane" || atoms[1].Pred != "winter" || atoms[2].Pred != "resort" {
		t.Errorf("atom order = %v", atoms)
	}
}

func TestMaxQueryDepth(t *testing.T) {
	q := QAnd{
		Left:  QAtom{Atom: TemporalAtom("p", TemporalTerm{Depth: 42})},
		Right: QAtom{Atom: TemporalAtom("q", TemporalTerm{Var: "T", Depth: 99})},
	}
	// Only ground temporal terms count.
	if got := MaxQueryDepth(q); got != 42 {
		t.Errorf("MaxQueryDepth = %d, want 42", got)
	}
	if got := MaxQueryDepth(QAtom{Atom: NonTemporalAtom("r")}); got != 0 {
		t.Errorf("MaxQueryDepth = %d, want 0", got)
	}
}

func TestQueryString(t *testing.T) {
	got := buildQ().String()
	want := "(exists T (plane(T, X) & (!winter(T)))) | resort(X)"
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestSortString(t *testing.T) {
	if SortTemporal.String() != "temporal" || SortNonTemporal.String() != "non-temporal" {
		t.Error("Sort.String misrendered")
	}
}

func TestFormatAnswer(t *testing.T) {
	got := FormatAnswer(map[string]int{"T": 3, "S": 1}, map[string]string{"X": "hunter", "Y": "New York"})
	want := "S=1, T=3, X=hunter, Y='New York'"
	if got != want {
		t.Errorf("FormatAnswer = %q, want %q", got, want)
	}
	if got := FormatAnswer(nil, nil); got != "" {
		t.Errorf("empty answer = %q", got)
	}
}
