package ast

import (
	"testing"
)

// Helpers shared by several test files in this package.

func tvar(name string, depth int) TemporalTerm { return TemporalTerm{Var: name, Depth: depth} }

// planeRule is the first rule of the paper's travel-agent example:
// plane(T+7, X) :- plane(T, X), resort(X), offseason(T).
func planeRule() Rule {
	return Rule{
		Head: TemporalAtom("plane", tvar("T", 7), Var("X")),
		Body: []Atom{
			TemporalAtom("plane", tvar("T", 0), Var("X")),
			NonTemporalAtom("resort", Var("X")),
			TemporalAtom("offseason", tvar("T", 0)),
		},
	}
}

// pathRule is the second rule of the paper's graph example:
// path(K+1, X, Z) :- edge(X, Y), path(K, Y, Z).
func pathRule() Rule {
	return Rule{
		Head: TemporalAtom("path", tvar("K", 1), Var("X"), Var("Z")),
		Body: []Atom{
			NonTemporalAtom("edge", Var("X"), Var("Y")),
			TemporalAtom("path", tvar("K", 0), Var("Y"), Var("Z")),
		},
	}
}

func TestRuleString(t *testing.T) {
	want := "plane(T+7, X) :- plane(T, X), resort(X), offseason(T)."
	if got := planeRule().String(); got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestRuleTemporalVarsSemiNormal(t *testing.T) {
	r := planeRule()
	if vs := r.TemporalVars(); len(vs) != 1 || vs[0] != "T" {
		t.Errorf("TemporalVars = %v", vs)
	}
	if !r.SemiNormal() {
		t.Error("plane rule should be semi-normal")
	}
	if r.Normal() {
		t.Error("plane rule has depth 7 and must not be normal")
	}
	if !pathRule().Normal() {
		t.Error("path rule should be normal")
	}
	two := Rule{
		Head: TemporalAtom("p", tvar("T", 0), Var("X")),
		Body: []Atom{TemporalAtom("q", tvar("S", 0), Var("X")), TemporalAtom("r", tvar("T", 0), Var("X"))},
	}
	if two.SemiNormal() {
		t.Error("rule with two temporal variables should not be semi-normal")
	}
}

func TestRuleDepths(t *testing.T) {
	r := planeRule()
	if r.MinDepth() != 0 || r.MaxDepth() != 7 {
		t.Errorf("depths = (%d, %d), want (0, 7)", r.MinDepth(), r.MaxDepth())
	}
	nt := Rule{Head: NonTemporalAtom("a", Var("X")), Body: []Atom{NonTemporalAtom("b", Var("X"))}}
	if nt.MinDepth() != -1 || nt.MaxDepth() != -1 {
		t.Errorf("non-temporal rule depths = (%d, %d), want (-1, -1)", nt.MinDepth(), nt.MaxDepth())
	}
}

func TestShiftNormalize(t *testing.T) {
	r := Rule{
		Head: TemporalAtom("p", tvar("T", 5), Var("X")),
		Body: []Atom{TemporalAtom("q", tvar("T", 2), Var("X"))},
	}
	s := r.ShiftNormalize()
	if s.Head.Time.Depth != 3 || s.Body[0].Time.Depth != 0 {
		t.Errorf("shifted depths = (%d, %d), want (3, 0)", s.Head.Time.Depth, s.Body[0].Time.Depth)
	}
	// Original untouched.
	if r.Head.Time.Depth != 5 {
		t.Error("ShiftNormalize mutated its receiver")
	}
	// Already-minimal rule is returned as an equal copy.
	s2 := planeRule().ShiftNormalize()
	if s2.String() != planeRule().String() {
		t.Errorf("no-op shift changed rule: %s", s2)
	}
}

func TestRecursiveTimeOnlyDataOnly(t *testing.T) {
	near := Rule{ // time-only and reduced (paper example)
		Head: TemporalAtom("near", tvar("T", 1), Var("X"), Var("Y")),
		Body: []Atom{
			TemporalAtom("near", tvar("T", 0), Var("X"), Var("Y")),
			TemporalAtom("idle", tvar("T", 0), Var("X")),
			TemporalAtom("idle", tvar("T", 0), Var("Y")),
		},
	}
	if !near.Recursive() || !near.TimeOnly() || !near.Reduced() {
		t.Errorf("near: recursive=%v timeOnly=%v reduced=%v", near.Recursive(), near.TimeOnly(), near.Reduced())
	}
	if near.DataOnly() {
		t.Error("near rule should not be data-only")
	}

	happy := Rule{ // data-only (paper example)
		Head: TemporalAtom("happy", tvar("T", 0), Var("X")),
		Body: []Atom{
			TemporalAtom("happy", tvar("T", 0), Var("Y")),
			NonTemporalAtom("friend", Var("X"), Var("Y")),
		},
	}
	if !happy.DataOnly() {
		t.Error("happy rule should be data-only")
	}
	if happy.TimeOnly() {
		t.Error("happy rule should not be time-only")
	}

	if pathRule().TimeOnly() {
		t.Error("path rule changes non-temporal args of the recursive predicate; not time-only")
	}
	if !planeRule().TimeOnly() {
		t.Error("plane rule should be time-only")
	}
	nonRec := Rule{Head: NonTemporalAtom("a", Var("X")), Body: []Atom{NonTemporalAtom("b", Var("X"))}}
	if nonRec.Recursive() || nonRec.TimeOnly() || nonRec.DataOnly() {
		t.Error("non-recursive rule misclassified")
	}
}

func TestReduced(t *testing.T) {
	notReduced := Rule{
		Head: TemporalAtom("p", tvar("T", 1), Var("X")),
		Body: []Atom{
			TemporalAtom("p", tvar("T", 0), Var("X")),
			NonTemporalAtom("r", Var("X"), Var("W")), // W not in head
		},
	}
	if notReduced.Reduced() {
		t.Error("rule with extra body variable W reported reduced")
	}
}

func TestRuleClone(t *testing.T) {
	r := planeRule()
	c := r.Clone()
	c.Body[0].Time.Depth = 99
	c.Head.Args[0] = Const("mutated")
	if r.Body[0].Time.Depth != 0 || r.Head.Args[0] != Var("X") {
		t.Error("Clone shares structure with original")
	}
}
