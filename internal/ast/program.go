package ast

import (
	"fmt"
	"sort"
	"strings"
)

// PredInfo records the signature of a predicate as used by a program or
// database: whether it is temporal and how many non-temporal arguments it
// takes (the temporal argument is not counted in Arity).
type PredInfo struct {
	Name     string
	Temporal bool
	Arity    int
}

func (p PredInfo) String() string {
	kind := "non-temporal"
	if p.Temporal {
		kind = "temporal"
	}
	return fmt.Sprintf("%s/%d (%s)", p.Name, p.Arity, kind)
}

// Program is a finite set of temporal rules together with the predicate
// signatures they induce.
type Program struct {
	Rules []Rule
	Preds map[string]PredInfo
}

// NewProgram builds a program from rules, inferring predicate signatures.
// It returns an error if a predicate is used inconsistently (different
// arities, or temporal in one literal and non-temporal in another).
func NewProgram(rules []Rule) (*Program, error) {
	p := &Program{Rules: rules, Preds: make(map[string]PredInfo)}
	for _, r := range rules {
		for _, a := range r.Atoms() {
			if err := p.note(a); err != nil {
				return nil, err
			}
		}
	}
	return p, nil
}

// note records the signature of atom a, checking consistency with
// previously seen uses.
func (p *Program) note(a Atom) error {
	info := PredInfo{Name: a.Pred, Temporal: a.Time != nil, Arity: len(a.Args)}
	prev, ok := p.Preds[a.Pred]
	if !ok {
		p.Preds[a.Pred] = info
		return nil
	}
	if prev != info {
		return fmt.Errorf("ast: inconsistent use of predicate %s: %v vs %v", a.Pred, prev, info)
	}
	return nil
}

// Clone returns a deep copy of the program.
func (p *Program) Clone() *Program {
	c := &Program{Rules: make([]Rule, len(p.Rules)), Preds: make(map[string]PredInfo, len(p.Preds))}
	for i, r := range p.Rules {
		c.Rules[i] = r.Clone()
	}
	for k, v := range p.Preds {
		c.Preds[k] = v
	}
	return c
}

func (p *Program) String() string {
	var b strings.Builder
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Derived returns the names of the predicates derived by the program, i.e.
// appearing in the head of some rule, in sorted order.
func (p *Program) Derived() []string {
	set := make(map[string]bool)
	for _, r := range p.Rules {
		set[r.Head.Pred] = true
	}
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// DerivedSet returns the derived predicates as a set.
func (p *Program) DerivedSet() map[string]bool {
	set := make(map[string]bool)
	for _, r := range p.Rules {
		set[r.Head.Pred] = true
	}
	return set
}

// EDB returns the names of predicates that occur only in rule bodies
// (extensional predicates), in sorted order.
func (p *Program) EDB() []string {
	derived := p.DerivedSet()
	var out []string
	for name := range p.Preds {
		if !derived[name] {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Lookback returns g, the number of preceding states a state of the least
// model can depend on: the maximum over shift-normalized rules of the
// head's temporal depth (at least 1 when the program has any temporal
// rule). It is the block size used when comparing states of semi-normal
// rule sets (Section 3.2 redefines periodicity over g subsequent states).
func (p *Program) Lookback() int {
	g := 0
	temporal := false
	for _, r := range p.Rules {
		if r.MinDepth() < 0 {
			continue
		}
		temporal = true
		s := r.ShiftNormalize()
		if s.Head.Time != nil && !s.Head.Time.Ground() && s.Head.Time.Depth > g {
			g = s.Head.Time.Depth
		}
	}
	if temporal && g < 1 {
		g = 1
	}
	return g
}

// Database is a finite temporal database: a set of ground temporal and
// non-temporal facts.
type Database struct {
	Facts []Fact
	Preds map[string]PredInfo
}

// NewDatabase builds a database from facts, inferring and checking
// predicate signatures for internal consistency.
func NewDatabase(facts []Fact) (*Database, error) {
	d := &Database{Facts: facts, Preds: make(map[string]PredInfo)}
	for _, f := range facts {
		info := PredInfo{Name: f.Pred, Temporal: f.Temporal, Arity: len(f.Args)}
		prev, ok := d.Preds[f.Pred]
		if !ok {
			d.Preds[f.Pred] = info
			continue
		}
		if prev != info {
			return nil, fmt.Errorf("ast: inconsistent use of predicate %s in database: %v vs %v", f.Pred, prev, info)
		}
	}
	return d, nil
}

// Clone returns a copy of the database whose fact list and signature map
// can grow independently of the original. Facts themselves are shared:
// they are immutable once built.
func (d *Database) Clone() *Database {
	c := &Database{
		Facts: append(make([]Fact, 0, len(d.Facts)), d.Facts...),
		Preds: make(map[string]PredInfo, len(d.Preds)),
	}
	for k, v := range d.Preds {
		c.Preds[k] = v
	}
	return c
}

// MaxDepth returns c, the maximum depth of a temporal term in the database
// (0 for a database with no temporal facts). The paper measures database
// size as max(n, c) with temporal terms encoded in unary.
func (d *Database) MaxDepth() int {
	c := 0
	for _, f := range d.Facts {
		if f.Temporal && f.Time > c {
			c = f.Time
		}
	}
	return c
}

// Size returns the paper's database size measure max(n, c) where n is the
// number of tuples and c the maximum temporal depth.
func (d *Database) Size() int {
	n := len(d.Facts)
	if c := d.MaxDepth(); c > n {
		return c
	}
	return n
}

// Constants returns the non-temporal constants appearing in the database,
// sorted.
func (d *Database) Constants() []string {
	set := make(map[string]bool)
	for _, f := range d.Facts {
		for _, c := range f.Args {
			set[c] = true
		}
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

func (d *Database) String() string {
	fs := append([]Fact(nil), d.Facts...)
	SortFacts(fs)
	var b strings.Builder
	for _, f := range fs {
		b.WriteString(f.String())
		b.WriteString(".\n")
	}
	return b.String()
}

// CheckAgainst verifies that the database's predicate signatures are
// consistent with the program's.
func (d *Database) CheckAgainst(p *Program) error {
	for name, info := range d.Preds {
		if prev, ok := p.Preds[name]; ok && prev != info {
			return fmt.Errorf("ast: predicate %s used as %v in program but %v in database", name, prev, info)
		}
	}
	return nil
}
