package ast

import (
	"fmt"
	"strings"
)

// Query is a temporal first-order query (Section 3.1): a formula without
// equality built from temporal and non-temporal atoms, the standard
// connectives, and two-sorted quantifiers (one sort ranges over ground
// temporal terms, the other over non-temporal constants).
type Query interface {
	fmt.Stringer
	isQuery()
	// FreeVars appends the query's free variables to the two accumulators,
	// keyed by name. Used by evaluators and validators.
	freeVars(bound map[string]bool, temporal, nonTemporal map[string]bool)
}

// QAtom is an atomic query.
type QAtom struct{ Atom Atom }

// QNot is a negated query, evaluated under the Closed World Assumption.
type QNot struct{ Sub Query }

// QAnd is a conjunction.
type QAnd struct{ Left, Right Query }

// QOr is a disjunction.
type QOr struct{ Left, Right Query }

// Sort distinguishes the two quantifier sorts of the language.
type Sort int

const (
	// SortNonTemporal quantifies over non-temporal constants.
	SortNonTemporal Sort = iota
	// SortTemporal quantifies over ground temporal terms.
	SortTemporal
)

func (s Sort) String() string {
	if s == SortTemporal {
		return "temporal"
	}
	return "non-temporal"
}

// QExists is an existential quantifier over one variable of the given sort.
type QExists struct {
	Var  string
	Sort Sort
	Sub  Query
}

// QForall is a universal quantifier over one variable of the given sort.
type QForall struct {
	Var  string
	Sort Sort
	Sub  Query
}

func (QAtom) isQuery()   {}
func (QNot) isQuery()    {}
func (QAnd) isQuery()    {}
func (QOr) isQuery()     {}
func (QExists) isQuery() {}
func (QForall) isQuery() {}

func (q QAtom) String() string { return q.Atom.String() }
func (q QNot) String() string  { return "!" + parens(q.Sub) }
func (q QAnd) String() string  { return parens(q.Left) + " & " + parens(q.Right) }
func (q QOr) String() string   { return parens(q.Left) + " | " + parens(q.Right) }
func (q QExists) String() string {
	return "exists " + q.Var + " " + parens(q.Sub)
}
func (q QForall) String() string {
	return "forall " + q.Var + " " + parens(q.Sub)
}

func parens(q Query) string {
	if a, ok := q.(QAtom); ok {
		return a.String()
	}
	return "(" + q.String() + ")"
}

func (q QAtom) freeVars(bound map[string]bool, temporal, nonTemporal map[string]bool) {
	if q.Atom.Time != nil && q.Atom.Time.Var != "" && !bound[q.Atom.Time.Var] {
		temporal[q.Atom.Time.Var] = true
	}
	for _, s := range q.Atom.Args {
		if s.IsVar && !bound[s.Name] {
			nonTemporal[s.Name] = true
		}
	}
}

func (q QNot) freeVars(bound map[string]bool, temporal, nonTemporal map[string]bool) {
	q.Sub.freeVars(bound, temporal, nonTemporal)
}

func (q QAnd) freeVars(bound map[string]bool, temporal, nonTemporal map[string]bool) {
	q.Left.freeVars(bound, temporal, nonTemporal)
	q.Right.freeVars(bound, temporal, nonTemporal)
}

func (q QOr) freeVars(bound map[string]bool, temporal, nonTemporal map[string]bool) {
	q.Left.freeVars(bound, temporal, nonTemporal)
	q.Right.freeVars(bound, temporal, nonTemporal)
}

func (q QExists) freeVars(bound map[string]bool, temporal, nonTemporal map[string]bool) {
	quantFreeVars(q.Var, q.Sub, bound, temporal, nonTemporal)
}

func (q QForall) freeVars(bound map[string]bool, temporal, nonTemporal map[string]bool) {
	quantFreeVars(q.Var, q.Sub, bound, temporal, nonTemporal)
}

func quantFreeVars(v string, sub Query, bound map[string]bool, temporal, nonTemporal map[string]bool) {
	was := bound[v]
	bound[v] = true
	sub.freeVars(bound, temporal, nonTemporal)
	bound[v] = was
}

// FreeVars returns the free temporal and non-temporal variables of q, each
// sorted for determinism.
func FreeVars(q Query) (temporal, nonTemporal []string) {
	tm, nm := make(map[string]bool), make(map[string]bool)
	q.freeVars(make(map[string]bool), tm, nm)
	return sortedKeys(tm), sortedKeys(nm)
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	// insertion sort: tiny inputs
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Closed reports whether the query has no free variables (a yes-no query).
func Closed(q Query) bool {
	t, n := FreeVars(q)
	return len(t) == 0 && len(n) == 0
}

// QueryAtoms returns all atoms occurring in q, in left-to-right order.
func QueryAtoms(q Query) []Atom {
	var out []Atom
	var walk func(Query)
	walk = func(q Query) {
		switch q := q.(type) {
		case QAtom:
			out = append(out, q.Atom)
		case QNot:
			walk(q.Sub)
		case QAnd:
			walk(q.Left)
			walk(q.Right)
		case QOr:
			walk(q.Left)
			walk(q.Right)
		case QExists:
			walk(q.Sub)
		case QForall:
			walk(q.Sub)
		}
	}
	walk(q)
	return out
}

// MaxQueryDepth returns h, the maximum depth of a ground temporal term in
// the query (0 if none). Algorithm BT's window bound is a function of h.
func MaxQueryDepth(q Query) int {
	h := 0
	for _, a := range QueryAtoms(q) {
		if a.Time != nil && a.Time.Ground() && a.Time.Depth > h {
			h = a.Time.Depth
		}
	}
	return h
}

// FormatAnswer renders an answer substitution for display: variable names
// mapped to values, in sorted variable order.
func FormatAnswer(temporal map[string]int, nonTemporal map[string]string) string {
	var parts []string
	for _, k := range sortedKeys(boolKeys(temporal)) {
		parts = append(parts, fmt.Sprintf("%s=%d", k, temporal[k]))
	}
	nk := make(map[string]bool, len(nonTemporal))
	for k := range nonTemporal {
		nk[k] = true
	}
	for _, k := range sortedKeys(nk) {
		parts = append(parts, fmt.Sprintf("%s=%s", k, quoteConst(nonTemporal[k])))
	}
	return strings.Join(parts, ", ")
}

func boolKeys(m map[string]int) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}
