package ast

import (
	"testing"
)

func TestSubstBindTime(t *testing.T) {
	s := NewSubst()
	if !s.BindTime("T", 5) {
		t.Fatal("first bind failed")
	}
	if !s.BindTime("T", 5) {
		t.Error("re-bind to same instant failed")
	}
	if s.BindTime("T", 6) {
		t.Error("re-bind to different instant succeeded")
	}
	if s.BindTime("S", 5) {
		t.Error("bind of a second temporal variable succeeded")
	}
}

func TestSubstBind(t *testing.T) {
	s := NewSubst()
	if !s.Bind("X", "a") || !s.Bind("X", "a") {
		t.Error("consistent binds failed")
	}
	if s.Bind("X", "b") {
		t.Error("conflicting bind succeeded")
	}
	if !s.Bind("Y", "b") {
		t.Error("independent bind failed")
	}
}

func TestSubstApplyAtom(t *testing.T) {
	s := NewSubst()
	s.BindTime("T", 3)
	s.Bind("X", "hunter")
	a := TemporalAtom("plane", tvar("T", 7), Var("X"))
	f, ok := s.ApplyAtom(a)
	if !ok {
		t.Fatal("ApplyAtom failed")
	}
	if f.Time != 10 || f.Args[0] != "hunter" {
		t.Errorf("fact = %v", f)
	}
	// Unbound variable.
	if _, ok := s.ApplyAtom(NonTemporalAtom("r", Var("Z"))); ok {
		t.Error("ApplyAtom succeeded with unbound variable")
	}
	// Wrong temporal variable.
	if _, ok := s.ApplyAtom(TemporalAtom("p", tvar("S", 0))); ok {
		t.Error("ApplyAtom succeeded with unbound temporal variable")
	}
	// Ground temporal term passes through.
	g, ok := s.ApplyAtom(TemporalAtom("p", TemporalTerm{Depth: 9}))
	if !ok || g.Time != 9 {
		t.Errorf("ground temporal ApplyAtom = %v, %v", g, ok)
	}
	// Constants pass through.
	c, ok := s.ApplyAtom(NonTemporalAtom("r", Const("k")))
	if !ok || c.Args[0] != "k" {
		t.Errorf("constant ApplyAtom = %v, %v", c, ok)
	}
}

func TestSubstMatchArgs(t *testing.T) {
	s := NewSubst()
	args := []Symbol{Var("X"), Const("b"), Var("X")}
	if !s.MatchArgs(args, []string{"a", "b", "a"}) {
		t.Error("expected match")
	}
	s2 := NewSubst()
	if s2.MatchArgs(args, []string{"a", "b", "c"}) {
		t.Error("inconsistent repeated variable matched")
	}
	s3 := NewSubst()
	if s3.MatchArgs(args, []string{"a", "x", "a"}) {
		t.Error("constant mismatch matched")
	}
	if s3.MatchArgs(args, []string{"a", "b"}) {
		t.Error("arity mismatch matched")
	}
}

func TestSubstClone(t *testing.T) {
	s := NewSubst()
	s.BindTime("T", 1)
	s.Bind("X", "a")
	c := s.Clone()
	c.Bind("Y", "b")
	if _, ok := s.NonTempro["Y"]; ok {
		t.Error("Clone shares binding map")
	}
	if !c.HasTime || c.Time != 1 {
		t.Error("Clone lost temporal binding")
	}
}

func TestRenameApart(t *testing.T) {
	r := planeRule()
	rn := RenameApart(r, "v0_")
	if rn.Head.Time.Var != "v0_T" || rn.Body[1].Args[0].Name != "v0_X" {
		t.Errorf("rename: %s", rn)
	}
	// Constants are untouched.
	r2 := Rule{Head: NonTemporalAtom("p", Var("X")), Body: []Atom{NonTemporalAtom("q", Var("X"), Const("c"))}}
	rn2 := RenameApart(r2, "w_")
	if rn2.Body[0].Args[1].Name != "c" {
		t.Errorf("constant renamed: %s", rn2)
	}
}
