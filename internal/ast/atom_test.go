package ast

import (
	"reflect"
	"testing"
)

func TestAtomString(t *testing.T) {
	cases := []struct {
		atom Atom
		want string
	}{
		{TemporalAtom("plane", TemporalTerm{Var: "T", Depth: 7}, Var("X")), "plane(T+7, X)"},
		{TemporalAtom("even", TemporalTerm{Depth: 4}), "even(4)"},
		{NonTemporalAtom("resort", Const("hunter")), "resort(hunter)"},
		{NonTemporalAtom("halt"), "halt"},
		{NonTemporalAtom("edge", Var("X"), Var("Y")), "edge(X, Y)"},
	}
	for _, c := range cases {
		if got := c.atom.String(); got != c.want {
			t.Errorf("got %q, want %q", got, c.want)
		}
	}
}

func TestAtomGroundDepth(t *testing.T) {
	a := TemporalAtom("p", TemporalTerm{Depth: 3}, Const("a"))
	if !a.Ground() || a.Depth() != 3 {
		t.Errorf("ground temporal atom misclassified: ground=%v depth=%d", a.Ground(), a.Depth())
	}
	b := TemporalAtom("p", TemporalTerm{Var: "T"}, Const("a"))
	if b.Ground() {
		t.Error("atom with temporal variable reported ground")
	}
	c := NonTemporalAtom("r", Const("a"))
	if !c.Ground() || c.Depth() != -1 {
		t.Errorf("non-temporal atom misclassified: ground=%v depth=%d", c.Ground(), c.Depth())
	}
	d := NonTemporalAtom("r", Var("X"))
	if d.Ground() {
		t.Error("atom with variable reported ground")
	}
}

func TestAtomEqualClone(t *testing.T) {
	a := TemporalAtom("p", TemporalTerm{Var: "T", Depth: 1}, Var("X"), Const("c"))
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal to original")
	}
	b.Time.Depth = 2
	if a.Equal(b) {
		t.Error("mutating clone's time affected equality check")
	}
	if a.Time.Depth != 1 {
		t.Error("clone shares Time pointer with original")
	}
	c := a.Clone()
	c.Args[0] = Const("d")
	if a.Args[0] != Var("X") {
		t.Error("clone shares Args with original")
	}
	if a.Equal(NonTemporalAtom("p", Var("X"), Const("c"))) {
		t.Error("temporal atom equal to non-temporal atom")
	}
}

func TestAtomVars(t *testing.T) {
	a := TemporalAtom("p", TemporalTerm{Var: "T", Depth: 1}, Var("X"), Const("c"), Var("Y"), Var("X"))
	tv, nv := a.Vars()
	if tv != "T" {
		t.Errorf("temporal var = %q, want T", tv)
	}
	if !reflect.DeepEqual(nv, []string{"X", "Y"}) {
		t.Errorf("non-temporal vars = %v, want [X Y]", nv)
	}
}

func TestFactRoundTrip(t *testing.T) {
	a := TemporalAtom("plane", TemporalTerm{Depth: 12}, Const("hunter"))
	f := FactOf(a)
	if !f.Temporal || f.Time != 12 || f.Pred != "plane" || f.Args[0] != "hunter" {
		t.Fatalf("FactOf = %+v", f)
	}
	if !f.Atom().Equal(a) {
		t.Errorf("round trip mismatch: %v vs %v", f.Atom(), a)
	}
	n := NonTemporalAtom("resort", Const("hunter"))
	g := FactOf(n)
	if g.Temporal {
		t.Error("non-temporal fact marked temporal")
	}
	if !g.Atom().Equal(n) {
		t.Errorf("round trip mismatch: %v vs %v", g.Atom(), n)
	}
}

func TestFactOfPanicsOnNonGround(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FactOf(NonTemporalAtom("r", Var("X")))
}

func TestSortFacts(t *testing.T) {
	fs := []Fact{
		{Pred: "b", Temporal: true, Time: 2, Args: []string{"x"}},
		{Pred: "b", Temporal: true, Time: 1, Args: []string{"y"}},
		{Pred: "a", Temporal: false, Args: []string{"z"}},
		{Pred: "b", Temporal: true, Time: 1, Args: []string{"x"}},
	}
	SortFacts(fs)
	want := []string{"a(z)", "b(1, x)", "b(1, y)", "b(2, x)"}
	for i, f := range fs {
		if f.String() != want[i] {
			t.Errorf("fs[%d] = %s, want %s", i, f, want[i])
		}
	}
}
