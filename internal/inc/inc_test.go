package inc

import (
	"fmt"
	"math/rand"
	"testing"

	"tdd/internal/ast"
	"tdd/internal/engine"
	"tdd/internal/randgen"
	"tdd/internal/spec"
)

const testMaxWindow = 1 << 20

func renderFacts(fs []ast.Fact) string {
	out := ""
	for _, f := range fs {
		out += f.String() + ".\n"
	}
	return out
}

// TestOracleRandomIngestionOrders is the incremental/from-scratch oracle:
// for random valid TDDs, random initial prefixes, and random batch splits
// of the remaining facts, the incrementally maintained specification must
// be identical — same minimal period, same primary database — to the one
// computed from scratch over the final fact set, and must answer deep
// ground queries identically.
func TestOracleRandomIngestionOrders(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			g := randgen.New(rng, randgen.Default())
			prog, err := g.Program(rng)
			if err != nil {
				t.Fatal(err)
			}
			full, err := g.Database(rng)
			if err != nil {
				t.Fatal(err)
			}
			facts := append([]ast.Fact(nil), full.Facts...)
			rng.Shuffle(len(facts), func(i, j int) { facts[i], facts[j] = facts[j], facts[i] })

			// Open on a random (possibly empty) prefix and certify once.
			k := rng.Intn(len(facts) + 1)
			initial, err := ast.NewDatabase(append([]ast.Fact(nil), facts[:k]...))
			if err != nil {
				t.Fatal(err)
			}
			e, err := engine.New(prog, initial)
			if err != nil {
				t.Fatal(err)
			}
			cur, err := spec.Compute(e, testMaxWindow)
			if err != nil {
				t.Fatal(err)
			}

			// Ingest the rest in random batches.
			rest := facts[k:]
			for len(rest) > 0 {
				n := 1 + rng.Intn(len(rest))
				var res Result
				cur, res, err = Apply(e, cur, testMaxWindow, rest[:n])
				if err != nil {
					t.Fatal(err)
				}
				if res.NewBase != n {
					t.Fatalf("batch of %d distinct facts recorded %d new", n, res.NewBase)
				}
				rest = rest[n:]
			}

			// From-scratch evaluation of the final fact set.
			e2, err := engine.New(prog, e.Database().Clone())
			if err != nil {
				t.Fatal(err)
			}
			want, err := spec.Compute(e2, testMaxWindow)
			if err != nil {
				t.Fatal(err)
			}

			if cur.Period != want.Period {
				t.Fatalf("period diverged: incremental %v, from-scratch %v", cur.Period, want.Period)
			}
			got, exp := renderFacts(cur.PrimaryDatabase()), renderFacts(want.PrimaryDatabase())
			if got != exp {
				t.Fatalf("primary database diverged\nincremental:\n%s\nfrom-scratch:\n%s", got, exp)
			}
			// Deep ground queries (beyond any evaluated window) must agree.
			for i := 0; i < 50; i++ {
				f := ast.Fact{Pred: fmt.Sprintf("p%d", rng.Intn(3)), Temporal: true, Time: 1000 + rng.Intn(100000)}
				info, ok := prog.Preds[f.Pred]
				if !ok {
					continue
				}
				f.Args = make([]string, info.Arity)
				for j := range f.Args {
					f.Args[j] = fmt.Sprintf("c%d", rng.Intn(3))
				}
				if a, b := cur.HoldsFact(f), want.HoldsFact(f); a != b {
					t.Fatalf("deep query %s: incremental %v, from-scratch %v", f, a, b)
				}
			}
		})
	}
}

// TestApplyDuplicatesAndNoop: re-asserting known facts is a no-op that
// keeps the existing specification (no re-certification).
func TestApplyDuplicatesAndNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randgen.New(rng, randgen.Default())
	prog, err := g.Program(rng)
	if err != nil {
		t.Fatal(err)
	}
	db, err := g.Database(rng)
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	s, err := spec.Compute(e, testMaxWindow)
	if err != nil {
		t.Fatal(err)
	}
	s2, res, err := Apply(e, s, testMaxWindow, db.Facts[:3])
	if err != nil {
		t.Fatal(err)
	}
	if s2 != s || res.Recertified || res.SpecChanged || res.Duplicates != 3 || res.NewBase != 0 {
		t.Fatalf("duplicate batch: got %+v (spec reused: %v)", res, s2 == s)
	}
	if res.Period != s.Period {
		t.Fatalf("result period %v, spec period %v", res.Period, s.Period)
	}
}

// TestApplyRejectsBadSignature: a signature-conflicting fact is refused.
func TestApplyRejectsBadSignature(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randgen.New(rng, randgen.Default())
	prog, err := g.Program(rng)
	if err != nil {
		t.Fatal(err)
	}
	db, err := g.Database(rng)
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	bad := ast.Fact{Pred: "p0", Temporal: false, Args: nil}
	if _, _, err := Apply(e, nil, testMaxWindow, []ast.Fact{bad}); err == nil {
		t.Fatal("non-temporal use of temporal predicate accepted")
	}
}

// TestApplyAgreesAcrossJoinModes: incremental maintenance through the
// indexed join plans (sequential and parallel) certifies exactly the
// specification the nested-loop engine does, batch for batch.
func TestApplyAgreesAcrossJoinModes(t *testing.T) {
	for seed := int64(100); seed < 110; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randgen.New(rng, randgen.Default())
		prog, err := g.Program(rng)
		if err != nil {
			t.Fatal(err)
		}
		full, err := g.Database(rng)
		if err != nil {
			t.Fatal(err)
		}
		facts := append([]ast.Fact(nil), full.Facts...)
		k := len(facts) / 2
		initial, err := ast.NewDatabase(append([]ast.Fact(nil), facts[:k]...))
		if err != nil {
			t.Fatal(err)
		}
		type lane struct {
			e  *engine.Evaluator
			sp *spec.Spec
		}
		mk := func(mode engine.JoinMode, par int) *lane {
			e, err := engine.New(prog, initial.Clone())
			if err != nil {
				t.Fatal(err)
			}
			e.SetJoinMode(mode)
			e.SetParallelism(par)
			sp, err := spec.Compute(e, testMaxWindow)
			if err != nil {
				t.Fatal(err)
			}
			return &lane{e: e, sp: sp}
		}
		lanes := []*lane{
			mk(engine.JoinNestedLoop, 0),
			mk(engine.JoinIndexed, 0),
			mk(engine.JoinIndexed, 4),
		}
		for batch := facts[k:]; len(batch) > 0; {
			n := 1 + len(batch)/3
			if n > len(batch) {
				n = len(batch)
			}
			for _, l := range lanes {
				l.sp, _, err = Apply(l.e, l.sp, testMaxWindow, batch[:n])
				if err != nil {
					t.Fatal(err)
				}
			}
			batch = batch[n:]
		}
		ref := lanes[0]
		for i, l := range lanes[1:] {
			if l.sp.Period != ref.sp.Period {
				t.Fatalf("seed %d lane %d: period %v, nested-loop %v", seed, i+1, l.sp.Period, ref.sp.Period)
			}
			if got, want := renderFacts(l.sp.PrimaryDatabase()), renderFacts(ref.sp.PrimaryDatabase()); got != want {
				t.Fatalf("seed %d lane %d: primary database diverged\n%s\nvs\n%s", seed, i+1, got, want)
			}
			if l.e.Store().Len() != ref.e.Store().Len() {
				t.Fatalf("seed %d lane %d: store %d facts, nested-loop %d", seed, i+1, l.e.Store().Len(), ref.e.Store().Len())
			}
		}
	}
}
