// Package inc maintains an evaluated temporal deductive database — and its
// certified periodic specification — under incremental fact insertion.
//
// The from-scratch pipeline (engine evaluation, period certification,
// relational specification) is deterministic in the program and the
// database. Incremental maintenance exploits that: a batch of new base
// facts is inserted into the existing evaluator, its consequences are
// propagated semi-naively through the already-evaluated window (only rules
// with a body literal pinned to a delta fact re-fire), and the period is
// then re-certified over the patched window. Because the patched window is
// fact-for-fact identical to a from-scratch evaluation of the fact union —
// the semi-naive completeness argument — re-certification returns exactly
// the specification a cold start would, while touching only the states the
// delta changed (state keys are cached per time point and invalidated by
// insertion).
//
// Parallelism flows through unchanged: when the passed evaluator carries a
// worker bound (engine.SetParallelism), both the delta propagation and any
// window growth done here use the parallel schedule, and evaluator clones
// made while applying a batch inherit the bound. The same holds for the
// join mode: delta propagation re-fires pinned rules through the
// evaluator's indexed join plans (engine.SetJoinMode), and because both
// modes reach the same fixpoints the maintained model — and hence the
// re-certified specification — is identical either way (see
// TestApplyAgreesAcrossJoinModes).
package inc

import (
	"tdd/internal/ast"
	"tdd/internal/engine"
	"tdd/internal/period"
	"tdd/internal/spec"
)

// Result describes one incremental maintenance step.
type Result struct {
	// NewBase counts batch facts that were new to the database.
	NewBase int
	// Duplicates counts batch facts already present in the database.
	Duplicates int
	// Derived counts consequences materialized by delta propagation
	// (within the evaluated window; deeper consequences are produced by
	// the window growth that re-certification may perform).
	Derived int
	// Recertified reports whether a specification was (re)computed.
	Recertified bool
	// SpecChanged reports whether the certified period differs from the
	// previous specification's (always true when there was none).
	SpecChanged bool
	// Period is the period certified by the returned specification.
	Period period.Period
}

// Apply inserts the batch into e, propagates its consequences through the
// evaluated window, and re-certifies the periodic specification. old is
// the previous specification over e, or nil if none was computed yet; it
// is returned unchanged when the batch contains nothing new. maxWindow
// bounds the re-certification window (see period.Detect).
//
// Apply mutates e. On error (a signature-invalid fact, or a period not
// certifiable within maxWindow) e may hold a partially applied batch;
// callers that need atomicity apply to an engine.Evaluator clone and swap
// it in on success — the copy-on-write discipline used by tdd.DB and the
// server registry.
func Apply(e *engine.Evaluator, old *spec.Spec, maxWindow int, facts []ast.Fact) (*spec.Spec, Result, error) {
	var res Result
	sp := e.Trace().Begin("ingest")
	seed := make([]ast.Fact, 0, len(facts))
	for _, f := range facts {
		ok, err := e.InsertBase(f)
		if err != nil {
			sp.End()
			return nil, res, err
		}
		if ok {
			seed = append(seed, f)
			res.NewBase++
		} else {
			res.Duplicates++
		}
	}
	sp.Add("new", int64(res.NewBase))
	sp.Add("dup", int64(res.Duplicates))
	if len(seed) == 0 && old != nil {
		sp.End()
		res.Period = old.Period
		return old, res, nil
	}
	res.Derived = e.PropagateDelta(seed)
	sp.Add("derived", int64(res.Derived))
	sp.End()

	// Re-certification runs the full deterministic pipeline, so the result
	// is exactly the minimal specification of the fact union — a changed
	// state below the old base can shrink the minimal period as well as
	// grow it, which is why no shortcut reuses the old certificate. The
	// per-state key cache confines the rehash to states the delta touched.
	s, err := spec.Compute(e, maxWindow)
	if err != nil {
		return nil, res, err
	}
	res.Recertified = true
	res.SpecChanged = old == nil || old.Period != s.Period
	res.Period = s.Period
	return s, res, nil
}
