package period

import (
	"errors"
	"testing"
	"testing/quick"

	"tdd/internal/engine"
	"tdd/internal/parser"
)

func mustEval(t *testing.T, src string) *engine.Evaluator {
	t.Helper()
	prog, db, err := parser.ParseUnit(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	e, err := engine.New(prog, db)
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	return e
}

func TestDetectEven(t *testing.T) {
	e := mustEval(t, "even(T+2) :- even(T).\neven(0).")
	p, _, err := Detect(e, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if p.P != 2 {
		t.Errorf("period = %v, want p=2", p)
	}
	if p.Base != 1 {
		t.Errorf("base = %d, want 1 (minimal base beyond the database depth)", p.Base)
	}
}

func TestDetectInflationaryHasPeriodOne(t *testing.T) {
	src := `
path(K, X, X) :- node(X), null(K).
path(K+1, X, Z) :- edge(X, Y), path(K, Y, Z).
path(K+1, X, Y) :- path(K, X, Y).
null(0).
node(a). node(b). node(c).
edge(a, b). edge(b, c).
`
	e := mustEval(t, src)
	p, _, err := Detect(e, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if p.P != 1 {
		t.Errorf("inflationary program period = %v, want p=1", p)
	}
	// Reachability closes by path length <= 2, so states stabilize fast.
	if p.Base > 4 {
		t.Errorf("base = %d unexpectedly large", p.Base)
	}
}

func TestDetectSki(t *testing.T) {
	src := `
plane(T+7, X) :- plane(T, X), resort(X), offseason(T).
plane(T+2, X) :- plane(T, X), resort(X), winter(T).
plane(T+1, X) :- plane(T, X), resort(X), holiday(T).
offseason(T+10) :- offseason(T).
winter(T+10) :- winter(T).
holiday(T+10) :- holiday(T).
winter(0). winter(1). winter(2). winter(3).
offseason(4). offseason(5). offseason(6). offseason(7). offseason(8). offseason(9).
holiday(1).
resort(hunter).
plane(0, hunter).
`
	e := mustEval(t, src)
	p, _, err := Detect(e, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if p.P != 10 {
		t.Errorf("period = %v, want p=10 (the year length)", p)
	}
}

func TestDetectEmptyModelTail(t *testing.T) {
	// No recursion: states beyond the database are empty, period (c+1, 1).
	e := mustEval(t, "q(T+1) :- p(T).\np(3).")
	p, _, err := Detect(e, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	// q(4) is derived from p(3), so states are empty from t=5 on.
	if p.P != 1 || p.Base != 5 {
		t.Errorf("period = %v, want (b=5, p=1)", p)
	}
}

func TestDetectWindowExceeded(t *testing.T) {
	// Period 30 (lcm of 2,3,5) cannot be certified in a window of 20.
	src := `
a(T+2) :- a(T).
b(T+3) :- b(T).
c(T+5) :- c(T).
a(0). b(0). c(0).
`
	e := mustEval(t, src)
	if _, _, err := Detect(e, 20); !errors.Is(err, ErrWindowExceeded) {
		t.Errorf("err = %v, want ErrWindowExceeded", err)
	}
	// With a large budget the lcm period is found.
	e2 := mustEval(t, src)
	p, _, err := Detect(e2, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if p.P != 30 {
		t.Errorf("period = %v, want p=30", p)
	}
}

func TestCanonical(t *testing.T) {
	p := Period{Base: 3, P: 4}
	cases := map[int]int{0: 0, 2: 2, 3: 3, 6: 6, 7: 3, 8: 4, 10: 6, 11: 3, 100: 3 + (100-3)%4}
	for in, want := range cases {
		if got := p.Canonical(in); got != want {
			t.Errorf("Canonical(%d) = %d, want %d", in, got, want)
		}
	}
	// Canonical is idempotent and within [0, Base+P).
	for i := 0; i < 50; i++ {
		c := p.Canonical(i)
		if c >= p.Base+p.P {
			t.Errorf("Canonical(%d) = %d out of range", i, c)
		}
		if p.Canonical(c) != c {
			t.Errorf("Canonical not idempotent at %d", i)
		}
	}
}

func TestLookback(t *testing.T) {
	prog, _, err := parser.ParseUnit(`
p(T+7, X) :- p(T, X), r(X).
seen(X) :- p(T+3, X), q(T).
q(T+1) :- q(T).
`)
	if err != nil {
		t.Fatal(err)
	}
	// Temporal lookback 7; the non-temporal rule spreads over 3 states.
	if g := Lookback(prog); g != 7 {
		t.Errorf("Lookback = %d, want 7", g)
	}
	prog2, _, err := parser.ParseUnit(`
seen(X) :- p(T+9, X), q(T).
q(T+1) :- q(T).
`)
	if err != nil {
		t.Fatal(err)
	}
	if g := Lookback(prog2); g != 9 {
		t.Errorf("Lookback = %d, want 9 (non-temporal body spread)", g)
	}
}

func TestScanNoFalsePositiveOnShortEvidence(t *testing.T) {
	// keys: a b c c c — the c-run is too short to certify with G=3.
	keys := []string{"a", "b", "c", "c", "c"}
	if _, ok := scan(keys, 0, 3, 0); ok {
		t.Error("scan certified a period without enough evidence")
	}
	keys = []string{"a", "b", "c", "c", "c", "c", "c"}
	p, ok := scan(keys, 0, 3, 0)
	if !ok || p.P != 1 || p.Base != 2 {
		t.Errorf("scan = %v, %v; want (b=2, p=1)", p, ok)
	}
}

func TestScanMinimalPeriodFirst(t *testing.T) {
	// Period 2 from index 1: x a b a b a b a b
	keys := []string{"x", "a", "b", "a", "b", "a", "b", "a", "b"}
	p, ok := scan(keys, 0, 1, 0)
	if !ok || p.P != 2 || p.Base != 1 {
		t.Errorf("scan = %v, %v; want (b=1, p=2)", p, ok)
	}
	// A constant sequence has period 1 even though 2 also fits.
	keys = []string{"x", "a", "a", "a", "a", "a"}
	p, ok = scan(keys, 0, 1, 0)
	if !ok || p.P != 1 {
		t.Errorf("scan = %v, want p=1", p)
	}
}

func TestDetectRespectsDatabaseDepth(t *testing.T) {
	// Database facts up to time 6 must push the base beyond 6 even though
	// the rule-driven states look periodic earlier.
	e := mustEval(t, "p(T+1) :- p(T).\np(0).\nq(6).")
	p, _, err := Detect(e, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	if p.Base <= 6 {
		t.Errorf("base = %d, want > 6 (database depth)", p.Base)
	}
	if p.P != 1 {
		t.Errorf("p = %d, want 1", p.P)
	}
}

// Property (testing/quick): Canonical respects the period's equivalence —
// equal representatives exactly for times congruent mod P beyond the base.
func TestCanonicalEquivalenceProperty(t *testing.T) {
	f := func(base, p, t1 uint8, k uint8) bool {
		per := Period{Base: int(base), P: int(p%19) + 1}
		t := int(t1) + per.Base // beyond the base
		shifted := t + int(k%7)*per.P
		if per.Canonical(t) != per.Canonical(shifted) {
			return false
		}
		// Within one period of the base, times are their own canonical form.
		if t < per.Base+per.P && per.Canonical(t) != t {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
