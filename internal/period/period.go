// Package period detects the periodic structure of least models of
// temporal deductive databases.
//
// Theorem 3.1 (Chomicki & Imielinski 1988): the least model M of Z ∧ D is
// periodic — there are b and p with M[t] = M[t+p] for all t >= b, where b+p
// is at most exponential in the size of D. This package finds the minimal
// such (b, p) by evaluating the model over a growing window and certifying
// a candidate period with the continuation argument for forward rule sets:
// if the G states starting at b equal the G states starting at b+p (with b
// beyond every database fact and G the model's lookback), then the
// state-transition function forces M[t] = M[t+p] for every t >= b.
package period

import (
	"errors"
	"fmt"

	"tdd/internal/ast"
	"tdd/internal/engine"
)

// Period is a verified period: M[t] = M[t+p] for all t >= Base.
type Period struct {
	Base int // absolute time from which states repeat
	P    int // period length, >= 1
}

func (p Period) String() string { return fmt.Sprintf("(b=%d, p=%d)", p.Base, p.P) }

// Canonical returns the canonical representative of time t under the
// period: t itself if t < Base+P, otherwise Base + (t-Base) mod P. This is
// the normal form of the rewrite system W of the relational specification.
func (p Period) Canonical(t int) int {
	if t < p.Base+p.P {
		return t
	}
	return p.Base + (t-p.Base)%p.P
}

// Stats reports the work done by Detect.
type Stats struct {
	Window int // final window size used
	Grown  int // number of window growth steps
}

// ErrWindowExceeded is returned when no period was certified within the
// caller's window budget. For tractable rule classes this indicates the
// budget is too small; for adversarial programs (Theorem 3.3) the period
// itself may be exponential in the database.
var ErrWindowExceeded = errors.New("period: no period certified within the window budget")

// Lookback returns G, the certificate width for the program: the maximum
// over (a) the temporal lookback of temporal-head rules and (b) the body
// spread of non-temporal-head rules, and at least 1.
func Lookback(prog *ast.Program) int {
	g := prog.Lookback()
	for _, r := range prog.Rules {
		if r.Head.Time != nil {
			continue
		}
		s := r.ShiftNormalize()
		if d := s.MaxDepth(); d > g {
			g = d
		}
	}
	if g < 1 {
		g = 1
	}
	return g
}

// MaxHeadDepth returns the maximum (original, unshifted) temporal head
// depth over the program's rules. A rule contributes to states t >=
// its head depth only — its enabling time — so the state-transition
// function is time-invariant exactly from this point on, which the period
// certificate must respect.
func MaxHeadDepth(prog *ast.Program) int {
	h := 0
	for _, r := range prog.Rules {
		if r.Head.Time != nil && !r.Head.Time.Ground() && r.Head.Time.Depth > h {
			h = r.Head.Time.Depth
		}
	}
	return h
}

// Detect finds the minimal verified period of the least model of e's
// program and database, growing the evaluation window (doubling) until a
// certificate is found or the window would exceed maxWindow.
//
// Minimality: among all verified periods, the one with the smallest p and,
// for that p, the smallest base is returned.
func Detect(e *engine.Evaluator, maxWindow int) (Period, Stats, error) {
	c := e.Database().MaxDepth()
	G := Lookback(e.Program())
	hmax := MaxHeadDepth(e.Program())
	var stats Stats
	m := 2*c + 4*G + 4
	if min := 2*hmax + 4; m < min {
		m = min
	}
	if m < 16 {
		m = 16
	}
	for {
		if m > maxWindow {
			m = maxWindow
		}
		e.EnsureWindow(m)
		stats.Window = m
		keys := make([]string, m+1)
		for t := 0; t <= m; t++ {
			keys[t] = e.Store().StateKey(t)
		}
		if p, ok := scan(keys, c, G, hmax); ok {
			return p, stats, nil
		}
		if m >= maxWindow {
			return Period{}, stats, fmt.Errorf("%w (window %d, lookback %d, database depth %d)", ErrWindowExceeded, maxWindow, G, c)
		}
		m *= 2
		stats.Grown++
	}
}

// scan searches keys[0..m] for the minimal certified period. keys[t] is
// the canonical state at time t; c is the database's maximum temporal
// depth; G the certificate width; hmax the maximum rule head depth.
//
// A pair (b, p) is certified when b > c, keys[t] == keys[t+p] for every
// t in [b, m-p], the evidence window is wide enough (b + p + G <= m), and
// the observed matches cover every instant at which a rule can still
// become enabled (m - p + 1 >= hmax): beyond the window the continuation
// induction computes state t from the G previous states, and the
// state-transition function is the same at t and t+p exactly when both
// are beyond the database horizon and every rule's enabling time.
func scan(keys []string, c, G, hmax int) (Period, bool) {
	m := len(keys) - 1
	best := Period{}
	found := false
	for p := 1; c+1+p+G <= m; p++ {
		if m-p+1 < hmax {
			// A rule with head depth hmax could first fire beyond the
			// observed matches; no certificate possible at this p.
			break
		}
		// Find the minimal b >= c+1 with keys[t] == keys[t+p] for all
		// t in [b, m-p].
		b := -1
		for t := m - p; t >= c+1; t-- {
			if keys[t] != keys[t+p] {
				break
			}
			b = t
		}
		if b < 0 {
			continue
		}
		if b+p+G > m {
			continue // not enough observed evidence
		}
		best = Period{Base: b, P: p}
		found = true
		break
	}
	if !found {
		return Period{}, false
	}
	return best, true
}
