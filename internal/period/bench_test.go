package period

import (
	"fmt"
	"testing"

	"tdd/internal/engine"
	"tdd/internal/parser"
	"tdd/internal/workload"
)

func benchDetect(b *testing.B, rules, facts string, maxWindow int) {
	b.Helper()
	prog, db, err := parser.ParseUnit(rules + facts)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		e, err := engine.New(prog, db)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := Detect(e, maxWindow); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetect covers the three characteristic shapes: constant small
// period (ski), period 1 with a long base (reachability), exponential
// period (counter).
func BenchmarkDetect(b *testing.B) {
	skiRules, skiFacts := workload.Ski(workload.SkiParams{YearLen: 30, Resorts: 8, Planes: 16, Holidays: 4, Seed: 1})
	b.Run("ski", func(b *testing.B) { benchDetect(b, skiRules, skiFacts, 1<<20) })
	reachRules, reachFacts := workload.Reachability(workload.ReachParams{Nodes: 24, Edges: 72, Seed: 2})
	b.Run("reachability", func(b *testing.B) { benchDetect(b, reachRules, reachFacts, 1<<20) })
	for _, bits := range []int{4, 8} {
		rules, facts := workload.Counter(bits)
		b.Run(fmt.Sprintf("counter/bits=%d", bits), func(b *testing.B) { benchDetect(b, rules, facts, 1<<22) })
	}
}

// BenchmarkScan isolates the period-scanning pass from evaluation: keys
// for a long window with a known repeating suffix.
func BenchmarkScan(b *testing.B) {
	for _, m := range []int{1 << 10, 1 << 14} {
		keys := make([]string, m+1)
		for t := range keys {
			if t < 37 {
				keys[t] = fmt.Sprintf("transient-%d", t)
				continue
			}
			keys[t] = fmt.Sprintf("cycle-%d", (t-37)%12)
		}
		b.Run(fmt.Sprintf("window=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, ok := scan(keys, 0, 3, 0)
				if !ok || p.P != 12 {
					b.Fatalf("scan = %v, %v", p, ok)
				}
			}
		})
	}
}
