package gocheck

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// MapRange bans map-range iteration feeding ordered outputs: a `for ...
// range m` over a map whose body appends to a slice declared outside the
// loop, inside a function that never sorts. Go's map iteration order is
// randomized per run, so such a function returns its facts, rows, or ids
// in a different order every call — exactly the bug class the engine's
// determinism contract (bit-identical derived-fact order and traces
// across worker counts) forbids on response paths. Scoped to
// internal/engine and internal/server, the two packages that build
// ordered outputs.
//
// Syntactic approximations: map-ness is inferred from make calls,
// composite literals, declared types, struct fields, and range/index
// value types — not a type checker; a sort call anywhere in the function
// (sort.*, slices.*, anything named *Sort*) counts as ordering the
// output. A deliberate unordered append can be waived with a
// `//tddlint:unordered` comment on the range statement or the line above.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc:  "flag map iteration that appends to an outer slice in a function that never sorts",
	AppliesTo: func(path string) bool {
		return underTDD(path, "tdd/internal/engine", "tdd/internal/server")
	},
	Run: runMapRange,
}

func runMapRange(p *Pass) {
	idx := buildTypeIndex(p.Files)
	for _, f := range p.Files {
		waived := commentWaivers(p.Fset, f, "tddlint:unordered")
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			scope := functionScope(fn, idx)
			if functionSorts(fn) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := idx.exprType(rs.X, scope)
				if !strings.HasPrefix(t, "map[") {
					return true
				}
				line := p.Fset.Position(rs.Pos()).Line
				if waived[line] || waived[line-1] {
					return true
				}
				if target := appendsToOuter(rs); target != "" {
					p.Reportf(rs.Pos(), "map iteration feeds append to %s in a function with no sort; map order is randomized — sort the result or annotate //tddlint:unordered", target)
				}
				return true
			})
		}
	}
}

// functionSorts reports whether the function calls anything that orders a
// slice: the sort or slices packages, or any function/method whose name
// contains "Sort" (ast.SortFacts, sortFacts, ...).
func functionSorts(fn *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch f := call.Fun.(type) {
		case *ast.Ident:
			if strings.Contains(f.Name, "Sort") || strings.Contains(f.Name, "sort") {
				found = true
			}
		case *ast.SelectorExpr:
			if x, ok := f.X.(*ast.Ident); ok && (x.Name == "sort" || x.Name == "slices") {
				found = true
			}
			if strings.Contains(f.Sel.Name, "Sort") {
				found = true
			}
		}
		return !found
	})
	return found
}

// appendsToOuter finds `x = append(x, ...)` inside the range body where x
// is not declared within the body itself; it returns the rendered target
// or "" when none is found.
func appendsToOuter(rs *ast.RangeStmt) string {
	declared := make(map[string]bool)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE {
				for _, l := range s.Lhs {
					if id, ok := l.(*ast.Ident); ok {
						declared[id.Name] = true
					}
				}
			}
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				for _, sp := range gd.Specs {
					if vs, ok := sp.(*ast.ValueSpec); ok {
						for _, name := range vs.Names {
							declared[name.Name] = true
						}
					}
				}
			}
		}
		return true
	})
	target := ""
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || target != "" {
			return target == ""
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" || len(call.Args) == 0 {
			return true
		}
		switch dst := call.Args[0].(type) {
		case *ast.Ident:
			if !declared[dst.Name] {
				target = dst.Name
			}
		case *ast.SelectorExpr:
			target = renderExpr(dst)
		}
		return target == ""
	})
	return target
}

// typeIndex resolves rough type strings for expressions: struct fields,
// package-level vars, and whatever a function's scope recorded.
type typeIndex struct {
	// fields maps a struct type name to field name to rendered type.
	fields map[string]map[string]string
	// pkgVars maps package-level var names to rendered types.
	pkgVars map[string]string
	// named maps a defined type name to its underlying rendered type
	// (for `type registry map[string]*entry`).
	named map[string]string
}

func buildTypeIndex(files []*ast.File) *typeIndex {
	idx := &typeIndex{
		fields:  make(map[string]map[string]string),
		pkgVars: make(map[string]string),
		named:   make(map[string]string),
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, sp := range gd.Specs {
				switch s := sp.(type) {
				case *ast.TypeSpec:
					if st, ok := s.Type.(*ast.StructType); ok {
						m := make(map[string]string)
						for _, field := range st.Fields.List {
							t := renderExpr(field.Type)
							for _, name := range field.Names {
								m[name.Name] = t
							}
						}
						idx.fields[s.Name.Name] = m
					} else {
						idx.named[s.Name.Name] = renderExpr(s.Type)
					}
				case *ast.ValueSpec:
					if s.Type != nil {
						t := renderExpr(s.Type)
						for _, name := range s.Names {
							idx.pkgVars[name.Name] = t
						}
					}
				}
			}
		}
	}
	return idx
}

// resolve chases named types to their underlying form so map-ness shows.
func (idx *typeIndex) resolve(t string) string {
	for i := 0; i < 8; i++ {
		base := strings.TrimPrefix(t, "*")
		u, ok := idx.named[base]
		if !ok {
			return t
		}
		t = u
	}
	return t
}

// exprType renders a rough type for e given local variable types in
// scope. Returns "" when unknown.
func (idx *typeIndex) exprType(e ast.Expr, scope map[string]string) string {
	switch x := e.(type) {
	case *ast.Ident:
		if t, ok := scope[x.Name]; ok {
			return idx.resolve(t)
		}
		if t, ok := idx.pkgVars[x.Name]; ok {
			return idx.resolve(t)
		}
	case *ast.SelectorExpr:
		base := strings.TrimPrefix(idx.exprType(x.X, scope), "*")
		if m, ok := idx.fields[base]; ok {
			return idx.resolve(m[x.Sel.Name])
		}
	case *ast.IndexExpr:
		t := idx.exprType(x.X, scope)
		if strings.HasPrefix(t, "map[") {
			return idx.resolve(mapValueType(t))
		}
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "make" && len(x.Args) > 0 {
			return idx.resolve(renderExpr(x.Args[0]))
		}
	case *ast.CompositeLit:
		if x.Type != nil {
			return idx.resolve(renderExpr(x.Type))
		}
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return "*" + idx.exprType(x.X, scope)
		}
	case *ast.ParenExpr:
		return idx.exprType(x.X, scope)
	}
	return ""
}

// functionScope collects rough types for the function's receiver,
// parameters, and locals assigned from type-revealing expressions (make,
// composite literals, map indexing, map ranges). Source order, no
// shadowing analysis — good enough for lint.
func functionScope(fn *ast.FuncDecl, idx *typeIndex) map[string]string {
	scope := make(map[string]string)
	if fn.Recv != nil {
		for _, field := range fn.Recv.List {
			t := renderExpr(field.Type)
			for _, name := range field.Names {
				scope[name.Name] = t
			}
		}
	}
	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			t := renderExpr(field.Type)
			for _, name := range field.Names {
				scope[name.Name] = t
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
				if id, ok := s.Lhs[0].(*ast.Ident); ok {
					if t := idx.exprType(s.Rhs[0], scope); t != "" {
						scope[id.Name] = t
					}
				}
			}
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				for _, sp := range gd.Specs {
					if vs, ok := sp.(*ast.ValueSpec); ok && vs.Type != nil {
						t := renderExpr(vs.Type)
						for _, name := range vs.Names {
							scope[name.Name] = t
						}
					}
				}
			}
		case *ast.RangeStmt:
			t := idx.exprType(s.X, scope)
			if strings.HasPrefix(t, "map[") {
				if id, ok := s.Key.(*ast.Ident); ok && id.Name != "_" {
					scope[id.Name] = mapKeyType(t)
				}
				if id, ok := s.Value.(*ast.Ident); ok && id != nil && id.Name != "_" {
					scope[id.Name] = idx.resolve(mapValueType(t))
				}
			} else if strings.HasPrefix(t, "[]") {
				if id, ok := s.Value.(*ast.Ident); ok && id != nil && id.Name != "_" {
					scope[id.Name] = idx.resolve(t[2:])
				}
			}
		}
		return true
	})
	return scope
}

// mapKeyType extracts K from "map[K]V" (bracket-aware).
func mapKeyType(t string) string {
	depth := 0
	for i := len("map["); i < len(t); i++ {
		switch t[i] {
		case '[':
			depth++
		case ']':
			if depth == 0 {
				return t[len("map["):i]
			}
			depth--
		}
	}
	return ""
}

// mapValueType extracts V from "map[K]V" (bracket-aware).
func mapValueType(t string) string {
	depth := 0
	for i := len("map["); i < len(t); i++ {
		switch t[i] {
		case '[':
			depth++
		case ']':
			if depth == 0 {
				return t[i+1:]
			}
			depth--
		}
	}
	return ""
}

// commentWaivers maps line numbers carrying the given annotation.
func commentWaivers(fset *token.FileSet, f *ast.File, annotation string) map[int]bool {
	out := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, annotation) {
				out[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return out
}

// renderExpr prints an expression back to source text.
func renderExpr(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), e); err != nil {
		return ""
	}
	return buf.String()
}
