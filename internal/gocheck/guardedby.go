package gocheck

import (
	"go/ast"
	"strings"
)

// GuardedBy enforces a lock-annotation convention on struct fields: a
// field whose doc or line comment contains `guarded-by: <mu>` may only be
// accessed through the receiver inside methods that either lock
// `recv.<mu>` (Lock or RLock anywhere in the method — acquisition order
// and release are the race detector's job, presence is lint's) or are
// annotated `//tddlint:holds <mu>` in their doc comment, for helpers
// documented as called with the lock held.
//
// The check is syntactic and method-scoped: it inspects methods whose
// receiver type declares the annotated field and flags `recv.field`
// accesses in unlocked, unannotated methods. Access through aliases or
// from other packages is out of scope (the fields are unexported, so
// other packages cannot touch them anyway).
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc:  "flag access to `guarded-by: mu` fields outside a method that locks mu or is annotated tddlint:holds",
	AppliesTo: func(path string) bool {
		return underTDD(path, "tdd")
	},
	Run: runGuardedBy,
}

func runGuardedBy(p *Pass) {
	// guards maps struct type name -> field name -> mutex field name.
	guards := make(map[string]map[string]string)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, sp := range gd.Specs {
				ts, ok := sp.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					mu := guardAnnotation(field)
					if mu == "" {
						continue
					}
					if guards[ts.Name.Name] == nil {
						guards[ts.Name.Name] = make(map[string]string)
					}
					for _, name := range field.Names {
						guards[ts.Name.Name][name.Name] = mu
					}
				}
			}
		}
	}
	if len(guards) == 0 {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil || len(fn.Recv.List) == 0 {
				continue
			}
			recvField := fn.Recv.List[0]
			typeName := receiverTypeName(recvField.Type)
			fieldGuards, guarded := guards[typeName]
			if !guarded || len(recvField.Names) == 0 {
				continue
			}
			recv := recvField.Names[0].Name
			held := holdsAnnotations(fn)
			for mu := range lockedMutexes(fn, recv) {
				held[mu] = true
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				x, ok := sel.X.(*ast.Ident)
				if !ok || x.Name != recv {
					return true
				}
				mu, guarded := fieldGuards[sel.Sel.Name]
				if !guarded || held[mu] {
					return true
				}
				p.Reportf(sel.Pos(), "%s.%s is guarded-by: %s but %s neither locks %s.%s nor is annotated //tddlint:holds %s", recv, sel.Sel.Name, mu, fn.Name.Name, recv, mu, mu)
				return true
			})
		}
	}
}

// guardAnnotation extracts the mutex name from a field's `guarded-by:`
// doc or line comment, or "".
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if i := strings.Index(c.Text, "guarded-by:"); i >= 0 {
				rest := strings.TrimSpace(c.Text[i+len("guarded-by:"):])
				if j := strings.IndexAny(rest, " \t.,;"); j >= 0 {
					rest = rest[:j]
				}
				return rest
			}
		}
	}
	return ""
}

// holdsAnnotations reads `tddlint:holds mu1 mu2` from the method's doc
// comment.
func holdsAnnotations(fn *ast.FuncDecl) map[string]bool {
	out := make(map[string]bool)
	if fn.Doc == nil {
		return out
	}
	for _, c := range fn.Doc.List {
		i := strings.Index(c.Text, "tddlint:holds")
		if i < 0 {
			continue
		}
		for _, mu := range strings.Fields(c.Text[i+len("tddlint:holds"):]) {
			out[mu] = true
		}
	}
	return out
}

// lockedMutexes finds every `recv.<mu>.Lock()` / `RLock()` call in the
// method and returns the set of mu names.
func lockedMutexes(fn *ast.FuncDecl, recv string) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		inner, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if x, ok := inner.X.(*ast.Ident); ok && x.Name == recv {
			out[inner.Sel.Name] = true
		}
		return true
	})
	return out
}

// receiverTypeName unwraps *T, T, and generic receivers to the bare type
// name.
func receiverTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return receiverTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr:
		return receiverTypeName(t.X)
	}
	return ""
}
