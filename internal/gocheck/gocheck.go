// Package gocheck is the Tier-B static analyzer: project-specific
// checkers for the Go sources of this repository, enforcing the engine's
// determinism contract at compile time (PR 4 guarantees bit-identical
// derived-fact order, Stats, and traces across worker counts; these
// checks catch the two classic ways to break that — unsorted map
// iteration and wall-clock/randomness in fixpoint code — plus unlocked
// access to mutex-guarded fields).
//
// The framework is deliberately go/analysis-shaped (Analyzer, Pass,
// Report) but built on the standard library's go/ast and go/parser only:
// this module has no dependencies, and golang.org/x/tools is not
// available in the build environment. Analysis is therefore syntactic —
// one package at a time, no type checker — and each checker documents the
// approximations it makes. The vettool entry point in vettool.go speaks
// `go vet -vettool` wire protocol so the checkers run under the standard
// vet driver in ci.sh.
package gocheck

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one named check over a parsed package.
type Analyzer struct {
	Name string
	Doc  string
	// AppliesTo reports whether the analyzer wants to see the package
	// with the given import path. Analyzers scope themselves to the
	// subsystems whose invariants they guard.
	AppliesTo func(importPath string) bool
	Run       func(p *Pass)
}

// Pass hands an analyzer a parsed package and collects its findings.
type Pass struct {
	Fset       *token.FileSet
	Files      []*ast.File
	ImportPath string

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	p.diags = append(p.diags, Diagnostic{
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one Tier-B finding, formatted file:line:col like vet.
type Diagnostic struct {
	Analyzer string
	File     string
	Line     int
	Col      int
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.File, d.Line, d.Col, d.Message, d.Analyzer)
}

// Analyzers is the check suite, in reporting order.
var Analyzers = []*Analyzer{MapRange, DetFix, GuardedBy, CloneCheck}

// underTDD reports whether path is this module or a package under it.
func underTDD(path string, subs ...string) bool {
	for _, s := range subs {
		if path == s || strings.HasPrefix(path, s+"/") {
			return true
		}
	}
	return false
}

// RunFiles parses the named Go files as one package and runs every
// analyzer that applies to importPath. Test files (_test.go) are skipped:
// tests may intentionally exercise nondeterminism or build fixtures
// without locks. Findings come back sorted by file, line, column.
func RunFiles(importPath string, fileNames []string) ([]Diagnostic, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range fileNames {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	var all []Diagnostic
	for _, a := range Analyzers {
		if a.AppliesTo != nil && !a.AppliesTo(importPath) {
			continue
		}
		p := &Pass{Fset: fset, Files: files, ImportPath: importPath}
		a.Run(p)
		for _, d := range p.diags {
			d.Analyzer = a.Name
			all = append(all, d)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Message < b.Message
	})
	return all, nil
}
