package gocheck

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// VetMain implements the `go vet -vettool=<binary>` wire protocol with
// the standard library only (golang.org/x/tools/go/analysis/unitchecker
// is not available in this module). The protocol, as spoken by cmd/go:
//
//  1. `tool -flags` — print a JSON array describing the tool's flags
//     (ours has none, so "[]").
//  2. `tool -V=full` — print "name version buildid"; go vet folds this
//     into its action cache key.
//  3. `tool <dir>/vet.cfg` — once per package in the build graph,
//     dependencies included. The cfg is JSON carrying ImportPath,
//     GoFiles, VetxOnly (true for pure dependency passes), and
//     VetxOutput, a path the tool MUST create (cmd/go stats it; missing
//     output fails the build). Facts go there in the real unitchecker;
//     our analyzers are package-local, so an empty file satisfies the
//     contract.
//
// Diagnostics print to stderr as file:line:col lines and the process
// exits 2, which go vet reports per package. Exit 0 means clean.
//
// VetMain returns the process exit code; it is the entire main of
// cmd/tddlint when invoked by go vet (detected by the caller via the
// -flags/-V=/\*.cfg argument shapes).
func VetMain(args []string, stdout, stderr io.Writer) int {
	if len(args) == 1 {
		switch {
		case args[0] == "-flags":
			fmt.Fprintln(stdout, "[]")
			return 0
		case strings.HasPrefix(args[0], "-V="):
			fmt.Fprintf(stdout, "tddlint version tdd-gocheck-1\n")
			return 0
		}
	}
	cfgPath := ""
	for _, a := range args {
		if strings.HasSuffix(a, ".cfg") {
			cfgPath = a
		}
	}
	if cfgPath == "" {
		fmt.Fprintf(stderr, "tddlint: vet mode expects -flags, -V=full, or a *.cfg argument, got %q\n", args)
		return 1
	}
	var cfg vetConfig
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "tddlint: %v\n", err)
		return 1
	}
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "tddlint: %s: %v\n", cfgPath, err)
		return 1
	}
	// The facts file must exist whether or not we analyze this package.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(stderr, "tddlint: %v\n", err)
			return 1
		}
	}
	// Dependency passes (VetxOnly) and foreign packages need no analysis;
	// this keeps the sweep over ./... fast even though go vet feeds us
	// the whole standard library.
	if cfg.VetxOnly || !underTDD(cfg.ImportPath, "tdd") {
		return 0
	}
	diags, err := RunFiles(cfg.ImportPath, cfg.GoFiles)
	if err != nil {
		fmt.Fprintf(stderr, "tddlint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintln(stderr, d.String())
	}
	return 2
}

// vetConfig is the subset of cmd/go's vet.cfg JSON the tool consumes.
type vetConfig struct {
	ImportPath string
	GoFiles    []string
	VetxOnly   bool
	VetxOutput string
}

// IsVetInvocation reports whether the argument list looks like a go vet
// callback rather than a tddlint CLI use, so cmd/tddlint can serve both
// from one binary.
func IsVetInvocation(args []string) bool {
	if len(args) == 1 && (args[0] == "-flags" || strings.HasPrefix(args[0], "-V=")) {
		return true
	}
	for _, a := range args {
		if strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}
