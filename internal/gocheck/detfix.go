package gocheck

import (
	"go/ast"
	"strconv"
)

// DetFix bans wall-clock time and randomness in the evaluation and
// ingestion pipeline: the "time", "math/rand", and "math/rand/v2"
// imports are forbidden in internal/engine, internal/core, internal/inc,
// internal/wal, and internal/progan (whose analysis reports, slices, and
// bounds must be pure functions of the AST — they feed fingerprints and
// the planner). The engine's results, Stats, and derivation order
// are part of its contract (bit-identical across worker counts and
// runs); a time.Now branch or rand tie-break would make the fixpoint's
// output depend on the machine, which the differential tests could only
// catch probabilistically. Banning the import bans every use. (Timing
// belongs in internal/obs and the server layer, which are free to import
// time.)
//
// internal/wal carries one scoped exemption, recorded in
// detFixWallClockAllowed rather than as inline suppressions: its
// background fsync ticker and snapshot-age stats are operational
// concerns that genuinely need the clock, and no model-visible value
// flows from it — the record format, hash chain, and recovery are
// clock-free. Randomness stays banned there; a random tie-break in
// recovery would be exactly the nondeterminism this check exists to
// stop.
var DetFix = &Analyzer{
	Name: "detfix",
	Doc:  "forbid time and math/rand imports in fixpoint packages (determinism contract)",
	AppliesTo: func(path string) bool {
		return underTDD(path, "tdd/internal/engine", "tdd/internal/core", "tdd/internal/inc", "tdd/internal/wal", "tdd/internal/progan")
	},
	Run: runDetFix,
}

var detFixBanned = map[string]string{
	"time":         "wall-clock time",
	"math/rand":    "randomness",
	"math/rand/v2": "randomness",
}

// detFixWallClockAllowed lists packages exempt from the "time" ban (and
// only that ban). An explicit allowlist keeps the policy auditable in
// one place: adding a package here is a reviewed decision, unlike an
// inline suppression scattered through the code.
var detFixWallClockAllowed = map[string]bool{
	"tdd/internal/wal": true, // fsync ticker + snapshot age; no model-visible value derives from the clock
}

func runDetFix(p *Pass) {
	allowClock := detFixWallClockAllowed[p.ImportPath]
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			why, banned := detFixBanned[path]
			if !banned || (path == "time" && allowClock) {
				continue
			}
			p.Reportf(imp.Pos(), "import of %q brings %s into fixpoint code; the engine's output must be deterministic across runs and worker counts", path, why)
		}
		// Belt and braces: a dot-import or renamed import still surfaces
		// as the path above, but also flag direct selector uses in case a
		// future refactor routes them through an allowed wrapper import.
		// The wall-clock allowlist exempts time selectors only — rand
		// selectors stay flagged even in allowlisted packages.
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			switch id.Name {
			case "time":
				if !allowClock && sel.Sel.Name == "Now" {
					p.Reportf(sel.Pos(), "time.Now in fixpoint code; derive timestamps outside internal/engine and internal/core")
				}
			case "rand":
				p.Reportf(sel.Pos(), "rand.%s in fixpoint code; the engine's output must be deterministic across runs and worker counts", sel.Sel.Name)
			}
			return true
		})
	}
}
