package gocheck

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// lintFixture writes src as a one-file package in a temp dir, runs the
// suite against importPath, and returns the findings' analyzer names.
func lintFixture(t *testing.T, importPath, src string) []Diagnostic {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "fixture.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	diags, err := RunFiles(importPath, []string{path})
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

func analyzers(diags []Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, d.Analyzer)
	}
	return out
}

func TestMapRangeFlagsUnsortedAppend(t *testing.T) {
	diags := lintFixture(t, "tdd/internal/engine", `package engine
func collect(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`)
	if got := analyzers(diags); len(got) != 1 || got[0] != "maprange" {
		t.Fatalf("diagnostics = %v, want one maprange finding", diags)
	}
}

func TestMapRangeAllowsSortedFunction(t *testing.T) {
	diags := lintFixture(t, "tdd/internal/engine", `package engine
import "sort"
func collect(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
`)
	if len(diags) != 0 {
		t.Fatalf("sorted function flagged: %v", diags)
	}
}

func TestMapRangeWaiver(t *testing.T) {
	diags := lintFixture(t, "tdd/internal/server", `package server
func collect(m map[string]int) []string {
	var out []string
	//tddlint:unordered
	for k := range m {
		out = append(out, k)
	}
	return out
}
`)
	if len(diags) != 0 {
		t.Fatalf("waived range flagged: %v", diags)
	}
}

func TestMapRangeScopedToResponsePackages(t *testing.T) {
	diags := lintFixture(t, "tdd/internal/obs", `package obs
func collect(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`)
	if len(diags) != 0 {
		t.Fatalf("out-of-scope package flagged: %v", diags)
	}
}

func TestDetFixBansTimeImportInFixpointCode(t *testing.T) {
	src := `package engine
import "time"
func now() time.Time { return time.Now() }
`
	diags := lintFixture(t, "tdd/internal/engine", src)
	if len(diags) < 2 {
		t.Fatalf("diagnostics = %v, want import + time.Now findings", diags)
	}
	for _, d := range diags {
		if d.Analyzer != "detfix" {
			t.Errorf("unexpected analyzer %q", d.Analyzer)
		}
	}
	// The same file is fine outside the fixpoint packages.
	if out := lintFixture(t, "tdd/internal/obs", strings.Replace(src, "package engine", "package obs", 1)); len(out) != 0 {
		t.Fatalf("obs may import time, got %v", out)
	}
}

func TestDetFixBansMathRand(t *testing.T) {
	diags := lintFixture(t, "tdd/internal/core", `package core
import "math/rand"
func pick() int { return rand.Int() }
`)
	if len(diags) < 2 {
		t.Fatalf("diagnostics = %v, want import + rand.Int findings", diags)
	}
	for _, d := range diags {
		if d.Analyzer != "detfix" {
			t.Errorf("unexpected analyzer %q", d.Analyzer)
		}
	}
}

func TestDetFixCoversIncrementalPipeline(t *testing.T) {
	// internal/inc sits on the ingestion path; it inherits the full ban.
	diags := lintFixture(t, "tdd/internal/inc", `package inc
import "time"
func now() time.Time { return time.Now() }
`)
	if len(diags) == 0 {
		t.Fatal("internal/inc must be in detfix scope")
	}
}

func TestDetFixWALWallClockAllowlist(t *testing.T) {
	// internal/wal is on the explicit wall-clock allowlist: its fsync
	// ticker and snapshot ages need the clock, and nothing model-visible
	// derives from it.
	clock := `package wal
import "time"
func tick() time.Time { return time.Now() }
`
	if diags := lintFixture(t, "tdd/internal/wal", clock); len(diags) != 0 {
		t.Fatalf("wal wall clock should be allowlisted, got %v", diags)
	}
	// The allowlist covers "time" only — randomness stays banned in wal.
	diags := lintFixture(t, "tdd/internal/wal", `package wal
import "math/rand"
func pick() int { return rand.Int() }
`)
	if len(diags) < 2 {
		t.Fatalf("wal math/rand must stay banned (import + selector), got %v", diags)
	}
	for _, d := range diags {
		if d.Analyzer != "detfix" {
			t.Errorf("unexpected analyzer %q", d.Analyzer)
		}
	}
	// The selector belt-and-braces must also survive the allowlist: a
	// rand use routed through a wrapper import (no banned import line to
	// flag) stays caught even in the clock-exempt package.
	diags = lintFixture(t, "tdd/internal/wal", `package wal
import "tdd/internal/fakewrap/rand"
func pick() int { return rand.Int() }
`)
	if got := analyzers(diags); len(got) != 1 || got[0] != "detfix" {
		t.Fatalf("wrapper-routed rand selector in wal must be flagged, got %v", diags)
	}
}

const guardedStruct = `package core
import "sync"
type box struct {
	mu  sync.Mutex
	val int // guarded-by: mu
}
`

func TestGuardedByFlagsUnlockedAccess(t *testing.T) {
	diags := lintFixture(t, "tdd/internal/core", guardedStruct+`
func (b *box) peek() int { return b.val }
`)
	if got := analyzers(diags); len(got) != 1 || got[0] != "guardedby" {
		t.Fatalf("diagnostics = %v, want one guardedby finding", diags)
	}
}

func TestGuardedByAcceptsLockAndHoldsAnnotation(t *testing.T) {
	diags := lintFixture(t, "tdd/internal/core", guardedStruct+`
func (b *box) get() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.val
}

// getLocked returns the value.
//
//tddlint:holds mu
func (b *box) getLocked() int { return b.val }
`)
	if len(diags) != 0 {
		t.Fatalf("locked/annotated access flagged: %v", diags)
	}
}

func TestVetMainProtocol(t *testing.T) {
	var out, errOut strings.Builder

	if code := VetMain([]string{"-flags"}, &out, &errOut); code != 0 || strings.TrimSpace(out.String()) != "[]" {
		t.Fatalf("-flags: code %d out %q", code, out.String())
	}
	out.Reset()
	if code := VetMain([]string{"-V=full"}, &out, &errOut); code != 0 || !strings.HasPrefix(out.String(), "tddlint version ") {
		t.Fatalf("-V=full: code %d out %q", code, out.String())
	}

	// A VetxOnly dependency package: must create the facts file and stay
	// silent even if its sources would trip a checker.
	dir := t.TempDir()
	src := filepath.Join(dir, "dep.go")
	if err := os.WriteFile(src, []byte("package dep\nimport _ \"time\"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "dep.vetx")
	cfg := filepath.Join(dir, "vet.cfg")
	writeCfg := func(importPath string, vetxOnly bool) {
		b, err := json.Marshal(map[string]any{
			"ImportPath": importPath,
			"GoFiles":    []string{src},
			"VetxOnly":   vetxOnly,
			"VetxOutput": vetx,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(cfg, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	writeCfg("tdd/internal/engine", true)
	errOut.Reset()
	if code := VetMain([]string{cfg}, &out, &errOut); code != 0 {
		t.Fatalf("VetxOnly pass: code %d stderr %q", code, errOut.String())
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Fatalf("facts file not created: %v", err)
	}

	// The same package analyzed for real: detfix fires, exit 2, finding on
	// stderr.
	os.Remove(vetx)
	writeCfg("tdd/internal/engine", false)
	errOut.Reset()
	if code := VetMain([]string{cfg}, &out, &errOut); code != 2 {
		t.Fatalf("analysis pass: code %d stderr %q", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "detfix") {
		t.Fatalf("stderr %q does not name detfix", errOut.String())
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Fatalf("facts file not created on diagnostic exit: %v", err)
	}

	// Foreign packages are skipped entirely.
	writeCfg("example.com/other", false)
	errOut.Reset()
	if code := VetMain([]string{cfg}, &out, &errOut); code != 0 {
		t.Fatalf("foreign package: code %d stderr %q", code, errOut.String())
	}
}

func TestIsVetInvocation(t *testing.T) {
	for _, args := range [][]string{{"-flags"}, {"-V=full"}, {"/tmp/x/vet.cfg"}} {
		if !IsVetInvocation(args) {
			t.Errorf("IsVetInvocation(%v) = false", args)
		}
	}
	for _, args := range [][]string{{}, {"file.tdd"}, {"-json", "file.tdd"}} {
		if IsVetInvocation(args) {
			t.Errorf("IsVetInvocation(%v) = true", args)
		}
	}
}

func TestRunFilesSkipsTestFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fixture_test.go")
	if err := os.WriteFile(path, []byte("package engine\nimport _ \"time\"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	diags, err := RunFiles("tdd/internal/engine", []string{path})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("test file analyzed: %v", diags)
	}
}

// The join-order planner (engine/plan.go) must be a pure function of the
// compiled rules and the store's cardinality counters: a planner that
// consulted the wall clock (say, to time candidate orders) would pick
// different plans run to run and break the PlanFingerprint determinism
// contract. detfix covers it because it lives in internal/engine.
func TestDetFixBansWallClockInJoinPlanner(t *testing.T) {
	diags := lintFixture(t, "tdd/internal/engine", `package engine
import "time"
type planStepX struct{ lit int }
func planRuleX(costs []int) []planStepX {
	deadline := time.Now().Add(time.Millisecond)
	var out []planStepX
	for i := range costs {
		if time.Now().After(deadline) {
			break
		}
		out = append(out, planStepX{lit: i})
	}
	return out
}
`)
	if len(diags) < 2 {
		t.Fatalf("diagnostics = %v, want import + time.Now findings in planner code", diags)
	}
	for _, d := range diags {
		if d.Analyzer != "detfix" {
			t.Errorf("unexpected analyzer %q", d.Analyzer)
		}
	}
}

const snapBox = `package engine
type Snap struct {
	n     int
	cells map[string]int
	rows  []int
}
`

func TestCloneCheckFlagsIgnoredAliasFields(t *testing.T) {
	diags := lintFixture(t, "tdd/internal/engine", snapBox+`
func (s *Snap) Clone() *Snap { return &Snap{n: s.n} }
`)
	if got := analyzers(diags); len(got) != 2 || got[0] != "clonecheck" || got[1] != "clonecheck" {
		t.Fatalf("diagnostics = %v, want clonecheck findings for cells and rows", diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, `"cells"`) && !strings.Contains(d.Message, `"rows"`) {
			t.Errorf("finding names neither field: %v", d)
		}
	}
}

func TestCloneCheckAcceptsMentionedFields(t *testing.T) {
	diags := lintFixture(t, "tdd/internal/engine", snapBox+`
func (s *Snap) Clone() *Snap {
	c := &Snap{n: s.n, rows: append([]int(nil), s.rows...)}
	c.cells = make(map[string]int, len(s.cells))
	for k, v := range s.cells {
		c.cells[k] = v
	}
	return c
}
`)
	if len(diags) != 0 {
		t.Fatalf("deep-copying clone flagged: %v", diags)
	}
}

func TestCloneCheckWaivers(t *testing.T) {
	// Doc-comment waiver for one field, inline for the other; both the
	// shares and resets spellings count.
	diags := lintFixture(t, "tdd/internal/engine", snapBox+`
// Clone shares the immutable cell table.
//
//tddlint:shares cells
func (s *Snap) Clone() *Snap {
	//tddlint:resets rows -- rebuilt lazily
	return &Snap{n: s.n}
}
`)
	if len(diags) != 0 {
		t.Fatalf("waived fields flagged: %v", diags)
	}
}

func TestCloneCheckNamedSliceTypeAndValueReceiver(t *testing.T) {
	diags := lintFixture(t, "tdd/internal/engine", `package engine
type rowList []int
type Snap struct {
	rows rowList
}
func (s Snap) Clone() Snap { return Snap{} }
`)
	if got := analyzers(diags); len(got) != 1 || got[0] != "clonecheck" {
		t.Fatalf("diagnostics = %v, want one clonecheck finding for the named slice field", diags)
	}
}

func TestCloneCheckExemptsProjections(t *testing.T) {
	// A Snapshot that returns a different type is a projection, not a
	// copy constructor; it owes nothing to the receiver's fields.
	diags := lintFixture(t, "tdd/internal/engine", snapBox+`
func (s *Snap) Snapshot() []int { return append([]int(nil), s.rows...) }
`)
	if len(diags) != 0 {
		t.Fatalf("projection flagged: %v", diags)
	}
}

func TestCloneCheckScoped(t *testing.T) {
	diags := lintFixture(t, "tdd/internal/server", snapBox+`
func (s *Snap) Clone() *Snap { return &Snap{n: s.n} }
`)
	if len(diags) != 0 {
		t.Fatalf("out-of-scope package flagged: %v", diags)
	}
}
