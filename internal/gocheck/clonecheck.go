package gocheck

import (
	"go/ast"
	"strings"
)

// CloneCheck guards the copy-on-write snapshot discipline: a method named
// Clone or Snapshot that returns its own receiver type is a snapshot
// constructor, and every map- or slice-typed field of the receiver struct
// is a potential alias between the original and the copy. An aliased map
// written through the clone corrupts the original silently — exactly the
// bug class behind shared Stats.Index cells — so the checker requires the
// method to take an explicit position on each such field: either handle
// it (any mention of the field in the body counts — the analysis is
// syntactic and cannot prove the copy is deep) or waive it with a
// directive comment in the method's doc or body:
//
//	//tddlint:shares prof occ     -- aliasing is intended (immutable/shared)
//	//tddlint:resets plans en     -- the clone deliberately starts empty
//
// A field that is neither mentioned nor waived is reported. The waiver
// split is deliberate documentation: "shares" asserts the aliased value
// is never written through either side, "resets" asserts the zero value
// is a correct (re-derivable) starting state for the copy.
//
// Approximations, per the package's no-type-checker ground rules: only
// fields whose declared type is literally a map, a slice, or a
// package-local named map/slice type are considered; a shallow mention
// like `c.m = s.m` satisfies the check (the directive comments exist so
// intent still gets written down); methods and receiver structs must be
// declared in the same package (true for every snapshot type here).
var CloneCheck = &Analyzer{
	Name: "clonecheck",
	Doc:  "Clone/Snapshot methods must copy, reset, or explicitly share every map/slice field",
	AppliesTo: func(path string) bool {
		return underTDD(path, "tdd/internal/engine", "tdd/internal/core", "tdd/internal/inc", "tdd/internal/ast", "tdd/internal/progan")
	},
	Run: runCloneCheck,
}

const (
	sharesMarker = "tddlint:shares"
	resetsMarker = "tddlint:resets"
)

// aliasKind classifies a field type as map/slice-like, resolving named
// types through the package-local defs table (one level is enough: a
// named type whose underlying type is again a package-local name is not
// a pattern this codebase uses).
func aliasKind(typ ast.Expr, defs map[string]ast.Expr) string {
	switch t := typ.(type) {
	case *ast.MapType:
		return "map"
	case *ast.ArrayType:
		if t.Len == nil {
			return "slice"
		}
	case *ast.Ident:
		if under, ok := defs[t.Name]; ok {
			switch under.(type) {
			case *ast.MapType:
				return "map"
			case *ast.ArrayType:
				if under.(*ast.ArrayType).Len == nil {
					return "slice"
				}
			}
		}
	}
	return ""
}

// typeName unwraps a receiver or result type expression to its base
// identifier ("*Evaluator" and "Evaluator" both yield "Evaluator").
func typeName(typ ast.Expr) string {
	for {
		switch t := typ.(type) {
		case *ast.StarExpr:
			typ = t.X
		case *ast.Ident:
			return t.Name
		case *ast.IndexExpr: // generic instantiation: unwrap the base
			typ = t.X
		default:
			return ""
		}
	}
}

// waivers collects the field names listed after shares/resets markers in
// the comment groups attached to the method (doc comment plus every
// comment inside the body's source range).
func waivers(file *ast.File, fn *ast.FuncDecl) map[string]bool {
	out := make(map[string]bool)
	collect := func(cg *ast.CommentGroup) {
		if cg == nil {
			return
		}
		for _, c := range cg.List {
			text := c.Text
			for _, m := range []string{sharesMarker, resetsMarker} {
				idx := strings.Index(text, m)
				if idx < 0 {
					continue
				}
				for _, f := range strings.FieldsFunc(text[idx+len(m):], func(r rune) bool {
					return r == ' ' || r == '\t' || r == ','
				}) {
					if strings.HasPrefix(f, "--") {
						break
					}
					out[f] = true
				}
			}
		}
	}
	collect(fn.Doc)
	for _, cg := range file.Comments {
		if cg.Pos() >= fn.Pos() && cg.End() <= fn.End() {
			collect(cg)
		}
	}
	return out
}

func runCloneCheck(p *Pass) {
	// First pass over the whole package: struct defs and named-type
	// underlying expressions, so a method in one file can see a receiver
	// struct declared in another.
	structs := make(map[string]*ast.StructType)
	defs := make(map[string]ast.Expr)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				defs[ts.Name.Name] = ts.Type
				if st, ok := ts.Type.(*ast.StructType); ok {
					structs[ts.Name.Name] = st
				}
			}
		}
	}

	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil {
				continue
			}
			if fn.Name.Name != "Clone" && fn.Name.Name != "Snapshot" {
				continue
			}
			recv := typeName(fn.Recv.List[0].Type)
			st := structs[recv]
			if st == nil {
				continue
			}
			// Only snapshot constructors: the result must be the receiver
			// type itself. Projections (Snapshot() []Fact) are exempt —
			// they do not promise an independent copy of the whole struct.
			if fn.Type.Results == nil || len(fn.Type.Results.List) == 0 ||
				typeName(fn.Type.Results.List[0].Type) != recv {
				continue
			}

			mentioned := make(map[string]bool)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.SelectorExpr:
					mentioned[e.Sel.Name] = true
				case *ast.KeyValueExpr:
					if id, ok := e.Key.(*ast.Ident); ok {
						mentioned[id.Name] = true
					}
				}
				return true
			})
			waived := waivers(f, fn)

			for _, field := range st.Fields.List {
				kind := aliasKind(field.Type, defs)
				if kind == "" {
					continue
				}
				for _, name := range field.Names {
					if mentioned[name.Name] || waived[name.Name] {
						continue
					}
					p.Reportf(fn.Pos(), "%s.%s ignores %s field %q: copy it, or waive with //tddlint:shares %s (intended alias) or //tddlint:resets %s (clone starts empty)",
						recv, fn.Name.Name, kind, name.Name, name.Name, name.Name)
				}
			}
		}
	}
}
