package progan

import (
	"fmt"
	"strings"
)

// ReportJSON is the wire form of a report, served by tddserve's
// /debug/graph and printed by `tddcheck graph -json`.
type ReportJSON struct {
	Preds []PredNode `json:"preds"`
	SCCs  []SCC      `json:"sccs"`
	// Rules maps rule index -> source text, so SCC.Rules is resolvable
	// client-side.
	Rules []string `json:"rules"`
}

// JSON builds the wire form of the report.
func (r *Report) JSON() ReportJSON {
	out := ReportJSON{Preds: r.Preds, SCCs: r.SCCs}
	for _, rule := range r.prog.Rules {
		out.Rules = append(out.Rules, rule.String())
	}
	return out
}

// Render prints the condensation in topological order (dependencies
// first), one component per line with its metadata, followed by the
// provably empty predicates if any. Stable across runs.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dependency graph: %d predicates, %d components\n", len(r.Preds), len(r.SCCs))
	for i := range r.SCCs {
		c := &r.SCCs[i]
		fmt.Fprintf(&b, "  scc %d [%s]: {%s}", c.ID, c.Recursion, strings.Join(c.Preds, ", "))
		if len(c.Rules) > 0 {
			fmt.Fprintf(&b, " rules=%d", len(c.Rules))
		}
		if c.MaxHeadDepth >= 0 {
			fmt.Fprintf(&b, " head<=T+%d", c.MaxHeadDepth)
		}
		if c.MaxBodyDepth >= 0 {
			fmt.Fprintf(&b, " body<=T+%d", c.MaxBodyDepth)
		}
		if !c.AnyPopulated {
			b.WriteString(" BASE-UNREACHABLE")
		} else if !c.BaseReachable {
			b.WriteString(" partially-populated")
		}
		b.WriteByte('\n')
	}
	var empty []string
	for i := range r.Preds {
		if !r.Preds[i].Populated {
			empty = append(empty, r.Preds[i].Name)
		}
	}
	if len(empty) > 0 {
		fmt.Fprintf(&b, "provably empty: %s\n", strings.Join(empty, ", "))
	}
	return b.String()
}
