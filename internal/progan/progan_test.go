package progan_test

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"tdd/internal/parser"
	"tdd/internal/progan"
	"tdd/internal/randgen"
)

func analyzeUnit(t *testing.T, src string) *progan.Report {
	t.Helper()
	prog, db, err := parser.ParseUnit(src)
	if err != nil {
		t.Fatal(err)
	}
	return progan.Analyze(prog, db)
}

const layeredSrc = `
q(T+2, X) :- q(T, X), rel(X).
mid(T+1, X) :- q(T, X).
top(T+1, X) :- mid(T, X), q(T, X).
even(T+1) :- odd(T).
odd(T+1) :- even(T).
ghost(T+1, X) :- ghost(T, X), nothing(X).
q(0, a).
rel(a).
even(0).
`

func TestAnalyzeStructure(t *testing.T) {
	r := analyzeUnit(t, layeredSrc)

	// Recursion classes.
	cases := map[string]progan.RecursionClass{
		"q":    progan.SelfRecursive,
		"mid":  progan.NonRecursive,
		"top":  progan.NonRecursive,
		"even": progan.MutualRecursive,
		"odd":  progan.MutualRecursive,
		"rel":  progan.NonRecursive,
	}
	for name, want := range cases {
		n := r.Pred(name)
		if n == nil {
			t.Fatalf("missing predicate %s", name)
		}
		if got := r.SCCs[n.SCC].Recursion; got != want {
			t.Errorf("%s: recursion %s, want %s", name, got, want)
		}
	}
	if evenSCC, oddSCC := r.Pred("even").SCC, r.Pred("odd").SCC; evenSCC != oddSCC {
		t.Errorf("even/odd in different SCCs %d/%d", evenSCC, oddSCC)
	}

	// Reverse topological order: dependencies carry smaller ids.
	if !(r.Pred("q").SCC < r.Pred("mid").SCC && r.Pred("mid").SCC < r.Pred("top").SCC) {
		t.Errorf("SCC ids not in dependency order: q=%d mid=%d top=%d",
			r.Pred("q").SCC, r.Pred("mid").SCC, r.Pred("top").SCC)
	}

	// Base-reachability: ghost depends on the never-asserted `nothing`, so
	// its rule can never fire and the predicate is provably empty.
	if r.Pred("ghost").Populated {
		t.Error("ghost should be unpopulated")
	}
	if r.Pred("nothing").Populated {
		t.Error("nothing should be unpopulated")
	}
	if r.Pred("q").Populated == false || r.Pred("top").Populated == false {
		t.Error("q/top should be populated")
	}
	ghost := r.SCCs[r.Pred("ghost").SCC]
	if ghost.BaseReachable || ghost.AnyPopulated {
		t.Errorf("ghost SCC should be base-unreachable: %+v", ghost)
	}
	for i, can := range r.CanFire {
		head := r.Program().Rules[i].Head.Pred
		if (head == "ghost") == can {
			t.Errorf("rule %d (head %s): CanFire=%v", i, head, can)
		}
	}

	// Temporal depth metadata of the q component: head T+2, body T+0.
	qc := r.SCCs[r.Pred("q").SCC]
	if qc.MaxHeadDepth != 2 || qc.MaxBodyDepth != 0 {
		t.Errorf("q SCC depths head=%d body=%d, want 2/0", qc.MaxHeadDepth, qc.MaxBodyDepth)
	}
}

func TestSliceClosure(t *testing.T) {
	r := analyzeUnit(t, layeredSrc)

	sl := r.Slice([]string{"top"})
	wantPreds := []string{"mid", "q", "rel", "top"}
	if !reflect.DeepEqual(sl.Preds, wantPreds) {
		t.Fatalf("top slice preds %v, want %v", sl.Preds, wantPreds)
	}
	if !sl.Proper() {
		t.Fatal("top slice should be proper (drops even/odd/ghost rules)")
	}
	if len(sl.Rules) != 3 {
		t.Fatalf("top slice has %d rules, want 3", len(sl.Rules))
	}

	// Sliced program and database reconstruct.
	prog, err := sl.Program()
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 3 {
		t.Fatalf("sliced program has %d rules", len(prog.Rules))
	}
	full, _, err := parser.ParseUnit(layeredSrc)
	if err != nil {
		t.Fatal(err)
	}
	_ = full
	whole := r.Slice([]string{"top", "even", "ghost"})
	if whole.Proper() {
		t.Fatalf("goal set covering every rule head should not be proper: %v", whole.Preds)
	}
}

// Slice monotonicity: the slice of a superset goal set contains the
// slice of any subset — predicates and rules alike.
func TestSliceMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		g := randgen.New(rng, randgen.Default())
		prog, err := g.Program(rng)
		if err != nil {
			t.Fatal(err)
		}
		db, err := g.Database(rng)
		if err != nil {
			t.Fatal(err)
		}
		r := progan.Analyze(prog, db)
		var names []string
		for _, n := range r.Preds {
			names = append(names, n.Name)
		}
		// Random subset pair A ⊆ B.
		var sub, super []string
		for _, n := range names {
			if rng.Intn(2) == 0 {
				super = append(super, n)
				if rng.Intn(2) == 0 {
					sub = append(sub, n)
				}
			}
		}
		small, big := r.Slice(sub), r.Slice(super)
		for _, p := range small.Preds {
			if !big.Contains(p) {
				t.Fatalf("trial %d: pred %s in slice(%v) but not slice(%v)", trial, p, sub, super)
			}
		}
		ruleSet := make(map[int]bool, len(big.Rules))
		for _, i := range big.Rules {
			ruleSet[i] = true
		}
		for _, i := range small.Rules {
			if !ruleSet[i] {
				t.Fatalf("trial %d: rule %d in subset slice only", trial, i)
			}
		}
	}
}

// Purity: analysis, slices, and bounds are pure functions of the AST —
// repeated runs (and runs over cloned ASTs) produce identical reports,
// fingerprints, and bounds.
func TestAnalysisDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		g := randgen.New(rng, randgen.Default())
		prog, err := g.Program(rng)
		if err != nil {
			t.Fatal(err)
		}
		db, err := g.Database(rng)
		if err != nil {
			t.Fatal(err)
		}
		r0 := progan.Analyze(prog, db)
		base, err := json.Marshal(r0.JSON())
		if err != nil {
			t.Fatal(err)
		}
		goals := []string{r0.Preds[0].Name}
		if len(r0.Preds) > 2 {
			goals = append(goals, r0.Preds[2].Name)
		}
		fp := r0.Slice(goals).Fingerprint()
		b0, err := json.Marshal(progan.ComputeBounds(prog, db))
		if err != nil {
			t.Fatal(err)
		}
		for run := 0; run < 20; run++ {
			p, d := prog, db
			if run%2 == 1 {
				p = prog.Clone()
				d = db.Clone()
			}
			r := progan.Analyze(p, d)
			got, err := json.Marshal(r.JSON())
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(base) {
				t.Fatalf("trial %d run %d: report differs\n%s\nvs\n%s", trial, run, base, got)
			}
			if f := r.Slice(goals).Fingerprint(); f != fp {
				t.Fatalf("trial %d run %d: slice fingerprint %s vs %s", trial, run, f, fp)
			}
			b, err := json.Marshal(progan.ComputeBounds(p, d))
			if err != nil {
				t.Fatal(err)
			}
			if string(b) != string(b0) {
				t.Fatalf("trial %d run %d: bounds differ\n%s\nvs\n%s", trial, run, b0, b)
			}
		}
	}
}

func TestBounds(t *testing.T) {
	prog, db, err := parser.ParseUnit(layeredSrc)
	if err != nil {
		t.Fatal(err)
	}
	b := progan.ComputeBounds(prog, db)

	// q feeds q(T+2), mid(T+1), top(T+1) — but also appears in top's body
	// at depth 0 with head depth 1: max shift is 2 (its own recursion).
	if got := b.ShiftFor("q"); got != 2 {
		t.Errorf("ShiftFor(q) = %d, want 2", got)
	}
	// mid feeds only top at T+1 from T+0.
	if got := b.ShiftFor("mid"); got != 1 {
		t.Errorf("ShiftFor(mid) = %d, want 1", got)
	}
	// top is consumed by nothing.
	if got := b.ShiftFor("top"); got != 0 {
		t.Errorf("ShiftFor(top) = %d, want 0", got)
	}
	// ghost's rule cannot fire, so it contributes no shift.
	if got := b.ShiftFor("ghost"); got != 0 {
		t.Errorf("ShiftFor(ghost) = %d, want 0", got)
	}
	if b.MaxShift != 2 {
		t.Errorf("MaxShift = %d, want 2", b.MaxShift)
	}
	if !b.Empty["ghost"] || !b.Empty["nothing"] {
		t.Errorf("Empty = %v, want ghost and nothing", b.Empty)
	}
	if b.Empty["q"] || b.Empty["rel"] {
		t.Errorf("Empty wrongly marks populated preds: %v", b.Empty)
	}
	// Support: top reaches q(0,a), rel(a), even(0)? No — top's closure is
	// {top, mid, q, rel}: facts q(0,a) and rel(a).
	if got := b.Support["top"]; got != 2 {
		t.Errorf("Support[top] = %d, want 2", got)
	}
	if _, ok := b.Support["ghost"]; ok {
		t.Errorf("Support should skip unpopulated ghost")
	}
}

func TestRender(t *testing.T) {
	r := analyzeUnit(t, layeredSrc)
	out := r.Render()
	for _, want := range []string{
		"dependency graph:",
		"[self]",
		"[mutual]",
		"BASE-UNREACHABLE",
		"provably empty:",
		"ghost",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render() missing %q:\n%s", want, out)
		}
	}
}
