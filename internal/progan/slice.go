package progan

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strings"

	"tdd/internal/ast"
)

// Slice is the backward-reachable fragment of a program relevant to a
// set of goal predicates: every rule whose head can (transitively) feed
// a goal, plus every predicate those rules or the goals mention. This is
// magic-sets-lite — predicate-level relevance with no sideways
// information passing — so the slice theorem is the classic one: the
// least model of the sliced program over the sliced database equals the
// full least model restricted to the slice's predicates.
type Slice struct {
	// Goals are the requested predicates, sorted (unknown names are kept:
	// they slice to nothing but still key the fingerprint).
	Goals []string
	// Preds is the backward closure, sorted.
	Preds []string
	// Rules lists the included rule indices in program order.
	Rules []int
	// Total is the full program's rule count.
	Total int

	report  *Report
	predSet map[string]bool
}

// Slice computes the backward-reachable slice for the goal predicates.
func (r *Report) Slice(goals []string) *Slice {
	s := &Slice{
		Goals:   append([]string(nil), goals...),
		Total:   len(r.prog.Rules),
		report:  r,
		predSet: make(map[string]bool),
	}
	sort.Strings(s.Goals)
	queue := make([]string, 0, len(goals))
	for _, g := range s.Goals {
		if !s.predSet[g] {
			s.predSet[g] = true
			queue = append(queue, g)
		}
	}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		for _, q := range r.uses[p] {
			if !s.predSet[q] {
				s.predSet[q] = true
				queue = append(queue, q)
			}
		}
	}
	for i, head := range r.ruleHead {
		if s.predSet[head] {
			s.Rules = append(s.Rules, i)
		}
	}
	s.Preds = make([]string, 0, len(s.predSet))
	for p := range s.predSet {
		s.Preds = append(s.Preds, p)
	}
	sort.Strings(s.Preds)
	return s
}

// QueryPreds returns the distinct predicates mentioned by a parsed
// query, sorted — the goal set its slice is computed from.
func QueryPreds(q ast.Query) []string {
	set := make(map[string]bool)
	for _, a := range ast.QueryAtoms(q) {
		set[a.Pred] = true
	}
	return sortedSet(set)
}

// Contains reports whether the predicate is in the slice.
func (s *Slice) Contains(pred string) bool { return s.predSet[pred] }

// Proper reports whether the slice drops at least one rule — the only
// case in which evaluating it can beat evaluating the full program.
func (s *Slice) Proper() bool { return len(s.Rules) < s.Total }

// Fingerprint is a digest of the slice's identity: the goal set and the
// predicate closure. Together with the program revision it keys the
// sliced-specification cache — two queries over the same heads share one
// sliced evaluation.
func (s *Slice) Fingerprint() string {
	h := sha256.New()
	h.Write([]byte(strings.Join(s.Goals, "\x00")))
	h.Write([]byte{1})
	h.Write([]byte(strings.Join(s.Preds, "\x00")))
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:12])
}

// Program builds the sliced program: the included rules, deep-copied,
// with signatures re-inferred. Signatures were consistent in the full
// program, so construction cannot fail on a subset.
func (s *Slice) Program() (*ast.Program, error) {
	rules := make([]ast.Rule, 0, len(s.Rules))
	for _, i := range s.Rules {
		rules = append(rules, s.report.prog.Rules[i].Clone())
	}
	return ast.NewProgram(rules)
}

// FilterFacts keeps the facts over sliced predicates (shared, not
// copied; facts are immutable once built).
func (s *Slice) FilterFacts(facts []ast.Fact) []ast.Fact {
	out := make([]ast.Fact, 0, len(facts))
	for _, f := range facts {
		if s.predSet[f.Pred] {
			out = append(out, f)
		}
	}
	return out
}

// Database builds the sliced database from a full one.
func (s *Slice) Database(db *ast.Database) (*ast.Database, error) {
	return ast.NewDatabase(s.FilterFacts(db.Facts))
}
