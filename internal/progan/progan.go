// Package progan is the whole-program static analyzer over validated TDL
// programs: a predicate dependency graph condensed into strongly
// connected components (Tarjan), per-SCC static metadata (temporal
// depths, recursion class, base-reachability), query-directed relevance
// slicing (slice.go), and the static bounds pass that feeds the engine's
// planner and parallel frontier (bounds.go).
//
// Everything in this package is a pure function of the AST: no clocks, no
// randomness, no global state (the detfix analyzer enforces the first
// two). Two calls over equal programs and databases produce structurally
// identical reports, slices, and bounds — the property the slicing layer
// and the deterministic parallel schedule lean on.
package progan

import (
	"sort"

	"tdd/internal/ast"
)

// RecursionClass labels how an SCC depends on itself.
type RecursionClass string

const (
	// NonRecursive: a single predicate with no self edge.
	NonRecursive RecursionClass = "nonrecursive"
	// SelfRecursive: a single predicate depending directly on itself.
	SelfRecursive RecursionClass = "self"
	// MutualRecursive: two or more predicates in one cycle.
	MutualRecursive RecursionClass = "mutual"
)

// PredNode is one predicate's row in the report.
type PredNode struct {
	Name     string `json:"name"`
	Temporal bool   `json:"temporal"`
	Arity    int    `json:"arity"`
	// Derived marks predicates appearing in some rule head.
	Derived bool `json:"derived"`
	// Populated is the base-reachability verdict: the over-approximating
	// fixpoint ("a predicate holds facts if the database asserts it or a
	// rule with an all-populated body derives it") reaches it. False is
	// definitive — the predicate is empty in the least model.
	Populated bool `json:"populated"`
	// SCC indexes into Report.SCCs.
	SCC int `json:"scc"`
	// Uses lists the distinct body predicates of rules deriving this
	// predicate, sorted; UsedBy is the reverse relation.
	Uses   []string `json:"uses,omitempty"`
	UsedBy []string `json:"used_by,omitempty"`
}

// SCC is one strongly connected component of the dependency graph with
// its static metadata.
type SCC struct {
	ID    int      `json:"id"`
	Preds []string `json:"preds"`
	// Recursion is the component's recursion class.
	Recursion RecursionClass `json:"recursion"`
	// MaxHeadDepth / MaxBodyDepth are the maximum original temporal
	// depths over the member rules' heads and (non-ground) body literals;
	// -1 when the component has no temporal rules.
	MaxHeadDepth int `json:"max_head_depth"`
	MaxBodyDepth int `json:"max_body_depth"`
	// Rules lists the program rule indices whose head predicate belongs
	// to this component, in program order.
	Rules []int `json:"rules,omitempty"`
	// BaseReachable reports whether every member predicate is populated;
	// AnyPopulated whether at least one is. A component with
	// AnyPopulated=false can never contribute a single fact.
	BaseReachable bool `json:"base_reachable"`
	AnyPopulated  bool `json:"any_populated"`
}

// Report is the stable product of Analyze: the predicate table, the SCC
// condensation in reverse topological order (dependencies first), and
// the per-rule firing verdict.
type Report struct {
	// Preds is sorted by name.
	Preds []PredNode
	// SCCs is in reverse topological order: a component appears after
	// every component it depends on.
	SCCs []SCC
	// RuleSCC maps each program rule index to the SCC of its head.
	RuleSCC []int
	// CanFire marks rules inside the populated fixpoint; a false entry is
	// a rule that provably never fires in the least model.
	CanFire []bool

	prog    *ast.Program
	predIdx map[string]int
	// uses is the adjacency Pred -> body preds used during slicing.
	uses map[string][]string
	// ruleHead caches each rule's head predicate.
	ruleHead []string
}

// Program returns the analyzed program (shared, treat as read-only).
func (r *Report) Program() *ast.Program { return r.prog }

// Pred returns the node for a predicate name (nil if unknown).
func (r *Report) Pred(name string) *PredNode {
	if i, ok := r.predIdx[name]; ok {
		return &r.Preds[i]
	}
	return nil
}

// Analyze builds the whole-program report. db may be nil, in which case
// every extensional predicate is assumed populated (the linter's
// convention for rule-only sources).
func Analyze(prog *ast.Program, db *ast.Database) *Report {
	r := &Report{prog: prog, predIdx: make(map[string]int)}

	// Predicate universe: program signatures plus database-only predicates.
	derived := prog.DerivedSet()
	seen := make(map[string]ast.PredInfo)
	for name, info := range prog.Preds {
		seen[name] = info
	}
	if db != nil {
		for name, info := range db.Preds {
			if _, ok := seen[name]; !ok {
				seen[name] = info
			}
		}
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)

	// Adjacency (uses/usedBy) from the rules, deduplicated and sorted.
	usesSet := make(map[string]map[string]bool)
	usedBySet := make(map[string]map[string]bool)
	note := func(m map[string]map[string]bool, from, to string) {
		if m[from] == nil {
			m[from] = make(map[string]bool)
		}
		m[from][to] = true
	}
	r.ruleHead = make([]string, len(prog.Rules))
	for i, rule := range prog.Rules {
		r.ruleHead[i] = rule.Head.Pred
		for _, a := range rule.Body {
			note(usesSet, rule.Head.Pred, a.Pred)
			note(usedBySet, a.Pred, rule.Head.Pred)
		}
	}
	r.uses = make(map[string][]string, len(usesSet))
	for from, set := range usesSet {
		r.uses[from] = sortedSet(set)
	}

	// Base-reachability fixpoint (same one-sided over-approximation as the
	// linter's reach pass: populated=false is definitive emptiness).
	populated := make(map[string]bool)
	if db != nil {
		for pred := range db.Preds {
			populated[pred] = true
		}
	} else {
		for name := range seen {
			if !derived[name] {
				populated[name] = true
			}
		}
	}
	canFire := make([]bool, len(prog.Rules))
	for changed := true; changed; {
		changed = false
		for i, rule := range prog.Rules {
			if canFire[i] {
				continue
			}
			ok := true
			for _, a := range rule.Body {
				if !populated[a.Pred] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			canFire[i] = true
			changed = true
			populated[rule.Head.Pred] = true
		}
	}
	r.CanFire = canFire

	// Tarjan condensation over the full universe (isolated predicates form
	// singleton components). Iterative, with sorted successor order, so
	// the component order is deterministic.
	sccOf := tarjan(names, r.uses)

	// Build the predicate table and group components.
	nscc := 0
	for _, id := range sccOf {
		if id+1 > nscc {
			nscc = id + 1
		}
	}
	r.SCCs = make([]SCC, nscc)
	for i := range r.SCCs {
		r.SCCs[i] = SCC{ID: i, MaxHeadDepth: -1, MaxBodyDepth: -1, BaseReachable: true}
	}
	for _, name := range names {
		id := sccOf[name]
		node := PredNode{
			Name:      name,
			Temporal:  seen[name].Temporal,
			Arity:     seen[name].Arity,
			Derived:   derived[name],
			Populated: populated[name],
			SCC:       id,
			Uses:      r.uses[name],
			UsedBy:    sortedSet(usedBySet[name]),
		}
		r.predIdx[name] = len(r.Preds)
		r.Preds = append(r.Preds, node)
		c := &r.SCCs[id]
		c.Preds = append(c.Preds, name)
		if populated[name] {
			c.AnyPopulated = true
		} else {
			c.BaseReachable = false
		}
	}
	for i := range r.SCCs {
		sort.Strings(r.SCCs[i].Preds)
	}

	// Per-rule membership and temporal depth metadata.
	r.RuleSCC = make([]int, len(prog.Rules))
	for i, rule := range prog.Rules {
		id := sccOf[rule.Head.Pred]
		r.RuleSCC[i] = id
		c := &r.SCCs[id]
		c.Rules = append(c.Rules, i)
		if rule.Head.Time != nil && rule.Head.Time.Depth > c.MaxHeadDepth {
			c.MaxHeadDepth = rule.Head.Time.Depth
		}
		for _, a := range rule.Body {
			if a.Time != nil && !a.Time.Ground() && a.Time.Depth > c.MaxBodyDepth {
				c.MaxBodyDepth = a.Time.Depth
			}
		}
	}

	// Recursion class: mutual for multi-predicate components, self for a
	// singleton with a self edge, nonrecursive otherwise.
	for i := range r.SCCs {
		c := &r.SCCs[i]
		switch {
		case len(c.Preds) > 1:
			c.Recursion = MutualRecursive
		case hasSelfEdge(c.Preds[0], r.uses):
			c.Recursion = SelfRecursive
		default:
			c.Recursion = NonRecursive
		}
	}
	return r
}

func hasSelfEdge(name string, uses map[string][]string) bool {
	for _, m := range uses[name] {
		if m == name {
			return true
		}
	}
	return false
}

func sortedSet(set map[string]bool) []string {
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// tarjan computes the SCC id of every node, ids assigned in reverse
// topological order (a component's id is greater than the ids of the
// components it depends on). Iterative to stay safe on deep programs;
// the root order and successor order are sorted, so ids are
// deterministic.
func tarjan(nodes []string, succ map[string][]string) map[string]int {
	index := make(map[string]int, len(nodes))
	low := make(map[string]int, len(nodes))
	onStack := make(map[string]bool, len(nodes))
	sccOf := make(map[string]int, len(nodes))
	var stack []string
	next, nscc := 0, 0

	type frame struct {
		node string
		succ []string
		i    int
	}
	for _, root := range nodes {
		if _, ok := index[root]; ok {
			continue
		}
		frames := []frame{{node: root, succ: succ[root]}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.i < len(f.succ) {
				w := f.succ[f.i]
				f.i++
				if _, ok := index[w]; !ok {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{node: w, succ: succ[w]})
				} else if onStack[w] && index[w] < low[f.node] {
					low[f.node] = index[w]
				}
				continue
			}
			v := f.node
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[v] < low[parent.node] {
					low[parent.node] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					sccOf[w] = nscc
					if w == v {
						break
					}
				}
				nscc++
			}
		}
	}
	return sccOf
}
