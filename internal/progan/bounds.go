package progan

import "tdd/internal/ast"

// Bounds is the static bounds pass: per-predicate frontier widths for
// the parallel schedule and emptiness/support seeds for the join
// planner. It is a pure function of (program, database) — no store
// state — so every evaluator over the same snapshot derives identical
// bounds regardless of worker count, which is what keeps the parallel
// schedule's Stats bit-identical across parallelism levels.
type Bounds struct {
	// Shift[p] bounds how far ahead a new fact of p can land a temporal
	// head: the maximum of (headDepth - bodyLiteralDepth) over fireable
	// rules with a temporal head and a non-ground temporal body literal
	// of p. Forwardness makes every such difference >= 0; ground temporal
	// terms cannot occur in rules (ast.ErrGroundTemporal). A predicate
	// absent from the map enables nothing ahead of its own time point —
	// its frontier is empty.
	Shift map[string]int
	// MaxShift is the maximum over Shift (0 when the map is empty); it
	// never exceeds the program's max head depth.
	MaxShift int
	// Empty marks predicates the base-reachability fixpoint proves empty
	// in the least model: the planner can cost them at zero.
	Empty map[string]bool
	// Support[p], for derived predicates, counts the database facts of
	// extensional predicates backward-reachable from p — an upper-bound
	// flavor seed for a cold (not-yet-derived) relation, replacing the
	// planner's database-sized guess.
	Support map[string]int
}

// ShiftFor returns the frontier width of one predicate (0 when no
// fireable temporal rule consumes it).
func (b *Bounds) ShiftFor(pred string) int { return b.Shift[pred] }

// ComputeBounds runs the bounds pass. db must be non-nil (the engine
// always has one); the fireability verdict comes from the same populated
// fixpoint Analyze runs.
func ComputeBounds(prog *ast.Program, db *ast.Database) *Bounds {
	r := Analyze(prog, db)
	b := &Bounds{
		Shift:   make(map[string]int),
		Empty:   make(map[string]bool),
		Support: make(map[string]int),
	}
	for i, rule := range prog.Rules {
		if !r.CanFire[i] || rule.Head.Time == nil {
			continue
		}
		h := rule.Head.Time.Depth
		for _, a := range rule.Body {
			if a.Time == nil || a.Time.Ground() {
				continue
			}
			if d := h - a.Time.Depth; d > b.Shift[a.Pred] {
				b.Shift[a.Pred] = d
			}
		}
	}
	for _, d := range b.Shift {
		if d > b.MaxShift {
			b.MaxShift = d
		}
	}

	for i := range r.Preds {
		if !r.Preds[i].Populated {
			b.Empty[r.Preds[i].Name] = true
		}
	}

	// Support: per derived predicate, the database facts of the EDB
	// predicates in its backward closure. Fact counts are tallied once;
	// closures are walked per predicate (programs are small, and the walk
	// is O(preds * edges)).
	factCount := make(map[string]int, len(db.Preds))
	for _, f := range db.Facts {
		factCount[f.Pred]++
	}
	for i := range r.Preds {
		p := &r.Preds[i]
		if !p.Derived || !p.Populated {
			continue
		}
		seen := map[string]bool{p.Name: true}
		queue := []string{p.Name}
		sum := factCount[p.Name]
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, q := range r.uses[cur] {
				if seen[q] {
					continue
				}
				seen[q] = true
				queue = append(queue, q)
				sum += factCount[q]
			}
		}
		b.Support[p.Name] = sum
	}
	return b
}
