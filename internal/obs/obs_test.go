package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" {
		t.Errorf("nil trace ID = %q, want empty", tr.ID())
	}
	sp := tr.Begin("phase")
	sp.Add("count", 1)
	sp.End()
	if tr.Snapshot() != nil {
		t.Error("nil trace snapshot should be nil")
	}
	if tr.Tree() != "" {
		t.Error("nil trace tree should be empty")
	}
}

func TestNesting(t *testing.T) {
	tr := New()
	if len(tr.ID()) != 16 {
		t.Errorf("trace ID %q, want 16 hex digits", tr.ID())
	}
	outer := tr.Begin("outer")
	inner := tr.Begin("inner")
	inner.Add("n", 2)
	inner.Add("n", 3)
	inner.End()
	outer.End()
	top := tr.Begin("top")
	top.End()

	snap := tr.Snapshot()
	if len(snap.Phases) != 2 {
		t.Fatalf("phases = %d, want 2 (outer, top)", len(snap.Phases))
	}
	if snap.Phases[0].Name != "outer" || snap.Phases[1].Name != "top" {
		t.Errorf("phase order %q, %q", snap.Phases[0].Name, snap.Phases[1].Name)
	}
	if len(snap.Phases[0].Children) != 1 || snap.Phases[0].Children[0].Name != "inner" {
		t.Fatalf("inner span not nested under outer: %+v", snap.Phases[0])
	}
	if got := snap.Phases[0].Children[0].Counters["n"]; got != 5 {
		t.Errorf("counter n = %d, want 5 (accumulated)", got)
	}
}

func TestDurationsAndTotal(t *testing.T) {
	tr := New()
	sp := tr.Begin("work")
	time.Sleep(2 * time.Millisecond)
	sp.End()
	snap := tr.Snapshot()
	if snap.Phases[0].Us < 1000 {
		t.Errorf("span duration %dus, want >= 1000", snap.Phases[0].Us)
	}
	if snap.TotalUs < snap.Phases[0].Us {
		t.Errorf("total %dus < phase %dus", snap.TotalUs, snap.Phases[0].Us)
	}
}

func TestEndIdempotentAndOpenSpanSnapshot(t *testing.T) {
	tr := New()
	sp := tr.Begin("p")
	sp.End()
	first := sp.dur
	time.Sleep(time.Millisecond)
	sp.End()
	if sp.dur != first {
		t.Error("second End changed the recorded duration")
	}

	open := tr.Begin("open")
	_ = open
	snap := tr.Snapshot() // must not panic; open span gets elapsed-so-far
	if len(snap.Phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(snap.Phases))
	}
}

func TestSpanCap(t *testing.T) {
	tr := New()
	for i := 0; i < maxSpans+10; i++ {
		sp := tr.Begin("s")
		sp.End()
	}
	snap := tr.Snapshot()
	if snap.Dropped != 10 {
		t.Errorf("dropped = %d, want 10", snap.Dropped)
	}
	if len(snap.Phases) != maxSpans {
		t.Errorf("recorded = %d, want %d", len(snap.Phases), maxSpans)
	}
	if !strings.Contains(tr.Tree(), "spans dropped") {
		t.Error("tree should mention dropped spans")
	}
}

// TestSpanCapConcurrent checks drop accounting when many goroutines race
// past the span cap: every Begin either records a span or increments the
// dropped counter, so recorded+dropped must equal the Begins issued
// exactly. Run under -race.
func TestSpanCapConcurrent(t *testing.T) {
	tr := New()
	const goroutines = 8
	const perG = (maxSpans / goroutines) + 300 // collectively overshoot the cap
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				sp := tr.Begin("s")
				sp.Add("i", int64(i)) // nil past the cap; must stay a no-op
				sp.End()
			}
		}()
	}
	wg.Wait()
	snap := tr.Snapshot()
	total := goroutines * perG
	if snap.Dropped != total-maxSpans {
		t.Errorf("dropped = %d, want %d (= %d begins - %d cap)",
			snap.Dropped, total-maxSpans, total, maxSpans)
	}
	// Concurrent Begins interleave parent/child arbitrarily, so count the
	// whole tree, not just top-level phases.
	var count func(spans []SpanJSON) int
	count = func(spans []SpanJSON) int {
		n := len(spans)
		for _, s := range spans {
			n += count(s.Children)
		}
		return n
	}
	if got := count(snap.Phases); got != maxSpans {
		t.Errorf("recorded spans = %d, want %d", got, maxSpans)
	}
}

func TestTreeRendering(t *testing.T) {
	tr := NewWithID("deadbeefdeadbeef")
	sp := tr.Begin("certify-period")
	fx := tr.Begin("fixpoint")
	fx.Add("window", 16)
	fx.End()
	sp.End()
	tree := tr.Tree()
	for _, want := range []string{"trace deadbeefdeadbeef", "certify-period", "fixpoint", "window=16"} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree missing %q:\n%s", want, tree)
		}
	}
}

// TestConcurrentSnapshot exercises snapshotting while another goroutine
// appends spans (the slow-query logger reads traces the worker may still
// be writing); run under -race.
func TestConcurrentSnapshot(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			sp := tr.Begin("s")
			sp.Add("i", int64(i))
			sp.End()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			tr.Snapshot()
		}
	}()
	wg.Wait()
}

func TestContextID(t *testing.T) {
	ctx := WithID(t.Context(), "abc123")
	if got := IDFrom(ctx); got != "abc123" {
		t.Errorf("IDFrom = %q", got)
	}
	if got := IDFrom(t.Context()); got != "" {
		t.Errorf("IDFrom(empty) = %q, want empty", got)
	}
}
