// Package obs is a lightweight span/trace layer for the query-processing
// pipeline: a Trace is a tree of named, timed phases (parse, classify,
// certify-period, fixpoint sweeps, answer, ...) with integer counters
// attached. Traces power the server's ?trace=1 phase trees, the
// slow-query log, and tddquery's offline -trace EXPLAIN output.
//
// Tracing is opt-in per computation. A nil *Trace (and the nil *Span
// every method of a nil trace returns) is the disabled state: every
// method is a nil-receiver no-op, so instrumented code paths pay one
// pointer comparison — no allocation, no lock — when tracing is off.
// Instrumentation sites therefore never need to guard their calls.
//
// A Trace maintains a current-span stack: Begin opens a span as a child
// of the innermost open span, so layered instrumentation (core opens
// "certify-period", the engine opens "fixpoint" inside it) nests without
// the layers knowing about each other. The stack makes a Trace
// single-writer by design; the internal mutex only protects snapshotting
// a trace that another goroutine is still appending to.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// maxSpans bounds the spans recorded per trace so long-lived traces (a
// streaming session asserting thousands of batches) stay bounded; spans
// beyond the cap are counted, not recorded.
const maxSpans = 1 << 12

// clockBase anchors ClockNS: readings are offsets from process start,
// so they carry Go's monotonic clock and survive wall-clock steps.
var clockBase = time.Now()

// ClockNS returns monotonic nanoseconds since process start. It exists
// so packages under the detfix determinism ban (internal/engine,
// internal/core) can measure durations for observability without
// importing "time": the reading feeds profiler/trace output only, never
// a model-visible value.
func ClockNS() int64 {
	return int64(time.Since(clockBase))
}

// NewID returns a fresh 16-hex-digit trace ID.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failure is effectively impossible; fall back to a
		// time-derived ID rather than propagating an error through every
		// instrumentation site.
		return fmt.Sprintf("%016x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// Trace is one trace: an ID plus a tree of spans. The zero value is not
// used; construct with New or NewWithID. A nil *Trace is the disabled
// no-op tracer.
type Trace struct {
	id    string
	start time.Time

	mu      sync.Mutex
	phases  []*Span // top-level spans in creation order
	cur     *Span   // innermost open span; nil at top level
	nspans  int
	dropped int
}

// New returns a new trace with a fresh random ID.
func New() *Trace { return NewWithID(NewID()) }

// NewWithID returns a new trace carrying the given ID (the server reuses
// the per-request ID from its logs so log lines and trace trees join).
func NewWithID(id string) *Trace {
	return &Trace{id: id, start: time.Now()}
}

// ID returns the trace ID ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Begin opens a named span as a child of the innermost open span (or as
// a top-level phase) and makes it current. Returns nil — still safe to
// use — on a nil trace or past the span cap.
func (t *Trace) Begin(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.nspans >= maxSpans {
		t.dropped++
		return nil
	}
	t.nspans++
	sp := &Span{tr: t, name: name, start: time.Now(), parent: t.cur}
	if t.cur != nil {
		t.cur.children = append(t.cur.children, sp)
	} else {
		t.phases = append(t.phases, sp)
	}
	t.cur = sp
	return sp
}

// Span is one named, timed phase of a trace. A nil *Span is a no-op.
type Span struct {
	tr     *Trace
	name   string
	start  time.Time
	dur    time.Duration
	ended  bool
	parent *Span

	counters []counter
	children []*Span
}

type counter struct {
	key string
	val int64
}

// Add accumulates an integer counter on the span (repeated keys sum).
func (s *Span) Add(key string, n int64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	for i := range s.counters {
		if s.counters[i].key == key {
			s.counters[i].val += n
			return
		}
	}
	s.counters = append(s.counters, counter{key: key, val: n})
}

// End closes the span, recording its duration. The trace's current span
// reverts to the span's parent. End is idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if s.ended {
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	// Pop back to the parent. If children were left open (error paths),
	// closing the parent abandons them; their recorded time is whatever
	// elapsed before the snapshot.
	if s.tr.cur == s {
		s.tr.cur = s.parent
	}
}

// SpanJSON is the wire form of one span.
type SpanJSON struct {
	Name     string           `json:"name"`
	Us       int64            `json:"us"`
	Counters map[string]int64 `json:"counters,omitempty"`
	Children []SpanJSON       `json:"children,omitempty"`
}

// TraceJSON is the wire form of a whole trace: the phase tree plus the
// trace's total wall time from creation to snapshot. Instrumented
// pipelines keep their phases contiguous, so the per-phase durations sum
// to (within noise of) TotalUs.
type TraceJSON struct {
	TraceID string     `json:"trace_id"`
	TotalUs int64      `json:"total_us"`
	Dropped int        `json:"dropped_spans,omitempty"`
	Phases  []SpanJSON `json:"phases"`
}

// Snapshot renders the trace to its wire form (nil on a nil trace).
// Open spans are reported with their elapsed-so-far duration.
func (t *Trace) Snapshot() *TraceJSON {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := &TraceJSON{
		TraceID: t.id,
		TotalUs: time.Since(t.start).Microseconds(),
		Dropped: t.dropped,
		Phases:  make([]SpanJSON, len(t.phases)),
	}
	for i, sp := range t.phases {
		out.Phases[i] = sp.json()
	}
	return out
}

// json renders one span subtree; caller holds the trace mutex.
func (s *Span) json() SpanJSON {
	d := s.dur
	if !s.ended {
		d = time.Since(s.start)
	}
	j := SpanJSON{Name: s.name, Us: d.Microseconds()}
	if len(s.counters) > 0 {
		j.Counters = make(map[string]int64, len(s.counters))
		for _, c := range s.counters {
			j.Counters[c.key] = c.val
		}
	}
	for _, c := range s.children {
		j.Children = append(j.Children, c.json())
	}
	return j
}

// Tree renders the trace as an indented text phase tree for terminals
// and the slow-query log ("" on a nil trace).
func (t *Trace) Tree() string {
	snap := t.Snapshot()
	if snap == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s  total=%s\n", snap.TraceID, usString(snap.TotalUs))
	for _, p := range snap.Phases {
		writeSpanTree(&b, p, 1)
	}
	if snap.Dropped > 0 {
		fmt.Fprintf(&b, "  (%d spans dropped past the %d-span cap)\n", snap.Dropped, maxSpans)
	}
	return b.String()
}

func writeSpanTree(b *strings.Builder, s SpanJSON, depth int) {
	fmt.Fprintf(b, "%s%-*s %10s", strings.Repeat("  ", depth), 24-2*depth, s.Name, usString(s.Us))
	if len(s.Counters) > 0 {
		keys := make([]string, 0, len(s.Counters))
		for k := range s.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(b, "  %s=%d", k, s.Counters[k])
		}
	}
	b.WriteByte('\n')
	for _, c := range s.Children {
		writeSpanTree(b, c, depth+1)
	}
}

func usString(us int64) string {
	return (time.Duration(us) * time.Microsecond).String()
}

// ctxKey is the context key type for request-scoped trace IDs.
type ctxKey struct{}

// WithID returns a context carrying the trace ID.
func WithID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKey{}, id)
}

// IDFrom extracts the trace ID from the context ("" if absent).
func IDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxKey{}).(string)
	return id
}
