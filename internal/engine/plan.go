package engine

// Join-order planning. Each compiled rule body is evaluated as a chain of
// streaming index probes: at every position the planner picks the body
// literal with the smallest estimated enumeration cost given the columns
// already bound, and the join loop (eval.go, parallel.go, delta.go) then
// iterates only the matching index bucket instead of the full relation.
//
// Determinism contract: a plan is a pure function of the compiled rule,
// the join mode, and the store's per-predicate cardinality counters
// (store.card). Plans are recomputed at every fixpoint entry
// (EnsureWindow, PropagateDelta) — points at which the store content, and
// hence the counters, are identical across worker counts — so the chosen
// orders, the derived facts, and every Stats/profile counter downstream
// are bit-identical for all parallelism levels. The cost model is integer
// arithmetic only (no floats, no clock, no randomness; see the detfix
// analyzer, which bans wall-clock reads in this package).

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"tdd/internal/progan"
)

// JoinMode selects the body-evaluation strategy.
type JoinMode int

const (
	// JoinIndexed (the default) evaluates rule bodies with planner-ordered
	// literals and multi-column hash-index probes.
	JoinIndexed JoinMode = iota
	// JoinNestedLoop evaluates rule bodies in source order with at most
	// the first-column index — the engine's historical behavior, kept as
	// the differential baseline for the indexed engine.
	JoinNestedLoop
)

// IndexStat counts join-side relation accesses for one body predicate:
// Probes are bucket lookups through a bound-column index, Scans are full
// relation iterations (no column bound). Exposed through Stats.Index.
type IndexStat struct {
	Probes int64 `json:"probes"`
	Scans  int64 `json:"scans"`
}

// planStep is one position in a join plan: which body literal to match
// next, which of its columns are bound by then (the index mask), and the
// counter to bump per relation access.
type planStep struct {
	lit  int
	mask uint32
	sid  int    // global step id (parallel tasks count per-sid, merged later)
	ctr  *int64 // sequential fast path: &IndexStat.Probes or &IndexStat.Scans
}

// joinPlan is the ordered body of one rule (delta plans omit the pinned
// literal, which is bound before the join starts).
type joinPlan struct {
	steps []planStep
}

// planJoins (re)computes every rule's join plan and delta plans from the
// current cardinality counters. Called at each fixpoint entry; see the
// determinism contract above. It also (re)binds the plan counters into
// this evaluator's own Stats.Index, so a cloned evaluator re-plans into
// its own counters rather than its parent's.
func (e *Evaluator) planJoins() {
	// Refresh the static bounds when the database has grown (it is
	// append-only, so the fact count keys the cache). Fixpoint entries are
	// the points at which the database is identical across worker counts,
	// so the bounds — like the plans — are too.
	if e.bounds == nil || e.boundsFacts != len(e.db.Facts) {
		e.bounds = progan.ComputeBounds(e.prog, e.db)
		e.boundsFacts = len(e.db.Facts)
	}
	if e.stats.Index == nil {
		e.stats.Index = make(map[string]*IndexStat)
	}
	if len(e.en.vals) < e.maxSlots {
		e.en.vals = make([]string, e.maxSlots)
	}
	e.stepPreds = e.stepPreds[:0]
	e.stepIndexed = e.stepIndexed[:0]
	e.plans = make([]joinPlan, len(e.rules))
	e.deltaPlans = make([][]joinPlan, len(e.rules))
	for i := range e.rules {
		r := &e.rules[i]
		e.plans[i] = e.planRule(r, -1)
		dp := make([]joinPlan, len(r.body))
		for pin := range r.body {
			dp[pin] = e.planRule(r, pin)
		}
		e.deltaPlans[i] = dp
	}
}

// planRule orders the body of r (with literal pin pre-bound; -1 for
// none). JoinNestedLoop keeps source order and first-column masks — the
// historical engine exactly; JoinIndexed greedily picks the cheapest
// remaining literal under the cost estimate, ties resolved to the
// earliest source position.
func (e *Evaluator) planRule(r *crule, pin int) joinPlan {
	bound := make([]bool, r.nslots)
	if pin >= 0 {
		for _, c := range r.bodyC[pin] {
			if c.slot >= 0 {
				bound[c.slot] = true
			}
		}
	}
	remaining := make([]int, 0, len(r.body))
	for li := range r.body {
		if li != pin {
			remaining = append(remaining, li)
		}
	}
	plan := joinPlan{steps: make([]planStep, 0, len(remaining))}
	for len(remaining) > 0 {
		pick := 0
		if e.mode == JoinIndexed {
			best := uint64(0)
			for k, li := range remaining {
				cost := e.estCost(r, li, bound)
				if k == 0 || cost < best {
					best, pick = cost, k
				}
			}
		}
		li := remaining[pick]
		remaining = append(remaining[:pick], remaining[pick+1:]...)
		var mask uint32
		if e.mode == JoinNestedLoop {
			mask = firstColMask(r.bodyC[li], bound)
		} else {
			mask, _ = boundMask(r.bodyC[li], bound)
		}
		plan.steps = append(plan.steps, e.newStep(r.body[li].Pred, li, mask))
		for _, c := range r.bodyC[li] {
			if c.slot >= 0 {
				bound[c.slot] = true
			}
		}
	}
	return plan
}

// newStep registers a plan step: allocates the predicate's Stats.Index
// cell if needed and assigns the global step id the parallel merge uses.
func (e *Evaluator) newStep(pred string, lit int, mask uint32) planStep {
	st := e.stats.Index[pred]
	if st == nil {
		st = &IndexStat{}
		e.stats.Index[pred] = st
	}
	ctr := &st.Scans
	if mask != 0 {
		ctr = &st.Probes
	}
	sid := len(e.stepPreds)
	e.stepPreds = append(e.stepPreds, pred)
	e.stepIndexed = append(e.stepIndexed, mask != 0)
	return planStep{lit: lit, mask: mask, sid: sid, ctr: ctr}
}

// boundMask returns the mask of columns determined under the bound set
// (constants and already-bound variables) and how many they are. Columns
// beyond 32 are never masked (they are matched by the scan filter).
func boundMask(pat []carg, bound []bool) (mask uint32, n int) {
	for i, c := range pat {
		if i >= 32 {
			break
		}
		if c.slot < 0 || bound[c.slot] {
			mask |= 1 << uint(i)
			n++
		}
	}
	return mask, n
}

// firstColMask reproduces the historical engine's index use: the first
// column only, and only when it is a constant or already bound.
func firstColMask(pat []carg, bound []bool) uint32 {
	if len(pat) == 0 {
		return 0
	}
	if c := pat[0]; c.slot < 0 || bound[c.slot] {
		return 1
	}
	return 0
}

// estCost estimates how many tuples matching literal li the join loop
// will enumerate, given the bound set. The base is the store's live
// cardinality: total facts for a non-temporal predicate, average facts
// per occupied time point for a temporal one (the per-predicate tables
// the profiler also reports, maintained incrementally by the store). Each
// bound column shrinks the estimate by the base's bit-length scaled to
// the fraction of columns bound — a selectivity proxy that needs no value
// statistics and no floating point: a fully bound literal costs 0 (a
// membership probe), an unbound one costs the full base.
func (e *Evaluator) estCost(r *crule, li int, bound []bool) uint64 {
	a := &r.body[li]
	facts, states := e.store.card(a.Pred)
	base := facts
	if a.Time != nil && states > 0 {
		base = (facts + states - 1) / states
	}
	if base <= 0 {
		// An empty relation of a derived predicate is not cheap: the plan
		// persists for the whole fixpoint entry, during which the
		// relation can grow to the order of the database (typical at the
		// first entry, before anything is derived). Assume
		// database-sized rather than free; a truly empty EDB relation
		// still costs 0 (scanning it first aborts the join immediately).
		// The static bounds sharpen both ends: a provably empty predicate
		// stays empty for the whole entry (cost 0), and a cold derived
		// relation can never outgrow the base facts backward-reachable
		// from it (its support seed).
		if !e.derived[a.Pred] {
			return 0
		}
		if e.bounds != nil && e.bounds.Empty[a.Pred] {
			return 0
		}
		base = e.store.count
		if e.bounds != nil {
			if s, ok := e.bounds.Support[a.Pred]; ok && s < base {
				base = s
			}
		}
		if base <= 0 {
			return 0
		}
	}
	arity := len(a.Args)
	if arity == 0 {
		return 1
	}
	_, nb := boundMask(r.bodyC[li], bound)
	if nb >= arity {
		return 0
	}
	shift := bits.Len(uint(base)) * nb / arity
	cost := uint64(base) >> uint(shift)
	if cost == 0 {
		cost = 1
	}
	return cost
}

// PlanFingerprint recomputes the join plans from the current cardinality
// counters and returns a digest of every choice the planner made: per
// rule, the literal order and index masks of the main plan and of each
// delta plan. Two evaluators over the same program and store content —
// regardless of worker count, clone lineage, or repetition — produce the
// same fingerprint; tests pin this (plans are a pure function of rule +
// cardinality snapshot).
func (e *Evaluator) PlanFingerprint() string {
	e.planJoins()
	var b strings.Builder
	writePlan := func(p *joinPlan) {
		for si := range p.steps {
			st := &p.steps[si]
			fmt.Fprintf(&b, " %d/%x", st.lit, st.mask)
		}
	}
	for i := range e.rules {
		fmt.Fprintf(&b, "rule %d:", i)
		writePlan(&e.plans[i])
		for pin := range e.deltaPlans[i] {
			fmt.Fprintf(&b, " |pin %d:", pin)
			writePlan(&e.deltaPlans[i][pin])
		}
		b.WriteByte('\n')
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:8])
}

// PlanText renders the current plans in readable form (for tests and
// debugging): one line per rule, literals in execution order with their
// index masks.
func (e *Evaluator) PlanText() string {
	e.planJoins()
	var lines []string
	for i := range e.rules {
		var parts []string
		for _, st := range e.plans[i].steps {
			parts = append(parts, fmt.Sprintf("%s[%d mask=%x]", e.rules[i].body[st.lit].Pred, st.lit, st.mask))
		}
		lines = append(lines, fmt.Sprintf("%s :: %s", e.rules[i].src.String(), strings.Join(parts, " ⋈ ")))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
