package engine

import (
	"fmt"
	"strings"

	"tdd/internal/ast"
)

// Derivation records how a fact was first derived: the source rule and the
// ground body facts that fired it. Database facts have no derivation.
type Derivation struct {
	Rule ast.Rule
	Time int // binding of the rule's temporal variable (if any)
	Body []ast.Fact
}

// factKey canonicalizes a fact for provenance lookup.
func factKey(f ast.Fact) string {
	k := f.Pred + "\x01"
	if f.Temporal {
		k += fmt.Sprintf("%d", f.Time)
	}
	return k + "\x01" + tupleKey(f.Args)
}

// EnableProvenance turns on derivation recording. It must be called before
// the first EnsureWindow; recording costs one map entry per derived fact.
func (e *Evaluator) EnableProvenance() error {
	if e.evaluated >= 0 {
		return fmt.Errorf("engine: EnableProvenance must precede evaluation")
	}
	e.prov = make(map[string]*Derivation)
	return nil
}

// Derivation returns how the fact was first derived, or nil for database
// facts and unknown facts. Provenance must have been enabled.
func (e *Evaluator) Derivation(f ast.Fact) *Derivation {
	if e.prov == nil {
		return nil
	}
	return e.prov[factKey(f)]
}

// Explain renders the full derivation tree of a fact: each derived fact
// shows the rule instance that first produced it and, indented, the
// derivations of its body facts. The tree is finite because a fact's first
// derivation only uses facts inserted before it. maxDepth caps rendering
// for very deep chains (0 means unlimited).
func (e *Evaluator) Explain(f ast.Fact, maxDepth int) (string, error) {
	if e.prov == nil {
		return "", fmt.Errorf("engine: provenance not enabled")
	}
	if !e.store.Has(f) {
		return "", fmt.Errorf("engine: %s does not hold (within window %d)", f, e.evaluated)
	}
	var b strings.Builder
	e.explain(&b, f, "", maxDepth)
	return b.String(), nil
}

func (e *Evaluator) explain(b *strings.Builder, f ast.Fact, indent string, maxDepth int) {
	fmt.Fprintf(b, "%s%s", indent, f)
	d := e.prov[factKey(f)]
	if d == nil {
		b.WriteString("   [database fact]\n")
		return
	}
	fmt.Fprintf(b, "   [by %s", d.Rule)
	if tv := d.Rule.TemporalVars(); len(tv) == 1 {
		fmt.Fprintf(b, " with %s=%d", tv[0], d.Time)
	}
	b.WriteString("]\n")
	if maxDepth == 1 {
		fmt.Fprintf(b, "%s  ...\n", indent)
		return
	}
	next := maxDepth
	if next > 0 {
		next--
	}
	for _, bf := range d.Body {
		e.explain(b, bf, indent+"  ", next)
	}
}
