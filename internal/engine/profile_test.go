package engine

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"tdd/internal/ast"
	"tdd/internal/obs"
	"tdd/internal/workload"
)

// profileEval builds an evaluator with the join profiler enabled.
func profileEval(t *testing.T, src string) *Evaluator {
	t.Helper()
	e := buildEval(t, src)
	e.EnableProfile()
	return e
}

// pathGraph is a join-heavy reachability workload: path(K, Y, Z) joins
// against a growing relation, so the profiler has real scan volume to
// attribute.
func pathGraph(n int) string {
	src := `
path(K, X, X) :- node(X), null(K).
path(K+1, X, Z) :- edge(X, Y), path(K, Y, Z).
null(0).
`
	for i := 0; i < n; i++ {
		src += fmt.Sprintf("node(n%d).\n", i)
		if i+1 < n {
			src += fmt.Sprintf("edge(n%d, n%d).\n", i, i+1)
		}
		if i+5 < n {
			src += fmt.Sprintf("edge(n%d, n%d).\n", i, i+5)
		}
	}
	return src
}

// TestProfileCounts checks the snapshot's internal consistency: matched
// never exceeds scanned, selectivity is a ratio, stratum rows sum to the
// literal totals, per-literal times reconcile with the rule total, and
// the cardinality tables cover the store.
func TestProfileCounts(t *testing.T) {
	e := profileEval(t, pathGraph(20))
	e.EnsureWindow(20)
	p := e.ProfileSnapshot()
	if p == nil {
		t.Fatal("ProfileSnapshot returned nil with profiling enabled")
	}
	if p.Window != 20 {
		t.Errorf("Window = %d, want 20", p.Window)
	}
	if len(p.Rules) == 0 {
		t.Fatal("no rules profiled")
	}
	for _, r := range p.Rules {
		var litUs int64
		for _, l := range r.Literals {
			if l.Matched > l.Scanned {
				t.Errorf("%s[%d]: matched %d > scanned %d", r.Rule, l.Pos, l.Matched, l.Scanned)
			}
			if l.Selectivity < 0 || l.Selectivity > 1 {
				t.Errorf("%s[%d]: selectivity %v out of range", r.Rule, l.Pos, l.Selectivity)
			}
			var ss, sm int64
			for _, s := range l.Strata {
				ss += s.Scanned
				sm += s.Matched
			}
			if ss != l.Scanned || sm != l.Matched {
				t.Errorf("%s[%d]: strata sum (%d,%d) != totals (%d,%d)", r.Rule, l.Pos, ss, sm, l.Scanned, l.Matched)
			}
			litUs += l.Us
		}
		if litUs != r.Us {
			t.Errorf("%s: per-literal times sum to %d, rule total %d", r.Rule, litUs, r.Us)
		}
	}
	if p.Dominant == nil {
		t.Fatal("no dominant join identified")
	}
	if p.Dominant.Pos == 0 {
		t.Errorf("dominant should be a join literal (pos > 0), got pos 0: %+v", p.Dominant)
	}
	var preds []string
	for _, c := range p.Cardinalities {
		preds = append(preds, c.Pred)
		if c.Facts <= 0 {
			t.Errorf("cardinality for %s is %d", c.Pred, c.Facts)
		}
	}
	if !sort.StringsAreSorted(preds) {
		t.Errorf("cardinalities not sorted: %v", preds)
	}
	want := map[string]bool{"path": true, "node": true, "edge": true, "null": true}
	for _, p := range preds {
		delete(want, p)
	}
	if len(want) != 0 {
		t.Errorf("cardinality tables missing predicates: %v (got %v)", want, preds)
	}
}

// TestProfileDisabled checks the nil-receiver discipline: no profile, no
// snapshot, and evaluation untouched.
func TestProfileDisabled(t *testing.T) {
	e := buildEval(t, pathGraph(10))
	e.EnsureWindow(10)
	if e.Profile() != nil {
		t.Error("profile should default to nil")
	}
	if p := e.ProfileSnapshot(); p != nil {
		t.Errorf("ProfileSnapshot = %+v, want nil when disabled", p)
	}
}

// stripTimes zeroes every wall-time field and timing-derived ordering so
// profiles can be compared for counter determinism.
func stripTimes(p *ProfileJSON) {
	p.JoinUs = 0
	p.Dominant = nil
	for i := range p.Rules {
		p.Rules[i].Us = 0
		for j := range p.Rules[i].Strata {
			p.Rules[i].Strata[j].Us = 0
		}
		for j := range p.Rules[i].Literals {
			p.Rules[i].Literals[j].Us = 0
		}
	}
	sort.Slice(p.Rules, func(i, j int) bool { return p.Rules[i].Rule < p.Rules[j].Rule })
}

// TestProfileParallelDeterminism checks the satellite requirement:
// profiler counters merged across worker counts are bit-identical —
// par=1 ≡ par=8, including after delta propagation.
func TestProfileParallelDeterminism(t *testing.T) {
	rules, facts := workload.Ski(workload.SkiParams{YearLen: 30, Resorts: 6, Planes: 10, Holidays: 4, Seed: 42})
	src := rules + facts
	snap := func(par int) *ProfileJSON {
		e := profileEval(t, src)
		e.SetParallelism(par)
		e.EnsureWindow(90)
		f := ast.Fact{Pred: "plane", Temporal: true, Time: 3, Args: []string{"r0"}}
		if _, err := e.InsertBase(f); err != nil {
			t.Fatal(err)
		}
		e.PropagateDelta([]ast.Fact{f})
		p := e.ProfileSnapshot()
		stripTimes(p)
		return p
	}
	p1, p8 := snap(1), snap(8)
	if !reflect.DeepEqual(p1, p8) {
		t.Errorf("profiles differ across worker counts:\npar=1: %+v\npar=8: %+v", p1, p8)
	}
}

// TestProfileCloneShared checks a clone keeps writing the same profile:
// the Assert copy-on-write path must accumulate into the database's
// lifetime profile, not fork it.
func TestProfileCloneShared(t *testing.T) {
	e := profileEval(t, "even(T+2) :- even(T).\neven(0).\n")
	e.EnsureWindow(10)
	before := e.ProfileSnapshot().Rules[0].Literals[0].Scanned
	c := e.Clone()
	f := ast.Fact{Pred: "even", Temporal: true, Time: 1}
	if _, err := c.InsertBase(f); err != nil {
		t.Fatal(err)
	}
	if c.PropagateDelta([]ast.Fact{f}) == 0 {
		t.Fatal("delta propagation derived nothing")
	}
	after := e.ProfileSnapshot().Rules[0].Literals[0].Scanned
	if after <= before {
		t.Errorf("clone's delta work not visible in shared profile: scanned %d -> %d", before, after)
	}
}

// TestProfileSumsToFixpoint checks the acceptance criterion: the
// EXPLAIN ANALYZE per-literal times sum to within 10% of the measured
// fixpoint phase. Per-literal times partition the per-rule measured
// join time exactly, so this is really a bound on the fixpoint work
// spent outside fireRule (state loops, stats, span bookkeeping).
func TestProfileSumsToFixpoint(t *testing.T) {
	rules, facts := workload.Ski(workload.SkiParams{YearLen: 50, Resorts: 24, Planes: 48, Holidays: 5, Seed: 42})
	e := profileEval(t, rules+facts)
	tr := obs.New()
	e.SetTrace(tr)
	e.EnsureWindow(200)
	var fixpointUs int64
	for _, ph := range tr.Snapshot().Phases {
		if ph.Name == "fixpoint" {
			fixpointUs += ph.Us
		}
	}
	if fixpointUs == 0 {
		t.Fatal("no fixpoint phase recorded")
	}
	p := e.ProfileSnapshot()
	var litUs int64
	for _, r := range p.Rules {
		for _, l := range r.Literals {
			litUs += l.Us
		}
	}
	ratio := float64(litUs) / float64(fixpointUs)
	t.Logf("per-literal sum %dµs vs fixpoint %dµs (ratio %.3f)", litUs, fixpointUs, ratio)
	if ratio < 0.90 || ratio > 1.02 {
		t.Errorf("per-literal sum %dµs not within 10%% of fixpoint %dµs (ratio %.3f)", litUs, fixpointUs, ratio)
	}
}
