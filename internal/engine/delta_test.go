package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"tdd/internal/ast"
)

// applyDelta inserts the facts as base facts and propagates their
// consequences through the already-evaluated window.
func applyDelta(t *testing.T, e *Evaluator, facts ...ast.Fact) (inserted int, derived int) {
	t.Helper()
	var seed []ast.Fact
	for _, f := range facts {
		ok, err := e.InsertBase(f)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			seed = append(seed, f)
			inserted++
		}
	}
	return inserted, e.PropagateDelta(seed)
}

// assertSameWindow checks that two evaluators agree on every state of
// 0..m and on the non-temporal part.
func assertSameWindow(t *testing.T, got, want *Evaluator, m int, label string) {
	t.Helper()
	for tt := 0; tt <= m; tt++ {
		if g, w := got.Store().StateKey(tt), want.Store().StateKey(tt); g != w {
			t.Fatalf("%s: state %d differs\nincremental: %q\nfrom-scratch: %q", label, tt, g, w)
		}
	}
	g := ast.Database{Facts: got.Store().NonTemporalFacts()}
	w := ast.Database{Facts: want.Store().NonTemporalFacts()}
	if g.String() != w.String() {
		t.Fatalf("%s: non-temporal parts differ\nincremental:\n%s\nfrom-scratch:\n%s", label, g.String(), w.String())
	}
}

func TestCloneIndependence(t *testing.T) {
	e := mustEval(t, `
		p(T+2, X) :- p(T, X), q(X).
		p(0, a). q(a). q(b).
	`)
	e.EnsureWindow(10)
	c := e.Clone()

	if _, err := c.InsertBase(tfact("p", 1, "b")); err != nil {
		t.Fatal(err)
	}
	c.PropagateDelta([]ast.Fact{tfact("p", 1, "b")})

	if e.Holds(tfact("p", 1, "b")) || e.Holds(tfact("p", 3, "b")) {
		t.Fatal("insert into clone leaked into the original")
	}
	if !c.Holds(tfact("p", 3, "b")) || !c.Holds(tfact("p", 9, "b")) {
		t.Fatal("clone did not propagate the delta")
	}
	if len(e.Database().Facts) == len(c.Database().Facts) {
		t.Fatal("clone database shares the original's fact list")
	}

	// Growing the clone's window must not move the original's.
	c.EnsureWindow(20)
	if e.Window() != 10 {
		t.Fatalf("original window moved to %d", e.Window())
	}
}

func TestInsertBaseSignatureChecks(t *testing.T) {
	e := mustEval(t, `
		p(T+1, X) :- p(T, X), q(X).
		p(0, a). q(a).
	`)
	if _, err := e.InsertBase(ntfact("p", "a")); err == nil {
		t.Fatal("non-temporal insert into temporal predicate accepted")
	}
	if _, err := e.InsertBase(tfact("q", 0, "a")); err == nil {
		t.Fatal("temporal insert into non-temporal predicate accepted")
	}
	if _, err := e.InsertBase(ast.Fact{Pred: "p", Temporal: true, Time: -1, Args: []string{"a"}}); err == nil {
		t.Fatal("negative time accepted")
	}
	// A brand-new predicate is admitted and recorded.
	ok, err := e.InsertBase(ntfact("r", "a", "b"))
	if err != nil || !ok {
		t.Fatalf("new predicate insert: ok=%v err=%v", ok, err)
	}
	if info := e.Database().Preds["r"]; info.Arity != 2 || info.Temporal {
		t.Fatalf("recorded signature %v", info)
	}
	// Re-inserting an existing database fact is a no-op.
	ok, err = e.InsertBase(tfact("p", 0, "a"))
	if err != nil || ok {
		t.Fatalf("duplicate base insert: ok=%v err=%v", ok, err)
	}
}

// TestInsertBaseRecordsDerivedFacts: a fact already derived by the rules
// must still become a database fact — the database's temporal depth (and
// with it the period certificate) has to match a from-scratch evaluation
// of the union.
func TestInsertBaseRecordsDerivedFacts(t *testing.T) {
	e := mustEval(t, `
		p(T+1) :- p(T).
		p(0).
	`)
	e.EnsureWindow(12)
	if !e.Holds(tfact("p", 9)) {
		t.Fatal("p(9) should be derived")
	}
	ok, err := e.InsertBase(tfact("p", 9))
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if e.Database().MaxDepth() != 9 {
		t.Fatalf("database depth %d, want 9", e.Database().MaxDepth())
	}
}

// TestPropagateDeltaMatchesFromScratch drives hand-written programs
// through batched insertions and compares every state of the window with
// a from-scratch evaluation of the union.
func TestPropagateDeltaMatchesFromScratch(t *testing.T) {
	cases := []struct {
		name  string
		src   string
		m     int
		batch []ast.Fact
	}{
		{
			name: "temporal-chain",
			src: `
				p(T+2, X) :- p(T, X), q(X).
				p(0, a). q(a). q(b).
			`,
			m:     14,
			batch: []ast.Fact{tfact("p", 1, "b"), tfact("p", 4, "c")},
		},
		{
			name: "nontemporal-feedback",
			src: `
				alert(T+1, S) :- alert(T, S).
				alert(T, S) :- check(T, S), fragile(S).
				flagged(S) :- alert(T, S).
				check(0, api). check(3, db). fragile(api).
			`,
			m:     12,
			batch: []ast.Fact{ntfact("fragile", "db"), tfact("check", 5, "cache"), ntfact("fragile", "cache")},
		},
		{
			name: "graph-edge",
			src: `
				path(K, X, X) :- node(X), null(K).
				path(K+1, X, Z) :- edge(X, Y), path(K, Y, Z).
				path(K+1, X, Y) :- path(K, X, Y).
				null(0). node(a). node(b). node(c). edge(a, b).
			`,
			m:     8,
			batch: []ast.Fact{ntfact("edge", "b", "c"), ntfact("node", "d"), ntfact("edge", "c", "d")},
		},
		{
			name: "beyond-window-seed",
			src: `
				p(T+1) :- p(T).
				p(0).
			`,
			m:     6,
			batch: []ast.Fact{tfact("q", 20)},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			e := mustEval(t, c.src)
			e.EnsureWindow(c.m)
			applyDelta(t, e, c.batch...)

			union, err := New(e.Program(), e.Database())
			if err != nil {
				t.Fatal(err)
			}
			union.EnsureWindow(c.m)
			assertSameWindow(t, e, union, c.m, c.name)
		})
	}
}

// TestPropagateDeltaRandomized: random incremental insertion orders on
// the bounded-path program, each compared with a from-scratch union run.
func TestPropagateDeltaRandomized(t *testing.T) {
	const nodes, window = 8, 10
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		src := `path(K, X, X) :- node(X), null(K).
path(K+1, X, Z) :- edge(X, Y), path(K, Y, Z).
path(K+1, X, Y) :- path(K, X, Y).
null(0).
`
		for i := 0; i < nodes; i++ {
			src += fmt.Sprintf("node(n%d).\n", i)
		}
		var edges []ast.Fact
		for k := 0; k < 2*nodes; k++ {
			u, v := rng.Intn(nodes), rng.Intn(nodes)
			if u != v {
				edges = append(edges, ntfact("edge", fmt.Sprintf("n%d", u), fmt.Sprintf("n%d", v)))
			}
		}
		e := mustEval(t, src)
		e.EnsureWindow(window)
		for len(edges) > 0 {
			n := 1 + rng.Intn(len(edges))
			applyDelta(t, e, edges[:n]...)
			edges = edges[n:]
		}

		union, err := New(e.Program(), e.Database())
		if err != nil {
			t.Fatal(err)
		}
		union.EnsureWindow(window)
		assertSameWindow(t, e, union, window, fmt.Sprintf("seed %d", seed))
	}
}
