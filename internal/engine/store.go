// Package engine implements bottom-up evaluation of temporal deductive
// databases over a bounded temporal window.
//
// The evaluator computes the least Herbrand model of Z ∧ D (van Emden &
// Kowalski) restricted to the time points 0..m. For forward rule sets —
// after shift-normalization the head of every rule is at least as deep as
// each body literal — the restriction of the least model to a window equals
// the least fixpoint of the window-restricted T_P operator, and facts at
// time t depend only on facts at times <= t. The engine exploits this with
// a time-stratified sweep: states are closed in ascending time order, with
// a local fixpoint per state (for rules whose body touches the state being
// built) and an outer fixpoint for derived non-temporal facts (which can
// feed back into any state).
package engine

import (
	"hash/fnv"
	"sort"
	"strings"

	"tdd/internal/ast"
)

// tupleKey builds a canonical map key for a tuple. \x00 cannot occur in
// parsed constants.
func tupleKey(args []string) string { return strings.Join(args, "\x00") }

// relset is a set of tuples with a first-column index for joins. It is
// one shard of the store (one predicate at one time point, or one
// non-temporal predicate), the unit of copy-on-write sharing between
// store clones.
type relset struct {
	m       map[string]struct{}   // membership by tuple key
	list    [][]string            // tuples in insertion order (see all)
	byFirst map[string][][]string // first column -> tuples (arity >= 1 only)
	// shared marks a shard referenced by more than one store (set by
	// Store.Clone). A shared shard is immutable: writers materialize a
	// private copy first. The flag is written only while clones are
	// serialized by the caller (the evaluator's copy-on-write
	// discipline), and only read afterwards.
	shared bool
}

func newRelset() *relset {
	return &relset{m: make(map[string]struct{})}
}

// insert adds the tuple, reporting whether it was new. The caller must
// hold a private (non-shared) shard; see Store.Insert.
func (r *relset) insert(args []string) bool {
	k := tupleKey(args)
	if _, ok := r.m[k]; ok {
		return false
	}
	stored := append([]string(nil), args...)
	r.m[k] = struct{}{}
	r.list = append(r.list, stored)
	if len(stored) > 0 {
		if r.byFirst == nil {
			r.byFirst = make(map[string][][]string)
		}
		r.byFirst[stored[0]] = append(r.byFirst[stored[0]], stored)
	}
	return true
}

func (r *relset) has(args []string) bool {
	if r == nil {
		return false
	}
	_, ok := r.m[tupleKey(args)]
	return ok
}

func (r *relset) size() int {
	if r == nil {
		return 0
	}
	return len(r.m)
}

// all iterates every tuple in insertion order. Iterating the list rather
// than the membership map keeps every downstream order — join
// enumeration, provenance ("first derivation"), answer rendering —
// deterministic between runs; map order would reshuffle them.
func (r *relset) all(f func([]string) bool) {
	if r == nil {
		return
	}
	for _, tup := range r.list {
		if !f(tup) {
			return
		}
	}
}

// withFirst iterates tuples whose first column equals v, in insertion
// order.
func (r *relset) withFirst(v string, f func([]string) bool) {
	if r == nil || r.byFirst == nil {
		return
	}
	for _, tup := range r.byFirst[v] {
		if !f(tup) {
			return
		}
	}
}

// materialize deep-copies a shared shard so the caller can write to it.
// Tuples are immutable after insert and stay shared.
func (r *relset) materialize() *relset {
	c := &relset{
		m:    make(map[string]struct{}, len(r.m)),
		list: append(make([][]string, 0, len(r.list)), r.list...),
	}
	for k := range r.m {
		c.m[k] = struct{}{}
	}
	if r.byFirst != nil {
		c.byFirst = make(map[string][][]string, len(r.byFirst))
		for k, v := range r.byFirst {
			c.byFirst[k] = append(make([][]string, 0, len(v)), v...)
		}
	}
	return c
}

// Store holds the facts derived so far: temporal relations indexed by
// predicate and time point, and non-temporal relations by predicate.
type Store struct {
	temporal    map[string]map[int]*relset
	nonTemporal map[string]*relset
	count       int
	// keys caches StateKey per time point; an insert at time t drops the
	// entry for t. Incremental maintenance re-certifies the period after a
	// delta, and the cache confines the rehash to the states the delta
	// actually touched.
	keys map[int]string
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		temporal:    make(map[string]map[int]*relset),
		nonTemporal: make(map[string]*relset),
	}
}

// Clone returns an independent copy of the store: inserts into the clone
// are invisible to the original and vice versa. The copy is
// copy-on-write at shard (predicate×timestamp) granularity: both stores
// share every relset until one of them writes into it, so a clone costs
// O(shards) pointer copies — independent of the number of facts — and a
// subsequent write deep-copies only the shards it touches. Clone must be
// externally serialized against writes to s (the evaluator's single-
// writer discipline); afterwards the two stores may be written from
// different goroutines.
func (s *Store) Clone() *Store {
	c := &Store{
		temporal:    make(map[string]map[int]*relset, len(s.temporal)),
		nonTemporal: make(map[string]*relset, len(s.nonTemporal)),
		count:       s.count,
	}
	for pred, byTime := range s.temporal {
		bt := make(map[int]*relset, len(byTime))
		for t, rs := range byTime {
			rs.shared = true
			bt[t] = rs
		}
		c.temporal[pred] = bt
	}
	for pred, rs := range s.nonTemporal {
		rs.shared = true
		c.nonTemporal[pred] = rs
	}
	if s.keys != nil {
		c.keys = make(map[int]string, len(s.keys))
		for t, k := range s.keys {
			c.keys[t] = k
		}
	}
	return c
}

// Insert adds a fact, reporting whether it was new. Inserting into a
// shard shared with a clone first materializes a private copy
// (copy-on-write); duplicate inserts never copy.
func (s *Store) Insert(f ast.Fact) bool {
	var added bool
	if f.Temporal {
		byTime, ok := s.temporal[f.Pred]
		if !ok {
			byTime = make(map[int]*relset)
			s.temporal[f.Pred] = byTime
		}
		rs, ok := byTime[f.Time]
		switch {
		case !ok:
			rs = newRelset()
			byTime[f.Time] = rs
		case rs.shared:
			if rs.has(f.Args) {
				return false
			}
			rs = rs.materialize()
			byTime[f.Time] = rs
		}
		added = rs.insert(f.Args)
		if added {
			delete(s.keys, f.Time)
		}
	} else {
		rs, ok := s.nonTemporal[f.Pred]
		switch {
		case !ok:
			rs = newRelset()
			s.nonTemporal[f.Pred] = rs
		case rs.shared:
			if rs.has(f.Args) {
				return false
			}
			rs = rs.materialize()
			s.nonTemporal[f.Pred] = rs
		}
		added = rs.insert(f.Args)
	}
	if added {
		s.count++
	}
	return added
}

// Has reports whether the fact is present.
func (s *Store) Has(f ast.Fact) bool {
	if f.Temporal {
		return s.temporal[f.Pred][f.Time].has(f.Args)
	}
	return s.nonTemporal[f.Pred].has(f.Args)
}

// Len returns the total number of stored facts.
func (s *Store) Len() int { return s.count }

// at returns the temporal relation of pred at time t (nil if empty).
func (s *Store) at(pred string, t int) *relset { return s.temporal[pred][t] }

// nt returns the non-temporal relation of pred (nil if empty).
func (s *Store) nt(pred string) *relset { return s.nonTemporal[pred] }

// StateSize returns the number of temporal tuples at time t.
func (s *Store) StateSize(t int) int {
	n := 0
	for _, byTime := range s.temporal {
		n += byTime[t].size()
	}
	return n
}

// StateKey returns a canonical representation of the state L[t]: the set of
// atoms P(x̄) with P(t, x̄) in the store, rendered deterministically. Two
// time points have equal states iff their StateKeys are equal. Keys are
// cached per time point; inserts at t invalidate the entry for t.
func (s *Store) StateKey(t int) string {
	if k, ok := s.keys[t]; ok {
		return k
	}
	k := s.stateKey(t)
	if s.keys == nil {
		s.keys = make(map[int]string)
	}
	s.keys[t] = k
	return k
}

func (s *Store) stateKey(t int) string {
	var lines []string
	for pred, byTime := range s.temporal {
		rs := byTime[t]
		if rs == nil {
			continue
		}
		for k := range rs.m {
			lines = append(lines, pred+"\x01"+k)
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\x02")
}

// StateHash returns a 64-bit fingerprint of StateKey(t). Period detection
// compares hashes first and confirms candidate matches with full keys.
func (s *Store) StateHash(t int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s.StateKey(t)))
	return h.Sum64()
}

// State returns the state L[t] as sorted facts with the temporal argument
// projected out (the paper's M[t]).
func (s *Store) State(t int) []ast.Fact {
	var out []ast.Fact
	for pred, byTime := range s.temporal {
		rs := byTime[t]
		if rs == nil {
			continue
		}
		for _, tup := range rs.list {
			out = append(out, ast.Fact{Pred: pred, Args: append([]string(nil), tup...)})
		}
	}
	ast.SortFacts(out)
	return out
}

// Snapshot returns the snapshot L(t) as sorted temporal facts (the paper's
// M(t): tuples with their temporal argument).
func (s *Store) Snapshot(t int) []ast.Fact {
	var out []ast.Fact
	for pred, byTime := range s.temporal {
		rs := byTime[t]
		if rs == nil {
			continue
		}
		for _, tup := range rs.list {
			out = append(out, ast.Fact{Pred: pred, Temporal: true, Time: t, Args: append([]string(nil), tup...)})
		}
	}
	ast.SortFacts(out)
	return out
}

// NonTemporalFacts returns the non-temporal part L_nt as sorted facts.
func (s *Store) NonTemporalFacts() []ast.Fact {
	var out []ast.Fact
	for pred, rs := range s.nonTemporal {
		for _, tup := range rs.list {
			out = append(out, ast.Fact{Pred: pred, Args: append([]string(nil), tup...)})
		}
	}
	ast.SortFacts(out)
	return out
}

// NonTemporalCount returns |L_nt|.
func (s *Store) NonTemporalCount() int {
	n := 0
	for _, rs := range s.nonTemporal {
		n += rs.size()
	}
	return n
}

// Constants returns all non-temporal constants occurring in the store,
// sorted. This is the active domain used for non-temporal quantification.
func (s *Store) Constants() []string {
	set := make(map[string]bool)
	add := func(tup []string) bool {
		for _, c := range tup {
			set[c] = true
		}
		return true
	}
	for _, rs := range s.nonTemporal {
		rs.all(add)
	}
	for _, byTime := range s.temporal {
		for _, rs := range byTime {
			rs.all(add)
		}
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
