// Package engine implements bottom-up evaluation of temporal deductive
// databases over a bounded temporal window.
//
// The evaluator computes the least Herbrand model of Z ∧ D (van Emden &
// Kowalski) restricted to the time points 0..m. For forward rule sets —
// after shift-normalization the head of every rule is at least as deep as
// each body literal — the restriction of the least model to a window equals
// the least fixpoint of the window-restricted T_P operator, and facts at
// time t depend only on facts at times <= t. The engine exploits this with
// a time-stratified sweep: states are closed in ascending time order, with
// a local fixpoint per state (for rules whose body touches the state being
// built) and an outer fixpoint for derived non-temporal facts (which can
// feed back into any state).
package engine

import (
	"hash/fnv"
	"sort"
	"strings"
	"sync/atomic"

	"tdd/internal/ast"
)

// tupleKey builds a canonical map key for a tuple. \x00 cannot occur in
// parsed constants, and the engine rejects empty constants on ingestion
// (InsertBase), so keys are unambiguous.
func tupleKey(args []string) string { return strings.Join(args, "\x00") }

// appendTupleKey is tupleKey into a reusable buffer: membership probes on
// the hot join/emit path look up r.m[string(buf)], which the compiler
// performs without allocating.
func appendTupleKey(dst []byte, args []string) []byte {
	for i, a := range args {
		if i > 0 {
			dst = append(dst, 0)
		}
		dst = append(dst, a...)
	}
	return dst
}

// appendMaskKey builds the bound-column index key of a tuple: the values
// of the masked columns, in ascending position order, each terminated by
// \x00 (a terminator rather than a separator, so ("a","") and ("","a")
// masks cannot collide).
func appendMaskKey(dst []byte, mask uint32, tup []string) []byte {
	for i := 0; i < len(tup); i++ {
		if mask&(1<<uint(i)) != 0 {
			dst = append(dst, tup[i]...)
			dst = append(dst, 0)
		}
	}
	return dst
}

// idxEntry is one bound-column hash index over a relation: the tuples
// grouped by the values of the masked argument positions, each group in
// insertion order.
type idxEntry struct {
	mask    uint32
	buckets map[string][][]string
}

// idxTable is the set of indexes built so far for one relset. The table
// value is immutable — building an index for a new mask installs a new
// table via compare-and-swap — while the bucket maps inside it are
// mutated in place by insert, which only runs in single-writer phases
// (the sequential engine, the parallel schedule's merge phase, and the
// overlay of one task). Concurrent read-side builds during a parallel
// round race only on the CAS: both builders derive the same index from
// the same frozen tuple list, so the loser's work is discarded without
// any effect on results.
type idxTable struct {
	entries []idxEntry
}

// withMask returns a new table extending t (nil allowed) with an index
// for mask, built from the given tuple list in insertion order.
func (t *idxTable) withMask(mask uint32, list [][]string) *idxTable {
	n := &idxTable{}
	if t != nil {
		n.entries = append(n.entries, t.entries...)
	}
	buckets := make(map[string][][]string)
	var kb []byte
	for _, tup := range list {
		kb = appendMaskKey(kb[:0], mask, tup)
		k := string(kb)
		buckets[k] = append(buckets[k], tup)
	}
	n.entries = append(n.entries, idxEntry{mask: mask, buckets: buckets})
	return n
}

// relset is a set of tuples with lazily built bound-column hash indexes
// for joins. It is one shard of the store (one predicate at one time
// point, or one non-temporal predicate), the unit of copy-on-write
// sharing between store clones.
type relset struct {
	m    map[string]struct{} // membership by tuple key
	list [][]string          // tuples in insertion order (see all)
	// idx holds the bound-column indexes built so far; see idxTable for
	// the concurrency discipline. Indexes are dropped (not copied) when a
	// shared shard is materialized for writing and rebuilt on demand.
	idx atomic.Pointer[idxTable]
	// shared marks a shard referenced by more than one store (set by
	// Store.Clone). A shared shard is immutable: writers materialize a
	// private copy first. The flag is written only while clones are
	// serialized by the caller (the evaluator's copy-on-write
	// discipline), and only read afterwards.
	shared bool
}

func newRelset() *relset {
	return &relset{m: make(map[string]struct{})}
}

// insert adds the tuple, reporting whether it was new. The caller must
// hold a private (non-shared) shard; see Store.Insert. Every index built
// so far is maintained, so a lookup after an insert sees the new tuple
// exactly when a linear scan would.
func (r *relset) insert(args []string) bool {
	k := tupleKey(args)
	if _, ok := r.m[k]; ok {
		return false
	}
	stored := append([]string(nil), args...)
	r.m[k] = struct{}{}
	r.list = append(r.list, stored)
	if tbl := r.idx.Load(); tbl != nil {
		var kb []byte
		for i := range tbl.entries {
			kb = appendMaskKey(kb[:0], tbl.entries[i].mask, stored)
			bk := string(kb)
			tbl.entries[i].buckets[bk] = append(tbl.entries[i].buckets[bk], stored)
		}
	}
	return true
}

func (r *relset) has(args []string) bool {
	if r == nil {
		return false
	}
	_, ok := r.m[tupleKey(args)]
	return ok
}

// hasKey is has with a caller-built tupleKey buffer; the membership probe
// does not allocate.
func (r *relset) hasKey(key []byte) bool {
	if r == nil {
		return false
	}
	_, ok := r.m[string(key)]
	return ok
}

func (r *relset) size() int {
	if r == nil {
		return 0
	}
	return len(r.m)
}

// bucket returns the tuples whose masked columns equal key, in insertion
// order, building the mask's index on first use. A nil receiver and an
// empty bucket both return nil. Safe for concurrent readers: the build
// installs an immutable table via CAS and retries on contention.
func (r *relset) bucket(mask uint32, key []byte) [][]string {
	if r == nil {
		return nil
	}
	for {
		tbl := r.idx.Load()
		if tbl != nil {
			for i := range tbl.entries {
				if tbl.entries[i].mask == mask {
					return tbl.entries[i].buckets[string(key)]
				}
			}
		}
		// Not built yet: derive a new table from the current tuple list.
		// On CAS failure another goroutine installed a table first — loop
		// and look again (it may even have built this very mask).
		r.idx.CompareAndSwap(tbl, tbl.withMask(mask, r.list))
	}
}

// all iterates every tuple in insertion order. Iterating the list rather
// than the membership map keeps every downstream order — join
// enumeration, provenance ("first derivation"), answer rendering —
// deterministic between runs; map order would reshuffle them.
func (r *relset) all(f func([]string) bool) {
	if r == nil {
		return
	}
	for _, tup := range r.list {
		if !f(tup) {
			return
		}
	}
}

// tuples returns the full tuple list in insertion order (nil-safe); the
// join loops iterate it directly instead of through a callback.
func (r *relset) tuples() [][]string {
	if r == nil {
		return nil
	}
	return r.list
}

// materialize deep-copies a shared shard so the caller can write to it.
// Tuples are immutable after insert and stay shared. Indexes are not
// copied: the private copy rebuilds them lazily on first lookup, so a
// clone that never joins against the shard never pays for them.
func (r *relset) materialize() *relset {
	c := &relset{
		m:    make(map[string]struct{}, len(r.m)),
		list: append(make([][]string, 0, len(r.list)), r.list...),
	}
	for k := range r.m {
		c.m[k] = struct{}{}
	}
	return c
}

// predCard is the store-maintained cardinality summary of one predicate:
// total facts and, for temporal predicates, the number of occupied time
// points. Maintained in O(1) per insert, it is the cost-model seed the
// join-order planner reads (see plan.go) and the totals behind the
// profiler's per-predicate cardinality tables.
type predCard struct {
	temporal bool
	facts    int
	states   int
}

// Store holds the facts derived so far: temporal relations indexed by
// predicate and time point, and non-temporal relations by predicate.
type Store struct {
	temporal    map[string]map[int]*relset
	nonTemporal map[string]*relset
	count       int
	// cards holds the per-predicate cardinality counters (see predCard).
	cards map[string]*predCard
	// keys caches StateKey per time point; an insert at time t drops the
	// entry for t. Incremental maintenance re-certifies the period after a
	// delta, and the cache confines the rehash to the states the delta
	// actually touched.
	keys map[int]string
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		temporal:    make(map[string]map[int]*relset),
		nonTemporal: make(map[string]*relset),
		cards:       make(map[string]*predCard),
	}
}

// Clone returns an independent copy of the store: inserts into the clone
// are invisible to the original and vice versa. The copy is
// copy-on-write at shard (predicate×timestamp) granularity: both stores
// share every relset until one of them writes into it, so a clone costs
// O(shards) pointer copies — independent of the number of facts — and a
// subsequent write deep-copies only the shards it touches. Clone must be
// externally serialized against writes to s (the evaluator's single-
// writer discipline); afterwards the two stores may be written from
// different goroutines.
func (s *Store) Clone() *Store {
	c := &Store{
		temporal:    make(map[string]map[int]*relset, len(s.temporal)),
		nonTemporal: make(map[string]*relset, len(s.nonTemporal)),
		count:       s.count,
		cards:       make(map[string]*predCard, len(s.cards)),
	}
	for pred, byTime := range s.temporal {
		bt := make(map[int]*relset, len(byTime))
		for t, rs := range byTime {
			rs.shared = true
			bt[t] = rs
		}
		c.temporal[pred] = bt
	}
	for pred, rs := range s.nonTemporal {
		rs.shared = true
		c.nonTemporal[pred] = rs
	}
	for pred, pc := range s.cards {
		cp := *pc
		c.cards[pred] = &cp
	}
	if s.keys != nil {
		c.keys = make(map[int]string, len(s.keys))
		for t, k := range s.keys {
			c.keys[t] = k
		}
	}
	return c
}

// Insert adds a fact, reporting whether it was new. Inserting into a
// shard shared with a clone first materializes a private copy
// (copy-on-write); duplicate inserts never copy.
func (s *Store) Insert(f ast.Fact) bool {
	var added bool
	if f.Temporal {
		byTime, ok := s.temporal[f.Pred]
		if !ok {
			byTime = make(map[int]*relset)
			s.temporal[f.Pred] = byTime
		}
		rs, ok := byTime[f.Time]
		switch {
		case !ok:
			rs = newRelset()
			byTime[f.Time] = rs
			s.cardFor(f.Pred, true).states++
		case rs.shared:
			if rs.has(f.Args) {
				return false
			}
			rs = rs.materialize()
			byTime[f.Time] = rs
		}
		added = rs.insert(f.Args)
		if added {
			delete(s.keys, f.Time)
		}
	} else {
		rs, ok := s.nonTemporal[f.Pred]
		switch {
		case !ok:
			rs = newRelset()
			s.nonTemporal[f.Pred] = rs
		case rs.shared:
			if rs.has(f.Args) {
				return false
			}
			rs = rs.materialize()
			s.nonTemporal[f.Pred] = rs
		}
		added = rs.insert(f.Args)
	}
	if added {
		s.count++
		s.cardFor(f.Pred, f.Temporal).facts++
	}
	return added
}

// cardFor returns (allocating on first touch) the predicate's counter.
func (s *Store) cardFor(pred string, temporal bool) *predCard {
	pc := s.cards[pred]
	if pc == nil {
		pc = &predCard{temporal: temporal}
		s.cards[pred] = pc
	}
	return pc
}

// card returns the predicate's incremental cardinality summary: total
// facts and, for temporal predicates, occupied time points. Zero values
// for unknown predicates.
func (s *Store) card(pred string) (facts, states int) {
	if pc := s.cards[pred]; pc != nil {
		return pc.facts, pc.states
	}
	return 0, 0
}

// Has reports whether the fact is present.
func (s *Store) Has(f ast.Fact) bool {
	if f.Temporal {
		return s.temporal[f.Pred][f.Time].has(f.Args)
	}
	return s.nonTemporal[f.Pred].has(f.Args)
}

// Len returns the total number of stored facts.
func (s *Store) Len() int { return s.count }

// at returns the temporal relation of pred at time t (nil if empty).
func (s *Store) at(pred string, t int) *relset { return s.temporal[pred][t] }

// nt returns the non-temporal relation of pred (nil if empty).
func (s *Store) nt(pred string) *relset { return s.nonTemporal[pred] }

// StateSize returns the number of temporal tuples at time t.
func (s *Store) StateSize(t int) int {
	n := 0
	for _, byTime := range s.temporal {
		n += byTime[t].size()
	}
	return n
}

// StateKey returns a canonical representation of the state L[t]: the set of
// atoms P(x̄) with P(t, x̄) in the store, rendered deterministically. Two
// time points have equal states iff their StateKeys are equal. Keys are
// cached per time point; inserts at t invalidate the entry for t.
func (s *Store) StateKey(t int) string {
	if k, ok := s.keys[t]; ok {
		return k
	}
	k := s.stateKey(t)
	if s.keys == nil {
		s.keys = make(map[int]string)
	}
	s.keys[t] = k
	return k
}

func (s *Store) stateKey(t int) string {
	var lines []string
	for pred, byTime := range s.temporal {
		rs := byTime[t]
		if rs == nil {
			continue
		}
		for k := range rs.m {
			lines = append(lines, pred+"\x01"+k)
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\x02")
}

// StateHash returns a 64-bit fingerprint of StateKey(t). Period detection
// compares hashes first and confirms candidate matches with full keys.
func (s *Store) StateHash(t int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s.StateKey(t)))
	return h.Sum64()
}

// State returns the state L[t] as sorted facts with the temporal argument
// projected out (the paper's M[t]).
func (s *Store) State(t int) []ast.Fact {
	var out []ast.Fact
	for pred, byTime := range s.temporal {
		rs := byTime[t]
		if rs == nil {
			continue
		}
		for _, tup := range rs.list {
			out = append(out, ast.Fact{Pred: pred, Args: append([]string(nil), tup...)})
		}
	}
	ast.SortFacts(out)
	return out
}

// Snapshot returns the snapshot L(t) as sorted temporal facts (the paper's
// M(t): tuples with their temporal argument).
func (s *Store) Snapshot(t int) []ast.Fact {
	var out []ast.Fact
	for pred, byTime := range s.temporal {
		rs := byTime[t]
		if rs == nil {
			continue
		}
		for _, tup := range rs.list {
			out = append(out, ast.Fact{Pred: pred, Temporal: true, Time: t, Args: append([]string(nil), tup...)})
		}
	}
	ast.SortFacts(out)
	return out
}

// NonTemporalFacts returns the non-temporal part L_nt as sorted facts.
func (s *Store) NonTemporalFacts() []ast.Fact {
	var out []ast.Fact
	for pred, rs := range s.nonTemporal {
		for _, tup := range rs.list {
			out = append(out, ast.Fact{Pred: pred, Args: append([]string(nil), tup...)})
		}
	}
	ast.SortFacts(out)
	return out
}

// NonTemporalCount returns |L_nt|.
func (s *Store) NonTemporalCount() int {
	n := 0
	for _, rs := range s.nonTemporal {
		n += rs.size()
	}
	return n
}

// Constants returns all non-temporal constants occurring in the store,
// sorted. This is the active domain used for non-temporal quantification.
func (s *Store) Constants() []string {
	set := make(map[string]bool)
	add := func(tup []string) bool {
		for _, c := range tup {
			set[c] = true
		}
		return true
	}
	for _, rs := range s.nonTemporal {
		rs.all(add)
	}
	for _, byTime := range s.temporal {
		for _, rs := range byTime {
			rs.all(add)
		}
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
