package engine

import (
	"fmt"
	"sync"
	"testing"

	"tdd/internal/ast"
)

const planSrc = `
h(T, X, Y) :- big(X, Y), small(X), p(T, Y).
p(T+1, Y) :- p(T, X), big(X, Y).
nt(X) :- small(X), big(X, Y).
p(0, a0).
small(a0).
big(a0, a1).
big(a0, a2).
big(a1, a0).
big(a2, a1).
big(a3, a3).
`

// Join-order determinism (satellite of the indexed-join tentpole): the
// planner's choices are a pure function of the compiled rules and the
// store's cardinality snapshot. Twenty independent builds of the same
// program over the same database must produce identical plans.
func TestPlanFingerprintStableAcrossRuns(t *testing.T) {
	want := ""
	for i := 0; i < 20; i++ {
		e := mustEval(t, planSrc)
		e.EnsureWindow(8)
		fp := e.PlanFingerprint()
		if i == 0 {
			want = fp
			continue
		}
		if fp != want {
			t.Fatalf("run %d: plan fingerprint %s != first run %s\nplans:\n%s", i, fp, want, e.PlanText())
		}
	}
}

// The fingerprint is also invariant across clone lineage and worker
// counts: all of them see the same store content, hence the same
// cardinality snapshot, hence the same plans.
func TestPlanFingerprintPureFunctionOfCardinalities(t *testing.T) {
	e := mustEval(t, planSrc)
	e.EnsureWindow(8)
	fp := e.PlanFingerprint()
	if got := e.Clone().PlanFingerprint(); got != fp {
		t.Fatalf("clone plans %s != parent %s", got, fp)
	}
	for _, par := range []int{1, 2, 8} {
		p := mustEval(t, planSrc)
		p.SetParallelism(par)
		p.EnsureWindow(8)
		if got := p.PlanFingerprint(); got != fp {
			t.Fatalf("par=%d plans %s != sequential %s", par, got, fp)
		}
	}
	// Re-fingerprinting the parent after a clone diverged must not move.
	c := e.Clone()
	for i := 0; i < 200; i++ {
		f := ntfact("big", fmt.Sprintf("x%d", i), "a0")
		if _, err := c.InsertBase(f); err != nil {
			t.Fatal(err)
		}
	}
	c.PropagateDelta(nil)
	if got := e.PlanFingerprint(); got != fp {
		t.Fatalf("parent plans drifted to %s after clone ingested (was %s)", got, fp)
	}
}

// The greedy planner must start a body with the most selective literal:
// with small ⊂ big, the rule nt(X) :- small(X), big(X, Y) keeps source
// order, while a body written big-first is reordered to probe big
// through its bound first column instead of scanning it.
func TestPlannerOrdersBySelectivity(t *testing.T) {
	e := mustEval(t, `
nt(X) :- big(X, Y), small(X).
small(a0).
big(a0, a1).
big(a1, a2).
big(a2, a0).
big(a3, a1).
big(a4, a2).
big(a5, a0).
`)
	e.EnsureWindow(0)
	e.planJoins()
	steps := e.plans[0].steps
	if len(steps) != 2 {
		t.Fatalf("plan has %d steps, want 2", len(steps))
	}
	if e.rules[0].body[steps[0].lit].Pred != "small" {
		t.Fatalf("planner scans big before small:\n%s", e.PlanText())
	}
	if steps[1].mask == 0 {
		t.Fatalf("big should be probed through its bound column:\n%s", e.PlanText())
	}
	// The nested-loop mode preserves source order by construction.
	e.SetJoinMode(JoinNestedLoop)
	e.planJoins()
	if got := e.rules[0].body[e.plans[0].steps[0].lit].Pred; got != "big" {
		t.Fatalf("nested-loop mode reordered the body: first literal %s, want big", got)
	}
}

// Regression (satellite fix): Stats.Clone must deep-copy the
// per-predicate index-hit counters. The join hot path writes them
// through pointers cached in the plan steps, so an aliased cell would be
// shared between an evaluator and its clones — two clones ingesting
// concurrently would race on it (this test runs under -race in CI) and
// corrupt each other's counts.
func TestCloneDoesNotAliasIndexCounters(t *testing.T) {
	e := mustEval(t, planSrc)
	e.EnsureWindow(8)
	before := e.Stats()
	if len(before.Index) == 0 {
		t.Fatal("evaluation should have populated Stats.Index")
	}
	clones := []*Evaluator{e.Clone(), e.Clone()}
	var wg sync.WaitGroup
	for gi, c := range clones {
		wg.Add(1)
		go func(gi int, c *Evaluator) {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				f := ntfact("big", fmt.Sprintf("g%d-%d", gi, k), "a0")
				ok, err := c.InsertBase(f)
				if err != nil || !ok {
					t.Errorf("goroutine %d: InsertBase = %v, %v", gi, ok, err)
					return
				}
				c.PropagateDelta([]ast.Fact{f})
			}
		}(gi, c)
	}
	wg.Wait()
	// The parent's counters must not have moved while its clones worked.
	after := e.Stats()
	for pred, cell := range before.Index {
		if got := after.Index[pred]; got == nil || *got != *cell {
			t.Fatalf("parent counter for %s moved from %+v to %+v while clones ingested", pred, cell, after.Index[pred])
		}
	}
	// And a snapshot must not alias the live counters either.
	snap := e.Stats()
	f := ntfact("big", "postsnap", "a0")
	if ok, err := e.InsertBase(f); err != nil || !ok {
		t.Fatalf("InsertBase = %v, %v", ok, err)
	}
	e.PropagateDelta([]ast.Fact{f})
	for pred, cell := range snap.Index {
		live := e.stats.Index[pred]
		if cell == live {
			t.Fatalf("snapshot aliases the live counter cell for %s", pred)
		}
	}
	// The clones did do counted work (their own cells moved).
	for gi, c := range clones {
		moved := false
		for pred, cell := range c.Stats().Index {
			if b := before.Index[pred]; b == nil || *cell != *b {
				moved = true
			}
		}
		if !moved {
			t.Fatalf("clone %d ingested 50 facts but its index counters never moved", gi)
		}
	}
}

// The nested-loop mode must reproduce the historical engine exactly:
// identical Firings and per-rule attribution on a program whose indexed
// plan differs (cf. the four-way battery in internal/randgen, which
// checks the schedule-invariant subset on random programs).
func TestNestedLoopModeMatchesIndexedModel(t *testing.T) {
	a := mustEval(t, planSrc)
	b := mustEval(t, planSrc)
	b.SetJoinMode(JoinNestedLoop)
	a.EnsureWindow(12)
	b.EnsureWindow(12)
	if a.Store().Len() != b.Store().Len() || a.Stats().Derived != b.Stats().Derived {
		t.Fatalf("modes disagree: indexed %d facts (%d derived), nested %d facts (%d derived)",
			a.Store().Len(), a.Stats().Derived, b.Store().Len(), b.Stats().Derived)
	}
	for tm := 0; tm <= 12; tm++ {
		if a.Store().StateKey(tm) != b.Store().StateKey(tm) {
			t.Fatalf("modes disagree at t=%d", tm)
		}
	}
}
