package engine

import (
	"strings"
	"testing"

	"tdd/internal/parser"
)

func provEval(t *testing.T, src string) *Evaluator {
	t.Helper()
	prog, db, err := parser.ParseUnit(src)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.EnableProvenance(); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestExplainEven(t *testing.T) {
	e := provEval(t, "even(T+2) :- even(T).\neven(0).")
	e.EnsureWindow(6)
	out, err := e.Explain(tfact("even", 4), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"even(4)   [by even(T+2) :- even(T). with T=2]",
		"even(2)",
		"even(0)   [database fact]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// The tree nests: even(0) is indented deeper than even(4).
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[2], "    ") {
		t.Errorf("tree shape off:\n%s", out)
	}
}

func TestExplainJoin(t *testing.T) {
	e := provEval(t, `
path(K, X, X) :- node(X), null(K).
path(K+1, X, Z) :- edge(X, Y), path(K, Y, Z).
null(0).
node(b).
edge(a, b).
`)
	e.EnsureWindow(2)
	out, err := e.Explain(tfact("path", 1, "a", "b"), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"edge(a, b)   [database fact]", "path(0, b, b)", "node(b)   [database fact]"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestExplainDepthCap(t *testing.T) {
	e := provEval(t, "p(T+1) :- p(T).\np(0).")
	e.EnsureWindow(30)
	out, err := e.Explain(tfact("p", 30), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "...") {
		t.Errorf("depth cap not rendered:\n%s", out)
	}
	if strings.Count(out, "\n") > 10 {
		t.Errorf("depth cap ignored:\n%s", out)
	}
}

func TestExplainErrors(t *testing.T) {
	e := provEval(t, "even(T+2) :- even(T).\neven(0).")
	e.EnsureWindow(4)
	if _, err := e.Explain(tfact("even", 3), 0); err == nil {
		t.Error("explained a fact that does not hold")
	}
	// Provenance not enabled.
	prog, db, err := parser.ParseUnit("even(T+2) :- even(T).\neven(0).")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := New(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	plain.EnsureWindow(4)
	if _, err := plain.Explain(tfact("even", 4), 0); err == nil {
		t.Error("Explain worked without provenance")
	}
	if err := plain.EnableProvenance(); err == nil {
		t.Error("EnableProvenance allowed after evaluation")
	}
	if d := plain.Derivation(tfact("even", 4)); d != nil {
		t.Error("Derivation without provenance")
	}
}

func TestDerivationRecordsBody(t *testing.T) {
	e := provEval(t, "even(T+2) :- even(T).\neven(0).")
	e.EnsureWindow(4)
	d := e.Derivation(tfact("even", 2))
	if d == nil {
		t.Fatal("no derivation for even(2)")
	}
	if d.Time != 0 || len(d.Body) != 1 || d.Body[0].Time != 0 {
		t.Errorf("derivation = %+v", d)
	}
	if e.Derivation(tfact("even", 0)) != nil {
		t.Error("database fact has a derivation")
	}
}
