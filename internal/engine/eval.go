package engine

import (
	"fmt"

	"tdd/internal/ast"
	"tdd/internal/obs"
)

// RuleStat is the per-rule slice of the work counters: how often one rule
// fired (successful body instantiations) and how many new facts it
// derived. The slice order matches the program's rule order.
type RuleStat struct {
	Rule    string `json:"rule"`
	Firings int    `json:"firings"`
	Derived int    `json:"derived"`
}

// Stats accumulates work counters for experiments, tests, and telemetry.
// The aggregate counters (Derived, Firings, Sweeps) are the historical
// core; the per-rule, per-sweep, per-timestamp extensions feed the
// tracing layer (?trace=1 firing tables, tddstream :stats) without any
// package-local side channel.
type Stats struct {
	// Derived counts facts added beyond the database.
	Derived int
	// Firings counts successful rule-body instantiations (including those
	// that rederive an existing fact).
	Firings int
	// Sweeps counts full passes over the window (the outer fixpoint driven
	// by derived non-temporal facts re-sweeps).
	Sweeps int
	// Rules holds per-rule firing and derivation counts, parallel to the
	// program's rule order.
	Rules []RuleStat
	// SweepSizes records the number of facts each full-window re-sweep
	// added, in sweep order (len(SweepSizes) == Sweeps).
	SweepSizes []int
	// DeltaByTime records, per timestamp, how many facts semi-naive delta
	// propagation (PropagateDelta) derived there; key -1 collects derived
	// non-temporal facts.
	DeltaByTime map[int]int
	// StoreGrowth records the total store size after each window
	// extension (EnsureWindow call that did work), oldest first.
	StoreGrowth []int
}

// Clone deep-copies the stats so a snapshot does not alias the
// evaluator's live counters.
func (s Stats) Clone() Stats {
	c := s
	c.Rules = append([]RuleStat(nil), s.Rules...)
	c.SweepSizes = append([]int(nil), s.SweepSizes...)
	c.StoreGrowth = append([]int(nil), s.StoreGrowth...)
	if s.DeltaByTime != nil {
		c.DeltaByTime = make(map[int]int, len(s.DeltaByTime))
		for k, v := range s.DeltaByTime {
			c.DeltaByTime[k] = v
		}
	}
	return c
}

// crule is a compiled (shift-normalized) rule.
type crule struct {
	src          ast.Rule
	head         ast.Atom
	body         []ast.Atom
	idx          int    // position in the program's rule order (per-rule stats)
	timeVar      string // "" if the rule has no temporal variable
	headDepth    int    // temporal head depth after shifting; -1 if head non-temporal
	maxBodyDepth int    // max temporal body depth after shifting; -1 if none
	// sameOnly marks a temporal rule whose every body literal is temporal,
	// non-ground, and at the head's own depth: it reads nothing but the
	// state it writes. The parallel schedule runs such rules only on a
	// state's first closure — no other task can ever feed them.
	sameOnly bool
	// samePreds lists the predicates of the body literals at the head's
	// own depth. A local-fixpoint iteration can only enable this rule
	// through one of them, so later iterations skip the rule unless the
	// previous iteration added a matching predicate (semi-naive).
	samePreds []string
}

// Evaluator computes the least model of prog ∧ db restricted to a growing
// temporal window.
type Evaluator struct {
	prog  *ast.Program
	db    *ast.Database
	store *Store
	rules []crule
	// evaluated is the largest time point the window has been closed to;
	// -1 before the first EnsureWindow.
	evaluated int
	stats     Stats
	// prov, when non-nil, records the first derivation of every derived
	// fact (see provenance.go).
	prov map[string]*Derivation
	// occ indexes rules by body predicate for semi-naive delta
	// propagation; built lazily by the first PropagateDelta (delta.go).
	occ map[string][]occurrence
	// baseSet is the set of database facts (by factKey), built lazily by
	// the first InsertBase so duplicate base asserts are detected against
	// the database rather than the derived store (delta.go).
	baseSet map[string]bool
	// tr, when non-nil, receives fixpoint/sweep/delta spans; nil tracing
	// costs one pointer comparison per EnsureWindow/PropagateDelta call.
	tr *obs.Trace
	// prof, when non-nil, receives per-(rule, body-literal) scan/match
	// counters and per-rule join wall time (profile.go); nil profiling
	// costs one nil check per hook site.
	prof *Profile
	// par selects the evaluation schedule: 0 is the classic sequential
	// sweep above; n >= 1 is the deterministic parallel schedule of
	// parallel.go with at most n workers. See SetParallelism.
	par int
	// maxHead is the maximum temporal head depth over all rules (0 when
	// every temporal head is at depth 0 or there are none). The parallel
	// schedule uses it to bound which states a merged fact can affect.
	maxHead int
}

// New compiles and validates a program/database pair. The program must be
// range-restricted, semi-normal, and forward; see ast.ValidateProgram.
func New(prog *ast.Program, db *ast.Database) (*Evaluator, error) {
	if err := ast.ValidateProgram(prog); err != nil {
		return nil, err
	}
	if err := db.CheckAgainst(prog); err != nil {
		return nil, err
	}
	e := &Evaluator{prog: prog, db: db, store: NewStore(), evaluated: -1}
	for _, r := range prog.Rules {
		// Rules are compiled with their ORIGINAL depths. Shifting all
		// depths down by the rule's minimum is not a semantic equivalence:
		// the temporal variable ranges over 0,1,2,..., so
		// p(T+3) :- q(T+1) has no instance deriving p(2) — the shifted
		// rule p(T+2) :- q(T) does. The head depth below doubles as the
		// rule's enabling time: the rule contributes to states t with
		// t - headDepth >= 0 only.
		s := r.Clone()
		c := crule{src: r, head: s.Head, body: s.Body, idx: len(e.rules), headDepth: -1, maxBodyDepth: -1}
		if tv := s.TemporalVars(); len(tv) == 1 {
			c.timeVar = tv[0]
		}
		if s.Head.Time != nil {
			c.headDepth = s.Head.Time.Depth
		}
		c.sameOnly = c.headDepth >= 0
		for _, a := range s.Body {
			if a.Time != nil && !a.Time.Ground() && a.Time.Depth > c.maxBodyDepth {
				c.maxBodyDepth = a.Time.Depth
			}
			if a.Time == nil || a.Time.Ground() || a.Time.Depth != c.headDepth {
				c.sameOnly = false
			} else {
				c.samePreds = append(c.samePreds, a.Pred)
			}
		}
		if c.headDepth > e.maxHead {
			e.maxHead = c.headDepth
		}
		e.rules = append(e.rules, c)
	}
	e.stats.Rules = make([]RuleStat, len(e.rules))
	for i := range e.rules {
		e.stats.Rules[i].Rule = e.rules[i].src.String()
	}
	for _, f := range db.Facts {
		e.store.Insert(f)
	}
	return e, nil
}

// Store exposes the fact store (read-only by convention).
func (e *Evaluator) Store() *Store { return e.store }

// Stats returns a snapshot of the accumulated work counters (the
// extension slices are deep-copied; the evaluator keeps counting).
func (e *Evaluator) Stats() Stats { return e.stats.Clone() }

// SetParallelism selects the evaluation schedule. n <= 0 (the default)
// is the classic sequential sweep. n >= 1 switches EnsureWindow and
// PropagateDelta to the deterministic round-based parallel schedule
// (parallel.go) with at most n worker goroutines. The parallel schedule
// computes the same least model, but visits instantiations in its own
// (round-structured) order, so work counters (Firings, Sweeps,
// SweepSizes) are comparable only between parallel runs: they are
// bit-identical for every n >= 1 and across repeated runs, independent
// of worker count and goroutine scheduling. Callers set parallelism
// before evaluation starts; the engine never locks around it.
func (e *Evaluator) SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	e.par = n
}

// Parallelism returns the configured worker bound (0 = sequential).
func (e *Evaluator) Parallelism() int { return e.par }

// SetTrace attaches (or, with nil, detaches) a trace: EnsureWindow and
// PropagateDelta record fixpoint/sweep/delta spans into it. Callers
// attach before evaluation starts; the engine never locks around it.
func (e *Evaluator) SetTrace(tr *obs.Trace) { e.tr = tr }

// Trace returns the attached trace (nil when tracing is disabled).
func (e *Evaluator) Trace() *obs.Trace { return e.tr }

// Database returns the database the evaluator was built with.
func (e *Evaluator) Database() *ast.Database { return e.db }

// Program returns the program the evaluator was built with.
func (e *Evaluator) Program() *ast.Program { return e.prog }

// Window returns the largest time point the model is closed to (-1 before
// the first EnsureWindow call).
func (e *Evaluator) Window() int { return e.evaluated }

// EnsureWindow extends the evaluated window to cover 0..m. It is
// incremental: previously closed states are reused, except that newly
// derived non-temporal facts trigger a re-sweep of the whole window (the
// outer fixpoint of algorithm BT's "until L_nt = L'_nt" condition).
func (e *Evaluator) EnsureWindow(m int) {
	if m <= e.evaluated {
		return
	}
	if e.par > 0 {
		e.ensureWindowParallel(m)
		return
	}
	e.prof.lock()
	defer e.prof.unlock()
	sp := e.tr.Begin("fixpoint")
	from := e.evaluated
	f0, d0, s0 := e.stats.Firings, e.stats.Derived, e.stats.Sweeps
	ext := e.tr.Begin("extend")
	for t := e.evaluated + 1; t <= m; t++ {
		e.evalState(t, m)
	}
	e.evaluated = m
	ext.Add("states", int64(m-from))
	ext.Add("derived", int64(e.stats.Derived-d0))
	ext.End()
	// Outer fixpoint: close non-temporal consequences, re-sweeping the
	// temporal window until nothing changes.
	for {
		nt := e.evalNonTemporalRules(m)
		if nt == 0 {
			break
		}
		for {
			added := 0
			e.stats.Sweeps++
			ssp := e.tr.Begin("sweep")
			sf0 := e.stats.Firings
			for t := 0; t <= m; t++ {
				added += e.evalState(t, m)
			}
			e.stats.SweepSizes = append(e.stats.SweepSizes, added)
			ssp.Add("added", int64(added))
			ssp.Add("firings", int64(e.stats.Firings-sf0))
			ssp.End()
			if added == 0 {
				break
			}
		}
	}
	e.stats.StoreGrowth = append(e.stats.StoreGrowth, e.store.Len())
	sp.Add("window", int64(m))
	sp.Add("firings", int64(e.stats.Firings-f0))
	sp.Add("derived", int64(e.stats.Derived-d0))
	sp.Add("sweeps", int64(e.stats.Sweeps-s0))
	sp.Add("store_len", int64(e.store.Len()))
	sp.End()
}

// Holds reports whether the fact is in the least model. The window must
// already cover the fact's time (callers use EnsureWindow or algorithm BT).
func (e *Evaluator) Holds(f ast.Fact) bool { return e.store.Has(f) }

// evalState closes state t: a local fixpoint over the rules whose head
// lands at time t. Returns the number of new facts.
func (e *Evaluator) evalState(t, m int) int {
	added := 0
	first := true
	for {
		n := 0
		for i := range e.rules {
			r := &e.rules[i]
			if r.headDepth < 0 {
				continue // non-temporal heads handled separately
			}
			// After the first round only rules that can consume facts of
			// state t itself (a body literal at the head's depth) can fire
			// anew.
			if !first && r.maxBodyDepth < r.headDepth {
				continue
			}
			T := t - r.headDepth
			if T < 0 {
				continue
			}
			n += e.fireRule(r, T)
		}
		added += n
		first = false
		if n == 0 {
			return added
		}
	}
}

// evalNonTemporalRules evaluates every rule with a non-temporal head over
// the window 0..m, returning the number of new facts.
func (e *Evaluator) evalNonTemporalRules(m int) int {
	added := 0
	for {
		n := 0
		for i := range e.rules {
			r := &e.rules[i]
			if r.headDepth >= 0 {
				continue
			}
			if r.timeVar == "" {
				n += e.fireRule(r, 0)
				continue
			}
			for T := 0; T+r.maxBodyDepth <= m; T++ {
				n += e.fireRule(r, T)
			}
		}
		added += n
		if n == 0 {
			return added
		}
	}
}

// env is a mutable binding environment with an undo trail.
type env struct {
	time  int // binding of the rule's temporal variable
	vals  map[string]string
	trail []string
}

// fireRule instantiates rule r with its temporal variable bound to T (T is
// ignored for rules without one) and inserts all derivable head facts.
// Returns the number of new facts.
func (e *Evaluator) fireRule(r *crule, T int) int {
	en := env{time: T, vals: make(map[string]string, 8)}
	added := 0
	if e.prof == nil {
		e.join(r, 0, &en, &added)
		return added
	}
	start := obs.ClockNS()
	e.join(r, 0, &en, &added)
	c := e.prof.buf.rec(r).ruleCell(stratumOf(T))
	c.calls++
	c.ns += obs.ClockNS() - start
	return added
}

// join matches body literals from index i onward, and on a complete match
// emits the head.
func (e *Evaluator) join(r *crule, i int, en *env, added *int) {
	if i == len(r.body) {
		if _, ok := e.emit(r, en); ok {
			*added++
		}
		return
	}
	a := r.body[i]
	var rs *relset
	if a.Time != nil {
		rs = e.store.at(a.Pred, en.time+a.Time.Depth)
	} else {
		rs = e.store.nt(a.Pred)
	}
	if rs == nil {
		return
	}
	var lc *litCell
	if e.prof != nil {
		lc = e.prof.buf.rec(r).litCell(i, stratumOf(en.time))
	}
	visit := func(tup []string) bool {
		if lc != nil {
			lc.scanned++
		}
		mark := len(en.trail)
		if e.matchArgs(a.Args, tup, en) {
			if lc != nil {
				lc.matched++
			}
			e.join(r, i+1, en, added)
		}
		en.undo(mark)
		return true
	}
	// Use the first-column index when the first argument is already
	// determined.
	if len(a.Args) > 0 {
		first := a.Args[0]
		if !first.IsVar {
			rs.withFirst(first.Name, visit)
			return
		}
		if v, ok := en.vals[first.Name]; ok {
			rs.withFirst(v, visit)
			return
		}
	}
	rs.all(visit)
}

// emit fires rule r under the complete binding en: it instantiates the
// head and inserts it, maintaining the work counters and (when enabled)
// provenance. It reports the head fact and whether it was new.
func (e *Evaluator) emit(r *crule, en *env) (ast.Fact, bool) {
	e.stats.Firings++
	e.stats.Rules[r.idx].Firings++
	f := e.instantiate(r.head, en)
	if !e.store.Insert(f) {
		return f, false
	}
	e.stats.Derived++
	e.stats.Rules[r.idx].Derived++
	if e.prov != nil {
		body := make([]ast.Fact, len(r.body))
		for j, a := range r.body {
			body[j] = e.instantiate(a, en)
		}
		e.prov[factKey(f)] = &Derivation{Rule: r.src, Time: en.time, Body: body}
	}
	return f, true
}

// matchArgs unifies the pattern against the tuple, extending en (recording
// new bindings on the trail). Returns false on mismatch; the caller undoes
// to its mark either way.
func (e *Evaluator) matchArgs(args []ast.Symbol, tup []string, en *env) bool {
	if len(args) != len(tup) {
		return false
	}
	for i, s := range args {
		if !s.IsVar {
			if s.Name != tup[i] {
				return false
			}
			continue
		}
		if v, ok := en.vals[s.Name]; ok {
			if v != tup[i] {
				return false
			}
			continue
		}
		en.vals[s.Name] = tup[i]
		en.trail = append(en.trail, s.Name)
	}
	return true
}

func (en *env) undo(mark int) {
	for len(en.trail) > mark {
		name := en.trail[len(en.trail)-1]
		en.trail = en.trail[:len(en.trail)-1]
		delete(en.vals, name)
	}
}

// instantiate builds the ground head fact under en. The rule is
// range-restricted, so every head variable is bound.
func (e *Evaluator) instantiate(head ast.Atom, en *env) ast.Fact {
	f := ast.Fact{Pred: head.Pred}
	if head.Time != nil {
		f.Temporal = true
		f.Time = en.time + head.Time.Depth
	}
	f.Args = make([]string, len(head.Args))
	for i, s := range head.Args {
		if s.IsVar {
			v, ok := en.vals[s.Name]
			if !ok {
				panic(fmt.Sprintf("engine: unbound head variable %s in %s", s.Name, head))
			}
			f.Args[i] = v
			continue
		}
		f.Args[i] = s.Name
	}
	return f
}
