package engine

import (
	"fmt"

	"tdd/internal/ast"
	"tdd/internal/obs"
	"tdd/internal/progan"
)

// RuleStat is the per-rule slice of the work counters: how often one rule
// fired (successful body instantiations) and how many new facts it
// derived. The slice order matches the program's rule order.
type RuleStat struct {
	Rule    string `json:"rule"`
	Firings int    `json:"firings"`
	Derived int    `json:"derived"`
}

// Stats accumulates work counters for experiments, tests, and telemetry.
// The aggregate counters (Derived, Firings, Sweeps) are the historical
// core; the per-rule, per-sweep, per-timestamp extensions feed the
// tracing layer (?trace=1 firing tables, tddstream :stats) without any
// package-local side channel.
type Stats struct {
	// Derived counts facts added beyond the database.
	Derived int
	// Firings counts successful rule-body instantiations (including those
	// that rederive an existing fact).
	Firings int
	// Sweeps counts full passes over the window (the outer fixpoint driven
	// by derived non-temporal facts re-sweeps).
	Sweeps int
	// Rules holds per-rule firing and derivation counts, parallel to the
	// program's rule order.
	Rules []RuleStat
	// SweepSizes records the number of facts each full-window re-sweep
	// added, in sweep order (len(SweepSizes) == Sweeps).
	SweepSizes []int
	// DeltaByTime records, per timestamp, how many facts semi-naive delta
	// propagation (PropagateDelta) derived there; key -1 collects derived
	// non-temporal facts.
	DeltaByTime map[int]int
	// StoreGrowth records the total store size after each window
	// extension (EnsureWindow call that did work), oldest first.
	StoreGrowth []int
	// Index counts join-side relation accesses per body predicate: index
	// bucket probes vs full scans (see IndexStat, plan.go). Like every
	// other counter it is bit-identical across worker counts.
	Index map[string]*IndexStat
}

// Clone deep-copies the stats so a snapshot does not alias the
// evaluator's live counters. The Index cells in particular are written
// through cached pointers on the join hot path, so sharing them between
// an evaluator and its clone (or a snapshot) would corrupt both under
// concurrent ingestion.
func (s Stats) Clone() Stats {
	c := s
	c.Rules = append([]RuleStat(nil), s.Rules...)
	c.SweepSizes = append([]int(nil), s.SweepSizes...)
	c.StoreGrowth = append([]int(nil), s.StoreGrowth...)
	if s.DeltaByTime != nil {
		c.DeltaByTime = make(map[int]int, len(s.DeltaByTime))
		for k, v := range s.DeltaByTime {
			c.DeltaByTime[k] = v
		}
	}
	if s.Index != nil {
		c.Index = make(map[string]*IndexStat, len(s.Index))
		for k, v := range s.Index {
			cv := *v
			c.Index[k] = &cv
		}
	}
	return c
}

// carg is one compiled argument position: a slot number for a variable,
// or slot -1 with the literal text for a constant. Slots are per-rule,
// assigned in order of first appearance across the body then the head.
type carg struct {
	slot int
	name string
}

// crule is a compiled (shift-normalized) rule.
type crule struct {
	src          ast.Rule
	head         ast.Atom
	body         []ast.Atom
	idx          int    // position in the program's rule order (per-rule stats)
	timeVar      string // "" if the rule has no temporal variable
	headDepth    int    // temporal head depth after shifting; -1 if head non-temporal
	maxBodyDepth int    // max temporal body depth after shifting; -1 if none
	// sameOnly marks a temporal rule whose every body literal is temporal,
	// non-ground, and at the head's own depth: it reads nothing but the
	// state it writes. The parallel schedule runs such rules only on a
	// state's first closure — no other task can ever feed them.
	sameOnly bool
	// samePreds lists the predicates of the body literals at the head's
	// own depth. A local-fixpoint iteration can only enable this rule
	// through one of them, so later iterations skip the rule unless the
	// previous iteration added a matching predicate (semi-naive).
	samePreds []string
	// nslots is the rule's variable-slot count; headC/bodyC are the
	// slot-compiled argument lists (parallel to head.Args / body[i].Args).
	nslots int
	headC  []carg
	bodyC  [][]carg
}

// Evaluator computes the least model of prog ∧ db restricted to a growing
// temporal window.
type Evaluator struct {
	prog  *ast.Program
	db    *ast.Database
	store *Store
	rules []crule
	// evaluated is the largest time point the window has been closed to;
	// -1 before the first EnsureWindow.
	evaluated int
	stats     Stats
	// prov, when non-nil, records the first derivation of every derived
	// fact (see provenance.go).
	prov map[string]*Derivation
	// occ indexes rules by body predicate for semi-naive delta
	// propagation; built lazily by the first PropagateDelta (delta.go).
	occ map[string][]occurrence
	// baseSet is the set of database facts (by factKey), built lazily by
	// the first InsertBase so duplicate base asserts are detected against
	// the database rather than the derived store (delta.go).
	baseSet map[string]bool
	// tr, when non-nil, receives fixpoint/sweep/delta spans; nil tracing
	// costs one pointer comparison per EnsureWindow/PropagateDelta call.
	tr *obs.Trace
	// prof, when non-nil, receives per-(rule, body-literal) scan/match
	// counters and per-rule join wall time (profile.go); nil profiling
	// costs one nil check per hook site.
	prof *Profile
	// par selects the evaluation schedule: 0 is the classic sequential
	// sweep above; n >= 1 is the deterministic parallel schedule of
	// parallel.go with at most n workers. See SetParallelism.
	par int
	// maxHead is the maximum temporal head depth over all rules (0 when
	// every temporal head is at depth 0 or there are none). The parallel
	// schedule uses it to bound which states a merged fact can affect.
	maxHead int
	// mode selects the join strategy (plan.go); JoinIndexed by default.
	mode JoinMode
	// derived marks predicates appearing in some rule head: the planner
	// treats their empty relations as database-sized rather than free,
	// since they can grow within a fixpoint entry (plan.go).
	derived map[string]bool
	// bounds is the static bounds pass over (prog, db): per-predicate
	// frontier shifts for the parallel schedule, provable emptiness, and
	// cold-relation support seeds for the planner. Recomputed by planJoins
	// whenever the database has grown (boundsFacts is the cache key — the
	// database is append-only). A pure function of the snapshot, so it is
	// identical across worker counts and clone lineages.
	bounds      *progan.Bounds
	boundsFacts int
	// plans/deltaPlans are the per-rule join orders, recomputed at every
	// fixpoint entry by planJoins; deltaPlans[i][pin] is rule i's plan
	// with body literal pin pre-bound. stepPreds/stepIndexed describe the
	// plans' global step ids for the parallel merge (plan.go).
	plans       []joinPlan
	deltaPlans  [][]joinPlan
	stepPreds   []string
	stepIndexed []bool
	// maxSlots sizes the scratch binding environment; en/headBuf/keyBuf
	// are reused across firings on the sequential path (the evaluator is
	// single-writer, so one scratch set suffices; parallel tasks carry
	// their own).
	maxSlots int
	en       env
	headBuf  []string
	keyBuf   []byte
}

// New compiles and validates a program/database pair. The program must be
// range-restricted, semi-normal, and forward; see ast.ValidateProgram.
func New(prog *ast.Program, db *ast.Database) (*Evaluator, error) {
	if err := ast.ValidateProgram(prog); err != nil {
		return nil, err
	}
	if err := db.CheckAgainst(prog); err != nil {
		return nil, err
	}
	e := &Evaluator{prog: prog, db: db, store: NewStore(), evaluated: -1}
	for _, r := range prog.Rules {
		// Rules are compiled with their ORIGINAL depths. Shifting all
		// depths down by the rule's minimum is not a semantic equivalence:
		// the temporal variable ranges over 0,1,2,..., so
		// p(T+3) :- q(T+1) has no instance deriving p(2) — the shifted
		// rule p(T+2) :- q(T) does. The head depth below doubles as the
		// rule's enabling time: the rule contributes to states t with
		// t - headDepth >= 0 only.
		s := r.Clone()
		c := crule{src: r, head: s.Head, body: s.Body, idx: len(e.rules), headDepth: -1, maxBodyDepth: -1}
		if tv := s.TemporalVars(); len(tv) == 1 {
			c.timeVar = tv[0]
		}
		if s.Head.Time != nil {
			c.headDepth = s.Head.Time.Depth
		}
		c.sameOnly = c.headDepth >= 0
		for _, a := range s.Body {
			if a.Time != nil && !a.Time.Ground() && a.Time.Depth > c.maxBodyDepth {
				c.maxBodyDepth = a.Time.Depth
			}
			if a.Time == nil || a.Time.Ground() || a.Time.Depth != c.headDepth {
				c.sameOnly = false
			} else {
				c.samePreds = append(c.samePreds, a.Pred)
			}
		}
		// Slot-compile the arguments: data variables become integer slots
		// in the binding environment (the temporal variable lives in
		// env.time and never appears as a data argument slot).
		slots := make(map[string]int)
		compile := func(args []ast.Symbol) []carg {
			out := make([]carg, len(args))
			for i, sym := range args {
				if !sym.IsVar {
					out[i] = carg{slot: -1, name: sym.Name}
					continue
				}
				sl, ok := slots[sym.Name]
				if !ok {
					sl = len(slots)
					slots[sym.Name] = sl
				}
				out[i] = carg{slot: sl}
			}
			return out
		}
		c.bodyC = make([][]carg, len(c.body))
		for i := range c.body {
			c.bodyC[i] = compile(c.body[i].Args)
		}
		c.headC = compile(c.head.Args)
		c.nslots = len(slots)
		if c.nslots > e.maxSlots {
			e.maxSlots = c.nslots
		}
		if c.headDepth > e.maxHead {
			e.maxHead = c.headDepth
		}
		e.rules = append(e.rules, c)
	}
	e.derived = make(map[string]bool, len(e.rules))
	for i := range e.rules {
		e.derived[e.rules[i].head.Pred] = true
	}
	e.stats.Rules = make([]RuleStat, len(e.rules))
	for i := range e.rules {
		e.stats.Rules[i].Rule = e.rules[i].src.String()
	}
	for _, f := range db.Facts {
		e.store.Insert(f)
	}
	return e, nil
}

// Store exposes the fact store (read-only by convention).
func (e *Evaluator) Store() *Store { return e.store }

// Stats returns a snapshot of the accumulated work counters (the
// extension slices and index cells are deep-copied; the evaluator keeps
// counting).
func (e *Evaluator) Stats() Stats { return e.stats.Clone() }

// SetParallelism selects the evaluation schedule. n <= 0 (the default)
// is the classic sequential sweep. n >= 1 switches EnsureWindow and
// PropagateDelta to the deterministic round-based parallel schedule
// (parallel.go) with at most n worker goroutines. The parallel schedule
// computes the same least model, but visits instantiations in its own
// (round-structured) order, so work counters (Firings, Sweeps,
// SweepSizes) are comparable only between parallel runs: they are
// bit-identical for every n >= 1 and across repeated runs, independent
// of worker count and goroutine scheduling. Callers set parallelism
// before evaluation starts; the engine never locks around it.
func (e *Evaluator) SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	e.par = n
}

// Parallelism returns the configured worker bound (0 = sequential).
func (e *Evaluator) Parallelism() int { return e.par }

// SetJoinMode selects the join strategy (see plan.go): JoinIndexed — the
// default — plans the body order and probes multi-column hash indexes;
// JoinNestedLoop is the historical source-order nested-loop engine, kept
// as a differential baseline. Both compute the same least model; work
// counters that depend on enumeration order (Firings, per-rule
// attribution, profiler scan counts) are comparable only within one
// mode. Callers set the mode before evaluation starts.
func (e *Evaluator) SetJoinMode(m JoinMode) { e.mode = m }

// JoinMode returns the configured join strategy.
func (e *Evaluator) JoinMode() JoinMode { return e.mode }

// SetTrace attaches (or, with nil, detaches) a trace: EnsureWindow and
// PropagateDelta record fixpoint/sweep/delta spans into it. Callers
// attach before evaluation starts; the engine never locks around it.
func (e *Evaluator) SetTrace(tr *obs.Trace) { e.tr = tr }

// Trace returns the attached trace (nil when tracing is disabled).
func (e *Evaluator) Trace() *obs.Trace { return e.tr }

// Database returns the database the evaluator was built with.
func (e *Evaluator) Database() *ast.Database { return e.db }

// Program returns the program the evaluator was built with.
func (e *Evaluator) Program() *ast.Program { return e.prog }

// Window returns the largest time point the model is closed to (-1 before
// the first EnsureWindow call).
func (e *Evaluator) Window() int { return e.evaluated }

// EnsureWindow extends the evaluated window to cover 0..m. It is
// incremental: previously closed states are reused, except that newly
// derived non-temporal facts trigger a re-sweep of the whole window (the
// outer fixpoint of algorithm BT's "until L_nt = L'_nt" condition).
func (e *Evaluator) EnsureWindow(m int) {
	if m <= e.evaluated {
		return
	}
	if e.par > 0 {
		e.ensureWindowParallel(m)
		return
	}
	e.prof.lock()
	defer e.prof.unlock()
	e.planJoins()
	sp := e.tr.Begin("fixpoint")
	from := e.evaluated
	f0, d0, s0 := e.stats.Firings, e.stats.Derived, e.stats.Sweeps
	ext := e.tr.Begin("extend")
	for t := e.evaluated + 1; t <= m; t++ {
		e.evalState(t, m)
	}
	e.evaluated = m
	ext.Add("states", int64(m-from))
	ext.Add("derived", int64(e.stats.Derived-d0))
	ext.End()
	// Outer fixpoint: close non-temporal consequences, re-sweeping the
	// temporal window until nothing changes.
	for {
		nt := e.evalNonTemporalRules(m)
		if nt == 0 {
			break
		}
		for {
			added := 0
			e.stats.Sweeps++
			ssp := e.tr.Begin("sweep")
			sf0 := e.stats.Firings
			for t := 0; t <= m; t++ {
				added += e.evalState(t, m)
			}
			e.stats.SweepSizes = append(e.stats.SweepSizes, added)
			ssp.Add("added", int64(added))
			ssp.Add("firings", int64(e.stats.Firings-sf0))
			ssp.End()
			if added == 0 {
				break
			}
		}
	}
	e.stats.StoreGrowth = append(e.stats.StoreGrowth, e.store.Len())
	sp.Add("window", int64(m))
	sp.Add("firings", int64(e.stats.Firings-f0))
	sp.Add("derived", int64(e.stats.Derived-d0))
	sp.Add("sweeps", int64(e.stats.Sweeps-s0))
	sp.Add("store_len", int64(e.store.Len()))
	sp.End()
}

// Holds reports whether the fact is in the least model. The window must
// already cover the fact's time (callers use EnsureWindow or algorithm BT).
func (e *Evaluator) Holds(f ast.Fact) bool { return e.store.Has(f) }

// evalState closes state t: a local fixpoint over the rules whose head
// lands at time t. Returns the number of new facts.
func (e *Evaluator) evalState(t, m int) int {
	added := 0
	first := true
	for {
		n := 0
		for i := range e.rules {
			r := &e.rules[i]
			if r.headDepth < 0 {
				continue // non-temporal heads handled separately
			}
			// After the first round only rules that can consume facts of
			// state t itself (a body literal at the head's depth) can fire
			// anew.
			if !first && r.maxBodyDepth < r.headDepth {
				continue
			}
			T := t - r.headDepth
			if T < 0 {
				continue
			}
			n += e.fireRule(r, T)
		}
		added += n
		first = false
		if n == 0 {
			return added
		}
	}
}

// evalNonTemporalRules evaluates every rule with a non-temporal head over
// the window 0..m, returning the number of new facts.
func (e *Evaluator) evalNonTemporalRules(m int) int {
	added := 0
	for {
		n := 0
		for i := range e.rules {
			r := &e.rules[i]
			if r.headDepth >= 0 {
				continue
			}
			if r.timeVar == "" {
				n += e.fireRule(r, 0)
				continue
			}
			for T := 0; T+r.maxBodyDepth <= m; T++ {
				n += e.fireRule(r, T)
			}
		}
		added += n
		if n == 0 {
			return added
		}
	}
}

// env is a mutable binding environment with an undo trail. vals is
// indexed by slot; "" means unbound (constants are never empty — the
// parser cannot produce an empty constant and InsertBase rejects empty
// arguments).
type env struct {
	time  int // binding of the rule's temporal variable
	vals  []string
	trail []int
}

func (en *env) undo(mark int) {
	for len(en.trail) > mark {
		sl := en.trail[len(en.trail)-1]
		en.trail = en.trail[:len(en.trail)-1]
		en.vals[sl] = ""
	}
}

// matchCompiled unifies the compiled pattern against the tuple, extending
// en (recording new bindings on the trail). Returns false on mismatch;
// the caller undoes to its mark either way.
func matchCompiled(pat []carg, tup []string, en *env) bool {
	if len(pat) != len(tup) {
		return false
	}
	for i, c := range pat {
		if c.slot < 0 {
			if c.name != tup[i] {
				return false
			}
			continue
		}
		if v := en.vals[c.slot]; v != "" {
			if v != tup[i] {
				return false
			}
			continue
		}
		en.vals[c.slot] = tup[i]
		en.trail = append(en.trail, c.slot)
	}
	return true
}

// appendEnvMaskKey builds the index-bucket key for the masked columns of
// the compiled pattern under the current bindings. Every masked column is
// a constant or a bound slot by plan construction.
func appendEnvMaskKey(dst []byte, pat []carg, mask uint32, en *env) []byte {
	for i := 0; i < len(pat); i++ {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		if c := pat[i]; c.slot < 0 {
			dst = append(dst, c.name...)
		} else {
			dst = append(dst, en.vals[c.slot]...)
		}
		dst = append(dst, 0)
	}
	return dst
}

// fireRule instantiates rule r with its temporal variable bound to T (T is
// ignored for rules without one) and inserts all derivable head facts.
// Returns the number of new facts.
func (e *Evaluator) fireRule(r *crule, T int) int {
	en := &e.en
	en.time = T
	added := 0
	if e.prof == nil {
		e.join(r, &e.plans[r.idx], 0, en, -1, nil, &added)
		return added
	}
	start := obs.ClockNS()
	e.join(r, &e.plans[r.idx], 0, en, -1, nil, &added)
	c := e.prof.buf.rec(r).ruleCell(stratumOf(T))
	c.calls++
	c.ns += obs.ClockNS() - start
	return added
}

// join matches the body literals in plan order from step si onward, and
// on a complete match emits the head. Each step streams the matching
// index bucket (or, with mask 0, the full relation list) of its literal;
// a negative capm disables the head-time cap (delta propagation caps at
// the window, leaving deeper facts to EnsureWindow). When out is non-nil
// newly derived facts are appended to it (the delta frontier).
func (e *Evaluator) join(r *crule, plan *joinPlan, si int, en *env, capm int, out *[]ast.Fact, added *int) {
	if si == len(plan.steps) {
		if capm >= 0 && r.head.Time != nil && en.time+r.head.Time.Depth > capm {
			return
		}
		if f, ok := e.emit(r, en); ok {
			*added++
			if out != nil {
				*out = append(*out, f)
			}
		}
		return
	}
	st := &plan.steps[si]
	a := &r.body[st.lit]
	var rs *relset
	if a.Time != nil {
		rs = e.store.at(a.Pred, en.time+a.Time.Depth)
	} else {
		rs = e.store.nt(a.Pred)
	}
	if rs == nil {
		return
	}
	*st.ctr++
	pat := r.bodyC[st.lit]
	var tuples [][]string
	if st.mask != 0 {
		e.keyBuf = appendEnvMaskKey(e.keyBuf[:0], pat, st.mask, en)
		tuples = rs.bucket(st.mask, e.keyBuf)
	} else {
		tuples = rs.list
	}
	// The profiled and unprofiled loops are kept separate so the
	// uninstrumented hot path carries no per-tuple branches, and the
	// profiled one pays only a local register increment per match:
	// scanned is exactly len(tuples) (every tuple is visited), and
	// matched flushes to the stratum cell once per scan. The cell
	// pointer stays valid across the recursion because each step binds
	// a distinct body literal, so deeper steps grow other lit slices.
	if e.prof != nil {
		lc := e.prof.buf.rec(r).litCell(st.lit, stratumOf(en.time))
		lc.scanned += int64(len(tuples))
		matched := int64(0)
		for _, tup := range tuples {
			mark := len(en.trail)
			if matchCompiled(pat, tup, en) {
				matched++
				e.join(r, plan, si+1, en, capm, out, added)
			}
			en.undo(mark)
		}
		lc.matched += matched
		return
	}
	for _, tup := range tuples {
		mark := len(en.trail)
		if matchCompiled(pat, tup, en) {
			e.join(r, plan, si+1, en, capm, out, added)
		}
		en.undo(mark)
	}
}

// emit fires rule r under the complete binding en: it instantiates the
// head and inserts it, maintaining the work counters and (when enabled)
// provenance. It reports the head fact and whether it was new. The
// duplicate case — the overwhelmingly common one at fixpoint — allocates
// nothing: the head is built into a scratch buffer and membership is
// probed with a byte-slice key.
func (e *Evaluator) emit(r *crule, en *env) (ast.Fact, bool) {
	e.stats.Firings++
	e.stats.Rules[r.idx].Firings++
	hb := e.headBuf[:0]
	for _, c := range r.headC {
		if c.slot < 0 {
			hb = append(hb, c.name)
			continue
		}
		v := en.vals[c.slot]
		if v == "" {
			panic(fmt.Sprintf("engine: unbound head variable in %s", r.src))
		}
		hb = append(hb, v)
	}
	e.headBuf = hb
	temporal := r.head.Time != nil
	t := 0
	var rs *relset
	if temporal {
		t = en.time + r.head.Time.Depth
		rs = e.store.at(r.head.Pred, t)
	} else {
		rs = e.store.nt(r.head.Pred)
	}
	if rs != nil {
		e.keyBuf = appendTupleKey(e.keyBuf[:0], hb)
		if rs.hasKey(e.keyBuf) {
			return ast.Fact{}, false
		}
	}
	f := ast.Fact{Pred: r.head.Pred, Temporal: temporal, Time: t, Args: append([]string(nil), hb...)}
	e.store.Insert(f)
	e.stats.Derived++
	e.stats.Rules[r.idx].Derived++
	if e.prov != nil {
		body := make([]ast.Fact, len(r.body))
		for j := range r.body {
			body[j] = factFor(&r.body[j], r.bodyC[j], en)
		}
		e.prov[factKey(f)] = &Derivation{Rule: r.src, Time: en.time, Body: body}
	}
	return f, true
}

// factFor builds the ground fact of one rule atom under en (head or body;
// every variable must be bound — the rule is range-restricted).
func factFor(a *ast.Atom, pat []carg, en *env) ast.Fact {
	f := ast.Fact{Pred: a.Pred}
	if a.Time != nil {
		f.Temporal = true
		f.Time = en.time + a.Time.Depth
	}
	f.Args = make([]string, len(pat))
	for i, c := range pat {
		if c.slot < 0 {
			f.Args[i] = c.name
			continue
		}
		v := en.vals[c.slot]
		if v == "" {
			panic(fmt.Sprintf("engine: unbound variable in %s", a))
		}
		f.Args[i] = v
	}
	return f
}
