package engine

import (
	"testing"

	"tdd/internal/ast"
	"tdd/internal/obs"
	"tdd/internal/parser"
)

func buildEval(t *testing.T, src string) *Evaluator {
	t.Helper()
	prog, db, err := parser.ParseUnit(src)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestStatsExtension checks that per-rule, per-sweep, and store-growth
// counters reconcile with the aggregate counters.
func TestStatsExtension(t *testing.T) {
	e := buildEval(t, `
even(T+2) :- even(T).
mark(X) :- even(T), tag(X).
even(0).
tag(a).
`)
	e.EnsureWindow(10)
	st := e.Stats()
	if len(st.Rules) != 2 {
		t.Fatalf("Rules = %d entries, want 2", len(st.Rules))
	}
	var firings, derived int
	for _, r := range st.Rules {
		if r.Rule == "" {
			t.Error("rule source missing in RuleStat")
		}
		firings += r.Firings
		derived += r.Derived
	}
	if firings != st.Firings {
		t.Errorf("per-rule firings sum %d != aggregate %d", firings, st.Firings)
	}
	if derived != st.Derived {
		t.Errorf("per-rule derived sum %d != aggregate %d", derived, st.Derived)
	}
	if len(st.SweepSizes) != st.Sweeps {
		t.Errorf("SweepSizes has %d entries, Sweeps = %d", len(st.SweepSizes), st.Sweeps)
	}
	if len(st.StoreGrowth) == 0 || st.StoreGrowth[len(st.StoreGrowth)-1] != e.Store().Len() {
		t.Errorf("StoreGrowth %v should end at store size %d", st.StoreGrowth, e.Store().Len())
	}
}

// TestStatsSnapshotIsolated checks the Stats getter deep-copies: the
// evaluator keeps counting without mutating earlier snapshots.
func TestStatsSnapshotIsolated(t *testing.T) {
	e := buildEval(t, "even(T+2) :- even(T).\neven(0).\n")
	e.EnsureWindow(4)
	before := e.Stats()
	ruleFirings := before.Rules[0].Firings
	e.EnsureWindow(20)
	if before.Rules[0].Firings != ruleFirings {
		t.Error("snapshot mutated by later evaluation")
	}
	clone := e.Clone()
	if _, err := clone.InsertBase(ast.Fact{Pred: "even", Temporal: true, Time: 1}); err != nil {
		t.Fatal(err)
	}
	clone.PropagateDelta([]ast.Fact{{Pred: "even", Temporal: true, Time: 1}})
	if got := e.Stats().DeltaByTime; len(got) != 0 {
		t.Errorf("clone's delta stats leaked into the original: %v", got)
	}
}

// TestDeltaByTime checks PropagateDelta records per-timestamp delta
// sizes.
func TestDeltaByTime(t *testing.T) {
	e := buildEval(t, "even(T+2) :- even(T).\neven(0).\n")
	e.EnsureWindow(6)
	f := ast.Fact{Pred: "even", Temporal: true, Time: 1}
	if _, err := e.InsertBase(f); err != nil {
		t.Fatal(err)
	}
	n := e.PropagateDelta([]ast.Fact{f})
	if n == 0 {
		t.Fatal("delta propagation derived nothing")
	}
	st := e.Stats()
	total := 0
	for tm, c := range st.DeltaByTime {
		if tm < 0 {
			t.Errorf("unexpected non-temporal delta bucket: %v", st.DeltaByTime)
		}
		total += c
	}
	if total != n {
		t.Errorf("DeltaByTime sums to %d, PropagateDelta returned %d", total, n)
	}
}

// TestFixpointSpans checks the engine emits fixpoint spans (with window
// and firing counters) into an attached trace, and none when detached.
func TestFixpointSpans(t *testing.T) {
	e := buildEval(t, "even(T+2) :- even(T).\neven(0).\n")
	tr := obs.New()
	e.SetTrace(tr)
	e.EnsureWindow(8)
	snap := tr.Snapshot()
	if len(snap.Phases) != 1 || snap.Phases[0].Name != "fixpoint" {
		t.Fatalf("phases = %+v, want one fixpoint span", snap.Phases)
	}
	fx := snap.Phases[0]
	if fx.Counters["window"] != 8 {
		t.Errorf("window counter = %d, want 8", fx.Counters["window"])
	}
	if fx.Counters["firings"] == 0 {
		t.Error("firings counter missing")
	}

	e2 := buildEval(t, "even(T+2) :- even(T).\neven(0).\n")
	e2.EnsureWindow(8)
	if e2.Trace() != nil {
		t.Error("trace should default to nil")
	}
}
